/**
 * @file
 * Randomized property tests: seeded fuzzing of the codecs and the
 * event engine. Each suite draws hundreds of random shapes from a
 * deterministic PCG stream, so failures reproduce exactly.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cluster_fixture.h"
#include "net/aal5.h"
#include "net/fault.h"
#include "rmem/protocol.h"
#include "rpc/marshal.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace remora {
namespace {

// ----------------------------------------------------------------------
// Event-queue ordering property
// ----------------------------------------------------------------------

TEST(PropertySimulator, RandomScheduleExecutesInNondecreasingTime)
{
    sim::Random rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        sim::Simulator sim;
        std::vector<sim::Time> fired;
        int events = 50 + static_cast<int>(rng.uniformInt(200));
        for (int i = 0; i < events; ++i) {
            sim::Duration when = rng.uniformInt(10000);
            sim.schedule(when, [&fired, &sim] { fired.push_back(sim.now()); });
        }
        sim.run();
        ASSERT_EQ(fired.size(), static_cast<size_t>(events));
        EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()))
            << "trial " << trial;
    }
}

TEST(PropertySimulator, RandomCancellationNeverFiresCancelled)
{
    sim::Random rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        sim::Simulator sim;
        std::map<sim::EventId, bool> cancelled;
        std::vector<sim::EventId> ids;
        int fired = 0;
        for (int i = 0; i < 100; ++i) {
            sim::EventId id =
                sim.schedule(rng.uniformInt(1000), [&fired] { ++fired; });
            ids.push_back(id);
            cancelled[id] = false;
        }
        int toCancel = 0;
        for (sim::EventId id : ids) {
            if (rng.bernoulli(0.4)) {
                sim.cancel(id);
                cancelled[id] = true;
                ++toCancel;
            }
        }
        sim.run();
        EXPECT_EQ(fired, 100 - toCancel);
    }
}

// ----------------------------------------------------------------------
// AAL5 fuzz: random frames and random interleavings round-trip
// ----------------------------------------------------------------------

TEST(PropertyAal5, RandomFramesRoundTrip)
{
    sim::Random rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        size_t len = rng.uniformInt(5000);
        std::vector<uint8_t> frame(len);
        for (auto &b : frame) {
            b = static_cast<uint8_t>(rng.nextU32());
        }
        auto cells = net::aal5Segment(3, 5, frame);
        net::Aal5Reassembler reasm;
        std::optional<net::Aal5Reassembler::Frame> out;
        for (const auto &cell : cells) {
            out = reasm.feed(cell);
        }
        ASSERT_TRUE(out.has_value()) << "trial " << trial;
        EXPECT_EQ(out->payload, frame) << "trial " << trial;
    }
}

TEST(PropertyAal5, RandomThreeWayInterleavingsReassemble)
{
    sim::Random rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::vector<uint8_t>> frames;
        std::vector<std::vector<net::Cell>> streams;
        for (uint16_t src = 1; src <= 3; ++src) {
            std::vector<uint8_t> frame(50 + rng.uniformInt(2000));
            for (auto &b : frame) {
                b = static_cast<uint8_t>(rng.nextU32() ^ src);
            }
            streams.push_back(net::aal5Segment(9, src, frame));
            frames.push_back(std::move(frame));
        }
        // Random fair interleave (per-source order preserved).
        net::Aal5Reassembler reasm;
        std::vector<size_t> pos(3, 0);
        int done = 0;
        std::map<uint16_t, std::vector<uint8_t>> results;
        while (done < 3) {
            size_t s = rng.uniformInt(3);
            if (pos[s] >= streams[s].size()) {
                continue;
            }
            if (auto f = reasm.feed(streams[s][pos[s]++])) {
                results[f->srcVci] = std::move(f->payload);
                ++done;
            }
        }
        for (uint16_t src = 1; src <= 3; ++src) {
            EXPECT_EQ(results[src], frames[src - 1])
                << "trial " << trial << " src " << src;
        }
    }
}

// ----------------------------------------------------------------------
// Protocol fuzz: decoder never crashes, arbitrary bytes never
// "succeed" into out-of-contract messages
// ----------------------------------------------------------------------

TEST(PropertyProtocol, RandomBytesNeverCrashDecoder)
{
    sim::Random rng(17);
    int decoded = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        size_t len = rng.uniformInt(64);
        std::vector<uint8_t> junk(len);
        for (auto &b : junk) {
            b = static_cast<uint8_t>(rng.nextU32());
        }
        size_t consumed = 0;
        auto r = rmem::decodeMessage(junk, &consumed);
        if (r.ok()) {
            ++decoded;
            // Whatever decoded must re-encode within its own length.
            EXPECT_LE(consumed, junk.size());
        }
    }
    // Some random inputs legitimately parse (that is fine); the suite's
    // contract is only "no crash, no overread".
    (void)decoded;
}

TEST(PropertyProtocol, EncodeDecodeIdempotentOnRandomMessages)
{
    sim::Random rng(19);
    for (int trial = 0; trial < 500; ++trial) {
        rmem::WriteReq req;
        req.descriptor = static_cast<uint8_t>(rng.uniformInt(256));
        req.generation = static_cast<uint16_t>(rng.uniformInt(65536));
        req.offset = rng.nextU32() & 0x00ffffff;
        req.notify = rng.bernoulli(0.5);
        req.data.resize(rng.uniformInt(2000));
        for (auto &b : req.data) {
            b = static_cast<uint8_t>(rng.nextU32());
        }
        auto once = rmem::encodeMessage(rmem::Message(req));
        auto decoded = rmem::decodeMessage(once);
        ASSERT_TRUE(decoded.ok());
        auto twice = rmem::encodeMessage(decoded.take());
        EXPECT_EQ(once, twice) << "trial " << trial;
    }
}

// ----------------------------------------------------------------------
// Marshal fuzz: random schedules of puts round-trip through gets
// ----------------------------------------------------------------------

TEST(PropertyMarshal, RandomFieldSequencesRoundTrip)
{
    sim::Random rng(23);
    for (int trial = 0; trial < 200; ++trial) {
        // Draw a random field schedule.
        std::vector<int> schedule;
        std::vector<uint64_t> ints;
        std::vector<std::string> strings;
        std::vector<std::vector<uint8_t>> blobs;
        rpc::Marshal m;
        int fields = 1 + static_cast<int>(rng.uniformInt(12));
        for (int i = 0; i < fields; ++i) {
            switch (rng.uniformInt(3)) {
              case 0: {
                uint64_t v = rng.nextU64();
                ints.push_back(v);
                m.putU64(v);
                schedule.push_back(0);
                break;
              }
              case 1: {
                std::string s(rng.uniformInt(40), 'x');
                for (auto &c : s) {
                    c = static_cast<char>('a' + rng.uniformInt(26));
                }
                strings.push_back(s);
                m.putString(s);
                schedule.push_back(1);
                break;
              }
              default: {
                std::vector<uint8_t> b(rng.uniformInt(100));
                for (auto &x : b) {
                    x = static_cast<uint8_t>(rng.nextU32());
                }
                blobs.push_back(b);
                m.putOpaque(b);
                schedule.push_back(2);
                break;
              }
            }
        }
        auto buf = m.take();
        rpc::Unmarshal u(buf);
        size_t ii = 0, si = 0, bi = 0;
        for (int kind : schedule) {
            switch (kind) {
              case 0:
                EXPECT_EQ(u.getU64(), ints[ii++]);
                break;
              case 1:
                EXPECT_EQ(u.getString(), strings[si++]);
                break;
              default:
                EXPECT_EQ(u.getOpaque(), blobs[bi++]);
                break;
            }
        }
        EXPECT_TRUE(u.ok()) << "trial " << trial;
        EXPECT_EQ(u.remaining(), 0u);
    }
}

// ----------------------------------------------------------------------
// Fault-plan fuzz: under any seed and any drop rate up to 20%, the
// reliable wire applies every acked WRITE exactly once and the cluster
// quiesces with nothing blocked
// ----------------------------------------------------------------------

TEST(PropertyFault, AnySeedModerateLossAppliesEveryWriteExactlyOnce)
{
    sim::Random meta(31);
    for (int trial = 0; trial < 8; ++trial) {
        uint64_t faultSeed = meta.nextU64();
        double dropRate = 0.20 * (meta.uniformInt(1000) / 1000.0);

        test::TwoNodeCluster c;
        c.engineA.wire().enableReliability();
        c.engineB.wire().enableReliability();
        mem::Process &server = c.nodeB.spawnProcess("server");
        mem::Vaddr base = server.space().allocRegion(8192);
        auto seg = c.engineB.exportSegment(
            server, base, 8192, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "s");
        ASSERT_TRUE(seg.ok());
        c.sim.run();

        net::FaultPlan plan;
        plan.seed = faultSeed;
        plan.dropRate = dropRate;
        c.network.installFaults(plan);

        constexpr int kWrites = 12;
        uint64_t served0 = c.engineB.stats().requestsServed.value();
        std::vector<std::vector<uint8_t>> expected;
        for (int i = 0; i < kWrites; ++i) {
            std::vector<uint8_t> data(
                32 + meta.uniformInt(150)); // raw cells AND AAL5 frames
            for (auto &b : data) {
                b = static_cast<uint8_t>(meta.nextU32());
            }
            expected.push_back(data);
            auto w = c.engineA.write(seg.value(),
                                     static_cast<uint32_t>(i) * 256, data,
                                     /*notify=*/true);
            // WRITE completes locally; delivery is the wire's problem.
            while (!w.done() && c.sim.step()) {
            }
            ASSERT_TRUE(w.done());
            ASSERT_TRUE(w.result().ok());
        }
        c.sim.run();

        EXPECT_EQ(c.engineB.stats().requestsServed.value() - served0,
                  static_cast<uint64_t>(kWrites))
            << "seed=" << faultSeed << " drop=" << dropRate;
        auto *ch = c.engineB.channel(seg.value().descriptor);
        ASSERT_NE(ch, nullptr);
        rmem::Notification n;
        int notifications = 0;
        while (ch->tryNext(n)) {
            ++notifications;
        }
        EXPECT_EQ(notifications, kWrites)
            << "seed=" << faultSeed << " drop=" << dropRate;
        for (int i = 0; i < kWrites; ++i) {
            std::vector<uint8_t> got(expected[i].size());
            ASSERT_TRUE(
                server.space()
                    .read(base + static_cast<uint64_t>(i) * 256, got)
                    .ok());
            EXPECT_EQ(got, expected[i])
                << "seed=" << faultSeed << " write " << i;
        }
        EXPECT_EQ(c.engineA.wire().sendFailures(), 0u);
        EXPECT_EQ(c.sim.blockedTaskCount(), 0u)
            << "seed=" << faultSeed << " drop=" << dropRate;
    }
}

} // namespace
} // namespace remora
