/**
 * @file
 * Wire-protocol tests: codec round trips across field sweeps, the
 * single-cell size budgets the design depends on, small/block selection
 * boundaries, and malformed-input rejection.
 */
#include <gtest/gtest.h>

#include "net/cell.h"
#include "rmem/protocol.h"

namespace remora::rmem {
namespace {

template <typename T>
T
roundTrip(const Message &msg, size_t *consumed = nullptr)
{
    auto bytes = encodeMessage(msg);
    auto decoded = decodeMessage(bytes, consumed);
    EXPECT_TRUE(decoded.ok()) << decoded.status().toString();
    return std::get<T>(decoded.take());
}

// ----------------------------------------------------------------------
// Round trips
// ----------------------------------------------------------------------

TEST(Protocol, SmallWriteRoundTrip)
{
    WriteReq req;
    req.descriptor = 12;
    req.generation = 999;
    req.offset = 0x00abcdef; // within the 24-bit small-write range
    req.notify = true;
    req.data = {1, 2, 3, 4, 5};
    WriteReq out = roundTrip<WriteReq>(Message(req));
    EXPECT_EQ(out.descriptor, req.descriptor);
    EXPECT_EQ(out.generation, req.generation);
    EXPECT_EQ(out.offset, req.offset);
    EXPECT_EQ(out.notify, req.notify);
    EXPECT_EQ(out.data, req.data);
}

TEST(Protocol, BlockWriteRoundTrip)
{
    WriteReq req;
    req.descriptor = 200;
    req.generation = 0xffff;
    req.offset = 0x01000000; // past the small-write offset range
    req.data.assign(4096, 0x5c);
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteBlock);
    WriteReq out = roundTrip<WriteReq>(Message(req));
    EXPECT_EQ(out.offset, req.offset);
    EXPECT_EQ(out.data, req.data);
}

TEST(Protocol, ReadReqRoundTrip)
{
    ReadReq req;
    req.srcDescriptor = 3;
    req.generation = 17;
    req.srcOffset = 0xdeadbe00;
    req.dstDescriptor = 5;
    req.dstOffset = 0x00c0ffee;
    req.count = 4096;
    req.reqId = 0xabcd;
    req.notify = true;
    ReadReq out = roundTrip<ReadReq>(Message(req));
    EXPECT_EQ(out.srcDescriptor, req.srcDescriptor);
    EXPECT_EQ(out.generation, req.generation);
    EXPECT_EQ(out.srcOffset, req.srcOffset);
    EXPECT_EQ(out.dstDescriptor, req.dstDescriptor);
    EXPECT_EQ(out.dstOffset, req.dstOffset);
    EXPECT_EQ(out.count, req.count);
    EXPECT_EQ(out.reqId, req.reqId);
    EXPECT_EQ(out.notify, req.notify);
}

TEST(Protocol, ReadRespRoundTrip)
{
    ReadResp resp;
    resp.reqId = 77;
    resp.status = util::ErrorCode::kOk;
    resp.data.assign(40, 0x42);
    ReadResp out = roundTrip<ReadResp>(Message(resp));
    EXPECT_EQ(out.reqId, resp.reqId);
    EXPECT_EQ(out.status, resp.status);
    EXPECT_EQ(out.data, resp.data);
}

TEST(Protocol, CasReqRespRoundTrip)
{
    CasReq req;
    req.descriptor = 9;
    req.generation = 4;
    req.offset = 4096;
    req.oldValue = 0x11111111;
    req.newValue = 0x22222222;
    req.resultDescriptor = 2;
    req.resultOffset = 64;
    req.reqId = 301;
    CasReq outReq = roundTrip<CasReq>(Message(req));
    EXPECT_EQ(outReq.oldValue, req.oldValue);
    EXPECT_EQ(outReq.newValue, req.newValue);
    EXPECT_EQ(outReq.resultDescriptor, req.resultDescriptor);
    EXPECT_EQ(outReq.resultOffset, req.resultOffset);

    CasResp resp;
    resp.reqId = 301;
    resp.success = true;
    resp.observed = 0x11111111;
    CasResp outResp = roundTrip<CasResp>(Message(resp));
    EXPECT_EQ(outResp.reqId, resp.reqId);
    EXPECT_TRUE(outResp.success);
    EXPECT_EQ(outResp.observed, resp.observed);
}

TEST(Protocol, NakRoundTrip)
{
    Nak nak;
    nak.reqId = 42;
    nak.error = util::ErrorCode::kStaleGeneration;
    nak.originalType = MsgType::kReadReq;
    Nak out = roundTrip<Nak>(Message(nak));
    EXPECT_EQ(out.reqId, nak.reqId);
    EXPECT_EQ(out.error, nak.error);
    EXPECT_EQ(out.originalType, nak.originalType);
}

TEST(Protocol, RpcEnvelopeRoundTrip)
{
    RpcMsg msg;
    msg.xid = 0xfeedface;
    msg.isResponse = true;
    msg.body.assign(500, 0x3f);
    RpcMsg out = roundTrip<RpcMsg>(Message(msg));
    EXPECT_EQ(out.xid, msg.xid);
    EXPECT_TRUE(out.isResponse);
    EXPECT_EQ(out.body, msg.body);
}

// ----------------------------------------------------------------------
// The single-cell size budgets the design document promises
// ----------------------------------------------------------------------

TEST(ProtocolBudget, SmallWriteWith40BytesFitsOneCell)
{
    WriteReq req;
    req.offset = (1u << 24) - 41;
    req.data.assign(kSmallWriteMax, 0xee);
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteSmall);
    auto bytes = encodeMessage(Message(req));
    EXPECT_LE(bytes.size(), net::Cell::kPayloadBytes);
    EXPECT_EQ(bytes.size(), 8u + kSmallWriteMax); // 8-byte header
}

TEST(ProtocolBudget, ReadReqFitsOneCell)
{
    ReadReq req;
    req.srcOffset = 0xffffffff;
    req.dstOffset = 0xffffffff;
    req.count = 0xffff;
    req.reqId = 0xffff;
    auto bytes = encodeMessage(Message(req));
    EXPECT_LE(bytes.size(), net::Cell::kPayloadBytes);
}

TEST(ProtocolBudget, SmallReadRespWith40BytesFitsOneCell)
{
    ReadResp resp;
    resp.data.assign(40, 1);
    auto bytes = encodeMessage(Message(resp));
    EXPECT_LE(bytes.size(), net::Cell::kPayloadBytes);
}

TEST(ProtocolBudget, CasMessagesFitOneCell)
{
    CasReq req;
    req.offset = req.resultOffset = 0xffffffff;
    EXPECT_LE(encodeMessage(Message(req)).size(), net::Cell::kPayloadBytes);
    CasResp resp;
    EXPECT_LE(encodeMessage(Message(resp)).size(), net::Cell::kPayloadBytes);
    Nak nak;
    EXPECT_LE(encodeMessage(Message(nak)).size(), net::Cell::kPayloadBytes);
}

// ----------------------------------------------------------------------
// Small/block selection boundaries
// ----------------------------------------------------------------------

TEST(ProtocolBoundary, SizeSelectsWriteVariant)
{
    WriteReq req;
    req.data.assign(kSmallWriteMax, 0);
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteSmall);
    req.data.push_back(0);
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteBlock);
}

TEST(ProtocolBoundary, OffsetSelectsWriteVariant)
{
    WriteReq req;
    req.data.assign(8, 0);
    req.offset = (1u << 24) - 1;
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteSmall);
    req.offset = 1u << 24;
    EXPECT_EQ(messageType(Message(req)), MsgType::kWriteBlock);
    // Both variants still round-trip exactly.
    WriteReq out = roundTrip<WriteReq>(Message(req));
    EXPECT_EQ(out.offset, req.offset);
}

class WriteSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, size_t, bool>>
{};

TEST_P(WriteSweep, RoundTripsExactly)
{
    auto [offset, size, notify] = GetParam();
    WriteReq req;
    req.descriptor = 1;
    req.generation = 2;
    req.offset = offset;
    req.notify = notify;
    req.data.resize(size);
    for (size_t i = 0; i < size; ++i) {
        req.data[i] = static_cast<uint8_t>(i * 31);
    }
    WriteReq out = roundTrip<WriteReq>(Message(req));
    EXPECT_EQ(out.offset, offset);
    EXPECT_EQ(out.notify, notify);
    EXPECT_EQ(out.data, req.data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WriteSweep,
    ::testing::Combine(::testing::Values<uint32_t>(0, 39, 16 * 1024 * 1024,
                                                   0xfffff000),
                       ::testing::Values<size_t>(0, 1, 40, 41, 4096, 60000),
                       ::testing::Bool()));

// ----------------------------------------------------------------------
// Malformed inputs
// ----------------------------------------------------------------------

TEST(ProtocolMalformed, TruncatedMessagesRejected)
{
    WriteReq req;
    req.data.assign(20, 7);
    auto bytes = encodeMessage(Message(req));
    for (size_t cut : {size_t{0}, size_t{1}, size_t{5}, bytes.size() - 1}) {
        auto r = decodeMessage(
            std::span<const uint8_t>(bytes.data(), cut));
        EXPECT_FALSE(r.ok()) << "cut at " << cut << " decoded";
    }
}

TEST(ProtocolMalformed, UnknownTypeRejected)
{
    std::vector<uint8_t> junk = {0x0f, 1, 2, 3, 4, 5, 6, 7};
    auto r = decodeMessage(junk);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::kMalformed);
}

TEST(ProtocolMalformed, CountBeyondBufferRejected)
{
    // Hand-craft a small write whose count exceeds the payload.
    std::vector<uint8_t> bytes = {0x01, 0x00, 0x00, 0x00,
                                  0x00, 0x00, 0x00, 0xff};
    auto r = decodeMessage(bytes);
    EXPECT_FALSE(r.ok());
}

TEST(Protocol, ConsumedReportsMeaningfulBytes)
{
    CasResp resp;
    size_t consumed = 0;
    auto bytes = encodeMessage(Message(resp));
    // Pad to a full cell, as a raw cell would be.
    bytes.resize(net::Cell::kPayloadBytes, 0xAA);
    auto r = decodeMessage(bytes, &consumed);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(consumed, 8u); // type + reqId + success + observed
}

} // namespace
} // namespace remora::rmem
