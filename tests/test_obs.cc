/**
 * @file
 * Tests for the observability layer: TraceRecorder span semantics and
 * Chrome export, MetricRegistry dumps, StatRegistry histogram JSON,
 * Logger ring/level plumbing, and an end-to-end READ trace check.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/logger.h"
#include "sim/stats.h"

namespace remora::test {
namespace {

/** The recorder is process-wide: reset it around every trace test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::TraceRecorder::instance().disable();
        obs::TraceRecorder::instance().clear();
    }

    void
    TearDown() override
    {
        obs::TraceRecorder::instance().disable();
        obs::TraceRecorder::instance().clear();
    }
};

/** Advance the simulated clock to @p when. */
void
advanceTo(sim::Simulator &sim, sim::Time when)
{
    sim.scheduleAt(when, [] {});
    sim.run();
}

TEST_F(TraceTest, DisabledRecorderIsFreeAndSafe)
{
    auto &tr = obs::TraceRecorder::instance();
    EXPECT_FALSE(obs::TraceRecorder::on());
    obs::SpanId span = tr.beginSpan("n", "c", "ignored");
    EXPECT_EQ(span, obs::kNoSpan);
    tr.endSpan(span); // must be a no-op, not a crash
    tr.instant("n", "c", "ignored");
    EXPECT_EQ(tr.eventCount(), 0u);
}

TEST_F(TraceTest, SpanNestingAndSimTimeOrdering)
{
    sim::Simulator sim;
    auto &tr = obs::TraceRecorder::instance();
    tr.enable(sim);

    obs::SpanId outer = tr.beginSpan("node1", "rmem", "outer");
    advanceTo(sim, 100);
    obs::SpanId inner = tr.beginSpan("node1", "rmem", "inner", "k=v");
    advanceTo(sim, 250);
    tr.endSpan(inner);
    advanceTo(sim, 400);
    tr.endSpan(outer);
    tr.disable();

    ASSERT_EQ(tr.eventCount(), 2u);
    const obs::TraceEvent &o = tr.events()[0];
    const obs::TraceEvent &i = tr.events()[1];
    EXPECT_EQ(o.name, "outer");
    EXPECT_EQ(o.ts, 0);
    EXPECT_EQ(o.dur, 400);
    EXPECT_EQ(i.name, "inner");
    EXPECT_EQ(i.ts, 100);
    EXPECT_EQ(i.dur, 150);
    EXPECT_EQ(i.detail, "k=v");
    // The inner span is entirely contained in the outer one.
    EXPECT_GE(i.ts, o.ts);
    EXPECT_LE(i.ts + i.dur, o.ts + o.dur);
}

TEST_F(TraceTest, AsyncPairsAndInstants)
{
    sim::Simulator sim;
    auto &tr = obs::TraceRecorder::instance();
    tr.enable(sim);

    uint64_t id = tr.newAsyncId();
    tr.asyncBegin(id, "client", "rmem", "read");
    advanceTo(sim, 50);
    tr.instant("server", "net", "hop");
    advanceTo(sim, 90);
    tr.asyncEnd(id, "client", "rmem", "read");
    tr.disable();

    ASSERT_EQ(tr.eventCount(), 3u);
    EXPECT_EQ(tr.events()[0].phase, obs::TracePhase::kAsyncBegin);
    EXPECT_EQ(tr.events()[1].phase, obs::TracePhase::kInstant);
    EXPECT_EQ(tr.events()[2].phase, obs::TracePhase::kAsyncEnd);
    EXPECT_EQ(tr.events()[0].id, tr.events()[2].id);

    std::string json = tr.toChromeJson();
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Nodes become processes via metadata records.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("client"), std::string::npos);
    EXPECT_NE(json.find("server"), std::string::npos);
}

TEST_F(TraceTest, CapacityBoundsEventsAndCountsDrops)
{
    sim::Simulator sim;
    auto &tr = obs::TraceRecorder::instance();
    tr.setCapacity(4);
    tr.enable(sim);
    for (int i = 0; i < 10; ++i) {
        tr.instant("n", "c", "tick");
    }
    tr.disable();
    EXPECT_EQ(tr.eventCount(), 4u);
    EXPECT_EQ(tr.dropped(), 6u);
    tr.clear();
    tr.setCapacity(1u << 20);
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST_F(TraceTest, OpScopeStampsSpansAndInstants)
{
    sim::Simulator sim;
    auto &tr = obs::TraceRecorder::instance();
    tr.enable(sim);

    uint64_t outer = tr.newAsyncId();
    uint64_t inner = tr.newAsyncId();
    EXPECT_EQ(obs::TraceRecorder::currentOp(), 0u);
    {
        obs::OpScope scope(outer);
        EXPECT_EQ(obs::TraceRecorder::currentOp(), outer);
        obs::SpanId span = tr.beginSpan("n", "c", "work");
        tr.instant("n", "c", "point");
        {
            // A child op begun under the outer scope records it as its
            // parent; the nested scope then saves and restores like a
            // stack variable.
            tr.asyncBegin(inner, "n", "c", "child");
            obs::OpScope nested(inner);
            EXPECT_EQ(obs::TraceRecorder::currentOp(), inner);
        }
        EXPECT_EQ(obs::TraceRecorder::currentOp(), outer);
        tr.endSpan(span);
    }
    EXPECT_EQ(obs::TraceRecorder::currentOp(), 0u);
    tr.instant("n", "c", "outside");
    tr.disable();

    ASSERT_EQ(tr.eventCount(), 4u);
    EXPECT_EQ(tr.events()[0].op, outer); // span, stamped by the scope
    EXPECT_EQ(tr.events()[1].op, outer); // instant, likewise
    EXPECT_EQ(tr.events()[2].op, inner); // the child op itself...
    EXPECT_EQ(tr.events()[2].parent, outer); // ...with its parent link
    EXPECT_EQ(tr.events()[3].op, 0u); // outside any scope
}

TEST_F(TraceTest, ChromeExportCarriesOpArgsAndSortIndices)
{
    sim::Simulator sim;
    auto &tr = obs::TraceRecorder::instance();
    tr.enable(sim);

    uint64_t id = tr.newAsyncId();
    tr.asyncBegin(id, "client", "rmem", "read");
    {
        obs::OpScope scope(id);
        tr.instant("client", "net", "hop");
    }
    tr.asyncEnd(id, "client", "rmem", "read");
    tr.disable();

    std::string json = tr.toChromeJson();
    // Stable ordering metadata so Perfetto lays nodes/components out
    // deterministically across runs.
    EXPECT_NE(json.find("process_sort_index"), std::string::npos);
    EXPECT_NE(json.find("thread_sort_index"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    // The op id rides along as args so the DAG is reconstructible from
    // the export alone.
    EXPECT_NE(json.find("\"op\":" + std::to_string(id)), std::string::npos);
}

TEST(MetricRegistryTest, TextDumpAndNestedJson)
{
    sim::Counter writes;
    writes.inc(3);
    sim::Accumulator lat;
    lat.sample(1.0);
    lat.sample(3.0);
    sim::Histogram h(0.0, 1.0, 4);
    h.sample(0.5);
    h.sample(2.5);

    obs::MetricRegistry reg;
    reg.add("node1.rmem.writes_issued", writes);
    reg.add("node1.rmem.write.latency_us", lat);
    reg.add("node1.rmem.write.hist_us", h);
    reg.addGauge("node1.cpu.busy_us", [] { return 42.5; });
    EXPECT_EQ(reg.size(), 4u);

    std::string text = reg.dump();
    EXPECT_NE(text.find("node1.rmem.writes_issued"), std::string::npos);
    EXPECT_NE(text.find("node1.cpu.busy_us"), std::string::npos);

    std::string json = reg.dumpJson();
    // Dotted names become nested objects.
    EXPECT_NE(json.find("\"node1\":"), std::string::npos);
    EXPECT_NE(json.find("\"rmem\":"), std::string::npos);
    EXPECT_NE(json.find("\"writes_issued\":3"), std::string::npos);
    EXPECT_NE(json.find("\"mean\":2"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":"), std::string::npos);
    EXPECT_NE(json.find("42.5"), std::string::npos);
    // The dotted names themselves must NOT appear as JSON keys.
    EXPECT_EQ(json.find("\"node1.rmem"), std::string::npos);
}

TEST(MetricRegistryTest, RemovePrefixDropsOnlyThatSubtree)
{
    sim::Counter a, b;
    obs::MetricRegistry reg;
    reg.add("x.a", a);
    reg.add("x.b", b);
    reg.add("y.a", a);
    reg.removePrefix("x.");
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_NE(reg.dump().find("y.a"), std::string::npos);
}

TEST(StatRegistryTest, HistogramJsonRoundTrip)
{
    sim::Histogram h(0.0, 10.0, 3);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(-1.0); // underflow
    h.sample(99.0); // overflow

    sim::StatRegistry reg;
    reg.add("op.latency", h);
    std::string json = reg.dumpJson();
    EXPECT_NE(json.find("\"op.latency\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":5"), std::string::npos);
    EXPECT_NE(json.find("\"underflow\":1"), std::string::npos);
    EXPECT_NE(json.find("\"overflow\":1"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":"), std::string::npos);
    // Quantiles agree with the histogram's own interpolation.
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(LoggerTest, ParseLevelNamesAndRing)
{
    sim::LogLevel lvl;
    EXPECT_TRUE(sim::Logger::parseLevel("trace", &lvl));
    EXPECT_EQ(lvl, sim::LogLevel::kTrace);
    EXPECT_TRUE(sim::Logger::parseLevel("WARN", &lvl));
    EXPECT_EQ(lvl, sim::LogLevel::kWarn);
    EXPECT_FALSE(sim::Logger::parseLevel("loud", &lvl));
    EXPECT_FALSE(sim::Logger::parseLevel(nullptr, &lvl));

    // Ring capture is independent of the emit level.
    sim::Logger::setLevel(sim::LogLevel::kError);
    sim::Logger::setRingLevel(sim::LogLevel::kInfo);
    sim::Logger::clearRecent();
    REMORA_LOG(kInfo, "test", "captured " << 123);
    auto recent = sim::Logger::recent();
    ASSERT_EQ(recent.size(), 1u);
    EXPECT_NE(recent[0].find("captured 123"), std::string::npos);

    sim::Logger::setRingCapacity(2);
    REMORA_LOG(kInfo, "test", "one");
    REMORA_LOG(kInfo, "test", "two");
    REMORA_LOG(kInfo, "test", "three");
    recent = sim::Logger::recent();
    ASSERT_EQ(recent.size(), 2u);
    EXPECT_NE(recent[0].find("two"), std::string::npos);
    EXPECT_NE(recent[1].find("three"), std::string::npos);

    sim::Logger::clearRecent();
    sim::Logger::setRingCapacity(64);
    sim::Logger::setLevel(sim::LogLevel::kWarn);
}

/** Find the first event matching (phase, comp, name); -1 when absent. */
int
findEvent(const std::vector<obs::TraceEvent> &evs, obs::TracePhase phase,
          const std::string &comp, const std::string &name)
{
    for (size_t i = 0; i < evs.size(); ++i) {
        if (evs[i].phase == phase && evs[i].comp == comp &&
            evs[i].name == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

TEST_F(TraceTest, RemoteReadEmitsTheFullSpanSequence)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("srv");
    mem::Process &client = c.nodeA.spawnProcess("cli");

    mem::Vaddr base = server.space().allocRegion(4096);
    auto remote = c.engineB.exportSegment(server, base, 4096,
                                          rmem::Rights::kAll,
                                          rmem::NotifyPolicy::kNever, "r");
    ASSERT_TRUE(remote.ok());
    mem::Vaddr lbase = client.space().allocRegion(4096);
    auto local = c.engineA.exportSegment(client, lbase, 4096,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever, "l");
    ASSERT_TRUE(local.ok());
    c.sim.run();

    auto &tr = obs::TraceRecorder::instance();
    tr.enable(c.sim);
    auto task = c.engineA.read(remote.value(), 0,
                               local.value().descriptor, 0, 40);
    auto result = runToCompletion(c.sim, task);
    ASSERT_TRUE(result.status.ok());
    c.sim.run();
    tr.disable();

    const auto &evs = tr.events();
    // The full life of a READ, across three layers and both nodes:
    int readBegin =
        findEvent(evs, obs::TracePhase::kAsyncBegin, "rmem", "read");
    int txFrame = findEvent(evs, obs::TracePhase::kSpan, "net", "tx_frame");
    int rxIrq = findEvent(evs, obs::TracePhase::kInstant, "net", "rx_irq");
    int serve = findEvent(evs, obs::TracePhase::kSpan, "rmem", "serve_read");
    int deposit =
        findEvent(evs, obs::TracePhase::kSpan, "rmem", "deposit_read");
    int readEnd = findEvent(evs, obs::TracePhase::kAsyncEnd, "rmem", "read");

    ASSERT_GE(readBegin, 0);
    ASSERT_GE(txFrame, 0);
    ASSERT_GE(rxIrq, 0);
    ASSERT_GE(serve, 0);
    ASSERT_GE(deposit, 0);
    ASSERT_GE(readEnd, 0);

    // The request is issued on the client, served on the server, and
    // the result deposited back on the client.
    EXPECT_EQ(evs[static_cast<size_t>(readBegin)].node, "nodeA");
    EXPECT_EQ(evs[static_cast<size_t>(serve)].node, "nodeB");
    EXPECT_EQ(evs[static_cast<size_t>(deposit)].node, "nodeA");

    // Causal ordering in simulated time.
    sim::Time tBegin = evs[static_cast<size_t>(readBegin)].ts;
    sim::Time tServe = evs[static_cast<size_t>(serve)].ts;
    sim::Time tDeposit = evs[static_cast<size_t>(deposit)].ts;
    sim::Time tEnd = evs[static_cast<size_t>(readEnd)].ts;
    EXPECT_LE(tBegin, tServe);
    EXPECT_LE(tServe, tDeposit);
    EXPECT_LE(tDeposit, tEnd);

    // Phase metrics recorded the same operation.
    const rmem::OpPhaseStats &rd = c.engineA.metrics().read;
    EXPECT_EQ(rd.totalUs.count(), 1u);
    EXPECT_GT(rd.totalUs.mean(), 0.0);
    EXPECT_GT(rd.wireUs.mean(), 0.0);
    EXPECT_GT(rd.controllerUs.mean(), 0.0);
    // software + wire + controller == total (clamped decomposition).
    EXPECT_NEAR(rd.softwareUs.mean() + rd.wireUs.mean() +
                    rd.controllerUs.mean(),
                rd.totalUs.mean(), 0.01);

    // And the export names both nodes as processes.
    std::string json = tr.toChromeJson();
    EXPECT_NE(json.find("nodeA"), std::string::npos);
    EXPECT_NE(json.find("nodeB"), std::string::npos);
}

} // namespace
} // namespace remora::test
