/**
 * @file
 * Fault-injection and recovery tests: the deterministic injector
 * itself, the wire's at-most-once reliability layer under loss and
 * corruption, AAL5 error attribution and tail resync, RPC retry with
 * server-side dedup, and the DFS read window degrading across an
 * outage instead of surfacing a timeout.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster_fixture.h"
#include "net/aal5.h"
#include "net/fault.h"
#include "rpc/transport.h"
#include "util/crc.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

// ----------------------------------------------------------------------
// FaultInjector: deterministic, seeded, per-link decision streams
// ----------------------------------------------------------------------

std::vector<net::FaultInjector::Action>
drawDecisions(sim::Simulator &sim, net::FaultInjector &inj, int cells)
{
    std::vector<net::FaultInjector::Action> actions;
    for (int i = 0; i < cells; ++i) {
        net::Cell cell;
        cell.vpi = 2;
        cell.vci = 1;
        cell.payload.fill(static_cast<uint8_t>(i));
        auto d = inj.decide(cell, sim.now() + sim::usec(2u * i + 2),
                            sim::usec(2));
        actions.push_back(d.action);
    }
    return actions;
}

TEST(FaultInjector, SameSeedSameLinkReplaysIdentically)
{
    net::FaultPlan plan;
    plan.seed = 7;
    plan.dropRate = 0.3;
    plan.corruptRate = 0.1;
    plan.delayRate = 0.2;

    sim::Simulator simA;
    net::FaultInjector a(simA, plan, "n1->n2");
    auto actionsA = drawDecisions(simA, a, 400);

    sim::Simulator simB;
    net::FaultInjector b(simB, plan, "n1->n2");
    auto actionsB = drawDecisions(simB, b, 400);

    EXPECT_EQ(actionsA, actionsB);
    EXPECT_EQ(a.drops(), b.drops());
    EXPECT_EQ(a.corrupts(), b.corrupts());
    EXPECT_EQ(a.delays(), b.delays());
    EXPECT_GT(a.drops(), 0u);
    // Every fault decision was folded into the determinism digest, and
    // identically so.
    EXPECT_EQ(simA.digest().value(), simB.digest().value());
}

TEST(FaultInjector, LinkNameDecorrelatesTheTwoDirections)
{
    net::FaultPlan plan;
    plan.seed = 7;
    plan.dropRate = 0.3;

    sim::Simulator simA;
    net::FaultInjector fwd(simA, plan, "n1->n2");
    auto fwdActions = drawDecisions(simA, fwd, 400);

    sim::Simulator simB;
    net::FaultInjector rev(simB, plan, "n2->n1");
    auto revActions = drawDecisions(simB, rev, 400);

    EXPECT_NE(fwdActions, revActions);
}

TEST(FaultInjector, PauseWindowDefersDeliveryPastItsEnd)
{
    net::FaultPlan plan;
    plan.pauses.push_back({sim::usec(100), sim::usec(200)});

    sim::Simulator sim;
    net::FaultInjector inj(sim, plan, "L");
    uint64_t deferred = 0;
    for (int i = 0; i < 150; ++i) {
        net::Cell cell;
        sim::Time nominal = sim::usec(2u * i); // 0 .. 298 us
        auto d = inj.decide(cell, nominal, sim::usec(2));
        ASSERT_EQ(d.action, net::FaultInjector::Action::kDeliver);
        if (nominal >= sim::usec(100) && nominal < sim::usec(200)) {
            ++deferred;
            EXPECT_GE(nominal + d.extraDelay, sim::usec(200))
                << "cell inside the outage window delivered early";
        } else {
            EXPECT_EQ(d.extraDelay, 0);
        }
    }
    EXPECT_EQ(inj.pausedDeliveries(), deferred);
    EXPECT_EQ(deferred, 50u);
}

// ----------------------------------------------------------------------
// Drops at the link layer: flow control must survive the loss
// ----------------------------------------------------------------------

TEST(FaultCluster, TotalLossNeitherLeaksCreditsNorWedgesTheLink)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "s");
    ASSERT_TRUE(seg.ok());
    c.sim.run();

    net::FaultPlan plan;
    plan.seed = 3;
    plan.dropRate = 1.0;
    c.network.installFaults(plan);

    // Far more cells than the link has credits: if a dropped cell's
    // credit leaked, the pump would wedge partway through.
    constexpr int kWrites = 64;
    uint64_t served0 = c.engineB.stats().requestsServed.value();
    for (int i = 0; i < kWrites; ++i) {
        auto w = c.engineA.write(seg.value(), 0,
                                 std::vector<uint8_t>(40, 1));
        runToCompletion(c.sim, w); // local completion only
    }
    c.sim.run();

    EXPECT_EQ(c.network.totalFaultDrops(), static_cast<uint64_t>(kWrites));
    EXPECT_EQ(c.engineB.stats().requestsServed.value(), served0);
    EXPECT_EQ(c.sim.blockedTaskCount(), 0u);
}

// ----------------------------------------------------------------------
// Wire reliability: every write survives drops, applied exactly once
// ----------------------------------------------------------------------

TEST(FaultCluster, ReliableWireDeliversEveryWriteExactlyOnceUnderDrops)
{
    auto runScenario = [](uint64_t faultSeed) -> uint64_t {
        TwoNodeCluster c;
        c.engineA.wire().enableReliability();
        c.engineB.wire().enableReliability();
        mem::Process &server = c.nodeB.spawnProcess("server");
        mem::Vaddr base = server.space().allocRegion(8192);
        auto seg = c.engineB.exportSegment(server, base, 8192,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kConditional,
                                           "s");
        EXPECT_TRUE(seg.ok());
        c.sim.run();

        net::FaultPlan plan;
        plan.seed = faultSeed;
        plan.dropRate = 0.15;
        c.network.installFaults(plan);

        constexpr int kWrites = 24;
        uint64_t served0 = c.engineB.stats().requestsServed.value();
        std::vector<std::vector<uint8_t>> expected;
        for (int i = 0; i < kWrites; ++i) {
            std::vector<uint8_t> data(64 + 8u * static_cast<unsigned>(i));
            for (size_t j = 0; j < data.size(); ++j) {
                data[j] = static_cast<uint8_t>(i * 37 + j);
            }
            expected.push_back(data);
            auto w = c.engineA.write(seg.value(),
                                     static_cast<uint32_t>(i) * 256, data,
                                     /*notify=*/true);
            runToCompletion(c.sim, w);
        }
        c.sim.run(); // drain retransmissions until everything is acked

        // Exactly-once apply: each WRITE reached the engine once, no
        // retransmitted duplicate re-executed, every notification
        // posted exactly once.
        EXPECT_EQ(c.engineB.stats().requestsServed.value() - served0,
                  static_cast<uint64_t>(kWrites));
        auto *ch = c.engineB.channel(seg.value().descriptor);
        EXPECT_NE(ch, nullptr);
        if (ch != nullptr) {
            rmem::Notification n;
            int notifications = 0;
            while (ch->tryNext(n)) {
                ++notifications;
            }
            EXPECT_EQ(notifications, kWrites);
        }

        // Zero lost user-visible operations: final memory is exact.
        for (int i = 0; i < kWrites; ++i) {
            std::vector<uint8_t> got(expected[i].size());
            EXPECT_TRUE(
                server.space()
                    .read(base + static_cast<uint64_t>(i) * 256, got)
                    .ok());
            EXPECT_EQ(got, expected[i]) << "write " << i;
        }

        // Loss actually happened and was actually repaired.
        EXPECT_GT(c.network.totalFaultDrops(), 0u);
        EXPECT_GT(c.engineA.wire().retransmits(), 0u);
        EXPECT_GT(c.engineB.wire().acksSent(), 0u);
        EXPECT_EQ(c.engineA.wire().sendFailures(), 0u);
        EXPECT_EQ(c.sim.blockedTaskCount(), 0u);
        return c.sim.digest().value();
    };

    // The faulty run replays bit-identically under the same seed.
    uint64_t once = runScenario(42);
    uint64_t twice = runScenario(42);
    EXPECT_EQ(once, twice);
    EXPECT_NE(runScenario(43), once);
}

TEST(FaultCluster, CorruptionIsDetectedAndRepairedByRetransmission)
{
    TwoNodeCluster c;
    c.engineA.wire().enableReliability();
    c.engineB.wire().enableReliability();
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(16384);
    auto seg = c.engineB.exportSegment(server, base, 16384,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kConditional,
                                       "s");
    ASSERT_TRUE(seg.ok());
    c.sim.run();

    // 3% per cell: a ~12-cell frame still gets hit about every third
    // transmission, but head-of-line recovery within the retransmit
    // budget is a near-certainty (0.31^12 per envelope).
    net::FaultPlan plan;
    plan.seed = 17;
    plan.corruptRate = 0.03;
    c.network.installFaults(plan);

    constexpr int kWrites = 20;
    std::vector<uint8_t> data(500);
    for (size_t j = 0; j < data.size(); ++j) {
        data[j] = static_cast<uint8_t>(j * 3 + 1);
    }
    for (int i = 0; i < kWrites; ++i) {
        auto w = c.engineA.write(seg.value(),
                                 static_cast<uint32_t>(i) * 512, data,
                                 /*notify=*/true);
        runToCompletion(c.sim, w);
    }
    c.sim.run();

    // Consuming the notifications is what gives the verification reads
    // below their happens-before edge over the remote deposits.
    auto *ch = c.engineB.channel(seg.value().descriptor);
    ASSERT_NE(ch, nullptr);
    rmem::Notification n;
    int notifications = 0;
    while (ch->tryNext(n)) {
        ++notifications;
    }
    EXPECT_EQ(notifications, kWrites);

    for (int i = 0; i < kWrites; ++i) {
        std::vector<uint8_t> got(data.size());
        ASSERT_TRUE(server.space()
                        .read(base + static_cast<uint64_t>(i) * 512, got)
                        .ok());
        EXPECT_EQ(got, data) << "write " << i;
    }
    // Some layer saw the damage: the frame CRC, the envelope CRC
    // (raw cells AAL5 never covers), or the decoder.
    const auto &wireB = c.engineB.wire();
    const auto &wireA = c.engineA.wire();
    uint64_t detected = wireB.reassembler().crcErrors() +
                        wireA.reassembler().crcErrors() +
                        wireB.corruptEnvelopes() + wireA.corruptEnvelopes() +
                        wireB.decodeErrors() + wireA.decodeErrors();
    EXPECT_GT(detected, 0u);
    EXPECT_GT(c.engineA.wire().retransmits(), 0u);
    EXPECT_EQ(c.sim.blockedTaskCount(), 0u);
}

// ----------------------------------------------------------------------
// AAL5 error attribution and tail resync
// ----------------------------------------------------------------------

TEST(Aal5Fault, LengthOnlyCorruptionCountsLengthErrorNotCrc)
{
    std::vector<uint8_t> frame(100);
    for (size_t i = 0; i < frame.size(); ++i) {
        frame[i] = static_cast<uint8_t>(i);
    }
    auto cells = net::aal5Segment(2, 1, frame);

    // Rebuild the CS-PDU, forge LEN to an impossible value, then
    // recompute the CRC so only the length check can object (the CRC
    // covers LEN, so a bare LEN flip would trip the CRC first).
    std::vector<uint8_t> pdu;
    for (const auto &cell : cells) {
        pdu.insert(pdu.end(), cell.payload.begin(), cell.payload.end());
    }
    pdu[pdu.size() - 6] = 0xff; // LEN low byte (little-endian)
    pdu[pdu.size() - 5] = 0xff; // LEN high byte
    uint32_t crc = util::crc32Ieee(
        std::span<const uint8_t>(pdu.data(), pdu.size() - 4));
    for (int i = 0; i < 4; ++i) {
        pdu[pdu.size() - 4 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(crc >> (8 * i));
    }
    for (size_t i = 0; i < cells.size(); ++i) {
        std::copy_n(pdu.data() + i * net::Cell::kPayloadBytes,
                    net::Cell::kPayloadBytes, cells[i].payload.begin());
    }

    net::Aal5Reassembler reasm;
    std::optional<net::Aal5Reassembler::Frame> out;
    for (const auto &cell : cells) {
        out = reasm.feed(cell);
    }
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(reasm.lengthErrors(), 1u);
    EXPECT_EQ(reasm.crcErrors(), 0u);
}

TEST(Aal5Fault, LostEndCellResyncsOntoTheFollowingFrame)
{
    std::vector<uint8_t> frameA(300, 0xaa);
    std::vector<uint8_t> frameB(200);
    for (size_t i = 0; i < frameB.size(); ++i) {
        frameB[i] = static_cast<uint8_t>(i * 7);
    }
    auto cellsA = net::aal5Segment(2, 1, frameA);
    auto cellsB = net::aal5Segment(2, 1, frameB);

    net::Aal5Reassembler reasm;
    std::optional<net::Aal5Reassembler::Frame> out;
    // Frame A loses its end cell: B's cells pile onto A's partial.
    for (size_t i = 0; i + 1 < cellsA.size(); ++i) {
        out = reasm.feed(cellsA[i]);
        EXPECT_FALSE(out.has_value());
    }
    for (const auto &cell : cellsB) {
        out = reasm.feed(cell);
    }
    // The glue fails CRC (counted) but the tail — frame B — is
    // recovered intact instead of being poisoned.
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, frameB);
    EXPECT_EQ(reasm.crcErrors(), 1u);
    EXPECT_EQ(reasm.framesResynced(), 1u);

    // The stream stays usable afterwards.
    std::vector<uint8_t> frameC(64, 0x5c);
    for (const auto &cell : net::aal5Segment(2, 1, frameC)) {
        out = reasm.feed(cell);
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, frameC);
}

TEST(Aal5Fault, MidFrameLossStaysLostWithoutFalseResync)
{
    std::vector<uint8_t> frameA(300, 0x11);
    std::vector<uint8_t> frameB(200, 0x22);
    auto cellsA = net::aal5Segment(2, 1, frameA);
    auto cellsB = net::aal5Segment(2, 1, frameB);

    net::Aal5Reassembler reasm;
    std::optional<net::Aal5Reassembler::Frame> out;
    // Drop a MIDDLE cell of frame A: its trailer (and end flag) still
    // arrive, so this is a genuine CRC failure, not a glue.
    for (size_t i = 0; i < cellsA.size(); ++i) {
        if (i == 2) {
            continue;
        }
        out = reasm.feed(cellsA[i]);
    }
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(reasm.crcErrors(), 1u);
    EXPECT_EQ(reasm.framesResynced(), 0u);

    // Frame B reassembles cleanly behind the loss.
    for (const auto &cell : cellsB) {
        out = reasm.feed(cell);
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, frameB);
}

// ----------------------------------------------------------------------
// RPC retry, dedup, and late replies
// ----------------------------------------------------------------------

struct RpcFaultFixture
{
    TwoNodeCluster cluster;
    rpc::RpcTransport client;
    rpc::RpcTransport server;
    int handlerRuns = 0;

    RpcFaultFixture()
        : client(cluster.engineA.wire()), server(cluster.engineB.wire())
    {
        server.registerProc(
            7, [this](net::NodeId, std::vector<uint8_t> args)
                -> sim::Task<std::vector<uint8_t>> {
                ++handlerRuns;
                co_await cluster.nodeB.cpu().use(
                    sim::usec(50), sim::CpuCategory::kProcExec);
                std::reverse(args.begin(), args.end());
                co_return args;
            });
    }
};

TEST(RpcFault, RetriedCallsSurviveLossAndExecuteExactlyOnce)
{
    RpcFaultFixture f;
    net::FaultPlan plan;
    plan.seed = 99;
    plan.dropRate = 0.4;
    f.cluster.network.installFaults(plan);

    constexpr int kCalls = 8;
    for (int i = 0; i < kCalls; ++i) {
        auto t = f.client.call(2, 7, {1, 2, static_cast<uint8_t>(i)},
                               sim::msec(3), /*maxRetries=*/10);
        auto reply = runToCompletion(f.cluster.sim, t);
        ASSERT_TRUE(reply.ok())
            << "call " << i << ": " << reply.status().toString();
        EXPECT_EQ(reply.value().front(), static_cast<uint8_t>(i));
    }
    f.cluster.sim.run();

    // At-most-once: duplicates were collapsed by the idempotency key,
    // so each successful call ran its handler exactly one time.
    EXPECT_EQ(f.handlerRuns, kCalls);
    EXPECT_GT(f.client.stats().retries.value(), 0u);
    EXPECT_EQ(f.cluster.sim.blockedTaskCount(), 0u);
}

TEST(RpcFault, TimeoutShorterThanServiceDedupsWithoutReexecution)
{
    RpcFaultFixture f; // no faults: the timeout itself forces retries
    auto t = f.client.call(2, 7, {9}, sim::usec(200), /*maxRetries=*/8);
    auto reply = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    f.cluster.sim.run();

    EXPECT_EQ(f.handlerRuns, 1);
    EXPECT_GE(f.client.stats().retries.value(), 1u);
    EXPECT_GE(f.server.stats().dedupHits.value(), 1u);
    EXPECT_EQ(f.cluster.sim.blockedTaskCount(), 0u);
}

TEST(RpcFault, LateReplyIsCountedNotSilentlyDropped)
{
    RpcFaultFixture f;
    auto t = f.client.call(2, 7, {1}, sim::usec(200), /*maxRetries=*/0);
    auto reply = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
    EXPECT_EQ(f.client.stats().lateReplies.value(), 0u);
    f.cluster.sim.run(); // the reply still arrives — late
    EXPECT_EQ(f.client.stats().lateReplies.value(), 1u);
    EXPECT_EQ(f.client.stats().timeouts.value(), 1u);
}

TEST(RpcFault, TimeoutVersusReplyOrderingIsSaneUnderPerturbation)
{
    // Sweep the timeout through the reply's arrival neighbourhood under
    // several same-instant perturbation seeds. Whatever order the tie
    // resolves in, exactly one outcome happens, the counters agree with
    // it, and a late reply is always accounted for.
    for (uint64_t perturb : {0ull, 1ull, 2ull}) {
        for (sim::Duration timeout = sim::usec(1000);
             timeout <= sim::usec(1500); timeout += sim::usec(25)) {
            RpcFaultFixture f;
            f.cluster.sim.setPerturbation(perturb);
            auto t = f.client.call(2, 7, {5}, timeout, /*maxRetries=*/0);
            auto reply = runToCompletion(f.cluster.sim, t);
            f.cluster.sim.run();
            const auto &st = f.client.stats();
            if (reply.ok()) {
                EXPECT_EQ(st.timeouts.value(), 0u)
                    << "perturb=" << perturb << " timeout=" << timeout;
                EXPECT_EQ(st.lateReplies.value(), 0u);
            } else {
                EXPECT_EQ(st.timeouts.value(), 1u)
                    << "perturb=" << perturb << " timeout=" << timeout;
                EXPECT_EQ(st.lateReplies.value(), 1u);
            }
            EXPECT_EQ(f.cluster.sim.blockedTaskCount(), 0u);
        }
    }
}

} // namespace
} // namespace remora
