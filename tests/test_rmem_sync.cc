/**
 * @file
 * Tests for the synchronization library (§3.4) and the heartbeat
 * failure detector (§3.7), plus the §3.5 encryption cost hook.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/sync.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::SwitchedCluster;
using test::TwoNodeCluster;

struct LockFixture
{
    TwoNodeCluster cluster;
    mem::Process &home;
    mem::Process &worker;
    rmem::ImportedSegment shared;
    rmem::SegmentId scratch = 0;
    mem::Vaddr sharedBase = 0;

    LockFixture()
        : home(cluster.nodeB.spawnProcess("home")),
          worker(cluster.nodeA.spawnProcess("worker"))
    {
        sharedBase = home.space().allocRegion(4096);
        auto h = cluster.engineB.exportSegment(home, sharedBase, 4096,
                                               rmem::Rights::kAll,
                                               rmem::NotifyPolicy::kNever,
                                               "lockpage");
        EXPECT_TRUE(h.ok());
        shared = h.value();
        mem::Vaddr lbase = worker.space().allocRegion(4096);
        auto l = cluster.engineA.exportSegment(worker, lbase, 4096,
                                               rmem::Rights::kAll,
                                               rmem::NotifyPolicy::kNever,
                                               "scratch");
        EXPECT_TRUE(l.ok());
        scratch = l.value().descriptor;
        cluster.sim.run();
    }
};

TEST(SpinLock, AcquireReleaseCycle)
{
    LockFixture f;
    rmem::SpinLock lock(f.cluster.engineA, f.shared, 0, f.scratch, 0, 0xA1);
    auto a = lock.acquire();
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a).ok());
    // The lock word holds our tag at the home node.
    f.cluster.sim.run();
    EXPECT_EQ(f.home.space().readWord(f.sharedBase).value(), 0xA1u);
    auto r = lock.release();
    ASSERT_TRUE(runToCompletion(f.cluster.sim, r).ok());
    f.cluster.sim.run();
    EXPECT_EQ(f.home.space().readWord(f.sharedBase).value(), 0u);
    EXPECT_EQ(lock.contentionCount(), 0u);
}

TEST(SpinLock, TryAcquireFailsWhenHeld)
{
    LockFixture f;
    rmem::SpinLock a(f.cluster.engineA, f.shared, 0, f.scratch, 0, 0xA1);
    rmem::SpinLock b(f.cluster.engineA, f.shared, 0, f.scratch, 4, 0xB2);
    auto t1 = a.acquire();
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t1).ok());
    auto t2 = b.tryAcquire();
    EXPECT_EQ(runToCompletion(f.cluster.sim, t2).code(),
              util::ErrorCode::kResource);
    auto t3 = a.release();
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t3).ok());
    auto t4 = b.tryAcquire();
    EXPECT_TRUE(runToCompletion(f.cluster.sim, t4).ok());
}

TEST(SpinLock, AcquireTimesOutUnderDeadlock)
{
    LockFixture f;
    rmem::SpinLock holder(f.cluster.engineA, f.shared, 0, f.scratch, 0,
                          0xA1);
    auto t1 = holder.acquire();
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t1).ok());

    rmem::SpinLockParams p;
    p.acquireTimeout = sim::msec(2);
    rmem::SpinLock blocked(f.cluster.engineA, f.shared, 0, f.scratch, 4,
                           0xB2, p);
    auto t2 = blocked.acquire();
    EXPECT_EQ(runToCompletion(f.cluster.sim, t2).code(),
              util::ErrorCode::kTimeout);
    EXPECT_GT(blocked.contentionCount(), 0u);
}

TEST(SpinLock, MutualExclusionAcrossNodes)
{
    SwitchedCluster c(3);
    mem::Process &home = c.nodes[0]->spawnProcess("home");
    mem::Vaddr base = home.space().allocRegion(4096);
    auto shared = c.engines[0]->exportSegment(home, base, 4096,
                                              rmem::Rights::kAll,
                                              rmem::NotifyPolicy::kNever,
                                              "page");
    ASSERT_TRUE(shared.ok());

    struct Worker
    {
        std::unique_ptr<rmem::SpinLock> lock;
        rmem::SegmentId scratch;
        sim::Task<void> task{};
    };
    std::vector<Worker> workers(2);
    int inCritical = 0;
    int maxInCritical = 0;
    int totalEntries = 0;

    for (size_t i = 0; i < 2; ++i) {
        auto &eng = *c.engines[i + 1];
        mem::Process &proc = c.nodes[i + 1]->spawnProcess("w");
        mem::Vaddr lbase = proc.space().allocRegion(4096);
        auto l = eng.exportSegment(proc, lbase, 4096, rmem::Rights::kAll,
                                   rmem::NotifyPolicy::kNever, "s");
        ASSERT_TRUE(l.ok());
        workers[i].scratch = l.value().descriptor;
        workers[i].lock = std::make_unique<rmem::SpinLock>(
            eng, shared.value(), 0, workers[i].scratch, 0,
            static_cast<uint32_t>(0x100 + i));
    }
    for (size_t i = 0; i < 2; ++i) {
        workers[i].task = [](rmem::SpinLock *lock, sim::Simulator *sim,
                             int *in, int *maxIn,
                             int *entries) -> sim::Task<void> {
            for (int k = 0; k < 15; ++k) {
                auto s = co_await lock->acquire();
                REMORA_ASSERT(s.ok());
                ++*in;
                ++*entries;
                *maxIn = std::max(*maxIn, *in);
                co_await sim::delay(*sim, sim::usec(200)); // critical work
                --*in;
                auto r = co_await lock->release();
                REMORA_ASSERT(r.ok());
            }
        }(workers[i].lock.get(), &c.sim, &inCritical, &maxInCritical,
                         &totalEntries);
    }
    c.sim.run();
    for (auto &w : workers) {
        EXPECT_TRUE(w.task.done());
        w.task.result();
    }
    EXPECT_EQ(totalEntries, 30);
    EXPECT_EQ(maxInCritical, 1) << "mutual exclusion violated";
}

// ----------------------------------------------------------------------
// Heartbeat failure detector
// ----------------------------------------------------------------------

TEST(Heartbeat, HealthyPeerNeverDeclaredFailed)
{
    TwoNodeCluster c;
    mem::Process &pub = c.nodeB.spawnProcess("publisher");
    mem::Process &mon = c.nodeA.spawnProcess("monitor");
    rmem::HeartbeatPublisher publisher(c.engineB, pub);
    bool failed = false;
    rmem::HeartbeatMonitor monitor(c.engineA, mon, publisher.handle(),
                                   [&](net::NodeId) { failed = true; });
    publisher.start();
    monitor.start();
    c.sim.run(sim::msec(500));
    EXPECT_FALSE(failed);
    EXPECT_FALSE(monitor.peerFailed());
    EXPECT_GT(publisher.beats(), 10u);
    EXPECT_GT(monitor.probes(), 5u);
    publisher.stop();
    monitor.stop();
    c.sim.run();
}

TEST(Heartbeat, StoppedPublisherIsDetected)
{
    TwoNodeCluster c;
    mem::Process &pub = c.nodeB.spawnProcess("publisher");
    mem::Process &mon = c.nodeA.spawnProcess("monitor");
    rmem::HeartbeatPublisher publisher(c.engineB, pub);
    net::NodeId failedNode = 0;
    rmem::HeartbeatMonitor monitor(c.engineA, mon, publisher.handle(),
                                   [&](net::NodeId n) { failedNode = n; });
    publisher.start();
    monitor.start();
    c.sim.run(sim::msec(100));
    EXPECT_FALSE(monitor.peerFailed());

    // The publisher process dies (stops bumping) but the node's kernel
    // still answers reads: the counter stops advancing.
    publisher.stop();
    c.sim.run(sim::msec(400));
    EXPECT_TRUE(monitor.peerFailed());
    EXPECT_EQ(failedNode, 2);
}

TEST(Heartbeat, SilentKernelIsDetected)
{
    TwoNodeCluster c;
    mem::Process &pub = c.nodeB.spawnProcess("publisher");
    mem::Process &mon = c.nodeA.spawnProcess("monitor");
    rmem::HeartbeatPublisher publisher(c.engineB, pub);
    bool failed = false;
    rmem::HeartbeatMonitor monitor(c.engineA, mon, publisher.handle(),
                                   [&](net::NodeId) { failed = true; });
    publisher.start();
    monitor.start();
    c.sim.run(sim::msec(100));

    // Whole-node crash: the kernel stops answering entirely.
    publisher.stop();
    c.engineB.wire().setRmemHandler([](net::NodeId, rmem::Message &&) {});
    c.sim.run(sim::msec(400));
    EXPECT_TRUE(failed);
}

// ----------------------------------------------------------------------
// Encryption cost hook (§3.5)
// ----------------------------------------------------------------------

TEST(Security, CryptoCostSlowsTheWire)
{
    auto measureReadUs = [](const rmem::CostModel &costs) {
        TwoNodeCluster c(costs);
        mem::Process &server = c.nodeB.spawnProcess("server");
        mem::Process &client = c.nodeA.spawnProcess("client");
        mem::Vaddr base = server.space().allocRegion(4096);
        auto seg = c.engineB.exportSegment(server, base, 4096,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever, "s");
        EXPECT_TRUE(seg.ok());
        mem::Vaddr lbase = client.space().allocRegion(4096);
        auto local = c.engineA.exportSegment(client, lbase, 4096,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "l");
        EXPECT_TRUE(local.ok());
        c.sim.run();
        sim::Time t0 = c.sim.now();
        auto t = c.engineA.read(seg.value(), 0, local.value().descriptor, 0,
                                40);
        runToCompletion(c.sim, t);
        return sim::toUsec(c.sim.now() - t0);
    };

    rmem::CostModel plain;
    rmem::CostModel hardware;
    hardware.cryptoWordCost = sim::usec(0.05); // AN1-style link crypto
    rmem::CostModel software;
    software.cryptoWordCost = sim::usec(2.0); // software DES, 25 MHz CPU

    double plainUs = measureReadUs(plain);
    double hwUs = measureReadUs(hardware);
    double swUs = measureReadUs(software);

    // Hardware crypto costs little; software crypto wrecks the latency
    // (the paper's §3.5 prediction).
    EXPECT_LT(hwUs, plainUs * 1.15);
    EXPECT_GT(swUs, plainUs * 2.0);
}

} // namespace
} // namespace remora
