/**
 * @file
 * Remote-memory engine tests: the meta-instructions end to end across
 * two simulated nodes, including every protection rejection path.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/engine.h"
#include "util/hash.h"

namespace remora {
namespace {

using test::TwoNodeCluster;
using test::runToCompletion;

/** Export a fresh segment on the given engine and return the handle. */
rmem::ImportedSegment
makeSegment(rmem::RmemEngine &engine, mem::Process &proc, uint32_t size,
            rmem::Rights rights = rmem::Rights::kAll,
            rmem::NotifyPolicy policy = rmem::NotifyPolicy::kConditional)
{
    mem::Vaddr base = proc.space().allocRegion(size);
    auto h = engine.exportSegment(proc, base, size, rights, policy, "seg");
    EXPECT_TRUE(h.ok()) << h.status().toString();
    return h.value();
}

TEST(RmemEngine, RemoteWriteDepositsData)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "data");
    ASSERT_TRUE(seg.ok());

    std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
    auto task = c.engineA.write(seg.value(), 100, payload);
    util::Status s = runToCompletion(c.sim, task);
    EXPECT_TRUE(s.ok()) << s.toString();
    c.sim.run();

    std::vector<uint8_t> check(payload.size());
    ASSERT_TRUE(server.space().read(base + 100, check).ok());
    EXPECT_EQ(check, payload);
}

TEST(RmemEngine, RemoteReadFetchesData)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    std::vector<uint8_t> content(64);
    for (size_t i = 0; i < content.size(); ++i) {
        content[i] = static_cast<uint8_t>(i * 3);
    }
    ASSERT_TRUE(server.space().write(base + 40, content).ok());
    auto seg = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "data");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    auto task = c.engineA.read(seg.value(), 40, local.descriptor, 8,
                               static_cast<uint32_t>(content.size()));
    rmem::ReadOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok()) << out.status.toString();
    EXPECT_EQ(out.data, content);

    // The data must also have been deposited in the local segment.
    std::vector<uint8_t> deposited(content.size());
    auto *desc = c.engineA.descriptor(local.descriptor);
    ASSERT_NE(desc, nullptr);
    ASSERT_TRUE(client.space().read(desc->base + 8, deposited).ok());
    EXPECT_EQ(deposited, content);
}

TEST(RmemEngine, CasSwapsExactlyOnMatch)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    ASSERT_TRUE(server.space().writeWord(base + 16, 0xAABBCCDD).ok());
    auto seg = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "sync");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    // Mismatched comparand: no swap.
    auto miss = c.engineA.cas(seg.value(), 16, 0x11111111, 0x22222222,
                              local.descriptor, 0);
    rmem::CasOutcome out = runToCompletion(c.sim, miss);
    ASSERT_TRUE(out.status.ok());
    EXPECT_FALSE(out.success);
    EXPECT_EQ(out.observed, 0xAABBCCDDu);

    // Matching comparand: swap.
    auto hit = c.engineA.cas(seg.value(), 16, 0xAABBCCDD, 0x22222222,
                             local.descriptor, 4);
    out = runToCompletion(c.sim, hit);
    ASSERT_TRUE(out.status.ok());
    EXPECT_TRUE(out.success);
    c.sim.run();
    EXPECT_EQ(server.space().readWord(base + 16).value(), 0x22222222u);

    // The success word must be deposited locally (1 after the hit).
    auto *desc = c.engineA.descriptor(local.descriptor);
    EXPECT_EQ(client.space().readWord(desc->base + 4).value(), 1u);
    EXPECT_EQ(client.space().readWord(desc->base + 0).value(), 0u);
}

TEST(RmemEngine, BlockWriteRoundTrip)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(64 * 1024);
    auto seg = c.engineB.exportSegment(server, base, 64 * 1024,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "blk");
    ASSERT_TRUE(seg.ok());

    std::vector<uint8_t> block(8192);
    for (size_t i = 0; i < block.size(); ++i) {
        block[i] = static_cast<uint8_t>(i ^ (i >> 8));
    }
    auto task = c.engineA.write(seg.value(), 4096, block);
    util::Status s = runToCompletion(c.sim, task);
    ASSERT_TRUE(s.ok());
    c.sim.run();

    std::vector<uint8_t> check(block.size());
    ASSERT_TRUE(server.space().read(base + 4096, check).ok());
    EXPECT_EQ(check, block);
}

TEST(RmemEngine, ChunkedWriteBeyondFrameLimit)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    uint32_t size = 256 * 1024;
    mem::Vaddr base = server.space().allocRegion(size);
    auto seg = c.engineB.exportSegment(server, base, size, rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "big");
    ASSERT_TRUE(seg.ok());

    std::vector<uint8_t> data(150000);
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(util::mix64(i));
    }
    auto task = c.engineA.write(seg.value(), 0, data);
    util::Status s = runToCompletion(c.sim, task);
    ASSERT_TRUE(s.ok());
    c.sim.run();

    std::vector<uint8_t> check(data.size());
    ASSERT_TRUE(server.space().read(base, check).ok());
    EXPECT_EQ(check, data);
}

// ----------------------------------------------------------------------
// Protection: every rejection path NAKs
// ----------------------------------------------------------------------

TEST(RmemProtection, WriteWithoutRightIsRejectedLocally)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096, rmem::Rights::kRead);

    auto task = c.engineA.write(seg, 0, {1, 2, 3});
    util::Status s = runToCompletion(c.sim, task);
    EXPECT_EQ(s.code(), util::ErrorCode::kAccessDenied);
}

TEST(RmemProtection, ForgedRightsAreRejectedRemotely)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096, rmem::Rights::kRead);

    // Forge a handle claiming write rights; the *remote* kernel must
    // still reject it — protection is enforced at the destination.
    rmem::ImportedSegment forged = seg;
    forged.rights = rmem::Rights::kAll;
    auto task = c.engineA.write(forged, 0, {9, 9, 9});
    util::Status s = runToCompletion(c.sim, task);
    EXPECT_TRUE(s.ok()); // local completion: accepted by the network
    c.sim.run();
    EXPECT_EQ(c.engineA.nakCount(), 1u);
    EXPECT_EQ(c.engineB.stats().naksSent.value(), 1u);
}

TEST(RmemProtection, StaleGenerationIsRejected)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    mem::Vaddr base = server.space().allocRegion(4096);
    auto h1 = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                      rmem::NotifyPolicy::kNever, "v1");
    ASSERT_TRUE(h1.ok());
    rmem::ImportedSegment stale = h1.value();

    // Revoke and re-export: same slot, new generation.
    ASSERT_TRUE(c.engineB.revokeSegment(stale.descriptor).ok());
    auto h2 = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                      rmem::NotifyPolicy::kNever, "v2");
    ASSERT_TRUE(h2.ok());
    ASSERT_EQ(h2.value().descriptor, stale.descriptor);
    ASSERT_NE(h2.value().generation, stale.generation);

    auto task = c.engineA.read(stale, 0, local.descriptor, 0, 16);
    rmem::ReadOutcome out = runToCompletion(c.sim, task);
    EXPECT_EQ(out.status.code(), util::ErrorCode::kStaleGeneration);
}

TEST(RmemProtection, OutOfBoundsIsRejected)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);
    auto seg = makeSegment(c.engineB, server, 128);

    // Local bounds check on the importer side.
    auto w = c.engineA.write(seg, 120, std::vector<uint8_t>(16));
    EXPECT_EQ(runToCompletion(c.sim, w).code(),
              util::ErrorCode::kOutOfBounds);

    // Forged size: the destination kernel still enforces bounds.
    rmem::ImportedSegment forged = seg;
    forged.size = 1 << 20;
    auto r = c.engineA.read(forged, 4000, local.descriptor, 0, 64);
    rmem::ReadOutcome out = runToCompletion(c.sim, r);
    EXPECT_EQ(out.status.code(), util::ErrorCode::kOutOfBounds);
}

TEST(RmemProtection, WriteInhibitBlocksWritesOnly)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);
    auto seg = makeSegment(c.engineB, server, 4096);

    ASSERT_TRUE(c.engineB.setWriteInhibit(seg.descriptor, true).ok());

    auto w = c.engineA.write(seg, 0, {1});
    EXPECT_TRUE(runToCompletion(c.sim, w).ok()); // local accept
    c.sim.run();
    EXPECT_EQ(c.engineA.nakCount(), 1u); // remote write-inhibit NAK

    // Reads still work while write-inhibited.
    auto r = c.engineA.read(seg, 0, local.descriptor, 0, 8);
    EXPECT_TRUE(runToCompletion(c.sim, r).status.ok());

    // Lifting the inhibit restores writes.
    ASSERT_TRUE(c.engineB.setWriteInhibit(seg.descriptor, false).ok());
    auto w2 = c.engineA.write(seg, 0, {1});
    EXPECT_TRUE(runToCompletion(c.sim, w2).ok());
    c.sim.run();
    EXPECT_EQ(c.engineA.nakCount(), 1u); // unchanged
}

TEST(RmemProtection, BadDescriptorIsRejected)
{
    TwoNodeCluster c;
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    rmem::ImportedSegment bogus;
    bogus.node = 2;
    bogus.descriptor = 77;
    bogus.generation = 1;
    bogus.size = 4096;
    bogus.rights = rmem::Rights::kAll;

    auto r = c.engineA.read(bogus, 0, local.descriptor, 0, 8);
    rmem::ReadOutcome out = runToCompletion(c.sim, r);
    EXPECT_EQ(out.status.code(), util::ErrorCode::kBadDescriptor);
}

TEST(RmemEngine, ReadTimeoutFiresWhenPeerSilent)
{
    TwoNodeCluster c;
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    // Node 3 does not exist; with direct wiring the cells go to node 2,
    // whose engine NAKs unknown descriptors — so instead aim at a
    // valid node but drop the engine's handler to simulate silence.
    c.engineB.wire().setRmemHandler([](net::NodeId, rmem::Message &&) {});

    rmem::ImportedSegment seg;
    seg.node = 2;
    seg.descriptor = 0;
    seg.generation = 1;
    seg.size = 4096;
    seg.rights = rmem::Rights::kAll;

    auto r = c.engineA.read(seg, 0, local.descriptor, 0, 8, false,
                            sim::msec(5));
    rmem::ReadOutcome out = runToCompletion(c.sim, r);
    EXPECT_EQ(out.status.code(), util::ErrorCode::kTimeout);
    EXPECT_EQ(c.engineA.stats().timeouts.value(), 1u);
}

TEST(RmemNotification, ConditionalPolicyFollowsNotifyBit)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096, rmem::Rights::kAll,
                           rmem::NotifyPolicy::kConditional);
    auto *ch = c.engineB.channel(seg.descriptor);
    ASSERT_NE(ch, nullptr);

    auto w1 = c.engineA.write(seg, 0, {1, 2, 3}, /*notify=*/false);
    runToCompletion(c.sim, w1);
    c.sim.run();
    EXPECT_FALSE(ch->readable());

    auto w2 = c.engineA.write(seg, 8, {4, 5, 6}, /*notify=*/true);
    runToCompletion(c.sim, w2);
    c.sim.run();
    ASSERT_TRUE(ch->readable());
    rmem::Notification n;
    ASSERT_TRUE(ch->tryNext(n));
    EXPECT_EQ(n.srcNode, 1);
    EXPECT_EQ(n.kind, rmem::NotifyKind::kWrite);
    EXPECT_EQ(n.offset, 8u);
    EXPECT_EQ(n.count, 3u);
}

TEST(RmemNotification, AlwaysAndNeverPolicies)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto always = makeSegment(c.engineB, server, 4096, rmem::Rights::kAll,
                              rmem::NotifyPolicy::kAlways);
    auto never = makeSegment(c.engineB, server, 4096, rmem::Rights::kAll,
                             rmem::NotifyPolicy::kNever);

    auto w1 = c.engineA.write(always, 0, {1}, false);
    runToCompletion(c.sim, w1);
    auto w2 = c.engineA.write(never, 0, {1}, true);
    runToCompletion(c.sim, w2);
    c.sim.run();

    EXPECT_TRUE(c.engineB.channel(always.descriptor)->readable());
    EXPECT_FALSE(c.engineB.channel(never.descriptor)->readable());
}

TEST(RmemNotification, BlockedReaderWakesOnDelivery)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096, rmem::Rights::kAll,
                           rmem::NotifyPolicy::kConditional);
    auto *ch = c.engineB.channel(seg.descriptor);

    auto waiter = ch->next();
    EXPECT_FALSE(waiter.done());

    auto w = c.engineA.write(seg, 0, {7}, true);
    runToCompletion(c.sim, w);
    c.sim.run();

    ASSERT_TRUE(waiter.done());
    rmem::Notification n = waiter.result();
    EXPECT_EQ(n.kind, rmem::NotifyKind::kWrite);
}

} // namespace
} // namespace remora
