/**
 * @file
 * Distributed-file-service tests: cache-area record codecs, server
 * dispatch, the three backends' behavioural equivalence, DX writes with
 * the lazy scavenger, miss fallback, and the caching clerk.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/cache_layout.h"
#include "dfs/clerk.h"
#include "dfs/server.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

// ----------------------------------------------------------------------
// Cache-area record codecs
// ----------------------------------------------------------------------

TEST(CacheLayout, AttrRecordRoundTrip)
{
    dfs::AttrRecord rec;
    rec.flag = dfs::kSlotValid;
    rec.fhKey = 0x1122334455667788ull;
    rec.attr.type = dfs::FileType::kSymlink;
    rec.attr.size = 777;
    rec.attr.fileid = 99;
    std::vector<uint8_t> buf(dfs::kAttrRecBytes);
    rec.encode(buf);
    dfs::AttrRecord out = dfs::AttrRecord::decode(buf);
    EXPECT_EQ(out.flag, rec.flag);
    EXPECT_EQ(out.fhKey, rec.fhKey);
    EXPECT_EQ(out.attr.type, rec.attr.type);
    EXPECT_EQ(out.attr.size, rec.attr.size);
    EXPECT_EQ(out.attr.fileid, rec.attr.fileid);
}

TEST(CacheLayout, NameRecordRoundTrip)
{
    dfs::NameLookupRecord rec;
    rec.flag = dfs::kSlotValid;
    rec.dirKey = 11;
    rec.childKey = 22;
    rec.childAttr.size = 4096;
    rec.name = "report.txt";
    std::vector<uint8_t> buf(dfs::kNameRecBytes);
    rec.encode(buf);
    dfs::NameLookupRecord out = dfs::NameLookupRecord::decode(buf);
    EXPECT_EQ(out.dirKey, rec.dirKey);
    EXPECT_EQ(out.childKey, rec.childKey);
    EXPECT_EQ(out.childAttr.size, rec.childAttr.size);
    EXPECT_EQ(out.name, rec.name);
}

TEST(CacheLayout, DataDirLinkStatHeadersRoundTrip)
{
    dfs::DataSlotHeader d;
    d.flag = dfs::kSlotValid;
    d.dirty = 1;
    d.fhKey = 5;
    d.blockNo = 9;
    d.validBytes = 8192;
    std::vector<uint8_t> buf(dfs::kDataHeaderBytes);
    d.encode(buf);
    auto d2 = dfs::DataSlotHeader::decode(buf);
    EXPECT_EQ(d2.dirty, 1u);
    EXPECT_EQ(d2.blockNo, 9u);
    EXPECT_EQ(d2.validBytes, 8192u);

    dfs::DirSlotHeader dir;
    dir.flag = dfs::kSlotValid;
    dir.dirKey = 3;
    dir.bytes = 123;
    dir.entryCount = 7;
    std::vector<uint8_t> dbuf(dfs::kDirHeaderBytes);
    dir.encode(dbuf);
    auto dir2 = dfs::DirSlotHeader::decode(dbuf);
    EXPECT_EQ(dir2.bytes, 123u);
    EXPECT_EQ(dir2.entryCount, 7u);

    dfs::LinkRecord link;
    link.flag = dfs::kSlotValid;
    link.fhKey = 8;
    link.target = "../somewhere/else";
    std::vector<uint8_t> lbuf(dfs::kLinkRecBytes);
    link.encode(lbuf);
    EXPECT_EQ(dfs::LinkRecord::decode(lbuf).target, link.target);

    dfs::StatRecord st;
    st.flag = dfs::kSlotValid;
    st.stat.totalFiles = 42;
    std::vector<uint8_t> sbuf(dfs::kStatRecBytes);
    st.encode(sbuf);
    EXPECT_EQ(dfs::StatRecord::decode(sbuf).stat.totalFiles, 42u);
}

TEST(CacheLayout, BucketFunctionsAreDeterministic)
{
    EXPECT_EQ(dfs::attrBucket(7, 128), dfs::attrBucket(7, 128));
    EXPECT_EQ(dfs::nameBucket(1, "x", 64), dfs::nameBucket(1, "x", 64));
    EXPECT_NE(dfs::nameBucket(1, "x", 1024), dfs::nameBucket(1, "y", 1024));
    EXPECT_LT(dfs::dataSlot(3, 5, 16), 16u);
}

// ----------------------------------------------------------------------
// Service fixture
// ----------------------------------------------------------------------

struct DfsFixture
{
    TwoNodeCluster cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::DxBackend dx;
    rpc::RpcTransport clientRpc;
    rpc::RpcTransport serverRpc;
    dfs::RpcBackend rpc;

    dfs::FileHandle file;
    dfs::FileHandle dir;
    dfs::FileHandle link;

    DfsFixture()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, &hyClient),
          clientRpc(cluster.engineA.wire()),
          serverRpc(cluster.engineB.wire()), rpc(clientRpc, 2)
    {
        auto d = store.mkdir(store.root(), "docs");
        EXPECT_TRUE(d.ok());
        dir = d.value();
        auto f = store.createFile(dir, "paper.ps", 20000);
        EXPECT_TRUE(f.ok());
        file = f.value();
        for (int i = 0; i < 6; ++i) {
            EXPECT_TRUE(store
                            .createFile(dir, "fig" + std::to_string(i),
                                        500 + i)
                            .ok());
        }
        auto l = store.symlink(store.root(), "current", "docs/paper.ps");
        EXPECT_TRUE(l.ok());
        link = l.value();

        server.warmCaches();
        server.start();
        server.attachRpcTransport(serverRpc);
        cluster.sim.run();
    }
};

// ----------------------------------------------------------------------
// The core equivalence property: all three backends agree with the
// store on every operation.
// ----------------------------------------------------------------------

class BackendEquivalence
    : public ::testing::TestWithParam<const char *>
{
  protected:
    dfs::FileServiceBackend &
    backend(DfsFixture &f) const
    {
        std::string which = GetParam();
        if (which == "dx") {
            return f.dx;
        }
        if (which == "hy") {
            return f.hy;
        }
        return f.rpc;
    }
};

TEST_P(BackendEquivalence, GetattrMatchesStore)
{
    DfsFixture f;
    auto t = backend(f).getattr(f.file);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    auto truth = f.store.getattr(f.file);
    EXPECT_EQ(got.value().size, truth.value().size);
    EXPECT_EQ(got.value().fileid, truth.value().fileid);
    EXPECT_EQ(got.value().type, truth.value().type);
}

TEST_P(BackendEquivalence, LookupMatchesStore)
{
    DfsFixture f;
    auto t = backend(f).lookup(f.dir, "paper.ps");
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value().fh, f.file);
    EXPECT_EQ(got.value().attr.size, 20000u);
}

TEST_P(BackendEquivalence, ReadMatchesStore)
{
    DfsFixture f;
    for (auto [off, count] : std::vector<std::pair<uint64_t, uint32_t>>{
             {0, 1024}, {0, 8192}, {8192, 8192}, {16384, 8192}}) {
        auto t = backend(f).read(f.file, off, count);
        auto got = runToCompletion(f.cluster.sim, t);
        ASSERT_TRUE(got.ok()) << got.status().toString();
        auto truth = f.store.read(f.file, off, count);
        EXPECT_EQ(got.value(), truth.value())
            << "mismatch at off=" << off << " count=" << count;
    }
}

TEST_P(BackendEquivalence, ReaddirMatchesStore)
{
    DfsFixture f;
    auto t = backend(f).readdir(f.dir, 4096);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    auto truth = f.store.readdir(f.dir);
    ASSERT_TRUE(truth.ok());
    EXPECT_EQ(got.value().size(), truth.value().size());
    for (size_t i = 0; i < got.value().size(); ++i) {
        EXPECT_EQ(got.value()[i].name, truth.value()[i].name);
        EXPECT_EQ(got.value()[i].fileid, truth.value()[i].fileid);
    }
}

TEST_P(BackendEquivalence, ReadlinkMatchesStore)
{
    DfsFixture f;
    auto t = backend(f).readlink(f.link);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), "docs/paper.ps");
}

TEST_P(BackendEquivalence, StatfsMatchesStore)
{
    DfsFixture f;
    auto t = backend(f).statfs();
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value().totalFiles, f.store.statfs().totalFiles);
}

TEST_P(BackendEquivalence, NullSucceeds)
{
    DfsFixture f;
    auto t = backend(f).null();
    EXPECT_TRUE(runToCompletion(f.cluster.sim, t).ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendEquivalence,
                         ::testing::Values("dx", "hy", "rpc"));

// ----------------------------------------------------------------------
// Writes
// ----------------------------------------------------------------------

TEST(DfsWrite, HyWriteIsImmediatelyVisibleInStore)
{
    DfsFixture f;
    std::vector<uint8_t> data(4096, 0xd1);
    auto t = f.hy.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    auto back = f.store.read(f.file, 0, 4096);
    EXPECT_EQ(back.value(), data);
}

TEST(DfsWrite, DxWriteLandsInCacheThenStoreViaScavenger)
{
    DfsFixture f;
    std::vector<uint8_t> data(8192, 0xe2);
    auto t = f.dx.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    f.cluster.sim.run();

    // Visible through DX reads right away (the cache is authoritative).
    auto rd = f.dx.read(f.file, 0, 8192);
    auto got = runToCompletion(f.cluster.sim, rd);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data);

    // The store still has the old bytes until a scavenger pass.
    EXPECT_NE(f.store.read(f.file, 0, 8192).value(), data);
    uint64_t applied = f.server.scavengeDirtyBlocks();
    EXPECT_EQ(applied, 1u);
    EXPECT_EQ(f.store.read(f.file, 0, 8192).value(), data);

    // Idempotent: a second pass finds nothing dirty.
    EXPECT_EQ(f.server.scavengeDirtyBlocks(), 0u);
}

TEST(DfsWrite, DxMultiBlockWrite)
{
    DfsFixture f;
    std::vector<uint8_t> data(20000, 0xf3);
    auto t = f.dx.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    f.cluster.sim.run();
    EXPECT_EQ(f.server.scavengeDirtyBlocks(), 3u);
    EXPECT_EQ(f.store.read(f.file, 0, 20000).value(), data);
}

// ----------------------------------------------------------------------
// Miss fallback
// ----------------------------------------------------------------------

TEST(DfsMiss, UncachedFileFallsBackToControlTransfer)
{
    DfsFixture f;
    // Create a file AFTER warmCaches: its records are absent.
    auto fresh = f.store.createFile(f.store.root(), "late.txt", 3000);
    ASSERT_TRUE(fresh.ok());

    auto t = f.dx.getattr(fresh.value());
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value().size, 3000u);
    EXPECT_GE(f.dx.misses(), 1u);

    auto rd = f.dx.read(fresh.value(), 0, 3000);
    auto data = runToCompletion(f.cluster.sim, rd);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), f.store.read(fresh.value(), 0, 3000).value());
}

TEST(DfsMiss, WithoutFallbackMissSurfacesNotFound)
{
    DfsFixture f;
    dfs::DxBackend bare(f.cluster.engineA,
                        f.cluster.nodeA.spawnProcess("bare"),
                        f.server.areaHandles(), dfs::CacheGeometry{},
                        nullptr);
    auto fresh = f.store.createFile(f.store.root(), "orphan", 10);
    ASSERT_TRUE(fresh.ok());
    auto t = bare.getattr(fresh.value());
    auto got = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(got.status().code(), util::ErrorCode::kNotFound);
}

// ----------------------------------------------------------------------
// Server dispatch errors
// ----------------------------------------------------------------------

TEST(DfsServer, StaleHandleErrorsPropagate)
{
    DfsFixture f;
    dfs::FileHandle bogus{9999, 1};
    auto t = f.hy.getattr(bogus);
    auto got = runToCompletion(f.cluster.sim, t);
    EXPECT_FALSE(got.ok());
    auto t2 = f.hy.read(bogus, 0, 100);
    EXPECT_FALSE(runToCompletion(f.cluster.sim, t2).ok());
    auto t3 = f.hy.lookup(f.dir, "missing");
    EXPECT_EQ(runToCompletion(f.cluster.sim, t3).status().code(),
              util::ErrorCode::kNotFound);
}

TEST(DfsServer, WriteThroughHyRefreshesExportedCaches)
{
    DfsFixture f;
    std::vector<uint8_t> data(1024, 0x77);
    auto t = f.hy.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    f.cluster.sim.run();
    // A DX read now sees the HY-written bytes (server re-cached them).
    auto rd = f.dx.read(f.file, 0, 1024);
    auto got = runToCompletion(f.cluster.sim, rd);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data);
    EXPECT_EQ(f.dx.misses(), 0u);
}

// ----------------------------------------------------------------------
// The caching clerk
// ----------------------------------------------------------------------

TEST(ServerClerk, CachesEveryAreaLocally)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.chargeLocalRpc = false;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);

    // First touch goes to the backend; second is a local hit.
    auto a1 = clerk.getattr(f.file);
    runToCompletion(f.cluster.sim, a1);
    auto a2 = clerk.getattr(f.file);
    runToCompletion(f.cluster.sim, a2);
    auto l1 = clerk.lookup(f.dir, "paper.ps");
    runToCompletion(f.cluster.sim, l1);
    auto l2 = clerk.lookup(f.dir, "paper.ps");
    runToCompletion(f.cluster.sim, l2);
    auto r1 = clerk.read(f.file, 0, 8192);
    runToCompletion(f.cluster.sim, r1);
    auto r2 = clerk.read(f.file, 0, 8192);
    runToCompletion(f.cluster.sim, r2);
    auto d1 = clerk.readdir(f.dir, 4096);
    runToCompletion(f.cluster.sim, d1);
    auto d2 = clerk.readdir(f.dir, 4096);
    runToCompletion(f.cluster.sim, d2);
    auto s1 = clerk.readlink(f.link);
    runToCompletion(f.cluster.sim, s1);
    auto s2 = clerk.readlink(f.link);
    runToCompletion(f.cluster.sim, s2);

    EXPECT_EQ(clerk.stats().requests.value(), 10u);
    EXPECT_EQ(clerk.stats().backendCalls.value(), 5u);
    EXPECT_EQ(clerk.stats().localHits.value(), 5u);
}

TEST(ServerClerk, LookupPrimesAttrCache)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.chargeLocalRpc = false;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);
    auto l = clerk.lookup(f.dir, "paper.ps");
    runToCompletion(f.cluster.sim, l);
    auto a = clerk.getattr(f.file);
    runToCompletion(f.cluster.sim, a);
    EXPECT_EQ(clerk.stats().localHits.value(), 1u); // attr came with lookup
}

TEST(ServerClerk, WriteInvalidatesAttrAndUpdatesBlocks)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.chargeLocalRpc = false;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);

    auto r1 = clerk.read(f.file, 0, 8192);
    runToCompletion(f.cluster.sim, r1);
    std::vector<uint8_t> data(8192, 0x3e);
    auto w = clerk.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());

    // The local block cache serves the new data without a backend trip.
    uint64_t calls = clerk.stats().backendCalls.value();
    auto r2 = clerk.read(f.file, 0, 8192);
    auto got = runToCompletion(f.cluster.sim, r2);
    EXPECT_EQ(got.value(), data);
    EXPECT_EQ(clerk.stats().backendCalls.value(), calls);
}

TEST(ServerClerk, InvalidateAllForcesRefetch)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.chargeLocalRpc = false;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);
    auto a1 = clerk.getattr(f.file);
    runToCompletion(f.cluster.sim, a1);
    clerk.invalidateAll();
    auto a2 = clerk.getattr(f.file);
    runToCompletion(f.cluster.sim, a2);
    EXPECT_EQ(clerk.stats().backendCalls.value(), 2u);
    EXPECT_EQ(clerk.stats().localHits.value(), 0u);
}

TEST(ServerClerk, DisabledCacheAlwaysGoesToBackend)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.enableLocalCache = false;
    params.chargeLocalRpc = false;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);
    for (int i = 0; i < 3; ++i) {
        auto t = clerk.getattr(f.file);
        runToCompletion(f.cluster.sim, t);
    }
    EXPECT_EQ(clerk.stats().backendCalls.value(), 3u);
    EXPECT_EQ(clerk.stats().localHits.value(), 0u);
}

TEST(ServerClerk, LocalRpcChargedWhenEnabled)
{
    DfsFixture f;
    dfs::ClerkParams params;
    params.chargeLocalRpc = true;
    dfs::ServerClerk clerk(f.cluster.nodeA.cpu(), f.dx, params);
    f.cluster.sim.run();
    sim::Duration before =
        f.cluster.nodeA.cpu().busyIn(sim::CpuCategory::kProcInvoke);
    auto t = clerk.null();
    runToCompletion(f.cluster.sim, t);
    sim::Duration after =
        f.cluster.nodeA.cpu().busyIn(sim::CpuCategory::kProcInvoke);
    rpc::LocalRpcCosts costs;
    EXPECT_GE(after - before, costs.callPath + costs.returnPath);
}

} // namespace
} // namespace remora
