/**
 * @file
 * Unit tests for the remora-lint rule engine, driven on fixture sources.
 *
 * Every fixture lives in a raw string so the linter's own scrubbing pass
 * keeps the clean-tree gate (test_lint_clean.cc) from tripping on the
 * deliberately hazardous code below.
 */
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "layers.h"
#include "lint.h"

namespace remora::lint {
namespace {

/** Findings of one rule only, to keep assertions focused. */
std::vector<Finding>
only(const std::vector<Finding> &all, Rule rule)
{
    std::vector<Finding> out;
    for (const Finding &f : all) {
        if (f.rule == rule) {
            out.push_back(f);
        }
    }
    return out;
}

/** Options with the include rules off, for coroutine-only fixtures. */
Options
coroutineOnly()
{
    Options o;
    o.checkIncludes = false;
    o.checkNondeterminism = false;
    return o;
}

// ----------------------------------------------------------------------
// Coroutine parameter hazards
// ----------------------------------------------------------------------

TEST(LintCoroutine, SeededReferenceParameterFixtureIsDetected)
{
    // The canonical PR 1 bug shape: a clerk coroutine taking the name by
    // const reference. The caller's temporary dies at the first
    // co_await, leaving the frame with a dangling reference.
    constexpr std::string_view kFixture = R"cc(
namespace remora::names {

sim::Task<rmem::ImportedSegment>
NameClerk::import(const std::string &name, net::NodeId serverHint)
{
    co_await probe(serverHint);
    co_return lookup(name);
}

} // namespace remora::names
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    // Reported at the parameter, with the fix spelled out.
    EXPECT_EQ(findings[0].line, 5);
    EXPECT_NE(findings[0].message.find("NameClerk::import"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("pass by value"), std::string::npos);
    // The by-value NodeId parameter is not implicated.
    EXPECT_EQ(findings[0].message.find("serverHint"), std::string::npos);
}

TEST(LintCoroutine, ValueParametersAreClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void>
publish(std::string name, std::vector<uint8_t> payload, uint32_t flags)
{
    co_return;
}
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintCoroutine, StringViewParameterIsError)
{
    // string_view is a reference in a trench coat: it views caller
    // storage even when passed "by value".
    constexpr std::string_view kFixture = R"cc(
sim::Task<Status> resolve(std::string_view name);
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
    EXPECT_NE(findings[0].message.find("string_view"), std::string::npos);
}

TEST(LintCoroutine, RvalueReferenceParameterIsError)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> consume(std::vector<uint8_t> &&data);
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
}

TEST(LintCoroutine, NamedFunctionPointerParameterIsAdvisory)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<Result<Handle>> exportByName(mem::Process *owner, uint32_t len);
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutinePtrParam);
    // Advisory, not an error: pointers cannot bind temporaries.
    EXPECT_FALSE(ruleIsError(findings[0].rule));
}

TEST(LintCoroutine, LambdaPointerParametersAreExempt)
{
    // The tree's sanctioned idiom for detached coroutine lambdas: the
    // caller must write &object, which cannot name a temporary.
    constexpr std::string_view kFixture = R"cc(
auto drive = [](names::NameClerk *self, rmem::RmemEngine *eng,
                int rounds) -> sim::Task<void> {
    co_await self->refresh(*eng, rounds);
};
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintCoroutine, LambdaReferenceParameterIsError)
{
    constexpr std::string_view kFixture = R"cc(
auto echo = [](const std::vector<uint8_t> &args) -> sim::Task<void> {
    co_return;
};
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
    EXPECT_NE(findings[0].message.find("lambda coroutine"),
              std::string::npos);
}

TEST(LintCoroutine, LambdaWithSpecifiersStillMatches)
{
    constexpr std::string_view kFixture = R"cc(
auto f = [](std::string &s) mutable noexcept -> sim::Task<int> {
    co_return 0;
};
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
}

TEST(LintCoroutine, FunctionTypesAreNotDeclarations)
{
    // std::function<Task<...>(...)> spells a signature, not a coroutine;
    // the handler it stores is checked where it is defined.
    constexpr std::string_view kFixture = R"cc(
using Handler =
    std::function<sim::Task<std::vector<uint8_t>>(net::NodeId,
                                                  std::vector<uint8_t>)>;
std::function<sim::Task<void>(const std::string &)> onEvent;
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintCoroutine, TaskTemplateItselfIsNotFlagged)
{
    constexpr std::string_view kFixture = R"cc(
template <typename T>
class Task
{
  public:
    Task(Task &&other) noexcept;
};
struct Task;
sim::Task<void> pending;
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintCoroutine, MultiLineParameterReportsItsOwnLine)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void>
process(uint64_t id,
        const std::string &name)
{
    co_return;
}
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintCoroutine, DefaultArgumentShiftsDoNotConfuseAngleDepth)
{
    // The '<<' in the default argument must not open an angle scope and
    // swallow the rest of the parameter list.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> grow(uint32_t len = 1 << 12, const Config &cfg = {});
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
}

// ----------------------------------------------------------------------
// NOLINT suppression
// ----------------------------------------------------------------------

TEST(LintSuppression, SameLineNolintWithRuleName)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> f(int &x); // NOLINT(remora-coroutine-ref-param)
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintSuppression, NolintNextLine)
{
    constexpr std::string_view kFixture = R"cc(
// NOLINTNEXTLINE(remora-coroutine-ref-param)
sim::Task<void> f(int &x);
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintSuppression, ClangTidyAliasIsAccepted)
{
    // One comment must silence both remora-lint and clang-tidy.
    constexpr std::string_view kFixture = R"cc(
// NOLINTNEXTLINE(cppcoreguidelines-avoid-reference-coroutine-parameters)
sim::Task<void> f(int &x);
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintSuppression, BareNolintSilencesEverything)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> f(int &x); // NOLINT
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, coroutineOnly()).empty());
}

TEST(LintSuppression, UnrelatedRuleNameDoesNotSuppress)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> f(int &x); // NOLINT(remora-nondeterminism)
)cc";
    auto findings = lintSource("fixture.cc", kFixture, coroutineOnly());
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kCoroutineRefParam);
}

TEST(LintSuppression, CertAliasSuppressesNondeterminism)
{
    constexpr std::string_view kFixture = R"cc(
int seed() { return std::rand(); } // NOLINT(cert-msc50-cpp)
)cc";
    Options o;
    o.checkIncludes = false;
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, o).empty());
}

// ----------------------------------------------------------------------
// Nondeterminism sources
// ----------------------------------------------------------------------

TEST(LintNondeterminism, BannedSourcesAreFlagged)
{
    constexpr std::string_view kFixture = R"cc(
void jitter()
{
    std::srand(42);
    int x = std::rand();
    time_t t = time(nullptr);
    auto n = std::chrono::system_clock::now();
    auto h = std::chrono::high_resolution_clock::now();
    std::random_device rd;
    gettimeofday(&tv, nullptr);
}
)cc";
    Options o;
    o.checkIncludes = false;
    auto findings = only(lintSource("fixture.cc", kFixture, o),
                         Rule::kNondeterminism);
    EXPECT_EQ(findings.size(), 7u);
    for (const Finding &f : findings) {
        EXPECT_TRUE(ruleIsError(f.rule));
    }
}

TEST(LintNondeterminism, RandomDeviceAllowedInSanctionedFile)
{
    constexpr std::string_view kFixture = R"cc(
uint64_t entropySeed()
{
    std::random_device rd;
    return rd();
}
)cc";
    Options o;
    o.checkIncludes = false;
    ASSERT_EQ(lintSource("fixture.cc", kFixture, o).size(), 1u);
    o.allowRandomDevice = true;
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, o).empty());
}

TEST(LintNondeterminism, ProjectApiNamesAreNotLibcCalls)
{
    // Member access and non-call uses must not trip the token matcher.
    constexpr std::string_view kFixture = R"cc(
void ok(Rng &rng, Clock *clock)
{
    rng.rand();
    clock->time(nullptr);
    int rand = 5;
    auto t = file.time();
}
)cc";
    Options o;
    o.checkIncludes = false;
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, o).empty());
}

TEST(LintNondeterminism, TimeWithRealArgumentIsNotWallClockIdiom)
{
    constexpr std::string_view kFixture = R"cc(
void ok(Event e) { schedule(e.time(deadline)); }
)cc";
    Options o;
    o.checkIncludes = false;
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, o).empty());
}

// ----------------------------------------------------------------------
// Include hygiene
// ----------------------------------------------------------------------

TEST(LintIncludes, RelativeAndUnprefixedIncludesAreFlagged)
{
    constexpr std::string_view kFixture = R"cc(
#include "../util/panic.h"
#include "./local.h"
#include "sim/../util/hash.h"
#include "panic.h"
#include "sim/task.h"
#include <vector>
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture),
                         Rule::kIncludeHygiene);
    ASSERT_EQ(findings.size(), 4u);
    EXPECT_NE(findings[0].message.find("relative include"),
              std::string::npos);
    EXPECT_NE(findings[3].message.find("module prefix"), std::string::npos);
}

TEST(LintIncludes, ModulePrefixRequirementCanBeWaived)
{
    constexpr std::string_view kFixture = R"cc(
#include "cluster_fixture.h"
)cc";
    Options o;
    o.requireModulePrefix = false;
    EXPECT_TRUE(lintSource("fixture.cc", kFixture, o).empty());
    ASSERT_EQ(lintSource("fixture.cc", kFixture).size(), 1u);
}

// ----------------------------------------------------------------------
// Per-path policy and plumbing
// ----------------------------------------------------------------------

TEST(LintPolicy, OptionsForPathAppliesLocationExemptions)
{
    EXPECT_TRUE(optionsForPath("src/rmem/engine.cc").requireModulePrefix);
    EXPECT_FALSE(optionsForPath("src/rmem/engine.cc").allowRandomDevice);
    EXPECT_FALSE(optionsForPath("tests/test_names.cc").requireModulePrefix);
    EXPECT_TRUE(optionsForPath("src/sim/random.cc").allowRandomDevice);
    EXPECT_TRUE(optionsForPath("src/sim/random.h").allowRandomDevice);
}

TEST(LintPolicy, ShouldLintSelectsCxxSources)
{
    EXPECT_TRUE(shouldLint("src/sim/task.h"));
    EXPECT_TRUE(shouldLint("src/rmem/engine.cc"));
    EXPECT_TRUE(shouldLint("examples/quickstart.cpp"));
    EXPECT_FALSE(shouldLint("README.md"));
    EXPECT_FALSE(shouldLint("tests/CMakeLists.txt"));
    EXPECT_FALSE(shouldLint("scripts/check.sh"));
}

TEST(LintPolicy, FindingFormatIsFileLineRuleMessage)
{
    Finding f{Rule::kCoroutineRefParam, "src/x.cc", 12, "boom"};
    EXPECT_EQ(f.format(), "src/x.cc:12: [remora-coroutine-ref-param] boom");
}

TEST(LintPolicy, EveryRuleHasAStableName)
{
    EXPECT_STREQ(ruleName(Rule::kCoroutineRefParam),
                 "remora-coroutine-ref-param");
    EXPECT_STREQ(ruleName(Rule::kCoroutinePtrParam),
                 "remora-coroutine-ptr-param");
    EXPECT_STREQ(ruleName(Rule::kNondeterminism), "remora-nondeterminism");
    EXPECT_STREQ(ruleName(Rule::kIncludeHygiene), "remora-include-hygiene");
    EXPECT_STREQ(ruleName(Rule::kRefCaptureDeferred),
                 "remora-ref-capture-deferred");
    // Both severities of the detached-coroutine family share one NOLINT
    // name, so one suppression comment covers either diagnosis.
    EXPECT_STREQ(ruleName(Rule::kDetachedCoroutine),
                 "remora-detached-coroutine");
    EXPECT_STREQ(ruleName(Rule::kDetachedCoroutineDetach),
                 "remora-detached-coroutine");
    EXPECT_TRUE(ruleIsError(Rule::kDetachedCoroutine));
    EXPECT_FALSE(ruleIsError(Rule::kDetachedCoroutineDetach));
    EXPECT_STREQ(ruleName(Rule::kScalarOpLoop), "remora-scalar-op-loop");
    EXPECT_FALSE(ruleIsError(Rule::kScalarOpLoop));
}

// ----------------------------------------------------------------------
// Deferred-lambda by-reference captures
// ----------------------------------------------------------------------

TEST(LintRefCapture, DefaultRefCaptureHandedToScheduleIsError)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, int &hits)
{
    sim.schedule(10, [&] { ++hits; });
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kRefCaptureDeferred);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    EXPECT_NE(findings[0].message.find("schedule"), std::string::npos);
}

TEST(LintRefCapture, NamedRefCaptureInScheduleAtNamesTheCapture)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, Counter &c)
{
    sim.scheduleAt(100, [&c] { c.inc(); });
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kRefCaptureDeferred);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("'&c'"), std::string::npos);
    EXPECT_NE(findings[0].message.find("scheduleAt"), std::string::npos);
}

TEST(LintRefCapture, ValueCapturesHandedToScheduleAreClean)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, Engine *eng, int seq)
{
    sim.schedule(10, [eng, seq] { eng->kick(seq); });
    sim.schedule(20, [this] { tick(); });
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kRefCaptureDeferred)
                    .empty());
}

TEST(LintRefCapture, PointerInitCaptureIsNotAReferenceCapture)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, Node &node)
{
    sim.schedule(10, [n = &node] { n->tick(); });
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kRefCaptureDeferred)
                    .empty());
}

TEST(LintRefCapture, CoroutineLambdaWithRefCaptureIsError)
{
    constexpr std::string_view kFixture = R"cc(
void spawn(Engine &eng)
{
    [&eng]() -> sim::Task<void> {
        co_await eng.drain();
    }().detach();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kRefCaptureDeferred);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("coroutine lambda"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("'&eng'"), std::string::npos);
}

TEST(LintRefCapture, ValueCaptureCoroutineLambdaIsClean)
{
    // The tree's documented idiom: captureless or pointer-value capture.
    constexpr std::string_view kFixture = R"cc(
void spawn(Engine &eng)
{
    [](Engine *e) -> sim::Task<void> { co_await e->drain(); }(&eng)
        .detach();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kRefCaptureDeferred)
                    .empty());
}

TEST(LintRefCapture, SubscriptsAreNotCaptureLists)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, std::vector<int> &v, int i)
{
    sim.schedule(10, [v, i] { use(v[i] & 0xff); });
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kRefCaptureDeferred)
                    .empty());
}

TEST(LintRefCapture, NolintAndClangTidyAliasSuppress)
{
    constexpr std::string_view kFixture = R"cc(
void arm(sim::Simulator &sim, int &hits)
{
    // NOLINTNEXTLINE(remora-ref-capture-deferred)
    sim.schedule(10, [&] { ++hits; });
    sim.schedule(20, [&] { ++hits; }); // NOLINT(cppcoreguidelines-avoid-capturing-lambda-coroutines)
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kRefCaptureDeferred)
                    .empty());
}

// ----------------------------------------------------------------------
// Detached coroutines
// ----------------------------------------------------------------------

/** A TU with one local coroutine and one call site spliced in. */
std::string
detachedFixture(std::string_view callSite)
{
    std::string out = R"cc(
namespace remora::rpc {

sim::Task<void>
ping(sim::Simulator *sim)
{
    co_await sim::delay(*sim, sim::usec(10));
}

void
driver(sim::Simulator *sim)
{
)cc";
    out += callSite;
    out += R"cc(
}

} // namespace remora::rpc
)cc";
    return out;
}

TEST(LintDetached, BareStatementCallIsError)
{
    auto findings = only(
        lintSource("fixture.cc", detachedFixture("    ping(sim);\n"),
                   coroutineOnly()),
        Rule::kDetachedCoroutine);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    EXPECT_NE(findings[0].message.find("ping"), std::string::npos);
    EXPECT_NE(findings[0].message.find(".detach()"), std::string::npos);
}

TEST(LintDetached, VoidCastDiscardIsError)
{
    // (void) makes the discard explicit to the compiler but still loses
    // the frame; the fix is .detach(), not a cast.
    auto findings = only(
        lintSource("fixture.cc", detachedFixture("    (void) ping(sim);\n"),
                   coroutineOnly()),
        Rule::kDetachedCoroutine);
    ASSERT_EQ(findings.size(), 1u);
}

TEST(LintDetached, ExplicitDetachIsAdvisoryOnly)
{
    auto all = lintSource(
        "fixture.cc", detachedFixture("    ping(sim).detach();\n"),
        coroutineOnly());
    EXPECT_TRUE(only(all, Rule::kDetachedCoroutine).empty());
    auto advisories = only(all, Rule::kDetachedCoroutineDetach);
    ASSERT_EQ(advisories.size(), 1u);
    EXPECT_FALSE(ruleIsError(advisories[0].rule));
    EXPECT_NE(advisories[0].message.find("fire-and-forget"),
              std::string::npos);
}

TEST(LintDetached, OwnedAndAwaitedStartsAreClean)
{
    // Binding the Task or awaiting it keeps an owner for the frame, and
    // passing the result onward hands ownership to the callee.
    for (std::string_view site :
         {"    auto t = ping(sim);\n", "    co_await ping(sim);\n",
          "    run(ping(sim));\n"}) {
        auto all = lintSource("fixture.cc", detachedFixture(site),
                              coroutineOnly());
        EXPECT_TRUE(only(all, Rule::kDetachedCoroutine).empty())
            << "site: " << site;
        EXPECT_TRUE(only(all, Rule::kDetachedCoroutineDetach).empty())
            << "site: " << site;
    }
}

TEST(LintDetached, MemberCallsOfUnrelatedClassesAreNotImplicated)
{
    // `sim.run()` shares a name with a hypothetical local coroutine
    // `run`; the lexer cannot see sim's type, so member calls are out
    // of scope for the error form.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void>
run(sim::Simulator *sim)
{
    co_await sim::delay(*sim, sim::usec(10));
}

void
pump(sim::Simulator &sim)
{
    sim.run();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kDetachedCoroutine)
                    .empty());
}

TEST(LintDetached, UnknownNamesAndDeclarationsAreClean)
{
    // `helper` is not declared Task-returning in this TU, and the
    // declaration of `ping` itself is not a call.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> ping(sim::Simulator *sim);

void
driver(sim::Simulator *sim)
{
    helper(sim);
}
)cc";
    auto all = lintSource("fixture.cc", kFixture, coroutineOnly());
    EXPECT_TRUE(only(all, Rule::kDetachedCoroutine).empty());
    EXPECT_TRUE(only(all, Rule::kDetachedCoroutineDetach).empty());
}

TEST(LintDetached, NolintAndClangTidyAliasSuppress)
{
    for (std::string_view site :
         {"    ping(sim); // NOLINT(remora-detached-coroutine)\n",
          "    ping(sim); // NOLINT(bugprone-unused-return-value)\n"}) {
        auto all = lintSource("fixture.cc", detachedFixture(site),
                              coroutineOnly());
        EXPECT_TRUE(only(all, Rule::kDetachedCoroutine).empty())
            << "site: " << site;
    }
}

TEST(LintDetached, RuleCanBeDisabledPerFile)
{
    Options o = coroutineOnly();
    o.checkDetachedCoroutines = false;
    EXPECT_TRUE(only(lintSource("fixture.cc",
                                detachedFixture("    ping(sim);\n"), o),
                     Rule::kDetachedCoroutine)
                    .empty());
}

// ----------------------------------------------------------------------
// Scalar engine ops awaited inside loops (advisory)
// ----------------------------------------------------------------------

TEST(LintScalarLoop, AwaitedWritePerIterationIsAdvised)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<util::Status> flush(rmem::RmemEngine *engine)
{
    for (const Block &b : blocks_) {
        auto st = co_await engine->write(seg_, b.offset, b.bytes);
        if (!st.ok()) {
            co_return st;
        }
    }
    co_return util::Status();
}
)cc";
    auto f = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                  Rule::kScalarOpLoop);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_FALSE(ruleIsError(f[0].rule));
    EXPECT_NE(f[0].message.find("writev()"), std::string::npos);
}

TEST(LintScalarLoop, AwaitedReadInWhileLoopSuggestsReadv)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> drain(rmem::RmemEngine &engine)
{
    while (more()) {
        co_await engine.read(seg_, next(), scratch_, 0, 64);
    }
}
)cc";
    auto f = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                  Rule::kScalarOpLoop);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_NE(f[0].message.find("readv()"), std::string::npos);
}

TEST(LintScalarLoop, CleanShapesAreNotFlagged)
{
    // Vectored ops, un-awaited local space writes, and scalar awaits
    // outside any loop are all fine.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> ok(rmem::RmemEngine &engine, mem::Process &proc)
{
    for (auto &b : blocks_) {
        proc.space().write(b.va, b.bytes);
    }
    for (auto &w : windows_) {
        co_await engine.readv(w.ops, timeout_);
    }
    co_await engine.write(seg_, 0, tail_);
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kScalarOpLoop)
                    .empty());
}

TEST(LintScalarLoop, NestedLoopsReportEachAwaitOnce)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> nested(rmem::RmemEngine *e)
{
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < m_; ++j) {
            co_await e->write(seg_, j, row_);
        }
    }
}
)cc";
    EXPECT_EQ(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                   Rule::kScalarOpLoop)
                  .size(),
              1u);
}

TEST(LintScalarLoop, NolintSuppressesAndRuleCanBeDisabled)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> pinned(rmem::RmemEngine *e)
{
    for (auto &b : blocks_) {
        // NOLINTNEXTLINE(remora-scalar-op-loop)
        co_await e->write(seg_, b.off, b.bytes);
    }
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kScalarOpLoop)
                    .empty());

    constexpr std::string_view kBare = R"cc(
sim::Task<void> bare(rmem::RmemEngine *e)
{
    while (spin()) {
        co_await e->read(seg_, 0, scratch_, 0, 4);
    }
}
)cc";
    Options o = coroutineOnly();
    o.checkScalarOpLoops = false;
    EXPECT_TRUE(only(lintSource("fixture.cc", kBare, o),
                     Rule::kScalarOpLoop)
                    .empty());
    EXPECT_EQ(only(lintSource("fixture.cc", kBare, coroutineOnly()),
                   Rule::kScalarOpLoop)
                  .size(),
              1u);
}

TEST(LintPolicy, HazardsInsideCommentsAndStringsAreIgnored)
{
    constexpr std::string_view kFixture = R"cc(
// sim::Task<void> f(int &x); and std::rand() in a comment
/* time(nullptr) in a block comment */
const char *doc = "call std::rand() and time(nullptr) here";
)cc";
    EXPECT_TRUE(lintSource("fixture.cc", kFixture).empty());
}

// ----------------------------------------------------------------------
// Flow rule: remora-lock-across-suspension
// ----------------------------------------------------------------------

TEST(LintLockAcross, SecondSpinningAcquireWhileHeldIsError)
{
    // The two-lock deadlock shape: spinning on b while a is may-held.
    // Another coroutine acquiring in the opposite order never releases,
    // and the spin loop burns simulated CPU forever.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> worker(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire();
    co_await b->acquire();
    co_await b->release();
    co_await a->release();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kLockAcrossSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    EXPECT_EQ(findings[0].line, 5);
}

TEST(LintLockAcross, AwaitedWorkUnderAwaitedLockIsClean)
{
    // The tree's core idiom: acquire, do awaited work, release. Only a
    // *spinning acquire of a different lock* (or a host guard) across
    // the suspension is hazardous, not the suspension itself.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> critical(rmem::SpinLock *l, sim::Simulator *s)
{
    co_await l->acquire();
    co_await sim::delay(*s, sim::usec(10));
    co_await l->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, TryAcquireIsNeverTheOffender)
{
    // tryAcquire yields once and gives up; it cannot spin forever, so
    // awaiting it while another lock is held is not a deadlock shape.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> opportunistic(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire();
    co_await b->tryAcquire();
    co_await b->release();
    co_await a->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, ReacquireAfterReleaseIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> phased(rmem::SpinLock *l)
{
    co_await l->acquire();
    bump();
    co_await l->release();
    co_await l->acquire();
    co_await l->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, HostGuardHeldAtAnySuspensionIsError)
{
    // A host std::lock_guard blocks the OS thread, so *any* co_await
    // under it parks the whole simulator with the mutex held.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> guarded(std::mutex *m, Widget *w)
{
    std::lock_guard<std::mutex> g(*m);
    co_await w->refresh();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kLockAcrossSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 5);
}

TEST(LintLockAcross, GuardReleasedByScopeExitIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> scoped(std::mutex *m, Widget *w)
{
    {
        std::lock_guard<std::mutex> g(*m);
        w->bump();
    }
    co_await w->refresh();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, NolintOnSuspensionLineSuppresses)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> ordered(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire();
    co_await b->acquire(); // NOLINT(remora-lock-across-suspension)
    co_await b->release();
    co_await a->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, NolintOnAcquireLineAlsoSuppresses)
{
    // Suppression is honoured at the finding line AND at the origin
    // acquire line: whichever line carries the justification wins.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> ordered(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire(); // NOLINT(remora-lock-across-suspension)
    co_await b->acquire();
    co_await b->release();
    co_await a->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

TEST(LintLockAcross, NolintNextLineAboveMultiLineCallSuppresses)
{
    // NOLINTNEXTLINE targets the first line of the statement even when
    // the call's argument list spills onto following lines.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> ordered(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire();
    // NOLINTNEXTLINE(remora-lock-across-suspension)
    co_await b->acquire(
        kSpinBudget);
    co_await b->release();
    co_await a->release();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kLockAcrossSuspension)
                    .empty());
}

// ----------------------------------------------------------------------
// Flow rule: remora-use-after-suspension
// ----------------------------------------------------------------------

TEST(LintUseAfter, IteratorIntoMemberMapUsedAcrossSuspensionIsError)
{
    // The PR 7 bug shape: during the co_await another coroutine inserts
    // into table_, the map rehashes, and it-> walks freed memory.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::handle(uint32_t key)
{
    auto it = table_.find(key);
    co_await cpu_.use(kCost);
    it->second.touch();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUseAfterSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    EXPECT_EQ(findings[0].line, 6);
}

TEST(LintUseAfter, ReferenceDerivedFromIteratorIsTrackedTransitively)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::poke(uint32_t key)
{
    auto it = peers_.find(key);
    const Peer &peer = it->second;
    co_await cpu_.use(kCost);
    peer.touch();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUseAfterSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 7);
}

TEST(LintUseAfter, CopyingTheValueBeforeSuspensionIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::handleCopy(uint32_t key)
{
    auto it = table_.find(key);
    Entry e = it->second;
    co_await cpu_.use(kCost);
    e.touch();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());
}

TEST(LintUseAfter, RebindingAfterSuspensionIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::handleRebind(uint32_t key)
{
    auto it = table_.find(key);
    co_await cpu_.use(kCost);
    it = table_.find(key);
    it->second.touch();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());
}

TEST(LintUseAfter, IteratorIntoLocalContainerIsClean)
{
    // Only borrows from external state (members, underscore-suffixed
    // chains) can be invalidated by other coroutines; locals cannot.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::handleLocal(uint32_t key)
{
    std::map<int, int> local;
    auto it = local.find(key);
    co_await cpu_.use(kCost);
    it->second = 1;
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());
}

TEST(LintUseAfter, LoopBackEdgeCarriesStalenessIntoNextIteration)
{
    // The use textually precedes the co_await, but the loop back edge
    // delivers the post-suspension state to iteration two.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::retry(uint32_t key)
{
    auto it = table_.find(key);
    for (int i = 0; i < 3; ++i) {
        it->second.bump();
        co_await cpu_.use(kCost);
    }
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUseAfterSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 6);
}

TEST(LintUseAfter, NolintOnUseOrBindLineSuppresses)
{
    constexpr std::string_view kAtUse = R"cc(
sim::Task<void> Server::handle(uint32_t key)
{
    auto it = table_.find(key);
    co_await cpu_.use(kCost);
    it->second.touch(); // NOLINT(remora-use-after-suspension)
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kAtUse, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());

    constexpr std::string_view kAtBind = R"cc(
sim::Task<void> Server::handle(uint32_t key)
{
    auto it = table_.find(key); // NOLINT(remora-use-after-suspension)
    co_await cpu_.use(kCost);
    it->second.touch();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kAtBind, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());
}

// ----------------------------------------------------------------------
// Flow rules and nested lambdas: each lambda is its own analysis unit
// ----------------------------------------------------------------------

TEST(LintFlowLambda, SuspensionInsideLambdaDoesNotStaleEnclosingBorrows)
{
    // The co_await lives in the nested coroutine's frame, not the
    // enclosing function's: the enclosing borrow stays fresh.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::spawnChild(uint32_t key)
{
    auto it = table_.find(key);
    auto child = [](Server *self) -> sim::Task<void> {
        co_await self->cpu_.use(kCost);
    };
    child(this).detach();
    it->second.touch();
    co_return;
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUseAfterSuspension)
                    .empty());
}

TEST(LintFlowLambda, LambdaDoesNotSuppressEnclosingAnalysis)
{
    // The enclosing function's own hazard must still be found even
    // though a lambda with its own suspension sits between bind and use.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::both(uint32_t key)
{
    auto it = table_.find(key);
    auto logger = [](Server *self) -> sim::Task<void> {
        co_await self->cpu_.use(kLogCost);
    };
    co_await cpu_.use(kCost);
    it->second.touch();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUseAfterSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 9);
}

TEST(LintFlowLambda, HazardInsideLambdaBodyIsStillFound)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::spawnBad(uint32_t key)
{
    auto child = [](Server *self, uint32_t key) -> sim::Task<void> {
        auto it = self->table_.find(key);
        co_await self->cpu_.use(kCost);
        it->second.touch();
    };
    child(this, key).detach();
    co_return;
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUseAfterSuspension);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 7);
}

// ----------------------------------------------------------------------
// Flow rule: remora-release-on-all-paths (advisory)
// ----------------------------------------------------------------------

TEST(LintReleasePaths, EarlyReturnSkippingReleaseIsAdvisory)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<util::Status> Server::withLock(bool fast)
{
    co_await lock_.acquire();
    if (fast) {
        co_return util::Status();
    }
    co_await lock_.release();
    co_return util::Status();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kReleaseOnAllPaths);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_FALSE(ruleIsError(findings[0].rule));
    // Reported at the acquire, where the fix (scope or release) goes.
    EXPECT_EQ(findings[0].line, 4);
}

TEST(LintReleasePaths, ReleaseOnEveryPathIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<util::Status> Server::withLock(bool fast)
{
    co_await lock_.acquire();
    if (fast) {
        co_await lock_.release();
        co_return util::Status();
    }
    co_await lock_.release();
    co_return util::Status();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kReleaseOnAllPaths)
                    .empty());
}

TEST(LintReleasePaths, AcquireOnlyHelperIsSilent)
{
    // No release anywhere in the function: transferring ownership out is
    // a deliberate design, not a leaked path.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::lockForCaller()
{
    co_await lock_.acquire();
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kReleaseOnAllPaths)
                    .empty());
}

TEST(LintReleasePaths, BeginUseWithoutEndUseOnEveryPathIsAdvisory)
{
    // TokenClient pin windows follow the same obligation as locks.
    constexpr std::string_view kFixture = R"cc(
void Server::useWindow(uint64_t key, bool bail)
{
    client_.beginUse(key);
    if (bail) {
        return;
    }
    client_.endUse(key);
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kReleaseOnAllPaths);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4);
}

// ----------------------------------------------------------------------
// Flow rule: remora-unchecked-vector-status (advisory)
// ----------------------------------------------------------------------

TEST(LintVectorStatus, ReadvWithOnlyStatusCheckedIsAdvisory)
{
    // readv sub-ops fail individually: .status alone says the batch was
    // delivered, not that every sub-op succeeded.
    constexpr std::string_view kFixture = R"cc(
sim::Task<util::Status> Server::flushMeta()
{
    auto outcome = co_await engine_.readv(makeOps(), timeout_);
    if (!outcome.status.ok()) {
        co_return outcome.status;
    }
    co_return util::Status();
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUncheckedVectorStatus);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_FALSE(ruleIsError(findings[0].rule));
}

TEST(LintVectorStatus, InspectingResultsIsClean)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::gather()
{
    auto outcome = co_await engine_.readv(makeOps(), timeout_);
    for (const auto &res : outcome.results) {
        consume(res);
    }
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUncheckedVectorStatus)
                    .empty());
}

TEST(LintVectorStatus, DiscardedAwaitedVectorCallIsAdvisory)
{
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::fireAndForget()
{
    co_await engine_.writev(makeOps(), timeout_);
}
)cc";
    auto findings = only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                         Rule::kUncheckedVectorStatus);
    ASSERT_EQ(findings.size(), 1u);
}

TEST(LintVectorStatus, ReturningTheWholeOutcomeEscapesTheObligation)
{
    // Forwarding wrappers hand the outcome to the caller, who inherits
    // the inspection obligation.
    constexpr std::string_view kFixture = R"cc(
sim::Task<rmem::VectorOutcome> Server::forward()
{
    auto out = co_await engine_.readv(makeOps(), timeout_);
    co_return out;
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUncheckedVectorStatus)
                    .empty());
}

TEST(LintVectorStatus, WritevIsSatisfiedByStatusCheck)
{
    // writev has no per-sub-op payloads; its outcome is all in .status.
    constexpr std::string_view kFixture = R"cc(
sim::Task<void> Server::push()
{
    auto ws = co_await engine_.writev(makeOps(), timeout_);
    REMORA_ASSERT(ws.status.ok());
}
)cc";
    EXPECT_TRUE(only(lintSource("fixture.cc", kFixture, coroutineOnly()),
                     Rule::kUncheckedVectorStatus)
                    .empty());
}

// ----------------------------------------------------------------------
// Include-layer checker
// ----------------------------------------------------------------------

using FileSet = std::vector<std::pair<std::string, std::string>>;

TEST(LintLayers, DownwardAndSameModuleEdgesAreClean)
{
    FileSet files = {
        {"src/util/assert.h", ""},
        {"src/sim/task.h", "#include \"util/assert.h\"\n"},
        {"src/sim/simulator.h",
         "#include \"sim/task.h\"\n#include \"util/assert.h\"\n"},
        {"src/rpc/transport.h",
         "#include \"sim/task.h\"\n#include \"util/assert.h\"\n"},
    };
    EXPECT_TRUE(checkIncludeLayers(files).empty());
}

TEST(LintLayers, UpwardEdgeIsRejected)
{
    FileSet files = {
        {"src/util/assert.h", ""},
        {"src/util/bad.h", "#include \"rpc/transport.h\"\n"},
        {"src/rpc/transport.h", "#include \"util/assert.h\"\n"},
    };
    auto findings = checkIncludeLayers(files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, Rule::kIncludeLayer);
    EXPECT_TRUE(ruleIsError(findings[0].rule));
    EXPECT_EQ(findings[0].file, "src/util/bad.h");
    EXPECT_EQ(findings[0].line, 1);
    EXPECT_NE(findings[0].message.find("climbs"), std::string::npos);
}

TEST(LintLayers, EqualRankCrossModuleEdgeIsRejected)
{
    // names and dfs share a rank: neither may include the other, which
    // keeps the two paper clients independently deletable.
    FileSet files = {
        {"src/names/clerk.h", "#include \"dfs/backend.h\"\n"},
        {"src/dfs/backend.h", ""},
    };
    auto findings = checkIncludeLayers(files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/names/clerk.h");
}

TEST(LintLayers, IncludeCycleIsReportedOnce)
{
    FileSet files = {
        {"src/sim/a.h", "#include \"sim/b.h\"\n"},
        {"src/sim/b.h", "#include \"sim/a.h\"\n"},
    };
    auto findings = checkIncludeLayers(files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "src/sim/a.h");
    EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
}

TEST(LintLayers, UnknownModuleIsRejected)
{
    FileSet files = {
        {"src/sim/task.h", "#include \"frobnicator/core.h\"\n"},
    };
    auto findings = checkIncludeLayers(files);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("frobnicator"), std::string::npos);
}

TEST(LintLayers, NolintSuppressesALayerEdge)
{
    FileSet files = {
        {"src/util/bridge.h",
         "#include \"rpc/transport.h\" // NOLINT(remora-include-layer)\n"},
        {"src/rpc/transport.h", ""},
    };
    EXPECT_TRUE(checkIncludeLayers(files).empty());
}

TEST(LintLayers, ApplicationLayerAndRelativeIncludesAreExempt)
{
    // tests/, tools/, bench/ sit above the whole diagram; relative
    // includes are include-hygiene's problem, not a layer edge.
    FileSet files = {
        {"tests/test_all.cc",
         "#include \"dfs/backend.h\"\n#include \"util/assert.h\"\n"},
        {"tools/driver/main.cc", "#include \"trace/writer.h\"\n"},
        {"src/sim/task.cc", "#include \"../util/assert.h\"\n"},
        {"src/util/assert.h", ""},
    };
    EXPECT_TRUE(checkIncludeLayers(files).empty());
}

// ----------------------------------------------------------------------
// Rule metadata and machine-readable output
// ----------------------------------------------------------------------

TEST(LintRules, EveryRuleHasNameSeverityAndDescription)
{
    for (Rule r : kAllRules) {
        EXPECT_FALSE(std::string_view(ruleName(r)).empty());
        EXPECT_FALSE(std::string_view(ruleDescription(r)).empty());
    }
    // The two detached-coroutine shapes share one user-facing name.
    EXPECT_EQ(std::string_view(ruleName(Rule::kDetachedCoroutine)),
              std::string_view(ruleName(Rule::kDetachedCoroutineDetach)));
}

TEST(LintRules, FlowRulesAreExactlyTheCfgBackedOnes)
{
    size_t flowCount = 0;
    for (Rule r : kAllRules) {
        flowCount += ruleIsFlow(r) ? 1u : 0u;
    }
    EXPECT_EQ(flowCount, 4u);
    EXPECT_TRUE(ruleIsFlow(Rule::kLockAcrossSuspension));
    EXPECT_TRUE(ruleIsFlow(Rule::kUseAfterSuspension));
    EXPECT_TRUE(ruleIsFlow(Rule::kReleaseOnAllPaths));
    EXPECT_TRUE(ruleIsFlow(Rule::kUncheckedVectorStatus));
    EXPECT_FALSE(ruleIsFlow(Rule::kIncludeLayer));
    EXPECT_FALSE(ruleIsFlow(Rule::kCoroutineRefParam));
}

TEST(LintJson, FindingsSerializeWithSeverityAndEscaping)
{
    std::vector<Finding> findings = {
        {Rule::kNondeterminism, "src/a.cc", 3, "uses \"rand\""},
        {Rule::kReleaseOnAllPaths, "src/b.cc", 9, "path\\skips release"},
    };
    std::string json = findingsToJson(findings);
    EXPECT_NE(json.find("\"rule\":\"remora-nondeterminism\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"advisory\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":3"), std::string::npos);
    EXPECT_NE(json.find("uses \\\"rand\\\""), std::string::npos);
    EXPECT_NE(json.find("path\\\\skips"), std::string::npos);
    EXPECT_EQ(findingsToJson({}), "[]");
}

} // namespace
} // namespace remora::lint
