/**
 * @file
 * Integration tests: the full stack assembled the way the paper's
 * cluster would be — name-service bootstrap, file service located
 * through it, multiple clients on a switch, and failure injection.
 */
#include <gtest/gtest.h>

#include <memory>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/clerk.h"
#include "dfs/server.h"
#include "names/clerk.h"
#include "rpc/transport.h"
#include "util/bytes.h"

namespace remora {
namespace {

using test::runToCompletion;

TEST(Integration, FileServiceLocatedThroughNameService)
{
    // Three nodes on a switch: a file server and two client machines.
    // The server's cache areas are published through the name service;
    // clients bootstrap everything from segment names alone.
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node serverNode(sim, 1, "server");
    mem::Node client1(sim, 2, "c1");
    mem::Node client2(sim, 3, "c2");
    rmem::RmemEngine se(serverNode), e1(client1), e2(client2);
    network.addHost(1, serverNode.nic());
    network.addHost(2, client1.nic());
    network.addHost(3, client2.nic());
    network.wireSwitched();

    // Name clerks boot first on every node (well-known slots).
    names::NameClerk names1(se), names2(e1), names3(e2);
    names1.addPeer(2);
    names1.addPeer(3);
    names2.addPeer(1);
    names2.addPeer(3);
    names3.addPeer(1);
    names3.addPeer(2);

    dfs::FileStore store;
    auto file = store.createFile(store.root(), "shared.dat", 12000);
    ASSERT_TRUE(file.ok());
    dfs::FileServer server(se, store);
    server.warmCaches();
    server.start();

    // Bootstrap: node 1 exports a tiny "directory" segment through the
    // name service whose contents are the six area handles; clients
    // import it by name and read the handles out with one remote read.
    mem::Process &pub = serverNode.spawnProcess("publisher");
    mem::Vaddr dirBase = pub.space().allocRegion(4096);
    {
        dfs::ServerAreaHandles areas = server.areaHandles();
        util::ByteWriter w(4096);
        auto putHandle = [&w](const rmem::ImportedSegment &h) {
            w.putU16(h.node);
            w.putU8(h.descriptor);
            w.putU8(static_cast<uint8_t>(h.rights));
            w.putU16(h.generation);
            w.putU16(0);
            w.putU32(h.size);
        };
        putHandle(areas.data);
        putHandle(areas.name);
        putHandle(areas.attr);
        putHandle(areas.dir);
        putHandle(areas.link);
        putHandle(areas.stat);
        ASSERT_TRUE(pub.space().write(dirBase, w.bytes()).ok());
    }
    auto expT = names1.exportByName(&pub, dirBase, 4096, rmem::Rights::kRead,
                                    rmem::NotifyPolicy::kNever, "dfs.areas");
    ASSERT_TRUE(runToCompletion(sim, expT).ok());

    // A client machine bootstraps from the name alone. The cluster
    // objects are handed in as pointers (copied into the coroutine
    // frame), the tree's idiom for suspension-safe lambda coroutines.
    auto bootstrap = [](names::NameClerk *names, rmem::RmemEngine *eng,
                        mem::Node *node)
        -> sim::Task<dfs::ServerAreaHandles> {
        auto dir = co_await names->import("dfs.areas", 1);
        REMORA_ASSERT(dir.ok());
        mem::Process &proc = node->spawnProcess("bootstrap");
        mem::Vaddr scratch = proc.space().allocRegion(4096);
        auto local = eng->exportSegment(proc, scratch, 4096,
                                        rmem::Rights::kRead,
                                        rmem::NotifyPolicy::kNever, "boot");
        REMORA_ASSERT(local.ok());
        auto bytes = co_await eng->read(dir.value(), 0,
                                        local.value().descriptor, 0, 72);
        REMORA_ASSERT(bytes.status.ok());
        util::ByteReader r(bytes.data);
        auto getHandle = [&r]() {
            rmem::ImportedSegment h;
            h.node = r.getU16();
            h.descriptor = r.getU8();
            h.rights = static_cast<rmem::Rights>(r.getU8());
            h.generation = r.getU16();
            r.skip(2);
            h.size = r.getU32();
            return h;
        };
        dfs::ServerAreaHandles areas;
        areas.data = getHandle();
        areas.name = getHandle();
        areas.attr = getHandle();
        areas.dir = getHandle();
        areas.link = getHandle();
        areas.stat = getHandle();
        co_return areas;
    };

    auto boot1 = bootstrap(&names2, &e1, &client1);
    auto areas1 = runToCompletion(sim, boot1);

    // The bootstrapped handles drive a working DX backend.
    mem::Process &clerkProc = client1.spawnProcess("clerk");
    dfs::DxBackend dx(e1, clerkProc, areas1);
    auto t = dx.read(file.value(), 0, 8192);
    auto got = runToCompletion(sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), store.read(file.value(), 0, 8192).value());
    EXPECT_EQ(dx.misses(), 0u);
}

TEST(Integration, TwoClientsShareOneServerCoherently)
{
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node serverNode(sim, 1, "server");
    mem::Node c1(sim, 2, "c1"), c2(sim, 3, "c2");
    rmem::RmemEngine se(serverNode), e1(c1), e2(c2);
    network.addHost(1, serverNode.nic());
    network.addHost(2, c1.nic());
    network.addHost(3, c2.nic());
    network.wireSwitched();

    dfs::FileStore store;
    auto file = store.createFile(store.root(), "shared", 8192);
    ASSERT_TRUE(file.ok());
    dfs::FileServer server(se, store);
    server.warmCaches();
    server.start();

    mem::Process &p1 = c1.spawnProcess("clerk1");
    mem::Process &p2 = c2.spawnProcess("clerk2");
    dfs::DxBackend dx1(e1, p1, server.areaHandles());
    dfs::DxBackend dx2(e2, p2, server.areaHandles());

    // Client 1 writes through DX; client 2 reads the new bytes straight
    // from the server's data area (the flag-word protocol at work).
    std::vector<uint8_t> newData(8192, 0x6c);
    auto w = dx1.write(file.value(), 0, newData);
    ASSERT_TRUE(runToCompletion(sim, w).ok());
    sim.run();

    auto r = dx2.read(file.value(), 0, 8192);
    auto got = runToCompletion(sim, r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), newData);
}

TEST(Integration, RpcAndRmemShareOneWire)
{
    // The conventional transport and the remote-memory engine coexist
    // on the same kernel wire without interfering.
    test::TwoNodeCluster c;
    rpc::RpcTransport clientRpc(c.engineA.wire());
    rpc::RpcTransport serverRpc(c.engineB.wire());
    serverRpc.registerProc(
        1, [](net::NodeId,
              std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });

    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "mix");
    ASSERT_TRUE(seg.ok());

    // Interleave RPC calls and remote writes.
    auto rpcCall = clientRpc.call(2, 1, {9, 8, 7});
    auto write = c.engineA.write(seg.value(), 0, {1, 2, 3});
    auto rpcReply = runToCompletion(c.sim, rpcCall);
    auto ws = runToCompletion(c.sim, write);
    c.sim.run();
    ASSERT_TRUE(rpcReply.ok());
    EXPECT_EQ(rpcReply.value(), (std::vector<uint8_t>{9, 8, 7}));
    EXPECT_TRUE(ws.ok());
    std::vector<uint8_t> check(3);
    ASSERT_TRUE(server.space().read(base, check).ok());
    EXPECT_EQ(check, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Integration, ServerCrashSurfacesAsTimeouts)
{
    // §3.7: failure detection is timeouts in both models. Kill the
    // server's kernel handlers mid-run and watch both paths time out.
    test::TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "seg");
    ASSERT_TRUE(seg.ok());
    mem::Vaddr lbase = client.space().allocRegion(4096);
    auto local = c.engineA.exportSegment(client, lbase, 4096,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever, "l");
    ASSERT_TRUE(local.ok());

    // Healthy first.
    auto r1 = c.engineA.read(seg.value(), 0, local.value().descriptor, 0, 8,
                             false, sim::msec(5));
    EXPECT_TRUE(runToCompletion(c.sim, r1).status.ok());

    // Crash.
    c.engineB.wire().setRmemHandler([](net::NodeId, rmem::Message &&) {});
    c.engineB.wire().setRpcHandler([](net::NodeId, rmem::Message &&) {});

    auto r2 = c.engineA.read(seg.value(), 0, local.value().descriptor, 0, 8,
                             false, sim::msec(5));
    EXPECT_EQ(runToCompletion(c.sim, r2).status.code(),
              util::ErrorCode::kTimeout);

    rpc::RpcTransport clientRpc(c.engineA.wire());
    auto call = clientRpc.call(2, 1, {}, sim::msec(5));
    EXPECT_EQ(runToCompletion(c.sim, call).status().code(),
              util::ErrorCode::kTimeout);

    // The periodic-probe failure detector the paper sketches: a read
    // of a known value that stops answering.
    auto cas = c.engineA.cas(seg.value(), 0, 0, 1,
                             local.value().descriptor, 0, sim::msec(5));
    EXPECT_EQ(runToCompletion(c.sim, cas).status.code(),
              util::ErrorCode::kTimeout);
}

TEST(Integration, ManyConcurrentRemoteOpsComplete)
{
    test::SwitchedCluster c(4);
    // Node 1 exports; nodes 2-4 hammer it concurrently.
    mem::Process &owner = c.nodes[0]->spawnProcess("owner");
    mem::Vaddr base = owner.space().allocRegion(64 * 1024);
    auto seg = c.engines[0]->exportSegment(owner, base, 64 * 1024,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever,
                                           "hot");
    ASSERT_TRUE(seg.ok());

    std::vector<sim::Task<void>> tasks;
    for (size_t n = 1; n < 4; ++n) {
        mem::Process &proc =
            c.nodes[n]->spawnProcess("w" + std::to_string(n));
        mem::Vaddr lbase = proc.space().allocRegion(4096);
        auto local = c.engines[n]->exportSegment(
            proc, lbase, 4096, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "l");
        ASSERT_TRUE(local.ok());
        tasks.push_back([](rmem::RmemEngine *eng, rmem::ImportedSegment s,
                           rmem::SegmentId lseg,
                           uint32_t slot) -> sim::Task<void> {
            for (int i = 0; i < 20; ++i) {
                std::vector<uint8_t> data(64, static_cast<uint8_t>(slot));
                auto ws = co_await eng->write(s, slot * 4096 +
                                                     (i % 8) * 256,
                                              std::move(data));
                REMORA_ASSERT(ws.ok());
                auto rd = co_await eng->read(s, slot * 4096, lseg, 0, 64);
                REMORA_ASSERT(rd.status.ok());
                REMORA_ASSERT(rd.data[0] == slot);
            }
        }(c.engines[n].get(), seg.value(), local.value().descriptor,
                           static_cast<uint32_t>(n)));
    }
    c.sim.run();
    for (auto &t : tasks) {
        EXPECT_TRUE(t.done());
        t.result(); // rethrow on failure
    }
}

} // namespace
} // namespace remora
