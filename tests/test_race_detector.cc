/**
 * @file
 * Tests for the happens-before race detector (rmem/race_detector):
 * vector-clock and shadow-map units, direct release/acquire mechanics,
 * and end-to-end fixtures — a known-racy two-importer write pair that
 * must be caught under every perturbation seed, a CAS-guarded counter
 * that must stay clean under every seed, and the name-clerk-style
 * reordered publish (valid word stored before the record body) that
 * motivated the §10 audit.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/race_detector.h"
#include "rmem/sync.h"
#include "util/bytes.h"

namespace remora {
namespace {

using rmem::RaceDetector;
using rmem::ShadowRangeMap;
using rmem::VectorClock;
using test::runToCompletion;
using test::SwitchedCluster;
using test::TwoNodeCluster;

/** Arm for the test body, disarm on exit so later suites run bare. */
struct Armed
{
    explicit Armed(const rmem::RaceDetectorOptions &opts = {})
    {
        RaceDetector::instance().arm(opts);
    }
    ~Armed() { RaceDetector::instance().disarm(); }
};

// ----------------------------------------------------------------------
// VectorClock
// ----------------------------------------------------------------------

TEST(VectorClock, UnseenActorIsEpochZero)
{
    VectorClock c;
    EXPECT_EQ(c.get(7), 0u);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_TRUE(c.covers(7, 0));
    EXPECT_FALSE(c.covers(7, 1));
}

TEST(VectorClock, BumpAdvancesOneActorOnly)
{
    VectorClock c;
    c.bump(1);
    c.bump(1);
    c.bump(2);
    EXPECT_EQ(c.get(1), 2u);
    EXPECT_EQ(c.get(2), 1u);
    EXPECT_EQ(c.get(3), 0u);
    EXPECT_EQ(c.size(), 2u);
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a;
    a.set(1, 5);
    a.set(2, 1);
    VectorClock b;
    b.set(2, 4);
    b.set(3, 2);
    a.join(b);
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(a.get(2), 4u);
    EXPECT_EQ(a.get(3), 2u);
    // The joined clock dominates both inputs.
    EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, LeqAndConcurrency)
{
    VectorClock a;
    a.set(1, 3);
    VectorClock b;
    b.set(1, 3);
    b.set(2, 1);
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    EXPECT_FALSE(a.concurrentWith(b));

    VectorClock c;
    c.set(2, 9);
    EXPECT_TRUE(a.concurrentWith(c));
    EXPECT_TRUE(c.concurrentWith(a));

    // Equal clocks order both ways and are not concurrent.
    VectorClock d = a;
    EXPECT_TRUE(a.leq(d));
    EXPECT_TRUE(d.leq(a));
    EXPECT_FALSE(a.concurrentWith(d));
}

TEST(VectorClock, RendersActorEpochPairs)
{
    VectorClock a;
    a.set(2, 7);
    a.set(1, 4);
    EXPECT_EQ(a.str(), "{1:4 2:7}");
}

// ----------------------------------------------------------------------
// ShadowRangeMap
// ----------------------------------------------------------------------

TEST(ShadowRangeMap, CoversGapsAndSplitsAtBoundaries)
{
    ShadowRangeMap m;
    int pieces = 0;
    m.forRange(0, 64, [&](uint32_t, uint32_t, rmem::ShadowState &) {
        ++pieces;
    });
    EXPECT_EQ(pieces, 1);
    EXPECT_EQ(m.rangeCount(), 1u);

    // An interior touch splits the existing range at both ends.
    m.forRange(16, 32, [&](uint32_t lo, uint32_t hi, rmem::ShadowState &) {
        EXPECT_EQ(lo, 16u);
        EXPECT_EQ(hi, 32u);
    });
    auto r = m.ranges();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0], std::make_pair(0u, 16u));
    EXPECT_EQ(r[1], std::make_pair(16u, 32u));
    EXPECT_EQ(r[2], std::make_pair(32u, 64u));
}

TEST(ShadowRangeMap, SplitStateIsInheritedByBothHalves)
{
    ShadowRangeMap m;
    m.forRange(0, 8, [&](uint32_t, uint32_t, rmem::ShadowState &st) {
        st.lastWrite.actor = 9;
        st.lastWrite.epoch = 42;
    });
    // Touch only the upper half; the recorded write must be visible.
    m.forRange(4, 8, [&](uint32_t, uint32_t, rmem::ShadowState &st) {
        EXPECT_EQ(st.lastWrite.actor, 9u);
        EXPECT_EQ(st.lastWrite.epoch, 42u);
    });
    // ...and still visible in the untouched lower half.
    m.forRange(0, 4, [&](uint32_t, uint32_t, rmem::ShadowState &st) {
        EXPECT_EQ(st.lastWrite.actor, 9u);
    });
}

TEST(ShadowRangeMap, ErasePunchesAHole)
{
    ShadowRangeMap m;
    m.forRange(0, 32, [](uint32_t, uint32_t, rmem::ShadowState &) {});
    m.erase(8, 16);
    auto r = m.ranges();
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], std::make_pair(0u, 8u));
    EXPECT_EQ(r[1], std::make_pair(16u, 32u));

    // Re-covering the hole materialises fresh (empty) state there.
    m.forRange(8, 16, [](uint32_t, uint32_t, rmem::ShadowState &st) {
        EXPECT_EQ(st.lastWrite.actor, 0u);
    });
}

TEST(ShadowRangeMap, SpanningRangeVisitsPiecesInOrder)
{
    ShadowRangeMap m;
    m.forRange(10, 20, [](uint32_t, uint32_t, rmem::ShadowState &) {});
    m.forRange(30, 40, [](uint32_t, uint32_t, rmem::ShadowState &) {});
    std::vector<std::pair<uint32_t, uint32_t>> seen;
    m.forRange(0, 50, [&](uint32_t lo, uint32_t hi, rmem::ShadowState &) {
        seen.emplace_back(lo, hi);
    });
    ASSERT_EQ(seen.size(), 5u);
    EXPECT_EQ(seen.front(), std::make_pair(0u, 10u));
    EXPECT_EQ(seen.back(), std::make_pair(40u, 50u));
    uint32_t prev = 0;
    for (auto [lo, hi] : seen) {
        EXPECT_EQ(lo, prev);
        EXPECT_LT(lo, hi);
        prev = hi;
    }
    EXPECT_EQ(prev, 50u);
}

// ----------------------------------------------------------------------
// Detector mechanics, driven directly (no cluster)
// ----------------------------------------------------------------------

/** Attribute one access to @p actor at unit-test segment 7/1. */
void
unitAccess(rmem::ActorId actor, bool write, mem::Vaddr va, size_t len,
           sim::Time now, const std::string &site)
{
    RaceDetector::ScopedActor scope(actor, site);
    RaceDetector::instance().onLocalAccess(7, 0, write, va, len, now);
}

TEST(RaceDetector, UnorderedWriteWritePairIsReported)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    unitAccess(1, true, 0x1008, 4, 10, "first writer");
    unitAccess(2, true, 0x1008, 4, 20, "second writer");
    EXPECT_EQ(det.raceCount(), 1u);
    ASSERT_EQ(det.reports().size(), 1u);
    const auto &r = det.reports()[0];
    EXPECT_EQ(r.node, 7u);
    EXPECT_EQ(r.segmentName, "unit");
    EXPECT_EQ(r.lo, 8u);
    EXPECT_EQ(r.hi, 12u);
    EXPECT_EQ(r.prior.actor, 1u);
    EXPECT_EQ(r.prior.site, "first writer");
    EXPECT_TRUE(r.prior.write);
    EXPECT_EQ(r.current.actor, 2u);
    EXPECT_EQ(r.current.site, "second writer");
    EXPECT_FALSE(r.prior.clock.empty());
    EXPECT_FALSE(r.current.clock.empty());
    // The rendered report quotes both sites.
    std::string text = r.format();
    EXPECT_NE(text.find("first writer"), std::string::npos);
    EXPECT_NE(text.find("second writer"), std::string::npos);
}

TEST(RaceDetector, SameActorAccessesNeverConflict)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    unitAccess(1, true, 0x1000, 8, 10, "w");
    unitAccess(1, false, 0x1000, 8, 20, "r");
    unitAccess(1, true, 0x1004, 8, 30, "w2");
    EXPECT_EQ(det.raceCount(), 0u);
}

TEST(RaceDetector, ConcurrentReadsAreNotARace)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    unitAccess(1, false, 0x1010, 8, 10, "r1");
    unitAccess(2, false, 0x1010, 8, 20, "r2");
    EXPECT_EQ(det.raceCount(), 0u);
    // ...but a later unordered write conflicts with *both* readers.
    unitAccess(3, true, 0x1010, 8, 30, "w");
    EXPECT_GE(det.raceCount(), 2u);
}

TEST(RaceDetector, SyncWordCarriesReleaseAcquireOrdering)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    det.markSyncWord(7, 1, 0);

    // Writer publishes data, then stores the sync word (release).
    unitAccess(1, true, 0x1010, 4, 10, "publish data");
    unitAccess(1, true, 0x1000, 4, 11, "publish flag");
    // Reader polls the sync word (acquire), then reads the data.
    unitAccess(2, false, 0x1000, 4, 12, "poll flag");
    unitAccess(2, false, 0x1010, 4, 13, "consume data");
    EXPECT_EQ(det.raceCount(), 0u) << "release/acquire chain not honoured";

    // Unordered stores *to the sync word itself* are not data races.
    unitAccess(3, true, 0x1000, 4, 14, "contending flag store");
    EXPECT_EQ(det.raceCount(), 0u);
}

TEST(RaceDetector, SkippingTheAcquireIsARace)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    det.markSyncWord(7, 1, 0);
    unitAccess(1, true, 0x1010, 4, 10, "publish data");
    unitAccess(1, true, 0x1000, 4, 11, "publish flag");
    // Reader goes straight for the data without polling the flag.
    unitAccess(2, false, 0x1010, 4, 12, "impatient read");
    EXPECT_EQ(det.raceCount(), 1u);
}

TEST(RaceDetector, TokenEdgesOrderAccesses)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    int token = 0; // identity only; mirrors a NotificationChannel*
    unitAccess(1, true, 0x1020, 4, 10, "producer");
    det.releaseToken(&token, 1);
    det.acquireToken(&token, 2);
    unitAccess(2, true, 0x1020, 4, 20, "consumer");
    EXPECT_EQ(det.raceCount(), 0u);
}

TEST(RaceDetector, FenceOrdersEverythingSoFar)
{
    Armed armed;
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    unitAccess(1, true, 0x1030, 4, 10, "setup");
    det.fence();
    unitAccess(2, true, 0x1030, 4, 20, "after fence");
    EXPECT_EQ(det.raceCount(), 0u);
}

TEST(RaceDetector, GranularityWidensTheCheckedRange)
{
    rmem::RaceDetectorOptions opts;
    opts.granularity = 8;
    Armed armed(opts);
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    // Disjoint single bytes inside one 8-byte grain now collide:
    // the price of a coarser shadow map is false sharing, exactly as
    // with a real detector's shadow-cell granularity.
    unitAccess(1, true, 0x1010, 1, 10, "byte 0x10");
    unitAccess(2, true, 0x1013, 1, 20, "byte 0x13");
    EXPECT_EQ(det.raceCount(), 1u);
}

TEST(RaceDetector, ReportCapStopsRecordingNotCounting)
{
    rmem::RaceDetectorOptions opts;
    opts.maxReports = 2;
    Armed armed(opts);
    auto &det = RaceDetector::instance();
    det.registerSegment(7, 1, 0, 0x1000, 64, "unit");
    for (int i = 0; i < 5; ++i) {
        unitAccess(1, true, 0x1000 + 8 * i, 4, 10 + i, "a");
        unitAccess(2, true, 0x1000 + 8 * i, 4, 20 + i, "b");
    }
    EXPECT_EQ(det.reports().size(), 2u);
    EXPECT_EQ(det.raceCount(), 5u);
}

// ----------------------------------------------------------------------
// End-to-end: known-racy two-importer writes, across perturbation seeds
// ----------------------------------------------------------------------

TEST(RaceDetectorCluster, TwoImporterWritesCaughtUnderEverySeed)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Armed armed; // arm *before* export so segments register
        SwitchedCluster c(3);
        c.sim.setPerturbation(seed);

        mem::Process &owner = c.nodes[0]->spawnProcess("owner");
        mem::Vaddr base = owner.space().allocRegion(4096);
        auto h = c.engines[0]->exportSegment(owner, base, 4096,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "shared");
        ASSERT_TRUE(h.ok());

        // Both importers write [32, 96) and [0, 64): bytes [32, 64)
        // overlap with no ordering primitive anywhere in sight.
        auto t1 = c.engines[1]->write(h.value(), 0,
                                      std::vector<uint8_t>(64, 0xaa));
        auto t2 = c.engines[2]->write(h.value(), 32,
                                      std::vector<uint8_t>(64, 0xbb));
        c.sim.run();
        EXPECT_TRUE(t1.done() && t2.done());

        auto &det = RaceDetector::instance();
        ASSERT_FALSE(det.reports().empty())
            << "unsynchronized overlapping writes missed at seed " << seed;
        const auto &r = det.reports()[0];
        EXPECT_EQ(r.segmentName, "shared");
        EXPECT_EQ(r.lo, 32u);
        EXPECT_EQ(r.hi, 64u);
        // Both sides name the initiating importer and carry clocks.
        EXPECT_NE(r.prior.site.find("serve_write"), std::string::npos);
        EXPECT_NE(r.current.site.find("serve_write"), std::string::npos);
        EXPECT_NE(r.prior.actor, r.current.actor);
        EXPECT_FALSE(r.prior.clock.empty());
        EXPECT_FALSE(r.current.clock.empty());
    }
}

// ----------------------------------------------------------------------
// End-to-end: vectored writes race at sub-op byte-range granularity
// ----------------------------------------------------------------------

TEST(RaceDetectorCluster, OverlappingVectoredWritesCaughtPerSubOp)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Armed armed;
        SwitchedCluster c(3);
        c.sim.setPerturbation(seed);

        mem::Process &owner = c.nodes[0]->spawnProcess("owner");
        mem::Vaddr base = owner.space().allocRegion(4096);
        auto h = c.engines[0]->exportSegment(owner, base, 4096,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "shared");
        ASSERT_TRUE(h.ok());

        // Each importer sends one vectored WRITE of two sub-ops. Only
        // ONE sub-op pair overlaps — bytes [32, 64) — so a detector
        // attributing accesses at whole-batch granularity would report
        // the wrong range (or flag the disjoint pair too).
        std::vector<rmem::BatchBuilder::Write> w1;
        w1.push_back({h.value(), 0, std::vector<uint8_t>(64, 0xaa), false});
        w1.push_back(
            {h.value(), 256, std::vector<uint8_t>(32, 0xaa), false});
        std::vector<rmem::BatchBuilder::Write> w2;
        w2.push_back({h.value(), 32, std::vector<uint8_t>(32, 0xbb), false});
        w2.push_back(
            {h.value(), 512, std::vector<uint8_t>(32, 0xbb), false});
        auto t1 = c.engines[1]->writev(std::move(w1));
        auto t2 = c.engines[2]->writev(std::move(w2));
        c.sim.run();
        EXPECT_TRUE(t1.done() && t2.done());

        auto &det = RaceDetector::instance();
        ASSERT_EQ(det.raceCount(), 1u)
            << "seed " << seed << ": expected exactly the one "
            << "overlapping sub-op pair";
        const auto &r = det.reports()[0];
        EXPECT_EQ(r.segmentName, "shared");
        EXPECT_EQ(r.lo, 32u);
        EXPECT_EQ(r.hi, 64u);
        EXPECT_NE(r.prior.site.find("serve_vector"), std::string::npos);
        EXPECT_NE(r.current.site.find("serve_vector"), std::string::npos);
        EXPECT_NE(r.prior.actor, r.current.actor);
    }
}

TEST(RaceDetectorCluster, DisjointVectoredWritesStayClean)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Armed armed;
        SwitchedCluster c(3);
        c.sim.setPerturbation(seed);

        mem::Process &owner = c.nodes[0]->spawnProcess("owner");
        mem::Vaddr base = owner.space().allocRegion(4096);
        auto h = c.engines[0]->exportSegment(owner, base, 4096,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "shared");
        ASSERT_TRUE(h.ok());

        // Interleaved stripes, byte-adjacent but never overlapping.
        std::vector<rmem::BatchBuilder::Write> w1, w2;
        for (uint32_t i = 0; i < 4; ++i) {
            w1.push_back({h.value(), i * 64,
                          std::vector<uint8_t>(32, 0xaa), false});
            w2.push_back({h.value(), i * 64 + 32,
                          std::vector<uint8_t>(32, 0xbb), false});
        }
        auto t1 = c.engines[1]->writev(std::move(w1));
        auto t2 = c.engines[2]->writev(std::move(w2));
        c.sim.run();
        EXPECT_TRUE(t1.done() && t2.done());

        auto &det = RaceDetector::instance();
        EXPECT_EQ(det.raceCount(), 0u)
            << "seed " << seed << ": "
            << (det.reports().empty() ? std::string("(capped)")
                                      : det.reports()[0].format());
        EXPECT_GT(det.accessesChecked(), 0u);
    }
}

// ----------------------------------------------------------------------
// End-to-end: CAS-guarded counter stays clean across perturbation seeds
// ----------------------------------------------------------------------

TEST(RaceDetectorCluster, SpinLockGuardedCounterCleanUnderEverySeed)
{
    constexpr int kItersPerWorker = 4;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Armed armed;
        SwitchedCluster c(3);
        c.sim.setPerturbation(seed);

        mem::Process &home = c.nodes[0]->spawnProcess("home");
        mem::Vaddr base = home.space().allocRegion(4096);
        auto shared = c.engines[0]->exportSegment(home, base, 4096,
                                                  rmem::Rights::kAll,
                                                  rmem::NotifyPolicy::kNever,
                                                  "page");
        ASSERT_TRUE(shared.ok());

        // Lock word at offset 0 (marked sync by SpinLock); the counter
        // lives at offset 64, ordered only by the lock.
        struct Worker
        {
            std::unique_ptr<rmem::SpinLock> lock;
            rmem::SegmentId scratch = 0;
            sim::Task<void> task{};
        };
        std::vector<Worker> workers(2);
        for (size_t i = 0; i < 2; ++i) {
            auto &eng = *c.engines[i + 1];
            mem::Process &proc = c.nodes[i + 1]->spawnProcess("w");
            mem::Vaddr lbase = proc.space().allocRegion(4096);
            auto l = eng.exportSegment(proc, lbase, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "s");
            ASSERT_TRUE(l.ok());
            workers[i].scratch = l.value().descriptor;
            workers[i].lock = std::make_unique<rmem::SpinLock>(
                eng, shared.value(), 0, workers[i].scratch, 0,
                static_cast<uint32_t>(0x100 + i));
        }
        for (size_t i = 0; i < 2; ++i) {
            workers[i].task =
                [](rmem::RmemEngine *eng, rmem::SpinLock *lock,
                   rmem::ImportedSegment page,
                   rmem::SegmentId scratch) -> sim::Task<void> {
                for (int k = 0; k < kItersPerWorker; ++k) {
                    auto s = co_await lock->acquire();
                    REMORA_ASSERT(s.ok());
                    rmem::ReadOutcome cur =
                        co_await eng->read(page, 64, scratch, 16, 4);
                    REMORA_ASSERT(cur.status.ok());
                    uint32_t v = util::ByteReader(cur.data).getU32();
                    util::ByteWriter w(4);
                    w.putU32(v + 1);
                    auto ws = co_await eng->write(
                        page, 64,
                        std::vector<uint8_t>(w.bytes().begin(),
                                             w.bytes().end()));
                    REMORA_ASSERT(ws.ok());
                    auto r = co_await lock->release();
                    REMORA_ASSERT(r.ok());
                }
            }(&*c.engines[i + 1], workers[i].lock.get(), shared.value(),
                  workers[i].scratch);
        }
        c.sim.run();
        for (auto &w : workers) {
            ASSERT_TRUE(w.task.done());
            w.task.result();
        }

        auto &det = RaceDetector::instance();
        EXPECT_EQ(det.raceCount(), 0u)
            << "seed " << seed << ": "
            << (det.reports().empty() ? std::string("(capped)")
                                      : det.reports()[0].format());
        EXPECT_GT(det.accessesChecked(), 0u);

        // Disarm before poking memory locally — the owner never takes
        // the lock, so an armed local read would itself be flagged.
        det.disarm();
        std::vector<uint8_t> buf(4);
        ASSERT_TRUE(home.space().read(base + 64, buf).ok());
        EXPECT_EQ(util::ByteReader(buf).getU32(),
                  2u * kItersPerWorker);
    }
}

// ----------------------------------------------------------------------
// End-to-end: the name-clerk publish-order audit, §10
// ----------------------------------------------------------------------

/**
 * A registry-style record publish done in the *wrong* order — valid
 * word stored before the record body, the bug class the names/clerk.cc
 * audit is guarding against — must be caught: a remote probe that
 * acquires the valid word still finds body bytes newer than anything
 * the word released.
 */
TEST(RaceDetectorCluster, FlagFirstPublishIsCaught)
{
    Armed armed;
    TwoNodeCluster c;
    mem::Process &owner = c.nodeA.spawnProcess("registry");
    mem::Vaddr base = owner.space().allocRegion(4096);
    auto h = c.engineA.exportSegment(owner, base, 128, rmem::Rights::kRead,
                                     rmem::NotifyPolicy::kNever,
                                     "registry");
    ASSERT_TRUE(h.ok());
    auto &det = RaceDetector::instance();
    det.markSyncWord(1, h.value().descriptor, 0); // the valid word

    mem::Process &reader = c.nodeB.spawnProcess("reader");
    mem::Vaddr sbase = reader.space().allocRegion(4096);
    auto sc = c.engineB.exportSegment(reader, sbase, 256,
                                      rmem::Rights::kRead,
                                      rmem::NotifyPolicy::kNever,
                                      "scratch");
    ASSERT_TRUE(sc.ok());

    // Buggy publish: flag first, body second.
    ASSERT_TRUE(owner.space().writeWord(base, 1).ok());
    std::vector<uint8_t> body(28, 0x5a);
    ASSERT_TRUE(owner.space().write(base + 4, body).ok());

    // Remote probe reads flag + body in one record-atomic read.
    auto t = c.engineB.read(h.value(), 0, sc.value().descriptor, 0, 32);
    auto out = runToCompletion(c.sim, t);
    EXPECT_TRUE(out.status.ok());

    ASSERT_FALSE(det.reports().empty());
    const auto &r = det.reports()[0];
    EXPECT_EQ(r.segmentName, "registry");
    EXPECT_GE(r.lo, 4u); // the flag word itself is exempt...
    EXPECT_LE(r.hi, 32u); // ...the body bytes are what race
    EXPECT_TRUE(r.prior.write);
    EXPECT_FALSE(r.current.write);
    EXPECT_NE(r.current.site.find("serve_read"), std::string::npos);
}

/** The correct order — body, then flag — probes clean. */
TEST(RaceDetectorCluster, BodyFirstPublishIsClean)
{
    Armed armed;
    TwoNodeCluster c;
    mem::Process &owner = c.nodeA.spawnProcess("registry");
    mem::Vaddr base = owner.space().allocRegion(4096);
    auto h = c.engineA.exportSegment(owner, base, 128, rmem::Rights::kRead,
                                     rmem::NotifyPolicy::kNever,
                                     "registry");
    ASSERT_TRUE(h.ok());
    auto &det = RaceDetector::instance();
    det.markSyncWord(1, h.value().descriptor, 0);

    mem::Process &reader = c.nodeB.spawnProcess("reader");
    mem::Vaddr sbase = reader.space().allocRegion(4096);
    auto sc = c.engineB.exportSegment(reader, sbase, 256,
                                      rmem::Rights::kRead,
                                      rmem::NotifyPolicy::kNever,
                                      "scratch");
    ASSERT_TRUE(sc.ok());

    std::vector<uint8_t> body(28, 0x5a);
    ASSERT_TRUE(owner.space().write(base + 4, body).ok());
    ASSERT_TRUE(owner.space().writeWord(base, 1).ok()); // release

    auto t = c.engineB.read(h.value(), 0, sc.value().descriptor, 0, 32);
    auto out = runToCompletion(c.sim, t);
    EXPECT_TRUE(out.status.ok());
    EXPECT_EQ(det.raceCount(), 0u)
        << (det.reports().empty() ? std::string()
                                  : det.reports()[0].format());
}

} // namespace
} // namespace remora
