/**
 * @file
 * The dynamic half of the correctness-tooling layer: prove that a full
 * cluster workload — name service, DFS over DX, conventional RPC, raw
 * remote-memory ops — replays bit-identically by running it twice and
 * comparing sim::DeterminismDigest values. remora-lint statically bans
 * the nondeterminism sources that would break this; this test is the
 * runtime witness that the ban (and the event ordering underneath)
 * actually holds.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/file_store.h"
#include "dfs/server.h"
#include "names/clerk.h"
#include "rpc/transport.h"
#include "sim/determinism.h"
#include "sim/random.h"

namespace remora {
namespace {

using test::runToCompletion;

/** Digest and activity count of one finished workload run. */
struct RunResult
{
    uint64_t digest = 0;
    uint64_t records = 0;
    uint64_t events = 0;
};

/**
 * One full cluster workload: two nodes, name-service bootstrap, DFS
 * traffic through the DX backend, an RPC echo stream, and raw rmem
 * write/read traffic with sizes drawn from a seeded sim::Random.
 *
 * @param extraWrites Extra tail writes, to show distinct workloads
 *        produce distinct digests.
 * @param perturbSeed Schedule-perturbation seed; nullopt leaves the
 *        simulator untouched (vs. an explicit setPerturbation(0)).
 */
RunResult
runClusterWorkload(int extraWrites,
                   std::optional<uint64_t> perturbSeed = std::nullopt)
{
    test::TwoNodeCluster c;
    if (perturbSeed) {
        c.sim.setPerturbation(*perturbSeed);
    }
    names::NameClerk namesA(c.engineA), namesB(c.engineB);
    namesA.addPeer(2);
    namesB.addPeer(1);

    dfs::FileStore store;
    auto file = store.createFile(store.root(), "replay.dat", 16384);
    EXPECT_TRUE(file.ok());
    dfs::FileServer server(c.engineA, store);
    server.warmCaches();
    server.start();

    rpc::RpcTransport clientRpc(c.engineB.wire());
    rpc::RpcTransport serverRpc(c.engineA.wire());
    serverRpc.registerProc(
        7, [](net::NodeId,
              std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });

    // Publish a segment by name from the server, import it from the
    // client, and push rmem + RPC + DFS traffic over the shared wire.
    mem::Process &pub = c.nodeA.spawnProcess("publisher");
    mem::Vaddr base = pub.space().allocRegion(8192);
    auto exp = namesA.exportByName(&pub, base, 8192, rmem::Rights::kAll,
                                   rmem::NotifyPolicy::kConditional,
                                   "replay.seg");
    auto handle = runToCompletion(c.sim, exp);
    EXPECT_TRUE(handle.ok());

    mem::Process &clerkProc = c.nodeB.spawnProcess("clerk");
    dfs::DxBackend dx(c.engineB, clerkProc, server.areaHandles());

    auto driver = [](test::TwoNodeCluster *cl, names::NameClerk *names,
                     dfs::DxBackend *backend, rpc::RpcTransport *rpc,
                     dfs::FileHandle fh, int extra) -> sim::Task<void> {
        sim::Random rng(0x5eed);
        auto imported = co_await names->import("replay.seg", 1);
        REMORA_ASSERT(imported.ok());

        for (int i = 0; i < 8; ++i) {
            uint32_t len = 64 + rng.uniformInt(512);
            std::vector<uint8_t> data(len,
                                      static_cast<uint8_t>(rng.nextU32()));
            auto ws = co_await cl->engineB.write(imported.value(),
                                                 4 * i, data, i % 2 == 0);
            REMORA_ASSERT(ws.ok());

            auto echo = co_await rpc->call(1, 7, std::move(data));
            REMORA_ASSERT(echo.ok());

            auto rd = co_await backend->read(fh, 512 * i, 1024);
            REMORA_ASSERT(rd.ok());
        }
        std::vector<uint8_t> tail(256, 0x7e);
        auto w = co_await backend->write(fh, 0, tail);
        REMORA_ASSERT(w.ok());
        for (int i = 0; i < extra; ++i) {
            auto ew = co_await backend->write(fh, 1024 * (i + 1), tail);
            REMORA_ASSERT(ew.ok());
        }
        co_return;
    };
    auto t = driver(&c, &namesB, &dx, &clientRpc, file.value(), extraWrites);
    runToCompletion(c.sim, t);
    c.sim.run();

    RunResult r;
    r.digest = c.sim.digest().value();
    r.records = c.sim.digest().records();
    r.events = c.sim.eventsProcessed();
    return r;
}

TEST(Determinism, ClusterWorkloadReplaysBitIdentically)
{
    RunResult first = runClusterWorkload(0);
    RunResult second = runClusterWorkload(0);
    // The strong property: not merely the same op results, but the same
    // digest over every scheduled/executed event and every component
    // milestone, i.e. bit-identical replay.
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.records, second.records);
    EXPECT_EQ(first.events, second.events);
    // The workload must be substantial enough to mean something.
    EXPECT_GT(first.events, 1000u);
    EXPECT_GT(first.records, 2000u);
}

TEST(Determinism, DistinctWorkloadsProduceDistinctDigests)
{
    // Sanity that the digest has discriminating power: one extra write
    // at the tail must perturb it.
    EXPECT_NE(runClusterWorkload(0).digest, runClusterWorkload(2).digest);
}

TEST(Determinism, DigestFoldsScheduleExecuteAndCancel)
{
    sim::Simulator a;
    sim::Simulator b;
    EXPECT_EQ(a.digest().value(), b.digest().value());

    auto id1 = a.schedule(5, [] {});
    (void)b.schedule(5, [] {});
    // Same (when, id) schedule record on both sides.
    EXPECT_EQ(a.digest().value(), b.digest().value());

    // A cancellation is activity: it must leave a mark even though the
    // event never executes.
    a.cancel(id1);
    EXPECT_NE(a.digest().value(), b.digest().value());

    // Cancelling an id that is already gone folds nothing.
    uint64_t afterCancel = a.digest().value();
    a.cancel(id1);
    EXPECT_EQ(afterCancel, a.digest().value());

    a.run();
    b.run();
    EXPECT_NE(a.digest().value(), b.digest().value());
}

TEST(Determinism, NoteDigestCoversComponentMilestones)
{
    sim::Simulator s;
    uint64_t before = s.digest().value();
    s.noteDigest("test.kind", uint64_t{42});
    EXPECT_NE(before, s.digest().value());

    // Kind and actor both discriminate.
    sim::Simulator s2;
    s2.noteDigest("test.kind", uint64_t{43});
    EXPECT_NE(s.digest().value(), s2.digest().value());

    sim::Simulator s3;
    s3.noteDigest("test.kino", uint64_t{42});
    EXPECT_NE(s.digest().value(), s3.digest().value());

    // The string-actor overload discriminates on content too.
    sim::Simulator s4, s5;
    s4.noteDigest("names.import", std::string_view("alpha"));
    s5.noteDigest("names.import", std::string_view("beta"));
    EXPECT_NE(s4.digest().value(), s5.digest().value());
}

// ----------------------------------------------------------------------
// Schedule perturbation (the race detector's schedule driver)
// ----------------------------------------------------------------------

TEST(Determinism, PerturbationSeedZeroMatchesUnperturbedBitForBit)
{
    // setPerturbation(0) must be indistinguishable from never calling
    // it: same digest, same record count, same event count. This is
    // what lets check.sh fold seed 0 into the regular gate.
    RunResult untouched = runClusterWorkload(0);
    RunResult zeroSeed = runClusterWorkload(0, uint64_t{0});
    EXPECT_EQ(untouched.digest, zeroSeed.digest);
    EXPECT_EQ(untouched.records, zeroSeed.records);
    EXPECT_EQ(untouched.events, zeroSeed.events);
}

TEST(Determinism, PerturbedRunReplaysBitIdentically)
{
    // Perturbation trades *which* legal schedule runs, not determinism:
    // the same seed must replay bit-for-bit.
    RunResult first = runClusterWorkload(0, uint64_t{3});
    RunResult second = runClusterWorkload(0, uint64_t{3});
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.records, second.records);
    EXPECT_EQ(first.events, second.events);
}

TEST(Determinism, DistinctSeedsProduceDistinctDigests)
{
    // The seed is folded into the digest (and reorders same-timestamp
    // events), so perturbed runs are distinguishable from the baseline.
    EXPECT_NE(runClusterWorkload(0).digest,
              runClusterWorkload(0, uint64_t{3}).digest);
}

TEST(Determinism, PerturbationReordersSameTimestampEvents)
{
    // Directly at the simulator: events scheduled for the same instant
    // run in insertion order by default; some seed must permute them
    // (each seed keys an order-preserving hash of the event id, so a
    // handful of seeds is enough to see a swap).
    auto orderUnder = [](uint64_t seed) {
        sim::Simulator s;
        if (seed != 0) {
            s.setPerturbation(seed);
        }
        std::string order;
        for (char tag : {'a', 'b', 'c', 'd', 'e', 'f'}) {
            s.schedule(10, [&order, tag] { order.push_back(tag); });
        }
        s.run();
        return order;
    };
    EXPECT_EQ(orderUnder(0), "abcdef");
    bool permuted = false;
    for (uint64_t seed = 1; seed <= 8 && !permuted; ++seed) {
        std::string o = orderUnder(seed);
        // Every event still runs exactly once...
        std::string sorted = o;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, "abcdef");
        // ...possibly in a different order.
        permuted = o != "abcdef";
    }
    EXPECT_TRUE(permuted) << "no seed in 1..8 reordered the tie";
}

TEST(Determinism, FnvReferenceValues)
{
    // FNV-1a 64 known-answer: empty input is the offset basis, and
    // "a" folds to the published constant.
    sim::DeterminismDigest d;
    EXPECT_EQ(d.value(), 14695981039346656037ull);
    d.mix("a");
    EXPECT_EQ(d.value(), 0xaf63dc4c8601ec8cull);

    sim::DeterminismDigest e;
    e.mixByte('a');
    EXPECT_EQ(e.value(), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(e.records(), 1u);
    e.reset();
    EXPECT_EQ(e.value(), sim::DeterminismDigest::kOffset);
    EXPECT_EQ(e.records(), 0u);
}

} // namespace
} // namespace remora
