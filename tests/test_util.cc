/**
 * @file
 * Unit tests for the util layer: CRCs, byte cursors, hashing, status,
 * formatting, and the panic/fatal termination paths.
 */
#include <gtest/gtest.h>

#include "sim/logger.h"
#include "util/bytes.h"
#include "util/crc.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/panic.h"
#include "util/status.h"
#include "util/strings.h"

namespace remora::util {
namespace {

// ----------------------------------------------------------------------
// CRC
// ----------------------------------------------------------------------

TEST(Crc32, MatchesIeeeCheckValue)
{
    // The canonical CRC-32 check: crc("123456789") == 0xCBF43926.
    const char *s = "123456789";
    std::span<const uint8_t> data(reinterpret_cast<const uint8_t *>(s), 9);
    EXPECT_EQ(crc32Ieee(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(crc32Ieee({}), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(i * 7 + 3);
    }
    Crc32 inc;
    // Feed in ragged chunks.
    size_t pos = 0;
    size_t chunks[] = {1, 7, 48, 300, 644};
    for (size_t c : chunks) {
        size_t n = std::min(c, data.size() - pos);
        inc.update(std::span<const uint8_t>(data.data() + pos, n));
        pos += n;
    }
    ASSERT_EQ(pos, data.size());
    EXPECT_EQ(inc.value(), crc32Ieee(data));
}

TEST(Crc32, ResetRestartsState)
{
    Crc32 c;
    c.update(std::vector<uint8_t>{1, 2, 3});
    c.reset();
    EXPECT_EQ(c.value(), crc32Ieee({}));
}

TEST(Crc8Hec, DetectsSingleBitCorruption)
{
    uint8_t header[4] = {0x12, 0x34, 0x56, 0x78};
    uint8_t hec = crc8Hec(header);
    for (int byte = 0; byte < 4; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            uint8_t corrupted[4] = {header[0], header[1], header[2],
                                    header[3]};
            corrupted[byte] ^= static_cast<uint8_t>(1 << bit);
            EXPECT_NE(crc8Hec(corrupted), hec)
                << "flip of byte " << byte << " bit " << bit
                << " went undetected";
        }
    }
}

TEST(Crc8Hec, AppliesItuCoset)
{
    // All-zero header: table CRC is 0, so the coset constant shows.
    uint8_t zeros[4] = {};
    EXPECT_EQ(crc8Hec(zeros), 0x55);
}

// ----------------------------------------------------------------------
// Byte cursors
// ----------------------------------------------------------------------

TEST(Bytes, ScalarRoundTrip)
{
    ByteWriter w;
    w.putU8(0xab);
    w.putU16(0x1234);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefull);
    auto buf = w.take();
    EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

    ByteReader r(buf);
    EXPECT_EQ(r.getU8(), 0xab);
    EXPECT_EQ(r.getU16(), 0x1234);
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, LittleEndianOnTheWire)
{
    ByteWriter w;
    w.putU32(0x11223344);
    auto buf = w.take();
    EXPECT_EQ(buf[0], 0x44);
    EXPECT_EQ(buf[1], 0x33);
    EXPECT_EQ(buf[2], 0x22);
    EXPECT_EQ(buf[3], 0x11);
}

TEST(Bytes, OverflowSetsFlagAndReturnsZero)
{
    std::vector<uint8_t> two = {0xff, 0xff};
    ByteReader r(two);
    EXPECT_EQ(r.getU32(), 0u);
    EXPECT_FALSE(r.ok());
    // Further reads stay zero and harmless.
    EXPECT_EQ(r.getU8(), 0u);
    EXPECT_EQ(r.getU64(), 0u);
}

TEST(Bytes, StringRoundTripWithPadding)
{
    for (const std::string &s :
         {std::string(""), std::string("a"), std::string("abcd"),
          std::string("hello world"), std::string(300, 'x')}) {
        ByteWriter w;
        w.putString(s);
        EXPECT_EQ(w.size() % 4, 0u) << "XDR padding violated for len "
                                    << s.size();
        auto buf = w.take();
        ByteReader r(buf);
        EXPECT_EQ(r.getString(), s);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.remaining(), 0u);
    }
}

TEST(Bytes, ViewAndSkip)
{
    ByteWriter w;
    w.putBytes(std::vector<uint8_t>{1, 2, 3, 4, 5, 6});
    auto buf = w.take();
    ByteReader r(buf);
    r.skip(2);
    auto view = r.viewBytes(3);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_EQ(view[0], 3);
    EXPECT_EQ(view[2], 5);
    EXPECT_EQ(r.remaining(), 1u);
}

class BytesRoundTrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(BytesRoundTrip, ArbitraryPayloads)
{
    size_t n = GetParam();
    std::vector<uint8_t> payload(n);
    for (size_t i = 0; i < n; ++i) {
        payload[i] = static_cast<uint8_t>(mix64(i) >> 32);
    }
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(n));
    w.putBytes(payload);
    auto buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.getU32(), n);
    std::vector<uint8_t> out(n);
    r.getBytes(out);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(out, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BytesRoundTrip,
                         ::testing::Values(0, 1, 3, 40, 48, 53, 1024, 8192,
                                           65535));

// ----------------------------------------------------------------------
// Hashing
// ----------------------------------------------------------------------

TEST(Hash, Fnv1aKnownValue)
{
    // FNV-1a 64-bit of empty input is the offset basis.
    EXPECT_EQ(fnv1a(std::string_view("")), 0xcbf29ce484222325ull);
    // And it is stable (the cluster-wide hash contract).
    EXPECT_EQ(fnv1a(std::string_view("remora")),
              fnv1a(std::string_view("remora")));
    EXPECT_NE(fnv1a(std::string_view("remora")),
              fnv1a(std::string_view("remorb")));
}

TEST(Hash, SpanAndStringAgree)
{
    std::string s = "segment-name";
    std::span<const uint8_t> bytes(
        reinterpret_cast<const uint8_t *>(s.data()), s.size());
    EXPECT_EQ(fnv1a(bytes), fnv1a(std::string_view(s)));
}

TEST(Hash, Mix64Scatters)
{
    // Adjacent inputs must land far apart (avalanche sanity).
    uint64_t a = mix64(1), b = mix64(2);
    EXPECT_NE(a, b);
    int differing = __builtin_popcountll(a ^ b);
    EXPECT_GT(differing, 16);
}

// ----------------------------------------------------------------------
// Status / Result
// ----------------------------------------------------------------------

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kOk);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s(ErrorCode::kStaleGeneration, "gen 4 != 5");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kStaleGeneration);
    EXPECT_EQ(s.toString(), "stale_generation: gen 4 != 5");
}

TEST(Result, ValueAndTake)
{
    Result<std::string> r(std::string("payload"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "payload");
    EXPECT_EQ(r.take(), "payload");
}

TEST(Result, ErrorPropagates)
{
    Result<int> r{Status(ErrorCode::kNotFound, "nope")};
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Status, EveryCodeHasAName)
{
    for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
        EXPECT_STRNE(errorCodeName(static_cast<ErrorCode>(c)), "unknown");
    }
}

// ----------------------------------------------------------------------
// Formatting
// ----------------------------------------------------------------------

TEST(Strings, FormatDuration)
{
    EXPECT_EQ(formatDuration(500), "500 ns");
    EXPECT_EQ(formatDuration(45000), "45.0 us");
    EXPECT_EQ(formatDuration(2500000), "2.50 ms");
    EXPECT_EQ(formatDuration(3000000000ll), "3.000 s");
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(4096), "4.0 KB");
    EXPECT_EQ(formatBytes(5ull * 1024 * 1024), "5.0 MB");
}

TEST(Strings, FormatCount)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(28860744), "28,860,744");
}

TEST(Strings, TextTableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"longer-name", "22"});
    std::string out = t.render();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Numeric column right-aligns: "22" ends both data lines.
    EXPECT_NE(out.find(" 1\n"), std::string::npos);
    EXPECT_NE(out.find("22\n"), std::string::npos);
}

// ----------------------------------------------------------------------
// JSON parsing
// ----------------------------------------------------------------------

TEST(JsonValue, ParsesEveryValueKind)
{
    auto r = JsonValue::parse(
        R"({"n":null,"t":true,"f":false,"num":-12.5e1,"s":"hi",)"
        R"("a":[1,2,3],"o":{"k":"v"}})");
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const JsonValue &v = r.value();
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.size(), 7u);
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_TRUE(v.find("t")->asBool());
    EXPECT_FALSE(v.find("f")->asBool());
    EXPECT_DOUBLE_EQ(v.find("num")->asNumber(), -125.0);
    EXPECT_EQ(v.find("s")->asString(), "hi");
    ASSERT_TRUE(v.find("a")->isArray());
    ASSERT_EQ(v.find("a")->size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->items()[2].asNumber(), 3.0);
    EXPECT_EQ(v.find("o")->find("k")->asString(), "v");
    EXPECT_EQ(v.find("absent"), nullptr);
    // Document order is preserved for walkers that care.
    EXPECT_EQ(v.members()[0].first, "n");
    EXPECT_EQ(v.members()[6].first, "o");
}

TEST(JsonValue, DecodesEscapes)
{
    auto r = JsonValue::parse(R"("a\"b\\c\n\tAé")");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().asString(), "a\"b\\c\n\tA\xc3\xa9");

    // Surrogate pair: U+1F600 as 😀.
    auto pair = JsonValue::parse(R"("😀")");
    ASSERT_TRUE(pair.ok());
    EXPECT_EQ(pair.value().asString(), "\xf0\x9f\x98\x80");
}

TEST(JsonValue, RejectsMalformedInputWithOffset)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"k\":}", "tru", "1.2.3", "\"unterminated",
          "{\"a\":1} trailing", "[1 2]", "{\"k\" 1}"}) {
        auto r = JsonValue::parse(bad);
        EXPECT_FALSE(r.ok()) << "accepted: " << bad;
        EXPECT_NE(r.status().toString().find("offset"), std::string::npos)
            << r.status().toString();
    }
}

TEST(JsonValue, RoundTripsJsonWriterOutput)
{
    JsonWriter w;
    w.beginObject()
        .kv("name", "bench \"quoted\"")
        .key("values")
        .beginArray()
        .value(1.5)
        .value(true)
        .endArray()
        .endObject();
    auto r = JsonValue::parse(w.str());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().find("name")->asString(), "bench \"quoted\"");
    EXPECT_DOUBLE_EQ(r.value().find("values")->items()[0].asNumber(), 1.5);
    EXPECT_TRUE(r.value().find("values")->items()[1].asBool());
}

// ----------------------------------------------------------------------
// Panic / fatal termination paths
// ----------------------------------------------------------------------

/** A hook that panics: only the reentrancy guard stops the recursion. */
void
reentrantHook()
{
    REMORA_PANIC("hook reentered");
}

TEST(PanicDeathTest, AssertFailurePrintsConditionText)
{
    EXPECT_DEATH(REMORA_ASSERT(2 + 2 == 5),
                 "remora panic: .*test_util.cc.*assertion failed: "
                 "2 \\+ 2 == 5");
}

TEST(PanicDeathTest, PassingAssertIsSilent)
{
    REMORA_ASSERT(2 + 2 == 4);
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(REMORA_PANIC("invariant broken"),
                 "remora panic: .*invariant broken");
}

TEST(PanicDeathTest, FatalExitsWithStatusOne)
{
    // fatal() is a configuration error, not a bug: clean exit(1), no
    // core, but the same message shape on stderr.
    EXPECT_EXIT(REMORA_FATAL("impossible topology"),
                ::testing::ExitedWithCode(1),
                "remora fatal: .*impossible topology");
}

TEST(PanicDeathTest, HookFiresAtMostOnce)
{
    // A hook that itself panics would recurse forever without the
    // single-fire guard; the guarded path prints the inner message once
    // and still aborts.
    EXPECT_DEATH(
        {
            setPanicHook(reentrantHook);
            REMORA_PANIC("outer failure");
        },
        "hook reentered");
}

TEST(PanicDeathTest, LogRingFlushesOnPanic)
{
    // Messages captured at ring level (even below the emit level) must
    // appear in the panic output via the Logger-installed hook.
    EXPECT_DEATH(
        {
            sim::Logger::setRingCapacity(16);
            sim::Logger::setRingLevel(sim::LogLevel::kDebug);
            REMORA_LOG(kDebug, "test", "breadcrumb " << 42);
            REMORA_PANIC("with breadcrumbs");
        },
        "breadcrumb 42");
}

} // namespace
} // namespace remora::util
