/**
 * @file
 * Unit tests for the ATM substrate: cells, AAL5, links with credit
 * flow control, the switch, and host interfaces.
 */
#include <gtest/gtest.h>

#include "net/aal5.h"
#include "net/cell.h"
#include "net/host_interface.h"
#include "net/link.h"
#include "net/network.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "util/hash.h"

namespace remora::net {
namespace {

// ----------------------------------------------------------------------
// Cell
// ----------------------------------------------------------------------

TEST(Cell, EncodeDecodeRoundTrip)
{
    Cell c;
    c.vpi = 0x5a5;
    c.vci = 0xbeef;
    c.pti = 0x3;
    c.clp = true;
    for (size_t i = 0; i < c.payload.size(); ++i) {
        c.payload[i] = static_cast<uint8_t>(i);
    }
    uint8_t wire[Cell::kCellBytes];
    c.encode(wire);
    auto decoded = Cell::decode(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().vpi, c.vpi);
    EXPECT_EQ(decoded.value().vci, c.vci);
    EXPECT_EQ(decoded.value().pti, c.pti);
    EXPECT_EQ(decoded.value().clp, c.clp);
    EXPECT_EQ(decoded.value().payload, c.payload);
}

TEST(Cell, HecCorruptionIsDetected)
{
    Cell c;
    c.vpi = 7;
    c.vci = 9;
    uint8_t wire[Cell::kCellBytes];
    c.encode(wire);
    wire[1] ^= 0x40; // corrupt a header bit
    auto decoded = Cell::decode(wire);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), util::ErrorCode::kMalformed);
}

TEST(Cell, LastOfFrameFlag)
{
    Cell c;
    EXPECT_FALSE(c.lastOfFrame());
    c.setLastOfFrame(true);
    EXPECT_TRUE(c.lastOfFrame());
    c.setLastOfFrame(false);
    EXPECT_FALSE(c.lastOfFrame());
}

class CellFieldSweep
    : public ::testing::TestWithParam<std::tuple<uint16_t, uint16_t, uint8_t>>
{};

TEST_P(CellFieldSweep, AllFieldWidthsSurvive)
{
    auto [vpi, vci, pti] = GetParam();
    Cell c;
    c.vpi = vpi;
    c.vci = vci;
    c.pti = pti;
    uint8_t wire[Cell::kCellBytes];
    c.encode(wire);
    auto d = Cell::decode(wire);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value().vpi, vpi);
    EXPECT_EQ(d.value().vci, vci);
    EXPECT_EQ(d.value().pti, pti);
}

INSTANTIATE_TEST_SUITE_P(
    Fields, CellFieldSweep,
    ::testing::Combine(::testing::Values<uint16_t>(0, 1, 0xfff),
                       ::testing::Values<uint16_t>(0, 255, 0xffff),
                       ::testing::Values<uint8_t>(0, 3, 7)));

// ----------------------------------------------------------------------
// AAL5
// ----------------------------------------------------------------------

class Aal5RoundTrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(Aal5RoundTrip, SegmentsAndReassembles)
{
    size_t n = GetParam();
    std::vector<uint8_t> frame(n);
    for (size_t i = 0; i < n; ++i) {
        frame[i] = static_cast<uint8_t>(util::mix64(i));
    }
    auto cells = aal5Segment(4, 9, frame);
    EXPECT_EQ(cells.size(), aal5CellCount(n));
    for (size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].vpi, 4);
        EXPECT_EQ(cells[i].vci, 9);
        EXPECT_EQ(cells[i].lastOfFrame(), i + 1 == cells.size());
    }
    Aal5Reassembler reasm;
    std::optional<Aal5Reassembler::Frame> out;
    for (const auto &cell : cells) {
        EXPECT_FALSE(out.has_value());
        out = reasm.feed(cell);
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->srcVci, 9);
    EXPECT_EQ(out->payload, frame);
    EXPECT_EQ(reasm.framesOk(), 1u);
    EXPECT_EQ(reasm.crcErrors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Aal5RoundTrip,
                         ::testing::Values(0, 1, 39, 40, 41, 47, 48, 95, 96,
                                           1000, 4096, 8192, 65535));

TEST(Aal5, CorruptPayloadFailsCrc)
{
    std::vector<uint8_t> frame(500, 0x77);
    auto cells = aal5Segment(1, 2, frame);
    cells[3].payload[10] ^= 0x01;
    Aal5Reassembler reasm;
    std::optional<Aal5Reassembler::Frame> out;
    for (const auto &cell : cells) {
        out = reasm.feed(cell);
    }
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(reasm.crcErrors(), 1u);
}

TEST(Aal5, InterleavedSourcesReassembleIndependently)
{
    std::vector<uint8_t> frameA(300, 0xaa);
    std::vector<uint8_t> frameB(200, 0xbb);
    auto cellsA = aal5Segment(1, 10, frameA);
    auto cellsB = aal5Segment(1, 20, frameB);

    Aal5Reassembler reasm;
    std::vector<Aal5Reassembler::Frame> done;
    size_t ia = 0, ib = 0;
    while (ia < cellsA.size() || ib < cellsB.size()) {
        if (ia < cellsA.size()) {
            if (auto f = reasm.feed(cellsA[ia++])) {
                done.push_back(std::move(*f));
            }
        }
        if (ib < cellsB.size()) {
            if (auto f = reasm.feed(cellsB[ib++])) {
                done.push_back(std::move(*f));
            }
        }
    }
    ASSERT_EQ(done.size(), 2u);
    for (const auto &f : done) {
        if (f.srcVci == 10) {
            EXPECT_EQ(f.payload, frameA);
        } else {
            EXPECT_EQ(f.srcVci, 20);
            EXPECT_EQ(f.payload, frameB);
        }
    }
}

TEST(Aal5, CellCountFormula)
{
    EXPECT_EQ(aal5CellCount(0), 1u);   // trailer alone
    EXPECT_EQ(aal5CellCount(40), 1u);  // 40 + 8 = 48
    EXPECT_EQ(aal5CellCount(41), 2u);  // 49 > 48
    EXPECT_EQ(aal5CellCount(4096), (4096u + 8 + 47) / 48);
}

// ----------------------------------------------------------------------
// Link
// ----------------------------------------------------------------------

/** Sink collecting cells with arrival times. */
struct CollectSink : CellSink
{
    std::vector<std::pair<sim::Time, Cell>> arrived;
    sim::Simulator *sim = nullptr;
    bool autoCredit = true;

    void
    acceptCell(const Cell &cell) override
    {
        arrived.emplace_back(sim->now(), cell);
        if (autoCredit && upstream_ != nullptr) {
            upstream_->returnCredit();
        }
    }
};

TEST(Link, SerializesAtBandwidth)
{
    sim::Simulator sim;
    LinkParams p;
    p.bandwidthMbps = 140.0;
    p.propagation = sim::usec(1);
    Link link(sim, p, "test");
    CollectSink sink;
    sink.sim = &sim;
    link.connect(sink);

    Cell c;
    for (int i = 0; i < 3; ++i) {
        c.vci = static_cast<uint16_t>(i);
        link.send(c);
    }
    sim.run();
    ASSERT_EQ(sink.arrived.size(), 3u);
    // Cells arrive one cell-time apart: 53*8/140e6 s ~ 3.03 us.
    sim::Duration cellTime = link.cellTime();
    EXPECT_NEAR(static_cast<double>(cellTime), 53 * 8 / 140e6 * 1e9, 10.0);
    EXPECT_EQ(sink.arrived[0].first, cellTime + sim::usec(1));
    EXPECT_EQ(sink.arrived[1].first - sink.arrived[0].first, cellTime);
    EXPECT_EQ(sink.arrived[2].first - sink.arrived[1].first, cellTime);
    // In-order delivery.
    EXPECT_EQ(sink.arrived[2].second.vci, 2);
}

TEST(Link, CreditExhaustionStallsUntilReturned)
{
    sim::Simulator sim;
    LinkParams p;
    p.credits = 2;
    Link link(sim, p, "test");
    CollectSink sink;
    sink.sim = &sim;
    sink.autoCredit = false; // receiver never drains
    link.connect(sink);

    Cell c;
    for (int i = 0; i < 5; ++i) {
        link.send(c);
    }
    sim.run();
    EXPECT_EQ(sink.arrived.size(), 2u); // only the credit allowance
    EXPECT_EQ(link.queueDepth(), 3u);

    link.returnCredit(3);
    sim.run();
    EXPECT_EQ(sink.arrived.size(), 5u);
    EXPECT_EQ(link.cellsSent(), 5u);
}

TEST(Link, OrderPreservedAcrossCreditStalls)
{
    sim::Simulator sim;
    LinkParams p;
    p.credits = 1;
    Link link(sim, p, "test");
    CollectSink sink;
    sink.sim = &sim;
    link.connect(sink); // autoCredit on: each arrival returns a credit

    for (int i = 0; i < 20; ++i) {
        Cell c;
        c.vci = static_cast<uint16_t>(i);
        link.send(c);
    }
    sim.run();
    ASSERT_EQ(sink.arrived.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(sink.arrived[static_cast<size_t>(i)].second.vci, i);
    }
}

// ----------------------------------------------------------------------
// HostInterface
// ----------------------------------------------------------------------

TEST(HostInterface, RaisesOneInterruptPerBatch)
{
    sim::Simulator sim;
    HostInterfaceParams p;
    HostInterface nic(sim, p, "nic");
    int interrupts = 0;
    nic.setRxInterrupt([&] { ++interrupts; });

    Cell c;
    nic.acceptCell(c);
    nic.acceptCell(c); // second arrival while interrupt pending
    sim.run();
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(nic.rxDepth(), 2u);

    // Drain, then a new arrival raises a fresh interrupt.
    EXPECT_TRUE(nic.popRx().has_value());
    EXPECT_TRUE(nic.popRx().has_value());
    nic.acceptCell(c);
    sim.run();
    EXPECT_EQ(interrupts, 2);
}

TEST(HostInterface, PopReturnsCreditUpstream)
{
    sim::Simulator sim;
    LinkParams lp;
    lp.credits = 1;
    Link link(sim, lp, "up");
    HostInterfaceParams p;
    HostInterface nic(sim, p, "nic");
    link.connect(nic);

    Cell c;
    c.vci = 1;
    link.send(c);
    c.vci = 2;
    link.send(c); // stalls on credit
    sim.run();
    EXPECT_EQ(nic.rxDepth(), 1u);

    auto got = nic.popRx(); // returns the credit
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->vci, 1);
    sim.run();
    EXPECT_EQ(nic.rxDepth(), 1u);
    EXPECT_EQ(nic.popRx()->vci, 2);
}

TEST(HostInterface, TxPassesThroughToLink)
{
    sim::Simulator sim;
    LinkParams lp;
    Link link(sim, lp, "down");
    CollectSink sink;
    sink.sim = &sim;
    link.connect(sink);

    HostInterfaceParams p;
    HostInterface nic(sim, p, "nic");
    nic.attachTxLink(link);
    ASSERT_TRUE(nic.txSpace(3));
    Cell c;
    for (int i = 0; i < 3; ++i) {
        nic.pushTx(c);
    }
    sim.run();
    EXPECT_EQ(sink.arrived.size(), 3u);
    EXPECT_EQ(nic.cellsTx(), 3u);
}

// ----------------------------------------------------------------------
// Switch + Network
// ----------------------------------------------------------------------

TEST(Network, SwitchedClusterRoutesByDestination)
{
    sim::Simulator sim;
    Network net(sim, LinkParams{});
    HostInterfaceParams p;
    HostInterface a(sim, p, "a"), b(sim, p, "b"), c(sim, p, "c");
    net.addHost(1, a);
    net.addHost(2, b);
    net.addHost(3, c);
    net.wireSwitched();

    // a -> c and b -> c; both land only at c, demuxable by source vci.
    Cell cell;
    cell.vpi = 3;
    cell.vci = 1;
    a.pushTx(cell);
    cell.vci = 2;
    b.pushTx(cell);
    sim.run();

    EXPECT_EQ(a.rxDepth(), 0u);
    EXPECT_EQ(b.rxDepth(), 0u);
    ASSERT_EQ(c.rxDepth(), 2u);
    std::set<uint16_t> sources;
    sources.insert(c.popRx()->vci);
    sources.insert(c.popRx()->vci);
    EXPECT_EQ(sources, (std::set<uint16_t>{1, 2}));
    EXPECT_EQ(net.fabric()->cellsForwarded(), 2u);
}

TEST(Network, DirectPairDelivers)
{
    sim::Simulator sim;
    Network net(sim, LinkParams{});
    HostInterfaceParams p;
    HostInterface a(sim, p, "a"), b(sim, p, "b");
    net.addHost(1, a);
    net.addHost(2, b);
    net.wireDirect();

    Cell cell;
    cell.vpi = 2;
    cell.vci = 1;
    a.pushTx(cell);
    sim.run();
    ASSERT_EQ(b.rxDepth(), 1u);
    EXPECT_EQ(b.popRx()->vci, 1);
}

TEST(Network, SwitchedFrameSurvivesReassembly)
{
    sim::Simulator sim;
    Network net(sim, LinkParams{});
    HostInterfaceParams p;
    HostInterface a(sim, p, "a"), b(sim, p, "b"), c(sim, p, "c");
    net.addHost(1, a);
    net.addHost(2, b);
    net.addHost(3, c);
    net.wireSwitched();

    // Two senders stream interleaved frames at the same destination.
    std::vector<uint8_t> frameA(2000, 0x11), frameB(3000, 0x22);
    for (const Cell &cell : aal5Segment(3, 1, frameA)) {
        a.pushTx(cell);
    }
    for (const Cell &cell : aal5Segment(3, 2, frameB)) {
        b.pushTx(cell);
    }
    sim.run();

    // The downlink's credit allowance is smaller than the cell total,
    // so delivery stalls until the host drains — drain and re-run until
    // quiescent (flow control, not loss, is what bounds the burst).
    Aal5Reassembler reasm;
    std::vector<Aal5Reassembler::Frame> frames;
    for (;;) {
        bool progress = false;
        while (auto cell = c.popRx()) {
            progress = true;
            if (auto f = reasm.feed(*cell)) {
                frames.push_back(std::move(*f));
            }
        }
        sim.run();
        if (!progress) {
            break;
        }
    }
    ASSERT_EQ(frames.size(), 2u);
    for (const auto &f : frames) {
        EXPECT_EQ(f.payload, f.srcVci == 1 ? frameA : frameB);
    }
    EXPECT_EQ(reasm.crcErrors(), 0u);
}

} // namespace
} // namespace remora::net
