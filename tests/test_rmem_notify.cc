/**
 * @file
 * Control-transfer mechanism tests: notification channels, signal
 * handlers, select across channels, reader-side read notification,
 * chunked transfers, and engine bookkeeping.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/engine.h"
#include "util/hash.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

rmem::ImportedSegment
makeSegment(rmem::RmemEngine &engine, mem::Process &proc, uint32_t size,
            rmem::NotifyPolicy policy = rmem::NotifyPolicy::kConditional)
{
    mem::Vaddr base = proc.space().allocRegion(size);
    auto h = engine.exportSegment(proc, base, size, rmem::Rights::kAll,
                                  policy, "seg");
    EXPECT_TRUE(h.ok());
    return h.value();
}

TEST(Notification, SignalHandlerStyleDelivery)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096);
    auto *ch = c.engineB.channel(seg.descriptor);
    ASSERT_NE(ch, nullptr);

    std::vector<rmem::Notification> delivered;
    ch->setSignalHandler([&](const rmem::Notification &n) {
        delivered.push_back(n);
    });

    auto w1 = c.engineA.write(seg, 16, {1, 2}, true);
    runToCompletion(c.sim, w1);
    auto w2 = c.engineA.write(seg, 32, {3}, true);
    runToCompletion(c.sim, w2);
    c.sim.run();

    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0].offset, 16u);
    EXPECT_EQ(delivered[1].offset, 32u);
    // Signal-style delivery bypasses the queue.
    EXPECT_FALSE(ch->readable());
    EXPECT_EQ(ch->delivered(), 2u);
}

TEST(Notification, SignalDeliveryChargesControlTransfer)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096);
    c.engineB.channel(seg.descriptor)
        ->setSignalHandler([](const rmem::Notification &) {});
    c.sim.run();
    c.nodeB.cpu().resetAccounting();

    auto w = c.engineA.write(seg, 0, {1}, true);
    runToCompletion(c.sim, w);
    c.sim.run();
    rmem::CostModel costs;
    EXPECT_GE(c.nodeB.cpu().busyIn(sim::CpuCategory::kControlTransfer),
              costs.notifyDispatchCost);
}

TEST(Notification, QueuedDeliveriesPreserveOrder)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg = makeSegment(c.engineB, server, 4096);
    auto *ch = c.engineB.channel(seg.descriptor);

    for (uint8_t i = 0; i < 4; ++i) {
        auto w = c.engineA.write(seg, i * 64u, {i}, true);
        runToCompletion(c.sim, w);
    }
    c.sim.run();

    rmem::Notification n;
    for (uint32_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(ch->tryNext(n));
        EXPECT_EQ(n.offset, i * 64u);
    }
    EXPECT_FALSE(ch->tryNext(n));
}

TEST(Notification, SelectAcrossChannels)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto seg1 = makeSegment(c.engineB, server, 4096);
    auto seg2 = makeSegment(c.engineB, server, 4096);
    auto *ch1 = c.engineB.channel(seg1.descriptor);
    auto *ch2 = c.engineB.channel(seg2.descriptor);

    // Select before anything is readable; a write to seg2 resolves it.
    auto sel = rmem::ChannelSelector::selectAny({ch1, ch2});
    EXPECT_FALSE(sel.done());
    auto w = c.engineA.write(seg2, 0, {9}, true);
    runToCompletion(c.sim, w);
    c.sim.run();
    ASSERT_TRUE(sel.done());
    EXPECT_EQ(sel.result(), 1u);

    // Select with an already-readable channel resolves immediately.
    auto sel2 = rmem::ChannelSelector::selectAny({ch1, ch2});
    ASSERT_TRUE(sel2.done());
    EXPECT_EQ(sel2.result(), 1u);
}

TEST(Notification, ReaderSideNotifyOnReadCompletion)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto remote = makeSegment(c.engineB, server, 4096,
                              rmem::NotifyPolicy::kNever);
    auto local = makeSegment(c.engineA, client, 4096);
    auto *ch = c.engineA.channel(local.descriptor);

    auto waiter = ch->next();
    auto rd = c.engineA.read(remote, 0, local.descriptor, 0, 32,
                             /*notify=*/true);
    auto out = runToCompletion(c.sim, rd);
    ASSERT_TRUE(out.status.ok());
    c.sim.run();
    ASSERT_TRUE(waiter.done());
    rmem::Notification n = waiter.result();
    EXPECT_EQ(n.kind, rmem::NotifyKind::kRead);
    EXPECT_EQ(n.count, 32u);
}

TEST(RmemChunking, LargeReadSpansMultipleFrames)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    uint32_t size = 150000;
    mem::Vaddr base = server.space().allocRegion(size);
    std::vector<uint8_t> content(size);
    for (size_t i = 0; i < content.size(); ++i) {
        content[i] = static_cast<uint8_t>(util::mix64(i) >> 24);
    }
    ASSERT_TRUE(server.space().write(base, content).ok());
    auto remote = c.engineB.exportSegment(server, base, size,
                                          rmem::Rights::kAll,
                                          rmem::NotifyPolicy::kNever, "big");
    ASSERT_TRUE(remote.ok());

    mem::Vaddr lbase = client.space().allocRegion(size);
    auto local = c.engineA.exportSegment(client, lbase, size,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever, "dst");
    ASSERT_TRUE(local.ok());

    auto rd = c.engineA.read(remote.value(), 0, local.value().descriptor, 0,
                             size);
    auto out = runToCompletion(c.sim, rd);
    ASSERT_TRUE(out.status.ok());
    EXPECT_EQ(out.data, content);
    // Deposited locally as well.
    std::vector<uint8_t> deposited(size);
    ASSERT_TRUE(client.space().read(lbase, deposited).ok());
    EXPECT_EQ(deposited, content);
}

TEST(RmemBookkeeping, StatsCountOperations)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Process &client = c.nodeA.spawnProcess("client");
    auto remote = makeSegment(c.engineB, server, 4096);
    auto local = makeSegment(c.engineA, client, 4096);

    auto w = c.engineA.write(remote, 0, {1});
    runToCompletion(c.sim, w);
    auto r = c.engineA.read(remote, 0, local.descriptor, 0, 8);
    runToCompletion(c.sim, r);
    auto cas = c.engineA.cas(remote, 0, 0, 1, local.descriptor, 0);
    runToCompletion(c.sim, cas);
    c.sim.run();

    EXPECT_EQ(c.engineA.stats().writesIssued.value(), 1u);
    EXPECT_EQ(c.engineA.stats().readsIssued.value(), 1u);
    EXPECT_EQ(c.engineA.stats().casIssued.value(), 1u);
    EXPECT_EQ(c.engineB.stats().requestsServed.value(), 3u);
    EXPECT_EQ(c.engineB.stats().naksSent.value(), 0u);
}

TEST(RmemBookkeeping, WireCountsMessagesAndBytes)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto remote = makeSegment(c.engineB, server, 4096);
    uint64_t sentBefore = c.engineA.wire().messagesSent();
    auto w = c.engineA.write(remote, 0, std::vector<uint8_t>(24, 1));
    runToCompletion(c.sim, w);
    c.sim.run();
    EXPECT_EQ(c.engineA.wire().messagesSent(), sentBefore + 1);
    EXPECT_EQ(c.engineB.wire().messagesReceived(), 1u);
    EXPECT_GE(c.engineA.wire().bytesSent(), 24u + 8u);
}

TEST(RmemBookkeeping, DescriptorExhaustionReported)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    util::Status last;
    for (int i = 0; i < 257; ++i) {
        auto h = c.engineB.exportSegment(server, base, 4096,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever, "s");
        last = h.status();
    }
    EXPECT_EQ(last.code(), util::ErrorCode::kResource);
}

TEST(RmemBookkeeping, ExportPinsAndRevokeUnpins)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(2 * mem::kPageBytes);
    auto h = c.engineB.exportSegment(server, base, 2 * mem::kPageBytes,
                                     rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kNever, "pinned");
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(server.space().pageTable().lookup(base)->pinned);
    EXPECT_TRUE(server.space()
                    .pageTable()
                    .lookup(base + mem::kPageBytes)
                    ->pinned);
    ASSERT_TRUE(c.engineB.revokeSegment(h.value().descriptor).ok());
    EXPECT_FALSE(server.space().pageTable().lookup(base)->pinned);
}

TEST(RmemBookkeeping, LocalHandleMatchesExport)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    auto h = makeSegment(c.engineB, server, 8192);
    auto lh = c.engineB.localHandle(h.descriptor);
    ASSERT_TRUE(lh.ok());
    EXPECT_EQ(lh.value().node, 2);
    EXPECT_EQ(lh.value().generation, h.generation);
    EXPECT_EQ(lh.value().size, 8192u);
    EXPECT_FALSE(c.engineB.localHandle(200).ok());
}

} // namespace
} // namespace remora
