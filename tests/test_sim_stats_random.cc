/**
 * @file
 * Unit tests for the statistics framework and the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"
#include "sim/stats.h"

namespace remora::sim {
namespace {

// ----------------------------------------------------------------------
// Stats
// ----------------------------------------------------------------------

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, MomentsAreExact)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        a.sample(x);
    }
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    // Population variance is 4; sample variance = 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, EmptyAndSingleSampleEdgeCases)
{
    Accumulator a;
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    a.sample(3.5);
    EXPECT_EQ(a.mean(), 3.5);
    EXPECT_EQ(a.variance(), 0.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 5); // [0,50) in 5 buckets
    h.sample(-1.0);            // underflow
    h.sample(0.0);             // bucket 0
    h.sample(9.999);           // bucket 0
    h.sample(10.0);            // bucket 1
    h.sample(49.0);            // bucket 4
    h.sample(50.0);            // overflow
    h.sample(1000.0);          // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h(0.0, 1.0, 100);
    for (int i = 0; i < 100; ++i) {
        h.sample(i + 0.5);
    }
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(2.0);
    h.sample(-5.0);
    h.sample(std::nan(""));
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.nanSamples(), 0u);
    EXPECT_EQ(h.observedMin(), 0.0);
    EXPECT_EQ(h.observedMax(), 0.0);
}

TEST(Histogram, NanIsRejectedAndCounted)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(1.5);
    h.sample(std::nan(""));
    EXPECT_EQ(h.total(), 1u); // the NaN never entered a bucket
    EXPECT_EQ(h.nanSamples(), 1u);
    EXPECT_EQ(h.outOfRange(), 0u);
}

TEST(Histogram, OutOfRangeCountsBothTails)
{
    Histogram h(10.0, 1.0, 5); // [10,15)
    h.sample(-2.5);
    h.sample(-1.0);
    h.sample(12.0);
    h.sample(99.0);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.outOfRange(), 3u);
    EXPECT_EQ(h.observedMin(), -2.5);
    EXPECT_EQ(h.observedMax(), 99.0);
    // A quantile landing in the underflow region reports the observed
    // floor, not the bucket range's lower edge.
    EXPECT_EQ(h.quantile(0.0), -2.5);
}

TEST(Histogram, TailQuantilesInterpolateIntoOverflow)
{
    // 90 fast observations in range, 10 slow ones past the top edge:
    // the p99/p100 must keep moving with the escaped tail instead of
    // saturating at the top bucket boundary.
    Histogram h(0.0, 1.0, 10); // [0,10)
    for (int i = 0; i < 90; ++i) {
        h.sample(0.5);
    }
    for (int i = 0; i < 10; ++i) {
        h.sample(15.0);
    }
    // target 99: 9/10 of the way through the overflow region, between
    // the top edge (10) and the observed max (15).
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 14.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
    // With no overflow, q=1.0 clamps to the observed max.
    Histogram g(0.0, 1.0, 10);
    g.sample(3.25);
    EXPECT_DOUBLE_EQ(g.quantile(1.0), 3.25);
}

TEST(StatRegistry, DumpsSortedNameValueLines)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    Accumulator a;
    a.sample(1.0);
    reg.add("zeta.counter", c);
    reg.add("alpha.accum", a);
    std::string dump = reg.dump();
    size_t alphaPos = dump.find("alpha.accum");
    size_t zetaPos = dump.find("zeta.counter 3");
    EXPECT_NE(alphaPos, std::string::npos);
    EXPECT_NE(zetaPos, std::string::npos);
    EXPECT_LT(alphaPos, zetaPos);
}

// ----------------------------------------------------------------------
// Random
// ----------------------------------------------------------------------

TEST(Random, DeterministicAcrossInstances)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.nextU32(), b.nextU32());
    }
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU32() == b.nextU32()) {
            ++same;
        }
    }
    EXPECT_LT(same, 3);
}

class UniformIntBounds : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(UniformIntBounds, StaysInRangeAndCoversIt)
{
    uint32_t bound = GetParam();
    Random rng(99);
    std::vector<bool> seen(bound, false);
    for (int i = 0; i < 2000; ++i) {
        uint32_t v = rng.uniformInt(bound);
        ASSERT_LT(v, bound);
        seen[v] = true;
    }
    if (bound <= 16) {
        for (uint32_t v = 0; v < bound; ++v) {
            EXPECT_TRUE(seen[v]) << "value " << v << " never drawn";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIntBounds,
                         ::testing::Values(1, 2, 3, 7, 16, 1000));

TEST(Random, UniformRangeInclusive)
{
    Random rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.uniformRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo = sawLo || v == -3;
        sawHi = sawHi || v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Random, UniformRealInHalfOpenUnit)
{
    Random rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ExponentialMeanConverges)
{
    Random rng(23);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        double v = rng.exponential(100.0);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / kN, 100.0, 3.0);
}

TEST(Random, BernoulliFrequency)
{
    Random rng(31);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Random, ZipfSkewsTowardLowRanks)
{
    Random rng(41);
    Random::Zipf zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i) {
        size_t r = zipf.sample(rng);
        ASSERT_LT(r, 100u);
        ++counts[r];
    }
    // Rank 0 must dominate rank 50 heavily under s=1.
    EXPECT_GT(counts[0], counts[50] * 10);
    // Monotone-ish head.
    EXPECT_GT(counts[0], counts[5]);
}

TEST(Random, DiscreteFollowsWeights)
{
    Random rng(53);
    Random::Discrete dist({1.0, 0.0, 3.0});
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i) {
        ++counts[dist.sample(rng)];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

} // namespace
} // namespace remora::sim
