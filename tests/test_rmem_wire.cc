/**
 * @file
 * Wire-layer unit tests: framing decisions, malformed-message
 * handling, descriptor-table internals, and the §3.5/§3.6 per-word
 * cost hooks (crypto, byte swap).
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/descriptor.h"
#include "rmem/engine.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

// ----------------------------------------------------------------------
// Framing decisions
// ----------------------------------------------------------------------

TEST(Wire, SmallMessagesTravelAsOneCell)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "s");
    ASSERT_TRUE(seg.ok());
    c.sim.run();

    uint64_t cells0 = c.nodeA.nic().cellsTx();
    auto w = c.engineA.write(seg.value(), 0, std::vector<uint8_t>(40, 1));
    runToCompletion(c.sim, w);
    c.sim.run();
    // 40 bytes + 8-byte header: exactly one cell (the paper's claim).
    EXPECT_EQ(c.nodeA.nic().cellsTx() - cells0, 1u);

    cells0 = c.nodeA.nic().cellsTx();
    auto w2 = c.engineA.write(seg.value(), 0, std::vector<uint8_t>(41, 1));
    runToCompletion(c.sim, w2);
    c.sim.run();
    // 41 bytes spill into an AAL5 frame: 10B header + 41B + trailer.
    EXPECT_EQ(c.nodeA.nic().cellsTx() - cells0, 2u);
}

TEST(Wire, BlockWriteCellCountMatchesAal5)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(16384);
    auto seg = c.engineB.exportSegment(server, base, 16384,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "s");
    ASSERT_TRUE(seg.ok());
    c.sim.run();

    uint64_t cells0 = c.nodeA.nic().cellsTx();
    auto w = c.engineA.write(seg.value(), 0, std::vector<uint8_t>(4096, 1));
    runToCompletion(c.sim, w);
    c.sim.run();
    // Block-write header is 10 bytes; frame = 4106 bytes of payload.
    EXPECT_EQ(c.nodeA.nic().cellsTx() - cells0, net::aal5CellCount(4106));
}

TEST(Wire, MalformedRawCellCountedAndDropped)
{
    TwoNodeCluster c;
    c.sim.run();
    // Inject a raw cell whose payload decodes to an unknown type.
    net::Cell junk;
    junk.vpi = 2;
    junk.vci = 1;
    junk.pti = 0x2 | 0x1; // raw + last
    junk.payload.fill(0x0f);
    c.nodeA.nic().pushTx(junk);
    c.sim.run();
    EXPECT_EQ(c.engineB.wire().decodeErrors(), 1u);
    EXPECT_EQ(c.engineB.wire().messagesReceived(), 0u);
}

// ----------------------------------------------------------------------
// DescriptorTable internals
// ----------------------------------------------------------------------

TEST(DescriptorTable, GenerationSurvivesSlotReuse)
{
    sim::Simulator sim;
    sim::CpuResource cpu(sim, "cpu");
    rmem::CostModel costs;
    rmem::DescriptorTable table(cpu, costs);

    auto first = table.allocate(1, 0x1000, 64, rmem::Rights::kAll,
                                rmem::NotifyPolicy::kNever, "a");
    ASSERT_TRUE(first.ok());
    rmem::Generation g1 = table.get(first.value())->generation;
    ASSERT_TRUE(table.release(first.value()).ok());
    auto second = table.allocate(1, 0x2000, 64, rmem::Rights::kAll,
                                 rmem::NotifyPolicy::kNever, "b");
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value(), first.value()); // first-fit reuse
    EXPECT_NE(table.get(second.value())->generation, g1);
}

TEST(DescriptorTable, ValidateChecksEverySurface)
{
    sim::Simulator sim;
    sim::CpuResource cpu(sim, "cpu");
    rmem::CostModel costs;
    rmem::DescriptorTable table(cpu, costs);
    auto id = table.allocate(1, 0x1000, 100, rmem::Rights::kRead,
                             rmem::NotifyPolicy::kNever, "seg");
    ASSERT_TRUE(id.ok());
    rmem::Generation gen = table.get(id.value())->generation;

    // Happy path.
    EXPECT_TRUE(table.validate(id.value(), gen, 0, 100,
                               rmem::Rights::kRead).ok());
    // Each rejection surface, individually.
    EXPECT_EQ(table.validate(99, gen, 0, 4, rmem::Rights::kRead)
                  .status().code(),
              util::ErrorCode::kBadDescriptor);
    EXPECT_EQ(table.validate(id.value(), gen + 1, 0, 4,
                             rmem::Rights::kRead).status().code(),
              util::ErrorCode::kStaleGeneration);
    EXPECT_EQ(table.validate(id.value(), gen, 0, 4,
                             rmem::Rights::kWrite).status().code(),
              util::ErrorCode::kAccessDenied);
    EXPECT_EQ(table.validate(id.value(), gen, 90, 20,
                             rmem::Rights::kRead).status().code(),
              util::ErrorCode::kOutOfBounds);
    // Offset+count overflow must not wrap past the bound.
    EXPECT_EQ(table.validate(id.value(), gen, 0xffffffffffffffffull, 2,
                             rmem::Rights::kRead).status().code(),
              util::ErrorCode::kOutOfBounds);
}

TEST(DescriptorTable, LiveCountTracksAllocations)
{
    sim::Simulator sim;
    sim::CpuResource cpu(sim, "cpu");
    rmem::CostModel costs;
    rmem::DescriptorTable table(cpu, costs);
    EXPECT_EQ(table.liveCount(), 0u);
    auto a = table.allocate(1, 0, 16, rmem::Rights::kAll,
                            rmem::NotifyPolicy::kNever, "a");
    auto b = table.allocate(1, 0, 16, rmem::Rights::kAll,
                            rmem::NotifyPolicy::kNever, "b");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(table.liveCount(), 2u);
    ASSERT_TRUE(table.release(a.value()).ok());
    EXPECT_EQ(table.liveCount(), 1u);
    EXPECT_FALSE(table.release(a.value()).ok()); // double release
}

// ----------------------------------------------------------------------
// §3.6 heterogeneity: byte-swap cost on the PIO path
// ----------------------------------------------------------------------

TEST(Wire, ByteSwappedPeerPaysPerWordCost)
{
    auto measureWriteUs = [](bool swapped) {
        TwoNodeCluster c;
        if (swapped) {
            // Both kernels treat the other as opposite-byte-order.
            c.engineA.wire().setPeerByteSwapped(2, true);
            c.engineB.wire().setPeerByteSwapped(1, true);
        }
        mem::Process &server = c.nodeB.spawnProcess("server");
        mem::Vaddr base = server.space().allocRegion(4096);
        auto seg = c.engineB.exportSegment(server, base, 4096,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever, "x");
        EXPECT_TRUE(seg.ok());
        c.sim.run();
        sim::Time t0 = c.sim.now();
        auto w = c.engineA.write(seg.value(), 0,
                                 std::vector<uint8_t>(40, 1));
        runToCompletion(c.sim, w);
        c.sim.run();
        return sim::toUsec(c.nodeB.cpu().busyUntil() - t0);
    };

    double plain = measureWriteUs(false);
    double hetero = measureWriteUs(true);
    // A small, bounded surcharge: "straightforward to accommodate".
    EXPECT_GT(hetero, plain);
    EXPECT_LT(hetero, plain * 1.15);
}

TEST(Wire, ByteSwapChargesExactlyPayloadWordsPerFrame)
{
    // Pin the charged duration: the swap bills once per message-payload
    // word on each side of the link — not once per cell-capacity word,
    // which would also bill the AAL5 trailer and tail-cell padding.
    // The flags are one-sided: A swaps on TX when it marks peer 2,
    // B swaps on RX when it marks peer 1 — so each direction can be
    // measured in isolation, keeping the other CPU's timing (and its
    // data-dependent rx-interrupt batching) identical across runs.
    struct Busy
    {
        sim::Duration a;
        sim::Duration b;
    };
    auto run = [](bool swapTx, bool swapRx, uint32_t payloadBytes) {
        TwoNodeCluster c;
        c.engineA.wire().setPeerByteSwapped(2, swapTx);
        c.engineB.wire().setPeerByteSwapped(1, swapRx);
        mem::Process &server = c.nodeB.spawnProcess("server");
        mem::Vaddr base = server.space().allocRegion(8192);
        auto seg = c.engineB.exportSegment(server, base, 8192,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever, "x");
        EXPECT_TRUE(seg.ok());
        c.sim.run();
        auto w = c.engineA.write(seg.value(), 0,
                                 std::vector<uint8_t>(payloadBytes, 1));
        runToCompletion(c.sim, w);
        c.sim.run();
        return Busy{c.nodeA.cpu().totalBusy(), c.nodeB.cpu().totalBusy()};
    };
    rmem::CostModel costs;

    // Raw path: 40B payload + 8B header encode to 48 bytes = 12 words,
    // swapped once on TX and once on RX.
    Busy rawPlain = run(false, false, 40);
    Busy rawSwap = run(true, true, 40);
    EXPECT_EQ((rawSwap.a + rawSwap.b) - (rawPlain.a + rawPlain.b),
              2 * 12 * costs.byteSwapWordCost);

    // Block path: 4096B + 10B header = 4106 bytes = 1027 payload words
    // per direction — NOT the 12 * aal5CellCount(4106) words of cell
    // capacity the frame occupies (trailer and pad are order-neutral).
    sim::Duration wordsCharged = 1027 * costs.byteSwapWordCost;
    ASSERT_LT(wordsCharged,
              12 * static_cast<sim::Duration>(net::aal5CellCount(4106)) *
                  costs.byteSwapWordCost);
    Busy blockPlain = run(false, false, 4096);
    EXPECT_EQ(run(true, false, 4096).a - blockPlain.a, wordsCharged);
    EXPECT_EQ(run(false, true, 4096).b - blockPlain.b, wordsCharged);
}

TEST(Wire, ByteSwapFlagIsPerPeer)
{
    TwoNodeCluster c;
    c.engineA.wire().setPeerByteSwapped(2, true);
    EXPECT_TRUE(c.engineA.wire().peerByteSwapped(2));
    EXPECT_FALSE(c.engineA.wire().peerByteSwapped(3));
    c.engineA.wire().setPeerByteSwapped(2, false);
    EXPECT_FALSE(c.engineA.wire().peerByteSwapped(2));
}

} // namespace
} // namespace remora
