/**
 * @file
 * Calibration pins: the emergent Table 2 / Table 3 numbers and the
 * Figure 2 / Figure 3 comparative shapes must stay within tolerance of
 * the paper's measurements. If a cost-model change moves them, these
 * tests catch it before the benches drift.
 *
 * Tolerances are ±10% on calibrated latencies (the benches print the
 * exact deviations) and strict inequalities on the shapes, which are
 * the substance of the paper's argument.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/server.h"
#include "names/clerk.h"
#include "rpc/hybrid1.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

constexpr double kTolerance = 0.10;

#define EXPECT_WITHIN(measured, paper)                                        \
    EXPECT_NEAR((measured), (paper), (paper) * kTolerance)

// ----------------------------------------------------------------------
// Table 2
// ----------------------------------------------------------------------

struct RmemHarness
{
    TwoNodeCluster cluster;
    mem::Process &server;
    mem::Process &client;
    rmem::ImportedSegment remote;
    rmem::SegmentId localSeg = 0;

    RmemHarness()
        : server(cluster.nodeB.spawnProcess("server")),
          client(cluster.nodeA.spawnProcess("client"))
    {
        mem::Vaddr base = server.space().allocRegion(1 << 18);
        auto h = cluster.engineB.exportSegment(
            server, base, 1 << 18, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "cal");
        EXPECT_TRUE(h.ok());
        remote = h.value();
        mem::Vaddr lbase = client.space().allocRegion(1 << 16);
        auto l = cluster.engineA.exportSegment(
            client, lbase, 1 << 16, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "cal.local");
        EXPECT_TRUE(l.ok());
        localSeg = l.value().descriptor;
        cluster.sim.run();
    }
};

TEST(CalibrationTable2, SmallWriteLatency)
{
    RmemHarness h;
    sim::Time t0 = h.cluster.sim.now();
    auto t = h.cluster.engineA.write(h.remote, 0,
                                     std::vector<uint8_t>(40, 1));
    runToCompletion(h.cluster.sim, t);
    h.cluster.sim.run();
    double us = sim::toUsec(h.cluster.nodeB.cpu().busyUntil() - t0);
    EXPECT_WITHIN(us, 30.0);
}

TEST(CalibrationTable2, SmallReadLatency)
{
    RmemHarness h;
    sim::Time t0 = h.cluster.sim.now();
    auto t = h.cluster.engineA.read(h.remote, 0, h.localSeg, 0, 40);
    runToCompletion(h.cluster.sim, t);
    double us = sim::toUsec(h.cluster.sim.now() - t0);
    EXPECT_WITHIN(us, 45.0);
}

TEST(CalibrationTable2, CasLatency)
{
    RmemHarness h;
    sim::Time t0 = h.cluster.sim.now();
    auto t = h.cluster.engineA.cas(h.remote, 0, 0, 1, h.localSeg, 0);
    runToCompletion(h.cluster.sim, t);
    double us = sim::toUsec(h.cluster.sim.now() - t0);
    EXPECT_WITHIN(us, 38.0);
}

TEST(CalibrationTable2, LatencyOrderingReadCasWrite)
{
    // The paper's explanation: reads need a cell each way; CAS is
    // slightly faster ("fewer memory accesses"); writes are one-way.
    RmemHarness h;

    sim::Time t0 = h.cluster.sim.now();
    auto r = h.cluster.engineA.read(h.remote, 0, h.localSeg, 0, 40);
    runToCompletion(h.cluster.sim, r);
    double readUs = sim::toUsec(h.cluster.sim.now() - t0);
    h.cluster.sim.run();

    t0 = h.cluster.sim.now();
    auto c = h.cluster.engineA.cas(h.remote, 0, 0, 1, h.localSeg, 0);
    runToCompletion(h.cluster.sim, c);
    double casUs = sim::toUsec(h.cluster.sim.now() - t0);
    h.cluster.sim.run();

    t0 = h.cluster.sim.now();
    auto w = h.cluster.engineA.write(h.remote, 0,
                                     std::vector<uint8_t>(40, 1));
    runToCompletion(h.cluster.sim, w);
    h.cluster.sim.run();
    double writeUs = sim::toUsec(h.cluster.nodeB.cpu().busyUntil() - t0);

    EXPECT_GT(readUs, casUs);
    EXPECT_GT(casUs, writeUs);
}

TEST(CalibrationTable2, BlockWriteThroughput)
{
    RmemHarness h;
    auto streamer = [](RmemHarness *hh) -> sim::Task<void> {
        for (int i = 0; i < 100; ++i) {
            auto s = co_await hh->cluster.engineA.write(
                hh->remote, static_cast<uint32_t>((i % 32) * 4096),
                std::vector<uint8_t>(4096, 2));
            EXPECT_TRUE(s.ok());
        }
    };
    sim::Time t0 = h.cluster.sim.now();
    auto t = streamer(&h);
    runToCompletion(h.cluster.sim, t);
    h.cluster.sim.run();
    double secs = static_cast<double>(h.cluster.nodeB.cpu().busyUntil() -
                                      t0) /
                  1e9;
    double mbps = 100.0 * 4096 * 8 / secs / 1e6;
    EXPECT_WITHIN(mbps, 35.4);
}

TEST(CalibrationTable2, NotificationOverhead)
{
    RmemHarness h;
    auto *ch = h.cluster.engineB.channel(h.remote.descriptor);
    ASSERT_NE(ch, nullptr);

    // Plain write baseline.
    sim::Time t0 = h.cluster.sim.now();
    auto w1 = h.cluster.engineA.write(h.remote, 0,
                                      std::vector<uint8_t>(40, 1));
    runToCompletion(h.cluster.sim, w1);
    h.cluster.sim.run();
    double plainUs = sim::toUsec(h.cluster.nodeB.cpu().busyUntil() - t0);

    // Notified write to a blocked reader.
    auto waiter = ch->next();
    t0 = h.cluster.sim.now();
    auto w2 = h.cluster.engineA.write(h.remote, 0,
                                      std::vector<uint8_t>(40, 1), true);
    runToCompletion(h.cluster.sim, w2);
    while (!waiter.done() && h.cluster.sim.step()) {
    }
    ASSERT_TRUE(waiter.done());
    double notifiedUs = sim::toUsec(h.cluster.sim.now() - t0);
    EXPECT_WITHIN(notifiedUs - plainUs, 260.0);
}

// ----------------------------------------------------------------------
// Table 3
// ----------------------------------------------------------------------

struct NamesHarness
{
    TwoNodeCluster cluster;
    names::NameClerk clerkA;
    names::NameClerk clerkB;
    mem::Process &user;

    NamesHarness()
        : clerkA(cluster.engineA), clerkB(cluster.engineB),
          user(cluster.nodeA.spawnProcess("user"))
    {
        clerkA.addPeer(2);
        clerkB.addPeer(1);
        cluster.sim.run();
    }
};

TEST(CalibrationTable3, ExportImportRevokeLatencies)
{
    NamesHarness h;
    auto &sim = h.cluster.sim;

    mem::Vaddr base = h.user.space().allocRegion(8192);
    sim::Time t0 = sim.now();
    auto exp = h.clerkA.exportByName(&h.user, base, 8192, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kConditional,
                                     "cal.seg");
    ASSERT_TRUE(runToCompletion(sim, exp).ok());
    EXPECT_WITHIN(sim::toUsec(sim.now() - t0), 665.0);

    t0 = sim.now();
    auto imp1 = h.clerkB.import("cal.seg", 1);
    ASSERT_TRUE(runToCompletion(sim, imp1).ok());
    double uncachedUs = sim::toUsec(sim.now() - t0);
    EXPECT_WITHIN(uncachedUs, 264.0);

    t0 = sim.now();
    auto imp2 = h.clerkB.import("cal.seg", 1);
    ASSERT_TRUE(runToCompletion(sim, imp2).ok());
    double cachedUs = sim::toUsec(sim.now() - t0);
    EXPECT_WITHIN(cachedUs, 196.0);

    // "The difference ... is comparable to the cost of a remote read."
    EXPECT_GT(uncachedUs - cachedUs, 40.0);
    EXPECT_LT(uncachedUs - cachedUs, 90.0);

    t0 = sim.now();
    auto ct = h.clerkB.import("cal.seg", 1, true,
                              names::ProbePolicy::kControlOnly);
    ASSERT_TRUE(runToCompletion(sim, ct).ok());
    EXPECT_WITHIN(sim::toUsec(sim.now() - t0), 524.0);

    t0 = sim.now();
    auto rev = h.clerkA.revoke("cal.seg");
    ASSERT_TRUE(runToCompletion(sim, rev).ok());
    EXPECT_WITHIN(sim::toUsec(sim.now() - t0), 307.0);
}

// ----------------------------------------------------------------------
// Figures 2/3: the comparative shapes
// ----------------------------------------------------------------------

struct DfsHarness
{
    TwoNodeCluster cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::DxBackend dx;
    dfs::FileHandle file;

    DfsHarness()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, &hyClient)
    {
        auto f = store.createFile(store.root(), "f", 16384);
        EXPECT_TRUE(f.ok());
        file = f.value();
        server.warmCaches();
        server.start();
        cluster.sim.run();
    }

    template <typename Fn>
    double
    latencyUs(Fn &&fn)
    {
        sim::Time t0 = cluster.sim.now();
        fn();
        double us = sim::toUsec(cluster.sim.now() - t0);
        cluster.sim.run();
        return us;
    }
};

TEST(CalibrationFigure2, DxBeatsHyAndGapNarrowsWithSize)
{
    DfsHarness h;

    auto getattrDx = h.latencyUs([&] {
        auto t = h.dx.getattr(h.file);
        runToCompletion(h.cluster.sim, t);
    });
    auto getattrHy = h.latencyUs([&] {
        auto t = h.hy.getattr(h.file);
        runToCompletion(h.cluster.sim, t);
    });
    auto read8kDx = h.latencyUs([&] {
        auto t = h.dx.read(h.file, 0, 8192);
        runToCompletion(h.cluster.sim, t);
    });
    auto read8kHy = h.latencyUs([&] {
        auto t = h.hy.read(h.file, 0, 8192);
        runToCompletion(h.cluster.sim, t);
    });

    EXPECT_LT(getattrDx, getattrHy);
    EXPECT_LT(read8kDx, read8kHy);
    // Amortization: the HY/DX ratio shrinks as the transfer grows.
    EXPECT_GT(getattrHy / getattrDx, read8kHy / read8kDx);
    // Metadata ops are many times faster under DX.
    EXPECT_GT(getattrHy / getattrDx, 4.0);
}

TEST(CalibrationFigure3, DxImposesLessThanHalfServerLoad)
{
    DfsHarness h;
    auto &cpu = h.cluster.nodeB.cpu();

    auto loadOf = [&](auto &&fn) {
        cpu.resetAccounting();
        fn();
        h.cluster.sim.run();
        return cpu.totalBusy();
    };

    // Mimic the mix-weighted average with the dominant metadata ops.
    sim::Duration hyLoad = loadOf([&] {
        auto t = h.hy.getattr(h.file);
        runToCompletion(h.cluster.sim, t);
    });
    sim::Duration dxLoad = loadOf([&] {
        auto t = h.dx.getattr(h.file);
        runToCompletion(h.cluster.sim, t);
    });
    EXPECT_LT(static_cast<double>(dxLoad),
              0.5 * static_cast<double>(hyLoad));

    // DX must impose zero control-transfer and procedure time.
    cpu.resetAccounting();
    auto t = h.dx.read(h.file, 0, 8192);
    runToCompletion(h.cluster.sim, t);
    h.cluster.sim.run();
    EXPECT_EQ(cpu.busyIn(sim::CpuCategory::kControlTransfer), 0);
    EXPECT_EQ(cpu.busyIn(sim::CpuCategory::kProcExec), 0);
    EXPECT_EQ(cpu.busyIn(sim::CpuCategory::kProcInvoke), 0);
}

} // namespace
} // namespace remora
