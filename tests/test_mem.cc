/**
 * @file
 * Unit tests for the memory substrate: physical memory, page tables,
 * address spaces, processes, and nodes.
 */
#include <gtest/gtest.h>

#include "mem/address_space.h"
#include "mem/node.h"
#include "mem/page_table.h"
#include "mem/phys_mem.h"
#include "sim/simulator.h"

namespace remora::mem {
namespace {

// ----------------------------------------------------------------------
// PhysMem
// ----------------------------------------------------------------------

TEST(PhysMem, AllocatesZeroedFrames)
{
    PhysMem pm(8);
    Frame f = pm.allocFrame();
    auto data = pm.frameData(f);
    ASSERT_EQ(data.size(), kPageBytes);
    for (uint8_t b : data) {
        ASSERT_EQ(b, 0);
    }
    EXPECT_EQ(pm.framesInUse(), 1u);
}

TEST(PhysMem, FreedFramesAreReusedZeroed)
{
    PhysMem pm(4);
    Frame f = pm.allocFrame();
    pm.frameData(f)[0] = 0xff;
    pm.freeFrame(f);
    EXPECT_EQ(pm.framesInUse(), 0u);
    Frame g = pm.allocFrame();
    EXPECT_EQ(g, f);
    EXPECT_EQ(pm.frameData(g)[0], 0);
}

// ----------------------------------------------------------------------
// PageTable
// ----------------------------------------------------------------------

TEST(PageTable, MapLookupUnmap)
{
    PageTable pt;
    EXPECT_EQ(pt.lookup(0x5000), nullptr);
    pt.map(0x5000, 7, true);
    Pte *pte = pt.lookup(0x5123); // anywhere within the page
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->frame, 7u);
    EXPECT_TRUE(pte->writable);
    EXPECT_FALSE(pte->pinned);
    EXPECT_EQ(pt.mappedPages(), 1u);
    pt.unmap(0x5000);
    EXPECT_EQ(pt.lookup(0x5000), nullptr);
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST(PageTable, DistinguishesNeighboringPages)
{
    PageTable pt;
    pt.map(0x4000, 1, true);
    pt.map(0x5000, 2, false);
    EXPECT_EQ(pt.lookup(0x4fff)->frame, 1u);
    EXPECT_EQ(pt.lookup(0x5000)->frame, 2u);
    EXPECT_FALSE(pt.lookup(0x5000)->writable);
}

TEST(PageTable, SparseHighAddresses)
{
    PageTable pt;
    Vaddr high = (PageTable::kVaLimit - kPageBytes);
    pt.map(high, 3, true);
    ASSERT_NE(pt.lookup(high), nullptr);
    EXPECT_EQ(pt.lookup(high)->frame, 3u);
    EXPECT_EQ(pt.lookup(high - kPageBytes), nullptr);
    // Out-of-range lookups are nullptr, not UB.
    EXPECT_EQ(pt.lookup(PageTable::kVaLimit), nullptr);
}

// ----------------------------------------------------------------------
// AddressSpace
// ----------------------------------------------------------------------

TEST(AddressSpace, RegionAllocIsPageAlignedAndMapped)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(100);
    EXPECT_EQ(r % kPageBytes, 0u);
    EXPECT_TRUE(as.isMapped(r, 100));
    EXPECT_TRUE(as.isMapped(r, kPageBytes)); // rounded up
    EXPECT_FALSE(as.isMapped(r, kPageBytes + 1));
}

TEST(AddressSpace, ReadWriteAcrossPageBoundary)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(3 * kPageBytes);
    std::vector<uint8_t> data(kPageBytes + 100);
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(i * 13);
    }
    Vaddr start = r + kPageBytes - 50; // straddles two boundaries
    ASSERT_TRUE(as.write(start, data).ok());
    std::vector<uint8_t> out(data.size());
    ASSERT_TRUE(as.read(start, out).ok());
    EXPECT_EQ(out, data);
}

TEST(AddressSpace, UnmappedAccessFaults)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(kPageBytes);
    std::vector<uint8_t> buf(16);
    EXPECT_EQ(as.read(r + 2 * kPageBytes, buf).code(),
              util::ErrorCode::kOutOfBounds);
    EXPECT_EQ(as.write(r + 2 * kPageBytes, buf).code(),
              util::ErrorCode::kOutOfBounds);
    // A range that starts mapped but runs off the end also faults.
    std::vector<uint8_t> big(2 * kPageBytes);
    EXPECT_FALSE(as.write(r, big).ok());
}

TEST(AddressSpace, ReadOnlyRegionRejectsWrites)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(kPageBytes, /*writable=*/false);
    std::vector<uint8_t> buf(4, 1);
    EXPECT_EQ(as.write(r, buf).code(), util::ErrorCode::kAccessDenied);
    EXPECT_TRUE(as.read(r, buf).ok());
}

TEST(AddressSpace, WordAccessRequiresAlignment)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(kPageBytes);
    ASSERT_TRUE(as.writeWord(r + 8, 0x12345678).ok());
    EXPECT_EQ(as.readWord(r + 8).value(), 0x12345678u);
    EXPECT_FALSE(as.writeWord(r + 6, 1).ok());
    EXPECT_FALSE(as.readWord(r + 1).ok());
}

TEST(AddressSpace, WordIsLittleEndianInMemory)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(kPageBytes);
    ASSERT_TRUE(as.writeWord(r, 0x11223344).ok());
    std::vector<uint8_t> bytes(4);
    ASSERT_TRUE(as.read(r, bytes).ok());
    EXPECT_EQ(bytes[0], 0x44);
    EXPECT_EQ(bytes[3], 0x11);
}

TEST(AddressSpace, PinUnpinSetsPteBits)
{
    PhysMem pm;
    AddressSpace as(pm);
    Vaddr r = as.allocRegion(3 * kPageBytes);
    ASSERT_TRUE(as.pin(r + 100, 2 * kPageBytes).ok());
    EXPECT_TRUE(as.pageTable().lookup(r)->pinned);
    EXPECT_TRUE(as.pageTable().lookup(r + 2 * kPageBytes)->pinned);
    ASSERT_TRUE(as.unpin(r + 100, 2 * kPageBytes).ok());
    EXPECT_FALSE(as.pageTable().lookup(r)->pinned);
    // Pinning unmapped memory fails.
    EXPECT_FALSE(as.pin(r + 10 * kPageBytes, 8).ok());
}

TEST(AddressSpace, FreeRegionReleasesFrames)
{
    PhysMem pm;
    AddressSpace as(pm);
    size_t before = pm.framesInUse();
    Vaddr r = as.allocRegion(4 * kPageBytes);
    EXPECT_EQ(pm.framesInUse(), before + 4);
    as.freeRegion(r, 4 * kPageBytes);
    EXPECT_EQ(pm.framesInUse(), before);
    EXPECT_FALSE(as.isMapped(r, 1));
}

TEST(AddressSpace, DestructorReturnsAllFrames)
{
    PhysMem pm;
    {
        AddressSpace as(pm);
        as.allocRegion(8 * kPageBytes);
        as.allocRegion(2 * kPageBytes);
        EXPECT_EQ(pm.framesInUse(), 10u);
    }
    EXPECT_EQ(pm.framesInUse(), 0u);
}

// ----------------------------------------------------------------------
// Node / Process
// ----------------------------------------------------------------------

TEST(Node, SpawnsProcessesWithUniquePids)
{
    sim::Simulator sim;
    Node node(sim, 1, "ws");
    Process &a = node.spawnProcess("a");
    Process &b = node.spawnProcess("b");
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_EQ(node.findProcess(a.pid()), &a);
    EXPECT_EQ(node.findProcess(b.pid()), &b);
    EXPECT_EQ(node.findProcess(9999), nullptr);
}

TEST(Node, ProcessesShareNodeMemoryPool)
{
    sim::Simulator sim;
    Node node(sim, 1, "ws", NodeParams{.memFrames = 32, .nic = {}});
    Process &a = node.spawnProcess("a");
    Process &b = node.spawnProcess("b");
    a.space().allocRegion(4 * kPageBytes);
    b.space().allocRegion(4 * kPageBytes);
    EXPECT_EQ(node.memory().framesInUse(), 8u);
}

TEST(Node, ProcessSpacesAreIsolated)
{
    sim::Simulator sim;
    Node node(sim, 1, "ws");
    Process &a = node.spawnProcess("a");
    Process &b = node.spawnProcess("b");
    Vaddr ra = a.space().allocRegion(kPageBytes);
    Vaddr rb = b.space().allocRegion(kPageBytes);
    // Same virtual addresses, different physical frames.
    EXPECT_EQ(ra, rb);
    ASSERT_TRUE(a.space().writeWord(ra, 0xAAAA).ok());
    ASSERT_TRUE(b.space().writeWord(rb, 0xBBBB).ok());
    EXPECT_EQ(a.space().readWord(ra).value(), 0xAAAAu);
    EXPECT_EQ(b.space().readWord(rb).value(), 0xBBBBu);
}

} // namespace
} // namespace remora::mem
