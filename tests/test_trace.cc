/**
 * @file
 * Workload and traffic-classifier tests (Tables 1a/1b machinery).
 */
#include <gtest/gtest.h>

#include "trace/classifier.h"
#include "trace/mix.h"
#include "trace/workload.h"

namespace remora::trace {
namespace {

// ----------------------------------------------------------------------
// Mix
// ----------------------------------------------------------------------

TEST(Mix, PublishedTotalsMatchThePaper)
{
    EXPECT_EQ(paperMixTotal(), 28860744u);
    EXPECT_EQ(paperMix()[0].count, 8960671u); // GetAttr
    EXPECT_EQ(paperMix()[static_cast<size_t>(OpClass::kWrite)].count,
              109712u);
}

TEST(Mix, PercentagesSumToHundred)
{
    double total = 0;
    for (const MixRow &row : paperMix()) {
        total += paperMixPercent(row.cls);
    }
    EXPECT_NEAR(total, 100.0, 1e-9);
    // GetAttr and Lookup together are ~62% — the paper's key skew.
    EXPECT_NEAR(paperMixPercent(OpClass::kGetAttr) +
                    paperMixPercent(OpClass::kLookup),
                61.7, 0.5);
}

TEST(Mix, EveryClassHasAName)
{
    for (const MixRow &row : paperMix()) {
        EXPECT_STRNE(opClassName(row.cls), "Unknown");
    }
}

// ----------------------------------------------------------------------
// Classifier
// ----------------------------------------------------------------------

TEST(Classifier, NullPingIsPureControl)
{
    Traffic t = classifyOp(OpClass::kNullPing, {});
    EXPECT_EQ(t.dataBytes, 0u);
    EXPECT_GT(t.controlBytes, 0u);
}

TEST(Classifier, ControlGrowsSubLinearlyWithPayload)
{
    OpShape small;
    small.payloadBytes = 512;
    OpShape large;
    large.payloadBytes = 8192;
    Traffic ts = classifyOp(OpClass::kRead, small);
    Traffic tl = classifyOp(OpClass::kRead, large);
    // Data scales with the payload; control stays fixed.
    EXPECT_EQ(tl.dataBytes - ts.dataBytes, 8192u - 512u);
    EXPECT_EQ(tl.controlBytes, ts.controlBytes);
    EXPECT_LT(tl.ratio(), ts.ratio());
}

TEST(Classifier, FileHandleCountsAsControl)
{
    // GetAttr carries one fh; its control must include those 32 bytes.
    Traffic t = classifyOp(OpClass::kGetAttr, {});
    EXPECT_GE(t.controlBytes, 32u + 8u); // fh + both xids at minimum
}

TEST(Classifier, WriteIsTheLeastControlHeavyBulkOp)
{
    OpShape w;
    w.payloadBytes = 6000;
    double writeRatio = classifyOp(OpClass::kWrite, w).ratio();
    double getattrRatio = classifyOp(OpClass::kGetAttr, {}).ratio();
    EXPECT_LT(writeRatio, 0.05);
    EXPECT_GT(getattrRatio, 0.5);
}

TEST(Classifier, TrafficAccumulates)
{
    Traffic a{100, 400};
    Traffic b{50, 100};
    a += b;
    EXPECT_EQ(a.controlBytes, 150u);
    EXPECT_EQ(a.dataBytes, 500u);
    EXPECT_DOUBLE_EQ(a.ratio(), 0.3);
}

// ----------------------------------------------------------------------
// WorkloadGen
// ----------------------------------------------------------------------

TEST(Workload, DeterministicForAGivenSeed)
{
    WorkloadGen g1(7), g2(7);
    for (int i = 0; i < 1000; ++i) {
        Op a = g1.next();
        Op b = g2.next();
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.fileIdx, b.fileIdx);
    }
}

TEST(Workload, DrawsFollowTheMix)
{
    WorkloadGen gen(11);
    TrafficSummary sum = gen.replay(200000);
    EXPECT_EQ(sum.totalOps, 200000u);
    for (const MixRow &row : paperMix()) {
        double expect = paperMixPercent(row.cls);
        double got = 100.0 *
                     static_cast<double>(
                         sum.opCount[static_cast<size_t>(row.cls)]) /
                     200000.0;
        EXPECT_NEAR(got, expect, 0.5)
            << "class " << opClassName(row.cls);
    }
}

TEST(Workload, SizesComeFromTheConfiguredTables)
{
    WorkloadGen gen(13);
    for (int i = 0; i < 20000; ++i) {
        Op op = gen.next();
        if (op.cls == OpClass::kRead) {
            bool known = false;
            for (auto [bytes, w] : gen.sizes().readSizes) {
                (void)w;
                known = known || op.bytes == bytes;
            }
            EXPECT_TRUE(known) << "read size " << op.bytes;
        } else if (op.cls == OpClass::kWrite) {
            EXPECT_TRUE(op.bytes == 4096 || op.bytes == 8192);
        }
    }
}

TEST(Workload, PaperPopulationCarriesExactCounts)
{
    WorkloadGen gen(17);
    TrafficSummary sum = gen.replayPaperPopulation();
    EXPECT_EQ(sum.totalOps, paperMixTotal());
    for (const MixRow &row : paperMix()) {
        EXPECT_EQ(sum.opCount[static_cast<size_t>(row.cls)], row.count);
    }
    Traffic total = sum.total();
    // The calibrated reference points (EXPERIMENTS.md).
    EXPECT_NEAR(total.ratio(), 0.14, 0.015);
    EXPECT_NEAR(sum.perClass[static_cast<size_t>(OpClass::kWrite)].ratio(),
                0.01, 0.005);
}

TEST(Workload, BuildPaperFileSetShape)
{
    dfs::FileStore store;
    auto files = buildPaperFileSet(store, 30, 3);
    EXPECT_EQ(files.size(), 30u);
    for (auto fh : files) {
        auto attr = store.getattr(fh);
        ASSERT_TRUE(attr.ok());
        EXPECT_EQ(attr.value().type, dfs::FileType::kRegular);
        EXPECT_GT(attr.value().size, 0u);
    }
    // The canonical directories exist.
    EXPECT_TRUE(store.lookup(store.root(), "fonts").ok());
    EXPECT_TRUE(store.lookup(store.root(), "src").ok());
    EXPECT_TRUE(store.lookup(store.root(), "usr").ok());
}

TEST(Workload, ZipfSkewPrefersHotFiles)
{
    WorkloadGen gen(19, {}, 64);
    std::vector<int> hits(64, 0);
    for (int i = 0; i < 50000; ++i) {
        ++hits[gen.next().fileIdx];
    }
    EXPECT_GT(hits[0], hits[32] * 4);
}

} // namespace
} // namespace remora::trace
