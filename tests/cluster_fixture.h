/**
 * @file
 * Shared test fixtures: canned clusters and coroutine helpers.
 */
#pragma once

#include <gtest/gtest.h>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace remora::test {

/** Two directly-linked nodes, as on the paper's measurement testbed. */
struct TwoNodeCluster
{
    sim::Simulator sim;
    net::Network network;
    mem::Node nodeA;
    mem::Node nodeB;
    rmem::RmemEngine engineA;
    rmem::RmemEngine engineB;

    explicit TwoNodeCluster(const rmem::CostModel &costs = {})
        : network(sim, net::LinkParams{}),
          nodeA(sim, 1, "nodeA"), nodeB(sim, 2, "nodeB"),
          engineA(nodeA, costs), engineB(nodeB, costs)
    {
        network.addHost(1, nodeA.nic());
        network.addHost(2, nodeB.nic());
        network.wireDirect();
    }

    ~TwoNodeCluster()
    {
        // "Queue drained" must mean "all done", not "blocked forever":
        // a park at quiescence waited for a wakeup that never came.
        // With live events still pending the run merely stopped early,
        // so parked coroutines are legitimate.
        if (sim.livePendingEvents() == 0) {
            EXPECT_EQ(sim.blockedTaskCount(), 0u)
                << "coroutine(s) blocked forever at cluster teardown";
        }
    }
};

/** N nodes on a switch. */
struct SwitchedCluster
{
    sim::Simulator sim;
    net::Network network;
    std::vector<std::unique_ptr<mem::Node>> nodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> engines;

    explicit SwitchedCluster(size_t n, const rmem::CostModel &costs = {})
        : network(sim, net::LinkParams{})
    {
        for (size_t i = 0; i < n; ++i) {
            auto id = static_cast<net::NodeId>(i + 1);
            nodes.push_back(std::make_unique<mem::Node>(
                sim, id, "node" + std::to_string(id)));
            engines.push_back(
                std::make_unique<rmem::RmemEngine>(*nodes.back(), costs));
            network.addHost(id, nodes.back()->nic());
        }
        network.wireSwitched();
    }

    ~SwitchedCluster()
    {
        if (sim.livePendingEvents() == 0) {
            EXPECT_EQ(sim.blockedTaskCount(), 0u)
                << "coroutine(s) blocked forever at cluster teardown";
        }
    }
};

/** Drive the simulator until @p task completes (or the queue drains). */
template <typename T>
T
runToCompletion(sim::Simulator &sim, sim::Task<T> &task)
{
    while (!task.done() && sim.step()) {
    }
    EXPECT_TRUE(task.done()) << "task did not complete; event queue drained";
    return task.result();
}

/** void specialization driver. */
inline void
runToCompletion(sim::Simulator &sim, sim::Task<void> &task)
{
    while (!task.done() && sim.step()) {
    }
    EXPECT_TRUE(task.done()) << "task did not complete; event queue drained";
    task.result();
}

} // namespace remora::test
