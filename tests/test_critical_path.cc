/**
 * @file
 * Critical-path analyzer and bench regression comparator tests.
 *
 * The analyzer is exercised two ways: on hand-built synthetic event
 * DAGs where every slice's attribution is known in advance, and on a
 * real traced READ across the two-node fixture, where the cross-node
 * span linkage (op-id propagation through the wire) is what is under
 * test. The bench_diff section drives the comparator on synthetic
 * reports, including the injected-regression case the check.sh gate is
 * contractually required to catch.
 */
#include <gtest/gtest.h>

#include <optional>

#include "cluster_fixture.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"
#include "obs/critical_path.h"
#include "obs/trace.h"
#include "rmem/engine.h"

namespace remora {
namespace {

using test::TwoNodeCluster;
using test::runToCompletion;

/** Recorder is process-wide: reset around every test in this binary. */
class CriticalPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::TraceRecorder::instance().disable();
        obs::TraceRecorder::instance().clear();
    }

    void
    TearDown() override
    {
        obs::TraceRecorder::instance().disable();
        obs::TraceRecorder::instance().clear();
    }
};

// ----------------------------------------------------------------------
// Synthetic DAGs: attribution known in advance
// ----------------------------------------------------------------------

obs::TraceEvent
asyncBeginEv(uint64_t id, sim::Time ts, const char *node, const char *name,
             uint64_t parent = 0)
{
    obs::TraceEvent ev;
    ev.phase = obs::TracePhase::kAsyncBegin;
    ev.ts = ts;
    ev.id = id;
    ev.op = id;
    ev.parent = parent;
    ev.node = node;
    ev.comp = "test";
    ev.name = name;
    return ev;
}

obs::TraceEvent
asyncEndEv(uint64_t id, sim::Time ts, const char *node, const char *name)
{
    obs::TraceEvent ev;
    ev.phase = obs::TracePhase::kAsyncEnd;
    ev.ts = ts;
    ev.id = id;
    ev.op = id;
    ev.node = node;
    ev.comp = "test";
    ev.name = name;
    return ev;
}

obs::TraceEvent
spanEv(uint64_t op, sim::Time ts, sim::Duration dur, const char *node)
{
    obs::TraceEvent ev;
    ev.phase = obs::TracePhase::kSpan;
    ev.ts = ts;
    ev.dur = dur;
    ev.op = op;
    ev.node = node;
    ev.comp = "test";
    ev.name = "work";
    return ev;
}

obs::TraceEvent
arrivalEv(uint64_t op, sim::Time ts, const char *node)
{
    obs::TraceEvent ev;
    ev.phase = obs::TracePhase::kInstant;
    ev.ts = ts;
    ev.op = op;
    ev.node = node;
    ev.comp = "net";
    ev.name = std::string(obs::kCellArrivalEvent);
    return ev;
}

TEST_F(CriticalPathTest, SyntheticDagAttributesEveryPhase)
{
    // Window [0,100] on initiator A with one hop to B:
    //   [ 0,20)  span on A                -> software A      20
    //   [20,30)  gap up to the arrival    -> wire B          10
    //   [30,35)  interrupt latency (5)    -> controller B     5
    //   [35,40)  gap after the interrupt  -> queueing B       5
    //   [40,70)  span on B                -> software B      30
    //   [70,100) tail gap, no arrival     -> queueing A      30
    std::vector<obs::TraceEvent> events = {
        asyncBeginEv(1, 0, "A", "op"),
        spanEv(1, 0, 20, "A"),
        arrivalEv(1, 30, "B"),
        spanEv(1, 40, 30, "B"),
        asyncEndEv(1, 100, "A", "op"),
    };
    obs::CriticalPathParams params;
    params.interruptLatency = 5;
    auto paths = obs::CriticalPathAnalyzer(params).analyze(events);

    ASSERT_EQ(paths.size(), 1u);
    const obs::OpCriticalPath &p = paths[0];
    EXPECT_EQ(p.id, 1u);
    EXPECT_EQ(p.name, "op");
    EXPECT_EQ(p.initiator, "A");
    EXPECT_EQ(p.latency(), 100);
    EXPECT_EQ(p.totals.software, 50);
    EXPECT_EQ(p.totals.wire, 10);
    EXPECT_EQ(p.totals.controller, 5);
    EXPECT_EQ(p.totals.queueing, 35);
    EXPECT_EQ(p.totals.total(), p.latency());

    // Per-node attribution.
    ASSERT_TRUE(p.perNode.count("A"));
    ASSERT_TRUE(p.perNode.count("B"));
    EXPECT_EQ(p.perNode.at("A").software, 20);
    EXPECT_EQ(p.perNode.at("A").queueing, 30);
    EXPECT_EQ(p.perNode.at("B").software, 30);
    EXPECT_EQ(p.perNode.at("B").wire, 10);
    EXPECT_EQ(p.perNode.at("B").controller, 5);
    EXPECT_EQ(p.perNode.at("B").queueing, 5);

    // The slice timeline is gap-free over the window.
    sim::Duration covered = 0;
    for (const auto &s : p.slices) {
        covered += s.duration();
    }
    EXPECT_EQ(covered, p.latency());
}

TEST_F(CriticalPathTest, OverlappingSpansCountOnce)
{
    std::vector<obs::TraceEvent> events = {
        asyncBeginEv(1, 0, "A", "op"),
        spanEv(1, 0, 50, "A"),
        spanEv(1, 30, 30, "A"), // overlaps [30,50), extends to 60
        asyncEndEv(1, 60, "A", "op"),
    };
    auto paths = obs::CriticalPathAnalyzer().analyze(events);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].totals.software, 60);
    EXPECT_EQ(paths[0].totals.queueing, 0);
    EXPECT_EQ(paths[0].totals.total(), 60);
}

TEST_F(CriticalPathTest, GapWithNoArrivalIsQueueingOnNextNode)
{
    // The op waits 40 units before its only span runs on B: a pure
    // dispatch delay, charged as queueing where the work eventually ran.
    std::vector<obs::TraceEvent> events = {
        asyncBeginEv(1, 0, "A", "op"),
        spanEv(1, 40, 10, "B"),
        asyncEndEv(1, 50, "A", "op"),
    };
    auto paths = obs::CriticalPathAnalyzer().analyze(events);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].totals.queueing, 40);
    EXPECT_EQ(paths[0].totals.software, 10);
    EXPECT_EQ(paths[0].perNode.at("B").queueing, 40);
}

TEST_F(CriticalPathTest, IncompleteOpsAreSkipped)
{
    std::vector<obs::TraceEvent> events = {
        asyncBeginEv(1, 0, "A", "op"),
        spanEv(1, 0, 20, "A"),
        // no asyncEnd: still in flight at export
        asyncBeginEv(2, 10, "A", "done"),
        asyncEndEv(2, 30, "A", "done"),
    };
    auto paths = obs::CriticalPathAnalyzer().analyze(events);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].id, 2u);
}

TEST_F(CriticalPathTest, SummarizeGroupsByName)
{
    std::vector<obs::TraceEvent> events = {
        asyncBeginEv(1, 0, "A", "op"),   asyncEndEv(1, 40, "A", "op"),
        asyncBeginEv(2, 100, "A", "op"), asyncEndEv(2, 160, "A", "op"),
        asyncBeginEv(3, 200, "A", "other"),
        asyncEndEv(3, 210, "A", "other"),
    };
    auto paths = obs::CriticalPathAnalyzer().analyze(events);
    auto summary = obs::CriticalPathAnalyzer::summarize(paths);
    ASSERT_EQ(summary.size(), 2u);
    EXPECT_EQ(summary.at("op").count, 2u);
    EXPECT_EQ(summary.at("op").minLatency, 40);
    EXPECT_EQ(summary.at("op").maxLatency, 60);
    EXPECT_EQ(summary.at("other").count, 1u);

    std::string text = obs::CriticalPathAnalyzer::renderText(paths);
    EXPECT_NE(text.find("op"), std::string::npos);
    EXPECT_NE(text.find("other"), std::string::npos);
    std::string json = obs::CriticalPathAnalyzer::toJson(paths);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

// ----------------------------------------------------------------------
// Cross-node linkage: a real traced READ on the two-node fixture
// ----------------------------------------------------------------------

TEST_F(CriticalPathTest, TracedReadLinksAcrossNodes)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096, rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "data");
    ASSERT_TRUE(seg.ok());
    mem::Process &client = c.nodeA.spawnProcess("client");
    mem::Vaddr lbase = client.space().allocRegion(4096);
    auto local = c.engineA.exportSegment(client, lbase, 4096,
                                         rmem::Rights::kAll,
                                         rmem::NotifyPolicy::kNever, "local");
    ASSERT_TRUE(local.ok());
    c.sim.run(); // drain export costs before tracing

    auto &rec = obs::TraceRecorder::instance();
    rec.enable(c.sim);

    // An umbrella op makes the read's asyncBegin record a parent link
    // (the read task starts eagerly, inside the scope).
    uint64_t umbrella = rec.newAsyncId();
    rec.asyncBegin(umbrella, "nodeA", "test", "umbrella");
    std::optional<obs::OpScope> scope;
    scope.emplace(umbrella);
    auto task = c.engineA.read(seg.value(), 0,
                               local.value().descriptor, 0, 40);
    scope.reset();
    rmem::ReadOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok());
    rec.asyncEnd(umbrella, "nodeA", "test", "umbrella");
    rec.disable();

    auto paths = obs::CriticalPathAnalyzer().analyze(rec.events());
    const obs::OpCriticalPath *read = nullptr;
    for (const auto &p : paths) {
        if (p.name == "read") {
            ASSERT_EQ(read, nullptr) << "expected exactly one read op";
            read = &p;
        }
    }
    ASSERT_NE(read, nullptr);

    // Parent link to the umbrella op, established at eager start.
    EXPECT_EQ(read->parent, umbrella);
    EXPECT_EQ(read->initiator, "nodeA");

    // The DAG crosses nodes: both appear in the per-node breakdown, and
    // the server side did real attributed work.
    ASSERT_TRUE(read->perNode.count("nodeA"));
    ASSERT_TRUE(read->perNode.count("nodeB"));
    EXPECT_GT(read->perNode.at("nodeB").software, 0);

    // Both directions were on the wire, both NICs interrupted.
    EXPECT_GT(read->totals.wire, 0);
    EXPECT_GT(read->totals.controller, 0);

    // The attributed timeline is exhaustive: phases sum to latency.
    EXPECT_EQ(read->totals.total(), read->latency());

    // The arrival anchors themselves carried the op id on both nodes.
    int arrivals[2] = {0, 0};
    for (const auto &ev : rec.events()) {
        if (ev.phase == obs::TracePhase::kInstant &&
            ev.name == obs::kCellArrivalEvent && ev.op == read->id) {
            ++arrivals[ev.node == "nodeA" ? 0 : 1];
        }
    }
    EXPECT_EQ(arrivals[0], 1); // response landing at the client
    EXPECT_EQ(arrivals[1], 1); // request landing at the server
}

// ----------------------------------------------------------------------
// bench_diff: the regression comparator
// ----------------------------------------------------------------------

/** A minimal report with one latency metric and one check. */
std::string
reportJson(double latencyUs, bool checkOk = true)
{
    obs::BenchReport r("synthetic");
    r.metric("op.latency_us", latencyUs, "us");
    r.metric("op.throughput_mbps", 120.0, "Mb/s");
    r.check("shape_holds", checkOk);
    return r.toJson();
}

TEST(BenchDiff, WithinTolerancePasses)
{
    auto result = obs::diffReportText(reportJson(100.0), reportJson(103.0));
    EXPECT_TRUE(result.pass()) << result.render();
    ASSERT_EQ(result.entries.size(), 2u);
    EXPECT_NEAR(result.entries[0].deltaPct, 3.0, 1e-9);
}

TEST(BenchDiff, TwentyPercentRegressionFails)
{
    // The contract of scripts/check.sh --bench: a 20% latency
    // regression must fail at the default 5% tolerance.
    auto result = obs::diffReportText(reportJson(100.0), reportJson(120.0));
    EXPECT_FALSE(result.pass());
    std::string rendered = result.render();
    EXPECT_NE(rendered.find("op.latency_us"), std::string::npos);
    EXPECT_NE(rendered.find("+20.0%"), std::string::npos);
}

TEST(BenchDiff, ImprovementsAlsoFailTwoSided)
{
    // A surprise 20% speedup wants the baseline refreshed, not ignored.
    auto result = obs::diffReportText(reportJson(100.0), reportJson(80.0));
    EXPECT_FALSE(result.pass());
}

TEST(BenchDiff, PerMetricToleranceOverrides)
{
    obs::BenchDiffOptions opts;
    opts.tolerances["op.latency_us"] = 25.0;
    auto result =
        obs::diffReportText(reportJson(100.0), reportJson(120.0), opts);
    EXPECT_TRUE(result.pass()) << result.render();
}

TEST(BenchDiff, DirectedMetricPassesImprovementFailsRegression)
{
    // latency is "lower is better": a 20% drop is a win the gate must
    // let through, while the same move up stays a failure.
    obs::BenchDiffOptions opts;
    opts.directions["op.latency_us"] = -1;
    auto faster = obs::diffReportText(reportJson(100.0), reportJson(80.0),
                                      opts);
    EXPECT_TRUE(faster.pass()) << faster.render();
    auto slower = obs::diffReportText(reportJson(100.0), reportJson(120.0),
                                      opts);
    EXPECT_FALSE(slower.pass());
    ASSERT_EQ(slower.entries.size(), 2u);
    EXPECT_EQ(slower.entries[0].direction, -1);
    EXPECT_NE(slower.render().find("lower is better"), std::string::npos);
}

TEST(BenchDiff, HigherIsBetterFailsOnlyOnDrop)
{
    // Throughput marked "up": the two-sided rule would flag a 20% gain;
    // the direction hint keeps it green and reserves failure for drops.
    std::string base = reportJson(100.0);
    obs::BenchReport up("synthetic");
    up.metric("op.latency_us", 100.0, "us");
    up.metric("op.throughput_mbps", 144.0, "Mb/s");
    up.check("shape_holds", true);
    obs::BenchReport down("synthetic");
    down.metric("op.latency_us", 100.0, "us");
    down.metric("op.throughput_mbps", 96.0, "Mb/s");
    down.check("shape_holds", true);

    obs::BenchDiffOptions opts;
    opts.directions["op.throughput_mbps"] = 1;
    EXPECT_TRUE(obs::diffReportText(base, up.toJson(), opts).pass());
    EXPECT_FALSE(obs::diffReportText(base, down.toJson(), opts).pass());

    // Within-tolerance drop still passes: direction narrows which side
    // fails, it does not tighten the tolerance itself.
    obs::BenchReport dip("synthetic");
    dip.metric("op.latency_us", 100.0, "us");
    dip.metric("op.throughput_mbps", 116.0, "Mb/s");
    dip.check("shape_holds", true);
    EXPECT_TRUE(obs::diffReportText(base, dip.toJson(), opts).pass());
}

TEST(BenchDiff, MissingMetricIsStructuralFailure)
{
    obs::BenchReport cand("synthetic");
    cand.metric("op.throughput_mbps", 120.0, "Mb/s");
    cand.check("shape_holds", true);
    auto result = obs::diffReportText(reportJson(100.0), cand.toJson());
    EXPECT_FALSE(result.pass());
    ASSERT_FALSE(result.errors.empty());
    EXPECT_NE(result.errors[0].find("op.latency_us"), std::string::npos);
}

TEST(BenchDiff, FlippedCheckIsStructuralFailure)
{
    auto result = obs::diffReportText(reportJson(100.0),
                                      reportJson(100.0, false));
    EXPECT_FALSE(result.pass());
}

TEST(BenchDiff, NewCandidateMetricsAreNotedNotFailed)
{
    obs::BenchReport cand("synthetic");
    cand.metric("op.latency_us", 100.0, "us");
    cand.metric("op.throughput_mbps", 120.0, "Mb/s");
    cand.metric("op.p999_us", 180.0, "us"); // new in the candidate
    cand.check("shape_holds", true);
    auto result = obs::diffReportText(reportJson(100.0), cand.toJson());
    EXPECT_TRUE(result.pass()) << result.render();
    ASSERT_EQ(result.fresh.size(), 1u);
    EXPECT_EQ(result.fresh[0], "op.p999_us");
}

TEST(BenchDiff, UnparsableReportFails)
{
    auto result = obs::diffReportText("{not json", reportJson(100.0));
    EXPECT_FALSE(result.pass());
    ASSERT_FALSE(result.errors.empty());
    EXPECT_NE(result.errors[0].find("unparsable"), std::string::npos);
}

TEST(BenchDiff, BenchNameMismatchFails)
{
    obs::BenchReport other("different");
    other.metric("op.latency_us", 100.0, "us");
    auto result = obs::diffReportText(reportJson(100.0), other.toJson());
    EXPECT_FALSE(result.pass());
}

} // namespace
} // namespace remora
