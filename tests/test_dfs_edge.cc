/**
 * @file
 * File-service edge cases: unaligned and boundary-crossing reads,
 * readdir byte budgets, zero-length transfers, EOF behaviour, and
 * cache-area consistency after mixed-path writes.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/server.h"
#include "net/fault.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

struct EdgeFixture
{
    TwoNodeCluster cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::DxBackend dx;
    dfs::FileHandle file; // 20000 bytes: three blocks, short tail
    dfs::FileHandle dir;

    EdgeFixture()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, &hyClient)
    {
        auto f = store.createFile(store.root(), "edge.bin", 20000);
        EXPECT_TRUE(f.ok());
        file = f.value();
        auto d = store.mkdir(store.root(), "d");
        EXPECT_TRUE(d.ok());
        dir = d.value();
        for (int i = 0; i < 30; ++i) {
            EXPECT_TRUE(
                store.createFile(d.value(), "e" + std::to_string(i), 1)
                    .ok());
        }
        server.warmCaches();
        server.start();
        cluster.sim.run();
    }
};

TEST(DfsEdge, UnalignedReadWithinBlockDx)
{
    EdgeFixture f;
    auto t = f.dx.read(f.file, 100, 500);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), f.store.read(f.file, 100, 500).value());
}

TEST(DfsEdge, ReadCrossingBlockBoundaryDx)
{
    EdgeFixture f;
    // 8192-byte blocks: [8000, 8600) spans blocks 0 and 1.
    auto t = f.dx.read(f.file, 8000, 600);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), f.store.read(f.file, 8000, 600).value());
}

TEST(DfsEdge, ReadIntoShortTailBlock)
{
    EdgeFixture f;
    // The file is 20000 bytes; block 2 holds only 3616 valid bytes.
    auto t = f.dx.read(f.file, 16384, 8192);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().size(), 20000u - 16384u);
    EXPECT_EQ(got.value(), f.store.read(f.file, 16384, 8192).value());
}

TEST(DfsEdge, ReadEntirelyPastEofReturnsEmpty)
{
    EdgeFixture f;
    for (dfs::FileServiceBackend *b :
         std::initializer_list<dfs::FileServiceBackend *>{&f.dx, &f.hy}) {
        auto t = b->read(f.file, 40000, 1000);
        auto got = runToCompletion(f.cluster.sim, t);
        ASSERT_TRUE(got.ok()) << b->name();
        EXPECT_TRUE(got.value().empty()) << b->name();
    }
}

TEST(DfsEdge, ZeroByteReadSucceeds)
{
    EdgeFixture f;
    auto t = f.dx.read(f.file, 0, 0);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().empty());
}

TEST(DfsEdge, ReaddirRespectsByteBudget)
{
    EdgeFixture f;
    auto all = f.hy.readdir(f.dir, 4096);
    auto allGot = runToCompletion(f.cluster.sim, all);
    ASSERT_TRUE(allGot.ok());
    size_t total = allGot.value().size();
    EXPECT_EQ(total, 32u); // 30 files + "." + ".."

    auto some = f.hy.readdir(f.dir, 128);
    auto someGot = runToCompletion(f.cluster.sim, some);
    ASSERT_TRUE(someGot.ok());
    EXPECT_GT(someGot.value().size(), 0u);
    EXPECT_LT(someGot.value().size(), total);

    // DX honours the same budget against its packed-entry area.
    auto dxSome = f.dx.readdir(f.dir, 128);
    auto dxGot = runToCompletion(f.cluster.sim, dxSome);
    ASSERT_TRUE(dxGot.ok());
    EXPECT_EQ(dxGot.value().size(), someGot.value().size());
}

TEST(DfsEdge, UnalignedDxWriteUsesDataThenTagOrder)
{
    EdgeFixture f;
    // A write at a non-zero block offset takes the two-write path
    // (data first, tag last) and must still land correctly.
    std::vector<uint8_t> data(256, 0x9d);
    auto w = f.dx.write(f.file, 1000, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());
    f.cluster.sim.run();
    f.server.scavengeDirtyBlocks();
    auto back = f.store.read(f.file, 1000, 256);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
}

TEST(DfsEdge, StatfsReflectsGrowth)
{
    EdgeFixture f;
    auto before = f.hy.statfs();
    auto b = runToCompletion(f.cluster.sim, before);
    ASSERT_TRUE(b.ok());

    auto w = f.hy.write(f.file, 30000, std::vector<uint8_t>(8192, 1));
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());
    f.cluster.sim.run();

    auto after = f.hy.statfs();
    auto a = runToCompletion(f.cluster.sim, after);
    ASSERT_TRUE(a.ok());
    EXPECT_LT(a.value().freeBytes, b.value().freeBytes);
}

TEST(DfsEdge, GrowingWriteThenDxReadOfNewBlock)
{
    EdgeFixture f;
    // Extend the file through the server path; its new block must be
    // cached and DX-readable without a miss.
    std::vector<uint8_t> tail(4096, 0xee);
    auto w = f.hy.write(f.file, 24576, tail); // block 3, beyond old EOF
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());
    f.cluster.sim.run();

    uint64_t misses = f.dx.misses();
    auto r = f.dx.read(f.file, 24576, 4096);
    auto got = runToCompletion(f.cluster.sim, r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), tail);
    EXPECT_EQ(f.dx.misses(), misses);
}

// ----------------------------------------------------------------------
// Injected outage: the read window degrades instead of failing
// ----------------------------------------------------------------------

struct DfsFaultFixture
{
    TwoNodeCluster cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    dfs::DxBackend dx;
    dfs::FileHandle file;

    DfsFaultFixture()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, nullptr)
    {
        auto f = store.createFile(store.root(), "data.bin", 20000);
        EXPECT_TRUE(f.ok());
        file = f.value();
        server.warmCaches();
        server.start();
        cluster.sim.run();
    }
};

TEST(DfsFault, PartialBlockWritePreservesBlockValidRange)
{
    // Lossless regression for the bug the 5%-drop workload exposed: a
    // DX write covering only a prefix of block 1 must not shrink the
    // block's valid range. Before the header-merge fix it stamped
    // validBytes = 4096 over a fully-valid block, and the next read
    // mistook the cut for end-of-file, returning 12288 of 20000 bytes.
    DfsFaultFixture f;
    std::vector<uint8_t> patch(4096, 0x5a);
    auto w = f.dx.write(f.file, 8192, patch);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());
    f.cluster.sim.run();
    f.server.scavengeDirtyBlocks();

    auto t = f.dx.read(f.file, 0, 20000);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    ASSERT_EQ(got.value().size(), 20000u);
    EXPECT_EQ(got.value(), f.store.read(f.file, 0, 20000).value());
    EXPECT_EQ(std::vector<uint8_t>(got.value().begin() + 8192,
                                   got.value().begin() + 8192 + 4096),
              patch);
    EXPECT_EQ(f.dx.misses(), 0u);
}

TEST(DfsFault, ReadShrinksItsWindowAcrossAnOutage)
{
    DfsFaultFixture f;
    sim::Time t0 = f.cluster.sim.now();
    net::FaultPlan plan;
    plan.pauses.push_back({t0, t0 + sim::msec(250)});
    f.cluster.network.installFaults(plan);

    // kDxReadTimeout is 100 ms: the first window (3 blocks) times out
    // inside the outage, halves twice, and the window-1 attempt issued
    // at ~200 ms is delivered when the outage lifts at 250 ms — well
    // inside its own deadline. The read completes; it never fails.
    auto t = f.dx.read(f.file, 0, 20000);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    EXPECT_EQ(got.value(), f.store.read(f.file, 0, 20000).value());
    EXPECT_GE(f.dx.windowShrinks(), 2u);
    EXPECT_EQ(f.dx.misses(), 0u);
    f.cluster.sim.run();
    EXPECT_EQ(f.cluster.sim.blockedTaskCount(), 0u);
}

TEST(DfsFault, FivePercentDropLosesNothingUserVisible)
{
    // The acceptance workload: the full DFS stack over a link dropping
    // 5% of all cells. With the reliable wire underneath, loss shows
    // up as latency, never as a failed or corrupt user-visible op.
    DfsFaultFixture f;
    f.cluster.engineA.wire().enableReliability();
    f.cluster.engineB.wire().enableReliability();
    net::FaultPlan plan;
    plan.seed = 23;
    plan.dropRate = 0.05;
    f.cluster.network.installFaults(plan);

    std::vector<uint8_t> fresh(8192);
    for (size_t j = 0; j < fresh.size(); ++j) {
        fresh[j] = static_cast<uint8_t>(j * 7 + 3);
    }
    auto w = f.dx.write(f.file, 4096, fresh);
    auto ws = runToCompletion(f.cluster.sim, w);
    ASSERT_TRUE(ws.ok()) << ws.toString();
    f.cluster.sim.run(); // let retransmit-delayed deposits settle
    f.server.scavengeDirtyBlocks();

    auto t = f.dx.read(f.file, 0, 20000);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok()) << got.status().toString();
    ASSERT_EQ(got.value().size(), 20000u);
    EXPECT_EQ(got.value(), f.store.read(f.file, 0, 20000).value());
    EXPECT_EQ(std::vector<uint8_t>(got.value().begin() + 4096,
                                   got.value().begin() + 4096 + 8192),
              fresh);

    EXPECT_GT(f.cluster.network.totalFaultDrops(), 0u);
    EXPECT_GT(f.cluster.engineA.wire().retransmits() +
                  f.cluster.engineB.wire().retransmits(),
              0u);
    f.cluster.sim.run();
    EXPECT_EQ(f.cluster.sim.blockedTaskCount(), 0u);
}

TEST(DfsEdge, LongNameLookupFallsBackGracefully)
{
    EdgeFixture f;
    // Names longer than the name-record field cannot live in the DX
    // area; the lookup must still succeed via the fallback.
    std::string longName(100, 'n');
    auto fh = f.store.createFile(f.store.root(), longName, 64);
    ASSERT_TRUE(fh.ok());
    f.server.cacheName(f.store.root(), longName); // silently skipped
    auto t = f.dx.lookup(f.store.root(), longName);
    auto got = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().fh, fh.value());
    EXPECT_GE(f.dx.misses(), 1u);
}

} // namespace
} // namespace remora
