/**
 * @file
 * The tier-1 lint gate: run remora-lint over the real tree (src/ and
 * tests/) and fail if any error-severity finding appears. This is the
 * same pass `scripts/check.sh --lint` runs, wired into ctest so a
 * hazardous coroutine signature or a wall-clock call fails the build
 * even when nobody remembers to run the script.
 *
 * REMORA_SOURCE_DIR is injected by tests/CMakeLists.txt so the gate
 * works from any build directory.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace remora::lint {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(LintClean, TreeHasNoErrorSeverityFindings)
{
    const fs::path root(REMORA_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(root / "src"))
        << "REMORA_SOURCE_DIR does not point at the repo: " << root;

    size_t scanned = 0;
    std::vector<std::string> errors;
    for (const char *top : {"src", "tests"}) {
        for (const auto &entry :
             fs::recursive_directory_iterator(root / top)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            std::string rel =
                fs::relative(entry.path(), root).generic_string();
            if (!shouldLint(rel)) {
                continue;
            }
            ++scanned;
            auto findings =
                lintSource(rel, readFile(entry.path()), optionsForPath(rel));
            for (const Finding &f : findings) {
                if (ruleIsError(f.rule)) {
                    errors.push_back(f.format());
                }
            }
        }
    }

    // Guard against silently scanning nothing (wrong root, renamed
    // directories): the tree is far larger than this floor.
    EXPECT_GT(scanned, 100u);

    std::ostringstream report;
    for (const std::string &e : errors) {
        report << "  " << e << "\n";
    }
    EXPECT_TRUE(errors.empty())
        << errors.size() << " lint error(s) in the tree:\n"
        << report.str();
}

} // namespace
} // namespace remora::lint
