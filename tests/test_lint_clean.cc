/**
 * @file
 * The tier-1 lint gate: run remora-lint over the real tree (src/,
 * tests/, tools/, bench/) and fail if any error-severity finding
 * appears, then feed every src/ file to the include-layer checker and
 * fail on upward edges or cycles. This is the same pass
 * `scripts/check.sh --lint` runs, wired into ctest so a hazardous
 * coroutine signature, a lock held across the wrong suspension, or an
 * include edge that climbs the layer diagram fails the build even when
 * nobody remembers to run the script.
 *
 * REMORA_SOURCE_DIR is injected by tests/CMakeLists.txt so the gate
 * works from any build directory.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "layers.h"
#include "lint.h"

namespace remora::lint {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** All lintable files under the repo's scanned top-level directories. */
std::vector<std::pair<std::string, std::string>>
treeFiles(const fs::path &root)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const char *top : {"src", "tests", "tools", "bench"}) {
        if (!fs::exists(root / top)) {
            continue;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(root / top)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            std::string rel =
                fs::relative(entry.path(), root).generic_string();
            if (!shouldLint(rel)) {
                continue;
            }
            out.emplace_back(rel, readFile(entry.path()));
        }
    }
    return out;
}

TEST(LintClean, TreeHasNoErrorSeverityFindings)
{
    const fs::path root(REMORA_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(root / "src"))
        << "REMORA_SOURCE_DIR does not point at the repo: " << root;

    size_t scanned = 0;
    std::vector<std::string> errors;
    for (const auto &[rel, text] : treeFiles(root)) {
        ++scanned;
        auto findings = lintSource(rel, text, optionsForPath(rel));
        for (const Finding &f : findings) {
            if (ruleIsError(f.rule)) {
                errors.push_back(f.format());
            }
        }
    }

    // Guard against silently scanning nothing (wrong root, renamed
    // directories): the tree is far larger than this floor.
    EXPECT_GT(scanned, 100u);

    std::ostringstream report;
    for (const std::string &e : errors) {
        report << "  " << e << "\n";
    }
    EXPECT_TRUE(errors.empty())
        << errors.size() << " lint error(s) in the tree:\n"
        << report.str();
}

TEST(LintClean, IncludeDagRespectsLayerDiagram)
{
    const fs::path root(REMORA_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(root / "src"));

    auto files = treeFiles(root);
    size_t srcFiles = 0;
    for (const auto &[rel, text] : files) {
        (void)text;
        srcFiles += rel.rfind("src/", 0) == 0 ? 1 : 0;
    }
    EXPECT_GT(srcFiles, 40u);

    auto findings = checkIncludeLayers(files);
    std::ostringstream report;
    for (const Finding &f : findings) {
        report << "  " << f.format() << "\n";
    }
    EXPECT_TRUE(findings.empty())
        << findings.size() << " include-layer violation(s):\n"
        << report.str();
}

} // namespace
} // namespace remora::lint
