/**
 * @file
 * FileStore tests: the server's local filesystem substrate.
 */
#include <gtest/gtest.h>

#include "dfs/file_store.h"

namespace remora::dfs {
namespace {

TEST(FileStore, RootIsADirectory)
{
    FileStore fs;
    auto attr = fs.getattr(fs.root());
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr.value().type, FileType::kDirectory);
    auto entries = fs.readdir(fs.root());
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 2u); // "." and ".."
}

TEST(FileStore, CreateLookupGetattr)
{
    FileStore fs;
    auto fh = fs.createFile(fs.root(), "a.txt", 1000);
    ASSERT_TRUE(fh.ok());
    auto found = fs.lookup(fs.root(), "a.txt");
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), fh.value());
    auto attr = fs.getattr(fh.value());
    ASSERT_TRUE(attr.ok());
    EXPECT_EQ(attr.value().type, FileType::kRegular);
    EXPECT_EQ(attr.value().size, 1000u);
    EXPECT_EQ(attr.value().bytesUsed, kBlockBytes);
}

TEST(FileStore, LookupMissesAndWrongTypes)
{
    FileStore fs;
    EXPECT_EQ(fs.lookup(fs.root(), "nope").status().code(),
              util::ErrorCode::kNotFound);
    auto fh = fs.createFile(fs.root(), "f", 10);
    ASSERT_TRUE(fh.ok());
    EXPECT_FALSE(fs.lookup(fh.value(), "x").ok());   // not a dir
    EXPECT_FALSE(fs.readdir(fh.value()).ok());       // not a dir
    EXPECT_FALSE(fs.readlink(fh.value()).ok());      // not a link
    EXPECT_FALSE(fs.read(fs.root(), 0, 10).ok());    // not a file
}

TEST(FileStore, ReadContentIsDeterministic)
{
    FileStore fs1, fs2;
    auto f1 = fs1.createFile(fs1.root(), "same", 4096);
    auto f2 = fs2.createFile(fs2.root(), "same", 4096);
    ASSERT_TRUE(f1.ok() && f2.ok());
    auto d1 = fs1.read(f1.value(), 0, 4096);
    auto d2 = fs2.read(f2.value(), 0, 4096);
    ASSERT_TRUE(d1.ok() && d2.ok());
    EXPECT_EQ(d1.value(), d2.value());
}

TEST(FileStore, ShortReadAtEof)
{
    FileStore fs;
    auto fh = fs.createFile(fs.root(), "short", 100);
    ASSERT_TRUE(fh.ok());
    auto data = fs.read(fh.value(), 80, 100);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value().size(), 20u);
    auto beyond = fs.read(fh.value(), 200, 10);
    ASSERT_TRUE(beyond.ok());
    EXPECT_TRUE(beyond.value().empty());
}

TEST(FileStore, WriteExtendsFile)
{
    FileStore fs;
    auto fh = fs.createFile(fs.root(), "grow", 10);
    ASSERT_TRUE(fh.ok());
    std::vector<uint8_t> data(100, 0x5a);
    ASSERT_TRUE(fs.write(fh.value(), 50, data).ok());
    auto attr = fs.getattr(fh.value());
    EXPECT_EQ(attr.value().size, 150u);
    auto back = fs.read(fh.value(), 50, 100);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
    // The gap between old EOF and the write start is zero-filled.
    auto gap = fs.read(fh.value(), 10, 40);
    for (uint8_t b : gap.value()) {
        EXPECT_EQ(b, 0);
    }
}

TEST(FileStore, SymlinkRoundTrip)
{
    FileStore fs;
    auto link = fs.symlink(fs.root(), "l", "/usr/bin/true");
    ASSERT_TRUE(link.ok());
    auto target = fs.readlink(link.value());
    ASSERT_TRUE(target.ok());
    EXPECT_EQ(target.value(), "/usr/bin/true");
    auto attr = fs.getattr(link.value());
    EXPECT_EQ(attr.value().type, FileType::kSymlink);
    EXPECT_EQ(attr.value().size, 13u);
}

TEST(FileStore, MkdirAndNesting)
{
    FileStore fs;
    auto d1 = fs.mkdir(fs.root(), "a");
    ASSERT_TRUE(d1.ok());
    auto d2 = fs.mkdir(d1.value(), "b");
    ASSERT_TRUE(d2.ok());
    auto f = fs.createFile(d2.value(), "deep.txt", 1);
    ASSERT_TRUE(f.ok());
    auto found = fs.lookup(d1.value(), "b");
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), d2.value());
    auto entries = fs.readdir(d2.value());
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries.value().size(), 3u); // ., .., deep.txt
}

TEST(FileStore, DuplicateNamesRejected)
{
    FileStore fs;
    ASSERT_TRUE(fs.createFile(fs.root(), "x", 1).ok());
    EXPECT_EQ(fs.createFile(fs.root(), "x", 1).status().code(),
              util::ErrorCode::kAlreadyExists);
    EXPECT_EQ(fs.mkdir(fs.root(), "x").status().code(),
              util::ErrorCode::kAlreadyExists);
}

TEST(FileStore, RemoveInvalidatesHandles)
{
    FileStore fs;
    auto fh = fs.createFile(fs.root(), "doomed", 64);
    ASSERT_TRUE(fh.ok());
    size_t live = fs.inodeCount();
    ASSERT_TRUE(fs.remove(fs.root(), "doomed").ok());
    EXPECT_EQ(fs.inodeCount(), live - 1);
    // The stale handle now fails every operation.
    EXPECT_FALSE(fs.getattr(fh.value()).ok());
    EXPECT_FALSE(fs.read(fh.value(), 0, 8).ok());
    EXPECT_EQ(fs.lookup(fs.root(), "doomed").status().code(),
              util::ErrorCode::kNotFound);
}

TEST(FileStore, HandleKeyRoundTrip)
{
    FileHandle fh{0x12345678, 0x9abcdef0};
    EXPECT_EQ(FileHandle::fromKey(fh.key()), fh);
}

TEST(FileStore, StatfsTracksUsage)
{
    FileStore fs;
    FsStat before = fs.statfs();
    ASSERT_TRUE(fs.createFile(fs.root(), "big", 1 << 20).ok());
    FsStat after = fs.statfs();
    EXPECT_EQ(before.freeBytes - after.freeBytes, 1u << 20);
    EXPECT_EQ(after.totalFiles, before.totalFiles + 1);
}

TEST(FileStore, AllHandlesEnumeratesLiveInodes)
{
    FileStore fs;
    ASSERT_TRUE(fs.createFile(fs.root(), "a", 1).ok());
    ASSERT_TRUE(fs.createFile(fs.root(), "b", 1).ok());
    ASSERT_TRUE(fs.remove(fs.root(), "a").ok());
    auto handles = fs.allHandles();
    EXPECT_EQ(handles.size(), fs.inodeCount());
    for (FileHandle fh : handles) {
        EXPECT_TRUE(fs.getattr(fh).ok());
    }
}

class FileSizeSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FileSizeSweep, FullContentReadBack)
{
    uint64_t size = GetParam();
    FileStore fs;
    auto fh = fs.createFile(fs.root(), "f", size);
    ASSERT_TRUE(fh.ok());
    // Read in 8K chunks and count bytes.
    uint64_t total = 0;
    for (uint64_t off = 0;; off += kBlockBytes) {
        auto chunk = fs.read(fh.value(), off, kBlockBytes);
        ASSERT_TRUE(chunk.ok());
        total += chunk.value().size();
        if (chunk.value().size() < kBlockBytes) {
            break;
        }
    }
    EXPECT_EQ(total, size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FileSizeSweep,
                         ::testing::Values(0, 1, 8191, 8192, 8193, 100000));

} // namespace
} // namespace remora::dfs
