/**
 * @file
 * ScheduleExplorer: stateless model checking over simulator schedules.
 *
 * Seeded-bug fixtures (a cross-order lock deadlock and a racy
 * notification post/poll) must be found within a bounded exploration
 * budget, with replayable and shrinkable reproducers; clean workloads
 * must explore to zero findings with a stable schedule count; and the
 * sleep-set reduction must provably prune commuting interleavings
 * relative to brute-force DFS on the same workload.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "rmem/notification.h"
#include "rmem/sync.h"
#include "sim/explorer.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/panic.h"

namespace remora::test {
namespace {

// ----------------------------------------------------------------------
// Workload thunks. Each builds its whole world on the simulator it is
// handed and drives it to completion (or deadlock) before returning —
// the explorer replays them from scratch once per schedule.
// ----------------------------------------------------------------------

/** Acquire @p first, dwell, then acquire @p second (lock-order worker). */
sim::Task<void>
lockOrderWorker(rmem::SpinLock *first, rmem::SpinLock *second,
                sim::Simulator *s)
{
    auto a = co_await first->acquire();
    REMORA_ASSERT(a.ok());
    // Dwell long enough that both workers hold their first lock before
    // either attempts its second: the classic cross-order deadlock.
    co_await sim::delay(*s, sim::usec(200));
    // The seeded cross-order deadlock the explorer tests exist to detect.
    // NOLINTNEXTLINE(remora-lock-across-suspension)
    auto b = co_await second->acquire();
    REMORA_ASSERT(b.ok());
    auto rb = co_await second->release();
    REMORA_ASSERT(rb.ok());
    auto ra = co_await first->release();
    REMORA_ASSERT(ra.ok());
}

/** Two-node world with two lock words on node A, contended from node B. */
struct LockWorld
{
    sim::Simulator &sim;
    net::Network network;
    mem::Node nodeA;
    mem::Node nodeB;
    rmem::RmemEngine engA;
    rmem::RmemEngine engB;
    rmem::ImportedSegment page;
    rmem::SegmentId scratch = 0;

    explicit LockWorld(sim::Simulator &s)
        : sim(s), network(s, net::LinkParams{}), nodeA(s, 1, "nodeA"),
          nodeB(s, 2, "nodeB"), engA(nodeA), engB(nodeB)
    {
        network.addHost(1, nodeA.nic());
        network.addHost(2, nodeB.nic());
        network.wireDirect();
        mem::Process &home = nodeA.spawnProcess("home");
        mem::Vaddr base = home.space().allocRegion(4096);
        auto exported = engA.exportSegment(home, base, 4096,
                                           rmem::Rights::kAll,
                                           rmem::NotifyPolicy::kNever,
                                           "mc.locks");
        REMORA_ASSERT(exported.ok());
        page = exported.value();
        mem::Process &workers = nodeB.spawnProcess("workers");
        mem::Vaddr sbase = workers.space().allocRegion(4096);
        auto sc = engB.exportSegment(workers, sbase, 4096, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kNever, "mc.scratch");
        REMORA_ASSERT(sc.ok());
        scratch = sc.value().descriptor;
    }
};

/**
 * Seeded deadlock: worker 1 takes word 0 then word 64; worker 2 takes
 * word 64 then word 0. Both hold their first lock through the dwell, so
 * every schedule closes the 2-party wait cycle.
 */
void
deadlockWorkload(sim::Simulator &sim)
{
    LockWorld w(sim);
    rmem::SpinLock l0a(w.engB, w.page, 0, w.scratch, 0, 0x101);
    rmem::SpinLock l64a(w.engB, w.page, 64, w.scratch, 0, 0x101);
    rmem::SpinLock l64b(w.engB, w.page, 64, w.scratch, 4, 0x102);
    rmem::SpinLock l0b(w.engB, w.page, 0, w.scratch, 4, 0x102);
    auto w1 = lockOrderWorker(&l0a, &l64a, &sim);
    auto w2 = lockOrderWorker(&l64b, &l0b, &sim);
    sim.run();
}

/** Clean contention: both workers take the same single word in order. */
void
spinLockWorkload(sim::Simulator &sim)
{
    LockWorld w(sim);
    rmem::SpinLock la(w.engB, w.page, 0, w.scratch, 0, 0x201);
    rmem::SpinLock lb(w.engB, w.page, 0, w.scratch, 4, 0x202);
    auto hold = [](rmem::SpinLock *lock,
                   sim::Simulator *s) -> sim::Task<void> {
        auto a = co_await lock->acquire();
        REMORA_ASSERT(a.ok());
        co_await sim::delay(*s, sim::usec(40));
        auto r = co_await lock->release();
        REMORA_ASSERT(r.ok());
    };
    auto w1 = hold(&la, &sim);
    auto w2 = hold(&lb, &sim);
    sim.run();
}

/**
 * Seeded lost wakeup: a notification post and a one-shot poll race at
 * the same instant. Post-then-poll consumes the token; poll-then-post
 * leaves it queued forever — whichever the schedule picks.
 */
void
lostWakeupWorkload(sim::Simulator &sim)
{
    mem::Node node(sim, 1, "node");
    rmem::CostModel costs;
    rmem::NotificationChannel ch(node.cpu(), costs);
    ch.setHangLabel("mc.token");
    sim.schedule(sim::usec(10), [&ch] {
        rmem::Notification n;
        n.srcNode = 2;
        ch.post(n);
    });
    sim.schedule(sim::usec(10), [&ch] {
        rmem::Notification out;
        (void)ch.tryNext(out); // one poll, then give up
    });
    sim.run();
}

/**
 * Four same-instant events, two hinted on channel 1 and two on channel
 * 2. Orders of the two dependent pairs matter (the digest records
 * execution order); cross-pair orders commute, so sleep sets must prune.
 */
void
hintedPairsWorkload(sim::Simulator &sim)
{
    for (uint64_t i = 0; i < 4; ++i) {
        sim::Simulator::HintScope scope(
            sim, sim::DepHint::channel(i < 2 ? 1 : 2));
        sim.schedule(sim::usec(10),
                     [&sim, i] { sim.noteDigest("ev", i); });
    }
    sim.run();
}

// ----------------------------------------------------------------------
// Seeded-bug detection
// ----------------------------------------------------------------------

TEST(Explorer, FindsCrossOrderLockDeadlock)
{
    sim::ExplorerOptions opts;
    opts.maxSchedules = 32;
    sim::ScheduleExplorer ex(deadlockWorkload, opts);
    sim::ExploreResult res = ex.explore();

    ASSERT_FALSE(res.findings.empty());
    const sim::ExplorerFinding *dead = nullptr;
    for (const auto &f : res.findings) {
        if (f.report.kind == sim::HangReport::Kind::kDeadlock) {
            dead = &f;
        }
    }
    ASSERT_NE(dead, nullptr) << "no deadlock among the findings";
    EXPECT_EQ(dead->report.parties.size(), 2u) << dead->report.format();
    // Reports carry the same site vocabulary the race detector uses.
    EXPECT_NE(dead->report.parties[0].find("spinlock node=1"),
              std::string::npos);

    // The shrunk reproducer is a prefix that still fails.
    EXPECT_LE(dead->shrunk.size(), dead->choices.size());
    auto replay = ex.runOnce(dead->shrunk);
    bool reproduced = false;
    for (const auto &rep : replay.reports) {
        reproduced |= rep.signature() == dead->report.signature();
    }
    EXPECT_TRUE(reproduced) << "shrunk prefix did not reproduce";
}

TEST(Explorer, FindsLostWakeup)
{
    sim::ExplorerOptions opts;
    opts.maxSchedules = 16;
    sim::ScheduleExplorer ex(lostWakeupWorkload, opts);
    sim::ExploreResult res = ex.explore();

    EXPECT_TRUE(res.exhausted);
    ASSERT_EQ(res.findings.size(), 1u);
    const sim::ExplorerFinding &f = res.findings.front();
    EXPECT_EQ(f.report.kind, sim::HangReport::Kind::kLostWakeup);
    EXPECT_EQ(f.report.parties.size(), 1u);
    EXPECT_NE(f.report.parties[0].find("mc.token"), std::string::npos)
        << f.report.format();
    // Only one of the two orders loses the token.
    EXPECT_GE(res.schedules, 2u);
    EXPECT_GT(f.schedule, 0u) << "the default order should be clean";
}

// ----------------------------------------------------------------------
// Replay fidelity
// ----------------------------------------------------------------------

TEST(Explorer, RecordedChoicesReplayBitIdentically)
{
    sim::ScheduleExplorer ex(lostWakeupWorkload);
    sim::ExploreResult res = ex.explore();
    ASSERT_EQ(res.findings.size(), 1u);
    const sim::ExplorerFinding &f = res.findings.front();

    // Replaying the failing schedule's full choice vector reproduces
    // both the digest and the finding, bit for bit, run after run.
    for (int round = 0; round < 2; ++round) {
        auto replay = ex.runOnce(f.choices);
        EXPECT_EQ(replay.digest, f.digest);
        ASSERT_EQ(replay.reports.size(), 1u);
        EXPECT_EQ(replay.reports[0].signature(), f.report.signature());
    }

    // And the default schedule replays to the explorer's first digest.
    auto first = ex.runOnce({});
    EXPECT_EQ(first.digest, res.firstDigest);
    EXPECT_TRUE(first.reports.empty());
}

// ----------------------------------------------------------------------
// Clean workloads stay clean, deterministically
// ----------------------------------------------------------------------

TEST(Explorer, CleanSpinLockWorkloadIsStableAcrossReruns)
{
    sim::ExplorerOptions opts;
    opts.maxSchedules = 40;
    sim::ScheduleExplorer ex1(spinLockWorkload, opts);
    sim::ScheduleExplorer ex2(spinLockWorkload, opts);
    sim::ExploreResult r1 = ex1.explore();
    sim::ExploreResult r2 = ex2.explore();

    EXPECT_TRUE(r1.findings.empty())
        << r1.findings.front().report.format();
    EXPECT_TRUE(r2.findings.empty());
    EXPECT_EQ(r1.schedules, r2.schedules);
    EXPECT_EQ(r1.decisions, r2.decisions);
    EXPECT_EQ(r1.firstDigest, r2.firstDigest);
    EXPECT_GE(r1.schedules, 2u) << "contention should branch the schedule";
}

// ----------------------------------------------------------------------
// Reduction: sleep sets prune commuting interleavings, soundly
// ----------------------------------------------------------------------

TEST(Explorer, SleepSetReductionBeatsBruteForce)
{
    sim::ExplorerOptions brute;
    brute.reduction = false;
    sim::ScheduleExplorer bruteEx(hintedPairsWorkload, brute);
    sim::ExploreResult bruteRes = bruteEx.explore();

    sim::ScheduleExplorer reducedEx(hintedPairsWorkload);
    sim::ExploreResult reducedRes = reducedEx.explore();

    // Brute force enumerates every total order of 4 same-instant
    // events: 4 * 3 * 2 = 24 schedules.
    EXPECT_TRUE(bruteRes.exhausted);
    EXPECT_EQ(bruteRes.schedules, 24u);
    EXPECT_TRUE(bruteRes.findings.empty());

    // Only the relative order within each dependent pair matters
    // (2 x 2 = 4 equivalence classes); the reduction must stay sound
    // (cover at least those) while exploring measurably fewer orders.
    EXPECT_TRUE(reducedRes.exhausted);
    EXPECT_TRUE(reducedRes.findings.empty());
    EXPECT_GE(reducedRes.schedules, 4u);
    EXPECT_LT(reducedRes.schedules, bruteRes.schedules);
    EXPECT_GT(reducedRes.sleepSkips, 0u);
    EXPECT_EQ(reducedRes.firstDigest, bruteRes.firstDigest);
}

TEST(Explorer, CountersAccumulateAcrossExplores)
{
    sim::ScheduleExplorer ex(lostWakeupWorkload);
    (void)ex.explore();
    EXPECT_GE(ex.schedulesRun().value(), 2u);
    EXPECT_GE(ex.decisionsHit().value(), 1u);
    EXPECT_EQ(ex.findingsFound().value(), 1u);
    EXPECT_GE(ex.shrinkRuns().value(), 1u);
}

} // namespace
} // namespace remora::test
