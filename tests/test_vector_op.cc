/**
 * @file
 * Vectored meta-instructions: wire protocol round-trips, batch
 * building, end-to-end writev/readv/casv across two nodes, single-frame
 * accounting, per-batch validation caching, and doorbell coalescing.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rmem/engine.h"
#include "rmem/notification.h"
#include "rmem/protocol.h"
#include "rmem/vector_op.h"

namespace remora {
namespace {

using test::TwoNodeCluster;
using test::runToCompletion;

rmem::ImportedSegment
makeSegment(rmem::RmemEngine &engine, mem::Process &proc, uint32_t size,
            rmem::Rights rights = rmem::Rights::kAll,
            rmem::NotifyPolicy policy = rmem::NotifyPolicy::kConditional)
{
    mem::Vaddr base = proc.space().allocRegion(size);
    auto h = engine.exportSegment(proc, base, size, rights, policy, "seg");
    EXPECT_TRUE(h.ok()) << h.status().toString();
    return h.value();
}

// ----------------------------------------------------------------------
// Wire protocol
// ----------------------------------------------------------------------

TEST(VectorProtocol, RequestRoundTripPreservesEverySubOp)
{
    rmem::VectorReq req;
    req.reqId = 0x1234;

    rmem::VectorSubOp w;
    w.kind = rmem::VecOpKind::kWrite;
    w.descriptor = 3;
    w.generation = 9;
    w.offset = 64;
    w.notify = true;
    w.data = {1, 2, 3, 4, 5};
    req.ops.push_back(w);

    rmem::VectorSubOp r;
    r.kind = rmem::VecOpKind::kRead;
    r.descriptor = 4;
    r.generation = 2;
    r.offset = 4096;
    r.count = 128;
    req.ops.push_back(r);

    rmem::VectorSubOp c;
    c.kind = rmem::VecOpKind::kCas;
    c.descriptor = 5;
    c.generation = 1;
    c.offset = 16;
    c.oldValue = 0xAABBCCDD;
    c.newValue = 0x11223344;
    req.ops.push_back(c);

    std::vector<uint8_t> bytes = rmem::encodeMessage(rmem::Message(req));
    EXPECT_EQ(bytes.size(), rmem::encodedVectorSize(req));

    auto decoded = rmem::decodeMessage(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    ASSERT_EQ(rmem::messageType(decoded.value()), rmem::MsgType::kVectorOp);
    const auto &out = std::get<rmem::VectorReq>(decoded.value());
    EXPECT_EQ(out.reqId, 0x1234);
    ASSERT_EQ(out.ops.size(), 3u);
    EXPECT_EQ(out.ops[0].kind, rmem::VecOpKind::kWrite);
    EXPECT_EQ(out.ops[0].descriptor, 3);
    EXPECT_EQ(out.ops[0].generation, 9);
    EXPECT_EQ(out.ops[0].offset, 64u);
    EXPECT_TRUE(out.ops[0].notify);
    EXPECT_EQ(out.ops[0].data, w.data);
    EXPECT_EQ(out.ops[1].kind, rmem::VecOpKind::kRead);
    EXPECT_FALSE(out.ops[1].notify);
    EXPECT_EQ(out.ops[1].count, 128);
    EXPECT_EQ(out.ops[2].kind, rmem::VecOpKind::kCas);
    EXPECT_EQ(out.ops[2].oldValue, 0xAABBCCDDu);
    EXPECT_EQ(out.ops[2].newValue, 0x11223344u);
}

TEST(VectorProtocol, ResponseRoundTripPreservesResults)
{
    rmem::VectorResp resp;
    resp.reqId = 77;

    rmem::VectorSubResult wr;
    wr.kind = rmem::VecOpKind::kWrite;
    resp.results.push_back(wr);

    rmem::VectorSubResult rd;
    rd.kind = rmem::VecOpKind::kRead;
    rd.data = {9, 8, 7};
    resp.results.push_back(rd);

    rmem::VectorSubResult cs;
    cs.kind = rmem::VecOpKind::kCas;
    cs.success = true;
    cs.observed = 0xDEADBEEF;
    resp.results.push_back(cs);

    rmem::VectorSubResult bad;
    bad.kind = rmem::VecOpKind::kRead;
    bad.status = util::ErrorCode::kBadDescriptor;
    resp.results.push_back(bad);

    std::vector<uint8_t> bytes = rmem::encodeMessage(rmem::Message(resp));
    auto decoded = rmem::decodeMessage(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    ASSERT_EQ(rmem::messageType(decoded.value()),
              rmem::MsgType::kVectorResp);
    const auto &out = std::get<rmem::VectorResp>(decoded.value());
    EXPECT_EQ(out.reqId, 77);
    ASSERT_EQ(out.results.size(), 4u);
    EXPECT_EQ(out.results[0].status, util::ErrorCode::kOk);
    EXPECT_EQ(out.results[1].data, rd.data);
    EXPECT_TRUE(out.results[2].success);
    EXPECT_EQ(out.results[2].observed, 0xDEADBEEFu);
    EXPECT_EQ(out.results[3].status, util::ErrorCode::kBadDescriptor);
    EXPECT_TRUE(out.results[3].data.empty());
}

TEST(VectorProtocol, TruncatedRequestIsMalformed)
{
    rmem::VectorReq req;
    req.reqId = 1;
    rmem::VectorSubOp w;
    w.kind = rmem::VecOpKind::kWrite;
    w.data = {1, 2, 3, 4, 5, 6, 7, 8};
    req.ops.push_back(w);
    std::vector<uint8_t> bytes = rmem::encodeMessage(rmem::Message(req));
    for (size_t cut = 1; cut < bytes.size(); ++cut) {
        std::vector<uint8_t> chopped(bytes.begin(), bytes.end() - cut);
        auto decoded = rmem::decodeMessage(chopped);
        EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
}

TEST(VectorProtocol, BadSubOpKindIsMalformed)
{
    rmem::VectorReq req;
    req.reqId = 1;
    rmem::VectorSubOp c;
    c.kind = rmem::VecOpKind::kCas;
    req.ops.push_back(c);
    std::vector<uint8_t> bytes = rmem::encodeMessage(rmem::Message(req));
    bytes[4] = 0x03; // kind bits 0b11: no such sub-op
    auto decoded = rmem::decodeMessage(bytes);
    EXPECT_FALSE(decoded.ok());
}

TEST(VectorProtocol, DistinctValidationKeysCollapseDuplicates)
{
    std::vector<rmem::VectorSubOp> ops(5);
    for (auto &op : ops) {
        op.kind = rmem::VecOpKind::kWrite;
        op.descriptor = 2;
        op.generation = 1;
    }
    EXPECT_EQ(rmem::distinctValidationKeys(ops), 1u);
    ops[3].kind = rmem::VecOpKind::kRead; // different rights
    ops[4].descriptor = 6;                // different slot
    EXPECT_EQ(rmem::distinctValidationKeys(ops), 3u);
}

// ----------------------------------------------------------------------
// BatchBuilder admission
// ----------------------------------------------------------------------

TEST(BatchBuilder, RejectsCrossNodeAndRightsAndBounds)
{
    TwoNodeCluster c;
    rmem::BatchBuilder b(c.engineA);

    rmem::ImportedSegment onB{2, 1, 1, 4096, rmem::Rights::kWrite};
    rmem::ImportedSegment onA{1, 1, 1, 4096, rmem::Rights::kWrite};
    rmem::ImportedSegment readOnly{2, 2, 1, 4096, rmem::Rights::kRead};

    EXPECT_TRUE(
        b.addWrite({onB, 0, std::vector<uint8_t>(16, 1), false}).ok());
    // Second target node: one batch addresses one node.
    auto s = b.addWrite({onA, 0, std::vector<uint8_t>(16, 1), false});
    EXPECT_EQ(s.code(), util::ErrorCode::kInvalidArgument);
    // Missing write right.
    s = b.addWrite({readOnly, 0, std::vector<uint8_t>(16, 1), false});
    EXPECT_EQ(s.code(), util::ErrorCode::kAccessDenied);
    // Out of bounds.
    s = b.addWrite({onB, 4090, std::vector<uint8_t>(16, 1), false});
    EXPECT_EQ(s.code(), util::ErrorCode::kOutOfBounds);
    // Misaligned CAS (on a segment with both rights, so alignment is
    // the check that fires).
    rmem::ImportedSegment rw{2, 1, 1, 4096, rmem::Rights::kAll};
    s = b.addCas({rw, 2, 0, 1, 0, 0});
    EXPECT_EQ(s.code(), util::ErrorCode::kOutOfBounds);
    EXPECT_EQ(b.size(), 1u);
}

TEST(BatchBuilder, EnforcesFrameBudgetAndOpCount)
{
    TwoNodeCluster c;
    rmem::BatchBuilder b(c.engineA);
    rmem::ImportedSegment onB{2, 1, 1, 1 << 20, rmem::Rights::kWrite};

    // Frame budget: huge payloads stop fitting long before op count.
    util::Status s;
    size_t added = 0;
    for (;;) {
        s = b.addWrite(
            {onB, 0, std::vector<uint8_t>(16000, 0xAB), false});
        if (!s.ok()) {
            break;
        }
        ++added;
    }
    EXPECT_EQ(s.code(), util::ErrorCode::kResource);
    EXPECT_EQ(added, 3u); // 3 * ~16KB fits under kBlockDataMax, 4 don't

    // Op-count cap with tiny ops.
    rmem::BatchBuilder b2(c.engineA);
    for (size_t i = 0; i < rmem::kMaxVectorOps; ++i) {
        ASSERT_TRUE(
            b2.addWrite({onB, 0, std::vector<uint8_t>(4, 1), false}).ok());
    }
    s = b2.addWrite({onB, 0, std::vector<uint8_t>(4, 1), false});
    EXPECT_EQ(s.code(), util::ErrorCode::kResource);
}

// ----------------------------------------------------------------------
// End-to-end meta-instructions
// ----------------------------------------------------------------------

TEST(VectorOps, WritevDepositsAllSubOpsInOneFrame)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(8192);
    auto seg = c.engineB.exportSegment(server, base, 8192,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "data");
    ASSERT_TRUE(seg.ok());

    uint64_t sentBefore = c.engineA.wire().messagesSent();
    std::vector<rmem::BatchBuilder::Write> ops;
    for (uint32_t i = 0; i < 4; ++i) {
        ops.push_back({seg.value(), i * 1024,
                       std::vector<uint8_t>(64, static_cast<uint8_t>(i + 1)),
                       false});
    }
    auto task = c.engineA.writev(std::move(ops));
    util::Status s = runToCompletion(c.sim, task);
    EXPECT_TRUE(s.ok()) << s.toString();
    c.sim.run();

    // ONE wire message carried all four sub-ops.
    EXPECT_EQ(c.engineA.wire().messagesSent() - sentBefore, 1u);
    EXPECT_EQ(c.engineA.stats().vectorsIssued.value(), 1u);
    EXPECT_EQ(c.engineA.stats().vectorSubOps.value(), 4u);
    EXPECT_EQ(c.engineB.stats().vectorServed.value(), 1u);
    EXPECT_EQ(c.engineB.stats().vectorSubOpsServed.value(), 4u);
    for (uint32_t i = 0; i < 4; ++i) {
        std::vector<uint8_t> check(64);
        ASSERT_TRUE(server.space().read(base + i * 1024, check).ok());
        EXPECT_EQ(check, std::vector<uint8_t>(64, static_cast<uint8_t>(
                                                      i + 1)));
    }
}

TEST(VectorOps, ReadvGathersAndDepositsLocally)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(8192);
    for (uint32_t i = 0; i < 4; ++i) {
        std::vector<uint8_t> content(100, static_cast<uint8_t>(0x10 + i));
        ASSERT_TRUE(server.space().write(base + i * 2048, content).ok());
    }
    auto seg = c.engineB.exportSegment(server, base, 8192,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "data");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    uint64_t sentA = c.engineA.wire().messagesSent();
    uint64_t sentB = c.engineB.wire().messagesSent();
    std::vector<rmem::BatchBuilder::Read> ops;
    for (uint32_t i = 0; i < 4; ++i) {
        rmem::BatchBuilder::Read op;
        op.src = seg.value();
        op.srcOff = i * 2048;
        op.dstSeg = local.descriptor;
        op.dstOff = i * 256;
        op.count = 100;
        ops.push_back(op);
    }
    auto task = c.engineA.readv(std::move(ops));
    rmem::VectorOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok()) << out.status.toString();
    c.sim.run();

    // One request frame out, one response frame back.
    EXPECT_EQ(c.engineA.wire().messagesSent() - sentA, 1u);
    EXPECT_EQ(c.engineB.wire().messagesSent() - sentB, 1u);
    ASSERT_EQ(out.results.size(), 4u);
    auto *desc = c.engineA.descriptor(local.descriptor);
    ASSERT_NE(desc, nullptr);
    for (uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out.results[i].status, util::ErrorCode::kOk);
        std::vector<uint8_t> want(100, static_cast<uint8_t>(0x10 + i));
        EXPECT_EQ(out.results[i].data, want);
        std::vector<uint8_t> deposited(100);
        ASSERT_TRUE(
            client.space().read(desc->base + i * 256, deposited).ok());
        EXPECT_EQ(deposited, want);
    }
    // 4 sub-ops on one (slot, generation, rights) key: 3 cache hits.
    EXPECT_EQ(c.engineB.stats().vectorValidateHits.value(), 3u);
}

TEST(VectorOps, CasvSwapsEachWordIndependently)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    ASSERT_TRUE(server.space().writeWord(base + 0, 10).ok());
    ASSERT_TRUE(server.space().writeWord(base + 4, 20).ok());
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "sync");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    std::vector<rmem::BatchBuilder::Cas> ops;
    ops.push_back({seg.value(), 0, 10, 11, local.descriptor, 0});  // hits
    ops.push_back({seg.value(), 4, 99, 100, local.descriptor, 4}); // misses
    auto task = c.engineA.casv(std::move(ops));
    rmem::VectorOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok()) << out.status.toString();
    c.sim.run();

    ASSERT_EQ(out.results.size(), 2u);
    EXPECT_TRUE(out.results[0].success);
    EXPECT_EQ(out.results[0].observed, 10u);
    EXPECT_FALSE(out.results[1].success);
    EXPECT_EQ(out.results[1].observed, 20u);
    EXPECT_EQ(server.space().readWord(base + 0).value(), 11u);
    EXPECT_EQ(server.space().readWord(base + 4).value(), 20u);

    // Success words deposited at the requested local offsets.
    auto *desc = c.engineA.descriptor(local.descriptor);
    EXPECT_EQ(client.space().readWord(desc->base + 0).value(), 1u);
    EXPECT_EQ(client.space().readWord(desc->base + 4).value(), 0u);
}

TEST(VectorOps, MixedBatchCarriesAllThreeKinds)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    std::vector<uint8_t> content(32, 0x5A);
    ASSERT_TRUE(server.space().write(base + 512, content).ok());
    ASSERT_TRUE(server.space().writeWord(base + 1024, 7).ok());
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "mix");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    rmem::BatchBuilder b(c.engineA);
    ASSERT_TRUE(
        b.addWrite({seg.value(), 0, std::vector<uint8_t>(16, 0xEE), false})
            .ok());
    ASSERT_TRUE(
        b.addRead({seg.value(), 512, local.descriptor, 0, 32, false}).ok());
    ASSERT_TRUE(b.addCas({seg.value(), 1024, 7, 8, local.descriptor, 64})
                    .ok());
    EXPECT_TRUE(b.wantsResponse());
    auto task = b.issue();
    rmem::VectorOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok()) << out.status.toString();
    c.sim.run();

    ASSERT_EQ(out.results.size(), 3u);
    EXPECT_EQ(out.results[0].kind, rmem::VecOpKind::kWrite);
    EXPECT_EQ(out.results[1].data, content);
    EXPECT_TRUE(out.results[2].success);
    std::vector<uint8_t> applied(16);
    ASSERT_TRUE(server.space().read(base + 0, applied).ok());
    EXPECT_EQ(applied, std::vector<uint8_t>(16, 0xEE));
    EXPECT_EQ(server.space().readWord(base + 1024).value(), 8u);
    // The builder resets after issue and can be reused.
    EXPECT_TRUE(b.empty());
}

TEST(VectorOps, EmptyBatchResolvesWithoutWire)
{
    TwoNodeCluster c;
    uint64_t sent = c.engineA.wire().messagesSent();
    auto task = c.engineA.writev({});
    util::Status s = runToCompletion(c.sim, task);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(c.engineA.wire().messagesSent(), sent);
    EXPECT_EQ(c.engineA.stats().vectorsIssued.value(), 0u);
}

TEST(VectorOps, RevokedSegmentFailsPerSubOpNotWholeBatch)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    std::vector<uint8_t> content(8, 0x77);
    ASSERT_TRUE(server.space().write(base, content).ok());
    auto live = c.engineB.exportSegment(server, base, 4096,
                                        rmem::Rights::kAll,
                                        rmem::NotifyPolicy::kNever, "live");
    ASSERT_TRUE(live.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096);

    // A read against a stale generation travels with a valid one.
    rmem::ImportedSegment stale = live.value();
    stale.generation = static_cast<rmem::Generation>(stale.generation + 1);

    std::vector<rmem::BatchBuilder::Read> ops;
    rmem::BatchBuilder::Read ok;
    ok.src = live.value();
    ok.srcOff = 0;
    ok.dstSeg = local.descriptor;
    ok.dstOff = 0;
    ok.count = 8;
    ops.push_back(ok);
    rmem::BatchBuilder::Read bad = ok;
    bad.src = stale;
    bad.dstOff = 64;
    ops.push_back(bad);

    auto task = c.engineA.readv(std::move(ops));
    rmem::VectorOutcome out = runToCompletion(c.sim, task);
    ASSERT_TRUE(out.status.ok()) << out.status.toString();
    ASSERT_EQ(out.results.size(), 2u);
    EXPECT_EQ(out.results[0].status, util::ErrorCode::kOk);
    EXPECT_EQ(out.results[0].data, content);
    EXPECT_NE(out.results[1].status, util::ErrorCode::kOk);
}

TEST(VectorOps, PureWriteBatchAgainstRevokedSlotNaksOnce)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "gone");
    ASSERT_TRUE(seg.ok());
    ASSERT_TRUE(c.engineB.revokeSegment(seg.value().descriptor).ok());

    std::vector<rmem::BatchBuilder::Write> ops;
    for (int i = 0; i < 3; ++i) {
        ops.push_back({seg.value(), static_cast<uint32_t>(i * 16),
                       std::vector<uint8_t>(8, 1), false});
    }
    auto task = c.engineA.writev(std::move(ops));
    util::Status s = runToCompletion(c.sim, task);
    // Pure-write batches complete at network accept; the rejection
    // arrives as one NAK for the whole frame.
    EXPECT_TRUE(s.ok());
    c.sim.run();
    EXPECT_EQ(c.engineB.stats().naksSent.value(), 1u);
    EXPECT_EQ(c.engineA.stats().naksReceived.value(), 1u);
}

// ----------------------------------------------------------------------
// Doorbell coalescing
// ----------------------------------------------------------------------

TEST(VectorOps, BatchNotifyPostsOneDoorbell)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kConditional,
                                       "notified");
    ASSERT_TRUE(seg.ok());
    size_t delivered = 0;
    c.engineB.channel(seg.value().descriptor)
        ->setSignalHandler(
            [&delivered](const rmem::Notification &) { ++delivered; });

    auto &cpuB = c.nodeB.cpu();

    // Scalar baseline: 4 notified writes ring 4 doorbells.
    sim::Duration ctBefore =
        cpuB.busyIn(sim::CpuCategory::kControlTransfer);
    for (uint32_t i = 0; i < 4; ++i) {
        auto w = c.engineA.write(seg.value(), i * 64,
                                 std::vector<uint8_t>(16, 1), true);
        runToCompletion(c.sim, w);
    }
    c.sim.run();
    sim::Duration scalarCt =
        cpuB.busyIn(sim::CpuCategory::kControlTransfer) - ctBefore;
    EXPECT_EQ(delivered, 4u);

    // Vectored: 4 notified writes to the same channel, ONE doorbell.
    delivered = 0;
    ctBefore = cpuB.busyIn(sim::CpuCategory::kControlTransfer);
    std::vector<rmem::BatchBuilder::Write> ops;
    for (uint32_t i = 0; i < 4; ++i) {
        ops.push_back({seg.value(), i * 64, std::vector<uint8_t>(16, 2),
                       true});
    }
    auto task = c.engineA.writev(std::move(ops));
    ASSERT_TRUE(runToCompletion(c.sim, task).ok());
    c.sim.run();
    sim::Duration vectorCt =
        cpuB.busyIn(sim::CpuCategory::kControlTransfer) - ctBefore;

    // Every record still reaches the handler, but the dispatch cost is
    // charged once per batch instead of once per record.
    EXPECT_EQ(delivered, 4u);
    EXPECT_EQ(c.engineB.stats().vectorDoorbells.value(), 1u);
    EXPECT_EQ(scalarCt, 4 * vectorCt);
    EXPECT_EQ(c.engineB.stats().notificationsPosted.value(), 8u);
}

TEST(VectorOps, ReaderSideNotifyCoalescesAcrossReadSubOps)
{
    TwoNodeCluster c;
    mem::Process &server = c.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = c.engineB.exportSegment(server, base, 4096,
                                       rmem::Rights::kAll,
                                       rmem::NotifyPolicy::kNever, "src");
    ASSERT_TRUE(seg.ok());

    mem::Process &client = c.nodeA.spawnProcess("client");
    auto local = makeSegment(c.engineA, client, 4096,
                             rmem::Rights::kAll,
                             rmem::NotifyPolicy::kConditional);
    size_t delivered = 0;
    c.engineA.channel(local.descriptor)
        ->setSignalHandler(
            [&delivered](const rmem::Notification &) { ++delivered; });

    std::vector<rmem::BatchBuilder::Read> ops;
    for (uint32_t i = 0; i < 3; ++i) {
        rmem::BatchBuilder::Read op;
        op.src = seg.value();
        op.srcOff = i * 128;
        op.dstSeg = local.descriptor;
        op.dstOff = i * 128;
        op.count = 32;
        op.notify = true;
        ops.push_back(op);
    }
    auto task = c.engineA.readv(std::move(ops));
    ASSERT_TRUE(runToCompletion(c.sim, task).status.ok());
    c.sim.run();

    // All three deposit notifications arrive through one doorbell.
    EXPECT_EQ(delivered, 3u);
    EXPECT_EQ(c.engineA.stats().vectorDoorbells.value(), 1u);
}

} // namespace
} // namespace remora
