/**
 * @file
 * Unit tests for the simulation engine: event ordering, cancellation,
 * coroutine tasks, one-shot promises, and the CPU resource model.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace remora::sim {
namespace {

// ----------------------------------------------------------------------
// Simulator / event queue
// ----------------------------------------------------------------------

TEST(Simulator, ExecutesInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameInstantRunsInInsertionOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(100, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
}

TEST(Simulator, ZeroDelayRunsLaterSameInstant)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(0, [&] {
        order.push_back(1);
        sim.schedule(0, [&] { order.push_back(2); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    EventId id = sim.schedule(10, [&] { ran = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(ran);
    // Double-cancel and cancel-after-run are harmless.
    sim.cancel(id);
}

TEST(Simulator, CancelIsSelective)
{
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    EventId id = sim.schedule(10, [&] { ++count; });
    sim.schedule(10, [&] { ++count; });
    sim.cancel(id);
    sim.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunRespectsLimit)
{
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.schedule(20, [&] { ++count; });
    sim.schedule(30, [&] { ++count; });
    uint64_t ran = sim.run(20);
    EXPECT_EQ(ran, 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20);
    sim.run();
    EXPECT_EQ(count, 3);
}

TEST(Simulator, StepRunsExactlyOne)
{
    Simulator sim;
    int count = 0;
    sim.schedule(5, [&] { ++count; });
    sim.schedule(6, [&] { ++count; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 100) {
            sim.schedule(1, recurse);
        }
    };
    sim.schedule(1, recurse);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 100);
    EXPECT_EQ(sim.eventsProcessed(), 100u);
}

// ----------------------------------------------------------------------
// Task coroutines
// ----------------------------------------------------------------------

Task<int>
immediateTask()
{
    co_return 42;
}

Task<int>
delayedTask(Simulator *sim, Duration d)
{
    co_await delay(*sim, d);
    co_return 7;
}

TEST(Task, EagerStartCompletesImmediately)
{
    auto t = immediateTask();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 42);
}

TEST(Task, DelaySuspendsUntilSimTime)
{
    Simulator sim;
    auto t = delayedTask(&sim, usec(10));
    EXPECT_FALSE(t.done());
    sim.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 7);
    EXPECT_EQ(sim.now(), usec(10));
}

Task<int>
nestedTask(Simulator *sim)
{
    int a = co_await delayedTask(sim, usec(5));
    int b = co_await delayedTask(sim, usec(5));
    co_return a + b;
}

TEST(Task, AwaitingSubTasksComposes)
{
    Simulator sim;
    auto t = nestedTask(&sim);
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 14);
    EXPECT_EQ(sim.now(), usec(10));
}

Task<void>
throwingTask(Simulator *sim)
{
    co_await delay(*sim, 1);
    throw std::runtime_error("boom");
}

Task<bool>
catchingTask(Simulator *sim)
{
    try {
        co_await throwingTask(sim);
    } catch (const std::runtime_error &e) {
        co_return std::string(e.what()) == "boom";
    }
    co_return false;
}

TEST(Task, ExceptionsPropagateThroughAwait)
{
    Simulator sim;
    auto t = catchingTask(&sim);
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_TRUE(t.result());
}

TEST(Task, DetachedTaskRunsToCompletion)
{
    Simulator sim;
    int done = 0;
    {
        auto t = [](Simulator *s, int *flag) -> Task<void> {
            co_await delay(*s, usec(3));
            *flag = 1;
        }(&sim, &done);
        t.detach();
    }
    EXPECT_EQ(done, 0);
    sim.run();
    EXPECT_EQ(done, 1);
}

TEST(Task, MoveTransfersOwnership)
{
    Simulator sim;
    auto t1 = delayedTask(&sim, usec(1));
    Task<int> t2 = std::move(t1);
    sim.run();
    ASSERT_TRUE(t2.done());
    EXPECT_EQ(t2.result(), 7);
}

// ----------------------------------------------------------------------
// Promise / Future
// ----------------------------------------------------------------------

TEST(Future, SetBeforeAwaitResolvesImmediately)
{
    Simulator sim;
    Promise<int> p(sim);
    p.set(5);
    auto t = [](Future<int> f) -> Task<int> { co_return co_await f; }(
        p.future());
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 5);
}

TEST(Future, SetAfterAwaitWakesWaiter)
{
    Simulator sim;
    Promise<int> p(sim);
    auto t = [](Future<int> f) -> Task<int> { co_return co_await f; }(
        p.future());
    sim.run();
    EXPECT_FALSE(t.done());
    p.set(9);
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 9);
}

TEST(Future, VoidSpecialization)
{
    Simulator sim;
    Promise<void> p(sim);
    bool resumed = false;
    auto t = [](Future<void> f, bool *flag) -> Task<void> {
        co_await f;
        *flag = true;
    }(p.future(), &resumed);
    sim.run();
    EXPECT_FALSE(resumed);
    p.set();
    sim.run();
    EXPECT_TRUE(resumed);
    EXPECT_TRUE(t.done());
}

TEST(Future, ExceptionDelivery)
{
    Simulator sim;
    Promise<int> p(sim);
    auto t = [](Future<int> f) -> Task<bool> {
        try {
            co_await f;
        } catch (const std::runtime_error &) {
            co_return true;
        }
        co_return false;
    }(p.future());
    p.setException(std::make_exception_ptr(std::runtime_error("x")));
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_TRUE(t.result());
}

// ----------------------------------------------------------------------
// CpuResource
// ----------------------------------------------------------------------

TEST(Cpu, SerializesWorkFcfs)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    std::vector<Time> completions;
    cpu.post(usec(10), CpuCategory::kOther,
             [&] { completions.push_back(sim.now()); });
    cpu.post(usec(5), CpuCategory::kOther,
             [&] { completions.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0], usec(10));
    EXPECT_EQ(completions[1], usec(15));
    EXPECT_EQ(cpu.totalBusy(), usec(15));
}

TEST(Cpu, IdleGapsDoNotAccumulateBusyTime)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    cpu.post(usec(10), CpuCategory::kOther);
    sim.run();
    // Let simulated time pass idle.
    sim.schedule(usec(100), [] {});
    sim.run();
    cpu.post(usec(10), CpuCategory::kOther);
    sim.run();
    EXPECT_EQ(cpu.totalBusy(), usec(20));
    // First burst ended at 10us, the idle marker fired at 110us, and the
    // second burst runs 110-120us; only 20us of busy time accrued.
    EXPECT_EQ(cpu.busyUntil(), usec(110) + usec(10));
}

TEST(Cpu, CategoriesAccumulateIndependently)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    cpu.post(usec(3), CpuCategory::kDataReceive);
    cpu.post(usec(5), CpuCategory::kControlTransfer);
    cpu.post(usec(7), CpuCategory::kDataReceive);
    sim.run();
    EXPECT_EQ(cpu.busyIn(CpuCategory::kDataReceive), usec(10));
    EXPECT_EQ(cpu.busyIn(CpuCategory::kControlTransfer), usec(5));
    EXPECT_EQ(cpu.busyIn(CpuCategory::kProcExec), 0);
    EXPECT_EQ(cpu.totalBusy(), usec(15));
}

TEST(Cpu, ResetAccountingClearsCounters)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    cpu.post(usec(5), CpuCategory::kProcExec);
    sim.run();
    cpu.resetAccounting();
    EXPECT_EQ(cpu.totalBusy(), 0);
    EXPECT_EQ(cpu.busyIn(CpuCategory::kProcExec), 0);
}

TEST(Cpu, CoroutineUseAwaitsCompletion)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    auto t = [](Simulator *s, CpuResource *c) -> Task<Time> {
        co_await c->use(usec(25), CpuCategory::kProcExec);
        co_return s->now();
    }(&sim, &cpu);
    sim.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), usec(25));
}

TEST(Cpu, UtilizationOverWindow)
{
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    cpu.post(usec(50), CpuCategory::kOther);
    sim.schedule(usec(100), [] {});
    sim.run();
    EXPECT_NEAR(cpu.utilizationSince(0), 0.5, 1e-9);
}

TEST(Cpu, CategoryNamesAreStable)
{
    EXPECT_STREQ(cpuCategoryName(CpuCategory::kDataReceive), "data_receive");
    EXPECT_STREQ(cpuCategoryName(CpuCategory::kControlTransfer),
                 "control_transfer");
    EXPECT_STREQ(cpuCategoryName(CpuCategory::kDataReply), "data_reply");
}

// Parameterized: N tasks contending for the CPU finish in FIFO order
// and the total busy time is exact.
class CpuContention : public ::testing::TestWithParam<int>
{};

TEST_P(CpuContention, FifoAndExactAccounting)
{
    int n = GetParam();
    Simulator sim;
    CpuResource cpu(sim, "cpu");
    std::vector<int> finish;
    for (int i = 0; i < n; ++i) {
        cpu.post(usec(2), CpuCategory::kOther,
                 [&finish, i] { finish.push_back(i); });
    }
    sim.run();
    ASSERT_EQ(finish.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(finish[static_cast<size_t>(i)], i);
    }
    EXPECT_EQ(cpu.totalBusy(), usec(2) * n);
}

INSTANTIATE_TEST_SUITE_P(Counts, CpuContention,
                         ::testing::Values(1, 2, 16, 128));

} // namespace
} // namespace remora::sim
