/**
 * @file
 * Tests for the eager-push ("Write Requests Only", §5.1) path: server
 * pushes refreshed records into subscribed clerk caches with plain
 * remote writes; fresh clerks serve reads from local memory.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "dfs/backend.h"
#include "dfs/push_cache.h"
#include "dfs/server.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

struct PushFixture
{
    TwoNodeCluster cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    dfs::ClerkPushCache pushed;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::FileHandle file;

    PushFixture()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          pushed(cluster.engineA, clerkProc),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient)
    {
        auto f = store.createFile(store.root(), "pushed.bin", 16384);
        EXPECT_TRUE(f.ok());
        file = f.value();
        server.subscribe(pushed.handle(), pushed.geometry());
        server.start();
        cluster.sim.run();
    }
};

TEST(PushCache, ServerRefreshPropagatesAttrs)
{
    PushFixture f;
    EXPECT_FALSE(f.pushed.findAttr(f.file).has_value());
    f.server.cacheAttr(f.file);
    f.cluster.sim.run(); // the push travels
    auto attr = f.pushed.findAttr(f.file);
    ASSERT_TRUE(attr.has_value());
    EXPECT_EQ(attr->size, 16384u);
    EXPECT_GE(f.server.pushesIssued(), 1u);
}

TEST(PushCache, ServerRefreshPropagatesBlocks)
{
    PushFixture f;
    std::vector<uint8_t> out;
    EXPECT_FALSE(f.pushed.findBlock(f.file, 0, out));
    f.server.cacheBlock(f.file, 0);
    f.server.cacheBlock(f.file, 1);
    f.cluster.sim.run();
    ASSERT_TRUE(f.pushed.findBlock(f.file, 0, out));
    EXPECT_EQ(out, f.store.read(f.file, 0, dfs::kBlockBytes).value());
    ASSERT_TRUE(f.pushed.findBlock(f.file, 1, out));
    EXPECT_EQ(out,
              f.store.read(f.file, dfs::kBlockBytes, dfs::kBlockBytes)
                  .value());
}

TEST(PushCache, HyWriteUpdatesSubscribersAutomatically)
{
    PushFixture f;
    // A write through the server refreshes its areas, which pushes.
    std::vector<uint8_t> data(8192, 0x2f);
    auto w = f.hy.write(f.file, 0, data);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, w).ok());
    f.cluster.sim.run();

    std::vector<uint8_t> out;
    ASSERT_TRUE(f.pushed.findBlock(f.file, 0, out));
    EXPECT_EQ(out, data);
    auto attr = f.pushed.findAttr(f.file);
    ASSERT_TRUE(attr.has_value());
}

TEST(PushCache, LocalHitCostsNoWireTraffic)
{
    PushFixture f;
    f.server.cacheBlock(f.file, 0);
    f.cluster.sim.run();

    uint64_t cellsBefore = f.cluster.nodeA.nic().cellsTx();
    std::vector<uint8_t> out;
    ASSERT_TRUE(f.pushed.findBlock(f.file, 0, out));
    f.cluster.sim.run();
    EXPECT_EQ(f.cluster.nodeA.nic().cellsTx(), cellsBefore);
    EXPECT_EQ(f.pushed.hits(), 1u);
}

TEST(PushCache, CollidingSlotEvicts)
{
    // A tiny push cache: two blocks of different files mapping to the
    // same slot evict each other; the tag check keeps lookups honest.
    PushFixture f;
    dfs::PushCacheGeometry tinyGeo;
    tinyGeo.attrBuckets = 4;
    tinyGeo.dataSlots = 1;
    mem::Process &proc2 = f.cluster.nodeA.spawnProcess("clerk2");
    dfs::ClerkPushCache tiny(f.cluster.engineA, proc2, tinyGeo);
    f.server.subscribe(tiny.handle(), tinyGeo);

    auto g = f.store.createFile(f.store.root(), "other.bin", 8192);
    ASSERT_TRUE(g.ok());
    f.server.cacheBlock(f.file, 0);
    f.cluster.sim.run();
    std::vector<uint8_t> out;
    ASSERT_TRUE(tiny.findBlock(f.file, 0, out));

    f.server.cacheBlock(g.value(), 0); // same (only) slot
    f.cluster.sim.run();
    EXPECT_FALSE(tiny.findBlock(f.file, 0, out));
    EXPECT_TRUE(tiny.findBlock(g.value(), 0, out));
}

TEST(PushCache, MultipleSubscribersAllUpdated)
{
    PushFixture f;
    mem::Process &proc2 = f.cluster.nodeA.spawnProcess("clerk2");
    dfs::ClerkPushCache second(f.cluster.engineA, proc2);
    f.server.subscribe(second.handle(), second.geometry());

    f.server.cacheAttr(f.file);
    f.cluster.sim.run();
    EXPECT_TRUE(f.pushed.findAttr(f.file).has_value());
    EXPECT_TRUE(second.findAttr(f.file).has_value());
}

} // namespace
} // namespace remora
