/**
 * @file
 * RPC baseline tests: marshaling, the six-step transport, local RPC
 * cost accounting, and the Hybrid-1 mechanism.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "rpc/hybrid1.h"
#include "rpc/local_rpc.h"
#include "rpc/marshal.h"
#include "rpc/transport.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

// ----------------------------------------------------------------------
// Marshal
// ----------------------------------------------------------------------

TEST(Marshal, ScalarsAndStringsRoundTrip)
{
    rpc::Marshal m;
    m.putU32(7);
    m.putI32(-9);
    m.putBool(true);
    m.putU64(1ull << 40);
    m.putString("xyzzy");
    auto buf = m.take();
    EXPECT_EQ(buf.size() % 4, 0u);

    rpc::Unmarshal u(buf);
    EXPECT_EQ(u.getU32(), 7u);
    EXPECT_EQ(u.getI32(), -9);
    EXPECT_TRUE(u.getBool());
    EXPECT_EQ(u.getU64(), 1ull << 40);
    EXPECT_EQ(u.getString(), "xyzzy");
    EXPECT_TRUE(u.ok());
}

class OpaqueRoundTrip : public ::testing::TestWithParam<size_t>
{};

TEST_P(OpaqueRoundTrip, PadsToXdrAlignment)
{
    std::vector<uint8_t> data(GetParam());
    for (size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<uint8_t>(i);
    }
    rpc::Marshal m;
    m.putOpaque(data);
    EXPECT_EQ(m.size() % 4, 0u);
    EXPECT_EQ(m.size(), 4 + ((data.size() + 3) / 4) * 4);
    auto buf = m.take();
    rpc::Unmarshal u(buf);
    EXPECT_EQ(u.getOpaque(), data);
    EXPECT_TRUE(u.ok());
    EXPECT_EQ(u.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OpaqueRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 100, 8192));

TEST(Marshal, TruncatedDecodeSetsNotOk)
{
    rpc::Marshal m;
    m.putU32(3);
    auto buf = m.take();
    rpc::Unmarshal u(buf);
    u.getU32();
    u.getU64(); // past the end
    EXPECT_FALSE(u.ok());
}

// ----------------------------------------------------------------------
// RpcTransport
// ----------------------------------------------------------------------

struct RpcFixture
{
    TwoNodeCluster cluster;
    rpc::RpcTransport client;
    rpc::RpcTransport server;

    RpcFixture()
        : client(cluster.engineA.wire()), server(cluster.engineB.wire())
    {}
};

TEST(RpcTransport, EchoCallRoundTrip)
{
    RpcFixture f;
    f.server.registerProc(
        5, [&f](net::NodeId src,
                std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            EXPECT_EQ(src, 1);
            co_await f.cluster.nodeB.cpu().use(
                sim::usec(100), sim::CpuCategory::kProcExec);
            std::reverse(args.begin(), args.end());
            co_return args;
        });

    auto t = f.client.call(2, 5, {1, 2, 3, 4});
    auto reply = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply.value(), (std::vector<uint8_t>{4, 3, 2, 1}));
    EXPECT_EQ(f.client.stats().callsIssued.value(), 1u);
    EXPECT_EQ(f.server.stats().callsServed.value(), 1u);
}

TEST(RpcTransport, UnknownProcFails)
{
    RpcFixture f;
    auto t = f.client.call(2, 404, {});
    auto reply = runToCompletion(f.cluster.sim, t);
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(f.server.stats().badProc.value(), 1u);
}

TEST(RpcTransport, TimeoutWhenServerSilent)
{
    RpcFixture f;
    // No handler registered AND the server's transport is silenced by
    // replacing its wire handler.
    f.cluster.engineB.wire().setRpcHandler(
        [](net::NodeId, rmem::Message &&) {});
    auto t = f.client.call(2, 1, {}, sim::msec(5));
    auto reply = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
    EXPECT_EQ(f.client.stats().timeouts.value(), 1u);
}

TEST(RpcTransport, ConcurrentCallsMatchByXid)
{
    RpcFixture f;
    f.server.registerProc(
        1, [&f](net::NodeId,
                std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            // Slower for smaller payloads: replies return out of order.
            sim::Duration d = sim::usec(args[0] == 1 ? 500 : 50);
            co_await f.cluster.nodeB.cpu().use(d,
                                               sim::CpuCategory::kProcExec);
            co_return args;
        });
    auto t1 = f.client.call(2, 1, {1});
    auto t2 = f.client.call(2, 1, {2});
    auto r1 = runToCompletion(f.cluster.sim, t1);
    auto r2 = runToCompletion(f.cluster.sim, t2);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(r1.value()[0], 1);
    EXPECT_EQ(r2.value()[0], 2);
}

TEST(RpcTransport, ChargesControlTransferToBothCpus)
{
    RpcFixture f;
    f.server.registerProc(
        1, [](net::NodeId,
              std::vector<uint8_t>) -> sim::Task<std::vector<uint8_t>> {
            co_return std::vector<uint8_t>{};
        });
    auto t = f.client.call(2, 1, {});
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    f.cluster.sim.run();
    // Steps 1, 5, 6 land on the client; 2, 3, 4 (plus the socket-layer
    // payload copies) on the server.
    rpc::ThreadModelCosts costs;
    EXPECT_EQ(f.cluster.nodeA.cpu().busyIn(
                  sim::CpuCategory::kControlTransfer),
              costs.clientBlock + costs.clientPacket + costs.clientResume);
    sim::Duration serverCtl = f.cluster.nodeB.cpu().busyIn(
        sim::CpuCategory::kControlTransfer);
    sim::Duration base =
        costs.serverPacket + costs.serverDispatch + costs.serverReturn;
    EXPECT_GE(serverCtl, base);
    EXPECT_LE(serverCtl, base + sim::usec(5)); // tiny-body copies only
}

TEST(RpcTransport, LargeArgumentsTravelAsFrames)
{
    RpcFixture f;
    f.server.registerProc(
        9, [](net::NodeId,
              std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    std::vector<uint8_t> big(20000);
    for (size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<uint8_t>(i * 7);
    }
    auto t = f.client.call(2, 9, big);
    auto reply = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value(), big);
}

// ----------------------------------------------------------------------
// LocalRpc
// ----------------------------------------------------------------------

TEST(LocalRpc, ChargesBothTransitions)
{
    sim::Simulator sim;
    sim::CpuResource cpu(sim, "cpu");
    rpc::LocalRpcCosts costs{sim::usec(50), sim::usec(70)};
    rpc::LocalRpc lrpc(cpu, costs);
    EXPECT_EQ(lrpc.roundTripCost(), sim::usec(120));

    auto t = [](rpc::LocalRpc *l) -> sim::Task<void> {
        co_await l->enterCallee();
        co_await l->returnToCaller();
    }(&lrpc);
    sim.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(cpu.busyIn(sim::CpuCategory::kProcInvoke), sim::usec(120));
}

// ----------------------------------------------------------------------
// Hybrid-1
// ----------------------------------------------------------------------

struct HybridFixture
{
    TwoNodeCluster cluster;
    mem::Process &serverProc;
    rpc::Hybrid1Server server;
    mem::Process &clientProc;
    rpc::Hybrid1Client client;

    HybridFixture()
        : serverProc(cluster.nodeB.spawnProcess("server")),
          server(cluster.engineB, serverProc),
          clientProc(cluster.nodeA.spawnProcess("client")),
          client(cluster.engineA, clientProc,
                 server.requestSegmentHandle(), server.allocSlot())
    {}
};

TEST(Hybrid1, CallRoundTrip)
{
    HybridFixture f;
    f.server.setHandler(
        [&f](net::NodeId src,
             std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            EXPECT_EQ(src, 1);
            co_await f.cluster.nodeB.cpu().use(
                sim::usec(100), sim::CpuCategory::kProcExec);
            for (uint8_t &b : args) {
                b = static_cast<uint8_t>(b + 1);
            }
            co_return args;
        });
    f.server.start();

    auto t = f.client.call({10, 20, 30});
    auto reply = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply.value(), (std::vector<uint8_t>{11, 21, 31}));
    EXPECT_EQ(f.server.served(), 1u);
}

TEST(Hybrid1, SequentialCallsReuseSlot)
{
    HybridFixture f;
    f.server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    f.server.start();
    for (uint8_t i = 0; i < 5; ++i) {
        auto t = f.client.call({i});
        auto reply = runToCompletion(f.cluster.sim, t);
        ASSERT_TRUE(reply.ok());
        EXPECT_EQ(reply.value()[0], i);
    }
    EXPECT_EQ(f.server.served(), 5u);
}

TEST(Hybrid1, LargePayloadBothWays)
{
    HybridFixture f;
    f.server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            args.resize(args.size() * 2, 0xcc);
            co_return args;
        });
    f.server.start();
    std::vector<uint8_t> args(6000, 0x1b);
    auto t = f.client.call(args);
    auto reply = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().size(), 12000u);
}

TEST(Hybrid1, MultipleClientsDistinctSlots)
{
    TwoNodeCluster cluster;
    mem::Process &serverProc = cluster.nodeB.spawnProcess("server");
    rpc::Hybrid1Server server(cluster.engineB, serverProc);
    server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    server.start();

    mem::Process &p1 = cluster.nodeA.spawnProcess("c1");
    mem::Process &p2 = cluster.nodeA.spawnProcess("c2");
    rpc::Hybrid1Client c1(cluster.engineA, p1, server.requestSegmentHandle(),
                          server.allocSlot());
    rpc::Hybrid1Client c2(cluster.engineA, p2, server.requestSegmentHandle(),
                          server.allocSlot());

    auto t1 = c1.call({1});
    auto t2 = c2.call({2});
    auto r1 = runToCompletion(cluster.sim, t1);
    auto r2 = runToCompletion(cluster.sim, t2);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ(r1.value()[0], 1);
    EXPECT_EQ(r2.value()[0], 2);
}

TEST(Hybrid1, ServerPaysControlTransferPerCall)
{
    HybridFixture f;
    f.server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    f.server.start();
    f.cluster.sim.run();
    f.cluster.nodeB.cpu().resetAccounting();

    auto t = f.client.call({1});
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t).ok());
    f.cluster.sim.run();

    rmem::CostModel costs;
    EXPECT_GE(f.cluster.nodeB.cpu().busyIn(
                  sim::CpuCategory::kControlTransfer),
              costs.notifyDispatchCost);
}

TEST(Hybrid1, TimeoutWhenServerNotStarted)
{
    HybridFixture f;
    // Handler installed but dispatch loop never started.
    f.server.setHandler(
        [](net::NodeId,
           std::vector<uint8_t> args) -> sim::Task<std::vector<uint8_t>> {
            co_return args;
        });
    auto t = f.client.call({1}, sim::msec(5));
    auto reply = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(reply.status().code(), util::ErrorCode::kTimeout);
}

} // namespace
} // namespace remora
