/**
 * @file
 * Name-service tests: record codec, registry semantics, remote
 * resolution under every probe policy, refresh, and failure handling.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "names/clerk.h"
#include "names/name_record.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::TwoNodeCluster;

// ----------------------------------------------------------------------
// NameRecord codec
// ----------------------------------------------------------------------

class RecordRoundTrip : public ::testing::TestWithParam<std::string>
{};

TEST_P(RecordRoundTrip, EncodeDecode)
{
    names::NameRecord rec;
    rec.flag = names::RecordFlag::kValid;
    rec.node = 42;
    rec.descriptor = 7;
    rec.rights = rmem::Rights::kRead | rmem::Rights::kCas;
    rec.generation = 12345;
    rec.size = 0xabcdef01;
    rec.name = GetParam();

    std::vector<uint8_t> buf(names::NameRecord::kBytes);
    rec.encode(buf);
    names::NameRecord out = names::NameRecord::decode(buf);
    EXPECT_EQ(out.flag, rec.flag);
    EXPECT_EQ(out.node, rec.node);
    EXPECT_EQ(out.descriptor, rec.descriptor);
    EXPECT_EQ(out.rights, rec.rights);
    EXPECT_EQ(out.generation, rec.generation);
    EXPECT_EQ(out.size, rec.size);
    EXPECT_EQ(out.name, rec.name);

    // The prefix alone matches by hash.
    uint64_t hash = 0;
    names::NameRecord prefix = names::NameRecord::decodePrefix(buf, &hash);
    EXPECT_EQ(prefix.node, rec.node);
    EXPECT_EQ(hash, names::NameRecord::nameHashOf(rec.name));
}

INSTANTIATE_TEST_SUITE_P(
    Names, RecordRoundTrip,
    ::testing::Values("", "a", "db.index",
                      "a-name-that-uses-all-39-characters-....",
                      "unicode\xc3\xa9"));

TEST(RecordCodec, PrefixFitsOneCellReply)
{
    // 6-byte read-response header + prefix must fit one cell payload.
    EXPECT_LE(6u + names::NameRecord::kPrefixBytes, 48u);
}

// ----------------------------------------------------------------------
// Clerk fixture
// ----------------------------------------------------------------------

struct NamesFixture
{
    TwoNodeCluster cluster;
    names::NameClerk clerkA;
    names::NameClerk clerkB;
    mem::Process &userA;

    explicit NamesFixture(const names::NameClerkParams &paramsB = {})
        : clerkA(cluster.engineA), clerkB(cluster.engineB, paramsB),
          userA(cluster.nodeA.spawnProcess("userA"))
    {
        clerkA.addPeer(2);
        clerkB.addPeer(1);
        cluster.sim.run();
    }

    util::Result<rmem::ImportedSegment>
    exportOnA(const std::string &name, uint32_t size = 4096)
    {
        mem::Vaddr base = userA.space().allocRegion(size);
        auto t = clerkA.exportByName(&userA, base, size, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kConditional, name);
        return runToCompletion(cluster.sim, t);
    }
};

// ----------------------------------------------------------------------
// Export / import / revoke basics
// ----------------------------------------------------------------------

TEST(NameClerk, ExportThenHintedImport)
{
    NamesFixture f;
    auto exp = f.exportOnA("alpha.seg");
    ASSERT_TRUE(exp.ok());

    auto t = f.clerkB.import("alpha.seg", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(imp.value().node, 1);
    EXPECT_EQ(imp.value().descriptor, exp.value().descriptor);
    EXPECT_EQ(imp.value().generation, exp.value().generation);
    EXPECT_EQ(imp.value().size, 4096u);
    EXPECT_EQ(f.clerkB.stats().remoteReads.value(), 1u);
}

TEST(NameClerk, SecondImportHitsCache)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("x").ok());
    auto t1 = f.clerkB.import("x", 1);
    runToCompletion(f.cluster.sim, t1);
    uint64_t reads = f.clerkB.stats().remoteReads.value();
    auto t2 = f.clerkB.import("x", 1);
    auto imp = runToCompletion(f.cluster.sim, t2);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(f.clerkB.stats().remoteReads.value(), reads);
    EXPECT_EQ(f.clerkB.stats().cacheHits.value(), 1u);
}

TEST(NameClerk, LocalNamesResolveWithoutWire)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("local.seg").ok());
    auto t = f.clerkA.import("local.seg", std::nullopt);
    auto imp = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(f.clerkA.stats().localHits.value(), 1u);
    EXPECT_EQ(f.clerkA.stats().remoteReads.value(), 0u);
}

TEST(NameClerk, ImportWithoutHintSweepsPeers)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("sweep.me").ok());
    auto t = f.clerkB.import("sweep.me", std::nullopt);
    auto imp = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(imp.value().node, 1);
}

TEST(NameClerk, AbsentNameIsDefinitiveNotFound)
{
    NamesFixture f;
    auto t = f.clerkB.import("never.exported", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    EXPECT_FALSE(imp.ok());
    EXPECT_EQ(imp.status().code(), util::ErrorCode::kNotFound);
    // One probe of an empty bucket answers definitively.
    EXPECT_EQ(f.clerkB.stats().remoteReads.value(), 1u);
}

TEST(NameClerk, DuplicateExportRejected)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("dup").ok());
    auto second = f.exportOnA("dup");
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), util::ErrorCode::kAlreadyExists);
}

TEST(NameClerk, NameTooLongRejected)
{
    NamesFixture f;
    auto r = f.exportOnA(std::string(names::kMaxNameLen + 1, 'z'));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(NameClerk, RevokeMakesHandleStaleAndNameGone)
{
    NamesFixture f;
    auto exp = f.exportOnA("victim");
    ASSERT_TRUE(exp.ok());
    auto t1 = f.clerkB.import("victim", 1);
    auto imp = runToCompletion(f.cluster.sim, t1);
    ASSERT_TRUE(imp.ok());

    auto tr = f.clerkA.revoke("victim");
    ASSERT_TRUE(runToCompletion(f.cluster.sim, tr).ok());

    // The segment handle no longer works.
    auto read = f.cluster.engineB.read(
        imp.value(), 0, names::NameClerk::kScratchDescriptor, 0, 16, false,
        sim::msec(10));
    auto out = runToCompletion(f.cluster.sim, read);
    EXPECT_FALSE(out.status.ok());

    // A forced remote lookup no longer finds the name.
    auto t2 = f.clerkB.import("victim", 1, /*forceRemote=*/true);
    auto gone = runToCompletion(f.cluster.sim, t2);
    EXPECT_EQ(gone.status().code(), util::ErrorCode::kNotFound);
}

TEST(NameClerk, RevokeOfUnknownNameFails)
{
    NamesFixture f;
    auto t = f.clerkA.revoke("no.such");
    EXPECT_EQ(runToCompletion(f.cluster.sim, t).code(),
              util::ErrorCode::kNotFound);
}

TEST(NameClerk, NameCanBeReExportedAfterRevoke)
{
    NamesFixture f;
    auto e1 = f.exportOnA("cycle");
    ASSERT_TRUE(e1.ok());
    auto tr = f.clerkA.revoke("cycle");
    ASSERT_TRUE(runToCompletion(f.cluster.sim, tr).ok());
    auto e2 = f.exportOnA("cycle");
    ASSERT_TRUE(e2.ok());
    EXPECT_NE(e2.value().generation, e1.value().generation);

    auto t = f.clerkB.import("cycle", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(imp.value().generation, e2.value().generation);
}

// ----------------------------------------------------------------------
// Collisions and probe policies
// ----------------------------------------------------------------------

TEST(NameClerk, CollisionsResolveByProbing)
{
    // A tiny registry forces collisions among a handful of names.
    names::NameClerkParams tiny;
    tiny.buckets = 8;
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node a(sim, 1, "a"), b(sim, 2, "b");
    rmem::RmemEngine ea(a), eb(b);
    network.addHost(1, a.nic());
    network.addHost(2, b.nic());
    network.wireDirect();
    names::NameClerk clerkA(ea, tiny), clerkB(eb, tiny);
    clerkA.addPeer(2);
    clerkB.addPeer(1);
    mem::Process &user = a.spawnProcess("user");

    // Export six names into eight buckets: collisions guaranteed often.
    for (int i = 0; i < 6; ++i) {
        mem::Vaddr base = user.space().allocRegion(4096);
        auto t = clerkA.exportByName(&user, base, 4096, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kNever,
                                     "n" + std::to_string(i));
        ASSERT_TRUE(runToCompletion(sim, t).ok());
    }
    // Every name must be importable from B regardless of collisions.
    for (int i = 0; i < 6; ++i) {
        auto t = clerkB.import("n" + std::to_string(i), 1);
        auto imp = runToCompletion(sim, t);
        ASSERT_TRUE(imp.ok()) << "n" << i << ": "
                              << imp.status().toString();
    }
    // More reads than names implies multi-probe resolutions happened.
    EXPECT_GE(clerkB.stats().remoteProbes.value(), 6u);
}

TEST(NameClerk, ControlTransferPolicyResolves)
{
    names::NameClerkParams p;
    p.policy = names::ProbePolicy::kControlOnly;
    NamesFixture f(p);
    ASSERT_TRUE(f.exportOnA("ct.seg").ok());
    auto t = f.clerkB.import("ct.seg", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(f.clerkB.stats().controlTransfers.value(), 1u);
    EXPECT_EQ(f.clerkB.stats().remoteReads.value(), 0u);
    EXPECT_EQ(imp.value().size, 4096u);
}

TEST(NameClerk, ControlTransferAbsentName)
{
    names::NameClerkParams p;
    p.policy = names::ProbePolicy::kControlOnly;
    NamesFixture f(p);
    auto t = f.clerkB.import("ghost", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(imp.status().code(), util::ErrorCode::kNotFound);
}

TEST(NameClerk, ProbeThenControlFallsBackAfterBudget)
{
    names::NameClerkParams p;
    p.policy = names::ProbePolicy::kProbeThenControl;
    p.probeLimit = 2;
    p.buckets = 4; // dense: long probe chains
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node a(sim, 1, "a"), b(sim, 2, "b");
    rmem::RmemEngine ea(a), eb(b);
    network.addHost(1, a.nic());
    network.addHost(2, b.nic());
    network.wireDirect();
    names::NameClerk clerkA(ea, p), clerkB(eb, p);
    clerkA.addPeer(2);
    clerkB.addPeer(1);
    mem::Process &user = a.spawnProcess("user");
    for (int i = 0; i < 4; ++i) {
        mem::Vaddr base = user.space().allocRegion(4096);
        auto t = clerkA.exportByName(&user, base, 4096, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kNever,
                                     "f" + std::to_string(i));
        ASSERT_TRUE(runToCompletion(sim, t).ok());
    }
    // With the table full, some lookup exhausts its 2-probe budget and
    // succeeds via control transfer instead.
    for (int i = 0; i < 4; ++i) {
        auto t = clerkB.import("f" + std::to_string(i), 1, true);
        auto imp = runToCompletion(sim, t);
        ASSERT_TRUE(imp.ok());
    }
    EXPECT_GT(clerkB.stats().controlTransfers.value(), 0u);
}

TEST(NameClerk, RegistryFullReportsResource)
{
    names::NameClerkParams p;
    p.buckets = 2;
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node a(sim, 1, "a"), b(sim, 2, "b");
    rmem::RmemEngine ea(a), eb(b);
    network.addHost(1, a.nic());
    network.addHost(2, b.nic());
    network.wireDirect();
    names::NameClerk clerkA(ea, p);
    mem::Process &user = a.spawnProcess("user");
    util::Status last;
    for (int i = 0; i < 3; ++i) {
        mem::Vaddr base = user.space().allocRegion(4096);
        auto t = clerkA.exportByName(&user, base, 4096, rmem::Rights::kAll,
                                     rmem::NotifyPolicy::kNever,
                                     "r" + std::to_string(i));
        last = runToCompletion(sim, t).status();
    }
    EXPECT_EQ(last.code(), util::ErrorCode::kResource);
}

// ----------------------------------------------------------------------
// Refresh
// ----------------------------------------------------------------------

TEST(NameClerk, RefreshPurgesRevokedImports)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("fresh").ok());
    auto t1 = f.clerkB.import("fresh", 1);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t1).ok());

    auto tr = f.clerkA.revoke("fresh");
    ASSERT_TRUE(runToCompletion(f.cluster.sim, tr).ok());

    auto t2 = f.clerkB.refresh();
    runToCompletion(f.cluster.sim, t2);
    EXPECT_EQ(f.clerkB.stats().refreshPurges.value(), 1u);

    // The cache no longer serves the dead name.
    auto t3 = f.clerkB.import("fresh", 1);
    EXPECT_EQ(runToCompletion(f.cluster.sim, t3).status().code(),
              util::ErrorCode::kNotFound);
}

TEST(NameClerk, RefreshKeepsLiveImports)
{
    NamesFixture f;
    ASSERT_TRUE(f.exportOnA("alive").ok());
    auto t1 = f.clerkB.import("alive", 1);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t1).ok());
    auto t2 = f.clerkB.refresh();
    runToCompletion(f.cluster.sim, t2);
    EXPECT_EQ(f.clerkB.stats().refreshPurges.value(), 0u);
    auto t3 = f.clerkB.import("alive", 1);
    EXPECT_TRUE(runToCompletion(f.cluster.sim, t3).ok());
    EXPECT_GE(f.clerkB.stats().cacheHits.value(), 1u);
}

TEST(NameClerk, RefreshDetectsGenerationChange)
{
    NamesFixture f;
    auto e1 = f.exportOnA("regen");
    ASSERT_TRUE(e1.ok());
    auto t1 = f.clerkB.import("regen", 1);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, t1).ok());

    // Revoke and immediately re-export under the same name.
    auto tr = f.clerkA.revoke("regen");
    ASSERT_TRUE(runToCompletion(f.cluster.sim, tr).ok());
    auto e2 = f.exportOnA("regen");
    ASSERT_TRUE(e2.ok());

    auto t2 = f.clerkB.refresh();
    runToCompletion(f.cluster.sim, t2);
    // The stale cached generation was purged; a new import sees the
    // fresh generation.
    auto t3 = f.clerkB.import("regen", 1);
    auto imp = runToCompletion(f.cluster.sim, t3);
    ASSERT_TRUE(imp.ok());
    EXPECT_EQ(imp.value().generation, e2.value().generation);
}

// ----------------------------------------------------------------------
// Failure handling (§3.7)
// ----------------------------------------------------------------------

TEST(NameClerk, SilentPeerTimesOut)
{
    names::NameClerkParams p;
    p.readTimeout = sim::msec(5);
    NamesFixture f(p);
    ASSERT_TRUE(f.exportOnA("doomed").ok());
    // Node A's kernel goes silent ("crash").
    f.cluster.engineA.wire().setRmemHandler(
        [](net::NodeId, rmem::Message &&) {});
    auto t = f.clerkB.import("doomed", 1);
    auto imp = runToCompletion(f.cluster.sim, t);
    EXPECT_EQ(imp.status().code(), util::ErrorCode::kTimeout);
}

TEST(NameClerk, UnknownPeerRejected)
{
    NamesFixture f;
    auto t = f.clerkB.import("whatever", 99);
    auto imp = runToCompletion(f.cluster.sim, t);
    EXPECT_FALSE(imp.ok());
}

} // namespace
} // namespace remora
