/**
 * @file
 * Token-coherence tests (§5.1's Calypso discussion): CAS acquire and
 * release, local token caching, control-transfer revocation, delayed
 * revocation during use, and slot sharing.
 */
#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "dfs/token.h"

namespace remora {
namespace {

using test::runToCompletion;
using test::SwitchedCluster;

struct TokenFixture
{
    SwitchedCluster cluster{3};
    mem::Process &serverProc;
    dfs::TokenArea area;
    mem::Process &proc1;
    mem::Process &proc2;
    dfs::TokenClient client1;
    dfs::TokenClient client2;

    TokenFixture()
        : serverProc(cluster.nodes[0]->spawnProcess("server")),
          area(*cluster.engines[0], serverProc),
          proc1(cluster.nodes[1]->spawnProcess("clerk1")),
          proc2(cluster.nodes[2]->spawnProcess("clerk2")),
          client1(*cluster.engines[1], proc1, area.handle()),
          client2(*cluster.engines[2], proc2, area.handle())
    {
        cluster.sim.run(); // directory registrations land
    }
};

TEST(Token, AcquireReleaseRoundTrip)
{
    TokenFixture f;
    auto a = f.client1.acquire(42);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a).ok());
    EXPECT_TRUE(f.client1.holds(42));
    f.cluster.sim.run();
    EXPECT_EQ(f.area.holderOf(42), 3u); // client1 is node id 2, tag id+1

    auto r = f.client1.release(42);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, r).ok());
    EXPECT_FALSE(f.client1.holds(42));
    f.cluster.sim.run();
    EXPECT_EQ(f.area.holderOf(42), 0u);
}

TEST(Token, CachedTokenCostsNoWireTraffic)
{
    TokenFixture f;
    auto a1 = f.client1.acquire(7);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());
    f.cluster.sim.run();
    uint64_t cells = f.cluster.nodes[1]->nic().cellsTx();
    for (int i = 0; i < 5; ++i) {
        auto a = f.client1.acquire(7);
        ASSERT_TRUE(runToCompletion(f.cluster.sim, a).ok());
    }
    EXPECT_EQ(f.cluster.nodes[1]->nic().cellsTx(), cells);
    EXPECT_EQ(f.client1.localHits(), 5u);
}

TEST(Token, ContentionRevokesIdleHolder)
{
    TokenFixture f;
    auto a1 = f.client1.acquire(99);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());

    // Client 2 wants the same token; client 1 is idle, so the
    // revocation succeeds and client 2 wins on retry.
    auto a2 = f.client2.acquire(99);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a2).ok());
    EXPECT_TRUE(f.client2.holds(99));
    f.cluster.sim.run(); // the holder's release CAS response lands
    EXPECT_FALSE(f.client1.holds(99));
    EXPECT_GE(f.client2.revocationsSent(), 1u);
    EXPECT_GE(f.client1.revocationsHonoured(), 1u);
}

TEST(Token, RevocationDeferredWhileBusy)
{
    TokenFixture f;
    auto a1 = f.client1.acquire(5);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());
    f.client1.beginUse(5); // writer mid-operation

    // The contender's acquire stalls while the holder is busy.
    auto a2 = f.client2.acquire(5);
    f.cluster.sim.run(f.cluster.sim.now() + sim::msec(3));
    EXPECT_FALSE(a2.done());
    EXPECT_TRUE(f.client1.holds(5));

    // Finishing the critical section honours the deferred revocation.
    f.client1.endUse(5);
    auto s = runToCompletion(f.cluster.sim, a2);
    ASSERT_TRUE(s.ok()) << s.toString();
    EXPECT_TRUE(f.client2.holds(5));
    f.cluster.sim.run();
    EXPECT_FALSE(f.client1.holds(5));
}

TEST(Token, AcquireTimesOutAgainstStuckHolder)
{
    TokenFixture f;
    dfs::TokenParams fast;
    fast.acquireTimeout = sim::msec(3);
    dfs::TokenClient impatient(*f.cluster.engines[2], f.proc2,
                               f.area.handle(), fast);
    f.cluster.sim.run();

    auto a1 = f.client1.acquire(11);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());
    f.client1.beginUse(11); // never ends

    auto a2 = impatient.acquire(11);
    EXPECT_EQ(runToCompletion(f.cluster.sim, a2).code(),
              util::ErrorCode::kTimeout);
}

TEST(Token, ReleaseWithoutHoldRejected)
{
    TokenFixture f;
    auto r = f.client1.release(123);
    EXPECT_EQ(runToCompletion(f.cluster.sim, r).code(),
              util::ErrorCode::kInvalidArgument);
}

TEST(Token, DistinctKeysDistinctSlotsCoexist)
{
    TokenFixture f;
    // Find two keys in different slots.
    uint64_t k1 = 1, k2 = 2;
    dfs::TokenParams p;
    while (dfs::tokenSlotOf(k2, p.tokenSlots) ==
           dfs::tokenSlotOf(k1, p.tokenSlots)) {
        ++k2;
    }
    auto a1 = f.client1.acquire(k1);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());
    auto a2 = f.client2.acquire(k2);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a2).ok());
    EXPECT_TRUE(f.client1.holds(k1));
    EXPECT_TRUE(f.client2.holds(k2));
}

TEST(Token, SlotSharingKeysSerialize)
{
    TokenFixture f;
    // Two keys that collide in the direct-mapped table share a token:
    // coarser granularity, still correct.
    dfs::TokenParams p;
    uint64_t k1 = 1000, k2 = k1 + 1;
    while (dfs::tokenSlotOf(k2, p.tokenSlots) !=
           dfs::tokenSlotOf(k1, p.tokenSlots)) {
        ++k2;
    }
    auto a1 = f.client1.acquire(k1);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a1).ok());
    // Client 2 contends for the colliding key; revocation strips
    // client 1 of k1's slot and client 2 proceeds.
    auto a2 = f.client2.acquire(k2);
    ASSERT_TRUE(runToCompletion(f.cluster.sim, a2).ok());
    f.cluster.sim.run();
    EXPECT_FALSE(f.client1.holds(k1));
    EXPECT_TRUE(f.client2.holds(k2));
}

} // namespace
} // namespace remora
