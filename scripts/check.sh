#!/usr/bin/env bash
#
# Tier-1 verification and correctness gates.
#
#   scripts/check.sh            # RelWithDebInfo build + full test suite
#   scripts/check.sh --lint     # + remora-lint over src/, tests/, tools/, bench/
#   scripts/check.sh --tidy     # + clang-tidy profile (.clang-tidy)
#   scripts/check.sh --format   # + clang-format dry run (.clang-format)
#   scripts/check.sh --asan     # + ASan/UBSan suite in build-asan/
#   scripts/check.sh --race     # + happens-before race gate, 8 seeds
#   scripts/check.sh --mc       # + bounded schedule exploration gate
#   scripts/check.sh --faults   # + lossy-link delivery gate, 8 seeds
#   scripts/check.sh --bench    # + bench regression gate vs baselines
#   scripts/check.sh --all      # every gate above
#
# Gates are additive: the primary build and test suite always run, and
# each flag layers one more check on top. --tidy and --format need the
# LLVM binaries; when they are not installed the gate is skipped with a
# notice (and counted as skipped in the summary) instead of failing, so
# CI images without clang still get the full remora-lint pass, which
# carries the project-specific rules.
#
# The sanitizer pass uses a separate build tree (build-asan/) so it
# never perturbs the primary build directory.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

DO_LINT=0
DO_TIDY=0
DO_FORMAT=0
DO_ASAN=0
DO_RACE=0
DO_MC=0
DO_FAULTS=0
DO_BENCH=0
for arg in "$@"; do
    case "${arg}" in
        --lint) DO_LINT=1 ;;
        --tidy) DO_TIDY=1 ;;
        --format) DO_FORMAT=1 ;;
        --asan) DO_ASAN=1 ;;
        --race) DO_RACE=1 ;;
        --mc) DO_MC=1 ;;
        --faults) DO_FAULTS=1 ;;
        --bench) DO_BENCH=1 ;;
        --all) DO_LINT=1; DO_TIDY=1; DO_FORMAT=1; DO_ASAN=1; DO_RACE=1; DO_MC=1; DO_FAULTS=1; DO_BENCH=1 ;;
        -h|--help)
            sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "check.sh: unknown flag '${arg}' (try --help)" >&2
            exit 2
            ;;
    esac
done

GATES_RUN=()

run_suite() {
    local dir="$1"
    shift
    cmake -B "${dir}" -S . "$@"
    cmake --build "${dir}" -j "${JOBS}"
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

# Leak detection stays ON. Only the eternal server-loop coroutine frames
# (parked awaiting the next request at process exit) are excused, each
# by name, in scripts/lsan.supp — a real leak anywhere else fails the
# --asan gate.
export LSAN_OPTIONS="suppressions=${PWD}/scripts/lsan.supp${LSAN_OPTIONS:+:${LSAN_OPTIONS}}"

echo "== tier-1: primary build and tests =="
run_suite build
GATES_RUN+=("build+tests")

if [[ "${DO_LINT}" == 1 ]]; then
    echo
    echo "== lint: remora-lint over src/, tests/, tools/, bench/ =="
    # Everything lintable, including the drivers and benches (with the
    # relaxed per-path profile optionsForPath() gives them), plus the
    # flow rules and the include-layer check over the src/ DAG. The
    # one-line summary carries the flow-finding and layer-violation
    # counts the gate acts on.
    cmake --build build -j "${JOBS}" --target remora_lint
    ./build/tools/remora_lint/remora_lint --root . src tests tools bench
    GATES_RUN+=("lint")
fi

if [[ "${DO_TIDY}" == 1 ]]; then
    echo
    echo "== tidy: clang-tidy (.clang-tidy profile) =="
    if command -v clang-tidy >/dev/null 2>&1; then
        # compile_commands.json is exported by the primary configure.
        git ls-files 'src/**/*.cc' 'tools/**/*.cc' |
            xargs -P "${JOBS}" -n 4 clang-tidy -p build --quiet
        GATES_RUN+=("tidy")
    else
        echo "clang-tidy not installed; skipping (remora-lint carries" \
             "the project-specific rules)"
        GATES_RUN+=("tidy[skipped]")
    fi
fi

if [[ "${DO_FORMAT}" == 1 ]]; then
    echo
    echo "== format: clang-format dry run (.clang-format) =="
    if command -v clang-format >/dev/null 2>&1; then
        git ls-files '*.h' '*.cc' '*.cpp' |
            xargs -P "${JOBS}" -n 8 clang-format --dry-run --Werror
        GATES_RUN+=("format")
    else
        echo "clang-format not installed; skipping"
        GATES_RUN+=("format[skipped]")
    fi
fi

if [[ "${DO_ASAN}" == 1 ]]; then
    echo
    echo "== sanitizer pass: ASan + UBSan + LSan =="
    run_suite build-asan -DREMORA_SANITIZE=ON -DREMORA_BUILD_BENCH=OFF
    GATES_RUN+=("asan")
fi

if [[ "${DO_RACE}" == 1 ]]; then
    echo
    echo "== race: happens-before detection over perturbed schedules =="
    cmake --build build -j "${JOBS}" --target race_probe
    RACE_SEEDS=(0 1 2 3 4 5 6 7)
    RACE_TOTAL=0
    # Per-seed probe: a race-clean workload under the armed detector.
    # Each seed prints its digest (distinct per seed, replayable) and
    # race count; any race fails the probe and therefore the gate.
    for seed in "${RACE_SEEDS[@]}"; do
        line="$(./build/tools/race_probe/race_probe "${seed}")" || {
            echo "${line}"
            echo "race gate: probe reported races at seed ${seed}" >&2
            exit 1
        }
        echo "  ${line}"
        races="$(sed -n 's/.*races=\([0-9]*\).*/\1/p' <<<"${line}")"
        RACE_TOTAL=$((RACE_TOTAL + races))
    done
    # Per-seed armed suite: every test labeled `race` must stay green
    # with the detector fatal (REMORA_RACE=1) under that schedule.
    for seed in "${RACE_SEEDS[@]}"; do
        (cd build && REMORA_RACE=1 REMORA_PERTURB="${seed}" \
            ctest -L race --output-on-failure -j "${JOBS}")
    done
    GATES_RUN+=("race[seeds=${#RACE_SEEDS[@]} races=${RACE_TOTAL}]")
fi

if [[ "${DO_MC}" == 1 ]]; then
    echo
    echo "== mc: bounded schedule exploration over the clean registry =="
    # The explorer's own unit tests first (seeded deadlock / lost-wakeup
    # fixtures, replay determinism, reduction-beats-brute-force), then a
    # bounded sweep of every clean workload in remora_mc's registry.
    # remora_mc exits nonzero on any finding in a clean workload, so the
    # gate fails the moment exploration uncovers a deadlock, lost
    # wakeup, or leaked coroutine in shipping code paths.
    cmake --build build -j "${JOBS}" --target remora_mc
    (cd build && ctest -L mc --output-on-failure -j "${JOBS}")
    MC_OUT="$(./build/tools/remora_mc/remora_mc --max-schedules 60)" || {
        echo "${MC_OUT}"
        echo "mc gate: exploration found a bug in a clean workload" >&2
        exit 1
    }
    echo "${MC_OUT}"
    MC_SUMMARY="$(grep '^mc ' <<<"${MC_OUT}" | tail -1)"
    MC_W="$(sed -n 's/.*workloads=\([0-9]*\).*/\1/p' <<<"${MC_SUMMARY}")"
    MC_S="$(sed -n 's/.*schedules=\([0-9]*\).*/\1/p' <<<"${MC_SUMMARY}")"
    MC_F="$(sed -n 's/.*findings=\([0-9]*\).*/\1/p' <<<"${MC_SUMMARY}")"
    GATES_RUN+=("mc[workloads=${MC_W} schedules=${MC_S} findings=${MC_F}]")
fi

if [[ "${DO_FAULTS}" == 1 ]]; then
    echo
    echo "== faults: end-to-end delivery audit under injected loss =="
    cmake --build build -j "${JOBS}" --target fault_probe
    FAULT_SEEDS=(0 1 2 3 4 5 6 7)
    FAULT_DROP=0.05
    FAULT_DROPS=0
    # Per-seed probe: notified writes and read-backs cross a link that
    # drops FAULT_DROP of all cells. Every user-visible op must land
    # exactly once (undelivered=0, no abandonment, nothing wedged) or
    # the probe exits nonzero and the gate fails. The digest confirms
    # each seed ran a distinct, replayable lossy schedule.
    for seed in "${FAULT_SEEDS[@]}"; do
        line="$(./build/tools/fault_probe/fault_probe "${seed}" "${FAULT_DROP}")" || {
            echo "${line}"
            echo "faults gate: lost user-visible ops at seed ${seed}" >&2
            exit 1
        }
        echo "  ${line}"
        drops="$(sed -n 's/.*drops=\([0-9]*\).*/\1/p' <<<"${line}")"
        FAULT_DROPS=$((FAULT_DROPS + drops))
    done
    GATES_RUN+=("faults[seeds=${#FAULT_SEEDS[@]} drops=${FAULT_DROPS} undelivered=0]")
fi

if [[ "${DO_BENCH}" == 1 ]]; then
    echo
    echo "== bench: regression gate vs bench/baselines =="
    # Rerun the smoke benches (they rewrite BENCH_*.json in build/bench/,
    # atomically), then compare every baselined report. The simulation is
    # deterministic, so the tolerances guard against real model changes,
    # not machine noise; an intended change is shipped by refreshing the
    # baseline file alongside it.
    cmake --build build -j "${JOBS}" --target bench_diff
    (cd build && ctest -L bench_smoke --output-on-failure -j "${JOBS}")
    # schedules/sec is the one wall-clock metric in the baselines; give
    # it room for machine variance while still catching order-of-
    # magnitude explorer regressions — and it only regresses downward,
    # so mark it higher-is-better. The vectored-ops speedup ratios get
    # the same treatment: a batch getting even faster than baseline is
    # a win to fold in at the next refresh, not a gate failure.
    # The linter's tree pass is wall-clock over a tree that grows with
    # every PR: its throughput rates get the same wide berth as the
    # explorer rate. Its corpus.findings count is deterministic and
    # stays at the default tolerance.
    # The fault-ablation rows under loss measure recovery tails, which
    # swing with any retransmit-timing change: their latencies are
    # lower-is-better (an earlier repair is a win, not a regression)
    # and their drop/retransmit counts get a wide berth — the bench's
    # own delivery and repaired-by-retransmit checks carry the
    # qualitative gate. The 0% row stays at the default tolerance: it
    # is the machinery-off hot-path guard and must not move at all.
    ./build/tools/bench_diff/bench_diff --tol 5 \
        --tol-metric drop_2.write_round_us=30 \
        --tol-metric drop_2.read_round_us=30 \
        --tol-metric drop_5.write_round_us=30 \
        --tol-metric drop_5.read_round_us=30 \
        --tol-metric drop_10.write_round_us=30 \
        --tol-metric drop_10.read_round_us=30 \
        --tol-metric drop_2.drops=60 \
        --tol-metric drop_2.retransmits=60 \
        --tol-metric drop_5.drops=60 \
        --tol-metric drop_5.retransmits=60 \
        --tol-metric drop_10.drops=60 \
        --tol-metric drop_10.retransmits=60 \
        --dir-metric drop_2.write_round_us=down \
        --dir-metric drop_2.read_round_us=down \
        --dir-metric drop_5.write_round_us=down \
        --dir-metric drop_5.read_round_us=down \
        --dir-metric drop_10.write_round_us=down \
        --dir-metric drop_10.read_round_us=down \
        --tol-metric explore.schedules_per_sec=90 \
        --tol-metric tree.files_per_sec=90 \
        --tol-metric corpus.files_per_sec=90 \
        --dir-metric explore.schedules_per_sec=up \
        --dir-metric tree.files_per_sec=up \
        --dir-metric corpus.files_per_sec=up \
        --dir-metric write_x4.latency_speedup=up \
        --dir-metric write_x8.latency_speedup=up \
        --dir-metric write_x16.latency_speedup=up \
        --dir-metric read_x4.latency_speedup=up \
        --dir-metric read_x8.latency_speedup=up \
        bench/baselines build/bench
    GATES_RUN+=("bench")
fi

echo
echo "check.sh: all green — gates: ${GATES_RUN[*]}"
