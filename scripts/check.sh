#!/usr/bin/env bash
#
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check.sh            # RelWithDebInfo build + ctest
#   scripts/check.sh --asan     # additionally build+test with ASan/UBSan
#
# The sanitizer pass uses a separate build tree (build-asan/) so it
# never perturbs the primary build directory.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
    local dir="$1"
    shift
    cmake -B "${dir}" -S . "$@"
    cmake --build "${dir}" -j "${JOBS}"
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

# Server loops are eternal coroutines by design: their frames are still
# suspended (awaiting the next request) when a test process exits, and
# LeakSanitizer reports each parked frame. Everything else ASan/UBSan
# can catch stays enabled.
export ASAN_OPTIONS="detect_leaks=0${ASAN_OPTIONS:+:${ASAN_OPTIONS}}"

echo "== tier-1: primary build and tests =="
run_suite build

if [[ "${1:-}" == "--asan" ]]; then
    echo
    echo "== sanitizer pass: ASan + UBSan =="
    run_suite build-asan -DREMORA_SANITIZE=ON -DREMORA_BUILD_BENCH=OFF
fi

echo
echo "check.sh: all green"
