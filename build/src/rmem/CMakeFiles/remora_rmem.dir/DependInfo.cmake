
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rmem/descriptor.cc" "src/rmem/CMakeFiles/remora_rmem.dir/descriptor.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/descriptor.cc.o.d"
  "/root/repo/src/rmem/engine.cc" "src/rmem/CMakeFiles/remora_rmem.dir/engine.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/engine.cc.o.d"
  "/root/repo/src/rmem/notification.cc" "src/rmem/CMakeFiles/remora_rmem.dir/notification.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/notification.cc.o.d"
  "/root/repo/src/rmem/protocol.cc" "src/rmem/CMakeFiles/remora_rmem.dir/protocol.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/protocol.cc.o.d"
  "/root/repo/src/rmem/sync.cc" "src/rmem/CMakeFiles/remora_rmem.dir/sync.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/sync.cc.o.d"
  "/root/repo/src/rmem/wire.cc" "src/rmem/CMakeFiles/remora_rmem.dir/wire.cc.o" "gcc" "src/rmem/CMakeFiles/remora_rmem.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/remora_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/remora_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/remora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/remora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
