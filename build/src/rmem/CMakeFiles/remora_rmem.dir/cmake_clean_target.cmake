file(REMOVE_RECURSE
  "libremora_rmem.a"
)
