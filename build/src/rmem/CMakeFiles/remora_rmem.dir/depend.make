# Empty dependencies file for remora_rmem.
# This may be replaced when dependencies are built.
