file(REMOVE_RECURSE
  "CMakeFiles/remora_rmem.dir/descriptor.cc.o"
  "CMakeFiles/remora_rmem.dir/descriptor.cc.o.d"
  "CMakeFiles/remora_rmem.dir/engine.cc.o"
  "CMakeFiles/remora_rmem.dir/engine.cc.o.d"
  "CMakeFiles/remora_rmem.dir/notification.cc.o"
  "CMakeFiles/remora_rmem.dir/notification.cc.o.d"
  "CMakeFiles/remora_rmem.dir/protocol.cc.o"
  "CMakeFiles/remora_rmem.dir/protocol.cc.o.d"
  "CMakeFiles/remora_rmem.dir/sync.cc.o"
  "CMakeFiles/remora_rmem.dir/sync.cc.o.d"
  "CMakeFiles/remora_rmem.dir/wire.cc.o"
  "CMakeFiles/remora_rmem.dir/wire.cc.o.d"
  "libremora_rmem.a"
  "libremora_rmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_rmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
