
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/backend.cc" "src/dfs/CMakeFiles/remora_dfs.dir/backend.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/backend.cc.o.d"
  "/root/repo/src/dfs/cache_layout.cc" "src/dfs/CMakeFiles/remora_dfs.dir/cache_layout.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/cache_layout.cc.o.d"
  "/root/repo/src/dfs/clerk.cc" "src/dfs/CMakeFiles/remora_dfs.dir/clerk.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/clerk.cc.o.d"
  "/root/repo/src/dfs/file_store.cc" "src/dfs/CMakeFiles/remora_dfs.dir/file_store.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/file_store.cc.o.d"
  "/root/repo/src/dfs/nfs_proto.cc" "src/dfs/CMakeFiles/remora_dfs.dir/nfs_proto.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/nfs_proto.cc.o.d"
  "/root/repo/src/dfs/push_cache.cc" "src/dfs/CMakeFiles/remora_dfs.dir/push_cache.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/push_cache.cc.o.d"
  "/root/repo/src/dfs/server.cc" "src/dfs/CMakeFiles/remora_dfs.dir/server.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/server.cc.o.d"
  "/root/repo/src/dfs/token.cc" "src/dfs/CMakeFiles/remora_dfs.dir/token.cc.o" "gcc" "src/dfs/CMakeFiles/remora_dfs.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/names/CMakeFiles/remora_names.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/remora_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/rmem/CMakeFiles/remora_rmem.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/remora_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/remora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/remora_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/remora_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
