file(REMOVE_RECURSE
  "CMakeFiles/remora_dfs.dir/backend.cc.o"
  "CMakeFiles/remora_dfs.dir/backend.cc.o.d"
  "CMakeFiles/remora_dfs.dir/cache_layout.cc.o"
  "CMakeFiles/remora_dfs.dir/cache_layout.cc.o.d"
  "CMakeFiles/remora_dfs.dir/clerk.cc.o"
  "CMakeFiles/remora_dfs.dir/clerk.cc.o.d"
  "CMakeFiles/remora_dfs.dir/file_store.cc.o"
  "CMakeFiles/remora_dfs.dir/file_store.cc.o.d"
  "CMakeFiles/remora_dfs.dir/nfs_proto.cc.o"
  "CMakeFiles/remora_dfs.dir/nfs_proto.cc.o.d"
  "CMakeFiles/remora_dfs.dir/push_cache.cc.o"
  "CMakeFiles/remora_dfs.dir/push_cache.cc.o.d"
  "CMakeFiles/remora_dfs.dir/server.cc.o"
  "CMakeFiles/remora_dfs.dir/server.cc.o.d"
  "CMakeFiles/remora_dfs.dir/token.cc.o"
  "CMakeFiles/remora_dfs.dir/token.cc.o.d"
  "libremora_dfs.a"
  "libremora_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
