# Empty compiler generated dependencies file for remora_dfs.
# This may be replaced when dependencies are built.
