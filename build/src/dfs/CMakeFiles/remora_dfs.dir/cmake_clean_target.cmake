file(REMOVE_RECURSE
  "libremora_dfs.a"
)
