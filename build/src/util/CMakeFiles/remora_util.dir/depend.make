# Empty dependencies file for remora_util.
# This may be replaced when dependencies are built.
