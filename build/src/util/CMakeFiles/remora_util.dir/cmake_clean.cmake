file(REMOVE_RECURSE
  "CMakeFiles/remora_util.dir/bytes.cc.o"
  "CMakeFiles/remora_util.dir/bytes.cc.o.d"
  "CMakeFiles/remora_util.dir/crc.cc.o"
  "CMakeFiles/remora_util.dir/crc.cc.o.d"
  "CMakeFiles/remora_util.dir/panic.cc.o"
  "CMakeFiles/remora_util.dir/panic.cc.o.d"
  "CMakeFiles/remora_util.dir/strings.cc.o"
  "CMakeFiles/remora_util.dir/strings.cc.o.d"
  "libremora_util.a"
  "libremora_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
