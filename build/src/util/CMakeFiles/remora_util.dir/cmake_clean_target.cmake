file(REMOVE_RECURSE
  "libremora_util.a"
)
