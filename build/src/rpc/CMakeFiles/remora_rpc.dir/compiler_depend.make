# Empty compiler generated dependencies file for remora_rpc.
# This may be replaced when dependencies are built.
