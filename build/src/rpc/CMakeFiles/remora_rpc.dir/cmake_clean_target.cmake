file(REMOVE_RECURSE
  "libremora_rpc.a"
)
