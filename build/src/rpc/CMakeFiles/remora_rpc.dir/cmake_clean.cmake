file(REMOVE_RECURSE
  "CMakeFiles/remora_rpc.dir/hybrid1.cc.o"
  "CMakeFiles/remora_rpc.dir/hybrid1.cc.o.d"
  "CMakeFiles/remora_rpc.dir/local_rpc.cc.o"
  "CMakeFiles/remora_rpc.dir/local_rpc.cc.o.d"
  "CMakeFiles/remora_rpc.dir/marshal.cc.o"
  "CMakeFiles/remora_rpc.dir/marshal.cc.o.d"
  "CMakeFiles/remora_rpc.dir/transport.cc.o"
  "CMakeFiles/remora_rpc.dir/transport.cc.o.d"
  "libremora_rpc.a"
  "libremora_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
