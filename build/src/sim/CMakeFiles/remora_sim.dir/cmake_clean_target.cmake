file(REMOVE_RECURSE
  "libremora_sim.a"
)
