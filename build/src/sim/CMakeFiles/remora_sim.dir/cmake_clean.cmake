file(REMOVE_RECURSE
  "CMakeFiles/remora_sim.dir/cpu.cc.o"
  "CMakeFiles/remora_sim.dir/cpu.cc.o.d"
  "CMakeFiles/remora_sim.dir/logger.cc.o"
  "CMakeFiles/remora_sim.dir/logger.cc.o.d"
  "CMakeFiles/remora_sim.dir/random.cc.o"
  "CMakeFiles/remora_sim.dir/random.cc.o.d"
  "CMakeFiles/remora_sim.dir/simulator.cc.o"
  "CMakeFiles/remora_sim.dir/simulator.cc.o.d"
  "CMakeFiles/remora_sim.dir/stats.cc.o"
  "CMakeFiles/remora_sim.dir/stats.cc.o.d"
  "libremora_sim.a"
  "libremora_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
