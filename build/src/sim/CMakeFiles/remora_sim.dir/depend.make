# Empty dependencies file for remora_sim.
# This may be replaced when dependencies are built.
