# Empty dependencies file for remora_trace.
# This may be replaced when dependencies are built.
