file(REMOVE_RECURSE
  "libremora_trace.a"
)
