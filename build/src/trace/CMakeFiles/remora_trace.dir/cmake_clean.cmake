file(REMOVE_RECURSE
  "CMakeFiles/remora_trace.dir/classifier.cc.o"
  "CMakeFiles/remora_trace.dir/classifier.cc.o.d"
  "CMakeFiles/remora_trace.dir/mix.cc.o"
  "CMakeFiles/remora_trace.dir/mix.cc.o.d"
  "CMakeFiles/remora_trace.dir/workload.cc.o"
  "CMakeFiles/remora_trace.dir/workload.cc.o.d"
  "libremora_trace.a"
  "libremora_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
