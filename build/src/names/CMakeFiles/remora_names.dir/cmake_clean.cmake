file(REMOVE_RECURSE
  "CMakeFiles/remora_names.dir/clerk.cc.o"
  "CMakeFiles/remora_names.dir/clerk.cc.o.d"
  "CMakeFiles/remora_names.dir/name_record.cc.o"
  "CMakeFiles/remora_names.dir/name_record.cc.o.d"
  "libremora_names.a"
  "libremora_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
