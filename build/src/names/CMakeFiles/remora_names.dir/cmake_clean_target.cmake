file(REMOVE_RECURSE
  "libremora_names.a"
)
