# Empty compiler generated dependencies file for remora_names.
# This may be replaced when dependencies are built.
