# Empty compiler generated dependencies file for remora_mem.
# This may be replaced when dependencies are built.
