file(REMOVE_RECURSE
  "CMakeFiles/remora_mem.dir/address_space.cc.o"
  "CMakeFiles/remora_mem.dir/address_space.cc.o.d"
  "CMakeFiles/remora_mem.dir/node.cc.o"
  "CMakeFiles/remora_mem.dir/node.cc.o.d"
  "CMakeFiles/remora_mem.dir/page_table.cc.o"
  "CMakeFiles/remora_mem.dir/page_table.cc.o.d"
  "CMakeFiles/remora_mem.dir/phys_mem.cc.o"
  "CMakeFiles/remora_mem.dir/phys_mem.cc.o.d"
  "libremora_mem.a"
  "libremora_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
