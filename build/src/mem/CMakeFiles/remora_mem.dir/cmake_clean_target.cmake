file(REMOVE_RECURSE
  "libremora_mem.a"
)
