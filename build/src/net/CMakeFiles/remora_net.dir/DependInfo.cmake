
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/aal5.cc" "src/net/CMakeFiles/remora_net.dir/aal5.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/aal5.cc.o.d"
  "/root/repo/src/net/cell.cc" "src/net/CMakeFiles/remora_net.dir/cell.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/cell.cc.o.d"
  "/root/repo/src/net/host_interface.cc" "src/net/CMakeFiles/remora_net.dir/host_interface.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/host_interface.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/remora_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/link.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/remora_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/network.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/net/CMakeFiles/remora_net.dir/switch.cc.o" "gcc" "src/net/CMakeFiles/remora_net.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/remora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/remora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
