# Empty compiler generated dependencies file for remora_net.
# This may be replaced when dependencies are built.
