file(REMOVE_RECURSE
  "libremora_net.a"
)
