file(REMOVE_RECURSE
  "CMakeFiles/remora_net.dir/aal5.cc.o"
  "CMakeFiles/remora_net.dir/aal5.cc.o.d"
  "CMakeFiles/remora_net.dir/cell.cc.o"
  "CMakeFiles/remora_net.dir/cell.cc.o.d"
  "CMakeFiles/remora_net.dir/host_interface.cc.o"
  "CMakeFiles/remora_net.dir/host_interface.cc.o.d"
  "CMakeFiles/remora_net.dir/link.cc.o"
  "CMakeFiles/remora_net.dir/link.cc.o.d"
  "CMakeFiles/remora_net.dir/network.cc.o"
  "CMakeFiles/remora_net.dir/network.cc.o.d"
  "CMakeFiles/remora_net.dir/switch.cc.o"
  "CMakeFiles/remora_net.dir/switch.cc.o.d"
  "libremora_net.a"
  "libremora_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remora_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
