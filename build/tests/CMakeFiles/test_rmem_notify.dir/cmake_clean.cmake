file(REMOVE_RECURSE
  "CMakeFiles/test_rmem_notify.dir/test_rmem_notify.cc.o"
  "CMakeFiles/test_rmem_notify.dir/test_rmem_notify.cc.o.d"
  "test_rmem_notify"
  "test_rmem_notify.pdb"
  "test_rmem_notify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmem_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
