# Empty compiler generated dependencies file for test_rmem_notify.
# This may be replaced when dependencies are built.
