# Empty compiler generated dependencies file for test_dfs_store.
# This may be replaced when dependencies are built.
