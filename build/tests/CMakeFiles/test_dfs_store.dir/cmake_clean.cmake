file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_store.dir/test_dfs_store.cc.o"
  "CMakeFiles/test_dfs_store.dir/test_dfs_store.cc.o.d"
  "test_dfs_store"
  "test_dfs_store.pdb"
  "test_dfs_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
