file(REMOVE_RECURSE
  "CMakeFiles/test_rmem_engine.dir/test_rmem_engine.cc.o"
  "CMakeFiles/test_rmem_engine.dir/test_rmem_engine.cc.o.d"
  "test_rmem_engine"
  "test_rmem_engine.pdb"
  "test_rmem_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmem_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
