# Empty dependencies file for test_rmem_engine.
# This may be replaced when dependencies are built.
