file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_service.dir/test_dfs_service.cc.o"
  "CMakeFiles/test_dfs_service.dir/test_dfs_service.cc.o.d"
  "test_dfs_service"
  "test_dfs_service.pdb"
  "test_dfs_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
