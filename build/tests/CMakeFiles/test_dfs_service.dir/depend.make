# Empty dependencies file for test_dfs_service.
# This may be replaced when dependencies are built.
