file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_edge.dir/test_dfs_edge.cc.o"
  "CMakeFiles/test_dfs_edge.dir/test_dfs_edge.cc.o.d"
  "test_dfs_edge"
  "test_dfs_edge.pdb"
  "test_dfs_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
