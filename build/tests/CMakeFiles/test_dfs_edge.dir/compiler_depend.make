# Empty compiler generated dependencies file for test_dfs_edge.
# This may be replaced when dependencies are built.
