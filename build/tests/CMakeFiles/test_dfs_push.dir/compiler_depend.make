# Empty compiler generated dependencies file for test_dfs_push.
# This may be replaced when dependencies are built.
