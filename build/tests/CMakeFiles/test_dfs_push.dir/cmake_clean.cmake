file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_push.dir/test_dfs_push.cc.o"
  "CMakeFiles/test_dfs_push.dir/test_dfs_push.cc.o.d"
  "test_dfs_push"
  "test_dfs_push.pdb"
  "test_dfs_push[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
