# Empty dependencies file for test_sim_stats_random.
# This may be replaced when dependencies are built.
