# Empty dependencies file for test_rmem_sync.
# This may be replaced when dependencies are built.
