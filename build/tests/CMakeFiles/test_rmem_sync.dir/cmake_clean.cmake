file(REMOVE_RECURSE
  "CMakeFiles/test_rmem_sync.dir/test_rmem_sync.cc.o"
  "CMakeFiles/test_rmem_sync.dir/test_rmem_sync.cc.o.d"
  "test_rmem_sync"
  "test_rmem_sync.pdb"
  "test_rmem_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmem_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
