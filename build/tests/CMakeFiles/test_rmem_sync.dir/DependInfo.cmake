
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rmem_sync.cc" "tests/CMakeFiles/test_rmem_sync.dir/test_rmem_sync.cc.o" "gcc" "tests/CMakeFiles/test_rmem_sync.dir/test_rmem_sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/remora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/remora_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/names/CMakeFiles/remora_names.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/remora_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/rmem/CMakeFiles/remora_rmem.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/remora_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/remora_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/remora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/remora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
