# Empty dependencies file for test_dfs_token.
# This may be replaced when dependencies are built.
