file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_token.dir/test_dfs_token.cc.o"
  "CMakeFiles/test_dfs_token.dir/test_dfs_token.cc.o.d"
  "test_dfs_token"
  "test_dfs_token.pdb"
  "test_dfs_token[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
