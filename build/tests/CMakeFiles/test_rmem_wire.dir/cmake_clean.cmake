file(REMOVE_RECURSE
  "CMakeFiles/test_rmem_wire.dir/test_rmem_wire.cc.o"
  "CMakeFiles/test_rmem_wire.dir/test_rmem_wire.cc.o.d"
  "test_rmem_wire"
  "test_rmem_wire.pdb"
  "test_rmem_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmem_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
