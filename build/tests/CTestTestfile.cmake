# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rmem_engine[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats_random[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_names[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_dfs_store[1]_include.cmake")
include("/root/repo/build/tests/test_dfs_service[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_rmem_notify[1]_include.cmake")
include("/root/repo/build/tests/test_rmem_sync[1]_include.cmake")
include("/root/repo/build/tests/test_dfs_push[1]_include.cmake")
include("/root/repo/build/tests/test_dfs_token[1]_include.cmake")
include("/root/repo/build/tests/test_rmem_wire[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_dfs_edge[1]_include.cmake")
