# Empty compiler generated dependencies file for file_service.
# This may be replaced when dependencies are built.
