file(REMOVE_RECURSE
  "CMakeFiles/file_service.dir/file_service.cpp.o"
  "CMakeFiles/file_service.dir/file_service.cpp.o.d"
  "file_service"
  "file_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
