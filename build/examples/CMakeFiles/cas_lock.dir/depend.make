# Empty dependencies file for cas_lock.
# This may be replaced when dependencies are built.
