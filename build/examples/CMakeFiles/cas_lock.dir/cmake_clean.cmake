file(REMOVE_RECURSE
  "CMakeFiles/cas_lock.dir/cas_lock.cpp.o"
  "CMakeFiles/cas_lock.dir/cas_lock.cpp.o.d"
  "cas_lock"
  "cas_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cas_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
