file(REMOVE_RECURSE
  "CMakeFiles/failure_detector.dir/failure_detector.cpp.o"
  "CMakeFiles/failure_detector.dir/failure_detector.cpp.o.d"
  "failure_detector"
  "failure_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
