# Empty compiler generated dependencies file for failure_detector.
# This may be replaced when dependencies are built.
