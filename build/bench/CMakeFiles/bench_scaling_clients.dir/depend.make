# Empty dependencies file for bench_scaling_clients.
# This may be replaced when dependencies are built.
