file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_clients.dir/bench_scaling_clients.cc.o"
  "CMakeFiles/bench_scaling_clients.dir/bench_scaling_clients.cc.o.d"
  "bench_scaling_clients"
  "bench_scaling_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
