file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nameserver.dir/bench_table3_nameserver.cc.o"
  "CMakeFiles/bench_table3_nameserver.dir/bench_table3_nameserver.cc.o.d"
  "bench_table3_nameserver"
  "bench_table3_nameserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nameserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
