# Empty dependencies file for bench_table3_nameserver.
# This may be replaced when dependencies are built.
