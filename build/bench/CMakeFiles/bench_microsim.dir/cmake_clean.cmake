file(REMOVE_RECURSE
  "CMakeFiles/bench_microsim.dir/bench_microsim.cc.o"
  "CMakeFiles/bench_microsim.dir/bench_microsim.cc.o.d"
  "bench_microsim"
  "bench_microsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
