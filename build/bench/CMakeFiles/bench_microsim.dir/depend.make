# Empty dependencies file for bench_microsim.
# This may be replaced when dependencies are built.
