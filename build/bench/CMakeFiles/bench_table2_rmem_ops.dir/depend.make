# Empty dependencies file for bench_table2_rmem_ops.
# This may be replaced when dependencies are built.
