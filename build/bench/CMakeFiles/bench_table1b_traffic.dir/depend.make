# Empty dependencies file for bench_table1b_traffic.
# This may be replaced when dependencies are built.
