# Empty dependencies file for bench_table1a_nfs_mix.
# This may be replaced when dependencies are built.
