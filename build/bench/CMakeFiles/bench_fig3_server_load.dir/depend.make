# Empty dependencies file for bench_fig3_server_load.
# This may be replaced when dependencies are built.
