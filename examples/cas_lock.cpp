/**
 * @file
 * A distributed spinlock built from the CAS meta-instruction (§3.4).
 *
 * "A third option is to use the synchronization provided by the CAS
 * operation supported by the communication model. This primitive is
 * sufficiently powerful to build higher level synchronization
 * primitives."
 *
 * A lock word and a shared counter live in one node's exported
 * segment. Two clients on other machines repeatedly: acquire the lock
 * with remote CAS (spinning with backoff on failure), read-modify-write
 * the counter with remote read + remote write, and release the lock
 * with a plain remote write. If mutual exclusion held, the final
 * counter equals the total number of increments.
 */
#include <cstdio>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/bytes.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr uint32_t kUnlocked = 0;
constexpr uint32_t kIncrements = 50;

/** Lock word at offset 0, counter at offset 4 of the shared segment. */
struct Worker
{
    rmem::RmemEngine *engine = nullptr;
    mem::Process *proc = nullptr;
    rmem::ImportedSegment shared;
    rmem::SegmentId scratch = 0;
    mem::Vaddr scratchBase = 0;
    uint32_t lockId = 0; // our non-zero owner tag
    uint64_t casRetries = 0;
};

sim::Task<void>
workerLoop(Worker *w)
{
    auto &sim = w->engine->node().simulator();
    for (uint32_t i = 0; i < kIncrements; ++i) {
        // Acquire: CAS(lock, UNLOCKED -> our id), spin with backoff.
        sim::Duration backoff = sim::usec(50);
        for (;;) {
            auto cas = co_await w->engine->cas(w->shared, 0, kUnlocked,
                                               w->lockId, w->scratch, 0);
            REMORA_ASSERT(cas.status.ok());
            if (cas.success) {
                break;
            }
            ++w->casRetries;
            co_await sim::delay(sim, backoff);
            backoff = std::min<sim::Duration>(backoff * 2, sim::usec(400));
        }

        // Critical section: remote read, increment, remote write.
        auto rd = co_await w->engine->read(w->shared, 4, w->scratch, 4, 4);
        REMORA_ASSERT(rd.status.ok());
        util::ByteReader r(rd.data);
        uint32_t counter = r.getU32() + 1;
        util::ByteWriter wr(4);
        wr.putU32(counter);
        auto ws = co_await w->engine->write(
            w->shared, 4,
            std::vector<uint8_t>(wr.bytes().begin(), wr.bytes().end()));
        REMORA_ASSERT(ws.ok());

        // Release: plain remote write of UNLOCKED. The single-word
        // atomicity guarantee (§3.4) makes this safe.
        util::ByteWriter rel(4);
        rel.putU32(kUnlocked);
        ws = co_await w->engine->write(
            w->shared, 0,
            std::vector<uint8_t>(rel.bytes().begin(), rel.bytes().end()));
        REMORA_ASSERT(ws.ok());
    }
}

} // namespace

int
main()
{
    std::printf("remora CAS-lock example: two clients incrementing a "
                "shared counter %u times each\n\n",
                kIncrements);

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node home(sim, 1, "home");
    mem::Node c1(sim, 2, "client1");
    mem::Node c2(sim, 3, "client2");
    rmem::RmemEngine homeEngine(home);
    rmem::RmemEngine e1(c1);
    rmem::RmemEngine e2(c2);
    network.addHost(1, home.nic());
    network.addHost(2, c1.nic());
    network.addHost(3, c2.nic());
    network.wireSwitched();

    mem::Process &homeProc = home.spawnProcess("registry");
    mem::Vaddr base = homeProc.space().allocRegion(4096);
    auto shared = homeEngine.exportSegment(
        homeProc, base, 4096, rmem::Rights::kAll,
        rmem::NotifyPolicy::kNever, "lock.page");
    REMORA_ASSERT(shared.ok());

    Worker w1, w2;
    auto setup = [&shared](Worker &w, rmem::RmemEngine &engine,
                           uint32_t tag) {
        w.engine = &engine;
        w.proc = &engine.node().spawnProcess("worker");
        w.shared = shared.value();
        w.scratchBase = w.proc->space().allocRegion(4096);
        auto s = engine.exportSegment(*w.proc, w.scratchBase, 4096,
                                      rmem::Rights::kRead,
                                      rmem::NotifyPolicy::kNever, "scratch");
        REMORA_ASSERT(s.ok());
        w.scratch = s.value().descriptor;
        w.lockId = tag;
    };
    setup(w1, e1, 0x1001);
    setup(w2, e2, 0x1002);

    auto t1 = workerLoop(&w1);
    auto t2 = workerLoop(&w2);
    sim.run();
    REMORA_ASSERT(t1.done() && t2.done());

    auto counter = homeProc.space().readWord(base + 4);
    std::printf("final counter: %u (expected %u)\n", counter.value(),
                2 * kIncrements);
    std::printf("CAS retries under contention: client1=%llu client2=%llu\n",
                static_cast<unsigned long long>(w1.casRetries),
                static_cast<unsigned long long>(w2.casRetries));
    std::printf("elapsed simulated time: %s\n",
                util::formatDuration(sim.now()).c_str());
    REMORA_ASSERT(counter.value() == 2 * kIncrements);
    std::printf("mutual exclusion held.\n");
    return 0;
}
