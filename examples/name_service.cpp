/**
 * @file
 * The distributed segment name service across a switched cluster (§4).
 *
 * Three workstations, a name clerk on each (no central server). The
 * example walks export, hinted and hint-less import, the import cache,
 * control-transfer lookup, revocation, stale-handle rejection, and the
 * periodic refresh that purges dead cache entries.
 */
#include <cstdio>

#include "mem/node.h"
#include "names/clerk.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/strings.h"

using namespace remora;

namespace {

void
stamp(sim::Simulator &sim, const char *who, const std::string &what)
{
    std::printf("[%-9s] %-7s %s\n", util::formatDuration(sim.now()).c_str(),
                who, what.c_str());
}

sim::Task<void>
story(sim::Simulator *sim, names::NameClerk *alpha, names::NameClerk *beta,
      names::NameClerk *gamma, mem::Process *owner)
{
    // alpha exports a segment under a cluster-visible name.
    mem::Vaddr base = owner->space().allocRegion(16384);
    auto exported = co_await alpha->exportByName(
        owner, base, 16384, rmem::Rights::kRead | rmem::Rights::kWrite,
        rmem::NotifyPolicy::kConditional, "db.index");
    REMORA_ASSERT(exported.ok());
    stamp(*sim, "alpha", "exported 'db.index' (16 KB, read+write)");

    // beta imports with a user-supplied hint: one remote read.
    sim::Time t0 = sim->now();
    auto imp = co_await beta->import("db.index", 1);
    REMORA_ASSERT(imp.ok());
    stamp(*sim, "beta",
          "imported 'db.index' with hint -> node " +
              std::to_string(imp.value().node) + " in " +
              util::formatDuration(sim->now() - t0));

    // Second import hits beta's cache: no wire traffic at all.
    t0 = sim->now();
    imp = co_await beta->import("db.index", 1);
    REMORA_ASSERT(imp.ok());
    stamp(*sim, "beta",
          "re-imported from the import cache in " +
              util::formatDuration(sim->now() - t0));

    // gamma has no hint: the clerk probes peers in id order.
    t0 = sim->now();
    auto g = co_await gamma->import("db.index", std::nullopt);
    REMORA_ASSERT(g.ok());
    stamp(*sim, "gamma",
          "imported without a hint (peer sweep) in " +
              util::formatDuration(sim->now() - t0));

    // gamma asks again via control transfer, for comparison.
    t0 = sim->now();
    g = co_await gamma->import("db.index", 1, true,
                               names::ProbePolicy::kControlOnly);
    REMORA_ASSERT(g.ok());
    stamp(*sim, "gamma",
          "forced control-transfer lookup in " +
              util::formatDuration(sim->now() - t0) +
              " (the expensive path)");

    // A lookup for an absent name fails fast: the first probe reads an
    // empty bucket, which is a definitive answer.
    auto missing = co_await beta->import("no.such.name", 1);
    stamp(*sim, "beta",
          "lookup of 'no.such.name' -> " + missing.status().toString());

    // alpha revokes. Deletion is local; beta still holds a cached,
    // now-stale handle.
    auto revoked = co_await alpha->revoke("db.index");
    REMORA_ASSERT(revoked.ok());
    stamp(*sim, "alpha", "revoked 'db.index' (local tombstone + new "
                         "generation)");

    // Using the stale handle is rejected remotely with a stale NAK.
    auto stale = co_await beta->engine().read(
        imp.value(), 0, names::NameClerk::kScratchDescriptor, 0, 24, false,
        sim::msec(10));
    stamp(*sim, "beta",
          "read through the stale handle -> " + stale.status.toString());

    // A refresh pass notices the tombstone and purges the cache entry.
    co_await beta->refresh();
    stamp(*sim, "beta",
          "refresh purged " +
              std::to_string(beta->stats().refreshPurges.value()) +
              " stale import(s)");

    auto gone = co_await beta->import("db.index", 1);
    stamp(*sim, "beta",
          "post-refresh lookup -> " + gone.status().toString());
}

} // namespace

int
main()
{
    std::printf("remora name-service example: three clerks, no central "
                "server\n\n");

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node n1(sim, 1, "alpha");
    mem::Node n2(sim, 2, "beta");
    mem::Node n3(sim, 3, "gamma");
    rmem::RmemEngine e1(n1), e2(n2), e3(n3);
    network.addHost(1, n1.nic());
    network.addHost(2, n2.nic());
    network.addHost(3, n3.nic());
    network.wireSwitched();

    names::NameClerk alpha(e1), beta(e2), gamma(e3);
    alpha.addPeer(2);
    alpha.addPeer(3);
    beta.addPeer(1);
    beta.addPeer(3);
    gamma.addPeer(1);
    gamma.addPeer(2);

    mem::Process &owner = n1.spawnProcess("db");
    auto t = story(&sim, &alpha, &beta, &gamma, &owner);
    sim.run();
    REMORA_ASSERT(t.done());

    std::printf("\nclerk stats: beta remote reads %llu, gamma control "
                "transfers %llu\n",
                static_cast<unsigned long long>(
                    beta.stats().remoteReads.value()),
                static_cast<unsigned long long>(
                    gamma.stats().controlTransfers.value()));
    return 0;
}
