/**
 * @file
 * Replaying the paper's NFS workload against the live service.
 *
 * Ties the whole reproduction together: the Table 1a operation mix
 * (trace module) drives the simulated file service (dfs module) over
 * both structures — Hybrid-1 and pure data transfer — on the same
 * cluster, and the server's CPU tells the §2 story live: most of what
 * an RPC-structured server does is control transfer and procedure
 * machinery that the restructured service simply does not perform.
 */
#include <cstdio>

#include "dfs/backend.h"
#include "dfs/server.h"
#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr int kOps = 1500;

sim::Task<void>
replay(dfs::FileServiceBackend *backend, trace::WorkloadGen *gen,
       const std::vector<dfs::FileHandle> *files, dfs::FileHandle dir)
{
    for (int i = 0; i < kOps; ++i) {
        trace::Op op = gen->next();
        dfs::FileHandle target = (*files)[op.fileIdx % files->size()];
        switch (op.cls) {
          case trace::OpClass::kGetAttr:
          case trace::OpClass::kOther: {
            auto r = co_await backend->getattr(target);
            REMORA_ASSERT(r.ok());
            break;
          }
          case trace::OpClass::kLookup: {
            auto r = co_await backend->lookup(dir, "font0.pcf");
            (void)r;
            break;
          }
          case trace::OpClass::kRead: {
            auto r = co_await backend->read(
                target, 0, std::min<uint32_t>(op.bytes, 8192));
            REMORA_ASSERT(r.ok());
            break;
          }
          case trace::OpClass::kNullPing: {
            auto r = co_await backend->null();
            (void)r;
            break;
          }
          case trace::OpClass::kReadLink:
          case trace::OpClass::kStatFs: {
            auto r = co_await backend->statfs();
            (void)r;
            break;
          }
          case trace::OpClass::kReadDir: {
            auto r = co_await backend->readdir(dir, op.bytes);
            (void)r;
            break;
          }
          case trace::OpClass::kWrite: {
            auto r = co_await backend->write(
                target, 0,
                std::vector<uint8_t>(std::min<uint32_t>(op.bytes, 8192),
                                     0x55));
            REMORA_ASSERT(r.ok());
            break;
          }
          default:
            break;
        }
    }
}

void
printBreakdown(const char *scheme, sim::CpuResource &cpu,
               sim::Duration elapsed)
{
    auto pct = [&](sim::CpuCategory cat) {
        return 100.0 * static_cast<double>(cpu.busyIn(cat)) /
               static_cast<double>(elapsed);
    };
    std::printf("  %-8s total util %4.1f%%  | recv %4.1f%%  control "
                "%4.1f%%  proc %4.1f%%  reply %4.1f%%\n",
                scheme,
                100.0 * static_cast<double>(cpu.totalBusy()) /
                    static_cast<double>(elapsed),
                pct(sim::CpuCategory::kDataReceive),
                pct(sim::CpuCategory::kControlTransfer),
                pct(sim::CpuCategory::kProcInvoke) +
                    pct(sim::CpuCategory::kProcExec),
                pct(sim::CpuCategory::kDataReply));
}

} // namespace

int
main()
{
    std::printf("remora trace replay: %d ops of the Table 1a mix against "
                "the live file service\n\n",
                kOps);

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node clientNode(sim, 1, "client");
    mem::Node serverNode(sim, 2, "server");
    rmem::RmemEngine ce(clientNode), se(serverNode);
    network.addHost(1, clientNode.nic());
    network.addHost(2, serverNode.nic());
    network.wireDirect();

    dfs::FileStore store;
    std::vector<dfs::FileHandle> files =
        trace::buildPaperFileSet(store, 24, 5);
    auto fonts = store.lookup(store.root(), "fonts");
    REMORA_ASSERT(fonts.ok());

    dfs::FileServer server(se, store);
    server.warmCaches();
    // Re-pin the replay targets so collisions among the filler files
    // cannot evict them (100%-hit condition).
    for (auto fh : files) {
        server.cacheAttr(fh);
        server.cacheBlock(fh, 0);
    }
    server.start();
    sim.run();

    mem::Process &clerkProc = clientNode.spawnProcess("clerk");
    rpc::Hybrid1Client hyClient(ce, clerkProc, server.hybridHandle(),
                                server.allocClientSlot());
    dfs::HyBackend hy(hyClient);
    dfs::DxBackend dx(ce, clerkProc, server.areaHandles(),
                      dfs::CacheGeometry{}, &hyClient);

    auto &cpu = serverNode.cpu();

    // Hybrid-1 pass.
    trace::WorkloadGen genHy(77, {}, 24);
    cpu.resetAccounting();
    sim::Time t0 = sim.now();
    auto hyRun = replay(&hy, &genHy, &files, fonts.value());
    while (!hyRun.done() && sim.step()) {
    }
    sim.run();
    sim::Duration hyElapsed = sim.now() - t0;
    double hyBusy = sim::toMsec(cpu.totalBusy());
    std::printf("Hybrid-1 pass: %d ops in %s simulated\n", kOps,
                util::formatDuration(hyElapsed).c_str());
    printBreakdown("HY", cpu, hyElapsed);

    // Pure-data-transfer pass, identical op stream.
    trace::WorkloadGen genDx(77, {}, 24);
    cpu.resetAccounting();
    t0 = sim.now();
    auto dxRun = replay(&dx, &genDx, &files, fonts.value());
    while (!dxRun.done() && sim.step()) {
    }
    sim.run();
    sim::Duration dxElapsed = sim.now() - t0;
    double dxBusy = sim::toMsec(cpu.totalBusy());
    std::printf("\nPure-data-transfer pass: same %d ops in %s simulated\n",
                kOps, util::formatDuration(dxElapsed).c_str());
    printBreakdown("DX", cpu, dxElapsed);

    std::printf("\nserver CPU consumed:  HY %.1f ms   DX %.1f ms   "
                "(DX/HY = %.2f — the paper's \"50%% decrease in server "
                "load\" claim, on the real mix)\n",
                hyBusy, dxBusy, dxBusy / hyBusy);
    std::printf("throughput headroom:  the replay itself ran %.1fx "
                "faster under DX\n",
                static_cast<double>(hyElapsed) /
                    static_cast<double>(dxElapsed));
    REMORA_ASSERT(dxBusy < 0.5 * hyBusy);
    return 0;
}
