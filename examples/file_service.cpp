/**
 * @file
 * The restructured distributed file service, end to end (§3.2, §5).
 *
 * Full paper structure on two machines: an untrusted client talks
 * local RPC to the server clerk on its own machine; the clerk satisfies
 * repeat requests from its local cache areas and goes to the server
 * with *pure data transfer* (remote reads/writes of the server's
 * exported cache areas). The server process sleeps through all of it.
 *
 * The example reads a file twice (cold then cached), lists a
 * directory, follows a symlink, writes a block back, and prints what
 * the server's CPU did — which, under DX, is only kernel data-path
 * work.
 */
#include <cstdio>

#include "dfs/backend.h"
#include "dfs/clerk.h"
#include "dfs/server.h"
#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/strings.h"

using namespace remora;

namespace {

sim::Task<void>
clientSession(sim::Simulator *sim, dfs::ServerClerk *clerk,
              dfs::FileStore *store)
{
    auto root = store->root();

    // Resolve /notes/report.txt through the clerk.
    sim::Time t0 = sim->now();
    auto dir = co_await clerk->lookup(root, "notes");
    REMORA_ASSERT(dir.ok());
    auto file = co_await clerk->lookup(dir.value().fh, "report.txt");
    REMORA_ASSERT(file.ok());
    std::printf("  lookup /notes/report.txt     : %s (size %llu)\n",
                util::formatDuration(sim->now() - t0).c_str(),
                static_cast<unsigned long long>(file.value().attr.size));

    // Cold read: clerk fetches the block from the server's data area.
    t0 = sim->now();
    auto data = co_await clerk->read(file.value().fh, 0, 8192);
    REMORA_ASSERT(data.ok());
    std::printf("  read 8K (cold, remote fetch) : %s\n",
                util::formatDuration(sim->now() - t0).c_str());

    // Warm read: served entirely from the clerk's local cache.
    t0 = sim->now();
    auto again = co_await clerk->read(file.value().fh, 0, 8192);
    REMORA_ASSERT(again.ok() && again.value() == data.value());
    std::printf("  read 8K (warm, clerk cache)  : %s\n",
                util::formatDuration(sim->now() - t0).c_str());

    // Directory listing and symlink, same story.
    t0 = sim->now();
    auto entries = co_await clerk->readdir(dir.value().fh, 4096);
    REMORA_ASSERT(entries.ok());
    std::printf("  readdir /notes (%2zu entries)  : %s\n",
                entries.value().size(),
                util::formatDuration(sim->now() - t0).c_str());

    auto link = co_await clerk->lookup(root, "latest");
    REMORA_ASSERT(link.ok());
    t0 = sim->now();
    auto target = co_await clerk->readlink(link.value().fh);
    REMORA_ASSERT(target.ok());
    std::printf("  readlink /latest             : %s -> \"%s\"\n",
                util::formatDuration(sim->now() - t0).c_str(),
                target.value().c_str());

    // Write-back: the clerk pushes the block into the server's data
    // area with a remote write; the server applies it lazily.
    std::vector<uint8_t> edited = data.value();
    edited[0] = 'R';
    t0 = sim->now();
    auto ws = co_await clerk->write(file.value().fh, 0, edited);
    REMORA_ASSERT(ws.ok());
    std::printf("  write 8K (eager push)        : %s\n",
                util::formatDuration(sim->now() - t0).c_str());
}

} // namespace

int
main()
{
    std::printf("remora file-service example: client -> clerk -> pure "
                "data transfer -> server caches\n\n");

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node clientNode(sim, 1, "client-ws");
    mem::Node serverNode(sim, 2, "file-server");
    rmem::RmemEngine clientEngine(clientNode);
    rmem::RmemEngine serverEngine(serverNode);
    network.addHost(1, clientNode.nic());
    network.addHost(2, serverNode.nic());
    network.wireDirect();

    // Build the filesystem and the server over it.
    dfs::FileStore store;
    auto notes = store.mkdir(store.root(), "notes");
    REMORA_ASSERT(notes.ok());
    auto report = store.createFile(notes.value(), "report.txt", 8192);
    REMORA_ASSERT(report.ok());
    for (int i = 0; i < 10; ++i) {
        auto extra = store.createFile(
            notes.value(), "draft" + std::to_string(i) + ".txt", 1024);
        REMORA_ASSERT(extra.ok());
    }
    auto latest = store.symlink(store.root(), "latest",
                                "notes/report.txt");
    REMORA_ASSERT(latest.ok());

    dfs::FileServer server(serverEngine, store);
    server.warmCaches();
    server.start();

    // The clerk on the client machine, speaking DX to the server (with
    // Hybrid-1 standing by for cache misses).
    mem::Process &clerkProc = clientNode.spawnProcess("server-clerk");
    rpc::Hybrid1Client fallback(clientEngine, clerkProc,
                                server.hybridHandle(),
                                server.allocClientSlot());
    dfs::DxBackend dx(clientEngine, clerkProc, server.areaHandles(),
                      dfs::CacheGeometry{}, &fallback);
    dfs::ServerClerk clerk(clientNode.cpu(), dx);

    sim.run();
    serverNode.cpu().resetAccounting();
    // The scavenger reschedules itself forever, so start it only once
    // the event queue is otherwise drained and run with a time bound.
    server.startScavenger(sim::msec(50));

    auto session = clientSession(&sim, &clerk, &store);
    sim.run(sim.now() + sim::kSecond); // session + a scavenger pass
    REMORA_ASSERT(session.done());
    session.result();

    // What did the server's CPU actually do?
    auto &cpu = serverNode.cpu();
    std::printf("\nserver CPU during the session:\n");
    std::printf("  data receive      : %s\n",
                util::formatDuration(
                    cpu.busyIn(sim::CpuCategory::kDataReceive)).c_str());
    std::printf("  data reply        : %s\n",
                util::formatDuration(
                    cpu.busyIn(sim::CpuCategory::kDataReply)).c_str());
    std::printf("  control transfer  : %s\n",
                util::formatDuration(
                    cpu.busyIn(sim::CpuCategory::kControlTransfer)).c_str());
    std::printf("  procedure work    : %s\n",
                util::formatDuration(
                    cpu.busyIn(sim::CpuCategory::kProcInvoke) +
                    cpu.busyIn(sim::CpuCategory::kProcExec)).c_str());

    // The lazily-applied write reached the filesystem.
    auto synced = store.read(report.value(), 0, 1);
    REMORA_ASSERT(synced.ok());
    std::printf("\nafter the scavenger pass, byte 0 of report.txt = '%c' "
                "(client wrote 'R')\n",
                synced.value()[0]);
    std::printf("clerk stats: %llu requests, %llu local-cache hits, %llu "
                "backend fetches; DX misses: %llu\n",
                static_cast<unsigned long long>(
                    clerk.stats().requests.value()),
                static_cast<unsigned long long>(
                    clerk.stats().localHits.value()),
                static_cast<unsigned long long>(
                    clerk.stats().backendCalls.value()),
                static_cast<unsigned long long>(dx.misses()));
    return 0;
}
