/**
 * @file
 * Synchronization-free load balancing with remote writes (§3.4).
 *
 * "Consider the case of load balancing in a workstation cluster. Each
 * workstation could update a shared variable with its current load
 * using remote writes. Other workstations would read this value and
 * take appropriate load balancing actions. In this situation, strict
 * synchronization of the data is not required because it is being used
 * as a hint."
 *
 * Each of N nodes exports a "load board" — one word per peer — and
 * periodically remote-writes its own load into everyone's board (pure
 * data transfer; no peer is interrupted). When a node wants to shed
 * work it just reads *local* memory to pick the least-loaded peer.
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/bytes.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr size_t kNodes = 5;
constexpr sim::Duration kGossipPeriod = sim::msec(10);
constexpr int kRounds = 20;

struct Member
{
    mem::Node *node = nullptr;
    rmem::RmemEngine *engine = nullptr;
    mem::Process *proc = nullptr;
    mem::Vaddr board = 0;                       // kNodes load words
    std::vector<rmem::ImportedSegment> peers;   // peer boards
    uint32_t load = 0;
    uint64_t migrations = 0;
};

/** Periodically publish our load into every peer's board. */
sim::Task<void>
gossipLoop(Member *self, size_t selfIdx, sim::Random *rng)
{
    auto &sim = self->engine->node().simulator();
    for (int round = 0; round < kRounds; ++round) {
        // The "load" wanders randomly; a real system would sample the
        // run queue here.
        self->load = (self->load + rng->uniformInt(30)) % 100;

        // Update our own slot locally, then hint every peer. No
        // acknowledgements, no locks: stale values are acceptable.
        REMORA_ASSERT(self->proc->space()
                          .writeWord(self->board + 4 * selfIdx, self->load)
                          .ok());
        util::ByteWriter w(4);
        w.putU32(self->load);
        for (auto &peer : self->peers) {
            auto ws = co_await self->engine->write(
                peer, static_cast<uint32_t>(4 * selfIdx),
                std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()));
            REMORA_ASSERT(ws.ok());
        }

        // Shed work when overloaded: consult only LOCAL memory.
        if (self->load > 70) {
            uint32_t best = 0xffffffff;
            size_t bestIdx = selfIdx;
            for (size_t i = 0; i < kNodes; ++i) {
                if (i == selfIdx) {
                    continue;
                }
                auto word =
                    self->proc->space().readWord(self->board + 4 * i);
                REMORA_ASSERT(word.ok());
                if (word.value() < best) {
                    best = word.value();
                    bestIdx = i;
                }
            }
            if (bestIdx != selfIdx && best < self->load) {
                ++self->migrations;
                self->load -= 20; // pretend we shipped a job away
            }
        }
        co_await sim::delay(sim, kGossipPeriod);
    }
}

} // namespace

int
main()
{
    std::printf("remora load-balancing example: %zu nodes gossiping load "
                "hints with pure remote writes\n\n",
                kNodes);

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    std::vector<std::unique_ptr<mem::Node>> nodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> engines;
    std::vector<Member> members(kNodes);

    for (size_t i = 0; i < kNodes; ++i) {
        auto id = static_cast<net::NodeId>(i + 1);
        nodes.push_back(std::make_unique<mem::Node>(
            sim, id, "ws" + std::to_string(id)));
        engines.push_back(std::make_unique<rmem::RmemEngine>(*nodes.back()));
        network.addHost(id, nodes.back()->nic());
    }
    network.wireSwitched();

    // Every node exports its load board. By construction these land in
    // descriptor slot 0 with generation 1 on every node, so peers can
    // build handles without a directory (a "well-known" segment).
    for (size_t i = 0; i < kNodes; ++i) {
        members[i].node = nodes[i].get();
        members[i].engine = engines[i].get();
        members[i].proc = &nodes[i]->spawnProcess("balancer");
        members[i].board = members[i].proc->space().allocRegion(4096);
        auto h = engines[i]->exportSegment(
            *members[i].proc, members[i].board, 4 * kNodes,
            rmem::Rights::kWrite | rmem::Rights::kRead,
            rmem::NotifyPolicy::kNever, "load.board");
        REMORA_ASSERT(h.ok());
    }
    for (size_t i = 0; i < kNodes; ++i) {
        for (size_t j = 0; j < kNodes; ++j) {
            if (i == j) {
                continue;
            }
            members[i].peers.push_back(rmem::ImportedSegment{
                static_cast<net::NodeId>(j + 1), 0, 1, 4 * kNodes,
                rmem::Rights::kWrite});
        }
    }

    std::vector<sim::Task<void>> loops;
    std::vector<std::unique_ptr<sim::Random>> rngs;
    for (size_t i = 0; i < kNodes; ++i) {
        rngs.push_back(std::make_unique<sim::Random>(100 + i));
        loops.push_back(gossipLoop(&members[i], i, rngs.back().get()));
    }
    sim.run();

    std::printf("%-6s  %-10s  %-12s  %s\n", "node", "final load",
                "migrations", "board view (loads seen locally)");
    for (size_t i = 0; i < kNodes; ++i) {
        std::string view;
        for (size_t j = 0; j < kNodes; ++j) {
            auto w = members[i].proc->space().readWord(members[i].board +
                                                       4 * j);
            view += std::to_string(w.value());
            view += j + 1 < kNodes ? " " : "";
        }
        std::printf("ws%-4zu  %-10u  %-12llu  [%s]\n", i + 1,
                    members[i].load,
                    static_cast<unsigned long long>(members[i].migrations),
                    view.c_str());
    }

    uint64_t notifications = 0;
    for (auto &e : engines) {
        notifications += e->stats().notificationsPosted.value();
    }
    std::printf("\ncontrol transfers across the whole run: %llu "
                "(hints need none)\n",
                static_cast<unsigned long long>(notifications));
    return 0;
}
