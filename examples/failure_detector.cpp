/**
 * @file
 * Failure detection without RPC machinery (§3.7).
 *
 * "A service that required fault tolerance could implement a periodic
 * remote read request of a known (or monotonically increasing) value.
 * Failure to read the value within a timeout period can be used to
 * raise an exception."
 *
 * Two watchers monitor a worker node's heartbeat counter with pure
 * remote reads. Half a simulated second in, the worker node "crashes"
 * (its kernel stops answering); both watchers notice within a few
 * probe periods — no RPC runtime, no acknowledgements, just reads that
 * stop returning.
 */
#include <cstdio>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "rmem/sync.h"
#include "sim/simulator.h"
#include "util/strings.h"

using namespace remora;

int
main()
{
    std::printf("remora failure-detector example: heartbeats by remote "
                "read (no control transfer)\n\n");

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node worker(sim, 1, "worker");
    mem::Node watcherA(sim, 2, "watcherA");
    mem::Node watcherB(sim, 3, "watcherB");
    rmem::RmemEngine we(worker), ea(watcherA), eb(watcherB);
    network.addHost(1, worker.nic());
    network.addHost(2, watcherA.nic());
    network.addHost(3, watcherB.nic());
    network.wireSwitched();

    mem::Process &workerProc = worker.spawnProcess("service");
    rmem::HeartbeatPublisher publisher(we, workerProc);

    auto report = [&sim](const char *who) {
        return [who, &sim](net::NodeId node) {
            std::printf("[%-9s] %s: node %u declared FAILED\n",
                        util::formatDuration(sim.now()).c_str(), who, node);
        };
    };
    mem::Process &procA = watcherA.spawnProcess("monitor");
    mem::Process &procB = watcherB.spawnProcess("monitor");
    rmem::HeartbeatMonitor monA(ea, procA, publisher.handle(),
                                report("watcherA"));
    rmem::HeartbeatMonitor monB(eb, procB, publisher.handle(),
                                report("watcherB"));

    publisher.start();
    monA.start();
    monB.start();

    // Let the cluster run healthy for half a second...
    sim.run(sim::msec(500));
    std::printf("[%-9s] %u heartbeats published, %llu + %llu probes "
                "answered, nobody suspected\n",
                util::formatDuration(sim.now()).c_str(), publisher.beats(),
                static_cast<unsigned long long>(monA.probes()),
                static_cast<unsigned long long>(monB.probes()));

    // ... then the worker node crashes outright: its kernel goes dark.
    publisher.stop();
    we.wire().setRmemHandler([](net::NodeId, rmem::Message &&) {});
    std::printf("[%-9s] worker node crashes (kernel silent)\n",
                util::formatDuration(sim.now()).c_str());

    sim.run(sim.now() + sim::msec(500));
    REMORA_ASSERT(monA.peerFailed() && monB.peerFailed());
    monA.stop();
    monB.stop();
    sim.run();

    std::printf("\nboth watchers converged on the failure using only "
                "timed remote reads (\"the fundamental mechanism needed "
                "for failure detection is timeouts\", §3.7)\n");
    return 0;
}
