/**
 * @file
 * Quickstart: the remote-memory model in one small program.
 *
 * Builds the paper's measurement testbed — two workstations on a
 * direct ATM link — then walks the core concepts:
 *
 *   1. a server process exports a protected memory segment;
 *   2. a client on the other machine imports it by name;
 *   3. the client WRITEs into it (pure data transfer: the server
 *      process never runs);
 *   4. the client WRITEs with the notify bit set (separate, optional
 *      control transfer: the server's blocked reader wakes);
 *   5. the client READs the segment back and checks the bytes.
 *
 * Run it and follow the narration.
 */
#include <cstdio>

#include "mem/node.h"
#include "names/clerk.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/strings.h"

using namespace remora;

namespace {

sim::Task<void>
serverSide(rmem::RmemEngine *engine, names::NameClerk *names,
           mem::Process *proc)
{
    auto &sim = engine->node().simulator();

    // 1. Export 4 KB of this process's memory under a public name.
    mem::Vaddr base = proc->space().allocRegion(4096);
    auto handle = co_await names->exportByName(
        *proc, base, 4096, rmem::Rights::kAll,
        rmem::NotifyPolicy::kConditional, "quickstart.board");
    REMORA_ASSERT(handle.ok());
    std::printf("[%-9s] server exported 'quickstart.board' "
                "(descriptor %u, generation %u)\n",
                util::formatDuration(sim.now()).c_str(),
                handle.value().descriptor, handle.value().generation);

    // 4b. Block on the segment's notification channel: this is the
    // *optional* control-transfer path. Plain writes land silently.
    auto *channel = engine->channel(handle.value().descriptor);
    rmem::Notification n = co_await channel->next();
    std::printf("[%-9s] server woken by notification: node %u wrote %u "
                "bytes at offset %u\n",
                util::formatDuration(sim.now()).c_str(), n.srcNode, n.count,
                n.offset);

    std::vector<uint8_t> seen(16);
    REMORA_ASSERT(proc->space().read(base, seen).ok());
    std::printf("[%-9s] server reads its own memory: \"%.*s\"\n",
                util::formatDuration(sim.now()).c_str(),
                static_cast<int>(seen.size()), seen.data());
}

sim::Task<void>
clientSide(rmem::RmemEngine *engine, names::NameClerk *names,
           mem::Process *proc)
{
    auto &sim = engine->node().simulator();

    // Give the server a moment to export.
    co_await sim::delay(sim, sim::msec(1));

    // 2. Import the segment by name (one remote read of the peer
    // clerk's registry resolves it).
    auto imported = co_await names->import("quickstart.board", 2);
    REMORA_ASSERT(imported.ok());
    rmem::ImportedSegment seg = imported.value();
    std::printf("[%-9s] client imported 'quickstart.board' from node %u\n",
                util::formatDuration(sim.now()).c_str(), seg.node);

    // 3. Pure data transfer: no control reaches the server process.
    std::string greeting = "hello remora!";
    std::vector<uint8_t> bytes(greeting.begin(), greeting.end());
    sim::Time t0 = sim.now();
    auto ws = co_await engine->write(seg, 0, bytes);
    REMORA_ASSERT(ws.ok());
    std::printf("[%-9s] client remote-wrote %zu bytes (local completion "
                "in %s; the server process never ran)\n",
                util::formatDuration(sim.now()).c_str(), bytes.size(),
                util::formatDuration(sim.now() - t0).c_str());

    // 4. The same write with the notify bit: now (and only now) the
    // destination gets a control transfer.
    ws = co_await engine->write(seg, 0, bytes, /*notify=*/true);
    REMORA_ASSERT(ws.ok());

    // 5. Read it back through the wire into a local segment.
    mem::Vaddr lbase = proc->space().allocRegion(4096);
    auto local = engine->exportSegment(*proc, lbase, 4096,
                                       rmem::Rights::kRead,
                                       rmem::NotifyPolicy::kNever,
                                       "quickstart.scratch");
    REMORA_ASSERT(local.ok());
    t0 = sim.now();
    auto read = co_await engine->read(
        seg, 0, local.value().descriptor, 0,
        static_cast<uint32_t>(bytes.size()));
    REMORA_ASSERT(read.status.ok());
    std::printf("[%-9s] client remote-read %zu bytes back in %s: \"%.*s\"\n",
                util::formatDuration(sim.now()).c_str(), read.data.size(),
                util::formatDuration(sim.now() - t0).c_str(),
                static_cast<int>(read.data.size()), read.data.data());
    REMORA_ASSERT(read.data == bytes);
}

} // namespace

int
main()
{
    std::printf("remora quickstart: two DECstations, one ATM link\n\n");

    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});

    mem::Node client(sim, 1, "client");
    mem::Node server(sim, 2, "server");
    rmem::RmemEngine clientEngine(client);
    rmem::RmemEngine serverEngine(server);
    network.addHost(1, client.nic());
    network.addHost(2, server.nic());
    network.wireDirect();

    names::NameClerk clientNames(clientEngine);
    names::NameClerk serverNames(serverEngine);
    clientNames.addPeer(2);
    serverNames.addPeer(1);

    mem::Process &serverProc = server.spawnProcess("app");
    mem::Process &clientProc = client.spawnProcess("app");

    auto s = serverSide(&serverEngine, &serverNames, &serverProc);
    auto c = clientSide(&clientEngine, &clientNames, &clientProc);
    sim.run();

    REMORA_ASSERT(s.done() && c.done());
    std::printf("\ndone: %llu simulated events, %s of simulated time\n",
                static_cast<unsigned long long>(sim.eventsProcessed()),
                util::formatDuration(sim.now()).c_str());
    return 0;
}
