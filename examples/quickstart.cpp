/**
 * @file
 * Quickstart: the remote-memory model in one small program.
 *
 * Builds the paper's measurement testbed — two workstations on a
 * direct ATM link — then walks the core concepts:
 *
 *   1. a server process exports a protected memory segment;
 *   2. a client on the other machine imports it by name;
 *   3. the client WRITEs into it (pure data transfer: the server
 *      process never runs);
 *   4. the client WRITEs with the notify bit set (separate, optional
 *      control transfer: the server's blocked reader wakes);
 *   5. the client READs the segment back and checks the bytes;
 *   6. a file read rides the same primitives end to end: client clerk →
 *      Hybrid-1 request write → server dispatch → return write.
 *
 * The whole run is recorded by the observability layer: it writes
 * quickstart.trace.json (open in chrome://tracing or ui.perfetto.dev)
 * and quickstart.metrics.json (every layer's counters, one document).
 *
 * Run it and follow the narration.
 */
#include <cstdio>

#include "dfs/backend.h"
#include "dfs/clerk.h"
#include "dfs/server.h"
#include "mem/node.h"
#include "names/clerk.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/strings.h"

using namespace remora;

namespace {

sim::Task<void>
serverSide(rmem::RmemEngine *engine, names::NameClerk *names,
           mem::Process *proc)
{
    auto &sim = engine->node().simulator();

    // 1. Export 4 KB of this process's memory under a public name.
    mem::Vaddr base = proc->space().allocRegion(4096);
    auto handle = co_await names->exportByName(
        proc, base, 4096, rmem::Rights::kAll,
        rmem::NotifyPolicy::kConditional, "quickstart.board");
    REMORA_ASSERT(handle.ok());
    std::printf("[%-9s] server exported 'quickstart.board' "
                "(descriptor %u, generation %u)\n",
                util::formatDuration(sim.now()).c_str(),
                handle.value().descriptor, handle.value().generation);

    // 4b. Block on the segment's notification channel: this is the
    // *optional* control-transfer path. Plain writes land silently.
    auto *channel = engine->channel(handle.value().descriptor);
    rmem::Notification n = co_await channel->next();
    std::printf("[%-9s] server woken by notification: node %u wrote %u "
                "bytes at offset %u\n",
                util::formatDuration(sim.now()).c_str(), n.srcNode, n.count,
                n.offset);

    std::vector<uint8_t> seen(16);
    REMORA_ASSERT(proc->space().read(base, seen).ok());
    std::printf("[%-9s] server reads its own memory: \"%.*s\"\n",
                util::formatDuration(sim.now()).c_str(),
                static_cast<int>(seen.size()), seen.data());
}

sim::Task<void>
clientSide(rmem::RmemEngine *engine, names::NameClerk *names,
           mem::Process *proc)
{
    auto &sim = engine->node().simulator();

    // Give the server a moment to export.
    co_await sim::delay(sim, sim::msec(1));

    // 2. Import the segment by name (one remote read of the peer
    // clerk's registry resolves it).
    auto imported = co_await names->import("quickstart.board", 2);
    REMORA_ASSERT(imported.ok());
    rmem::ImportedSegment seg = imported.value();
    std::printf("[%-9s] client imported 'quickstart.board' from node %u\n",
                util::formatDuration(sim.now()).c_str(), seg.node);

    // 3. Pure data transfer: no control reaches the server process.
    std::string greeting = "hello remora!";
    std::vector<uint8_t> bytes(greeting.begin(), greeting.end());
    sim::Time t0 = sim.now();
    auto ws = co_await engine->write(seg, 0, bytes);
    REMORA_ASSERT(ws.ok());
    std::printf("[%-9s] client remote-wrote %zu bytes (local completion "
                "in %s; the server process never ran)\n",
                util::formatDuration(sim.now()).c_str(), bytes.size(),
                util::formatDuration(sim.now() - t0).c_str());

    // 4. The same write with the notify bit: now (and only now) the
    // destination gets a control transfer.
    ws = co_await engine->write(seg, 0, bytes, /*notify=*/true);
    REMORA_ASSERT(ws.ok());

    // 5. Read it back through the wire into a local segment.
    mem::Vaddr lbase = proc->space().allocRegion(4096);
    auto local = engine->exportSegment(*proc, lbase, 4096,
                                       rmem::Rights::kRead,
                                       rmem::NotifyPolicy::kNever,
                                       "quickstart.scratch");
    REMORA_ASSERT(local.ok());
    t0 = sim.now();
    auto read = co_await engine->read(
        seg, 0, local.value().descriptor, 0,
        static_cast<uint32_t>(bytes.size()));
    REMORA_ASSERT(read.status.ok());
    std::printf("[%-9s] client remote-read %zu bytes back in %s: \"%.*s\"\n",
                util::formatDuration(sim.now()).c_str(), read.data.size(),
                util::formatDuration(sim.now() - t0).c_str(),
                static_cast<int>(read.data.size()), read.data.data());
    REMORA_ASSERT(read.data == bytes);
}

} // namespace

int
main()
{
    std::printf("remora quickstart: two DECstations, one ATM link\n\n");

    sim::Simulator sim;

    // Record everything this run does, against the simulated clock.
    obs::TraceRecorder::instance().enable(sim);

    net::Network network(sim, net::LinkParams{});

    mem::Node client(sim, 1, "client");
    mem::Node server(sim, 2, "server");
    rmem::RmemEngine clientEngine(client);
    rmem::RmemEngine serverEngine(server);
    network.addHost(1, client.nic());
    network.addHost(2, server.nic());
    network.wireDirect();

    names::NameClerk clientNames(clientEngine);
    names::NameClerk serverNames(serverEngine);
    clientNames.addPeer(2);
    serverNames.addPeer(1);

    mem::Process &serverProc = server.spawnProcess("app");
    mem::Process &clientProc = client.spawnProcess("app");

    auto s = serverSide(&serverEngine, &serverNames, &serverProc);
    auto c = clientSide(&clientEngine, &clientNames, &clientProc);
    sim.run();
    REMORA_ASSERT(s.done() && c.done());

    // 6. A file service over the same two primitives: the clerk's read
    // becomes one Hybrid-1 request write (with notification) and the
    // server's reply becomes pure return writes.
    dfs::FileStore store;
    dfs::FileServer fileServer(serverEngine, store);
    auto file = store.createFile(store.root(), "greeting.txt", 4096);
    REMORA_ASSERT(file.ok());
    fileServer.warmCaches();
    fileServer.start();
    sim.run();

    rpc::Hybrid1Client hyClient(clientEngine, clientProc,
                                fileServer.hybridHandle(),
                                fileServer.allocClientSlot());
    dfs::HyBackend hyBackend(hyClient);
    dfs::ServerClerk clerk(client.cpu(), hyBackend);
    sim::Time t0 = sim.now();
    auto fileRead = clerk.read(file.value(), 0, 1024);
    sim.run();
    REMORA_ASSERT(fileRead.done());
    REMORA_ASSERT(fileRead.result().ok());
    std::printf("[%-9s] clerk read 1 KB of 'greeting.txt' through the "
                "file service in %s\n",
                util::formatDuration(sim.now()).c_str(),
                util::formatDuration(sim.now() - t0).c_str());

    std::printf("\ndone: %llu simulated events, %s of simulated time\n",
                static_cast<unsigned long long>(sim.eventsProcessed()),
                util::formatDuration(sim.now()).c_str());

    // Export what the observability layer saw.
    obs::TraceRecorder::instance().disable();
    if (obs::TraceRecorder::instance().writeChromeJson(
            "quickstart.trace.json")) {
        std::printf("wrote quickstart.trace.json (%zu events; open in "
                    "chrome://tracing)\n",
                    obs::TraceRecorder::instance().eventCount());
    }

    obs::MetricRegistry metrics;
    client.registerStats(metrics, "client");
    server.registerStats(metrics, "server");
    clientEngine.registerStats(metrics, "client.rmem");
    serverEngine.registerStats(metrics, "server.rmem");
    clerk.registerStats(metrics, "client.dfs.clerk");
    fileServer.registerStats(metrics, "server.dfs.server");
    std::FILE *mf = std::fopen("quickstart.metrics.json", "w");
    if (mf != nullptr) {
        std::string json = metrics.dumpJson();
        std::fwrite(json.data(), 1, json.size(), mf);
        std::fputc('\n', mf);
        std::fclose(mf);
        std::printf("wrote quickstart.metrics.json (%zu metrics)\n",
                    metrics.size());
    }
    return 0;
}
