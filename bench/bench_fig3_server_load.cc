/**
 * @file
 * Reproduction of Figure 3: breakdown of server CPU activity per
 * operation, HY vs DX, and the paper's headline claim:
 *
 *   "On the average, we see that the pure data transfer scheme imposes
 *    less than half the server load imposed by control and data
 *    transfer schemes."
 *
 * For each operation the server CPU's per-category accounting is reset,
 * the operation is driven from the client, and the consumed CPU time is
 * read back split into the paper's four components: data reception,
 * control transfer, procedure invocation (+ the procedure body), and
 * data reply. Under DX the server CPU runs *only* the kernel emulation
 * of incoming/outgoing remote memory operations — reception and reply.
 *
 * The headline average weights the per-op loads by the Table 1a
 * operation mix (rows that map onto the twelve figure operations).
 */
#include <cstdio>

#include "bench_dfs_common.h"
#include "trace/mix.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Breakdown
{
    double dataRecvMs = 0;
    double controlMs = 0;
    double procMs = 0;
    double dataReplyMs = 0;

    double
    total() const
    {
        return dataRecvMs + controlMs + procMs + dataReplyMs;
    }
};

/** Run @p op via @p backend and capture the server CPU breakdown. */
Breakdown
measure(bench::DfsHarness &h, dfs::FileServiceBackend &backend,
        const bench::FigureOp &op, int iters)
{
    auto &cpu = h.cluster.nodeB.cpu();
    Breakdown b;
    for (int i = 0; i < iters; ++i) {
        cpu.resetAccounting();
        h.runOp(backend, op);
        b.dataRecvMs +=
            sim::toMsec(cpu.busyIn(sim::CpuCategory::kDataReceive));
        b.controlMs +=
            sim::toMsec(cpu.busyIn(sim::CpuCategory::kControlTransfer));
        b.procMs += sim::toMsec(cpu.busyIn(sim::CpuCategory::kProcInvoke) +
                                cpu.busyIn(sim::CpuCategory::kProcExec));
        b.dataReplyMs +=
            sim::toMsec(cpu.busyIn(sim::CpuCategory::kDataReply));
    }
    b.dataRecvMs /= iters;
    b.controlMs /= iters;
    b.procMs /= iters;
    b.dataReplyMs /= iters;
    return b;
}

/** Table 1a weight for a figure operation (readdir/read/write sizes
 * split their class weight evenly across the figure's variants). */
double
mixWeight(const bench::FigureOp &op)
{
    using trace::OpClass;
    switch (op.proc) {
      case dfs::NfsProc::kGetAttr:
        return trace::paperMixPercent(OpClass::kGetAttr);
      case dfs::NfsProc::kLookup:
        return trace::paperMixPercent(OpClass::kLookup);
      case dfs::NfsProc::kReadLink:
        return trace::paperMixPercent(OpClass::kReadLink);
      case dfs::NfsProc::kRead:
        return trace::paperMixPercent(OpClass::kRead) / 3.0;
      case dfs::NfsProc::kReadDir:
        return trace::paperMixPercent(OpClass::kReadDir) / 3.0;
      case dfs::NfsProc::kWrite:
        return trace::paperMixPercent(OpClass::kWrite) / 3.0;
      default:
        return 0.0;
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 3: Breakdown of Server Activity");

    bench::DfsHarness h;
    constexpr int kIters = 10;

    util::TextTable table({"Operation", "Scheme", "recv (ms)", "ctl (ms)",
                           "proc (ms)", "reply (ms)", "total (ms)"});

    double wHy = 0, wDx = 0, wSum = 0;
    bool dxAlwaysLighter = true;
    bool dxHasNoControl = true;
    bench::BenchReport report("fig3_server_load");

    for (const bench::FigureOp &op : bench::figureOps()) {
        Breakdown hy = measure(h, h.hy, op, kIters);
        Breakdown dx = measure(h, h.dx, op, kIters);
        report.metric(std::string(op.label) + ".hy.total_ms", hy.total(),
                      "ms");
        report.metric(std::string(op.label) + ".hy.control_ms", hy.controlMs,
                      "ms");
        report.metric(std::string(op.label) + ".dx.total_ms", dx.total(),
                      "ms");

        table.addRow({op.label, "HY", bench::fmt(hy.dataRecvMs, 3),
                      bench::fmt(hy.controlMs, 3), bench::fmt(hy.procMs, 3),
                      bench::fmt(hy.dataReplyMs, 3),
                      bench::fmt(hy.total(), 3)});
        table.addRow({"", "DX", bench::fmt(dx.dataRecvMs, 3),
                      bench::fmt(dx.controlMs, 3), bench::fmt(dx.procMs, 3),
                      bench::fmt(dx.dataReplyMs, 3),
                      bench::fmt(dx.total(), 3)});

        dxAlwaysLighter = dxAlwaysLighter && (dx.total() < hy.total());
        dxHasNoControl =
            dxHasNoControl && dx.controlMs == 0 && dx.procMs == 0;

        double w = mixWeight(op);
        wHy += w * hy.total();
        wDx += w * dx.total();
        wSum += w;
    }
    std::printf("%s\n", table.render().c_str());

    double avgHy = wHy / wSum;
    double avgDx = wDx / wSum;
    std::printf("Shape checks:\n");
    std::printf("  DX server load lower on every operation: %s\n",
                dxAlwaysLighter ? "yes" : "NO");
    std::printf("  DX involves no control transfer or procedure "
                "execution on the server: %s\n",
                dxHasNoControl ? "yes" : "NO");
    std::printf("  mix-weighted server load: HY %.3f ms/op, DX %.3f ms/op "
                "-> DX/HY = %.2f\n",
                avgHy, avgDx, avgDx / avgHy);
    std::printf("  paper: \"less than half the server load\": %s\n",
                (avgDx / avgHy) < 0.5 ? "yes" : "NO");

    report.metric("mix_weighted.hy_ms_per_op", avgHy, "ms");
    report.metric("mix_weighted.dx_ms_per_op", avgDx, "ms");
    report.metric("mix_weighted.dx_over_hy", avgDx / avgHy, "x");
    report.check("dx_lighter_on_every_op", dxAlwaysLighter);
    report.check("dx_no_control_or_proc", dxHasNoControl);
    report.check("dx_less_than_half_hy_load", (avgDx / avgHy) < 0.5);
    report.note("per-op server CPU split into the paper's four "
                "components; average weighted by the Table 1a mix");
    report.write();
    return 0;
}
