/**
 * @file
 * Ablation A9: switchless vs. switched cluster.
 *
 * Table 2 was measured "between two hosts connected directly without a
 * switch; we expect next-generation switches to introduce only small
 * additional latency." This ablation quantifies that expectation: the
 * same single-cell operations through an output-queued switch, sweeping
 * the fabric's per-cell forwarding latency.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Numbers
{
    double writeUs;
    double readUs;
    double casUs;
};

Numbers
measure(bool switched, sim::Duration fabricLatency)
{
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});
    mem::Node a(sim, 1, "client"), b(sim, 2, "server");
    rmem::RmemEngine ea(a), eb(b);
    network.addHost(1, a.nic());
    network.addHost(2, b.nic());
    if (switched) {
        network.wireSwitched(fabricLatency);
    } else {
        network.wireDirect();
    }

    mem::Process &server = b.spawnProcess("server");
    mem::Process &client = a.spawnProcess("client");
    mem::Vaddr base = server.space().allocRegion(1 << 16);
    auto seg = eb.exportSegment(server, base, 1 << 16, rmem::Rights::kAll,
                                rmem::NotifyPolicy::kNever, "sw");
    REMORA_ASSERT(seg.ok());
    mem::Vaddr lbase = client.space().allocRegion(1 << 16);
    auto local = ea.exportSegment(client, lbase, 1 << 16, rmem::Rights::kAll,
                                  rmem::NotifyPolicy::kNever, "sw.l");
    REMORA_ASSERT(local.ok());
    sim.run();

    Numbers n{};
    constexpr int kIters = 30;
    for (int i = 0; i < kIters; ++i) {
        sim::Time t0 = sim.now();
        auto w = ea.write(seg.value(), 0, std::vector<uint8_t>(40, 1));
        bench::run(sim, w);
        sim.run();
        n.writeUs += sim::toUsec(b.cpu().busyUntil() - t0);

        t0 = sim.now();
        auto r = ea.read(seg.value(), 0, local.value().descriptor, 0, 40);
        bench::run(sim, r);
        n.readUs += sim::toUsec(sim.now() - t0);
        sim.run();

        t0 = sim.now();
        auto c = ea.cas(seg.value(), 0, 0, 0, local.value().descriptor, 0);
        bench::run(sim, c);
        n.casUs += sim::toUsec(sim.now() - t0);
        sim.run();
    }
    n.writeUs /= kIters;
    n.readUs /= kIters;
    n.casUs /= kIters;
    return n;
}

} // namespace

int
main()
{
    bench::banner("Ablation A9: switchless testbed vs switched cluster");

    Numbers direct = measure(false, 0);
    util::TextTable table({"Topology", "Write (us)", "Read (us)",
                           "CAS (us)"});
    table.addRow({"direct (the paper's testbed)", bench::fmt(direct.writeUs),
                  bench::fmt(direct.readUs), bench::fmt(direct.casUs)});

    bench::BenchReport report("ablation_switch");
    report.metric("direct.write_us", direct.writeUs, "us");
    report.metric("direct.read_us", direct.readUs, "us");
    report.metric("direct.cas_us", direct.casUs, "us");

    double worstReadPenalty = 0;
    for (double fabricUs : {1.0, 2.0, 5.0, 10.0}) {
        Numbers sw = measure(true, sim::usec(fabricUs));
        char label[64];
        std::snprintf(label, sizeof(label), "switched, %.0f us fabric",
                      fabricUs);
        table.addRow({label, bench::fmt(sw.writeUs), bench::fmt(sw.readUs),
                      bench::fmt(sw.casUs)});
        if (fabricUs <= 2.0) {
            worstReadPenalty =
                std::max(worstReadPenalty, sw.readUs - direct.readUs);
        }
        std::string key =
            "switched_" + std::to_string(static_cast<int>(fabricUs)) + "us";
        report.metric(key + ".write_us", sw.writeUs, "us");
        report.metric(key + ".read_us", sw.readUs, "us");
        report.metric(key + ".cas_us", sw.casUs, "us");
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape check: a fast fabric (<=2 us) stays a modest "
                "fraction of the op (<30%% on reads): %s\n",
                worstReadPenalty < 0.3 * direct.readUs ? "yes" : "NO");

    report.metric("worst_read_penalty_us_fast_fabric", worstReadPenalty,
                  "us");
    report.check("fast_fabric_lt_30pct_read",
                 worstReadPenalty < 0.3 * direct.readUs);
    report.write();
    std::printf("(store-and-forward adds one cell serialization plus "
                "propagation per hop, and reads cross the fabric twice:\n"
                " the floor is ~10 us round-trip regardless of fabric "
                "speed — 'only small additional latency' relative to the "
                "45 us read)\n");
    return 0;
}
