/**
 * @file
 * Reproduction of Table 1a: summary of NFS RPC activity at the
 * departmental file server (28,860,744 calls over several days).
 *
 * The workload generator is seeded with the published per-class counts;
 * this bench validates that (a) the exact published population is
 * carried verbatim, and (b) a sampled stream drawn from the generator
 * converges to the published percentages (so the simulation-driving
 * experiments see the right skew).
 *
 * The paper's observation checked at the bottom: for every row except
 * the null ping, the goal of the RPC is purely to move data or
 * metadata — those calls could be replaced by data transfer alone.
 */
#include <cstdio>

#include "bench_common.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace remora;

int
main()
{
    bench::banner("Table 1a: Summary of NFS RPC Activity");

    constexpr uint64_t kSampleOps = 2000000;
    trace::WorkloadGen gen(42);
    trace::TrafficSummary sampled = gen.replay(kSampleOps);

    util::TextTable table({"Activity", "Paper count", "Paper %",
                           "Sampled %", "Deviation"});
    bench::BenchReport report("table1a_nfs_mix");
    double maxDev = 0;
    for (const trace::MixRow &row : trace::paperMix()) {
        size_t idx = static_cast<size_t>(row.cls);
        double paperPct = trace::paperMixPercent(row.cls);
        double samplePct = 100.0 *
                           static_cast<double>(sampled.opCount[idx]) /
                           static_cast<double>(sampled.totalOps);
        maxDev = std::max(maxDev, std::abs(samplePct - paperPct));
        table.addRow({trace::opClassName(row.cls),
                      util::formatCount(row.count), bench::fmt(paperPct),
                      bench::fmt(samplePct),
                      bench::deviation(samplePct, paperPct)});
        report.metric(std::string(trace::opClassName(row.cls)) +
                          ".sampled_pct",
                      samplePct, "%", paperPct);
    }
    table.addSeparator();
    table.addRow({"Total", util::formatCount(trace::paperMixTotal()), "100",
                  "100", "-"});
    std::printf("%s\n", table.render().c_str());

    uint64_t dataMotivated = 0;
    for (const trace::MixRow &row : trace::paperMix()) {
        if (row.cls != trace::OpClass::kNullPing) {
            dataMotivated += row.count;
        }
    }
    std::printf("Shape checks:\n");
    std::printf("  sampled mix within 0.2%% of the published mix: %s "
                "(max deviation %.3f points over %llu draws)\n",
                maxDev < 0.2 ? "yes" : "NO", maxDev,
                static_cast<unsigned long long>(kSampleOps));
    double dataPct = 100.0 * static_cast<double>(dataMotivated) /
                     static_cast<double>(trace::paperMixTotal());
    std::printf("  calls whose goal is pure data/metadata movement: "
                "%.1f%% (everything except the null ping)\n",
                dataPct);

    report.metric("max_deviation_points", maxDev, "pct-points");
    report.metric("data_motivated_pct", dataPct, "%");
    report.check("sampled_mix_within_0.2_points", maxDev < 0.2);
    report.note("sampled " + std::to_string(kSampleOps) +
                " draws from the published per-class counts");
    report.write();
    return 0;
}
