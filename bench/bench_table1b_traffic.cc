/**
 * @file
 * Reproduction of Table 1b: breakdown of NFS RPC traffic into control
 * and data portions, over the exact Table 1a call population.
 *
 * Accounting rules follow §2 precisely: network-protocol headers are
 * excluded; file handles, communication identifiers (xids), and
 * RPC/XDR marshaling overheads count as *control*; the information the
 * file-system protocol itself needs (file bytes, attributes, names,
 * link targets, directory entries) counts as *data*. Byte counts come
 * from the same encoders the simulated file service transmits with.
 *
 * The paper's published reference points: the write row's control/data
 * ratio is 0.01, and the overall ratio is 0.14 ("overall, the control
 * traffic due to the RPC model is about 12% of the total").
 */
#include <cstdio>

#include "bench_common.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace remora;

int
main()
{
    bench::banner("Table 1b: Breakdown of NFS RPC Traffic");

    trace::WorkloadGen gen(42);
    trace::TrafficSummary sum = gen.replayPaperPopulation();

    util::TextTable table(
        {"Activity", "Control (MB)", "Data (MB)", "Control/Data"});
    auto mb = [](uint64_t bytes) {
        return bench::fmt(static_cast<double>(bytes) / 1e6, 1);
    };
    for (const trace::MixRow &row : trace::paperMix()) {
        size_t idx = static_cast<size_t>(row.cls);
        const trace::Traffic &t = sum.perClass[idx];
        table.addRow({trace::opClassName(row.cls), mb(t.controlBytes),
                      mb(t.dataBytes),
                      t.dataBytes ? bench::fmt(t.ratio(), 2) : "-"});
    }
    trace::Traffic total = sum.total();
    table.addSeparator();
    table.addRow({"Overall Total", mb(total.controlBytes),
                  mb(total.dataBytes), bench::fmt(total.ratio(), 2)});
    std::printf("%s\n", table.render().c_str());

    size_t writeIdx = static_cast<size_t>(trace::OpClass::kWrite);
    double writeRatio = sum.perClass[writeIdx].ratio();
    double overall = total.ratio();
    double controlShare = 100.0 *
                          static_cast<double>(total.controlBytes) /
                          static_cast<double>(total.controlBytes +
                                              total.dataBytes);

    std::printf("Paper reference points:\n");
    std::printf("  Write File Data ratio: paper 0.01, measured %.3f\n",
                writeRatio);
    std::printf("  Overall ratio: paper 0.14, measured %.3f\n", overall);
    std::printf("  \"control traffic ... about 12%% of the total\": "
                "measured %.1f%%\n",
                controlShare);
    std::printf("Shape checks:\n");
    std::printf("  write is the least control-heavy class: %s\n",
                writeRatio <= overall ? "yes" : "NO");
    std::printf("  eliminating RPC removes a non-trivial traffic "
                "fraction (>5%%): %s\n",
                controlShare > 5.0 ? "yes" : "NO");

    bench::BenchReport report("table1b_traffic");
    report.metric("write.control_over_data", writeRatio, "x", 0.01);
    report.metric("overall.control_over_data", overall, "x", 0.14);
    report.metric("overall.control_share_pct", controlShare, "%", 12.0);
    report.metric("overall.control_mb",
                  static_cast<double>(total.controlBytes) / 1e6, "MB");
    report.metric("overall.data_mb",
                  static_cast<double>(total.dataBytes) / 1e6, "MB");
    report.check("write_least_control_heavy", writeRatio <= overall);
    report.check("control_share_gt_5pct", controlShare > 5.0);
    report.write();
    return 0;
}
