/**
 * @file
 * Ablation A7: the three clerk/server data-movement alternatives of
 * §5.1, head to head.
 *
 *   Write Requests Only — the server eagerly remote-writes updated
 *       records into subscribed clerk caches; a fresh clerk serves
 *       reads from local memory (zero wire traffic at read time);
 *   Read Requests Only  — the clerk fetches from the server's exported
 *       areas on demand (the DX scheme of Figures 2/3);
 *   Hybrid-1            — write-with-notification + return writes.
 *
 * Workload: K repeated reads over a small hot set of 8 KB blocks —
 * the read-mostly regime the paper's departmental server lived in.
 * Reported per read: client latency, server CPU, and cells on the
 * wire; plus the eager scheme's one-time push cost, which is the fee
 * it pays to make reads free.
 */
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "dfs/backend.h"
#include "dfs/push_cache.h"
#include "dfs/server.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Harness
{
    bench::TwoNode cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    dfs::ClerkPushCache pushed;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::DxBackend dx;
    std::vector<dfs::FileHandle> files;

    /** Roomy enough that the 8 hot blocks never collide direct-mapped. */
    static dfs::PushCacheGeometry
    pushGeometry()
    {
        dfs::PushCacheGeometry geo;
        geo.attrBuckets = 512;
        geo.dataSlots = 128;
        return geo;
    }

    Harness()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          pushed(cluster.engineA, clerkProc, pushGeometry()),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, &hyClient)
    {
        // Keep only files whose block lands in a distinct push-cache
        // slot: the push cache is direct-mapped, so slot-sharing files
        // would evict each other (real deployments size the cache to
        // the hot set; see tests/test_dfs_push.cc for eviction).
        std::set<uint32_t> usedSlots;
        for (int i = 0; files.size() < 8; ++i) {
            auto f = store.createFile(store.root(),
                                      "hot" + std::to_string(i), 8192);
            REMORA_ASSERT(f.ok());
            uint32_t slot = dfs::dataSlot(f.value().key(), 0,
                                          pushGeometry().dataSlots);
            if (usedSlots.insert(slot).second) {
                files.push_back(f.value());
            } else {
                REMORA_ASSERT(store.remove(store.root(),
                                           "hot" + std::to_string(i))
                                  .ok());
            }
        }
        server.subscribe(pushed.handle(), pushed.geometry());
        server.warmCaches(); // also fires the eager pushes
        server.start();
        cluster.sim.run();
    }
};

struct SchemeResult
{
    double latencyUs = 0;
    double serverUs = 0;
    double cells = 0;
};

} // namespace

int
main()
{
    bench::banner("Ablation A7: §5.1 transfer schemes — eager push vs "
                  "read-pull vs Hybrid-1");

    Harness h;
    constexpr int kRounds = 20;
    auto &serverCpu = h.cluster.nodeB.cpu();

    // One-time cost of eager distribution (already paid during warm).
    double pushCells = 0;
    for (const auto &link : h.cluster.network.links()) {
        pushCells += static_cast<double>(link->cellsSent());
    }
    uint64_t pushCount = h.server.pushesIssued();

    auto measure = [&](auto &&readOnce) {
        SchemeResult r;
        serverCpu.resetAccounting();
        uint64_t cells0 = 0;
        for (const auto &link : h.cluster.network.links()) {
            cells0 += link->cellsSent();
        }
        sim::Time t0 = h.cluster.sim.now();
        int reads = 0;
        for (int round = 0; round < kRounds; ++round) {
            for (const dfs::FileHandle &fh : h.files) {
                readOnce(fh);
                ++reads;
            }
        }
        h.cluster.sim.run();
        uint64_t cells1 = 0;
        for (const auto &link : h.cluster.network.links()) {
            cells1 += link->cellsSent();
        }
        r.latencyUs = sim::toUsec(h.cluster.sim.now() - t0) / reads;
        r.serverUs = sim::toUsec(serverCpu.totalBusy()) / reads;
        r.cells = static_cast<double>(cells1 - cells0) / reads;
        return r;
    };

    SchemeResult push = measure([&](dfs::FileHandle fh) {
        std::vector<uint8_t> out;
        bool hit = h.pushed.findBlock(fh, 0, out);
        REMORA_ASSERT(hit && out.size() == 8192);
        // Local memory read: charge the copy the clerk performs.
        h.cluster.nodeA.cpu().post(
            h.cluster.engineA.costs().copyCost(out.size()),
            sim::CpuCategory::kOther);
        h.cluster.sim.run();
    });

    SchemeResult pull = measure([&](dfs::FileHandle fh) {
        auto t = h.dx.read(fh, 0, 8192);
        auto r = bench::run(h.cluster.sim, t);
        REMORA_ASSERT(r.ok());
    });

    SchemeResult hybrid = measure([&](dfs::FileHandle fh) {
        auto t = h.hy.read(fh, 0, 8192);
        auto r = bench::run(h.cluster.sim, t);
        REMORA_ASSERT(r.ok());
    });

    util::TextTable table({"Scheme", "Read latency (us)",
                           "Server CPU/read (us)", "Cells/read"});
    table.addRow({"Write Requests Only (eager push)",
                  bench::fmt(push.latencyUs), bench::fmt(push.serverUs),
                  bench::fmt(push.cells)});
    table.addRow({"Read Requests Only (DX pull)",
                  bench::fmt(pull.latencyUs), bench::fmt(pull.serverUs),
                  bench::fmt(pull.cells)});
    table.addRow({"Hybrid-1", bench::fmt(hybrid.latencyUs),
                  bench::fmt(hybrid.serverUs), bench::fmt(hybrid.cells)});
    std::printf("%s\n", table.render().c_str());

    std::printf("one-time eager distribution: %llu pushes, %.0f cells "
                "(amortized over all future reads)\n",
                static_cast<unsigned long long>(pushCount), pushCells);
    std::printf("Shape checks:\n");
    std::printf("  read-time ordering push < pull < hybrid (latency): %s\n",
                (push.latencyUs < pull.latencyUs &&
                 pull.latencyUs < hybrid.latencyUs)
                    ? "yes"
                    : "NO");
    std::printf("  eager push makes reads free of server load and wire "
                "traffic: %s\n",
                (push.serverUs == 0 && push.cells == 0) ? "yes" : "NO");

    bench::BenchReport report("ablation_schemes");
    report.metric("push.read_latency_us", push.latencyUs, "us");
    report.metric("push.server_cpu_us", push.serverUs, "us");
    report.metric("push.cells_per_read", push.cells, "cells");
    report.metric("pull.read_latency_us", pull.latencyUs, "us");
    report.metric("pull.server_cpu_us", pull.serverUs, "us");
    report.metric("pull.cells_per_read", pull.cells, "cells");
    report.metric("hybrid.read_latency_us", hybrid.latencyUs, "us");
    report.metric("hybrid.server_cpu_us", hybrid.serverUs, "us");
    report.metric("hybrid.cells_per_read", hybrid.cells, "cells");
    report.metric("eager.pushes", static_cast<double>(pushCount), "pushes");
    report.metric("eager.cells", pushCells, "cells");
    report.check("latency_push_lt_pull_lt_hybrid",
                 push.latencyUs < pull.latencyUs &&
                     pull.latencyUs < hybrid.latencyUs);
    report.check("push_reads_free",
                 push.serverUs == 0 && push.cells == 0);
    report.write();
    return 0;
}
