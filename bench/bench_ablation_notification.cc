/**
 * @file
 * Ablation A2: completion discovery — notification vs polling.
 *
 * The model deliberately makes control transfer optional: a reader can
 * learn that data arrived either by taking a notification (costing the
 * full fd/select dispatch path) or by spinning on the destination
 * memory word ("the reader has no way of knowing that the read
 * returned data except by repeatedly checking the destination memory
 * location", §3.1.1). This bench quantifies the trade-off the paper's
 * whole structure exploits:
 *
 *  - polling discovers completion almost immediately but burns client
 *    CPU while it spins;
 *  - notification frees the CPU but adds the ~260 us dispatch latency.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Harness
{
    bench::TwoNode cluster;
    mem::Process &server;
    mem::Process &client;
    rmem::ImportedSegment remote;
    rmem::SegmentId localSeg;
    mem::Vaddr localBase;

    Harness()
        : server(cluster.nodeB.spawnProcess("server")),
          client(cluster.nodeA.spawnProcess("client"))
    {
        mem::Vaddr base = server.space().allocRegion(65536);
        auto h = cluster.engineB.exportSegment(
            server, base, 65536, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "src");
        REMORA_ASSERT(h.ok());
        remote = h.value();
        // Pre-fill source data.
        std::vector<uint8_t> content(65536, 0x3c);
        REMORA_ASSERT(server.space().write(base, content).ok());

        localBase = client.space().allocRegion(65536);
        auto l = cluster.engineA.exportSegment(
            client, localBase, 65536, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "dst");
        REMORA_ASSERT(l.ok());
        localSeg = l.value().descriptor;
        cluster.sim.run();
    }
};

struct Sample
{
    double latencyUs;
    double clientCpuUs;
};

/** Read with notify: completion known when the channel fires. */
Sample
notified(Harness &h, uint32_t bytes)
{
    auto &sim = h.cluster.sim;
    auto *ch = h.cluster.engineA.channel(h.localSeg);
    auto waiter = ch->next();
    sim::Duration cpu0 = h.cluster.nodeA.cpu().totalBusy();
    sim::Time t0 = sim.now();
    auto rd = h.cluster.engineA.read(h.remote, 0, h.localSeg, 0, bytes, true);
    bench::run(sim, rd);
    while (!waiter.done() && sim.step()) {
    }
    REMORA_ASSERT(waiter.done());
    Sample s{sim::toUsec(sim.now() - t0),
             sim::toUsec(h.cluster.nodeA.cpu().totalBusy() - cpu0)};
    sim.run();
    return s;
}

/** Read + user-level spin on the destination word. */
Sample
polled(Harness &h, uint32_t bytes)
{
    auto &sim = h.cluster.sim;
    // Reset the flag word, then spin until the last word flips.
    mem::Vaddr flagVa = h.localBase + bytes - 4;
    REMORA_ASSERT(h.client.space().writeWord(flagVa, 0).ok());

    sim::Duration cpu0 = h.cluster.nodeA.cpu().totalBusy();
    sim::Time t0 = sim.now();

    auto job = [](Harness *hh, uint32_t n,
                  mem::Vaddr flag) -> sim::Task<void> {
        auto rd = hh->cluster.engineA.read(hh->remote, 0, hh->localSeg, 0, n);
        for (;;) {
            auto w = hh->client.space().readWord(flag);
            REMORA_ASSERT(w.ok());
            if (w.value() != 0) {
                break;
            }
            // The spin itself holds the CPU at user level but is
            // preempted by the kernel's receive path, so it is not
            // charged against the CpuResource (which is FCFS); the
            // notional CPU burned is the whole wait, reported below.
            co_await sim::delay(hh->cluster.engineA.node().simulator(),
                                sim::usec(2));
        }
        co_await rd; // reclaim the read task
    };
    auto task = job(&h, bytes, flagVa);
    bench::run(sim, task);
    (void)cpu0;
    // Spinning occupies the client CPU for the entire wait.
    Sample s{sim::toUsec(sim.now() - t0), sim::toUsec(sim.now() - t0)};
    sim.run();
    return s;
}

} // namespace

int
main()
{
    bench::banner("Ablation A2: notification vs polling for completion");

    Harness h;
    constexpr int kIters = 20;

    util::TextTable table({"Read size", "Poll lat (us)", "Notify lat (us)",
                           "Poll CPU (us)", "Notify CPU (us)",
                           "Notify premium (us)"});
    bench::BenchReport report("ablation_notification");
    for (uint32_t bytes : {40u, 1024u, 8192u}) {
        Sample p{}, n{};
        for (int i = 0; i < kIters; ++i) {
            Sample ps = polled(h, bytes);
            Sample ns = notified(h, bytes);
            p.latencyUs += ps.latencyUs;
            p.clientCpuUs += ps.clientCpuUs;
            n.latencyUs += ns.latencyUs;
            n.clientCpuUs += ns.clientCpuUs;
        }
        p.latencyUs /= kIters;
        p.clientCpuUs /= kIters;
        n.latencyUs /= kIters;
        n.clientCpuUs /= kIters;
        table.addRow({std::to_string(bytes), bench::fmt(p.latencyUs),
                      bench::fmt(n.latencyUs), bench::fmt(p.clientCpuUs),
                      bench::fmt(n.clientCpuUs),
                      bench::fmt(n.latencyUs - p.latencyUs)});
        std::string key = "read_" + std::to_string(bytes) + "b";
        report.metric(key + ".poll.latency_us", p.latencyUs, "us");
        report.metric(key + ".notify.latency_us", n.latencyUs, "us");
        report.metric(key + ".poll.client_cpu_us", p.clientCpuUs, "us");
        report.metric(key + ".notify.client_cpu_us", n.clientCpuUs, "us");
        report.metric(key + ".notify_premium_us",
                      n.latencyUs - p.latencyUs, "us", 260);
        report.check(key + "_notify_slower", n.latencyUs > p.latencyUs);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check: the notification premium tracks Table 2's "
                "260 us overhead at every size.\n");
    report.write();
    return 0;
}
