/**
 * @file
 * Ablation A8: write-coherence tokens over the communication model.
 *
 * Section 5.1 argues a Calypso-style token scheme maps onto the
 * primitives with almost no control transfer: "Token acquire and
 * release can be implemented using compare-and-swap operations ...
 * For the commonly occurring sharing patterns in distributed file
 * systems, we expect the usage of control transfer for coherence to
 * be rare."
 *
 * Part 1 measures the three acquisition paths in isolation: cached
 * (token already held — no wire traffic), uncontended (one remote
 * CAS), and contended (revocation via control transfer + retry).
 *
 * Part 2 replays a Zipf-skewed write workload from two clients with
 * per-client affinity (each hot file is mostly written by one client,
 * the realistic DFS sharing pattern) and reports what fraction of
 * acquisitions needed any wire traffic at all, and what fraction
 * needed control transfer — the paper's "rare" claim, quantified.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "dfs/token.h"
#include "sim/random.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Harness
{
    sim::Simulator sim;
    net::Network network;
    std::vector<std::unique_ptr<mem::Node>> nodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> engines;
    std::unique_ptr<dfs::TokenArea> area;
    std::vector<std::unique_ptr<dfs::TokenClient>> clients;

    Harness() : network(sim, net::LinkParams{})
    {
        for (int i = 0; i < 3; ++i) {
            nodes.push_back(std::make_unique<mem::Node>(
                sim, static_cast<net::NodeId>(i + 1),
                "n" + std::to_string(i + 1)));
            engines.push_back(
                std::make_unique<rmem::RmemEngine>(*nodes.back()));
            network.addHost(static_cast<net::NodeId>(i + 1),
                            nodes.back()->nic());
        }
        network.wireSwitched();
        mem::Process &srv = nodes[0]->spawnProcess("server");
        dfs::TokenParams params;
        params.tokenSlots = 4096; // ample: accidental slot sharing is noise
        area = std::make_unique<dfs::TokenArea>(*engines[0], srv, params);
        for (int i = 1; i < 3; ++i) {
            mem::Process &proc = nodes[i]->spawnProcess("clerk");
            clients.push_back(std::make_unique<dfs::TokenClient>(
                *engines[i], proc, area->handle(), params));
        }
        sim.run();
    }
};

} // namespace

int
main()
{
    bench::banner("Ablation A8: token coherence — CAS acquire, "
                  "control-transfer revocation");

    bench::BenchReport report("ablation_tokens");

    // Part 1: the three acquisition paths.
    {
        Harness h;
        auto &c1 = *h.clients[0];
        auto &c2 = *h.clients[1];

        sim::Time t0 = h.sim.now();
        auto a = c1.acquire(1);
        bench::run(h.sim, a);
        double uncontendedUs = sim::toUsec(h.sim.now() - t0);
        h.sim.run();

        t0 = h.sim.now();
        auto b = c1.acquire(1);
        bench::run(h.sim, b);
        double cachedUs = sim::toUsec(h.sim.now() - t0);

        t0 = h.sim.now();
        auto c = c2.acquire(1); // c1 holds it: revocation required
        bench::run(h.sim, c);
        double contendedUs = sim::toUsec(h.sim.now() - t0);
        h.sim.run();

        util::TextTable table({"Acquisition path", "Latency (us)",
                               "Wire mechanism"});
        table.addRow({"cached (token held locally)", bench::fmt(cachedUs),
                      "none"});
        table.addRow({"uncontended", bench::fmt(uncontendedUs),
                      "1 remote CAS + tag write"});
        table.addRow({"contended", bench::fmt(contendedUs),
                      "revoke (control transfer) + retry CAS"});
        std::printf("%s\n", table.render().c_str());

        report.metric("acquire.cached_us", cachedUs, "us");
        report.metric("acquire.uncontended_us", uncontendedUs, "us");
        report.metric("acquire.contended_us", contendedUs, "us");
        report.check("cached_lt_uncontended_lt_contended",
                     cachedUs < uncontendedUs &&
                         uncontendedUs < contendedUs);
    }

    // Part 2: sharing-pattern replay.
    {
        Harness h;
        constexpr int kFiles = 32;
        constexpr int kWrites = 400;
        sim::Random rng(7);
        sim::Random::Zipf zipf(kFiles, 1.0);

        uint64_t acquisitions = 0;
        auto worker = [&](dfs::TokenClient *client, uint64_t affinity,
                          uint64_t seedMix) -> sim::Task<void> {
            sim::Random local(seedMix);
            sim::Random::Zipf pick(kFiles, 1.0);
            for (int i = 0; i < kWrites; ++i) {
                // Per-client affinity: interleave file ids so each
                // client's hot set is mostly private, with occasional
                // crossing — the common DFS sharing pattern.
                uint64_t file = pick.sample(local) * 2 + affinity;
                if (local.uniformInt(40) == 0) {
                    file ^= 1; // 2.5% of writes touch the other's files
                }
                auto s = co_await client->acquire(file);
                REMORA_ASSERT(s.ok());
                ++acquisitions;
                client->beginUse(file);
                co_await sim::delay(h.sim, sim::usec(100)); // the write
                client->endUse(file);
                // Token kept cached: release only on revocation.
            }
        };
        auto t1 = worker(h.clients[0].get(), 0, 11);
        auto t2 = worker(h.clients[1].get(), 1, 22);
        h.sim.run();
        REMORA_ASSERT(t1.done() && t2.done());

        uint64_t localHits =
            h.clients[0]->localHits() + h.clients[1]->localHits();
        uint64_t revokes = h.clients[0]->revocationsSent() +
                           h.clients[1]->revocationsSent();
        double localPct = 100.0 * static_cast<double>(localHits) /
                          static_cast<double>(acquisitions);
        double ctPct = 100.0 * static_cast<double>(revokes) /
                       static_cast<double>(acquisitions);

        std::printf("sharing-pattern replay: %llu token acquisitions "
                    "across 2 writers\n",
                    static_cast<unsigned long long>(acquisitions));
        std::printf("  served from the local token cache : %.1f%%\n",
                    localPct);
        std::printf("  needed control-transfer revocation: %.1f%%\n",
                    ctPct);
        std::printf("Shape check: control transfer for coherence is rare "
                    "(<10%% of acquisitions): %s\n",
                    ctPct < 10.0 ? "yes" : "NO");

        report.metric("replay.acquisitions",
                      static_cast<double>(acquisitions), "ops");
        report.metric("replay.local_hit_pct", localPct, "%");
        report.metric("replay.control_transfer_pct", ctPct, "%");
        report.check("control_transfer_rare", ctPct < 10.0);
    }
    report.write();
    return 0;
}
