/**
 * @file
 * Ablation A1: remote-read probing vs control transfer for name lookup.
 *
 * Section 4.2 weighs three options for a lookup whose first probe
 * misses: (1) keep probing hash buckets with remote reads, (2) hand the
 * lookup to the remote clerk via control transfer, (3) probe a few
 * times and then transfer control. The paper concludes: "Control
 * transfer is a viable option in our case only if we expect seven or
 * more collisions to occur in the hash table."
 *
 * This bench measures the marginal cost of one probe (a 64-byte remote
 * read plus the flag/name comparison) and the full cost of one
 * control-transfer lookup, projects the probing cost out to 12
 * collisions, and reports the crossover.
 */
#include <cstdio>

#include "bench_common.h"
#include "names/clerk.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Harness
{
    bench::TwoNode cluster;
    names::NameClerk clerkA;
    names::NameClerk clerkB;
    mem::Process &userA;

    Harness()
        : clerkA(cluster.engineA), clerkB(cluster.engineB),
          userA(cluster.nodeA.spawnProcess("userA"))
    {
        clerkA.addPeer(2);
        clerkB.addPeer(1);
        cluster.sim.run();
    }
};

} // namespace

int
main()
{
    bench::banner(
        "Ablation A1: probe-with-remote-reads vs control-transfer lookup");

    Harness h;
    auto &sim = h.cluster.sim;
    constexpr int kIters = 20;

    auto job = [](Harness *hh, int iters) -> sim::Task<std::array<double, 3>> {
        auto &s = hh->cluster.sim;
        double cachedUs = 0, uncachedUs = 0, ctUs = 0;
        for (int i = 0; i < iters; ++i) {
            std::string name = "probe-seg-" + std::to_string(i);
            mem::Vaddr base = hh->userA.space().allocRegion(4096);
            auto exp = co_await hh->clerkA.exportByName(
                &hh->userA, base, 4096, rmem::Rights::kAll,
                rmem::NotifyPolicy::kConditional, name);
            REMORA_ASSERT(exp.ok());

            sim::Time t0 = s.now();
            auto u = co_await hh->clerkB.import(name, 1);
            REMORA_ASSERT(u.ok());
            uncachedUs += sim::toUsec(s.now() - t0);

            t0 = s.now();
            auto c = co_await hh->clerkB.import(name, 1);
            REMORA_ASSERT(c.ok());
            cachedUs += sim::toUsec(s.now() - t0);

            t0 = s.now();
            auto ct = co_await hh->clerkB.import(
                name, 1, true, names::ProbePolicy::kControlOnly);
            REMORA_ASSERT(ct.ok());
            ctUs += sim::toUsec(s.now() - t0);
        }
        co_return std::array<double, 3>{cachedUs / iters,
                                        uncachedUs / iters, ctUs / iters};
    };

    auto task = job(&h, kIters);
    auto [cachedUs, uncachedUs, ctUs] = bench::run(sim, task);

    // One probe's marginal cost: the uncached import resolved on its
    // first probe, so its delta over the cached import is one probe.
    double probeUnitUs = uncachedUs - cachedUs;
    double ctExtraUs = ctUs - cachedUs;

    util::TextTable table({"Collisions before hit", "Probing (us)",
                           "Control transfer (us)", "Winner"});
    int crossover = -1;
    for (int d = 0; d <= 12; ++d) {
        double probeUs = cachedUs + (d + 1) * probeUnitUs;
        bool ctWins = ctUs < probeUs;
        if (ctWins && crossover < 0) {
            crossover = d;
        }
        table.addRow({std::to_string(d), bench::fmt(probeUs),
                      bench::fmt(ctUs), ctWins ? "control" : "probe"});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("per-probe marginal cost: %.1f us; control-transfer "
                "premium over a cached lookup: %.1f us\n",
                probeUnitUs, ctExtraUs);
    std::printf("crossover at %d collisions (paper: \"seven or more\")\n",
                crossover);
    std::printf("Shape check: crossover in [5, 9]: %s\n",
                (crossover >= 5 && crossover <= 9) ? "yes" : "NO");

    bench::BenchReport report("ablation_probe_policy");
    report.metric("lookup_cached_us", cachedUs, "us");
    report.metric("lookup_uncached_us", uncachedUs, "us");
    report.metric("lookup_control_us", ctUs, "us");
    report.metric("probe_marginal_us", probeUnitUs, "us");
    report.metric("control_premium_us", ctExtraUs, "us");
    report.metric("crossover_collisions", crossover, "collisions", 7);
    report.check("crossover_in_5_to_9", crossover >= 5 && crossover <= 9);
    report.write();
    return 0;
}
