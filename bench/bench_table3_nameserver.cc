/**
 * @file
 * Reproduction of Table 3: name server performance.
 *
 *   paper (user-visible elapsed times, kernel-mediated):
 *     Export (ADDNAME)            665 us
 *     Import (LOOKUP), cached     196 us
 *     Import (LOOKUP), uncached   264 us
 *     Revoke (DELETENAME)         307 us
 *     LOOKUP with notification    524 us
 *
 * Two directly-linked nodes, a name clerk booted on each. The paper's
 * observation that "the difference in time (68 us) to perform a lookup
 * when the data is available locally and when it is not is comparable
 * to the cost of a remote read operation (45 us)" is checked explicitly.
 */
#include <cstdio>

#include "bench_common.h"
#include "names/clerk.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Harness
{
    bench::TwoNode cluster;
    names::NameClerk clerkA;
    names::NameClerk clerkB;
    mem::Process &userA;

    Harness()
        : clerkA(cluster.engineA), clerkB(cluster.engineB),
          userA(cluster.nodeA.spawnProcess("userA"))
    {
        clerkA.addPeer(2);
        clerkB.addPeer(1);
        cluster.sim.run();
    }
};

struct Results
{
    double exportUs = 0;
    double importCachedUs = 0;
    double importUncachedUs = 0;
    double revokeUs = 0;
    double notifyLookupUs = 0;
};

sim::Task<Results>
measure(Harness *h, int iters)
{
    Results r;
    auto &sim = h->cluster.sim;

    for (int i = 0; i < iters; ++i) {
        std::string name = "segment-" + std::to_string(i);
        mem::Vaddr base = h->userA.space().allocRegion(8192);

        // Export on node A.
        sim::Time t0 = sim.now();
        auto exported = co_await h->clerkA.exportByName(
            &h->userA, base, 8192, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, name);
        REMORA_ASSERT(exported.ok());
        r.exportUs += sim::toUsec(sim.now() - t0);

        // Uncached import from node B (first touch: remote read).
        t0 = sim.now();
        auto imp1 = co_await h->clerkB.import(name, 1);
        REMORA_ASSERT(imp1.ok());
        r.importUncachedUs += sim::toUsec(sim.now() - t0);

        // Cached import (clerk's import cache hit).
        t0 = sim.now();
        auto imp2 = co_await h->clerkB.import(name, 1);
        REMORA_ASSERT(imp2.ok());
        r.importCachedUs += sim::toUsec(sim.now() - t0);

        // Lookup via control transfer (remote write with notification,
        // remote clerk looks up and writes the answer back).
        t0 = sim.now();
        auto imp3 = co_await h->clerkB.import(
            name, 1, /*forceRemote=*/true,
            names::ProbePolicy::kControlOnly);
        REMORA_ASSERT(imp3.ok());
        r.notifyLookupUs += sim::toUsec(sim.now() - t0);

        // Revoke on node A.
        t0 = sim.now();
        auto revoked = co_await h->clerkA.revoke(name);
        REMORA_ASSERT(revoked.ok());
        r.revokeUs += sim::toUsec(sim.now() - t0);
    }

    r.exportUs /= iters;
    r.importCachedUs /= iters;
    r.importUncachedUs /= iters;
    r.revokeUs /= iters;
    r.notifyLookupUs /= iters;
    co_return r;
}

} // namespace

int
main()
{
    bench::banner("Table 3: Name Server Performance");

    Harness h;
    auto task = measure(&h, 20);
    Results r = bench::run(h.cluster.sim, task);

    util::TextTable table(
        {"Operation", "Paper (us)", "Measured (us)", "Deviation"});
    table.addRow({"Export (ADDNAME)", "665", bench::fmt(r.exportUs),
                  bench::deviation(r.exportUs, 665)});
    table.addRow({"Import (LOOKUP) cached", "196",
                  bench::fmt(r.importCachedUs),
                  bench::deviation(r.importCachedUs, 196)});
    table.addRow({"Import (LOOKUP) uncached", "264",
                  bench::fmt(r.importUncachedUs),
                  bench::deviation(r.importUncachedUs, 264)});
    table.addRow({"Revoke (DELETENAME)", "307", bench::fmt(r.revokeUs),
                  bench::deviation(r.revokeUs, 307)});
    table.addRow({"LOOKUP with notification", "524",
                  bench::fmt(r.notifyLookupUs),
                  bench::deviation(r.notifyLookupUs, 524)});
    std::printf("%s\n", table.render().c_str());

    double delta = r.importUncachedUs - r.importCachedUs;
    std::printf("uncached - cached = %.1f us (paper: 68 us, \"comparable "
                "to the cost of a remote read operation\", 45 us)\n",
                delta);
    std::printf("remote probes issued: %llu, control transfers: %llu\n",
                static_cast<unsigned long long>(
                    h.clerkB.stats().remoteReads.value()),
                static_cast<unsigned long long>(
                    h.clerkB.stats().controlTransfers.value()));

    bench::BenchReport report("table3_nameserver");
    report.metric("export.latency_us", r.exportUs, "us", 665);
    report.metric("import_cached.latency_us", r.importCachedUs, "us", 196);
    report.metric("import_uncached.latency_us", r.importUncachedUs, "us",
                  264);
    report.metric("revoke.latency_us", r.revokeUs, "us", 307);
    report.metric("lookup_notify.latency_us", r.notifyLookupUs, "us", 524);
    report.metric("uncached_minus_cached_us", delta, "us", 68);
    report.check("uncached_slower_than_cached", delta > 0);
    report.check("notify_lookup_slowest_lookup",
                 r.notifyLookupUs > r.importUncachedUs);
    report.write();
    return 0;
}
