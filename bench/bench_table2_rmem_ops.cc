/**
 * @file
 * Reproduction of Table 2: performance of the remote memory operations.
 *
 *   paper (DECstation 5000/200 + FORE TCA-100, switchless ATM):
 *     read latency          45 us      (single cell, 10 4-byte words)
 *     write latency         30 us
 *     CAS latency           38 us
 *     block-write throughput 35.4 Mb/s (4 KB blocks)
 *     notification overhead 260 us
 *
 * Methodology mirrors the paper: two directly-connected nodes, an
 * otherwise idle cluster, single-cell operations moving 40 bytes, and
 * a streaming block-write for throughput. "Latency" is initiation to
 * completion: for writes, data deposited in remote memory; for reads
 * and CAS, result deposited in local memory.
 */
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "obs/critical_path.h"
#include "obs/trace.h"
#include "util/strings.h"

using namespace remora;

namespace {

/** Exported scratch segments on both nodes. */
struct Harness
{
    bench::TwoNode cluster;
    mem::Process &serverProc;
    mem::Process &clientProc;
    rmem::ImportedSegment remote; // exported by server
    rmem::SegmentId localSeg;     // exported by client (read deposits)

    Harness()
        : serverProc(cluster.nodeB.spawnProcess("server")),
          clientProc(cluster.nodeA.spawnProcess("client"))
    {
        mem::Vaddr base = serverProc.space().allocRegion(1 << 20);
        auto h = cluster.engineB.exportSegment(
            serverProc, base, 1 << 20, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "bench.remote");
        REMORA_ASSERT(h.ok());
        remote = h.value();

        mem::Vaddr lbase = clientProc.space().allocRegion(1 << 16);
        auto l = cluster.engineA.exportSegment(
            clientProc, lbase, 1 << 16, rmem::Rights::kAll,
            rmem::NotifyPolicy::kConditional, "bench.local");
        REMORA_ASSERT(l.ok());
        localSeg = l.value().descriptor;
        cluster.sim.run(); // drain setup costs
    }
};

/** Single-cell write latency: initiation to remote-memory deposit. */
double
measureWriteUs(Harness &h, int iters)
{
    double total = 0;
    for (int i = 0; i < iters; ++i) {
        sim::Time t0 = h.cluster.sim.now();
        auto task = h.cluster.engineA.write(h.remote, 0,
                                            std::vector<uint8_t>(40, 0x5a));
        bench::run(h.cluster.sim, task);
        h.cluster.sim.run();
        // The deposit is the last CPU work the idle server performed.
        total += sim::toUsec(h.cluster.nodeB.cpu().busyUntil() - t0);
    }
    return total / iters;
}

/** Single-cell read latency: initiation to local deposit. */
double
measureReadUs(Harness &h, int iters)
{
    double total = 0;
    for (int i = 0; i < iters; ++i) {
        sim::Time t0 = h.cluster.sim.now();
        auto task = h.cluster.engineA.read(h.remote, 0, h.localSeg, 0, 40);
        bench::run(h.cluster.sim, task);
        total += sim::toUsec(h.cluster.sim.now() - t0);
        h.cluster.sim.run();
    }
    return total / iters;
}

/** CAS latency: initiation to result deposit. */
double
measureCasUs(Harness &h, int iters)
{
    double total = 0;
    for (int i = 0; i < iters; ++i) {
        sim::Time t0 = h.cluster.sim.now();
        auto task = h.cluster.engineA.cas(h.remote, 0, 0, 0, h.localSeg, 0);
        bench::run(h.cluster.sim, task);
        total += sim::toUsec(h.cluster.sim.now() - t0);
        h.cluster.sim.run();
    }
    return total / iters;
}

/** Streaming 4 KB block writes: payload bits over busy time. */
double
measureThroughputMbps(Harness &h, int blocks)
{
    auto streamer = [](Harness *hh, int n) -> sim::Task<void> {
        for (int i = 0; i < n; ++i) {
            auto s = co_await hh->cluster.engineA.write(
                hh->remote, static_cast<uint32_t>((i % 64) * 4096),
                std::vector<uint8_t>(4096, 0xcc));
            REMORA_ASSERT(s.ok());
        }
    };
    sim::Time t0 = h.cluster.sim.now();
    auto task = streamer(&h, blocks);
    bench::run(h.cluster.sim, task);
    h.cluster.sim.run();
    sim::Time t1 = h.cluster.nodeB.cpu().busyUntil();
    double seconds = static_cast<double>(t1 - t0) / 1e9;
    double bits = static_cast<double>(blocks) * 4096 * 8;
    return bits / seconds / 1e6;
}

/** Notification overhead: notified write minus plain write latency. */
double
measureNotifyOverheadUs(Harness &h, double plainWriteUs, int iters)
{
    double total = 0;
    auto *ch = h.cluster.engineB.channel(h.remote.descriptor);
    REMORA_ASSERT(ch != nullptr);
    for (int i = 0; i < iters; ++i) {
        auto waiter = ch->next(); // blocked server-side reader
        sim::Time t0 = h.cluster.sim.now();
        auto task = h.cluster.engineA.write(
            h.remote, 0, std::vector<uint8_t>(40, 0x11), /*notify=*/true);
        bench::run(h.cluster.sim, task);
        while (!waiter.done() && h.cluster.sim.step()) {
        }
        REMORA_ASSERT(waiter.done());
        total += sim::toUsec(h.cluster.sim.now() - t0) - plainWriteUs;
        h.cluster.sim.run();
    }
    return total / iters;
}

/** Analyzer-vs-engine agreement for one op kind (see checkAgreement). */
struct AgreementRow
{
    const char *name;
    obs::PhaseTotals analyzer; /**< Mean per op, ns. */
    double count = 0;
    const rmem::OpPhaseStats *engine;
};

/**
 * Empirical critical-path decomposition: rerun the three latency loops
 * on a fresh harness with the trace recorder on, walk the cross-node
 * DAG, and check the result against the engine's model-derived phase
 * accumulators. The analyzer splits queueing out of software (the
 * model cannot), so software compares as analyzer software + queueing.
 */
std::vector<AgreementRow>
measureCriticalPaths(Harness &h, int iters)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.enable(h.cluster.sim);
    measureWriteUs(h, iters);
    measureReadUs(h, iters);
    measureCasUs(h, iters);
    rec.disable();

    obs::CriticalPathAnalyzer analyzer;
    auto paths = analyzer.analyze(rec.events());
    std::printf("Critical-path decomposition (traced, mean us/op):\n");
    std::fputs(obs::CriticalPathAnalyzer::renderText(paths).c_str(), stdout);

    auto summary = obs::CriticalPathAnalyzer::summarize(paths);
    std::vector<AgreementRow> rows = {
        {"write", {}, 0, &h.cluster.engineA.metrics().write},
        {"read", {}, 0, &h.cluster.engineA.metrics().read},
        {"cas", {}, 0, &h.cluster.engineA.metrics().cas},
    };
    for (auto &row : rows) {
        auto it = summary.find(row.name);
        if (it == summary.end() || it->second.count == 0) {
            continue;
        }
        row.count = static_cast<double>(it->second.count);
        row.analyzer = it->second.totals;
    }
    rec.clear();
    return rows;
}

/**
 * |analyzer - engine| for each phase, relative to the engine's total
 * latency; the bench gate requires agreement within 1%.
 */
bool
checkAgreement(const AgreementRow &row)
{
    if (row.count == 0) {
        return false;
    }
    double totalUs = row.engine->totalUs.mean();
    if (totalUs <= 0) {
        return false;
    }
    auto meanUs = [&row](sim::Duration d) {
        return sim::toUsec(d) / row.count;
    };
    double swQ = meanUs(row.analyzer.software) + meanUs(row.analyzer.queueing);
    double worst = std::max(
        {std::abs(swQ - row.engine->softwareUs.mean()),
         std::abs(meanUs(row.analyzer.wire) - row.engine->wireUs.mean()),
         std::abs(meanUs(row.analyzer.controller) -
                  row.engine->controllerUs.mean()),
         std::abs(meanUs(row.analyzer.total()) - totalUs)});
    return worst / totalUs <= 0.01;
}

} // namespace

int
main()
{
    bench::banner("Table 2: Performance Summary of Remote Memory Operations");

    Harness h;
    constexpr int kIters = 50;

    double writeUs = measureWriteUs(h, kIters);
    double readUs = measureReadUs(h, kIters);
    double casUs = measureCasUs(h, kIters);
    double mbps = measureThroughputMbps(h, 200);
    double notifyUs = measureNotifyOverheadUs(h, writeUs, kIters);

    util::TextTable table({"Metric", "Paper", "Measured", "Deviation"});
    table.addRow({"Read latency (us)", "45", bench::fmt(readUs),
                  bench::deviation(readUs, 45)});
    table.addRow({"Write latency (us)", "30", bench::fmt(writeUs),
                  bench::deviation(writeUs, 30)});
    table.addRow({"CAS latency (us)", "38", bench::fmt(casUs),
                  bench::deviation(casUs, 38)});
    table.addRow({"Throughput, 4KB blocks (Mb/s)", "35.4", bench::fmt(mbps),
                  bench::deviation(mbps, 35.4)});
    table.addRow({"Notification overhead (us)", "260", bench::fmt(notifyUs),
                  bench::deviation(notifyUs, 260)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks: read > CAS > write: %s;"
                " remote write vs 2us local: %.0fx\n",
                (readUs > casUs && casUs > writeUs) ? "yes" : "NO",
                writeUs / 2.0);

    // Phase breakdown from the engine's own op metrics: the paper's
    // latency decomposition into controller / wire / software time.
    const rmem::EngineMetrics &em = h.cluster.engineA.metrics();
    std::printf("\nEngine phase decomposition (per successful op, mean):\n");
    auto phases = [](const char *label, const rmem::OpPhaseStats &op) {
        std::printf("  %-6s total %6.1f us = software %6.1f + wire %5.1f "
                    "+ controller %5.1f (n=%llu)\n",
                    label, op.totalUs.mean(), op.softwareUs.mean(),
                    op.wireUs.mean(), op.controllerUs.mean(),
                    static_cast<unsigned long long>(op.totalUs.count()));
    };
    phases("write", em.write);
    phases("read", em.read);
    phases("cas", em.cas);

    // Traced rerun on a fresh harness (so the engine accumulators cover
    // exactly the traced ops): empirical decomposition vs the model.
    std::printf("\n");
    Harness traced;
    auto agreement = measureCriticalPaths(traced, kIters);

    bench::BenchReport report("table2_rmem_ops");
    report.metric("read.latency_us", readUs, "us", 45);
    report.metric("write.latency_us", writeUs, "us", 30);
    report.metric("cas.latency_us", casUs, "us", 38);
    report.metric("block_write.throughput_mbps", mbps, "Mb/s", 35.4);
    report.metric("notification.overhead_us", notifyUs, "us", 260);
    auto phaseMetrics = [&report](const std::string &key,
                                  const rmem::OpPhaseStats &op) {
        report.metric(key + ".phase.total_us", op.totalUs.mean(), "us");
        report.metric(key + ".phase.software_us", op.softwareUs.mean(),
                      "us");
        report.metric(key + ".phase.wire_us", op.wireUs.mean(), "us");
        report.metric(key + ".phase.controller_us", op.controllerUs.mean(),
                      "us");
        if (op.latencyUs.total() > 0) {
            report.metric(key + ".phase.p99_us", op.latencyUs.quantile(0.99),
                          "us");
        }
    };
    phaseMetrics("write", em.write);
    phaseMetrics("read", em.read);
    phaseMetrics("cas", em.cas);
    report.percentiles("write.latency", em.write.latencyUs, "us");
    report.percentiles("read.latency", em.read.latencyUs, "us");
    report.percentiles("cas.latency", em.cas.latencyUs, "us");
    for (const auto &row : agreement) {
        auto meanUs = [&row](sim::Duration d) {
            return row.count ? sim::toUsec(d) / row.count : 0.0;
        };
        std::string key = std::string(row.name) + ".critpath";
        report.metric(key + ".software_us", meanUs(row.analyzer.software),
                      "us");
        report.metric(key + ".wire_us", meanUs(row.analyzer.wire), "us");
        report.metric(key + ".controller_us",
                      meanUs(row.analyzer.controller), "us");
        report.metric(key + ".queueing_us", meanUs(row.analyzer.queueing),
                      "us");
        report.check(key + ".agrees_with_engine", checkAgreement(row));
    }
    report.check("read_gt_cas_gt_write",
                 readUs > casUs && casUs > writeUs);
    report.check("phases_sum_to_total",
                 std::abs(em.read.softwareUs.mean() +
                          em.read.wireUs.mean() +
                          em.read.controllerUs.mean() -
                          em.read.totalUs.mean()) < 0.5);
    report.note("two directly-connected nodes, idle cluster, 40-byte "
                "single-cell operations, 4KB streaming block writes");
    report.write();
    return 0;
}
