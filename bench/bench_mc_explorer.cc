/**
 * @file
 * Throughput and reduction bench for the stateless model checker.
 *
 * Two measurements, both over workloads small enough to explore
 * exhaustively:
 *
 *  - explore: schedules/second replaying a two-node remote-spin-lock
 *    contention workload (world construction, full run, wait-graph
 *    scan, teardown — the whole per-schedule cost the mc gate pays).
 *    Wall-clock, so the baseline carries a wide tolerance.
 *  - reduction: brute-force vs sleep-set schedule counts on four
 *    same-instant events hinted as two dependent pairs. These counts
 *    are pure functions of the DFS, so the baseline holds them
 *    exactly; a change means the reduction itself changed.
 */
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "rmem/sync.h"
#include "sim/explorer.h"

using namespace remora;

namespace {

/** Clean contention: two remote lock clients for one word, in order. */
void
spinLockWorkload(sim::Simulator &sim)
{
    // bench::TwoNode embeds its own simulator, but the explorer owns the
    // one the workload must build on — so wire the testbed by hand.
    net::Network network(sim, net::LinkParams{});
    mem::Node nodeA(sim, 1, "nodeA");
    mem::Node nodeB(sim, 2, "nodeB");
    rmem::RmemEngine engA(nodeA);
    rmem::RmemEngine engB(nodeB);
    network.addHost(1, nodeA.nic());
    network.addHost(2, nodeB.nic());
    network.wireDirect();
    mem::Process &home = nodeA.spawnProcess("home");
    mem::Vaddr base = home.space().allocRegion(4096);
    auto page = engA.exportSegment(home, base, 4096, rmem::Rights::kAll,
                                   rmem::NotifyPolicy::kNever, "mc.locks");
    REMORA_ASSERT(page.ok());
    mem::Process &workers = nodeB.spawnProcess("workers");
    mem::Vaddr sbase = workers.space().allocRegion(4096);
    auto sc = engB.exportSegment(workers, sbase, 4096, rmem::Rights::kAll,
                                 rmem::NotifyPolicy::kNever, "mc.scratch");
    REMORA_ASSERT(sc.ok());
    rmem::SpinLock la(engB, page.value(), 0, sc.value().descriptor, 0, 0x201);
    rmem::SpinLock lb(engB, page.value(), 0, sc.value().descriptor, 4, 0x202);
    auto hold = [](rmem::SpinLock *lock, sim::Simulator *s) -> sim::Task<void> {
        auto a = co_await lock->acquire();
        REMORA_ASSERT(a.ok());
        co_await sim::delay(*s, sim::usec(40));
        auto r = co_await lock->release();
        REMORA_ASSERT(r.ok());
    };
    auto w1 = hold(&la, &sim);
    auto w2 = hold(&lb, &sim);
    sim.run();
}

/** Four same-instant events, hinted as two independent dependent pairs. */
void
hintedPairsWorkload(sim::Simulator &sim)
{
    for (uint64_t i = 0; i < 4; ++i) {
        sim::Simulator::HintScope scope(sim,
                                        sim::DepHint::channel(i < 2 ? 1 : 2));
        sim.schedule(sim::usec(10), [&sim, i] { sim.noteDigest("ev", i); });
    }
    sim.run();
}

} // namespace

int
main()
{
    bench::banner("remora-mc: schedule exploration throughput");

    // Warm-up pass keeps first-touch page faults out of the timed run.
    {
        sim::ExplorerOptions warm;
        warm.maxSchedules = 4;
        sim::ScheduleExplorer ex(spinLockWorkload, warm);
        (void)ex.explore();
    }

    // The clean tree is exhausted in a handful of schedules, so repeat
    // the whole exploration until the timed window is long enough for a
    // stable rate.
    constexpr int kRounds = 100;
    sim::ExplorerOptions opts;
    opts.maxSchedules = 200;
    uint64_t totalSchedules = 0;
    sim::ExploreResult res;
    auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
        sim::ScheduleExplorer ex(spinLockWorkload, opts);
        res = ex.explore();
        REMORA_ASSERT(res.findings.empty());
        totalSchedules += res.schedules;
    }
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    double perSec = elapsed > 0.0
                        ? static_cast<double>(totalSchedules) / elapsed
                        : 0.0;

    sim::ExplorerOptions brute;
    brute.reduction = false;
    sim::ScheduleExplorer bruteEx(hintedPairsWorkload, brute);
    sim::ExploreResult bruteRes = bruteEx.explore();
    sim::ScheduleExplorer reducedEx(hintedPairsWorkload);
    sim::ExploreResult reducedRes = reducedEx.explore();

    std::printf("explore: %llu schedules over %d rounds in %.3fs "
                "(%.0f schedules/s)\n",
                static_cast<unsigned long long>(totalSchedules), kRounds,
                elapsed, perSec);
    std::printf("reduction: brute %llu vs sleep-set %llu schedules "
                "(%llu skips)\n",
                static_cast<unsigned long long>(bruteRes.schedules),
                static_cast<unsigned long long>(reducedRes.schedules),
                static_cast<unsigned long long>(reducedRes.sleepSkips));

    bench::BenchReport report("mc_explorer");
    report.metric("explore.schedules_per_sec", perSec, "1/s");
    report.metric("explore.schedules", static_cast<double>(res.schedules),
                  "count");
    report.metric("explore.decisions", static_cast<double>(res.decisions),
                  "count");
    report.metric("reduction.brute_schedules",
                  static_cast<double>(bruteRes.schedules), "count");
    report.metric("reduction.reduced_schedules",
                  static_cast<double>(reducedRes.schedules), "count");
    report.metric("reduction.sleep_skips",
                  static_cast<double>(reducedRes.sleepSkips), "count");
    report.check("clean_workload_no_findings", res.findings.empty());
    report.check("exploration_exhausted", res.exhausted);
    report.check("reduction_beats_brute",
                 reducedRes.schedules < bruteRes.schedules);
    report.check("reduction_sound_same_first_digest",
                 reducedRes.firstDigest == bruteRes.firstDigest);
    report.note("explore times the full per-schedule cost: world build, "
                "run to quiescence, wait-graph scan, teardown");
    report.write();
    return 0;
}
