/**
 * @file
 * Ablation A8: recovery cost under injected loss.
 *
 * The reliable wire (sequence numbers, cumulative acks, retransmit
 * timers) exists so the paper's lossless-cluster protocols survive a
 * lossy one. This bench quantifies what that survival costs: the same
 * write and read workload runs over link fault plans dropping 0%, 2%,
 * 5%, and 10% of all cells, and we measure the settle latency of each
 * round plus the retransmissions the wire spent repairing the loss.
 *
 * Expected shape: the 0% row is the no-fault baseline — zero drops,
 * zero retransmits, and latencies identical to an uninstrumented run
 * (the injector is never installed, so the hot path pays nothing).
 * Each lossy row must recover every byte (delivery is audited against
 * server memory) with retransmits > 0, at a latency premium that grows
 * with the drop rate but stays bounded — loss slows the cluster down,
 * it never loses user-visible writes.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "net/fault.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr uint32_t kRecordBytes = 256;
constexpr uint32_t kStride = 512; // keep records disjoint
constexpr int kWritesPerRound = 16;
constexpr int kReadsPerRound = 8;
constexpr int kIters = 10;

struct Harness
{
    bench::TwoNode cluster;
    mem::Process &server;
    mem::Process &client;
    mem::Vaddr serverBase = 0;
    rmem::ImportedSegment remote;
    rmem::SegmentId localSeg;

    explicit Harness(double dropRate)
        : server(cluster.nodeB.spawnProcess("server")),
          client(cluster.nodeA.spawnProcess("client"))
    {
        cluster.engineA.wire().enableReliability();
        cluster.engineB.wire().enableReliability();
        serverBase = server.space().allocRegion(16384);
        auto h = cluster.engineB.exportSegment(
            server, serverBase, 16384, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "records");
        REMORA_ASSERT(h.ok());
        remote = h.value();

        mem::Vaddr lbase = client.space().allocRegion(16384);
        auto l = cluster.engineA.exportSegment(
            client, lbase, 16384, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "scratch");
        REMORA_ASSERT(l.ok());
        localSeg = l.value().descriptor;
        cluster.sim.run();

        // The 0% row never installs an injector at all, so it doubles
        // as the machinery-off hot-path guard.
        if (dropRate > 0.0) {
            net::FaultPlan plan;
            plan.seed = 5;
            plan.dropRate = dropRate;
            cluster.network.installFaults(plan);
        }
    }
};

/** N awaited writes; settle latency includes any retransmissions. */
double
writeRound(Harness &h)
{
    auto &sim = h.cluster.sim;
    sim.run();
    sim::Time t0 = sim.now();
    auto job = [](Harness *hh) -> sim::Task<void> {
        std::vector<uint8_t> rec(kRecordBytes, 0xc3);
        for (int i = 0; i < kWritesPerRound; ++i) {
            // NOLINTNEXTLINE(remora-scalar-op-loop): per-op recovery
            // latency is the thing under measurement.
            auto st = co_await hh->cluster.engineA.write(
                hh->remote, uint32_t(i) * kStride, rec);
            REMORA_ASSERT(st.ok());
        }
    };
    auto task = job(&h);
    bench::run(sim, task);
    sim.run(); // drain retransmit timers and acks
    return sim::toUsec(sim.now() - t0);
}

/** N awaited 64-byte reads back through the same lossy link. */
double
readRound(Harness &h)
{
    auto &sim = h.cluster.sim;
    sim.run();
    sim::Time t0 = sim.now();
    auto job = [](Harness *hh) -> sim::Task<void> {
        for (int i = 0; i < kReadsPerRound; ++i) {
            // NOLINTNEXTLINE(remora-scalar-op-loop): per-op recovery
            // latency is the thing under measurement.
            auto r = co_await hh->cluster.engineA.read(
                hh->remote, uint32_t(i) * kStride, hh->localSeg,
                uint32_t(i) * kStride, 64);
            REMORA_ASSERT(r.status.ok());
        }
    };
    auto task = job(&h);
    bench::run(sim, task);
    sim.run();
    return sim::toUsec(sim.now() - t0);
}

} // namespace

int
main()
{
    bench::banner("Ablation A8: recovery cost under injected loss");

    bench::BenchReport report("ablation_faults");
    util::TextTable table({"Drop rate", "Write round (us)", "Read round (us)",
                           "Drops", "Retransmits", "Delivered"});

    struct Row
    {
        double rate;
        const char *key;
    };
    for (const Row &row : {Row{0.0, "drop_0"}, Row{0.02, "drop_2"},
                           Row{0.05, "drop_5"}, Row{0.10, "drop_10"}}) {
        Harness h(row.rate);
        double writeUs = 0;
        double readUs = 0;
        for (int i = 0; i < kIters; ++i) {
            writeUs += writeRound(h);
            readUs += readRound(h);
        }
        writeUs /= kIters;
        readUs /= kIters;

        // Delivery audit: every record landed intact despite the loss.
        bool delivered = true;
        std::vector<uint8_t> expect(kRecordBytes, 0xc3);
        for (int i = 0; i < kWritesPerRound; ++i) {
            std::vector<uint8_t> got(kRecordBytes);
            if (!h.server.space()
                     .read(h.serverBase + uint64_t(i) * kStride, got)
                     .ok() ||
                got != expect) {
                delivered = false;
            }
        }
        uint64_t drops = h.cluster.network.totalFaultDrops();
        uint64_t retransmits = h.cluster.engineA.wire().retransmits() +
                               h.cluster.engineB.wire().retransmits();

        table.addRow({bench::fmt(row.rate * 100, 0) + "%",
                      bench::fmt(writeUs), bench::fmt(readUs),
                      std::to_string(drops), std::to_string(retransmits),
                      delivered ? "all" : "LOST"});
        std::string key = row.key;
        report.metric(key + ".write_round_us", writeUs, "us");
        report.metric(key + ".read_round_us", readUs, "us");
        report.metric(key + ".drops", double(drops), "");
        report.metric(key + ".retransmits", double(retransmits), "");
        report.check(key + "_all_delivered", delivered);
        report.check(key + "_no_abandonment",
                     h.cluster.engineA.wire().sendFailures() == 0 &&
                         h.cluster.engineB.wire().sendFailures() == 0);
        if (row.rate == 0.0) {
            // Machinery off: nothing dropped, nothing retransmitted.
            report.check("drop_0_no_drops", drops == 0);
            report.check("drop_0_no_retransmits", retransmits == 0);
        } else {
            // Loss actually happened and was actually repaired.
            report.check(key + "_loss_occurred", drops > 0);
            report.check(key + "_repaired_by_retransmit", retransmits > 0);
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check: zero cost at 0%% loss; every lossy row "
                "delivers all records with retransmits > 0.\n");
    report.write();
    return 0;
}
