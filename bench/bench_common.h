/**
 * @file
 * Shared helpers for the reproduction benches: canned clusters, task
 * drivers, and paper-vs-measured table rendering.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "mem/node.h"
#include "net/network.h"
#include "obs/bench_report.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/panic.h"
#include "util/strings.h"

namespace remora::bench {

/** Two directly-linked nodes (the paper's measurement testbed). */
struct TwoNode
{
    sim::Simulator sim;
    net::Network network;
    mem::Node nodeA;
    mem::Node nodeB;
    rmem::RmemEngine engineA;
    rmem::RmemEngine engineB;

    explicit TwoNode(const rmem::CostModel &costs = {})
        : network(sim, net::LinkParams{}),
          nodeA(sim, 1, "client"), nodeB(sim, 2, "server"),
          engineA(nodeA, costs), engineB(nodeB, costs)
    {
        network.addHost(1, nodeA.nic());
        network.addHost(2, nodeB.nic());
        network.wireDirect();
    }
};

/** Drive the simulator until @p task finishes; returns its result. */
template <typename T>
T
run(sim::Simulator &sim, sim::Task<T> &task)
{
    while (!task.done() && sim.step()) {
    }
    if (!task.done()) {
        REMORA_PANIC("bench task stalled: event queue drained");
    }
    return task.result();
}

inline void
run(sim::Simulator &sim, sim::Task<void> &task)
{
    while (!task.done() && sim.step()) {
    }
    if (!task.done()) {
        REMORA_PANIC("bench task stalled: event queue drained");
    }
    task.result();
}

/** Format a "percent of paper value" deviation column. */
inline std::string
deviation(double measured, double paper)
{
    if (paper == 0.0) {
        return "-";
    }
    double pct = 100.0 * (measured - paper) / paper;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

/** Format a double with the given precision. */
inline std::string
fmt(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Print a bench header banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Machine-readable mirror of a bench's printed table; lives in obs so
 * tools (bench_diff) and tests share it. See obs/bench_report.h.
 */
using BenchReport = obs::BenchReport;

} // namespace remora::bench
