/**
 * @file
 * Shared helpers for the reproduction benches: canned clusters, task
 * drivers, and paper-vs-measured table rendering.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mem/node.h"
#include "net/network.h"
#include "rmem/engine.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "util/json.h"
#include "util/panic.h"
#include "util/strings.h"

namespace remora::bench {

/** Two directly-linked nodes (the paper's measurement testbed). */
struct TwoNode
{
    sim::Simulator sim;
    net::Network network;
    mem::Node nodeA;
    mem::Node nodeB;
    rmem::RmemEngine engineA;
    rmem::RmemEngine engineB;

    explicit TwoNode(const rmem::CostModel &costs = {})
        : network(sim, net::LinkParams{}),
          nodeA(sim, 1, "client"), nodeB(sim, 2, "server"),
          engineA(nodeA, costs), engineB(nodeB, costs)
    {
        network.addHost(1, nodeA.nic());
        network.addHost(2, nodeB.nic());
        network.wireDirect();
    }
};

/** Drive the simulator until @p task finishes; returns its result. */
template <typename T>
T
run(sim::Simulator &sim, sim::Task<T> &task)
{
    while (!task.done() && sim.step()) {
    }
    if (!task.done()) {
        REMORA_PANIC("bench task stalled: event queue drained");
    }
    return task.result();
}

inline void
run(sim::Simulator &sim, sim::Task<void> &task)
{
    while (!task.done() && sim.step()) {
    }
    if (!task.done()) {
        REMORA_PANIC("bench task stalled: event queue drained");
    }
    task.result();
}

/** Format a "percent of paper value" deviation column. */
inline std::string
deviation(double measured, double paper)
{
    if (paper == 0.0) {
        return "-";
    }
    double pct = 100.0 * (measured - paper) / paper;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

/** Format a double with the given precision. */
inline std::string
fmt(double v, int prec = 1)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Print a bench header banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Machine-readable mirror of a bench's printed table.
 *
 * Every bench builds one of these alongside its TextTable and calls
 * write() at the end, producing BENCH_<name>.json next to the binary
 * so sweeps and CI can consume the numbers without screen-scraping.
 * Metric names are dotted paths ("read.latency_us"); a metric with a
 * paper value also records its percentage deviation.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    /** Record one measured value; @p paper NaN means no paper figure. */
    void
    metric(const std::string &name, double value, const std::string &unit,
           double paper = std::numeric_limits<double>::quiet_NaN())
    {
        metrics_.push_back({name, value, unit, paper});
    }

    /** Record a pass/fail shape check. */
    void
    check(const std::string &name, bool ok)
    {
        checks_.push_back({name, ok});
    }

    /** Attach free-form context (conditions, caveats). */
    void note(const std::string &text) { notes_.push_back(text); }

    /** True when every recorded check passed. */
    bool
    allChecksPass() const
    {
        for (const auto &c : checks_) {
            if (!c.ok) {
                return false;
            }
        }
        return true;
    }

    /** The report as a JSON document. */
    std::string
    toJson() const
    {
        util::JsonWriter w;
        w.beginObject();
        w.kv("bench", name_);
        w.key("metrics").beginArray();
        for (const auto &m : metrics_) {
            w.beginObject();
            w.kv("name", m.name);
            w.kv("value", m.value);
            if (!m.unit.empty()) {
                w.kv("unit", m.unit);
            }
            if (!std::isnan(m.paper)) {
                w.kv("paper", m.paper);
                if (m.paper != 0.0) {
                    w.kv("deviation_pct",
                         100.0 * (m.value - m.paper) / m.paper);
                }
            }
            w.endObject();
        }
        w.endArray();
        w.key("checks").beginArray();
        for (const auto &c : checks_) {
            w.beginObject().kv("name", c.name).kv("ok", c.ok).endObject();
        }
        w.endArray();
        w.key("notes").beginArray();
        for (const auto &n : notes_) {
            w.value(n);
        }
        w.endArray();
        w.endObject();
        return w.str();
    }

    /** Write BENCH_<name>.json into the working directory. */
    void
    write() const
    {
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return;
        }
        out << toJson() << "\n";
        std::printf("[bench report: %s]\n", path.c_str());
    }

  private:
    struct Metric
    {
        std::string name;
        double value;
        std::string unit;
        double paper;
    };
    struct Check
    {
        std::string name;
        bool ok;
    };

    std::string name_;
    std::vector<Metric> metrics_;
    std::vector<Check> checks_;
    std::vector<std::string> notes_;
};

} // namespace remora::bench
