/**
 * @file
 * Ablation A7: vectored meta-instructions vs scalar op-per-trap.
 *
 * The paper's meta-instructions charge a fixed control cost (trap,
 * validation, frame header, receive interrupt) per operation. A
 * vectored batch amortises that fixed cost across N sub-ops bound for
 * the same node: one trap, one frame, one serve-side validation pass
 * with a per-(slot,generation,rights) cache, and — when notification
 * is requested — one coalesced doorbell instead of N.
 *
 * This bench quantifies the amortisation: a client deposits N disjoint
 * 256-byte records into a server segment either as N awaited scalar
 * write() calls or as one writev() batch, and we measure the
 * end-to-end settle latency (until the server has deposited every
 * record) plus the CPU both sides burned. A readv() section repeats
 * the comparison for the gather direction, where scalar reads also pay
 * a response frame each.
 *
 * Expected shape: scalar and vectored are within noise at N=1 (the
 * batch pays a small header premium), and vectored wins on both
 * latency and server CPU from N=4 up — the acceptance gate for the
 * vectored path.
 */
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "rmem/vector_op.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr uint32_t kRecordBytes = 256;
constexpr uint32_t kStride = 512; // keep sub-ops disjoint
constexpr int kIters = 20;

struct Harness
{
    bench::TwoNode cluster;
    mem::Process &server;
    mem::Process &client;
    rmem::ImportedSegment remote; // server segment, imported by client
    rmem::SegmentId localSeg;     // client segment, readv deposit target

    Harness()
        : server(cluster.nodeB.spawnProcess("server")),
          client(cluster.nodeA.spawnProcess("client"))
    {
        mem::Vaddr base = server.space().allocRegion(65536);
        auto h = cluster.engineB.exportSegment(
            server, base, 65536, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "records");
        REMORA_ASSERT(h.ok());
        remote = h.value();
        std::vector<uint8_t> content(65536, 0x5a);
        REMORA_ASSERT(server.space().write(base, content).ok());

        mem::Vaddr lbase = client.space().allocRegion(65536);
        auto l = cluster.engineA.exportSegment(
            client, lbase, 65536, rmem::Rights::kAll,
            rmem::NotifyPolicy::kNever, "scratch");
        REMORA_ASSERT(l.ok());
        localSeg = l.value().descriptor;
        cluster.sim.run();
    }
};

struct Sample
{
    double latencyUs = 0;
    double serverCpuUs = 0;
    double clientCpuUs = 0;
    double wireMessages = 0;

    void accumulate(const Sample &s)
    {
        latencyUs += s.latencyUs;
        serverCpuUs += s.serverCpuUs;
        clientCpuUs += s.clientCpuUs;
        wireMessages += s.wireMessages;
    }

    void average(int n)
    {
        latencyUs /= n;
        serverCpuUs /= n;
        clientCpuUs /= n;
        wireMessages /= n;
    }
};

/** Run @p issue, then drain the simulator; charge everything to it. */
template <typename Fn>
Sample
measure(Harness &h, Fn &&issue)
{
    auto &sim = h.cluster.sim;
    sim.run(); // settle anything pending
    sim::Duration server0 = h.cluster.nodeB.cpu().totalBusy();
    sim::Duration client0 = h.cluster.nodeA.cpu().totalBusy();
    uint64_t msgs0 = h.cluster.engineA.wire().messagesSent();
    sim::Time t0 = sim.now();
    issue();
    sim.run(); // settle: server-side deposits included
    Sample s;
    s.latencyUs = sim::toUsec(sim.now() - t0);
    s.serverCpuUs =
        sim::toUsec(h.cluster.nodeB.cpu().totalBusy() - server0);
    s.clientCpuUs =
        sim::toUsec(h.cluster.nodeA.cpu().totalBusy() - client0);
    s.wireMessages =
        double(h.cluster.engineA.wire().messagesSent() - msgs0);
    return s;
}

/** N awaited scalar write() calls, one trap and frame each. */
Sample
scalarWrites(Harness &h, int n, uint32_t bytes)
{
    return measure(h, [&] {
        auto job = [](Harness *hh, int count,
                      uint32_t sz) -> sim::Task<void> {
            std::vector<uint8_t> rec(sz, 0xab);
            for (int i = 0; i < count; ++i) {
                // NOLINTNEXTLINE(remora-scalar-op-loop): the baseline
                // this ablation exists to measure.
                auto st = co_await hh->cluster.engineA.write(
                    hh->remote, uint32_t(i) * kStride, rec);
                REMORA_ASSERT(st.ok());
            }
        };
        auto task = job(&h, n, bytes);
        bench::run(h.cluster.sim, task);
    });
}

/** One writev() batch carrying all N records. */
Sample
vectoredWrites(Harness &h, int n, uint32_t bytes)
{
    return measure(h, [&] {
        std::vector<rmem::BatchBuilder::Write> ops;
        std::vector<uint8_t> rec(bytes, 0xab);
        for (int i = 0; i < n; ++i) {
            ops.push_back({h.remote, uint32_t(i) * kStride, rec, false});
        }
        auto task = h.cluster.engineA.writev(std::move(ops));
        auto st = bench::run(h.cluster.sim, task);
        REMORA_ASSERT(st.ok());
    });
}

/** N awaited scalar read() calls: request and response frame each. */
Sample
scalarReads(Harness &h, int n, uint32_t bytes)
{
    return measure(h, [&] {
        auto job = [](Harness *hh, int count,
                      uint32_t sz) -> sim::Task<void> {
            for (int i = 0; i < count; ++i) {
                // NOLINTNEXTLINE(remora-scalar-op-loop): the baseline
                // this ablation exists to measure.
                auto r = co_await hh->cluster.engineA.read(
                    hh->remote, uint32_t(i) * kStride, hh->localSeg,
                    uint32_t(i) * kStride, uint16_t(sz));
                REMORA_ASSERT(r.status.ok());
            }
        };
        auto task = job(&h, n, bytes);
        bench::run(h.cluster.sim, task);
    });
}

/** One readv() gathering all N records in a request/response pair. */
Sample
vectoredReads(Harness &h, int n, uint32_t bytes)
{
    return measure(h, [&] {
        std::vector<rmem::BatchBuilder::Read> ops;
        for (int i = 0; i < n; ++i) {
            ops.push_back({h.remote, uint32_t(i) * kStride, h.localSeg,
                           uint32_t(i) * kStride, uint16_t(bytes), false});
        }
        auto task = h.cluster.engineA.readv(std::move(ops));
        auto out = bench::run(h.cluster.sim, task);
        REMORA_ASSERT(out.status.ok());
    });
}

} // namespace

int
main()
{
    bench::banner(
        "Ablation A7: vectored meta-instructions vs scalar op-per-trap");

    Harness h;
    bench::BenchReport report("ablation_vector_ops");

    util::TextTable table({"Batch", "Scalar lat (us)", "Vector lat (us)",
                           "Scalar srv CPU (us)", "Vector srv CPU (us)",
                           "Frames s/v", "Lat speedup"});
    for (int n : {1, 2, 4, 8, 16}) {
        Sample sc{}, vc{};
        for (int i = 0; i < kIters; ++i) {
            sc.accumulate(scalarWrites(h, n, kRecordBytes));
            vc.accumulate(vectoredWrites(h, n, kRecordBytes));
        }
        sc.average(kIters);
        vc.average(kIters);
        table.addRow({"write x" + std::to_string(n),
                      bench::fmt(sc.latencyUs), bench::fmt(vc.latencyUs),
                      bench::fmt(sc.serverCpuUs),
                      bench::fmt(vc.serverCpuUs),
                      bench::fmt(sc.wireMessages, 0) + "/" +
                          bench::fmt(vc.wireMessages, 0),
                      bench::fmt(sc.latencyUs / vc.latencyUs, 2) + "x"});
        std::string key = "write_x" + std::to_string(n);
        report.metric(key + ".scalar.latency_us", sc.latencyUs, "us");
        report.metric(key + ".vector.latency_us", vc.latencyUs, "us");
        report.metric(key + ".scalar.server_cpu_us", sc.serverCpuUs, "us");
        report.metric(key + ".vector.server_cpu_us", vc.serverCpuUs, "us");
        report.metric(key + ".vector.wire_messages", vc.wireMessages, "");
        report.metric(key + ".latency_speedup",
                      sc.latencyUs / vc.latencyUs, "x");
        if (n >= 4) {
            // The acceptance gate: from 4 sub-ops up the batch must win
            // on both settle latency and server CPU.
            report.check(key + "_vector_faster",
                         vc.latencyUs < sc.latencyUs);
            report.check(key + "_vector_cheaper_on_server",
                         vc.serverCpuUs < sc.serverCpuUs);
        }
        report.check(key + "_one_frame", vc.wireMessages == 1.0);
    }

    for (int n : {4, 8}) {
        Sample sc{}, vc{};
        for (int i = 0; i < kIters; ++i) {
            sc.accumulate(scalarReads(h, n, kRecordBytes));
            vc.accumulate(vectoredReads(h, n, kRecordBytes));
        }
        sc.average(kIters);
        vc.average(kIters);
        table.addRow({"read x" + std::to_string(n),
                      bench::fmt(sc.latencyUs), bench::fmt(vc.latencyUs),
                      bench::fmt(sc.serverCpuUs),
                      bench::fmt(vc.serverCpuUs),
                      bench::fmt(sc.wireMessages, 0) + "/" +
                          bench::fmt(vc.wireMessages, 0),
                      bench::fmt(sc.latencyUs / vc.latencyUs, 2) + "x"});
        std::string key = "read_x" + std::to_string(n);
        report.metric(key + ".scalar.latency_us", sc.latencyUs, "us");
        report.metric(key + ".vector.latency_us", vc.latencyUs, "us");
        report.metric(key + ".scalar.server_cpu_us", sc.serverCpuUs, "us");
        report.metric(key + ".vector.server_cpu_us", vc.serverCpuUs, "us");
        report.metric(key + ".latency_speedup",
                      sc.latencyUs / vc.latencyUs, "x");
        report.check(key + "_vector_faster", vc.latencyUs < sc.latencyUs);
        report.check(key + "_vector_cheaper_on_server",
                     vc.serverCpuUs < sc.serverCpuUs);
    }

    // Small-record row, informational: at 40 bytes a scalar write rides
    // a single raw cell, so the batch's win narrows to the trap and
    // interrupt amortisation alone.
    {
        Sample sc{}, vc{};
        for (int i = 0; i < kIters; ++i) {
            sc.accumulate(scalarWrites(h, 8, 40));
            vc.accumulate(vectoredWrites(h, 8, 40));
        }
        sc.average(kIters);
        vc.average(kIters);
        table.addRow({"write x8 (40B)", bench::fmt(sc.latencyUs),
                      bench::fmt(vc.latencyUs), bench::fmt(sc.serverCpuUs),
                      bench::fmt(vc.serverCpuUs),
                      bench::fmt(sc.wireMessages, 0) + "/" +
                          bench::fmt(vc.wireMessages, 0),
                      bench::fmt(sc.latencyUs / vc.latencyUs, 2) + "x"});
        report.metric("write_x8_40b.scalar.latency_us", sc.latencyUs, "us");
        report.metric("write_x8_40b.vector.latency_us", vc.latencyUs, "us");
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check: one frame per batch, and the vectored path "
                "wins on latency and server CPU from 4 sub-ops up.\n");
    report.write();
    return 0;
}
