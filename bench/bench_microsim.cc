/**
 * @file
 * Ablation A4: engine microbenchmarks (google-benchmark, wall-clock).
 *
 * Unlike the table/figure benches — which report *simulated* 1994-era
 * time — these measure the simulator's own execution speed: event
 * queue throughput, CRC rates, AAL5 segmentation/reassembly, protocol
 * codec, marshaling, and end-to-end simulated remote operations per
 * host second. Useful for keeping the simulator fast enough for the
 * scaling experiments.
 */
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "net/aal5.h"
#include "rmem/protocol.h"
#include "rpc/marshal.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/crc.h"

#include "bench_common.h"

using namespace remora;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i) {
            sim.schedule(i * 10, [&sink] { ++sink; });
        }
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_Crc32(benchmark::State &state)
{
    std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(util::crc32Ieee(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_Aal5RoundTrip(benchmark::State &state)
{
    std::vector<uint8_t> frame(static_cast<size_t>(state.range(0)), 0x42);
    for (auto _ : state) {
        auto cells = net::aal5Segment(1, 2, frame);
        net::Aal5Reassembler reasm;
        std::optional<net::Aal5Reassembler::Frame> out;
        for (const auto &cell : cells) {
            out = reasm.feed(cell);
        }
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aal5RoundTrip)->Arg(40)->Arg(4096)->Arg(32768);

void
BM_ProtocolCodec(benchmark::State &state)
{
    rmem::WriteReq req;
    req.descriptor = 3;
    req.generation = 7;
    req.offset = 1024;
    req.data.assign(40, 0x11);
    for (auto _ : state) {
        auto bytes = rmem::encodeMessage(rmem::Message(req));
        auto decoded = rmem::decodeMessage(bytes);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_ProtocolCodec);

void
BM_MarshalRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        rpc::Marshal m;
        m.putU32(42);
        m.putU64(0xdeadbeefcafef00dull);
        m.putString("the quick brown fox");
        m.putOpaque(std::vector<uint8_t>(128, 9));
        auto buf = m.take();
        rpc::Unmarshal u(buf);
        benchmark::DoNotOptimize(u.getU32());
        benchmark::DoNotOptimize(u.getU64());
        benchmark::DoNotOptimize(u.getString());
        benchmark::DoNotOptimize(u.getOpaque());
    }
}
BENCHMARK(BM_MarshalRoundTrip);

void
BM_Pcg32(benchmark::State &state)
{
    sim::Random rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.nextU32());
    }
}
BENCHMARK(BM_Pcg32);

void
BM_SimulatedRemoteWrite(benchmark::State &state)
{
    bench::TwoNode cluster;
    mem::Process &server = cluster.nodeB.spawnProcess("server");
    mem::Vaddr base = server.space().allocRegion(4096);
    auto seg = cluster.engineB.exportSegment(server, base, 4096,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "bench");
    cluster.sim.run();
    for (auto _ : state) {
        auto task = cluster.engineA.write(seg.value(), 0,
                                          std::vector<uint8_t>(40, 0x7e));
        bench::run(cluster.sim, task);
        cluster.sim.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedRemoteWrite);

} // namespace

/**
 * Like BENCHMARK_MAIN(), but defaults --benchmark_out to the repo's
 * machine-readable report name so this bench emits BENCH_microsim.json
 * alongside its console table (explicit flags still win).
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool hasOut = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
            hasOut = true;
        }
    }
    static char outFlag[] = "--benchmark_out=BENCH_microsim.json";
    static char fmtFlag[] = "--benchmark_out_format=json";
    if (!hasOut) {
        args.push_back(outFlag);
        args.push_back(fmtFlag);
    }
    int ac = static_cast<int>(args.size());
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
