/**
 * @file
 * Ablation A5: the cost of securing the wire (§3.5).
 *
 * In untrusted environments every remote read and write must be
 * encrypted. The paper: "The software emulation technique that we use
 * in our implementation will not provide adequate performance in this
 * case. However, it is feasible to do encryption and decryption in
 * hardware" (citing the AN1 controller). This bench sweeps the
 * per-word crypto cost across three regimes — none (trusted cluster),
 * AN1-style link hardware, and software DES on the 25 MHz host — and
 * reports what happens to the core operation latencies and to block
 * throughput.
 */
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct Numbers
{
    double writeUs;
    double readUs;
    double mbps;
};

Numbers
measure(const rmem::CostModel &costs)
{
    bench::TwoNode cluster(costs);
    mem::Process &server = cluster.nodeB.spawnProcess("server");
    mem::Process &client = cluster.nodeA.spawnProcess("client");
    mem::Vaddr base = server.space().allocRegion(1 << 18);
    auto seg = cluster.engineB.exportSegment(server, base, 1 << 18,
                                             rmem::Rights::kAll,
                                             rmem::NotifyPolicy::kNever,
                                             "sec");
    REMORA_ASSERT(seg.ok());
    mem::Vaddr lbase = client.space().allocRegion(1 << 16);
    auto local = cluster.engineA.exportSegment(client, lbase, 1 << 16,
                                               rmem::Rights::kAll,
                                               rmem::NotifyPolicy::kNever,
                                               "sec.l");
    REMORA_ASSERT(local.ok());
    cluster.sim.run();

    Numbers n{};
    constexpr int kIters = 30;
    for (int i = 0; i < kIters; ++i) {
        sim::Time t0 = cluster.sim.now();
        auto w = cluster.engineA.write(seg.value(), 0,
                                       std::vector<uint8_t>(40, 1));
        bench::run(cluster.sim, w);
        cluster.sim.run();
        n.writeUs += sim::toUsec(cluster.nodeB.cpu().busyUntil() - t0);

        t0 = cluster.sim.now();
        auto r = cluster.engineA.read(seg.value(), 0,
                                      local.value().descriptor, 0, 40);
        bench::run(cluster.sim, r);
        n.readUs += sim::toUsec(cluster.sim.now() - t0);
        cluster.sim.run();
    }
    n.writeUs /= kIters;
    n.readUs /= kIters;

    auto streamer = [](bench::TwoNode *c,
                       rmem::ImportedSegment s) -> sim::Task<void> {
        for (int i = 0; i < 100; ++i) {
            auto st = co_await c->engineA.write(
                s, static_cast<uint32_t>((i % 32) * 4096),
                std::vector<uint8_t>(4096, 2));
            REMORA_ASSERT(st.ok());
        }
    };
    sim::Time t0 = cluster.sim.now();
    auto task = streamer(&cluster, seg.value());
    bench::run(cluster.sim, task);
    cluster.sim.run();
    double secs = static_cast<double>(cluster.nodeB.cpu().busyUntil() - t0) /
                  1e9;
    n.mbps = 100.0 * 4096 * 8 / secs / 1e6;
    return n;
}

} // namespace

int
main()
{
    bench::banner("Ablation A5: encrypting the wire (trusted vs AN1 "
                  "hardware vs software DES)");

    rmem::CostModel plain;
    rmem::CostModel hardware;
    hardware.cryptoWordCost = sim::usec(0.05);
    rmem::CostModel software;
    software.cryptoWordCost = sim::usec(2.0);

    Numbers none = measure(plain);
    Numbers hw = measure(hardware);
    Numbers sw = measure(software);

    util::TextTable table({"Crypto regime", "Write (us)", "Read (us)",
                           "Block thr (Mb/s)"});
    table.addRow({"none (trusted cluster)", bench::fmt(none.writeUs),
                  bench::fmt(none.readUs), bench::fmt(none.mbps)});
    table.addRow({"AN1-style hardware (0.05us/word)",
                  bench::fmt(hw.writeUs), bench::fmt(hw.readUs),
                  bench::fmt(hw.mbps)});
    table.addRow({"software DES (2us/word)", bench::fmt(sw.writeUs),
                  bench::fmt(sw.readUs), bench::fmt(sw.mbps)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks (the paper's §3.5 argument):\n");
    std::printf("  hardware crypto costs <15%% latency: %s\n",
                hw.readUs < none.readUs * 1.15 ? "yes" : "NO");
    std::printf("  software crypto is inadequate (>2x latency, "
                "throughput collapse): %s\n",
                (sw.readUs > none.readUs * 2.0 && sw.mbps < none.mbps / 2)
                    ? "yes"
                    : "NO");

    bench::BenchReport report("ablation_security");
    report.metric("none.write_us", none.writeUs, "us");
    report.metric("none.read_us", none.readUs, "us");
    report.metric("none.throughput_mbps", none.mbps, "Mb/s");
    report.metric("hardware.write_us", hw.writeUs, "us");
    report.metric("hardware.read_us", hw.readUs, "us");
    report.metric("hardware.throughput_mbps", hw.mbps, "Mb/s");
    report.metric("software.write_us", sw.writeUs, "us");
    report.metric("software.read_us", sw.readUs, "us");
    report.metric("software.throughput_mbps", sw.mbps, "Mb/s");
    report.check("hardware_lt_15pct_latency",
                 hw.readUs < none.readUs * 1.15);
    report.check("software_inadequate",
                 sw.readUs > none.readUs * 2.0 && sw.mbps < none.mbps / 2);
    report.write();
    return 0;
}
