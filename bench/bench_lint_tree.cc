/**
 * @file
 * Throughput bench for remora-lint's whole-tree pass.
 *
 * The linter runs on every `scripts/check.sh --lint` invocation and
 * inside the tier-1 clean-tree gate, so its cost is paid on every
 * verification cycle. Two measurements:
 *
 *  - tree: wall-clock for the full real-tree pass (scrub, tokenize,
 *    line rules, CFG construction, dataflow fixpoint, include-layer
 *    DAG check over src/). Wall-clock, so the baseline carries a wide
 *    tolerance; the deterministic finding counts are shape checks.
 *  - corpus: files/second over a fixed synthetic corpus of hazardous
 *    and clean coroutine fixtures. The corpus never changes with tree
 *    growth, so its finding count is held exactly by the baseline —
 *    a change means the analysis itself changed, not the repo.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "layers.h"
#include "lint.h"

using namespace remora;

namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** All lintable files under the repo's scanned top-level directories. */
std::vector<std::pair<std::string, std::string>>
treeFiles(const fs::path &root)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const char *top : {"src", "tests", "tools", "bench"}) {
        if (!fs::exists(root / top)) {
            continue;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(root / top)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            std::string rel =
                fs::relative(entry.path(), root).generic_string();
            if (!lint::shouldLint(rel)) {
                continue;
            }
            out.emplace_back(rel, readFile(entry.path()));
        }
    }
    return out;
}

/**
 * A fixed corpus exercising every analysis stage: one hazardous
 * two-lock function, one borrow crossing a suspension, one leaked
 * early-return path, one uninspected vector outcome, and two clean
 * functions so the dataflow pass sees both converging and diverging
 * states. Replicated kCorpusFiles times as distinct "files".
 */
constexpr std::string_view kCorpusUnit = R"cc(
sim::Task<void> worker(rmem::SpinLock *a, rmem::SpinLock *b)
{
    co_await a->acquire();
    co_await b->acquire();
    co_await b->release();
    co_await a->release();
}

sim::Task<void> Server::handle(uint32_t key)
{
    auto it = table_.find(key);
    co_await cpu_.use(kCost);
    it->second.touch();
}

sim::Task<util::Status> Server::withLock(bool fast)
{
    co_await lock_.acquire();
    if (fast) {
        co_return util::Status();
    }
    co_await lock_.release();
    co_return util::Status();
}

sim::Task<void> Server::fireAndForget()
{
    co_await engine_.writev(makeOps(), timeout_);
}

sim::Task<void> critical(rmem::SpinLock *l, sim::Simulator *s)
{
    co_await l->acquire();
    co_await sim::delay(*s, sim::usec(10));
    co_await l->release();
}

sim::Task<void> Server::gather()
{
    auto outcome = co_await engine_.readv(makeOps(), timeout_);
    for (const auto &res : outcome.results) {
        consume(res);
    }
}
)cc";

constexpr int kCorpusFiles = 64;

} // namespace

int
main()
{
    bench::banner("remora-lint: whole-tree analysis throughput");

    const fs::path root(REMORA_SOURCE_DIR);
    auto files = treeFiles(root);
    REMORA_ASSERT(files.size() > 100);

    // Warm-up pass keeps first-touch page faults out of the timed run
    // and collects the deterministic finding counts for the checks.
    size_t errors = 0;
    size_t advisories = 0;
    for (const auto &[rel, text] : files) {
        auto findings =
            lint::lintSource(rel, text, lint::optionsForPath(rel));
        for (const lint::Finding &f : findings) {
            (lint::ruleIsError(f.rule) ? errors : advisories) += 1;
        }
    }
    auto layerFindings = lint::checkIncludeLayers(files);

    // Timed full-tree passes, layer check included: the same work the
    // clean-tree gate and check.sh --lint pay per invocation.
    constexpr int kRounds = 3;
    auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
        for (const auto &[rel, text] : files) {
            auto findings =
                lint::lintSource(rel, text, lint::optionsForPath(rel));
            REMORA_ASSERT(findings.size() < 10000);
        }
        (void)lint::checkIncludeLayers(files);
    }
    double treeSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count() /
                     kRounds;
    double treeFilesPerSec =
        treeSec > 0.0 ? static_cast<double>(files.size()) / treeSec : 0.0;

    // The synthetic corpus: tree-independent, so the baseline holds its
    // finding count exactly.
    std::vector<std::pair<std::string, std::string>> corpus;
    for (int i = 0; i < kCorpusFiles; ++i) {
        corpus.emplace_back("src/rmem/corpus_" + std::to_string(i) + ".cc",
                            std::string(kCorpusUnit));
    }
    lint::Options corpusOpts;
    corpusOpts.checkIncludes = false;
    corpusOpts.checkNondeterminism = false;
    size_t corpusFindings = 0;
    auto corpusStart = std::chrono::steady_clock::now();
    for (const auto &[rel, text] : corpus) {
        corpusFindings += lint::lintSource(rel, text, corpusOpts).size();
    }
    double corpusSec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - corpusStart)
                           .count();
    double corpusFilesPerSec =
        corpusSec > 0.0 ? static_cast<double>(corpus.size()) / corpusSec
                        : 0.0;

    std::printf("tree: %zu files in %.3fs (%.0f files/s), %zu error(s), "
                "%zu advisory note(s), %zu layer violation(s)\n",
                files.size(), treeSec, treeFilesPerSec, errors, advisories,
                layerFindings.size());
    std::printf("corpus: %d files, %zu findings (%.0f files/s)\n",
                kCorpusFiles, corpusFindings, corpusFilesPerSec);

    // Rates only, higher-is-better with a wide tolerance: the smoke
    // label runs under parallel ctest load, so an absolute ms-per-pass
    // figure would gate on scheduler contention, not the linter.
    bench::BenchReport report("lint_tree");
    report.metric("tree.files_per_sec", treeFilesPerSec, "1/s");
    report.metric("corpus.files_per_sec", corpusFilesPerSec, "1/s");
    report.metric("corpus.findings", static_cast<double>(corpusFindings),
                  "count");
    report.check("tree_has_no_error_findings", errors == 0);
    report.check("tree_layer_dag_clean", layerFindings.empty());
    report.check("corpus_hazards_detected",
                 corpusFindings >= static_cast<size_t>(kCorpusFiles) * 4);
    report.note("tree pass covers src/, tests/, tools/, bench/ with the "
                "per-path option profile plus the include-layer DAG check");
    report.write();
    return 0;
}
