/**
 * @file
 * Ablation A3: server load and throughput vs. client count.
 *
 * The paper's motivation for the new structure is scalability: "if we
 * can eliminate both the traffic and the server involvement, we have
 * the potential to improve scalability by lowering both network and
 * server load" (§2), and the conclusion promises "reduced server load,
 * which supports scaling in the face of an increasing number of
 * clients" (§1).
 *
 * Setup: one file server on a switched cluster, N client nodes each
 * running a closed-loop Table-1a-weighted operation stream. For each N
 * and each scheme (HY = Hybrid-1, DX = pure data transfer) we measure
 * aggregate throughput and server-CPU utilization over a fixed window.
 *
 * Expected shape: HY saturates the server CPU (mostly on control
 * transfer and procedure execution) at a small N; DX keeps utilization
 * low and throughput scaling well past HY's knee.
 */
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "dfs/backend.h"
#include "dfs/server.h"
#include "net/network.h"
#include "trace/workload.h"
#include "util/strings.h"

using namespace remora;

namespace {

constexpr sim::Duration kWindow = 2 * sim::kSecond;

struct ClusterRun
{
    double opsPerSec = 0;
    double serverUtil = 0;
    double meanLatencyMs = 0;
};

/** Closed-loop client: draws ops from the Table 1a mix. */
sim::Task<void>
clientLoop(dfs::FileServiceBackend *backend, trace::WorkloadGen *gen,
           const std::vector<dfs::FileHandle> *files, dfs::FileHandle root,
           sim::Simulator *sim, sim::Time stopAt, uint64_t *completed,
           sim::Duration *latencySum)
{
    while (sim->now() < stopAt) {
        trace::Op op = gen->next();
        dfs::FileHandle target = (*files)[op.fileIdx % files->size()];
        sim::Time t0 = sim->now();
        switch (op.cls) {
          case trace::OpClass::kGetAttr:
          case trace::OpClass::kOther: {
            auto r = co_await backend->getattr(target);
            (void)r;
            break;
          }
          case trace::OpClass::kLookup: {
            auto r = co_await backend->lookup(root, "hot0");
            (void)r;
            break;
          }
          case trace::OpClass::kRead: {
            auto r = co_await backend->read(
                target, 0, std::min<uint32_t>(op.bytes, 8192));
            (void)r;
            break;
          }
          case trace::OpClass::kNullPing: {
            auto r = co_await backend->null();
            (void)r;
            break;
          }
          case trace::OpClass::kReadLink:
          case trace::OpClass::kStatFs: {
            auto r = co_await backend->statfs();
            (void)r;
            break;
          }
          case trace::OpClass::kReadDir: {
            auto r = co_await backend->readdir(root, op.bytes);
            (void)r;
            break;
          }
          case trace::OpClass::kWrite: {
            auto r = co_await backend->write(
                target, 0,
                std::vector<uint8_t>(std::min<uint32_t>(op.bytes, 8192),
                                     0x77));
            (void)r;
            break;
          }
          default:
            break;
        }
        ++*completed;
        *latencySum += sim->now() - t0;
    }
}

/** Build a cluster with N clients and run one scheme. */
ClusterRun
runScheme(size_t clients, bool useDx)
{
    sim::Simulator sim;
    net::Network network(sim, net::LinkParams{});

    mem::Node serverNode(sim, 1, "server");
    rmem::RmemEngine serverEngine(serverNode);
    network.addHost(1, serverNode.nic());

    std::vector<std::unique_ptr<mem::Node>> clientNodes;
    std::vector<std::unique_ptr<rmem::RmemEngine>> clientEngines;
    for (size_t i = 0; i < clients; ++i) {
        auto id = static_cast<net::NodeId>(i + 2);
        clientNodes.push_back(std::make_unique<mem::Node>(
            sim, id, "client" + std::to_string(id)));
        clientEngines.push_back(
            std::make_unique<rmem::RmemEngine>(*clientNodes.back()));
        network.addHost(id, clientNodes.back()->nic());
    }
    network.wireSwitched();

    dfs::FileStore store;
    rpc::Hybrid1Params hp;
    hp.slots = static_cast<uint32_t>(clients) + 1;
    hp.pollInterval = sim::usec(4);
    dfs::FileServer server(serverEngine, store, dfs::CacheGeometry{},
                           dfs::ServiceTimes{}, hp);

    // Small hot working set so the 100%-server-hit condition holds.
    std::vector<dfs::FileHandle> files;
    for (int i = 0; i < 8; ++i) {
        auto f = store.createFile(store.root(), "hot" + std::to_string(i),
                                  16384);
        REMORA_ASSERT(f.ok());
        files.push_back(f.value());
    }
    server.warmCaches();
    server.start();
    sim.run();

    std::vector<std::unique_ptr<rpc::Hybrid1Client>> hyClients;
    std::vector<std::unique_ptr<dfs::HyBackend>> hyBackends;
    std::vector<std::unique_ptr<dfs::DxBackend>> dxBackends;
    std::vector<std::unique_ptr<trace::WorkloadGen>> gens;
    std::vector<uint64_t> completed(clients, 0);
    std::vector<sim::Duration> latency(clients, 0);

    serverNode.cpu().resetAccounting();
    sim::Time start = sim.now();
    sim::Time stopAt = start + kWindow;

    std::vector<sim::Task<void>> loops;
    for (size_t i = 0; i < clients; ++i) {
        mem::Process &proc =
            clientNodes[i]->spawnProcess("clerk" + std::to_string(i));
        hyClients.push_back(std::make_unique<rpc::Hybrid1Client>(
            *clientEngines[i], proc, server.hybridHandle(),
            server.allocClientSlot(), hp));
        gens.push_back(std::make_unique<trace::WorkloadGen>(1000 + i));
        dfs::FileServiceBackend *backend;
        if (useDx) {
            dxBackends.push_back(std::make_unique<dfs::DxBackend>(
                *clientEngines[i], proc, server.areaHandles(),
                dfs::CacheGeometry{}, hyClients.back().get()));
            backend = dxBackends.back().get();
        } else {
            hyBackends.push_back(
                std::make_unique<dfs::HyBackend>(*hyClients.back()));
            backend = hyBackends.back().get();
        }
        loops.push_back(clientLoop(backend, gens[i].get(), &files,
                                   store.root(), &sim, stopAt,
                                   &completed[i], &latency[i]));
    }

    sim.run(stopAt + sim::msec(200)); // let in-flight ops drain
    for (auto &loop : loops) {
        loop.detach();
    }

    ClusterRun r;
    uint64_t total = 0;
    sim::Duration latSum = 0;
    for (size_t i = 0; i < clients; ++i) {
        total += completed[i];
        latSum += latency[i];
    }
    double secs = static_cast<double>(kWindow) / 1e9;
    r.opsPerSec = static_cast<double>(total) / secs;
    r.serverUtil = static_cast<double>(serverNode.cpu().totalBusy()) /
                   static_cast<double>(kWindow);
    r.meanLatencyMs =
        total ? sim::toMsec(latSum / static_cast<sim::Duration>(total)) : 0;
    return r;
}

} // namespace

int
main()
{
    bench::banner("Ablation A3: server load vs. number of clients");

    util::TextTable table({"Clients", "HY ops/s", "HY util", "HY lat (ms)",
                           "DX ops/s", "DX util", "DX lat (ms)",
                           "DX/HY thr"});

    bench::BenchReport report("scaling_clients");
    double hyKnee = 0, dxAt16 = 0, hyAt16 = 0;
    for (size_t n : {1, 2, 4, 8, 16, 24}) {
        ClusterRun hy = runScheme(n, false);
        ClusterRun dx = runScheme(n, true);
        if (hy.serverUtil > 0.9 && hyKnee == 0) {
            hyKnee = static_cast<double>(n);
        }
        if (n == 16) {
            hyAt16 = hy.opsPerSec;
            dxAt16 = dx.opsPerSec;
        }
        table.addRow({std::to_string(n), bench::fmt(hy.opsPerSec, 0),
                      bench::fmt(hy.serverUtil, 2),
                      bench::fmt(hy.meanLatencyMs, 2),
                      bench::fmt(dx.opsPerSec, 0),
                      bench::fmt(dx.serverUtil, 2),
                      bench::fmt(dx.meanLatencyMs, 2),
                      bench::fmt(dx.opsPerSec / hy.opsPerSec, 2)});
        std::string key = "n" + std::to_string(n);
        report.metric(key + ".hy.ops_per_sec", hy.opsPerSec, "ops/s");
        report.metric(key + ".hy.server_util", hy.serverUtil, "frac");
        report.metric(key + ".hy.mean_latency_ms", hy.meanLatencyMs, "ms");
        report.metric(key + ".dx.ops_per_sec", dx.opsPerSec, "ops/s");
        report.metric(key + ".dx.server_util", dx.serverUtil, "frac");
        report.metric(key + ".dx.mean_latency_ms", dx.meanLatencyMs, "ms");
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks:\n");
    std::printf("  HY saturates the server (>90%% util) by N=%g clients\n",
                hyKnee);
    std::printf("  at N=16, DX sustains %.1fx HY's throughput: %s\n",
                dxAt16 / hyAt16, dxAt16 > 1.5 * hyAt16 ? "yes" : "NO");

    report.metric("hy_saturation_knee_clients", hyKnee, "clients");
    report.metric("dx_over_hy_throughput_at_16", dxAt16 / hyAt16, "x");
    report.check("dx_gt_1.5x_hy_at_16", dxAt16 > 1.5 * hyAt16);
    report.write();
    return 0;
}
