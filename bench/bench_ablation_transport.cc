/**
 * @file
 * Ablation A6: three transports, one file service.
 *
 * The paper compares pure data transfer (DX) against Hybrid-1, its
 * remote-memory reconstruction of a fast RPC. This ablation adds the
 * *conventional* request/response RPC transport — with the full
 * six-step thread model of §2 — as a third column, quantifying how
 * much of RPC's cost Hybrid-1 already eliminates and how much only
 * pure data transfer can remove.
 *
 * Expected ordering per operation, for both latency and server load:
 *   DX < Hybrid-1 < conventional RPC.
 */
#include <cstdio>

#include "bench_dfs_common.h"
#include "rpc/transport.h"
#include "util/strings.h"

using namespace remora;

namespace {

struct TransportHarness
{
    bench::DfsHarness base;
    rpc::RpcTransport clientRpc;
    rpc::RpcTransport serverRpc;
    dfs::RpcBackend rpc;

    TransportHarness()
        : clientRpc(base.cluster.engineA.wire()),
          serverRpc(base.cluster.engineB.wire()), rpc(clientRpc, 2)
    {
        base.server.attachRpcTransport(serverRpc);
    }
};

} // namespace

int
main()
{
    bench::banner("Ablation A6: DX vs Hybrid-1 vs conventional RPC");

    TransportHarness h;
    constexpr int kIters = 10;

    util::TextTable table({"Operation", "DX lat (ms)", "HY lat (ms)",
                           "RPC lat (ms)", "DX load (ms)", "HY load (ms)",
                           "RPC load (ms)"});

    auto &cpu = h.base.cluster.nodeB.cpu();
    bench::BenchReport report("ablation_transport");
    bool latencyOrdered = true;
    bool loadOrdered = true;

    for (const bench::FigureOp &op : bench::figureOps()) {
        double lat[3] = {0, 0, 0};
        double load[3] = {0, 0, 0};
        dfs::FileServiceBackend *backends[3] = {&h.base.dx, &h.base.hy,
                                                &h.rpc};
        for (int b = 0; b < 3; ++b) {
            for (int i = 0; i < kIters; ++i) {
                cpu.resetAccounting();
                lat[b] += sim::toMsec(h.base.runOp(*backends[b], op));
                load[b] += sim::toMsec(cpu.totalBusy());
            }
            lat[b] /= kIters;
            load[b] /= kIters;
        }
        latencyOrdered =
            latencyOrdered && lat[0] < lat[1] && lat[1] < lat[2];
        loadOrdered = loadOrdered && load[0] < load[1] && load[1] < load[2];
        table.addRow({op.label, bench::fmt(lat[0], 3), bench::fmt(lat[1], 3),
                      bench::fmt(lat[2], 3), bench::fmt(load[0], 3),
                      bench::fmt(load[1], 3), bench::fmt(load[2], 3)});
        std::string key = op.label;
        report.metric(key + ".dx.latency_ms", lat[0], "ms");
        report.metric(key + ".hy.latency_ms", lat[1], "ms");
        report.metric(key + ".rpc.latency_ms", lat[2], "ms");
        report.metric(key + ".dx.server_load_ms", load[0], "ms");
        report.metric(key + ".hy.server_load_ms", load[1], "ms");
        report.metric(key + ".rpc.server_load_ms", load[2], "ms");
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks:\n");
    std::printf("  latency ordering DX < HY < RPC on every op: %s\n",
                latencyOrdered ? "yes" : "NO");
    std::printf("  server load ordering DX < HY < RPC on every op: %s\n",
                loadOrdered ? "yes" : "NO");

    report.check("latency_dx_lt_hy_lt_rpc", latencyOrdered);
    report.check("load_dx_lt_hy_lt_rpc", loadOrdered);
    report.write();
    return 0;
}
