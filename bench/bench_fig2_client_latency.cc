/**
 * @file
 * Reproduction of Figure 2: request processing latency seen by the
 * client, for twelve file operations, under the two structures §5.2
 * compares:
 *
 *   HY — Hybrid-1 (RPC-like): write-with-notification request, warm
 *        server procedure execution, return write(s);
 *   DX — pure data transfer: the clerk reads (or writes) the server's
 *        exported cache areas directly, no server process involvement.
 *
 * The paper's conditions are reproduced: 100% server cache hit rate,
 * client<->clerk communication cost excluded (backends are driven
 * directly), warm-cache NFS service times on the HY path.
 *
 * Expected shapes (the paper's argument): DX beats HY on every
 * operation, and the advantage shrinks as the transfer grows, because
 * a single control transfer amortizes over more data.
 */
#include <cstdio>

#include "bench_dfs_common.h"
#include "util/strings.h"

using namespace remora;

int
main()
{
    bench::banner("Figure 2: Request Processing Latency Seen by Client");

    bench::DfsHarness h;
    constexpr int kIters = 10;

    util::TextTable table({"Operation", "HY (ms)", "DX (ms)", "HY/DX",
                           "server proc (ms)"});
    bench::BenchReport report("fig2_client_latency");
    bool dxAlwaysWins = true;
    double firstRatio = 0, lastRatio = 0;

    for (const bench::FigureOp &op : bench::figureOps()) {
        double hyMs = 0, dxMs = 0;
        for (int i = 0; i < kIters; ++i) {
            hyMs += sim::toMsec(h.runOp(h.hy, op));
            dxMs += sim::toMsec(h.runOp(h.dx, op));
        }
        hyMs /= kIters;
        dxMs /= kIters;
        dxAlwaysWins = dxAlwaysWins && (dxMs < hyMs);

        double ratio = hyMs / dxMs;
        if (firstRatio == 0) {
            firstRatio = ratio;
        }
        lastRatio = ratio;

        double procMs =
            sim::toMsec(h.server.serviceTimes().timeFor(op.proc, op.bytes));
        table.addRow({op.label, bench::fmt(hyMs, 3), bench::fmt(dxMs, 3),
                      bench::fmt(ratio, 1), bench::fmt(procMs, 3)});
        std::string key = op.label;
        report.metric(key + ".hy_ms", hyMs, "ms");
        report.metric(key + ".dx_ms", dxMs, "ms");
        report.metric(key + ".hy_over_dx", ratio, "x");
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Shape checks:\n");
    std::printf("  DX faster than HY on every operation: %s\n",
                dxAlwaysWins ? "yes" : "NO");
    std::printf("  advantage shrinks as transfers grow "
                "(GetAttr ratio %.1fx vs WriteFile(1K) ratio %.1fx): %s\n",
                firstRatio, lastRatio,
                firstRatio > lastRatio ? "yes" : "NO");
    std::printf("  DX cache misses during run: %llu (must be 0)\n",
                static_cast<unsigned long long>(h.dx.misses()));

    report.check("dx_faster_on_every_op", dxAlwaysWins);
    report.check("advantage_shrinks_with_size", firstRatio > lastRatio);
    report.check("dx_cache_misses_zero", h.dx.misses() == 0);
    report.note("100% server cache hit rate; client<->clerk local RPC "
                "excluded; warm-cache NFS service times on the HY path");
    report.write();
    return h.dx.misses() == 0 ? 0 : 1;
}
