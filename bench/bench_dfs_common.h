/**
 * @file
 * Shared fixture for the Figure 2 / Figure 3 file-service benches:
 * a two-node cluster with a warm-cached file server on one side and
 * both transfer backends (HY = Hybrid-1, DX = pure data transfer) on
 * the other, plus the twelve operations the figures plot.
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dfs/backend.h"
#include "dfs/clerk.h"
#include "dfs/server.h"
#include "trace/workload.h"

namespace remora::bench {

/** The twelve operations of Figures 2 and 3, in the paper's order. */
struct FigureOp
{
    std::string label;
    dfs::NfsProc proc;
    uint32_t bytes; // transfer size (0 for metadata ops)
};

inline std::vector<FigureOp>
figureOps()
{
    return {
        {"GetAttribute", dfs::NfsProc::kGetAttr, 0},
        {"LookupName", dfs::NfsProc::kLookup, 0},
        {"ReadLink", dfs::NfsProc::kReadLink, 0},
        {"Readfile(8K)", dfs::NfsProc::kRead, 8192},
        {"Readfile(4K)", dfs::NfsProc::kRead, 4096},
        {"Readfile(1K)", dfs::NfsProc::kRead, 1024},
        {"ReadDirectory(4K)", dfs::NfsProc::kReadDir, 4096},
        {"ReadDirectory(1K)", dfs::NfsProc::kReadDir, 1024},
        {"ReadDirectory(512)", dfs::NfsProc::kReadDir, 512},
        {"WriteFile(8K)", dfs::NfsProc::kWrite, 8192},
        {"WriteFile(4K)", dfs::NfsProc::kWrite, 4096},
        {"WriteFile(1K)", dfs::NfsProc::kWrite, 1024},
    };
}

/** Warm two-node file service with both backends bound. */
struct DfsHarness
{
    TwoNode cluster;
    dfs::FileStore store;
    dfs::FileServer server;
    mem::Process &clerkProc;
    rpc::Hybrid1Client hyClient;
    dfs::HyBackend hy;
    dfs::DxBackend dx;

    // Benchmark targets.
    dfs::FileHandle file;     // >= 8 KB regular file
    dfs::FileHandle writeTgt; // write target, 8 KB
    dfs::FileHandle bigDir;   // directory with >4 KB of entries
    dfs::FileHandle link;     // a symlink

    DfsHarness()
        : server(cluster.engineB, store),
          clerkProc(cluster.nodeA.spawnProcess("clerk")),
          hyClient(cluster.engineA, clerkProc, server.hybridHandle(),
                   server.allocClientSlot()),
          hy(hyClient),
          dx(cluster.engineA, clerkProc, server.areaHandles(),
             dfs::CacheGeometry{}, &hyClient)
    {
        auto f = store.createFile(store.root(), "data.bin", 16384);
        REMORA_ASSERT(f.ok());
        file = f.value();
        auto w = store.createFile(store.root(), "out.bin", 8192);
        REMORA_ASSERT(w.ok());
        writeTgt = w.value();
        auto d = store.mkdir(store.root(), "bigdir");
        REMORA_ASSERT(d.ok());
        bigDir = d.value();
        for (int i = 0; i < 220; ++i) {
            auto e = store.createFile(d.value(),
                                      "entry" + std::to_string(i), 16);
            REMORA_ASSERT(e.ok());
        }
        auto l = store.symlink(store.root(), "alink", "/usr/lib/X11/fonts");
        REMORA_ASSERT(l.ok());
        link = l.value();

        server.warmCaches();
        // Direct-mapped areas may see collisions among the 200+ filler
        // entries; reinsert the benchmark targets last so the measured
        // operations always hit (the paper's 100%-hit assumption).
        server.cacheAttr(file);
        server.cacheAttr(writeTgt);
        server.cacheAttr(link);
        server.cacheName(store.root(), "data.bin");
        server.cacheDir(bigDir);
        server.cacheLink(link);
        for (uint64_t b = 0; b < 2; ++b) {
            server.cacheBlock(file, b);
            server.cacheBlock(writeTgt, 0);
        }
        server.start();
        cluster.sim.run();
    }

    /** Issue @p op through @p backend; returns client-visible latency. */
    sim::Duration
    runOp(dfs::FileServiceBackend &backend, const FigureOp &op)
    {
        sim::Time t0 = cluster.sim.now();
        switch (op.proc) {
          case dfs::NfsProc::kGetAttr: {
            auto t = backend.getattr(file);
            auto r = run(cluster.sim, t);
            REMORA_ASSERT(r.ok());
            break;
          }
          case dfs::NfsProc::kLookup: {
            auto t = backend.lookup(store.root(), "data.bin");
            auto r = run(cluster.sim, t);
            REMORA_ASSERT(r.ok());
            break;
          }
          case dfs::NfsProc::kReadLink: {
            auto t = backend.readlink(link);
            auto r = run(cluster.sim, t);
            REMORA_ASSERT(r.ok());
            break;
          }
          case dfs::NfsProc::kRead: {
            auto t = backend.read(file, 0, op.bytes);
            auto r = run(cluster.sim, t);
            REMORA_ASSERT(r.ok() && r.value().size() == op.bytes);
            break;
          }
          case dfs::NfsProc::kReadDir: {
            auto t = backend.readdir(bigDir, op.bytes);
            auto r = run(cluster.sim, t);
            REMORA_ASSERT(r.ok() && !r.value().empty());
            break;
          }
          case dfs::NfsProc::kWrite: {
            auto t = backend.write(writeTgt, 0,
                                   std::vector<uint8_t>(op.bytes, 0xab));
            auto s = run(cluster.sim, t);
            REMORA_ASSERT(s.ok());
            break;
          }
          default:
            REMORA_PANIC("unsupported figure op");
        }
        sim::Duration elapsed = cluster.sim.now() - t0;
        cluster.sim.run(); // drain trailing work (NAKs, deposits)
        return elapsed;
    }
};

} // namespace remora::bench
