#include "dfs/backend.h"

#include <algorithm>

#include "util/panic.h"

namespace remora::dfs {

namespace {

/** Deadline for DX remote reads (silence means the server is gone). */
constexpr sim::Duration kDxReadTimeout = sim::msec(100);

/** Scratch deposit slots: big enough for a header + unaligned block. */
constexpr uint32_t kScratchSlotBytes = 20480;
constexpr uint32_t kScratchSlots = 4;

// ---- Reply decoders shared by HY and RPC backends --------------------

util::Status
replyStatus(rpc::Unmarshal &u)
{
    uint32_t code = u.getU32();
    if (!u.ok()) {
        return util::Status(util::ErrorCode::kMalformed, "short reply");
    }
    if (code != 0) {
        return util::Status(static_cast<util::ErrorCode>(code),
                            "server-side failure");
    }
    return {};
}

util::Result<FileAttr>
decodeAttrReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    return getFileAttr(u);
}

util::Result<LookupReply>
decodeLookupReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    LookupReply r;
    r.fh = getFileHandle(u);
    r.attr = getFileAttr(u);
    return r;
}

util::Result<std::vector<uint8_t>>
decodeReadReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    getFileAttr(u);
    return u.getOpaque();
}

util::Status
decodeWriteReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    return replyStatus(u);
}

util::Result<std::string>
decodeReadLinkReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    return u.getString();
}

util::Result<std::vector<DirEntry>>
decodeReadDirReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    return getDirEntries(u);
}

util::Result<FsStat>
decodeStatFsReply(const std::vector<uint8_t> &body)
{
    rpc::Unmarshal u(body);
    util::Status s = replyStatus(u);
    if (!s.ok()) {
        return s;
    }
    return getFsStat(u);
}

} // namespace

// ----------------------------------------------------------------------
// DxBackend
// ----------------------------------------------------------------------

DxBackend::DxBackend(rmem::RmemEngine &engine, mem::Process &clerkProcess,
                     const ServerAreaHandles &areas,
                     const CacheGeometry &geometry,
                     rpc::Hybrid1Client *fallback)
    : engine_(engine), process_(clerkProcess), areas_(areas), geo_(geometry),
      fallback_(fallback)
{
    uint32_t bytes = kScratchSlots * kScratchSlotBytes;
    scratchBase_ = process_.space().allocRegion(bytes);
    auto h = engine_.exportSegment(process_, scratchBase_, bytes,
                                   rmem::Rights::kRead,
                                   rmem::NotifyPolicy::kNever, "dx.scratch");
    if (!h.ok()) {
        REMORA_FATAL("dx backend: cannot export scratch: " +
                     h.status().toString());
    }
    scratchSeg_ = h.value().descriptor;
}

uint32_t
DxBackend::scratchSlot()
{
    return (scratchCursor_++ % kScratchSlots) * kScratchSlotBytes;
}

sim::Task<util::Result<std::vector<uint8_t>>>
DxBackend::fetch(rmem::ImportedSegment area, uint64_t areaOff,
                 uint32_t count)
{
    REMORA_ASSERT(count <= kScratchSlotBytes);
    uint32_t slot = scratchSlot();
    rmem::ReadOutcome out = co_await engine_.read(
        area, static_cast<uint32_t>(areaOff), scratchSeg_, slot, count,
        false, kDxReadTimeout);
    if (!out.status.ok()) {
        co_return out.status;
    }
    co_return std::move(out.data);
}

sim::Task<util::Status>
DxBackend::null()
{
    // Pure data transfer has no server ping: nothing to do.
    co_return util::Status();
}

sim::Task<util::Result<FileAttr>>
DxBackend::getattr(FileHandle fh)
{
    uint32_t bucket = attrBucket(fh.key(), geo_.attrBuckets);
    auto bytes = co_await fetch(areas_.attr,
                                static_cast<uint64_t>(bucket) * kAttrRecBytes,
                                kAttrRecBytes);
    if (bytes.ok()) {
        AttrRecord rec = AttrRecord::decode(bytes.value());
        if (rec.flag == kSlotValid && rec.fhKey == fh.key()) {
            co_return rec.attr;
        }
    } else if (bytes.status().code() == util::ErrorCode::kTimeout) {
        co_return bytes.status();
    }
    ++misses_;
    if (fallback_ != nullptr) {
        auto reply = co_await fallback_->call(encodeGetAttrCall(fh));
        if (!reply.ok()) {
            co_return reply.status();
        }
        co_return decodeAttrReply(reply.value());
    }
    co_return util::Status(util::ErrorCode::kNotFound,
                           "attr not in server cache");
}

sim::Task<util::Result<LookupReply>>
DxBackend::lookup(FileHandle dir, std::string name)
{
    uint32_t bucket = nameBucket(dir.key(), name, geo_.nameBuckets);
    auto bytes = co_await fetch(areas_.name,
                                static_cast<uint64_t>(bucket) * kNameRecBytes,
                                kNameRecBytes);
    if (bytes.ok()) {
        NameLookupRecord rec = NameLookupRecord::decode(bytes.value());
        if (rec.flag == kSlotValid && rec.dirKey == dir.key() &&
            rec.name == name) {
            co_return LookupReply{FileHandle::fromKey(rec.childKey),
                                  rec.childAttr};
        }
    } else if (bytes.status().code() == util::ErrorCode::kTimeout) {
        co_return bytes.status();
    }
    ++misses_;
    if (fallback_ != nullptr) {
        auto reply = co_await fallback_->call(encodeLookupCall(dir, name));
        if (!reply.ok()) {
            co_return reply.status();
        }
        co_return decodeLookupReply(reply.value());
    }
    co_return util::Status(util::ErrorCode::kNotFound,
                           "name not in server cache");
}

sim::Task<util::Result<std::vector<uint8_t>>>
DxBackend::read(FileHandle fh, uint64_t offset, uint32_t count)
{
    // Plan the per-block fetches covering [offset, offset+count).
    struct BlockFetch
    {
        uint64_t blockNo;
        uint32_t blockOff;
        uint32_t chunk;
        uint64_t slotOff;
    };
    std::vector<BlockFetch> plan;
    for (uint64_t pos = offset, end = offset + count; pos < end;) {
        uint64_t blockNo = pos / kBlockBytes;
        uint32_t blockOff = static_cast<uint32_t>(pos % kBlockBytes);
        uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(end - pos, kBlockBytes - blockOff));
        uint32_t slot = dataSlot(fh.key(), blockNo, geo_.dataSlots);
        plan.push_back(BlockFetch{
            blockNo, blockOff, chunk,
            static_cast<uint64_t>(slot) * kDataSlotBytes});
        pos += chunk;
    }

    std::vector<uint8_t> out;
    out.reserve(count);
    // Fetch in windows of up to kScratchSlots blocks: ONE vectored READ
    // per window (one trap, one round trip, one deposit interrupt)
    // where the scalar loop paid one of each per block. Each block's
    // header+payload lands in its own scratch slot.
    //
    // Under loss a big window is fragile — one dropped cell times out
    // the whole batch — so a timeout halves the window and retries the
    // same range rather than surfacing the error: smaller frames have
    // proportionally better odds of arriving intact. At window 1 a
    // bounded number of retries remains before the timeout propagates.
    size_t windowCap = kScratchSlots;
    int retriesAtMin = 0;
    constexpr int kMaxRetriesAtMin = 3;
    for (size_t base = 0; base < plan.size();) {
        size_t window = std::min<size_t>(windowCap, plan.size() - base);
        std::vector<rmem::BatchBuilder::Read> ops;
        ops.reserve(window);
        for (size_t i = 0; i < window; ++i) {
            const BlockFetch &b = plan[base + i];
            rmem::BatchBuilder::Read op;
            op.src = areas_.data;
            op.srcOff = static_cast<uint32_t>(b.slotOff);
            op.dstSeg = scratchSeg_;
            op.dstOff = static_cast<uint32_t>(i * kScratchSlotBytes);
            op.count = static_cast<uint16_t>(kDataHeaderBytes + b.blockOff +
                                             b.chunk);
            ops.push_back(std::move(op));
        }
        auto outcome =
            co_await engine_.readv(std::move(ops), kDxReadTimeout);
        if (!outcome.status.ok()) {
            bool retryable =
                outcome.status.code() == util::ErrorCode::kTimeout &&
                (windowCap > 1 || retriesAtMin < kMaxRetriesAtMin);
            if (retryable) {
                if (windowCap > 1) {
                    windowCap /= 2;
                } else {
                    ++retriesAtMin;
                }
                ++windowShrinks_;
                continue; // retry the same range with a smaller window
            }
            co_return outcome.status;
        }
        REMORA_ASSERT(outcome.results.size() == window);
        for (size_t i = 0; i < window; ++i) {
            const BlockFetch &b = plan[base + i];
            const rmem::VectorSubResult &res = outcome.results[i];
            if (res.status != util::ErrorCode::kOk) {
                co_return util::Status(res.status,
                                       "block fetch rejected at server");
            }
            DataSlotHeader hdr = DataSlotHeader::decode(res.data);
            if (hdr.flag != kSlotValid || hdr.fhKey != fh.key() ||
                hdr.blockNo != b.blockNo) {
                ++misses_;
                if (fallback_ != nullptr) {
                    auto reply = co_await fallback_->call(
                        encodeReadCall(fh, offset, count));
                    if (!reply.ok()) {
                        co_return reply.status();
                    }
                    co_return decodeReadReply(reply.value());
                }
                co_return util::Status(util::ErrorCode::kNotFound,
                                       "block not in server cache");
            }
            if (b.blockOff >= hdr.validBytes) {
                co_return out; // past end of file
            }
            uint32_t take = std::min(b.chunk, hdr.validBytes - b.blockOff);
            auto data = std::span<const uint8_t>(res.data)
                            .subspan(kDataHeaderBytes + b.blockOff, take);
            out.insert(out.end(), data.begin(), data.end());
            if (take < b.chunk) {
                co_return out; // short block: end of file
            }
        }
        base += window;
    }
    co_return out;
}

sim::Task<util::Status>
DxBackend::write(FileHandle fh, uint64_t offset, std::vector<uint8_t> data)
{
    // Plan every block's sub-ops up front, then ship them as vectored
    // WRITE batches: one trap and one frame cover many blocks where the
    // scalar loop paid per block. Sub-op order inside a batch is
    // preserved by the serving CPU's FIFO, so the data-first / tag-last
    // discipline holds exactly as it did for sequential scalar writes —
    // a concurrent reader never sees a valid tag over missing bytes.
    struct BlockPut
    {
        uint64_t blockNo;
        uint32_t blockOff;
        uint32_t chunk;
        uint64_t slotOff;
        uint64_t pos;
        uint32_t validBytes;
    };
    std::vector<BlockPut> puts;
    for (uint64_t pos = 0; pos < data.size();) {
        uint64_t abs = offset + pos;
        uint64_t blockNo = abs / kBlockBytes;
        uint32_t blockOff = static_cast<uint32_t>(abs % kBlockBytes);
        uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(
            data.size() - pos, kBlockBytes - blockOff));
        uint32_t slot = dataSlot(fh.key(), blockNo, geo_.dataSlots);
        puts.push_back(BlockPut{blockNo, blockOff, chunk,
                                static_cast<uint64_t>(slot) * kDataSlotBytes,
                                pos, blockOff + chunk});
        pos += chunk;
    }

    // A write covering only part of its block must not shrink the
    // block's valid range: stamping validBytes = blockOff + chunk over
    // a fully-valid cached block would truncate it, and the next read
    // would mistake the cut for end-of-file. Fetch those blocks'
    // current headers first and keep the larger extent. Full-block
    // writes define the whole range themselves and skip the round
    // trip, so the streaming path pays nothing.
    std::vector<size_t> partials;
    for (size_t i = 0; i < puts.size(); ++i) {
        if (puts[i].blockOff > 0 || puts[i].chunk < kBlockBytes) {
            partials.push_back(i);
        }
    }
    if (!partials.empty()) {
        rmem::VectorOutcome hdrs;
        for (int attempt = 0;; ++attempt) {
            std::vector<rmem::BatchBuilder::Read> ops;
            ops.reserve(partials.size());
            for (size_t k = 0; k < partials.size(); ++k) {
                rmem::BatchBuilder::Read op;
                op.src = areas_.data;
                op.srcOff = static_cast<uint32_t>(puts[partials[k]].slotOff);
                op.dstSeg = scratchSeg_;
                op.dstOff = static_cast<uint32_t>(k * kScratchSlotBytes);
                op.count = kDataHeaderBytes;
                ops.push_back(std::move(op));
            }
            hdrs = co_await engine_.readv(std::move(ops), kDxReadTimeout);
            if (hdrs.status.ok()) {
                break;
            }
            if (hdrs.status.code() != util::ErrorCode::kTimeout ||
                attempt >= 2) {
                co_return hdrs.status;
            }
        }
        REMORA_ASSERT(hdrs.results.size() == partials.size());
        for (size_t k = 0; k < partials.size(); ++k) {
            BlockPut &p = puts[partials[k]];
            const rmem::VectorSubResult &res = hdrs.results[k];
            if (res.status != util::ErrorCode::kOk) {
                co_return util::Status(res.status,
                                       "header fetch rejected at server");
            }
            DataSlotHeader old = DataSlotHeader::decode(res.data);
            if (old.flag == kSlotValid && old.fhKey == fh.key() &&
                old.blockNo == p.blockNo) {
                p.validBytes = std::max(p.validBytes, old.validBytes);
            } else if (p.blockOff > 0) {
                // The slot holds some other block, so the bytes below
                // blockOff aren't ours to vouch for; depositing anyway
                // would mark a foreign prefix valid under our key. Let
                // the server do the read-modify-write instead.
                ++misses_;
                if (fallback_ != nullptr) {
                    auto reply = co_await fallback_->call(
                        encodeWriteCall(fh, offset, data));
                    if (!reply.ok()) {
                        co_return reply.status();
                    }
                    co_return decodeWriteReply(reply.value());
                }
                co_return util::Status(
                    util::ErrorCode::kNotFound,
                    "partial write to block not in server cache");
            }
        }
    }

    std::vector<rmem::BatchBuilder::Write> subs;
    for (const BlockPut &p : puts) {
        uint64_t blockNo = p.blockNo;
        uint32_t blockOff = p.blockOff;
        uint32_t chunk = p.chunk;
        uint64_t slotOff = p.slotOff;

        DataSlotHeader hdr;
        hdr.flag = kSlotValid;
        hdr.dirty = 1;
        hdr.fhKey = fh.key();
        hdr.blockNo = blockNo;
        hdr.validBytes = p.validBytes;
        std::vector<uint8_t> hdrBuf(kDataHeaderBytes);
        hdr.encode(hdrBuf);

        auto chunkSpan =
            std::span<const uint8_t>(data).subspan(p.pos, chunk);
        if (blockOff == 0) {
            // Header and data are contiguous: one sub-op.
            std::vector<uint8_t> buf;
            buf.reserve(kDataHeaderBytes + chunk);
            buf.insert(buf.end(), hdrBuf.begin(), hdrBuf.end());
            buf.insert(buf.end(), chunkSpan.begin(), chunkSpan.end());
            subs.push_back(rmem::BatchBuilder::Write{
                areas_.data, static_cast<uint32_t>(slotOff),
                std::move(buf), false});
        } else {
            // Data first, tag last.
            subs.push_back(rmem::BatchBuilder::Write{
                areas_.data,
                static_cast<uint32_t>(slotOff + kDataHeaderBytes +
                                      blockOff),
                std::vector<uint8_t>(chunkSpan.begin(), chunkSpan.end()),
                false});
            subs.push_back(rmem::BatchBuilder::Write{
                areas_.data, static_cast<uint32_t>(slotOff),
                std::move(hdrBuf), false});
        }
    }

    rmem::BatchBuilder batch(engine_);
    for (rmem::BatchBuilder::Write &sub : subs) {
        rmem::BatchBuilder::Write retry = sub; // kept for flush-and-retry
        util::Status s = batch.addWrite(std::move(sub));
        if (s.code() == util::ErrorCode::kResource && !batch.empty()) {
            // Frame budget reached: flush what we have and retry.
            auto outcome = co_await batch.issue();
            if (!outcome.status.ok()) {
                co_return outcome.status;
            }
            s = batch.addWrite(std::move(retry));
        }
        if (!s.ok()) {
            co_return s;
        }
    }
    if (!batch.empty()) {
        auto outcome = co_await batch.issue();
        if (!outcome.status.ok()) {
            co_return outcome.status;
        }
    }
    co_return util::Status();
}

sim::Task<util::Result<std::string>>
DxBackend::readlink(FileHandle fh)
{
    uint32_t slot = linkSlot(fh.key(), geo_.linkSlots);
    auto bytes = co_await fetch(areas_.link,
                                static_cast<uint64_t>(slot) * kLinkRecBytes,
                                kLinkRecBytes);
    if (bytes.ok()) {
        LinkRecord rec = LinkRecord::decode(bytes.value());
        if (rec.flag == kSlotValid && rec.fhKey == fh.key()) {
            co_return rec.target;
        }
    } else if (bytes.status().code() == util::ErrorCode::kTimeout) {
        co_return bytes.status();
    }
    ++misses_;
    if (fallback_ != nullptr) {
        auto reply = co_await fallback_->call(encodeReadLinkCall(fh));
        if (!reply.ok()) {
            co_return reply.status();
        }
        co_return decodeReadLinkReply(reply.value());
    }
    co_return util::Status(util::ErrorCode::kNotFound,
                           "symlink not in server cache");
}

sim::Task<util::Result<std::vector<DirEntry>>>
DxBackend::readdir(FileHandle fh, uint32_t maxBytes)
{
    uint32_t slot = dirSlot(fh.key(), geo_.dirSlots);
    uint32_t want = std::min(maxBytes, kDirSlotBytes - kDirHeaderBytes);
    auto bytes = co_await fetch(areas_.dir,
                                static_cast<uint64_t>(slot) * kDirSlotBytes,
                                kDirHeaderBytes + want);
    if (bytes.ok()) {
        DirSlotHeader hdr = DirSlotHeader::decode(bytes.value());
        if (hdr.flag == kSlotValid && hdr.dirKey == fh.key()) {
            auto packed = std::span<const uint8_t>(bytes.value())
                              .subspan(kDirHeaderBytes);
            co_return unpackDirEntries(packed,
                                       std::min(hdr.bytes, want));
        }
    } else if (bytes.status().code() == util::ErrorCode::kTimeout) {
        co_return bytes.status();
    }
    ++misses_;
    if (fallback_ != nullptr) {
        auto reply =
            co_await fallback_->call(encodeReadDirCall(fh, maxBytes));
        if (!reply.ok()) {
            co_return reply.status();
        }
        co_return decodeReadDirReply(reply.value());
    }
    co_return util::Status(util::ErrorCode::kNotFound,
                           "directory not in server cache");
}

sim::Task<util::Result<FsStat>>
DxBackend::statfs()
{
    auto bytes = co_await fetch(areas_.stat, 0, kStatRecBytes);
    if (bytes.ok()) {
        StatRecord rec = StatRecord::decode(bytes.value());
        if (rec.flag == kSlotValid) {
            co_return rec.stat;
        }
    } else if (bytes.status().code() == util::ErrorCode::kTimeout) {
        co_return bytes.status();
    }
    ++misses_;
    co_return util::Status(util::ErrorCode::kNotFound,
                           "statistics not in server cache");
}

// ----------------------------------------------------------------------
// HyBackend
// ----------------------------------------------------------------------

sim::Task<util::Result<std::vector<uint8_t>>>
HyBackend::roundTrip(std::vector<uint8_t> body)
{
    auto reply = co_await client_.call(std::move(body));
    co_return reply;
}

sim::Task<util::Status>
HyBackend::null()
{
    auto reply = co_await roundTrip(encodeNullCall());
    co_return reply.ok() ? decodeWriteReply(reply.value()) : reply.status();
}

sim::Task<util::Result<FileAttr>>
HyBackend::getattr(FileHandle fh)
{
    auto reply = co_await roundTrip(encodeGetAttrCall(fh));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeAttrReply(reply.value());
}

sim::Task<util::Result<LookupReply>>
HyBackend::lookup(FileHandle dir, std::string name)
{
    auto reply = co_await roundTrip(encodeLookupCall(dir, name));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeLookupReply(reply.value());
}

sim::Task<util::Result<std::vector<uint8_t>>>
HyBackend::read(FileHandle fh, uint64_t offset, uint32_t count)
{
    auto reply = co_await roundTrip(encodeReadCall(fh, offset, count));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadReply(reply.value());
}

sim::Task<util::Status>
HyBackend::write(FileHandle fh, uint64_t offset, std::vector<uint8_t> data)
{
    auto reply = co_await roundTrip(encodeWriteCall(fh, offset, data));
    co_return reply.ok() ? decodeWriteReply(reply.value()) : reply.status();
}

sim::Task<util::Result<std::string>>
HyBackend::readlink(FileHandle fh)
{
    auto reply = co_await roundTrip(encodeReadLinkCall(fh));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadLinkReply(reply.value());
}

sim::Task<util::Result<std::vector<DirEntry>>>
HyBackend::readdir(FileHandle fh, uint32_t maxBytes)
{
    auto reply = co_await roundTrip(encodeReadDirCall(fh, maxBytes));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadDirReply(reply.value());
}

sim::Task<util::Result<FsStat>>
HyBackend::statfs()
{
    auto reply = co_await roundTrip(encodeStatFsCall(FileHandle{}));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeStatFsReply(reply.value());
}

// ----------------------------------------------------------------------
// RpcBackend
// ----------------------------------------------------------------------

sim::Task<util::Result<std::vector<uint8_t>>>
RpcBackend::roundTrip(std::vector<uint8_t> body)
{
    auto reply = co_await transport_.call(server_, 1, std::move(body));
    co_return reply;
}

sim::Task<util::Status>
RpcBackend::null()
{
    auto reply = co_await roundTrip(encodeNullCall());
    co_return reply.ok() ? decodeWriteReply(reply.value()) : reply.status();
}

sim::Task<util::Result<FileAttr>>
RpcBackend::getattr(FileHandle fh)
{
    auto reply = co_await roundTrip(encodeGetAttrCall(fh));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeAttrReply(reply.value());
}

sim::Task<util::Result<LookupReply>>
RpcBackend::lookup(FileHandle dir, std::string name)
{
    auto reply = co_await roundTrip(encodeLookupCall(dir, name));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeLookupReply(reply.value());
}

sim::Task<util::Result<std::vector<uint8_t>>>
RpcBackend::read(FileHandle fh, uint64_t offset, uint32_t count)
{
    auto reply = co_await roundTrip(encodeReadCall(fh, offset, count));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadReply(reply.value());
}

sim::Task<util::Status>
RpcBackend::write(FileHandle fh, uint64_t offset, std::vector<uint8_t> data)
{
    auto reply = co_await roundTrip(encodeWriteCall(fh, offset, data));
    co_return reply.ok() ? decodeWriteReply(reply.value()) : reply.status();
}

sim::Task<util::Result<std::string>>
RpcBackend::readlink(FileHandle fh)
{
    auto reply = co_await roundTrip(encodeReadLinkCall(fh));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadLinkReply(reply.value());
}

sim::Task<util::Result<std::vector<DirEntry>>>
RpcBackend::readdir(FileHandle fh, uint32_t maxBytes)
{
    auto reply = co_await roundTrip(encodeReadDirCall(fh, maxBytes));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeReadDirReply(reply.value());
}

sim::Task<util::Result<FsStat>>
RpcBackend::statfs()
{
    auto reply = co_await roundTrip(encodeStatFsCall(FileHandle{}));
    if (!reply.ok()) {
        co_return reply.status();
    }
    co_return decodeStatFsReply(reply.value());
}

} // namespace remora::dfs
