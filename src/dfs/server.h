/**
 * @file
 * The distributed file service's server.
 *
 * The server owns the FileStore and exports its cache areas (§5.1) as
 * remote-memory segments so clerks can satisfy requests by pure data
 * transfer. It simultaneously serves the control-transfer paths:
 * Hybrid-1 (write-with-notify + return writes, the paper's HY scheme)
 * and, optionally, the conventional RPC transport — all three paths
 * answer from the same store with the same warm-cache service times,
 * so the benchmarks compare communication structure and nothing else.
 *
 * DX writes land in the data area with a dirty mark; a lazy scavenger
 * batch-applies them to the FileStore without any per-operation control
 * transfer (the eager/lazy option §3.2 sketches).
 */
#pragma once

#include <array>
#include <cstdint>

#include "dfs/cache_layout.h"
#include "dfs/file_store.h"
#include "dfs/nfs_proto.h"
#include "dfs/push_cache.h"
#include "dfs/service_times.h"
#include "obs/metrics.h"
#include "rpc/hybrid1.h"
#include "rpc/transport.h"
#include "sim/stats.h"

namespace remora::dfs {

/** The server's exported cache areas. */
enum class CacheArea : uint8_t
{
    kData = 0,
    kName,
    kAttr,
    kDir,
    kLink,
    kStat,
    kNumAreas,
};

/** Handles a clerk needs to reach every cache area. */
struct ServerAreaHandles
{
    rmem::ImportedSegment data;
    rmem::ImportedSegment name;
    rmem::ImportedSegment attr;
    rmem::ImportedSegment dir;
    rmem::ImportedSegment link;
    rmem::ImportedSegment stat;
};

/** Server statistics. */
struct FileServerStats
{
    sim::Counter callsServed;
    sim::Counter cacheInserts;
    sim::Counter cacheEvictions;
    sim::Counter dirtyBlocksApplied;
};

/** The file server: store + exported caches + control-transfer paths. */
class FileServer
{
  public:
    /**
     * @param engine The server node's remote-memory engine.
     * @param store The filesystem (not owned; must outlive the server).
     * @param geometry Cache-area sizing.
     * @param times Warm-cache procedure times.
     * @param hybridParams Hybrid-1 endpoint sizing.
     */
    FileServer(rmem::RmemEngine &engine, FileStore &store,
               const CacheGeometry &geometry = {},
               const ServiceTimes &times = {},
               const rpc::Hybrid1Params &hybridParams = {});

    FileServer(const FileServer &) = delete;
    FileServer &operator=(const FileServer &) = delete;

    /** Start the Hybrid-1 dispatch loop. */
    void start();

    /** Handles for all cache areas (give these to DX clerks). */
    ServerAreaHandles areaHandles() const { return handles_; }

    /** Handle of the Hybrid-1 request segment (give to HY clerks). */
    rmem::ImportedSegment
    hybridHandle() const
    {
        return hybrid_.requestSegmentHandle();
    }

    /** Assign a Hybrid-1 client slot. */
    uint32_t allocClientSlot() { return hybrid_.allocSlot(); }

    /** Serve the conventional RPC baseline on @p transport too. */
    void attachRpcTransport(rpc::RpcTransport &transport);

    /**
     * Register a clerk's push cache (§5.1 "Write Requests Only"): from
     * now on, whenever the server refreshes an attribute record or a
     * data block in its own areas, it also remote-writes the record
     * into @p clerkCache — plain data transfer, no notification.
     *
     * @param clerkCache Handle from ClerkPushCache::handle().
     * @param geometry The clerk cache's sizing.
     */
    void subscribe(const rmem::ImportedSegment &clerkCache,
                   const PushCacheGeometry &geometry);

    /** Remote writes issued to subscribers so far. */
    uint64_t pushesIssued() const { return pushes_; }

    // ------------------------------------------------------------------
    // Cache maintenance
    // ------------------------------------------------------------------

    /**
     * Populate every cache area from the store (the 100%-server-hit
     * setup Figures 2 and 3 assume).
     *
     * @return Number of direct-mapped collisions (evictions); the
     *         reproduction benches require this to be zero for their
     *         working set.
     */
    uint32_t warmCaches();

    /** Insert/update the attribute record for @p fh. */
    void cacheAttr(FileHandle fh);

    /** Insert/update the name-lookup record for (dir, name). */
    void cacheName(FileHandle dir, const std::string &name);

    /** Insert/update block @p blockNo of @p fh in the data area. */
    void cacheBlock(FileHandle fh, uint64_t blockNo);

    /** Insert/update the directory-contents slot for @p dir. */
    void cacheDir(FileHandle dir);

    /** Insert/update the symlink record for @p fh. */
    void cacheLink(FileHandle fh);

    /** Refresh the statistics record. */
    void cacheStat();

    /**
     * Apply dirty (clerk-written) data-area blocks to the FileStore.
     *
     * @return Blocks applied in this pass.
     */
    uint64_t scavengeDirtyBlocks();

    /** Run scavengeDirtyBlocks() every @p interval forever. */
    void startScavenger(sim::Duration interval);

    /** The filesystem behind the service. */
    FileStore &store() { return store_; }

    /** Procedure-time table in force. */
    const ServiceTimes &serviceTimes() const { return times_; }

    /** Counters. */
    const FileServerStats &stats() const { return stats_; }

    /** Register server counters under "<prefix>.calls_served" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

    /** The server node's engine. */
    rmem::RmemEngine &engine() { return engine_; }

    /**
     * Execute one marshaled call body ([proc][args]) against the store,
     * charging warm-cache service time. Exposed so tests can exercise
     * the dispatcher directly.
     */
    sim::Task<std::vector<uint8_t>> handleBody(net::NodeId src,
                                               std::vector<uint8_t> body);

  private:
    /** Write @p bytes at @p offset of @p area's memory. */
    void storeBytes(CacheArea area, uint64_t offset,
                    std::span<const uint8_t> bytes);

    /** Read @p out.size() bytes at @p offset of @p area's memory. */
    void loadBytes(CacheArea area, uint64_t offset,
                   std::span<uint8_t> out) const;

    /** Track insert vs. eviction for a slot whose old flag word is @p old. */
    void noteInsert(uint32_t oldFlag, uint64_t oldTag, uint64_t newTag);

    /** Eagerly push an attribute record to every subscriber. */
    void pushAttrToSubscribers(FileHandle fh,
                               std::span<const uint8_t> record);

    /** Eagerly push a data slot (header + block) to every subscriber. */
    void pushBlockToSubscribers(FileHandle fh, uint64_t blockNo,
                                std::span<const uint8_t> slotBytes);

    rmem::RmemEngine &engine_;
    FileStore &store_;
    CacheGeometry geo_;
    ServiceTimes times_;
    mem::Process &process_;
    rpc::Hybrid1Server hybrid_;
    std::array<mem::Vaddr,
               static_cast<size_t>(CacheArea::kNumAreas)> areaBase_{};
    std::array<uint32_t,
               static_cast<size_t>(CacheArea::kNumAreas)> areaBytes_{};
    ServerAreaHandles handles_;
    struct Subscriber
    {
        rmem::ImportedSegment seg;
        PushCacheGeometry geo;
    };
    std::vector<Subscriber> subscribers_;
    uint64_t pushes_ = 0;
    FileServerStats stats_;
};

} // namespace remora::dfs
