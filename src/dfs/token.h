/**
 * @file
 * Token-based write coherence over the communication primitives.
 *
 * Section 5.1, discussing Calypso-style cluster file systems: "This
 * scheme can be extended to use our communication primitives without
 * involving control transfers in most cases. Token acquire and release
 * can be implemented using compare-and-swap operations. Token
 * revocation is trickier. One option is to use control transfer (e.g.,
 * using Hybrid-1 as described below); another is to delay revocation
 * during certain conditions ... For the commonly occurring sharing
 * patterns in distributed file systems, we expect the usage of control
 * transfer for coherence to be rare."
 *
 * Implementation:
 *
 *  - the *token area* is a segment exported by the server: a
 *    direct-mapped table of 16-byte slots, each holding the owning
 *    node's tag and the resource key it guards, plus a small holder
 *    directory mapping node tags to each clerk's revocation segment;
 *  - acquire = remote CAS(free -> myTag) on the slot — one wire round
 *    trip, no server process involvement;
 *  - clerks *cache* tokens: release is deferred (held locally), so
 *    repeated writes to the same file cost zero coherence traffic;
 *  - on contention, the contender looks up the holder in the directory
 *    and sends a revocation request — a remote write with notification
 *    into the holder's revocation segment (the rare control transfer);
 *    the holder releases as soon as it is not mid-write.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "dfs/file_store.h"
#include "rmem/engine.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::dfs {

/** Sizing/behaviour of the token protocol. */
struct TokenParams
{
    /** Slots in the server's token table (direct-mapped by key). */
    uint32_t tokenSlots = 256;
    /** Maximum node id representable in the holder directory. */
    uint32_t maxNodes = 64;
    /** Retry backoff after a failed acquire while revocation runs. */
    sim::Duration retryBackoff = sim::usec(200);
    /** Give up acquiring after this long (0 = forever). */
    sim::Duration acquireTimeout = sim::msec(50);
};

/** Bytes per token-table slot: holder tag, pad, resource key. */
inline constexpr uint32_t kTokenSlotBytes = 16;
/** Bytes per holder-directory entry: desc, pad, generation, size. */
inline constexpr uint32_t kHolderEntryBytes = 8;

/** Token-area byte size for @p params. */
constexpr uint32_t
tokenAreaBytes(const TokenParams &params)
{
    return params.tokenSlots * kTokenSlotBytes +
           params.maxNodes * kHolderEntryBytes;
}

/** Direct-mapped token slot of a resource key. */
uint32_t tokenSlotOf(uint64_t key, uint32_t slots);

/**
 * Server-side setup: exports the token area. The server process is not
 * otherwise involved in the protocol — all state changes are remote
 * CAS/writes by the clerks.
 */
class TokenArea
{
  public:
    /**
     * @param engine The server node's engine.
     * @param owner Server process providing the memory.
     * @param params Sizing.
     */
    TokenArea(rmem::RmemEngine &engine, mem::Process &owner,
              const TokenParams &params = {});

    /** Handle clerks use to reach the table. */
    rmem::ImportedSegment handle() const { return handle_; }

    /** Parameters in force. */
    const TokenParams &params() const { return params_; }

    /** Direct inspection for tests: current holder tag of @p key. */
    uint32_t holderOf(uint64_t key) const;

  private:
    rmem::RmemEngine &engine_;
    mem::Process &owner_;
    TokenParams params_;
    mem::Vaddr base_ = 0;
    rmem::ImportedSegment handle_;
};

/** Per-clerk participant in the token protocol. */
class TokenClient
{
  public:
    /**
     * @param engine The clerk node's engine.
     * @param owner Clerk process (revocation + scratch memory).
     * @param area The server's token area handle.
     * @param params Must match the area's.
     *
     * The client's tag is its node id + 1 (tag 0 means "free").
     * Construction registers the client's revocation segment in the
     * holder directory with one remote write.
     */
    TokenClient(rmem::RmemEngine &engine, mem::Process &owner,
                const rmem::ImportedSegment &area,
                const TokenParams &params = {});

    /**
     * Acquire the write token for @p key.
     *
     * Fast paths: already held locally (free — the common case the
     * paper counts on); free slot (one CAS). Contended path: revoke
     * request to the holder (control transfer), then CAS retries with
     * backoff.
     */
    sim::Task<util::Status> acquire(uint64_t key);

    /**
     * Release the token for @p key back to the table (one remote CAS
     * myTag -> 0). Normally only called when revoked; callers keep
     * tokens cached otherwise.
     */
    sim::Task<util::Status> release(uint64_t key);

    /** True when this client currently caches the token for @p key. */
    bool holds(uint64_t key) const { return held_.count(key) != 0; }

    /** Mark @p key busy: revocation is deferred until endUse(). */
    void beginUse(uint64_t key) { busy_.insert(key); }

    /** End the busy section; honours any deferred revocation. */
    void endUse(uint64_t key);

    /** Tokens acquired without any wire traffic (local cache hits). */
    uint64_t localHits() const { return localHits_; }

    /** Revocation requests this client had to send. */
    uint64_t revocationsSent() const { return revokesSent_; }

    /** Revocation requests this client received and honoured. */
    uint64_t revocationsHonoured() const { return revokesHonoured_; }

  private:
    /** Serve one incoming revocation request. */
    void onRevokeRequest(const rmem::Notification &n);

    /** Byte offset of the token slot for @p key. */
    uint32_t slotOffset(uint64_t key) const;

    rmem::RmemEngine &engine_;
    mem::Process &owner_;
    rmem::ImportedSegment area_;
    TokenParams params_;
    uint32_t myTag_;
    rmem::SegmentId scratchSeg_ = 0;
    mem::Vaddr scratchBase_ = 0;
    mem::Vaddr revokeBase_ = 0;
    rmem::ImportedSegment revokeHandle_;

    std::unordered_set<uint64_t> held_;
    std::unordered_set<uint64_t> busy_;
    std::unordered_set<uint64_t> revokeWanted_;
    /** Cache of peer revocation-segment handles, by holder tag. */
    std::unordered_map<uint32_t, rmem::ImportedSegment> peerRevoke_;
    uint64_t localHits_ = 0;
    uint64_t revokesSent_ = 0;
    uint64_t revokesHonoured_ = 0;
};

} // namespace remora::dfs
