#include "dfs/file_store.h"

#include <algorithm>

#include "util/hash.h"
#include "util/panic.h"

namespace remora::dfs {

namespace {

util::Status
noEnt(const std::string &what)
{
    return util::Status(util::ErrorCode::kNotFound, what);
}

util::Status
badHandle()
{
    return util::Status(util::ErrorCode::kBadDescriptor,
                        "stale or invalid file handle");
}

} // namespace

FileStore::FileStore()
{
    uint32_t ino = allocInode(FileType::kDirectory);
    root_ = FileHandle{ino, inodes_[ino].generation};
    Inode &r = inodes_[ino];
    r.entries["."] = ino;
    r.entries[".."] = ino;
    r.attr.nlink = 2;
}

const FileStore::Inode *
FileStore::find(FileHandle fh) const
{
    if (fh.inode >= inodes_.size()) {
        return nullptr;
    }
    const Inode &n = inodes_[fh.inode];
    if (!n.live || n.generation != fh.generation) {
        return nullptr;
    }
    return &n;
}

FileStore::Inode *
FileStore::find(FileHandle fh)
{
    return const_cast<Inode *>(
        static_cast<const FileStore *>(this)->find(fh));
}

uint32_t
FileStore::allocInode(FileType type)
{
    uint32_t ino = static_cast<uint32_t>(inodes_.size());
    inodes_.emplace_back();
    Inode &n = inodes_.back();
    n.live = true;
    n.generation = 1;
    n.attr.type = type;
    n.attr.fileid = ino;
    n.attr.mode = type == FileType::kDirectory ? 0755 : 0644;
    n.attr.atime = n.attr.mtime = n.attr.ctime = clock_++;
    ++liveInodes_;
    return ino;
}

util::Status
FileStore::link(FileHandle parent, const std::string &name, uint32_t ino)
{
    Inode *dir = find(parent);
    if (dir == nullptr) {
        return badHandle();
    }
    if (dir->attr.type != FileType::kDirectory) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "parent is not a directory");
    }
    if (dir->entries.count(name) != 0) {
        return util::Status(util::ErrorCode::kAlreadyExists, name);
    }
    dir->entries[name] = ino;
    dir->attr.mtime = clock_++;
    return {};
}

util::Result<FileHandle>
FileStore::lookup(FileHandle dir, const std::string &name) const
{
    const Inode *d = find(dir);
    if (d == nullptr) {
        return badHandle();
    }
    if (d->attr.type != FileType::kDirectory) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "not a directory");
    }
    auto it = d->entries.find(name);
    if (it == d->entries.end()) {
        return noEnt("no entry " + name);
    }
    const Inode &child = inodes_[it->second];
    return FileHandle{it->second, child.generation};
}

util::Result<FileAttr>
FileStore::getattr(FileHandle fh) const
{
    const Inode *n = find(fh);
    if (n == nullptr) {
        return badHandle();
    }
    return n->attr;
}

util::Result<std::vector<uint8_t>>
FileStore::read(FileHandle fh, uint64_t offset, uint32_t count) const
{
    const Inode *n = find(fh);
    if (n == nullptr) {
        return badHandle();
    }
    if (n->attr.type != FileType::kRegular) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "not a regular file");
    }
    if (offset >= n->data.size()) {
        return std::vector<uint8_t>{};
    }
    size_t avail = n->data.size() - offset;
    size_t take = std::min<size_t>(count, avail);
    return std::vector<uint8_t>(n->data.begin() + static_cast<long>(offset),
                                n->data.begin() +
                                    static_cast<long>(offset + take));
}

util::Status
FileStore::write(FileHandle fh, uint64_t offset,
                 std::span<const uint8_t> data)
{
    Inode *n = find(fh);
    if (n == nullptr) {
        return badHandle();
    }
    if (n->attr.type != FileType::kRegular) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "not a regular file");
    }
    uint64_t end = offset + data.size();
    if (end > n->data.size()) {
        bytesStored_ += end - n->data.size();
        n->data.resize(end, 0);
        n->attr.size = end;
        n->attr.bytesUsed = ((end + kBlockBytes - 1) / kBlockBytes) *
                            kBlockBytes;
    }
    std::copy(data.begin(), data.end(),
              n->data.begin() + static_cast<long>(offset));
    n->attr.mtime = clock_++;
    return {};
}

util::Result<std::string>
FileStore::readlink(FileHandle fh) const
{
    const Inode *n = find(fh);
    if (n == nullptr) {
        return badHandle();
    }
    if (n->attr.type != FileType::kSymlink) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "not a symlink");
    }
    return n->target;
}

util::Result<std::vector<DirEntry>>
FileStore::readdir(FileHandle fh) const
{
    const Inode *n = find(fh);
    if (n == nullptr) {
        return badHandle();
    }
    if (n->attr.type != FileType::kDirectory) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "not a directory");
    }
    std::vector<DirEntry> out;
    out.reserve(n->entries.size());
    for (const auto &[name, ino] : n->entries) {
        out.push_back(DirEntry{ino, name});
    }
    return out;
}

FsStat
FileStore::statfs() const
{
    FsStat s;
    s.totalBytes = 2ull * 1024 * 1024 * 1024;
    s.freeBytes = s.totalBytes - bytesStored_;
    s.totalFiles = liveInodes_;
    return s;
}

util::Result<FileHandle>
FileStore::mkdir(FileHandle parent, const std::string &name)
{
    uint32_t ino = allocInode(FileType::kDirectory);
    util::Status s = link(parent, name, ino);
    if (!s.ok()) {
        inodes_[ino].live = false;
        --liveInodes_;
        return s;
    }
    Inode &d = inodes_[ino];
    d.entries["."] = ino;
    d.entries[".."] = parent.inode;
    d.attr.nlink = 2;
    return FileHandle{ino, d.generation};
}

util::Result<FileHandle>
FileStore::createFile(FileHandle parent, const std::string &name,
                      uint64_t size)
{
    uint32_t ino = allocInode(FileType::kRegular);
    util::Status s = link(parent, name, ino);
    if (!s.ok()) {
        inodes_[ino].live = false;
        --liveInodes_;
        return s;
    }
    Inode &f = inodes_[ino];
    f.data.resize(size);
    // Deterministic content derived from the inode and position, so
    // tests can verify end-to-end reads byte for byte.
    uint64_t seed = util::mix64(ino);
    for (uint64_t i = 0; i < size; ++i) {
        f.data[i] = static_cast<uint8_t>(util::mix64(seed + i / 256) >>
                                         ((i % 8) * 8));
    }
    f.attr.size = size;
    f.attr.bytesUsed =
        ((size + kBlockBytes - 1) / kBlockBytes) * kBlockBytes;
    bytesStored_ += size;
    return FileHandle{ino, f.generation};
}

util::Result<FileHandle>
FileStore::symlink(FileHandle parent, const std::string &name,
                   const std::string &target)
{
    uint32_t ino = allocInode(FileType::kSymlink);
    util::Status s = link(parent, name, ino);
    if (!s.ok()) {
        inodes_[ino].live = false;
        --liveInodes_;
        return s;
    }
    Inode &l = inodes_[ino];
    l.target = target;
    l.attr.size = target.size();
    return FileHandle{ino, l.generation};
}

util::Status
FileStore::remove(FileHandle parent, const std::string &name)
{
    Inode *dir = find(parent);
    if (dir == nullptr) {
        return badHandle();
    }
    auto it = dir->entries.find(name);
    if (it == dir->entries.end()) {
        return noEnt(name);
    }
    Inode &victim = inodes_[it->second];
    victim.live = false;
    ++victim.generation; // old handles go stale
    bytesStored_ -= victim.data.size();
    victim.data.clear();
    victim.entries.clear();
    --liveInodes_;
    dir->entries.erase(it);
    dir->attr.mtime = clock_++;
    return {};
}

std::vector<FileHandle>
FileStore::allHandles() const
{
    std::vector<FileHandle> out;
    for (uint32_t i = 0; i < inodes_.size(); ++i) {
        if (inodes_[i].live) {
            out.push_back(FileHandle{i, inodes_[i].generation});
        }
    }
    return out;
}

} // namespace remora::dfs
