/**
 * @file
 * The server's local filesystem substrate.
 *
 * An in-memory Unix-style filesystem (inodes, directories, symbolic
 * links, regular files in 8 KB blocks) standing in for the Ultrix UFS
 * volume behind the paper's departmental NFS server. The distributed
 * file service (server, clerks, both transfer schemes) runs on top of
 * this store; the workload generator builds trees in it shaped like the
 * paper's exported partitions (fonts, source trees, /usr binaries).
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace remora::dfs {

/** Block size of the store (NFS v2 transfer unit). */
inline constexpr uint32_t kBlockBytes = 8192;

/** File types. */
enum class FileType : uint32_t
{
    kRegular = 1,
    kDirectory = 2,
    kSymlink = 3,
};

/** An opaque file handle: inode number + inode generation. */
struct FileHandle
{
    uint32_t inode = 0;
    uint32_t generation = 0;

    /** Dense encoding used as a hash/cache key. */
    uint64_t
    key() const
    {
        return (static_cast<uint64_t>(inode) << 32) | generation;
    }

    /** Rebuild from key(). */
    static FileHandle
    fromKey(uint64_t k)
    {
        return FileHandle{static_cast<uint32_t>(k >> 32),
                          static_cast<uint32_t>(k)};
    }

    bool
    operator==(const FileHandle &o) const
    {
        return inode == o.inode && generation == o.generation;
    }
};

/** File attributes (the getattr payload). */
struct FileAttr
{
    FileType type = FileType::kRegular;
    uint32_t mode = 0644;
    uint32_t nlink = 1;
    uint32_t uid = 0;
    uint32_t gid = 0;
    uint64_t size = 0;
    uint64_t bytesUsed = 0;
    uint64_t fileid = 0;
    uint32_t atime = 0;
    uint32_t mtime = 0;
    uint32_t ctime = 0;
};

/** One directory entry. */
struct DirEntry
{
    uint64_t fileid = 0;
    std::string name;
};

/** Filesystem-wide statistics (the statfs payload). */
struct FsStat
{
    uint64_t totalBytes = 0;
    uint64_t freeBytes = 0;
    uint64_t totalFiles = 0;
    uint32_t blockSize = kBlockBytes;
};

/** In-memory inode-based filesystem. */
class FileStore
{
  public:
    /** Create a store with an empty root directory. */
    FileStore();

    /** Handle of the root directory. */
    FileHandle root() const { return root_; }

    // ------------------------------------------------------------------
    // The NFS-shaped operation set
    // ------------------------------------------------------------------

    /** Resolve @p name within directory @p dir. */
    util::Result<FileHandle> lookup(FileHandle dir,
                                    const std::string &name) const;

    /** Attributes of @p fh. */
    util::Result<FileAttr> getattr(FileHandle fh) const;

    /** Read up to @p count bytes at @p offset (short read at EOF). */
    util::Result<std::vector<uint8_t>> read(FileHandle fh, uint64_t offset,
                                            uint32_t count) const;

    /** Write @p data at @p offset, extending the file as needed. */
    util::Status write(FileHandle fh, uint64_t offset,
                       std::span<const uint8_t> data);

    /** Target of symbolic link @p fh. */
    util::Result<std::string> readlink(FileHandle fh) const;

    /** All entries of directory @p fh (including "." and ".."). */
    util::Result<std::vector<DirEntry>> readdir(FileHandle fh) const;

    /** Filesystem statistics. */
    FsStat statfs() const;

    // ------------------------------------------------------------------
    // Tree construction (server-local administration)
    // ------------------------------------------------------------------

    /** Create a subdirectory. */
    util::Result<FileHandle> mkdir(FileHandle parent,
                                   const std::string &name);

    /** Create a regular file of @p size bytes of deterministic content. */
    util::Result<FileHandle> createFile(FileHandle parent,
                                        const std::string &name,
                                        uint64_t size);

    /** Create a symbolic link to @p target. */
    util::Result<FileHandle> symlink(FileHandle parent,
                                     const std::string &name,
                                     const std::string &target);

    /** Remove a directory entry (file data freed when unreferenced). */
    util::Status remove(FileHandle parent, const std::string &name);

    /** Number of live inodes. */
    size_t inodeCount() const { return liveInodes_; }

    /** Every live file handle (used by cache warming). */
    std::vector<FileHandle> allHandles() const;

  private:
    struct Inode
    {
        bool live = false;
        uint32_t generation = 0;
        FileAttr attr;
        std::vector<uint8_t> data;               // regular files
        std::map<std::string, uint32_t> entries; // directories
        std::string target;                      // symlinks
    };

    /** Checked inode access. */
    const Inode *find(FileHandle fh) const;
    Inode *find(FileHandle fh);

    /** Allocate a fresh inode. */
    uint32_t allocInode(FileType type);

    /** Insert a directory entry (parent must be a live directory). */
    util::Status link(FileHandle parent, const std::string &name,
                      uint32_t ino);

    std::vector<Inode> inodes_;
    FileHandle root_;
    size_t liveInodes_ = 0;
    uint64_t bytesStored_ = 0;
    uint32_t clock_ = 1000000; // synthetic epoch for timestamps
};

} // namespace remora::dfs
