#include "dfs/clerk.h"

#include <algorithm>

namespace remora::dfs {

namespace {

/** Node scope for traces: "client.cpu" belongs to node "client". */
std::string_view
nodeOfCpu(const std::string &cpuName)
{
    size_t dot = cpuName.find('.');
    return std::string_view(cpuName).substr(
        0, dot == std::string::npos ? cpuName.size() : dot);
}

} // namespace

ServerClerk::ServerClerk(sim::CpuResource &cpu, FileServiceBackend &backend,
                         const ClerkParams &params)
    : cpu_(cpu), backend_(backend), params_(params),
      lrpc_(cpu, params.localRpc)
{}

sim::Task<void>
ServerClerk::enter()
{
    if (params_.chargeLocalRpc) {
        co_await lrpc_.enterCallee();
    }
}

sim::Task<void>
ServerClerk::leave()
{
    if (params_.chargeLocalRpc) {
        co_await lrpc_.returnToCaller();
    }
}

ServerClerk::ClerkOp
ServerClerk::beginOp(const char *op)
{
    if (!obs::TraceRecorder::on()) {
        return {};
    }
    auto &rec = obs::TraceRecorder::instance();
    ClerkOp out;
    // Runs eagerly at call time, so an enclosing OpScope (a workload
    // driving several file ops under one umbrella op) becomes parent.
    out.op = rec.newAsyncId();
    rec.asyncBegin(out.op, nodeOfCpu(cpu_.name()), "dfs", op);
    out.span = rec.beginSpanFor(out.op, nodeOfCpu(cpu_.name()), "dfs", op);
    return out;
}

void
ServerClerk::endOp(const ClerkOp &op, const char *name)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.endSpan(op.span);
    if (op.op != 0) {
        rec.asyncEnd(op.op, nodeOfCpu(cpu_.name()), "dfs", name);
    }
}

void
ServerClerk::registerStats(obs::MetricRegistry &reg,
                           const std::string &prefix) const
{
    reg.add(prefix + ".requests", stats_.requests);
    reg.add(prefix + ".local_hits", stats_.localHits);
    reg.add(prefix + ".backend_calls", stats_.backendCalls);
}

sim::Task<util::Status>
ServerClerk::null()
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_null");
    co_await enter();
    stats_.backendCalls.inc();
    util::Status s = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.null();
    }();
    co_await leave();
    endOp(op, "clerk_null");
    co_return s;
}

sim::Task<util::Result<FileAttr>>
ServerClerk::getattr(FileHandle fh)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_getattr");
    co_await enter();
    if (params_.enableLocalCache) {
        if (auto it = attrCache_.find(fh.key()); it != attrCache_.end()) {
            stats_.localHits.inc();
            FileAttr attr = it->second;
            co_await leave();
            endOp(op, "clerk_getattr");
            co_return attr;
        }
    }
    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.getattr(fh);
    }();
    if (result.ok() && params_.enableLocalCache) {
        attrCache_[fh.key()] = result.value();
    }
    co_await leave();
    endOp(op, "clerk_getattr");
    co_return result;
}

sim::Task<util::Result<LookupReply>>
ServerClerk::lookup(FileHandle dir, std::string name)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_lookup");
    co_await enter();
    auto key = std::make_pair(dir.key(), name);
    if (params_.enableLocalCache) {
        if (auto it = nameCache_.find(key); it != nameCache_.end()) {
            stats_.localHits.inc();
            LookupReply reply = it->second;
            co_await leave();
            endOp(op, "clerk_lookup");
            co_return reply;
        }
    }
    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.lookup(dir, name);
    }();
    if (result.ok() && params_.enableLocalCache) {
        nameCache_[key] = result.value();
        attrCache_[result.value().fh.key()] = result.value().attr;
    }
    co_await leave();
    endOp(op, "clerk_lookup");
    co_return result;
}

sim::Task<util::Result<std::vector<uint8_t>>>
ServerClerk::read(FileHandle fh, uint64_t offset, uint32_t count)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_read");
    co_await enter();

    std::vector<uint8_t> out;
    out.reserve(count);
    uint64_t pos = offset;
    uint64_t end = offset + count;
    bool allLocal = params_.enableLocalCache;

    // Try to assemble the whole range from locally cached blocks.
    while (allLocal && pos < end) {
        uint64_t blockNo = pos / kBlockBytes;
        uint32_t blockOff = static_cast<uint32_t>(pos % kBlockBytes);
        auto it = blockCache_.find({fh.key(), blockNo});
        if (it == blockCache_.end() || it->second.size() < blockOff) {
            allLocal = false;
            break;
        }
        uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(end - pos, kBlockBytes - blockOff));
        uint32_t avail = static_cast<uint32_t>(it->second.size()) - blockOff;
        uint32_t take = std::min(chunk, avail);
        out.insert(out.end(), it->second.begin() + blockOff,
                   it->second.begin() + blockOff + take);
        pos += take;
        if (take < chunk) {
            break; // end of file inside a cached short block
        }
    }
    if (allLocal) {
        stats_.localHits.inc();
        co_await leave();
        endOp(op, "clerk_read");
        co_return out;
    }

    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.read(fh, offset, count);
    }();
    if (result.ok() && params_.enableLocalCache &&
        offset % kBlockBytes == 0) {
        // Cache whole blocks from block-aligned reads.
        const auto &data = result.value();
        for (uint64_t p = 0; p < data.size(); p += kBlockBytes) {
            size_t len = std::min<size_t>(kBlockBytes, data.size() - p);
            blockCache_[{fh.key(), offset / kBlockBytes + p / kBlockBytes}] =
                std::vector<uint8_t>(data.begin() + static_cast<long>(p),
                                     data.begin() +
                                         static_cast<long>(p + len));
        }
    }
    co_await leave();
    endOp(op, "clerk_read");
    co_return result;
}

sim::Task<util::Status>
ServerClerk::write(FileHandle fh, uint64_t offset, std::vector<uint8_t> data)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_write");
    co_await enter();
    if (params_.enableLocalCache && offset % kBlockBytes == 0) {
        for (uint64_t p = 0; p < data.size(); p += kBlockBytes) {
            size_t len = std::min<size_t>(kBlockBytes, data.size() - p);
            blockCache_[{fh.key(), offset / kBlockBytes + p / kBlockBytes}] =
                std::vector<uint8_t>(data.begin() + static_cast<long>(p),
                                     data.begin() +
                                         static_cast<long>(p + len));
        }
    }
    attrCache_.erase(fh.key()); // size/mtime changed
    stats_.backendCalls.inc();
    util::Status s = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.write(fh, offset, std::move(data));
    }();
    co_await leave();
    endOp(op, "clerk_write");
    co_return s;
}

sim::Task<util::Result<std::string>>
ServerClerk::readlink(FileHandle fh)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_readlink");
    co_await enter();
    if (params_.enableLocalCache) {
        if (auto it = linkCache_.find(fh.key()); it != linkCache_.end()) {
            stats_.localHits.inc();
            std::string target = it->second;
            co_await leave();
            endOp(op, "clerk_readlink");
            co_return target;
        }
    }
    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.readlink(fh);
    }();
    if (result.ok() && params_.enableLocalCache) {
        linkCache_[fh.key()] = result.value();
    }
    co_await leave();
    endOp(op, "clerk_readlink");
    co_return result;
}

sim::Task<util::Result<std::vector<DirEntry>>>
ServerClerk::readdir(FileHandle fh, uint32_t maxBytes)
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_readdir");
    co_await enter();
    if (params_.enableLocalCache) {
        if (auto it = dirCache_.find(fh.key()); it != dirCache_.end()) {
            stats_.localHits.inc();
            std::vector<DirEntry> entries = it->second;
            co_await leave();
            endOp(op, "clerk_readdir");
            co_return entries;
        }
    }
    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.readdir(fh, maxBytes);
    }();
    if (result.ok() && params_.enableLocalCache) {
        dirCache_[fh.key()] = result.value();
    }
    co_await leave();
    endOp(op, "clerk_readdir");
    co_return result;
}

sim::Task<util::Result<FsStat>>
ServerClerk::statfs()
{
    stats_.requests.inc();
    ClerkOp op = beginOp("clerk_statfs");
    co_await enter();
    if (params_.enableLocalCache && statValid_) {
        stats_.localHits.inc();
        FsStat s = statCache_;
        co_await leave();
        endOp(op, "clerk_statfs");
        co_return s;
    }
    stats_.backendCalls.inc();
    auto result = co_await [&] {
        obs::OpScope traceScope(op.op);
        return backend_.statfs();
    }();
    if (result.ok() && params_.enableLocalCache) {
        statCache_ = result.value();
        statValid_ = true;
    }
    co_await leave();
    endOp(op, "clerk_statfs");
    co_return result;
}

void
ServerClerk::invalidateAll()
{
    attrCache_.clear();
    nameCache_.clear();
    blockCache_.clear();
    linkCache_.clear();
    dirCache_.clear();
    statValid_ = false;
}

void
ServerClerk::invalidate(FileHandle fh)
{
    attrCache_.erase(fh.key());
    linkCache_.erase(fh.key());
    dirCache_.erase(fh.key());
    for (auto it = blockCache_.begin(); it != blockCache_.end();) {
        if (it->first.first == fh.key()) {
            it = blockCache_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = nameCache_.begin(); it != nameCache_.end();) {
        if (it->first.first == fh.key()) {
            it = nameCache_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace remora::dfs
