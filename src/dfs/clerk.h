/**
 * @file
 * The server clerk: the client-machine half of the file service (§3.2).
 *
 * "Each distributed service has server clerks that execute on the
 * client machines. All client-server interactions are done through
 * local cross-address-space communication between the client and the
 * server clerk." The clerk keeps the four local cache areas of §5.1
 * (file data, name lookup, file attributes, directory entries — plus
 * symlinks) and goes to the server through whichever transfer backend
 * it was built with, so the identical caching clerk runs over DX, HY,
 * or conventional RPC.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/local_rpc.h"
#include "sim/stats.h"

namespace remora::dfs {

/** Clerk behaviour knobs. */
struct ClerkParams
{
    /** Serve repeat requests from the clerk's local caches. */
    bool enableLocalCache = true;
    /** Local RPC transition costs (client <-> clerk). */
    rpc::LocalRpcCosts localRpc;
    /** Charge the client<->clerk local RPC on each operation. */
    bool chargeLocalRpc = true;
};

/** Clerk statistics. */
struct ClerkStats
{
    sim::Counter requests;
    sim::Counter localHits;
    sim::Counter backendCalls;
};

/** Client-side clerk of the distributed file service. */
class ServerClerk
{
  public:
    /**
     * @param cpu The client node's CPU (local RPC costs land here).
     * @param backend The clerk-to-server transfer path (not owned).
     * @param params Behaviour knobs.
     */
    ServerClerk(sim::CpuResource &cpu, FileServiceBackend &backend,
                const ClerkParams &params = {});

    /** NULL ping straight through to the backend. */
    sim::Task<util::Status> null();

    /** Attributes of @p fh (attribute cache area). */
    sim::Task<util::Result<FileAttr>> getattr(FileHandle fh);

    /** Resolve @p name under @p dir (name-lookup cache area). */
    sim::Task<util::Result<LookupReply>> lookup(FileHandle dir,
                                                std::string name);

    /** Read file data (file-data cache area, block granular). */
    sim::Task<util::Result<std::vector<uint8_t>>> read(FileHandle fh,
                                                       uint64_t offset,
                                                       uint32_t count);

    /** Write file data (write-through to the backend). */
    sim::Task<util::Status> write(FileHandle fh, uint64_t offset,
                                  std::vector<uint8_t> data);

    /** Symlink target (symlink cache area). */
    sim::Task<util::Result<std::string>> readlink(FileHandle fh);

    /** Directory entries (directory-contents cache area). */
    sim::Task<util::Result<std::vector<DirEntry>>> readdir(
        FileHandle fh, uint32_t maxBytes);

    /** Filesystem statistics (cached briefly). */
    sim::Task<util::Result<FsStat>> statfs();

    /** Drop every locally cached datum. */
    void invalidateAll();

    /** Drop cached state for one file handle. */
    void invalidate(FileHandle fh);

    /** Counters. */
    const ClerkStats &stats() const { return stats_; }

    /** Register clerk counters under "<prefix>.requests" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

    /** The transfer backend in use. */
    FileServiceBackend &backend() { return backend_; }

  private:
    /** Charge the client->clerk local RPC call path. */
    sim::Task<void> enter();

    /** Charge the clerk->client local RPC return path. */
    sim::Task<void> leave();

    /** One in-flight clerk operation's trace context. */
    struct ClerkOp
    {
        /** Span covering the clerk's own work (kNoSpan when off). */
        obs::SpanId span = obs::kNoSpan;
        /** Async op rooting this operation's cross-node DAG. */
        uint64_t op = 0;
    };

    /**
     * Open the trace context for clerk op @p op: an async op (so the
     * backend's remote transfers become its children in the DAG) plus
     * a span attributed to it.
     */
    ClerkOp beginOp(const char *op);

    /** Close a ClerkOp (span + async end); no-op when tracing is off. */
    void endOp(const ClerkOp &op, const char *name);

    sim::CpuResource &cpu_;
    FileServiceBackend &backend_;
    ClerkParams params_;
    rpc::LocalRpc lrpc_;

    // The clerk-side cache areas (§5.1), keyed like the server's.
    std::unordered_map<uint64_t, FileAttr> attrCache_;
    std::map<std::pair<uint64_t, std::string>, LookupReply> nameCache_;
    std::map<std::pair<uint64_t, uint64_t>, std::vector<uint8_t>>
        blockCache_;
    std::unordered_map<uint64_t, std::string> linkCache_;
    std::unordered_map<uint64_t, std::vector<DirEntry>> dirCache_;
    bool statValid_ = false;
    FsStat statCache_;

    ClerkStats stats_;
};

} // namespace remora::dfs
