#include "dfs/cache_layout.h"

#include <algorithm>
#include <cstring>

#include "util/bytes.h"
#include "util/panic.h"

namespace remora::dfs {

namespace {

/** Write the 56-byte flat attribute block. */
void
putAttr(util::ByteWriter &w, const FileAttr &a)
{
    w.putU32(static_cast<uint32_t>(a.type));
    w.putU32(a.mode);
    w.putU32(a.nlink);
    w.putU32(a.uid);
    w.putU32(a.gid);
    w.putU64(a.size);
    w.putU64(a.bytesUsed);
    w.putU64(a.fileid);
    w.putU32(a.atime);
    w.putU32(a.mtime);
    w.putU32(a.ctime);
}

FileAttr
getAttr(util::ByteReader &r)
{
    FileAttr a;
    a.type = static_cast<FileType>(r.getU32());
    a.mode = r.getU32();
    a.nlink = r.getU32();
    a.uid = r.getU32();
    a.gid = r.getU32();
    a.size = r.getU64();
    a.bytesUsed = r.getU64();
    a.fileid = r.getU64();
    a.atime = r.getU32();
    a.mtime = r.getU32();
    a.ctime = r.getU32();
    return a;
}

/** Copy an encoded buffer into @p out, zero-padding to @p bytes. */
void
emit(util::ByteWriter &w, std::span<uint8_t> out, uint32_t bytes)
{
    auto data = w.bytes();
    REMORA_ASSERT(data.size() <= bytes);
    REMORA_ASSERT(out.size() >= bytes);
    std::memcpy(out.data(), data.data(), data.size());
    std::memset(out.data() + data.size(), 0, bytes - data.size());
}

} // namespace

void
AttrRecord::encode(std::span<uint8_t> out) const
{
    util::ByteWriter w(kAttrRecBytes);
    w.putU32(flag);
    w.putU32(0);
    w.putU64(fhKey);
    putAttr(w, attr);
    emit(w, out, kAttrRecBytes);
}

AttrRecord
AttrRecord::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kAttrRecBytes);
    util::ByteReader r(in);
    AttrRecord rec;
    rec.flag = r.getU32();
    r.skip(4);
    rec.fhKey = r.getU64();
    rec.attr = getAttr(r);
    return rec;
}

void
NameLookupRecord::encode(std::span<uint8_t> out) const
{
    REMORA_ASSERT(name.size() <= 79);
    util::ByteWriter w(kNameRecBytes);
    w.putU32(flag);
    w.putU32(0);
    w.putU64(dirKey);
    w.putU64(childKey);
    putAttr(w, childAttr);
    w.putU8(static_cast<uint8_t>(name.size()));
    w.putBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(name.data()), name.size()));
    emit(w, out, kNameRecBytes);
}

NameLookupRecord
NameLookupRecord::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kNameRecBytes);
    util::ByteReader r(in);
    NameLookupRecord rec;
    rec.flag = r.getU32();
    r.skip(4);
    rec.dirKey = r.getU64();
    rec.childKey = r.getU64();
    rec.childAttr = getAttr(r);
    uint8_t len = r.getU8();
    auto nameBytes = r.viewBytes(std::min<size_t>(len, 79));
    rec.name.assign(reinterpret_cast<const char *>(nameBytes.data()),
                    nameBytes.size());
    return rec;
}

void
DataSlotHeader::encode(std::span<uint8_t> out) const
{
    util::ByteWriter w(kDataHeaderBytes);
    w.putU32(flag);
    w.putU32(dirty);
    w.putU64(fhKey);
    w.putU64(blockNo);
    w.putU32(validBytes);
    emit(w, out, kDataHeaderBytes);
}

DataSlotHeader
DataSlotHeader::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kDataHeaderBytes);
    util::ByteReader r(in);
    DataSlotHeader h;
    h.flag = r.getU32();
    h.dirty = r.getU32();
    h.fhKey = r.getU64();
    h.blockNo = r.getU64();
    h.validBytes = r.getU32();
    return h;
}

void
DirSlotHeader::encode(std::span<uint8_t> out) const
{
    util::ByteWriter w(kDirHeaderBytes);
    w.putU32(flag);
    w.putU32(0);
    w.putU64(dirKey);
    w.putU32(bytes);
    w.putU32(entryCount);
    emit(w, out, kDirHeaderBytes);
}

DirSlotHeader
DirSlotHeader::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kDirHeaderBytes);
    util::ByteReader r(in);
    DirSlotHeader h;
    h.flag = r.getU32();
    r.skip(4);
    h.dirKey = r.getU64();
    h.bytes = r.getU32();
    h.entryCount = r.getU32();
    return h;
}

void
LinkRecord::encode(std::span<uint8_t> out) const
{
    REMORA_ASSERT(target.size() <= 107);
    util::ByteWriter w(kLinkRecBytes);
    w.putU32(flag);
    w.putU64(fhKey);
    w.putU32(static_cast<uint32_t>(target.size()));
    w.putBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(target.data()), target.size()));
    emit(w, out, kLinkRecBytes);
}

LinkRecord
LinkRecord::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kLinkRecBytes);
    util::ByteReader r(in);
    LinkRecord rec;
    rec.flag = r.getU32();
    rec.fhKey = r.getU64();
    uint32_t len = r.getU32();
    auto bytes = r.viewBytes(std::min<size_t>(len, 107));
    rec.target.assign(reinterpret_cast<const char *>(bytes.data()),
                      bytes.size());
    return rec;
}

void
StatRecord::encode(std::span<uint8_t> out) const
{
    util::ByteWriter w(kStatRecBytes);
    w.putU32(flag);
    w.putU32(0);
    w.putU64(stat.totalBytes);
    w.putU64(stat.freeBytes);
    w.putU64(stat.totalFiles);
    w.putU32(stat.blockSize);
    emit(w, out, kStatRecBytes);
}

StatRecord
StatRecord::decode(std::span<const uint8_t> in)
{
    REMORA_ASSERT(in.size() >= kStatRecBytes);
    util::ByteReader r(in);
    StatRecord rec;
    rec.flag = r.getU32();
    r.skip(4);
    rec.stat.totalBytes = r.getU64();
    rec.stat.freeBytes = r.getU64();
    rec.stat.totalFiles = r.getU64();
    rec.stat.blockSize = r.getU32();
    return rec;
}

} // namespace remora::dfs
