/**
 * @file
 * The NFS-shaped operation vocabulary and its XDR marshaling.
 *
 * The file service "presents an interface similar to NFS, i.e., it
 * implements operations like those shown earlier in Table 1a" (§5.2).
 * These procedure numbers and encoders are shared by every access path
 * (Hybrid-1 backend, conventional-RPC backend, server dispatch) and by
 * the traffic classifier, which measures the exact bytes these encoders
 * produce.
 *
 * Wire fidelity note: a file handle is marshaled as 32 opaque bytes,
 * matching NFS v2, even though only 8 are meaningful here — Table 1b's
 * control-byte accounting depends on the real handle size.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/file_store.h"
#include "rpc/marshal.h"
#include "util/status.h"

namespace remora::dfs {

/** Procedure numbers of the file service. */
enum class NfsProc : uint32_t
{
    kNull = 0,
    kGetAttr = 1,
    kLookup = 4,
    kReadLink = 5,
    kRead = 6,
    kWrite = 8,
    kReadDir = 16,
    kStatFs = 17,
};

/** Human-readable name of a procedure. */
const char *nfsProcName(NfsProc proc);

/** Marshaled size of a file handle on the wire (NFS v2: 32 bytes). */
inline constexpr size_t kWireFileHandleBytes = 32;

/** Append a file handle as 32 opaque bytes. */
void putFileHandle(rpc::Marshal &m, FileHandle fh);

/** Decode a 32-byte file handle. */
FileHandle getFileHandle(rpc::Unmarshal &u);

/** Append file attributes (17 XDR words, like NFS v2 fattr). */
void putFileAttr(rpc::Marshal &m, const FileAttr &attr);

/** Decode file attributes. */
FileAttr getFileAttr(rpc::Unmarshal &u);

/** Append filesystem statistics. */
void putFsStat(rpc::Marshal &m, const FsStat &s);

/** Decode filesystem statistics. */
FsStat getFsStat(rpc::Unmarshal &u);

/** Serialize directory entries: count, then (fileid, name) pairs. */
void putDirEntries(rpc::Marshal &m, const std::vector<DirEntry> &entries);

/** Decode directory entries. */
std::vector<DirEntry> getDirEntries(rpc::Unmarshal &u);

/**
 * Flatten directory entries into the compact fixed layout stored in the
 * server's directory cache area: [fileid u64][len u8][name bytes]...
 */
std::vector<uint8_t> packDirEntries(const std::vector<DirEntry> &entries);

/** Parse the compact directory layout (inverse of packDirEntries). */
std::vector<DirEntry> unpackDirEntries(std::span<const uint8_t> bytes,
                                       size_t maxBytes);

// ----------------------------------------------------------------------
// Call bodies: [proc u32][args...], shared by Hybrid-1 and the
// conventional RPC transport so both carry identical bytes.
// ----------------------------------------------------------------------

/** NULL ping. */
std::vector<uint8_t> encodeNullCall();

/** GETATTR(fh). */
std::vector<uint8_t> encodeGetAttrCall(FileHandle fh);

/** LOOKUP(dir, name). */
std::vector<uint8_t> encodeLookupCall(FileHandle dir,
                                      const std::string &name);

/** READLINK(fh). */
std::vector<uint8_t> encodeReadLinkCall(FileHandle fh);

/** READ(fh, offset, count). */
std::vector<uint8_t> encodeReadCall(FileHandle fh, uint64_t offset,
                                    uint32_t count);

/** WRITE(fh, offset, data). */
std::vector<uint8_t> encodeWriteCall(FileHandle fh, uint64_t offset,
                                     std::span<const uint8_t> data);

/** READDIR(fh, maxBytes). */
std::vector<uint8_t> encodeReadDirCall(FileHandle fh, uint32_t maxBytes);

/** STATFS(fh). */
std::vector<uint8_t> encodeStatFsCall(FileHandle fh);

} // namespace remora::dfs
