/**
 * @file
 * Layout of the server's exported cache areas (§5.1).
 *
 * "Our system model organizes the cache into different distinct areas,
 * each containing different types of information ... This organization
 * allows the client-side server clerk to probe server data structures"
 * — the areas below are exported segments whose internal layout is a
 * cluster-wide convention, so a clerk can compute exactly where a datum
 * lives on the server and fetch it with one remote read:
 *
 *  - file data      : direct-mapped slots of one 8 KB block + header
 *  - name lookup    : (directory, name) -> child handle + attributes
 *  - file attributes: handle -> attributes
 *  - directory entries: whole-directory entry lists (the paper notes
 *    the departmental server's entire directory contents fit in
 *    ~2.5 MB, so caching them all is feasible)
 *  - symbolic links : handle -> target (the extra ~40 KB noted in §5.1)
 *  - fs statistics  : one small record
 *
 * Every record leads with a flag word that the writer updates last
 * (insert) or first (invalidate); single-word atomicity (§3.4) then
 * guarantees remote readers a consistent view. Areas are direct-mapped
 * caches: a tag mismatch at the clerk is a miss, answered by falling
 * back to control transfer.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "dfs/file_store.h"
#include "util/hash.h"

namespace remora::dfs {

/** Sizing of the server's cache areas. */
struct CacheGeometry
{
    uint32_t attrBuckets = 1024;
    uint32_t nameBuckets = 2048;
    uint32_t dataSlots = 256;
    uint32_t dirSlots = 128;
    uint32_t linkSlots = 256;
};

/** Record flag-word states shared by all areas. */
inline constexpr uint32_t kSlotEmpty = 0;
inline constexpr uint32_t kSlotValid = 1;

/** Bytes per attribute record. */
inline constexpr uint32_t kAttrRecBytes = 80;
/** Bytes per name-lookup record. */
inline constexpr uint32_t kNameRecBytes = 160;
/** Bytes of the data-slot header preceding each cached block. */
inline constexpr uint32_t kDataHeaderBytes = 32;
/** Bytes per data slot (header + one block). */
inline constexpr uint32_t kDataSlotBytes = kDataHeaderBytes + kBlockBytes;
/** Bytes per directory slot (header + packed entries). */
inline constexpr uint32_t kDirSlotBytes = 4096;
/** Bytes of the directory-slot header. */
inline constexpr uint32_t kDirHeaderBytes = 32;
/** Bytes per symlink record. */
inline constexpr uint32_t kLinkRecBytes = 128;
/** Bytes of the statistics record. */
inline constexpr uint32_t kStatRecBytes = 64;

// ----------------------------------------------------------------------
// Bucket functions — identical on server and every clerk.
// ----------------------------------------------------------------------

/** Attribute-area bucket of a file handle key. */
inline uint32_t
attrBucket(uint64_t fhKey, uint32_t buckets)
{
    return static_cast<uint32_t>(util::mix64(fhKey) % buckets);
}

/** Name-area bucket of (directory key, component name). */
inline uint32_t
nameBucket(uint64_t dirKey, const std::string &name, uint32_t buckets)
{
    return static_cast<uint32_t>(
        util::mix64(dirKey ^ util::fnv1a(name)) % buckets);
}

/** Data-area slot of (file handle key, block number). */
inline uint32_t
dataSlot(uint64_t fhKey, uint64_t blockNo, uint32_t slots)
{
    return static_cast<uint32_t>(
        util::mix64(fhKey ^ (blockNo * 0x9e3779b97f4a7c15ull)) % slots);
}

/** Directory-area slot of a directory key. */
inline uint32_t
dirSlot(uint64_t dirKey, uint32_t slots)
{
    return static_cast<uint32_t>(util::mix64(dirKey ^ 0xd1b54a32d192ed03ull) %
                                 slots);
}

/** Symlink-area slot of a file handle key. */
inline uint32_t
linkSlot(uint64_t fhKey, uint32_t slots)
{
    return static_cast<uint32_t>(util::mix64(fhKey ^ 0x2545f4914f6cdd1dull) %
                                 slots);
}

// ----------------------------------------------------------------------
// Record encode/decode
// ----------------------------------------------------------------------

/** Attribute record: flag, handle tag, attributes. */
struct AttrRecord
{
    uint32_t flag = kSlotEmpty;
    uint64_t fhKey = 0;
    FileAttr attr;

    /** Serialize into exactly kAttrRecBytes. */
    void encode(std::span<uint8_t> out) const;

    /** Parse from at least kAttrRecBytes. */
    static AttrRecord decode(std::span<const uint8_t> in);
};

/** Name-lookup record: flag, (dir, name) tag, child handle + attrs. */
struct NameLookupRecord
{
    uint32_t flag = kSlotEmpty;
    uint64_t dirKey = 0;
    uint64_t childKey = 0;
    FileAttr childAttr;
    std::string name; // <= 79 chars

    void encode(std::span<uint8_t> out) const;
    static NameLookupRecord decode(std::span<const uint8_t> in);
};

/** Data-slot header: flag, dirty, (handle, block) tag, valid bytes. */
struct DataSlotHeader
{
    uint32_t flag = kSlotEmpty;
    uint32_t dirty = 0;
    uint64_t fhKey = 0;
    uint64_t blockNo = 0;
    uint32_t validBytes = 0;

    void encode(std::span<uint8_t> out) const;
    static DataSlotHeader decode(std::span<const uint8_t> in);
};

/** Directory-slot header: flag, dir tag, packed-entry byte count. */
struct DirSlotHeader
{
    uint32_t flag = kSlotEmpty;
    uint64_t dirKey = 0;
    uint32_t bytes = 0;
    uint32_t entryCount = 0;

    void encode(std::span<uint8_t> out) const;
    static DirSlotHeader decode(std::span<const uint8_t> in);
};

/** Symlink record: flag, handle tag, target path. */
struct LinkRecord
{
    uint32_t flag = kSlotEmpty;
    uint64_t fhKey = 0;
    std::string target; // <= 107 chars

    void encode(std::span<uint8_t> out) const;
    static LinkRecord decode(std::span<const uint8_t> in);
};

/** Statistics record. */
struct StatRecord
{
    uint32_t flag = kSlotEmpty;
    FsStat stat;

    void encode(std::span<uint8_t> out) const;
    static StatRecord decode(std::span<const uint8_t> in);
};

} // namespace remora::dfs
