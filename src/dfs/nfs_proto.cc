#include "dfs/nfs_proto.h"

#include "util/bytes.h"

namespace remora::dfs {

const char *
nfsProcName(NfsProc proc)
{
    switch (proc) {
      case NfsProc::kNull: return "null";
      case NfsProc::kGetAttr: return "getattr";
      case NfsProc::kLookup: return "lookup";
      case NfsProc::kReadLink: return "readlink";
      case NfsProc::kRead: return "read";
      case NfsProc::kWrite: return "write";
      case NfsProc::kReadDir: return "readdir";
      case NfsProc::kStatFs: return "statfs";
    }
    return "unknown";
}

void
putFileHandle(rpc::Marshal &m, FileHandle fh)
{
    uint8_t buf[kWireFileHandleBytes] = {};
    util::ByteWriter w(kWireFileHandleBytes);
    w.putU32(fh.inode);
    w.putU32(fh.generation);
    auto bytes = w.bytes();
    std::copy(bytes.begin(), bytes.end(), buf);
    m.putFixed(std::span<const uint8_t>(buf, kWireFileHandleBytes));
}

FileHandle
getFileHandle(rpc::Unmarshal &u)
{
    std::vector<uint8_t> buf = u.getFixed(kWireFileHandleBytes);
    if (buf.size() < 8) {
        return {};
    }
    util::ByteReader r(buf);
    FileHandle fh;
    fh.inode = r.getU32();
    fh.generation = r.getU32();
    return fh;
}

void
putFileAttr(rpc::Marshal &m, const FileAttr &attr)
{
    m.putU32(static_cast<uint32_t>(attr.type));
    m.putU32(attr.mode);
    m.putU32(attr.nlink);
    m.putU32(attr.uid);
    m.putU32(attr.gid);
    m.putU64(attr.size);
    m.putU64(attr.bytesUsed);
    m.putU64(attr.fileid);
    m.putU32(attr.atime);
    m.putU32(attr.mtime);
    m.putU32(attr.ctime);
}

FileAttr
getFileAttr(rpc::Unmarshal &u)
{
    FileAttr a;
    a.type = static_cast<FileType>(u.getU32());
    a.mode = u.getU32();
    a.nlink = u.getU32();
    a.uid = u.getU32();
    a.gid = u.getU32();
    a.size = u.getU64();
    a.bytesUsed = u.getU64();
    a.fileid = u.getU64();
    a.atime = u.getU32();
    a.mtime = u.getU32();
    a.ctime = u.getU32();
    return a;
}

void
putFsStat(rpc::Marshal &m, const FsStat &s)
{
    m.putU64(s.totalBytes);
    m.putU64(s.freeBytes);
    m.putU64(s.totalFiles);
    m.putU32(s.blockSize);
}

FsStat
getFsStat(rpc::Unmarshal &u)
{
    FsStat s;
    s.totalBytes = u.getU64();
    s.freeBytes = u.getU64();
    s.totalFiles = u.getU64();
    s.blockSize = u.getU32();
    return s;
}

void
putDirEntries(rpc::Marshal &m, const std::vector<DirEntry> &entries)
{
    m.putU32(static_cast<uint32_t>(entries.size()));
    for (const DirEntry &e : entries) {
        m.putU64(e.fileid);
        m.putString(e.name);
    }
}

std::vector<DirEntry>
getDirEntries(rpc::Unmarshal &u)
{
    uint32_t count = u.getU32();
    std::vector<DirEntry> out;
    out.reserve(count);
    for (uint32_t i = 0; i < count && u.ok(); ++i) {
        DirEntry e;
        e.fileid = u.getU64();
        e.name = u.getString();
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<uint8_t>
packDirEntries(const std::vector<DirEntry> &entries)
{
    util::ByteWriter w;
    for (const DirEntry &e : entries) {
        w.putU64(e.fileid);
        w.putU8(static_cast<uint8_t>(e.name.size()));
        w.putBytes(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(e.name.data()),
            e.name.size()));
    }
    return w.take();
}

namespace {

rpc::Marshal
callHeader(NfsProc proc)
{
    rpc::Marshal m;
    m.putU32(static_cast<uint32_t>(proc));
    return m;
}

} // namespace

std::vector<uint8_t>
encodeNullCall()
{
    return callHeader(NfsProc::kNull).take();
}

std::vector<uint8_t>
encodeGetAttrCall(FileHandle fh)
{
    rpc::Marshal m = callHeader(NfsProc::kGetAttr);
    putFileHandle(m, fh);
    return m.take();
}

std::vector<uint8_t>
encodeLookupCall(FileHandle dir, const std::string &name)
{
    rpc::Marshal m = callHeader(NfsProc::kLookup);
    putFileHandle(m, dir);
    m.putString(name);
    return m.take();
}

std::vector<uint8_t>
encodeReadLinkCall(FileHandle fh)
{
    rpc::Marshal m = callHeader(NfsProc::kReadLink);
    putFileHandle(m, fh);
    return m.take();
}

std::vector<uint8_t>
encodeReadCall(FileHandle fh, uint64_t offset, uint32_t count)
{
    rpc::Marshal m = callHeader(NfsProc::kRead);
    putFileHandle(m, fh);
    m.putU64(offset);
    m.putU32(count);
    return m.take();
}

std::vector<uint8_t>
encodeWriteCall(FileHandle fh, uint64_t offset,
                std::span<const uint8_t> data)
{
    rpc::Marshal m = callHeader(NfsProc::kWrite);
    putFileHandle(m, fh);
    m.putU64(offset);
    m.putOpaque(data);
    return m.take();
}

std::vector<uint8_t>
encodeReadDirCall(FileHandle fh, uint32_t maxBytes)
{
    rpc::Marshal m = callHeader(NfsProc::kReadDir);
    putFileHandle(m, fh);
    m.putU32(maxBytes);
    return m.take();
}

std::vector<uint8_t>
encodeStatFsCall(FileHandle fh)
{
    rpc::Marshal m = callHeader(NfsProc::kStatFs);
    putFileHandle(m, fh);
    return m.take();
}

std::vector<DirEntry>
unpackDirEntries(std::span<const uint8_t> bytes, size_t maxBytes)
{
    util::ByteReader r(bytes.first(std::min(bytes.size(), maxBytes)));
    std::vector<DirEntry> out;
    while (r.remaining() >= 9) {
        DirEntry e;
        e.fileid = r.getU64();
        uint8_t len = r.getU8();
        if (r.remaining() < len) {
            break;
        }
        auto nameBytes = r.viewBytes(len);
        e.name.assign(reinterpret_cast<const char *>(nameBytes.data()), len);
        out.push_back(std::move(e));
    }
    return out;
}

} // namespace remora::dfs
