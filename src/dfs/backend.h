/**
 * @file
 * Clerk-to-server transfer backends: the two schemes §5.2 compares
 * (plus the conventional RPC transport as a third baseline).
 *
 *  - DxBackend ("DX"): pure data transfer. The clerk computes where the
 *    datum lives in the server's exported cache areas and fetches it
 *    with remote reads (writes go back with remote writes). The server
 *    *process* never runs; only its kernel data path does.
 *  - HyBackend ("HY"): Hybrid-1. One remote write with notification
 *    carries the marshaled call; the woken server thread executes the
 *    procedure and remote-writes the reply.
 *  - RpcBackend: the conventional request/response RPC transport with
 *    the full six-step thread model (ablation baseline).
 *
 * All three speak the same marshaled call bodies and answer from the
 * same FileStore, so differences in latency and server load are pure
 * communication structure.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfs/cache_layout.h"
#include "dfs/file_store.h"
#include "dfs/nfs_proto.h"
#include "dfs/server.h"
#include "rpc/hybrid1.h"
#include "rpc/transport.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::dfs {

/** Lookup result: handle plus attributes, like NFS diropres. */
struct LookupReply
{
    FileHandle fh;
    FileAttr attr;
};

/** Abstract clerk-to-server access path. */
class FileServiceBackend
{
  public:
    virtual ~FileServiceBackend() = default;

    /** NULL ping (reachability / baseline cost). */
    virtual sim::Task<util::Status> null() = 0;

    /** Attributes of @p fh. */
    virtual sim::Task<util::Result<FileAttr>> getattr(FileHandle fh) = 0;

    /** Resolve @p name under @p dir. */
    virtual sim::Task<util::Result<LookupReply>> lookup(
        FileHandle dir, std::string name) = 0;

    /** Read @p count bytes at @p offset. */
    virtual sim::Task<util::Result<std::vector<uint8_t>>> read(
        FileHandle fh, uint64_t offset, uint32_t count) = 0;

    /** Write @p data at @p offset. */
    virtual sim::Task<util::Status> write(FileHandle fh, uint64_t offset,
                                          std::vector<uint8_t> data) = 0;

    /** Target of symlink @p fh. */
    virtual sim::Task<util::Result<std::string>> readlink(FileHandle fh) = 0;

    /** Up to @p maxBytes of packed entries of directory @p fh. */
    virtual sim::Task<util::Result<std::vector<DirEntry>>> readdir(
        FileHandle fh, uint32_t maxBytes) = 0;

    /** Filesystem statistics. */
    virtual sim::Task<util::Result<FsStat>> statfs() = 0;

    /** Diagnostic name ("dx", "hy", "rpc"). */
    virtual const char *name() const = 0;
};

/** Pure-data-transfer backend over the server's exported cache areas. */
class DxBackend : public FileServiceBackend
{
  public:
    /**
     * @param engine The client node's remote-memory engine.
     * @param clerkProcess The clerk process (scratch memory owner).
     * @param areas Handles to the server's cache areas.
     * @param geometry Must match the server's.
     * @param fallback Optional control-transfer path used on cache
     *        misses (§5.2: "control is transferred to the remote
     *        process" when the probe misses); may be nullptr, in which
     *        case misses surface as kNotFound.
     */
    DxBackend(rmem::RmemEngine &engine, mem::Process &clerkProcess,
              const ServerAreaHandles &areas,
              const CacheGeometry &geometry = {},
              rpc::Hybrid1Client *fallback = nullptr);

    sim::Task<util::Status> null() override;
    sim::Task<util::Result<FileAttr>> getattr(FileHandle fh) override;
    sim::Task<util::Result<LookupReply>> lookup(
        FileHandle dir, std::string name) override;
    sim::Task<util::Result<std::vector<uint8_t>>> read(
        FileHandle fh, uint64_t offset, uint32_t count) override;
    sim::Task<util::Status> write(FileHandle fh, uint64_t offset,
                                  std::vector<uint8_t> data) override;
    sim::Task<util::Result<std::string>> readlink(FileHandle fh) override;
    sim::Task<util::Result<std::vector<DirEntry>>> readdir(
        FileHandle fh, uint32_t maxBytes) override;
    sim::Task<util::Result<FsStat>> statfs() override;
    const char *name() const override { return "dx"; }

    /** Remote cache misses observed (fell back or failed). */
    uint64_t misses() const { return misses_; }

    /** Vectored-READ timeouts absorbed by halving (or, at window 1,
     *  re-issuing) the read window instead of surfacing the error. */
    uint64_t windowShrinks() const { return windowShrinks_; }

  private:
    /** Remote-read @p count bytes at @p areaOff of @p area (by value:
     *  the handle is copied into the coroutine frame, so it stays valid
     *  across the remote-read suspension). */
    sim::Task<util::Result<std::vector<uint8_t>>>
    fetch(rmem::ImportedSegment area, uint64_t areaOff, uint32_t count);

    /** Next scratch deposit slot (rotates for concurrent ops). */
    uint32_t scratchSlot();

    rmem::RmemEngine &engine_;
    mem::Process &process_;
    ServerAreaHandles areas_;
    CacheGeometry geo_;
    rpc::Hybrid1Client *fallback_;
    mem::Vaddr scratchBase_ = 0;
    rmem::SegmentId scratchSeg_ = 0;
    uint32_t scratchCursor_ = 0;
    uint64_t misses_ = 0;
    uint64_t windowShrinks_ = 0;
};

/** Hybrid-1 backend: marshaled calls over write-with-notification. */
class HyBackend : public FileServiceBackend
{
  public:
    /**
     * @param client A bound Hybrid-1 client endpoint.
     */
    explicit HyBackend(rpc::Hybrid1Client &client) : client_(client) {}

    sim::Task<util::Status> null() override;
    sim::Task<util::Result<FileAttr>> getattr(FileHandle fh) override;
    sim::Task<util::Result<LookupReply>> lookup(
        FileHandle dir, std::string name) override;
    sim::Task<util::Result<std::vector<uint8_t>>> read(
        FileHandle fh, uint64_t offset, uint32_t count) override;
    sim::Task<util::Status> write(FileHandle fh, uint64_t offset,
                                  std::vector<uint8_t> data) override;
    sim::Task<util::Result<std::string>> readlink(FileHandle fh) override;
    sim::Task<util::Result<std::vector<DirEntry>>> readdir(
        FileHandle fh, uint32_t maxBytes) override;
    sim::Task<util::Result<FsStat>> statfs() override;
    const char *name() const override { return "hy"; }

  private:
    /** Issue one marshaled call and return its reply body. */
    sim::Task<util::Result<std::vector<uint8_t>>> roundTrip(
        std::vector<uint8_t> body);

    rpc::Hybrid1Client &client_;
};

/** Conventional-RPC backend (six-step thread model baseline). */
class RpcBackend : public FileServiceBackend
{
  public:
    /**
     * @param transport The client node's RPC transport.
     * @param server The server's node id.
     */
    RpcBackend(rpc::RpcTransport &transport, net::NodeId server)
        : transport_(transport), server_(server)
    {}

    sim::Task<util::Status> null() override;
    sim::Task<util::Result<FileAttr>> getattr(FileHandle fh) override;
    sim::Task<util::Result<LookupReply>> lookup(
        FileHandle dir, std::string name) override;
    sim::Task<util::Result<std::vector<uint8_t>>> read(
        FileHandle fh, uint64_t offset, uint32_t count) override;
    sim::Task<util::Status> write(FileHandle fh, uint64_t offset,
                                  std::vector<uint8_t> data) override;
    sim::Task<util::Result<std::string>> readlink(FileHandle fh) override;
    sim::Task<util::Result<std::vector<DirEntry>>> readdir(
        FileHandle fh, uint32_t maxBytes) override;
    sim::Task<util::Result<FsStat>> statfs() override;
    const char *name() const override { return "rpc"; }

  private:
    sim::Task<util::Result<std::vector<uint8_t>>> roundTrip(
        std::vector<uint8_t> body);

    rpc::RpcTransport &transport_;
    net::NodeId server_;
};

} // namespace remora::dfs
