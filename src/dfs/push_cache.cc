#include "dfs/push_cache.h"

#include "util/panic.h"

namespace remora::dfs {

ClerkPushCache::ClerkPushCache(rmem::RmemEngine &engine, mem::Process &owner,
                               const PushCacheGeometry &geometry)
    : engine_(engine), owner_(owner), geo_(geometry)
{
    uint32_t bytes = segmentBytes(geo_);
    base_ = owner_.space().allocRegion(bytes);
    auto h = engine_.exportSegment(owner_, base_, bytes,
                                   rmem::Rights::kWrite | rmem::Rights::kRead,
                                   rmem::NotifyPolicy::kNever, "push.cache");
    if (!h.ok()) {
        REMORA_FATAL("push cache: export failed: " + h.status().toString());
    }
    handle_ = h.value();
}

std::optional<FileAttr>
ClerkPushCache::findAttr(FileHandle fh) const
{
    uint32_t bucket = attrBucket(fh.key(), geo_.attrBuckets);
    std::vector<uint8_t> buf(kAttrRecBytes);
    util::Status s = owner_.space().read(base_ + attrOffset(bucket), buf);
    REMORA_ASSERT(s.ok());
    AttrRecord rec = AttrRecord::decode(buf);
    if (rec.flag != kSlotValid || rec.fhKey != fh.key()) {
        return std::nullopt;
    }
    ++hits_;
    return rec.attr;
}

bool
ClerkPushCache::findBlock(FileHandle fh, uint64_t blockNo,
                          std::vector<uint8_t> &out) const
{
    uint32_t slot = dataSlot(fh.key(), blockNo, geo_.dataSlots);
    std::vector<uint8_t> hdrBuf(kDataHeaderBytes);
    util::Status s = owner_.space().read(base_ + dataOffset(slot), hdrBuf);
    REMORA_ASSERT(s.ok());
    DataSlotHeader hdr = DataSlotHeader::decode(hdrBuf);
    if (hdr.flag != kSlotValid || hdr.fhKey != fh.key() ||
        hdr.blockNo != blockNo) {
        return false;
    }
    out.resize(hdr.validBytes);
    s = owner_.space().read(base_ + dataOffset(slot) + kDataHeaderBytes,
                            out);
    REMORA_ASSERT(s.ok());
    ++hits_;
    return true;
}

} // namespace remora::dfs
