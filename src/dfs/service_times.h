/**
 * @file
 * Warm-cache server procedure times for the file service.
 *
 * Figure 2's HY bars include "the processing time on the server",
 * which the authors measured "on an actual NFS server with warm caches
 * on an isolated ATM network" (Ultrix RPC and marshaling costs
 * excluded). Those measurements are opaque constants in the paper; the
 * table below plays the same role here and is shared by both the
 * Hybrid-1 and conventional-RPC paths. Per-KB terms model the
 * buffer-cache copying a 25 MHz R3000 does for data-bearing replies.
 */
#pragma once

#include "dfs/nfs_proto.h"
#include "sim/time.h"

namespace remora::dfs {

/** Per-operation warm-cache service times. */
struct ServiceTimes
{
    sim::Duration nullProc = sim::usec(50);
    sim::Duration getattr = sim::usec(140);
    sim::Duration lookup = sim::usec(290);
    sim::Duration readlink = sim::usec(170);
    sim::Duration readBase = sim::usec(210);
    sim::Duration readPerKb = sim::usec(16);
    sim::Duration writeBase = sim::usec(240);
    sim::Duration writePerKb = sim::usec(18);
    sim::Duration readdirBase = sim::usec(260);
    sim::Duration readdirPerKb = sim::usec(22);
    sim::Duration statfs = sim::usec(110);

    /** Service time of @p proc moving @p bytes of payload. */
    sim::Duration
    timeFor(NfsProc proc, uint64_t bytes) const
    {
        auto perKb = [bytes](sim::Duration rate) {
            return static_cast<sim::Duration>(
                (static_cast<double>(bytes) / 1024.0) *
                static_cast<double>(rate));
        };
        switch (proc) {
          case NfsProc::kNull: return nullProc;
          case NfsProc::kGetAttr: return getattr;
          case NfsProc::kLookup: return lookup;
          case NfsProc::kReadLink: return readlink;
          case NfsProc::kRead: return readBase + perKb(readPerKb);
          case NfsProc::kWrite: return writeBase + perKb(writePerKb);
          case NfsProc::kReadDir: return readdirBase + perKb(readdirPerKb);
          case NfsProc::kStatFs: return statfs;
        }
        return nullProc;
    }
};

} // namespace remora::dfs
