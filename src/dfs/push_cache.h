/**
 * @file
 * Eager server→clerk push: the §5.1 "Write Requests Only" alternative.
 *
 * "The first alternative, and the simplest, is for the source of the
 * data (server or clerk) to supply data to the destination using
 * remote writes with no notifications at all." And §3.2: "it is
 * possible for the server to eagerly update data on its client-side
 * clerk."
 *
 * A ClerkPushCache is a clerk-side exported segment laid out as small
 * attribute and data areas (the same record formats as the server's
 * areas, dimensioned down). The server keeps a subscriber list; when
 * it refreshes one of its own cache entries it also remote-writes the
 * record into every subscriber — pure data transfer, no notification,
 * no acknowledgement. A clerk whose pushed copy is fresh serves reads
 * from *local* memory: zero wire traffic, zero server involvement.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dfs/cache_layout.h"
#include "dfs/file_store.h"
#include "rmem/engine.h"

namespace remora::dfs {

/** Sizing of a clerk's pushed-cache areas. */
struct PushCacheGeometry
{
    /** Attribute buckets. */
    uint32_t attrBuckets = 128;
    /** 8 KB data slots. */
    uint32_t dataSlots = 16;
};

/** Clerk-side receptacle for server pushes. */
class ClerkPushCache
{
  public:
    /**
     * @param engine The clerk node's engine.
     * @param owner The clerk process (provides the memory).
     * @param geometry Area sizing; must match what the server is told.
     */
    ClerkPushCache(rmem::RmemEngine &engine, mem::Process &owner,
                   const PushCacheGeometry &geometry = {});

    /** Handle the server needs to push into this cache. */
    rmem::ImportedSegment handle() const { return handle_; }

    /** Geometry (give to the server alongside the handle). */
    const PushCacheGeometry &geometry() const { return geo_; }

    /** Locally look up pushed attributes; nullopt on miss. */
    std::optional<FileAttr> findAttr(FileHandle fh) const;

    /**
     * Locally look up a pushed data block.
     *
     * @param fh Target file.
     * @param blockNo Block number.
     * @param out Receives the valid bytes of the block.
     * @return True on a fresh local hit.
     */
    bool findBlock(FileHandle fh, uint64_t blockNo,
                   std::vector<uint8_t> &out) const;

    /** Local hits served so far. */
    uint64_t hits() const { return hits_; }

    /** Byte offset of attribute bucket @p b within the segment. */
    uint64_t
    attrOffset(uint32_t b) const
    {
        return static_cast<uint64_t>(b) * kAttrRecBytes;
    }

    /** Byte offset of data slot @p s within the segment. */
    uint64_t
    dataOffset(uint32_t s) const
    {
        return static_cast<uint64_t>(geo_.attrBuckets) * kAttrRecBytes +
               static_cast<uint64_t>(s) * kDataSlotBytes;
    }

    /** Total segment bytes for @p geometry. */
    static uint32_t
    segmentBytes(const PushCacheGeometry &geometry)
    {
        return geometry.attrBuckets * kAttrRecBytes +
               geometry.dataSlots * kDataSlotBytes;
    }

  private:
    rmem::RmemEngine &engine_;
    mem::Process &owner_;
    PushCacheGeometry geo_;
    mem::Vaddr base_ = 0;
    rmem::ImportedSegment handle_;
    mutable uint64_t hits_ = 0;
};

} // namespace remora::dfs
