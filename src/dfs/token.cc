#include "dfs/token.h"

#include <algorithm>

#include "rmem/race_detector.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "util/panic.h"

namespace remora::dfs {

uint32_t
tokenSlotOf(uint64_t key, uint32_t slots)
{
    return static_cast<uint32_t>(util::mix64(key ^ 0x7061636b65747321ull) %
                                 slots);
}

// ----------------------------------------------------------------------
// TokenArea
// ----------------------------------------------------------------------

TokenArea::TokenArea(rmem::RmemEngine &engine, mem::Process &owner,
                     const TokenParams &params)
    : engine_(engine), owner_(owner), params_(params)
{
    uint32_t bytes = tokenAreaBytes(params_);
    base_ = owner_.space().allocRegion(bytes);
    auto h = engine_.exportSegment(
        owner_, base_, bytes,
        rmem::Rights::kRead | rmem::Rights::kWrite | rmem::Rights::kCas,
        rmem::NotifyPolicy::kNever, "dfs.tokens");
    if (!h.ok()) {
        REMORA_FATAL("token area: export failed: " + h.status().toString());
    }
    handle_ = h.value();
    if (rmem::RaceDetector::on()) {
        // Each token slot's leading word is CAS-claimed ownership
        // state — a sync word for the race detector. The holder
        // directory that follows the slots is deliberately *not*
        // marked: registration is a fire-and-forget write that peers
        // must not race with (see TokenClient's constructor), and the
        // detector will rightly flag any schedule that contends
        // before registration lands.
        auto &det = rmem::RaceDetector::instance();
        for (uint32_t s = 0; s < params_.tokenSlots; ++s) {
            det.markSyncWord(handle_.node, handle_.descriptor,
                             s * kTokenSlotBytes);
        }
    }
}

uint32_t
TokenArea::holderOf(uint64_t key) const
{
    uint32_t slot = tokenSlotOf(key, params_.tokenSlots);
    auto word =
        owner_.space().readWord(base_ + slot * kTokenSlotBytes);
    REMORA_ASSERT(word.ok());
    return word.value();
}

// ----------------------------------------------------------------------
// TokenClient
// ----------------------------------------------------------------------

TokenClient::TokenClient(rmem::RmemEngine &engine, mem::Process &owner,
                         const rmem::ImportedSegment &area,
                         const TokenParams &params)
    : engine_(engine), owner_(owner), area_(area), params_(params),
      myTag_(static_cast<uint32_t>(engine.node().id()) + 1)
{
    REMORA_ASSERT(engine.node().id() < params_.maxNodes);

    scratchBase_ = owner_.space().allocRegion(mem::kPageBytes);
    auto scratch = engine_.exportSegment(owner_, scratchBase_, 256,
                                         rmem::Rights::kRead,
                                         rmem::NotifyPolicy::kNever,
                                         "tok.scratch");
    REMORA_ASSERT(scratch.ok());
    scratchSeg_ = scratch.value().descriptor;

    revokeBase_ = owner_.space().allocRegion(mem::kPageBytes);
    auto revoke = engine_.exportSegment(owner_, revokeBase_, 128,
                                        rmem::Rights::kWrite,
                                        rmem::NotifyPolicy::kConditional,
                                        "tok.revoke");
    REMORA_ASSERT(revoke.ok());
    revokeHandle_ = revoke.value();
    engine_.channel(revokeHandle_.descriptor)
        ->setSignalHandler(
            [this](const rmem::Notification &n) { onRevokeRequest(n); });

    // Register this client's revocation segment in the holder
    // directory (one fire-and-forget remote write). Peers must not
    // contend before this lands — in practice, before the first
    // event-queue drain after construction.
    util::ByteWriter w(kHolderEntryBytes);
    w.putU8(revokeHandle_.descriptor);
    w.putU8(0);
    w.putU16(revokeHandle_.generation);
    w.putU32(revokeHandle_.size);
    uint32_t dirOff = params_.tokenSlots * kTokenSlotBytes +
                      static_cast<uint32_t>(engine_.node().id()) *
                          kHolderEntryBytes;
    engine_
        .write(area_, dirOff,
               std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()))
        .detach();
}

uint32_t
TokenClient::slotOffset(uint64_t key) const
{
    return tokenSlotOf(key, params_.tokenSlots) * kTokenSlotBytes;
}

sim::Task<util::Status>
TokenClient::acquire(uint64_t key)
{
    if (held_.count(key) != 0) {
        // The common case the paper counts on: the token is cached
        // locally and acquisition costs nothing on the wire.
        ++localHits_;
        co_return util::Status();
    }

    auto &sim = engine_.node().simulator();
    sim::Time deadline = params_.acquireTimeout > 0
                             ? sim.now() + params_.acquireTimeout
                             : sim::kTimeMax;
    bool countedRevoke = false;
    for (;;) {
        rmem::CasOutcome out = co_await engine_.cas(
            area_, slotOffset(key), 0, myTag_, scratchSeg_, 0,
            params_.acquireTimeout);
        if (!out.status.ok()) {
            co_return out.status;
        }
        if (out.success) {
            // Record which key occupies the slot (diagnostics and
            // revocation matching at the holder).
            util::ByteWriter w(8);
            w.putU64(key);
            util::Status ws = co_await engine_.write(
                area_, slotOffset(key) + 8,
                std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()));
            if (!ws.ok()) {
                co_return ws;
            }
            held_.insert(key);
            co_return util::Status();
        }

        uint32_t holder = out.observed;
        if (holder == myTag_) {
            // The slot is already ours via another key that shares it
            // (direct-mapped table): the token covers this key too.
            held_.insert(key);
            co_return util::Status();
        }

        // Contended. Ask the holder to give the token up — the rare
        // control transfer of the protocol.
        if (holder != 0) {
            auto peer = peerRevoke_.find(holder);
            if (peer == peerRevoke_.end()) {
                // Resolve the holder's revocation segment from the
                // directory with one remote read.
                uint32_t dirOff = params_.tokenSlots * kTokenSlotBytes +
                                  (holder - 1) * kHolderEntryBytes;
                rmem::ReadOutcome dir = co_await engine_.read(
                    area_, dirOff, scratchSeg_, 8, kHolderEntryBytes,
                    false, params_.acquireTimeout);
                if (!dir.status.ok()) {
                    co_return dir.status;
                }
                util::ByteReader r(dir.data);
                rmem::ImportedSegment seg;
                seg.node = static_cast<net::NodeId>(holder - 1);
                seg.descriptor = r.getU8();
                r.skip(1);
                seg.generation = r.getU16();
                seg.size = r.getU32();
                seg.rights = rmem::Rights::kWrite;
                peer = peerRevoke_.emplace(holder, seg).first;
            }
            util::ByteWriter w(8);
            w.putU64(key);
            if (!countedRevoke) {
                // Count revoked *acquisitions*; the retry loop may
                // re-send the request while the first is in flight.
                ++revokesSent_;
                countedRevoke = true;
            }
            util::Status ws = co_await engine_.write(
                peer->second, 0,
                std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()),
                /*notify=*/true);
            if (!ws.ok()) {
                co_return ws;
            }
        }

        if (sim.now() >= deadline) {
            co_return util::Status(util::ErrorCode::kTimeout,
                                   "token acquisition timed out");
        }
        co_await sim::delay(sim, params_.retryBackoff);
    }
}

sim::Task<util::Status>
TokenClient::release(uint64_t key)
{
    if (held_.count(key) == 0) {
        co_return util::Status(util::ErrorCode::kInvalidArgument,
                               "token not held");
    }
    rmem::CasOutcome out = co_await engine_.cas(
        area_, slotOffset(key), myTag_, 0, scratchSeg_, 4,
        params_.acquireTimeout);
    if (!out.status.ok()) {
        co_return out.status;
    }
    // The slot may be shared by several of our keys (direct-mapped
    // table); releasing it surrenders the token for all of them.
    uint32_t slot = tokenSlotOf(key, params_.tokenSlots);
    for (auto it = held_.begin(); it != held_.end();) {
        if (tokenSlotOf(*it, params_.tokenSlots) == slot) {
            revokeWanted_.erase(*it);
            it = held_.erase(it);
        } else {
            ++it;
        }
    }
    co_return util::Status();
}

void
TokenClient::endUse(uint64_t key)
{
    busy_.erase(key);
    if (revokeWanted_.count(key) != 0) {
        // Deferred revocation: honour it now that the writer is done.
        ++revokesHonoured_;
        revokeWanted_.erase(key);
        [](TokenClient *self, uint64_t k) -> sim::Task<void> {
            auto s = co_await self->release(k);
            (void)s;
        }(this, key)
            .detach();
    }
}

void
TokenClient::onRevokeRequest(const rmem::Notification &n)
{
    (void)n;
    std::vector<uint8_t> buf(8);
    util::Status rs = owner_.space().read(revokeBase_, buf);
    REMORA_ASSERT(rs.ok());
    util::ByteReader r(buf);
    uint64_t wantedKey = r.getU64();

    // The request names the *contender's* key; we hold the token for
    // whichever of our keys shares its slot (direct-mapped table).
    uint32_t slot = tokenSlotOf(wantedKey, params_.tokenSlots);
    uint64_t victim = 0;
    bool found = false;
    for (uint64_t k : held_) {
        if (tokenSlotOf(k, params_.tokenSlots) == slot) {
            victim = k;
            found = true;
            break;
        }
    }
    if (!found) {
        return; // already released; the contender's retry will win
    }
    if (busy_.count(victim) != 0) {
        // "Delay revocation during certain conditions" (§5.1): the
        // writer is mid-operation; release when it finishes.
        revokeWanted_.insert(victim);
        return;
    }
    ++revokesHonoured_;
    [](TokenClient *self, uint64_t k) -> sim::Task<void> {
        auto s = co_await self->release(k);
        (void)s;
    }(this, victim)
        .detach();
}

} // namespace remora::dfs
