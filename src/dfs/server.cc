#include "dfs/server.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/logger.h"
#include "util/panic.h"

namespace remora::dfs {

namespace {

/** Export one cache area and return its handle. */
rmem::ImportedSegment
exportArea(rmem::RmemEngine &engine, mem::Process &proc, mem::Vaddr base,
           uint32_t bytes, const char *name)
{
    auto h = engine.exportSegment(
        proc, base, bytes,
        rmem::Rights::kRead | rmem::Rights::kWrite | rmem::Rights::kCas,
        rmem::NotifyPolicy::kConditional, name);
    if (!h.ok()) {
        REMORA_FATAL(std::string("file server: cannot export area ") + name +
                     ": " + h.status().toString());
    }
    return h.value();
}

} // namespace

FileServer::FileServer(rmem::RmemEngine &engine, FileStore &store,
                       const CacheGeometry &geometry,
                       const ServiceTimes &times,
                       const rpc::Hybrid1Params &hybridParams)
    : engine_(engine), store_(store), geo_(geometry), times_(times),
      process_(engine.node().spawnProcess("file-server")),
      hybrid_(engine, process_, hybridParams)
{
    auto allocArea = [&](CacheArea area, uint32_t bytes, const char *name,
                         rmem::ImportedSegment *handle) {
        size_t i = static_cast<size_t>(area);
        areaBase_[i] = process_.space().allocRegion(bytes);
        areaBytes_[i] = bytes;
        *handle = exportArea(engine_, process_, areaBase_[i], bytes, name);
    };
    allocArea(CacheArea::kData, geo_.dataSlots * kDataSlotBytes, "dfs.data",
              &handles_.data);
    allocArea(CacheArea::kName, geo_.nameBuckets * kNameRecBytes, "dfs.name",
              &handles_.name);
    allocArea(CacheArea::kAttr, geo_.attrBuckets * kAttrRecBytes, "dfs.attr",
              &handles_.attr);
    allocArea(CacheArea::kDir, geo_.dirSlots * kDirSlotBytes, "dfs.dir",
              &handles_.dir);
    allocArea(CacheArea::kLink, geo_.linkSlots * kLinkRecBytes, "dfs.link",
              &handles_.link);
    allocArea(CacheArea::kStat, kStatRecBytes, "dfs.stat", &handles_.stat);

    hybrid_.setHandler([this](net::NodeId src, std::vector<uint8_t> body) {
        return handleBody(src, std::move(body));
    });
}

void
FileServer::start()
{
    hybrid_.start();
}

void
FileServer::registerStats(obs::MetricRegistry &reg,
                          const std::string &prefix) const
{
    reg.add(prefix + ".calls_served", stats_.callsServed);
    reg.add(prefix + ".cache_inserts", stats_.cacheInserts);
    reg.add(prefix + ".cache_evictions", stats_.cacheEvictions);
    reg.add(prefix + ".dirty_blocks_applied", stats_.dirtyBlocksApplied);
    reg.addGauge(prefix + ".pushes_issued",
                 [this] { return static_cast<double>(pushes_); });
}

void
FileServer::attachRpcTransport(rpc::RpcTransport &transport)
{
    // One umbrella procedure; the body's own proc word dispatches.
    transport.registerProc(
        1, [this](net::NodeId src, std::vector<uint8_t> body) {
            return handleBody(src, std::move(body));
        });
}

// ----------------------------------------------------------------------
// Dispatch
// ----------------------------------------------------------------------

sim::Task<std::vector<uint8_t>>
FileServer::handleBody(net::NodeId src, std::vector<uint8_t> body)
{
    (void)src;
    stats_.callsServed.inc();
    rpc::Unmarshal u(body);
    auto proc = static_cast<NfsProc>(u.getU32());
    engine_.node().simulator().noteDigest(
        "dfs.serve",
        static_cast<uint64_t>(src) << 32 | static_cast<uint32_t>(proc));
    // Explicit span: the procedure body suspends on the CPU resource.
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            engine_.node().name(), "dfs", nfsProcName(proc),
            "from=" + std::to_string(src));
    }
    auto &cpu = engine_.node().cpu();

    rpc::Marshal reply;
    auto fail = [&reply](util::ErrorCode code) {
        rpc::Marshal m;
        m.putU32(static_cast<uint32_t>(code));
        return m;
    };

    switch (proc) {
      case NfsProc::kNull: {
        co_await cpu.use(times_.timeFor(proc, 0),
                         sim::CpuCategory::kProcExec);
        reply.putU32(0);
        break;
      }
      case NfsProc::kGetAttr: {
        FileHandle fh = getFileHandle(u);
        co_await cpu.use(times_.timeFor(proc, 0),
                         sim::CpuCategory::kProcExec);
        auto attr = store_.getattr(fh);
        if (!attr.ok()) {
            reply = fail(attr.status().code());
            break;
        }
        reply.putU32(0);
        putFileAttr(reply, attr.value());
        break;
      }
      case NfsProc::kLookup: {
        FileHandle dir = getFileHandle(u);
        std::string name = u.getString();
        co_await cpu.use(times_.timeFor(proc, 0),
                         sim::CpuCategory::kProcExec);
        auto child = store_.lookup(dir, name);
        if (!child.ok()) {
            reply = fail(child.status().code());
            break;
        }
        auto attr = store_.getattr(child.value());
        reply.putU32(0);
        putFileHandle(reply, child.value());
        putFileAttr(reply, attr.ok() ? attr.value() : FileAttr{});
        break;
      }
      case NfsProc::kReadLink: {
        FileHandle fh = getFileHandle(u);
        co_await cpu.use(times_.timeFor(proc, 0),
                         sim::CpuCategory::kProcExec);
        auto target = store_.readlink(fh);
        if (!target.ok()) {
            reply = fail(target.status().code());
            break;
        }
        reply.putU32(0);
        reply.putString(target.value());
        break;
      }
      case NfsProc::kRead: {
        FileHandle fh = getFileHandle(u);
        uint64_t offset = u.getU64();
        uint32_t count = u.getU32();
        co_await cpu.use(times_.timeFor(proc, count),
                         sim::CpuCategory::kProcExec);
        auto data = store_.read(fh, offset, count);
        if (!data.ok()) {
            reply = fail(data.status().code());
            break;
        }
        auto attr = store_.getattr(fh);
        reply.putU32(0);
        putFileAttr(reply, attr.ok() ? attr.value() : FileAttr{});
        reply.putOpaque(data.value());
        break;
      }
      case NfsProc::kWrite: {
        FileHandle fh = getFileHandle(u);
        uint64_t offset = u.getU64();
        std::vector<uint8_t> data = u.getOpaque();
        co_await cpu.use(times_.timeFor(proc, data.size()),
                         sim::CpuCategory::kProcExec);
        util::Status ws = store_.write(fh, offset, data);
        if (!ws.ok()) {
            reply = fail(ws.code());
            break;
        }
        // Keep the exported caches coherent with the new contents.
        cacheAttr(fh);
        for (uint64_t b = offset / kBlockBytes;
             b <= (offset + std::max<size_t>(data.size(), 1) - 1) /
                      kBlockBytes;
             ++b) {
            cacheBlock(fh, b);
        }
        auto attr = store_.getattr(fh);
        reply.putU32(0);
        putFileAttr(reply, attr.ok() ? attr.value() : FileAttr{});
        break;
      }
      case NfsProc::kReadDir: {
        FileHandle fh = getFileHandle(u);
        uint32_t maxBytes = u.getU32();
        auto entries = store_.readdir(fh);
        if (!entries.ok()) {
            co_await cpu.use(times_.timeFor(proc, 0),
                             sim::CpuCategory::kProcExec);
            reply = fail(entries.status().code());
            break;
        }
        // Trim to the requested byte budget, whole entries only.
        std::vector<uint8_t> packed = packDirEntries(entries.value());
        std::vector<DirEntry> trimmed =
            unpackDirEntries(packed, maxBytes);
        co_await cpu.use(times_.timeFor(proc, std::min<uint64_t>(
                                                  packed.size(), maxBytes)),
                         sim::CpuCategory::kProcExec);
        reply.putU32(0);
        putDirEntries(reply, trimmed);
        break;
      }
      case NfsProc::kStatFs: {
        getFileHandle(u);
        co_await cpu.use(times_.timeFor(proc, 0),
                         sim::CpuCategory::kProcExec);
        reply.putU32(0);
        putFsStat(reply, store_.statfs());
        break;
      }
      default: {
        reply = fail(util::ErrorCode::kInvalidArgument);
        break;
      }
    }
    obs::TraceRecorder::instance().endSpan(span);
    co_return reply.take();
}

// ----------------------------------------------------------------------
// Cache-area maintenance
// ----------------------------------------------------------------------

void
FileServer::storeBytes(CacheArea area, uint64_t offset,
                       std::span<const uint8_t> bytes)
{
    size_t i = static_cast<size_t>(area);
    REMORA_ASSERT(offset + bytes.size() <= areaBytes_[i]);
    util::Status s = process_.space().write(areaBase_[i] + offset, bytes);
    REMORA_ASSERT(s.ok());
}

void
FileServer::loadBytes(CacheArea area, uint64_t offset,
                      std::span<uint8_t> out) const
{
    size_t i = static_cast<size_t>(area);
    REMORA_ASSERT(offset + out.size() <= areaBytes_[i]);
    util::Status s = process_.space().read(areaBase_[i] + offset, out);
    REMORA_ASSERT(s.ok());
}

void
FileServer::noteInsert(uint32_t oldFlag, uint64_t oldTag, uint64_t newTag)
{
    stats_.cacheInserts.inc();
    if (oldFlag == kSlotValid && oldTag != newTag) {
        stats_.cacheEvictions.inc();
    }
}

void
FileServer::cacheAttr(FileHandle fh)
{
    auto attr = store_.getattr(fh);
    if (!attr.ok()) {
        return;
    }
    uint32_t bucket = attrBucket(fh.key(), geo_.attrBuckets);
    uint64_t off = static_cast<uint64_t>(bucket) * kAttrRecBytes;

    std::vector<uint8_t> old(kAttrRecBytes);
    loadBytes(CacheArea::kAttr, off, old);
    AttrRecord prev = AttrRecord::decode(old);
    noteInsert(prev.flag, prev.fhKey, fh.key());

    AttrRecord rec;
    rec.flag = kSlotValid;
    rec.fhKey = fh.key();
    rec.attr = attr.value();
    std::vector<uint8_t> buf(kAttrRecBytes);
    rec.encode(buf);
    storeBytes(CacheArea::kAttr, off, buf);
    pushAttrToSubscribers(fh, buf);
}

void
FileServer::cacheName(FileHandle dir, const std::string &name)
{
    auto child = store_.lookup(dir, name);
    if (!child.ok() || name.size() > 79) {
        return;
    }
    auto attr = store_.getattr(child.value());
    uint32_t bucket = nameBucket(dir.key(), name, geo_.nameBuckets);
    uint64_t off = static_cast<uint64_t>(bucket) * kNameRecBytes;

    std::vector<uint8_t> old(kNameRecBytes);
    loadBytes(CacheArea::kName, off, old);
    NameLookupRecord prev = NameLookupRecord::decode(old);
    noteInsert(prev.flag, prev.dirKey ^ util::fnv1a(prev.name),
               dir.key() ^ util::fnv1a(name));

    NameLookupRecord rec;
    rec.flag = kSlotValid;
    rec.dirKey = dir.key();
    rec.childKey = child.value().key();
    rec.childAttr = attr.ok() ? attr.value() : FileAttr{};
    rec.name = name;
    std::vector<uint8_t> buf(kNameRecBytes);
    rec.encode(buf);
    storeBytes(CacheArea::kName, off, buf);
}

void
FileServer::cacheBlock(FileHandle fh, uint64_t blockNo)
{
    auto data = store_.read(fh, blockNo * kBlockBytes, kBlockBytes);
    if (!data.ok()) {
        return;
    }
    uint32_t slot = dataSlot(fh.key(), blockNo, geo_.dataSlots);
    uint64_t off = static_cast<uint64_t>(slot) * kDataSlotBytes;

    std::vector<uint8_t> old(kDataHeaderBytes);
    loadBytes(CacheArea::kData, off, old);
    DataSlotHeader prev = DataSlotHeader::decode(old);
    noteInsert(prev.flag, prev.fhKey ^ prev.blockNo,
               fh.key() ^ blockNo);

    DataSlotHeader hdr;
    hdr.flag = kSlotValid;
    hdr.dirty = 0;
    hdr.fhKey = fh.key();
    hdr.blockNo = blockNo;
    hdr.validBytes = static_cast<uint32_t>(data.value().size());
    std::vector<uint8_t> buf(kDataHeaderBytes);
    hdr.encode(buf);
    storeBytes(CacheArea::kData, off, buf);
    if (!data.value().empty()) {
        storeBytes(CacheArea::kData, off + kDataHeaderBytes, data.value());
    }
    if (!subscribers_.empty()) {
        std::vector<uint8_t> slotBytes;
        slotBytes.reserve(kDataHeaderBytes + data.value().size());
        slotBytes.insert(slotBytes.end(), buf.begin(), buf.end());
        slotBytes.insert(slotBytes.end(), data.value().begin(),
                         data.value().end());
        pushBlockToSubscribers(fh, blockNo, slotBytes);
    }
}

void
FileServer::cacheDir(FileHandle dir)
{
    auto entries = store_.readdir(dir);
    if (!entries.ok()) {
        return;
    }
    std::vector<uint8_t> packed = packDirEntries(entries.value());
    if (packed.size() > kDirSlotBytes - kDirHeaderBytes) {
        packed.resize(kDirSlotBytes - kDirHeaderBytes);
    }
    uint32_t slot = dirSlot(dir.key(), geo_.dirSlots);
    uint64_t off = static_cast<uint64_t>(slot) * kDirSlotBytes;

    std::vector<uint8_t> old(kDirHeaderBytes);
    loadBytes(CacheArea::kDir, off, old);
    DirSlotHeader prev = DirSlotHeader::decode(old);
    noteInsert(prev.flag, prev.dirKey, dir.key());

    DirSlotHeader hdr;
    hdr.flag = kSlotValid;
    hdr.dirKey = dir.key();
    hdr.bytes = static_cast<uint32_t>(packed.size());
    hdr.entryCount = static_cast<uint32_t>(entries.value().size());
    std::vector<uint8_t> buf(kDirHeaderBytes);
    hdr.encode(buf);
    storeBytes(CacheArea::kDir, off, buf);
    if (!packed.empty()) {
        storeBytes(CacheArea::kDir, off + kDirHeaderBytes, packed);
    }
}

void
FileServer::cacheLink(FileHandle fh)
{
    auto target = store_.readlink(fh);
    if (!target.ok() || target.value().size() > 107) {
        return;
    }
    uint32_t slot = linkSlot(fh.key(), geo_.linkSlots);
    uint64_t off = static_cast<uint64_t>(slot) * kLinkRecBytes;

    std::vector<uint8_t> old(kLinkRecBytes);
    loadBytes(CacheArea::kLink, off, old);
    LinkRecord prev = LinkRecord::decode(old);
    noteInsert(prev.flag, prev.fhKey, fh.key());

    LinkRecord rec;
    rec.flag = kSlotValid;
    rec.fhKey = fh.key();
    rec.target = target.value();
    std::vector<uint8_t> buf(kLinkRecBytes);
    rec.encode(buf);
    storeBytes(CacheArea::kLink, off, buf);
}

void
FileServer::cacheStat()
{
    StatRecord rec;
    rec.flag = kSlotValid;
    rec.stat = store_.statfs();
    std::vector<uint8_t> buf(kStatRecBytes);
    rec.encode(buf);
    storeBytes(CacheArea::kStat, 0, buf);
}

uint32_t
FileServer::warmCaches()
{
    uint64_t before = stats_.cacheEvictions.value();
    for (FileHandle fh : store_.allHandles()) {
        auto attr = store_.getattr(fh);
        if (!attr.ok()) {
            continue;
        }
        cacheAttr(fh);
        switch (attr.value().type) {
          case FileType::kRegular: {
            uint64_t blocks =
                (attr.value().size + kBlockBytes - 1) / kBlockBytes;
            for (uint64_t b = 0; b < std::max<uint64_t>(blocks, 1); ++b) {
                cacheBlock(fh, b);
            }
            break;
          }
          case FileType::kDirectory: {
            cacheDir(fh);
            auto entries = store_.readdir(fh);
            if (entries.ok()) {
                for (const DirEntry &e : entries.value()) {
                    cacheName(fh, e.name);
                }
            }
            break;
          }
          case FileType::kSymlink: {
            cacheLink(fh);
            break;
          }
        }
    }
    cacheStat();
    return static_cast<uint32_t>(stats_.cacheEvictions.value() - before);
}

uint64_t
FileServer::scavengeDirtyBlocks()
{
    uint64_t applied = 0;
    for (uint32_t slot = 0; slot < geo_.dataSlots; ++slot) {
        uint64_t off = static_cast<uint64_t>(slot) * kDataSlotBytes;
        std::vector<uint8_t> hdrBuf(kDataHeaderBytes);
        loadBytes(CacheArea::kData, off, hdrBuf);
        DataSlotHeader hdr = DataSlotHeader::decode(hdrBuf);
        if (hdr.flag != kSlotValid || hdr.dirty == 0) {
            continue;
        }
        std::vector<uint8_t> data(hdr.validBytes);
        loadBytes(CacheArea::kData, off + kDataHeaderBytes, data);
        FileHandle fh = FileHandle::fromKey(hdr.fhKey);
        util::Status ws =
            store_.write(fh, hdr.blockNo * kBlockBytes, data);
        if (ws.ok()) {
            ++applied;
            stats_.dirtyBlocksApplied.inc();
        }
        hdr.dirty = 0;
        hdr.encode(hdrBuf);
        storeBytes(CacheArea::kData, off, hdrBuf);
        // Batched, amortized CPU cost; no per-operation control transfer.
        engine_.node().cpu().post(
            engine_.costs().copyCost(hdr.validBytes),
            sim::CpuCategory::kOther);
    }
    return applied;
}

void
FileServer::subscribe(const rmem::ImportedSegment &clerkCache,
                      const PushCacheGeometry &geometry)
{
    REMORA_ASSERT(clerkCache.size >=
                  ClerkPushCache::segmentBytes(geometry));
    subscribers_.push_back(Subscriber{clerkCache, geometry});
}

void
FileServer::pushAttrToSubscribers(FileHandle fh,
                                  std::span<const uint8_t> record)
{
    for (const Subscriber &sub : subscribers_) {
        uint32_t bucket = attrBucket(fh.key(), sub.geo.attrBuckets);
        uint64_t off = static_cast<uint64_t>(bucket) * kAttrRecBytes;
        ++pushes_;
        // Fire-and-forget remote write: no notification, no reply.
        engine_
            .write(sub.seg, static_cast<uint32_t>(off),
                   std::vector<uint8_t>(record.begin(), record.end()))
            .detach();
    }
}

void
FileServer::pushBlockToSubscribers(FileHandle fh, uint64_t blockNo,
                                   std::span<const uint8_t> slotBytes)
{
    for (const Subscriber &sub : subscribers_) {
        uint32_t slot = dataSlot(fh.key(), blockNo, sub.geo.dataSlots);
        uint64_t off =
            static_cast<uint64_t>(sub.geo.attrBuckets) * kAttrRecBytes +
            static_cast<uint64_t>(slot) * kDataSlotBytes;
        ++pushes_;
        engine_
            .write(sub.seg, static_cast<uint32_t>(off),
                   std::vector<uint8_t>(slotBytes.begin(), slotBytes.end()))
            .detach();
    }
}

void
FileServer::startScavenger(sim::Duration interval)
{
    engine_.node().simulator().schedule(interval, [this, interval] {
        scavengeDirtyBlocks();
        startScavenger(interval);
    });
}

} // namespace remora::dfs
