/**
 * @file
 * Exported-segment descriptors and the per-node kernel descriptor table.
 *
 * The paper's co-processor "contains descriptors that define remote
 * memory segments; each descriptor includes the destination segment
 * size, remote node address, and protection information". On the
 * exporting side, a descriptor binds a slot id to (owner process, base
 * virtual address, size, rights, generation, notification policy,
 * write-inhibit flag) plus the segment's notification channel. The
 * table holds 256 slots — descriptor ids are one octet on the wire,
 * mirroring the scarcity of real descriptor registers.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "mem/node.h"
#include "rmem/cost_model.h"
#include "rmem/notification.h"
#include "rmem/segment.h"
#include "util/status.h"

namespace remora::rmem {

/** Kernel-side state of one exported segment. */
struct SegmentDescriptor
{
    bool valid = false;
    /** Owning process on the exporting node. */
    mem::Pid ownerPid = 0;
    /** Base virtual address in the owner's space. */
    mem::Vaddr base = 0;
    /** Segment length in bytes. */
    uint32_t size = 0;
    /** Rights granted to importers. */
    Rights rights = Rights::kNone;
    /** Current generation; requests with older generations NAK. */
    Generation generation = 0;
    /** Notification policy (§3.1.1: always / never / conditional). */
    NotifyPolicy policy = NotifyPolicy::kConditional;
    /** When set, incoming writes NAK with kWriteInhibited (§3.1.1). */
    bool writeInhibited = false;
    /** The segment's fd-style notification channel. */
    std::unique_ptr<NotificationChannel> channel;
    /** Diagnostic/export name. */
    std::string name;
};

/** Fixed-capacity descriptor table of an exporting kernel. */
class DescriptorTable
{
  public:
    /** Slots available per node (one-octet wire id). */
    static constexpr size_t kSlots = 256;

    /**
     * @param cpu The node's CPU (notification channels charge it).
     * @param costs Shared cost model.
     */
    DescriptorTable(sim::CpuResource &cpu, const CostModel &costs);

    /**
     * Claim a free slot and initialize its descriptor.
     *
     * The slot's generation is bumped (it survives slot reuse), so
     * handles to any previous occupant go stale.
     *
     * @return The slot id, or kResource when the table is full.
     */
    util::Result<SegmentId> allocate(mem::Pid owner, mem::Vaddr base,
                                     uint32_t size, Rights rights,
                                     NotifyPolicy policy,
                                     const std::string &name);

    /**
     * Invalidate a slot (segment revoked). The generation bump makes
     * all outstanding imports stale.
     */
    util::Status release(SegmentId id);

    /** Live descriptor for @p id, or nullptr when invalid. */
    SegmentDescriptor *get(SegmentId id);

    /** Const lookup. */
    const SegmentDescriptor *get(SegmentId id) const;

    /**
     * Validate an incoming request against slot @p id.
     *
     * Checks: slot validity, generation match, rights, bounds and, for
     * writes, the write-inhibit flag. This is the protection boundary
     * of the whole model.
     *
     * @param id Slot the request names.
     * @param generation Generation the request carries.
     * @param offset Request start offset.
     * @param count Request byte count.
     * @param needed Rights the operation requires.
     * @return The descriptor on success; a specific error otherwise.
     */
    util::Result<SegmentDescriptor *> validate(SegmentId id,
                                               Generation generation,
                                               uint64_t offset, uint64_t count,
                                               Rights needed);

    /** Number of live descriptors. */
    size_t liveCount() const { return live_; }

  private:
    sim::CpuResource &cpu_;
    const CostModel &costs_;
    std::array<SegmentDescriptor, kSlots> slots_;
    std::array<Generation, kSlots> slotGeneration_{};
    size_t live_ = 0;
};

} // namespace remora::rmem
