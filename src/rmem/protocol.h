/**
 * @file
 * Wire protocol of the remote-memory kernel layer.
 *
 * Messages small enough for one cell travel as *raw cells* (PTI bit 1
 * set, payload parsed directly), exactly as the FORE driver sent
 * single-cell requests; larger messages travel as AAL5 frames. The
 * formats are sized so the paper's single-cell properties hold:
 *
 *   small WRITE : 8-byte header + up to 40 data bytes = one cell
 *   READ request: 17 bytes                            = one cell
 *   small READ response: 6-byte header + 40 data      = one cell
 *   CAS request/response                              = one cell
 *
 * The small-write offset field is 24 bits (segments addressed by
 * single-cell writes are limited to 16 MB at offsets above that, use
 * block writes, whose offset is 32 bits).
 *
 * The RPC baseline shares this envelope (kRpc) so both communication
 * models run over an identical substrate.
 */
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "rmem/segment.h"
#include "rmem/vector_op.h"
#include "util/status.h"

namespace remora::rmem {

/** First-octet message discriminator (low nibble). */
enum class MsgType : uint8_t
{
    kWriteSmall = 1,
    kWriteBlock = 2,
    kReadReq = 3,
    kReadResp = 4,
    kCasReq = 5,
    kCasResp = 6,
    kNak = 7,
    kRpc = 8,
    kVectorOp = 9,
    kVectorResp = 10,
    kSeqData = 11,
    kAck = 12,
};

/** Maximum data bytes in a single-cell (small) write. */
inline constexpr size_t kSmallWriteMax = 40;

/** Maximum data bytes per block-write / read-response frame. */
inline constexpr size_t kBlockDataMax = 60000;

/** Request id used to match read/CAS responses to pending state. */
using ReqId = uint16_t;

/** WRITE: deposit data at (descriptor, offset) on the destination. */
struct WriteReq
{
    SegmentId descriptor = 0;
    Generation generation = 0;
    uint32_t offset = 0;
    bool notify = false;
    std::vector<uint8_t> data;
};

/** READ: ask for count bytes at (rs, soff); deposit at local (rd, doff). */
struct ReadReq
{
    SegmentId srcDescriptor = 0;
    Generation generation = 0;
    uint32_t srcOffset = 0;
    /** Requester-side destination descriptor (echoed meaninglessly). */
    SegmentId dstDescriptor = 0;
    uint32_t dstOffset = 0;
    uint16_t count = 0;
    ReqId reqId = 0;
    bool notify = false;
};

/** Response carrying read data (status kOk) or nothing. */
struct ReadResp
{
    ReqId reqId = 0;
    util::ErrorCode status = util::ErrorCode::kOk;
    std::vector<uint8_t> data;
};

/** CAS: atomically compare-and-swap a word at (descriptor, offset). */
struct CasReq
{
    SegmentId descriptor = 0;
    Generation generation = 0;
    uint32_t offset = 0;
    uint32_t oldValue = 0;
    uint32_t newValue = 0;
    /** Local segment/offset where the result word is deposited. */
    SegmentId resultDescriptor = 0;
    uint32_t resultOffset = 0;
    ReqId reqId = 0;
    bool notify = false;
};

/** CAS outcome: whether the swap happened and the value observed. */
struct CasResp
{
    ReqId reqId = 0;
    bool success = false;
    uint32_t observed = 0;
};

/** Negative acknowledgement for a rejected request. */
struct Nak
{
    ReqId reqId = 0; // zero when the rejected request had no id (writes)
    util::ErrorCode error = util::ErrorCode::kInternal;
    MsgType originalType = MsgType::kNak;
};

/** Envelope for the RPC baseline's packets. */
struct RpcMsg
{
    uint32_t xid = 0;
    bool isResponse = false;
    /**
     * At-most-once idempotency key, 0 = none. Nonzero keys let the
     * server dedup retried requests (fresh xid, same key) and replay
     * the cached reply instead of re-executing the handler. Encoded
     * only when nonzero, so retry-free traffic keeps the seed's wire
     * format and sizes exactly.
     */
    uint64_t idemKey = 0;
    std::vector<uint8_t> body;
};

/**
 * Reliability envelope (Wire::enableReliability): one fragment of an
 * inner encoded message, sequenced per (sender, receiver) pair. Large
 * inner messages are split across consecutive envelopes
 * (ReliabilityParams::maxFragmentBytes) so the retransmission unit
 * stays a handful of cells — a single lost cell must not force a
 * multi-hundred-cell frame to be resent whole, or a lossy link could
 * never deliver it. The inner CRC covers raw single-cell messages too,
 * which AAL5's frame CRC never sees — a corrupt envelope is dropped
 * and recovered by retransmission.
 */
struct SeqMsg
{
    uint32_t seq = 0;
    /** CRC-32 over seq||lastFrag||inner (seq as 4 LE bytes), so a
     *  flipped seq or fragment bit cannot reposition the envelope in
     *  the stream or splice two messages together. */
    uint32_t innerCrc = 0;
    /** 1 when this envelope completes an inner message; 0 when more
     *  fragments follow on subsequent sequence numbers. */
    uint8_t lastFrag = 1;
    std::vector<uint8_t> inner;
};

/**
 * Cumulative acknowledgement: every seq <= cumSeq was delivered. The
 * encoding appends a guard CRC over cumSeq — acks ride raw cells with
 * no AAL5 CRC, and a corrupt cumSeq must fail decode rather than
 * silently retire undelivered envelopes.
 */
struct AckMsg
{
    uint32_t cumSeq = 0;
};

/** Any wire message. */
using Message = std::variant<WriteReq, ReadReq, ReadResp, CasReq, CasResp,
                             Nak, RpcMsg, VectorReq, VectorResp, SeqMsg,
                             AckMsg>;

/** The discriminator a Message encodes as. */
MsgType messageType(const Message &msg);

/** Human-readable name of a message type ("write_small", "read_req"...). */
const char *msgTypeName(MsgType type);

/** Serialize @p msg to wire bytes. */
std::vector<uint8_t> encodeMessage(const Message &msg);

/**
 * Parse wire bytes (raw-cell payload or reassembled frame).
 *
 * @param bytes Encoded message, possibly followed by padding.
 * @param consumed When non-null, receives the number of meaningful
 *        bytes (the receive path charges PIO for only these on the
 *        register-sourced small-message path).
 * @return The message, or kMalformed for truncated/unknown input.
 */
util::Result<Message> decodeMessage(std::span<const uint8_t> bytes,
                                    size_t *consumed = nullptr);

} // namespace remora::rmem
