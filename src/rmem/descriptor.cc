#include "rmem/descriptor.h"

namespace remora::rmem {

DescriptorTable::DescriptorTable(sim::CpuResource &cpu,
                                 const CostModel &costs)
    : cpu_(cpu), costs_(costs)
{}

util::Result<SegmentId>
DescriptorTable::allocate(mem::Pid owner, mem::Vaddr base, uint32_t size,
                          Rights rights, NotifyPolicy policy,
                          const std::string &name)
{
    if (live_ >= kSlots) {
        return util::Status(util::ErrorCode::kResource,
                            "descriptor table full");
    }
    // First-fit from slot zero: freed slots are reused immediately (the
    // generation bump keeps stale handles out), and boot-time exports
    // land in deterministic well-known slots.
    for (size_t idx = 0; idx < kSlots; ++idx) {
        if (slots_[idx].valid) {
            continue;
        }
        SegmentDescriptor &d = slots_[idx];
        // Generation survives reuse so stale handles to a prior
        // occupant of this slot are rejected.
        slotGeneration_[idx] =
            static_cast<Generation>(slotGeneration_[idx] + 1);
        d.valid = true;
        d.ownerPid = owner;
        d.base = base;
        d.size = size;
        d.rights = rights;
        d.generation = slotGeneration_[idx];
        d.policy = policy;
        d.writeInhibited = false;
        d.channel = std::make_unique<NotificationChannel>(cpu_, costs_);
        d.name = name;
        ++live_;
        return static_cast<SegmentId>(idx);
    }
    return util::Status(util::ErrorCode::kResource, "descriptor table full");
}

util::Status
DescriptorTable::release(SegmentId id)
{
    SegmentDescriptor &d = slots_[id];
    if (!d.valid) {
        return util::Status(util::ErrorCode::kBadDescriptor,
                            "release of invalid descriptor");
    }
    d.valid = false;
    d.channel.reset();
    // Bump the stored generation so even a racing request that read the
    // old descriptor id NAKs as stale.
    slotGeneration_[id] = static_cast<Generation>(slotGeneration_[id] + 1);
    --live_;
    return {};
}

SegmentDescriptor *
DescriptorTable::get(SegmentId id)
{
    SegmentDescriptor &d = slots_[id];
    return d.valid ? &d : nullptr;
}

const SegmentDescriptor *
DescriptorTable::get(SegmentId id) const
{
    const SegmentDescriptor &d = slots_[id];
    return d.valid ? &d : nullptr;
}

util::Result<SegmentDescriptor *>
DescriptorTable::validate(SegmentId id, Generation generation,
                          uint64_t offset, uint64_t count, Rights needed)
{
    SegmentDescriptor &d = slots_[id];
    if (!d.valid) {
        return util::Status(util::ErrorCode::kBadDescriptor,
                            "no such segment");
    }
    if (d.generation != generation) {
        return util::Status(util::ErrorCode::kStaleGeneration,
                            "stale segment generation");
    }
    if (!hasRights(d.rights, needed)) {
        return util::Status(util::ErrorCode::kAccessDenied,
                            "operation not permitted on segment");
    }
    // Overflow-safe bounds check: offset + count must not wrap.
    if (offset > d.size || count > d.size - offset) {
        return util::Status(util::ErrorCode::kOutOfBounds,
                            "request outside segment bounds");
    }
    if (d.writeInhibited && hasRights(needed, Rights::kWrite)) {
        return util::Status(util::ErrorCode::kWriteInhibited,
                            "segment is write-inhibited");
    }
    return &d;
}

} // namespace remora::rmem
