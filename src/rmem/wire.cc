#include "rmem/wire.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "sim/logger.h"
#include "util/panic.h"

namespace remora::rmem {

Wire::Wire(mem::Node &node, const CostModel &costs)
    : node_(node), costs_(costs)
{
    node_.nic().setRxInterrupt([this] { onRxInterrupt(); });
}

sim::Future<void>
Wire::send(net::NodeId dst, const Message &msg, sim::CpuCategory category,
           uint64_t traceOp)
{
    if (traceOp == 0) {
        traceOp = obs::TraceRecorder::currentOp();
    }
    std::vector<uint8_t> bytes = encodeMessage(msg);
    msgsSent_.inc();
    bytesSent_.inc(bytes.size());

    std::vector<net::Cell> cells;
    if (bytes.size() <= net::Cell::kPayloadBytes) {
        // Single raw cell, as the FORE driver sent small requests.
        net::Cell c;
        c.vpi = dst;
        c.vci = node_.id();
        c.pti = kPtiRaw;
        c.setLastOfFrame(true);
        std::memcpy(c.payload.data(), bytes.data(), bytes.size());
        cells.push_back(c);
    } else {
        cells = net::aal5Segment(dst, node_.id(), bytes);
    }
    for (net::Cell &c : cells) {
        c.traceOp = traceOp;
    }

    // Raw single-cell messages come from registers (cheap PIO of only
    // the words used); AAL5 frames move memory through the FIFO a word
    // at a time (the expensive block path).
    bool raw = (cells.size() == 1 && (cells[0].pti & kPtiRaw) != 0);
    sim::Duration perCell = raw ? costs_.rawSendPioCost(bytes.size())
                                : costs_.blockCellPioCost();
    // Optional link encryption (§3.5): every outgoing word is ciphered.
    perCell += raw ? costs_.cryptoCost(bytes.size())
                   : costs_.cryptoCost(net::Cell::kPayloadBytes);
    // Heterogeneity (§3.6): byte-swap folded into the PIO loop when the
    // destination has the opposite byte order. Only message-payload
    // words are swapped — the AAL5 trailer and pad of the final cell
    // are order-neutral — so the charge is per payload word of the
    // frame, applied below cell by cell.
    bool swap = peerByteSwapped(dst);

    // Span covering header format + per-cell PIO until the last cell
    // enters the TX FIFO (the "accepted by the network" point).
    obs::SpanId txSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        txSpan = obs::TraceRecorder::instance().beginSpanFor(
            traceOp, node_.name(), "net", "tx_frame",
            std::string(msgTypeName(messageType(msg))) + " dst=" +
                std::to_string(dst) + " bytes=" +
                std::to_string(bytes.size()) + " cells=" +
                std::to_string(cells.size()));
    }

    sim::Promise<void> accepted(node_.simulator());
    auto &cpu = node_.cpu();
    cpu.post(costs_.sendFormatCost, category);
    for (size_t i = 0; i < cells.size(); ++i) {
        // Each cell enters the TX FIFO as its PIO completes, so the wire
        // overlaps with the CPU filling subsequent cells.
        bool last = (i + 1 == cells.size());
        sim::Duration cellCost = perCell;
        if (swap) {
            // Message bytes this cell actually carries (the tail cell
            // may be mostly trailer/pad). Summed over the frame this is
            // exactly ceil(bytes/4) swapped words, charged once.
            size_t start = i * net::Cell::kPayloadBytes;
            size_t in = raw ? bytes.size()
                            : (start < bytes.size()
                                   ? std::min<size_t>(
                                         net::Cell::kPayloadBytes,
                                         bytes.size() - start)
                                   : 0);
            cellCost += static_cast<sim::Duration>((in + 3) / 4) *
                        costs_.byteSwapWordCost;
        }
        cpu.post(cellCost, category,
                 [this, cell = cells[i], last, accepted, txSpan]() mutable {
                     if (!node_.nic().txSpace()) {
                         // The pass-through TX FIFO cannot back up in this
                         // model; reaching here means the invariant broke.
                         REMORA_PANIC("TX FIFO unexpectedly full on " +
                                      node_.name());
                     }
                     node_.nic().pushTx(cell);
                     if (last) {
                         obs::TraceRecorder::instance().endSpan(txSpan);
                         accepted.set();
                     }
                 });
    }
    return accepted.future();
}

void
Wire::onRxInterrupt()
{
    if (draining_) {
        return;
    }
    draining_ = true;
    drainLoop().detach();
}

sim::Task<void>
Wire::drainLoop()
{
    // Explicit begin/end (not TraceScope): the coroutine suspends, and
    // the span should close when the drain finishes, not when the frame
    // unwinds.
    obs::SpanId drainSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        drainSpan = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "net", "rx_drain",
            "fifo=" + std::to_string(node_.nic().rxDepth()));
    }
    auto &cpu = node_.cpu();
    co_await cpu.use(costs_.rxInterruptCost, sim::CpuCategory::kDataReceive);
    while (auto cell = node_.nic().popRx()) {
        if ((cell->pti & kPtiRaw) != 0) {
            // Register-path drain: the emulation reads the header words,
            // learns the message length, and moves only those words.
            size_t consumed = 0;
            auto decoded = decodeMessage(cell->payload, &consumed);
            sim::Duration drainCost = costs_.rawSendPioCost(consumed) +
                                      costs_.cryptoCost(consumed);
            if (peerByteSwapped(cell->vci)) {
                drainCost += static_cast<sim::Duration>((consumed + 3) / 4) *
                             costs_.byteSwapWordCost;
            }
            // Op-attributed span over this message's own drain PIO, so
            // the critical-path analyzer books it as software rather
            // than leaving a gap (we're inside a coroutine, so the op
            // must be passed explicitly — ambient scope won't survive).
            obs::SpanId msgSpan = obs::kNoSpan;
            if (obs::TraceRecorder::on() && cell->traceOp != 0) {
                msgSpan = obs::TraceRecorder::instance().beginSpanFor(
                    cell->traceOp, node_.name(), "net", "rx_msg_pio",
                    "src=" + std::to_string(cell->vci));
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            obs::TraceRecorder::instance().endSpan(msgSpan);
            if (!decoded.ok()) {
                decodeErrors_.inc();
                continue;
            }
            msgsReceived_.inc();
            route(cell->vci, decoded.take(), cell->traceOp);
        } else {
            // Memory-bound block path: whole cells, word at a time. The
            // byte-swap is NOT charged here — pad and trailer words are
            // order-neutral, so the swap bills once per message-payload
            // word after reassembly, below.
            sim::Duration drainCost =
                costs_.blockCellPioCost() +
                costs_.cryptoCost(net::Cell::kPayloadBytes);
            obs::SpanId cellSpan = obs::kNoSpan;
            if (obs::TraceRecorder::on() && cell->traceOp != 0) {
                cellSpan = obs::TraceRecorder::instance().beginSpanFor(
                    cell->traceOp, node_.name(), "net", "rx_cell_pio",
                    "src=" + std::to_string(cell->vci));
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            obs::TraceRecorder::instance().endSpan(cellSpan);
            if (auto frame = reassembler_.feed(*cell)) {
                size_t consumed = 0;
                auto decoded = decodeMessage(frame->payload, &consumed);
                if (!decoded.ok()) {
                    decodeErrors_.inc();
                    continue;
                }
                if (peerByteSwapped(frame->srcVci)) {
                    // One swap pass over the message's payload words —
                    // same total the sender charged on its way out.
                    obs::SpanId swapSpan = obs::kNoSpan;
                    if (obs::TraceRecorder::on() && frame->traceOp != 0) {
                        swapSpan =
                            obs::TraceRecorder::instance().beginSpanFor(
                                frame->traceOp, node_.name(), "net",
                                "rx_swap_pio",
                                "bytes=" + std::to_string(consumed));
                    }
                    co_await cpu.use(
                        static_cast<sim::Duration>((consumed + 3) / 4) *
                            costs_.byteSwapWordCost,
                        sim::CpuCategory::kDataReceive);
                    obs::TraceRecorder::instance().endSpan(swapSpan);
                }
                msgsReceived_.inc();
                route(frame->srcVci, decoded.take(), frame->traceOp);
            }
        }
    }
    draining_ = false;
    obs::TraceRecorder::instance().endSpan(drainSpan);
    // Cells that arrived during the final check raise a fresh interrupt.
}

void
Wire::registerStats(obs::MetricRegistry &reg, const std::string &prefix) const
{
    reg.add(prefix + ".msgs_sent", msgsSent_);
    reg.add(prefix + ".msgs_received", msgsReceived_);
    reg.add(prefix + ".bytes_sent", bytesSent_);
    reg.add(prefix + ".decode_errors", decodeErrors_);
}

void
Wire::route(net::NodeId src, Message &&msg, uint64_t traceOp)
{
    // Dispatch runs synchronously under the sender's op: the handler's
    // spans (serve_*, deposit_*) and any deferred work it schedules
    // adopt the op from this scope and join the cross-node DAG.
    obs::OpScope opScope(traceOp);
    bool isRpc = messageType(msg) == MsgType::kRpc;
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "net", "rx_msg",
            std::string(msgTypeName(messageType(msg))) + " src=" +
                std::to_string(src));
    }
    Handler &h = isRpc ? rpcHandler_ : rmemHandler_;
    if (!h) {
        REMORA_LOG(kWarn, "wire",
                   node_.name() << ": no handler for message type "
                                << static_cast<int>(messageType(msg)));
        return;
    }
    h(src, std::move(msg));
}

} // namespace remora::rmem
