#include "rmem/wire.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "sim/logger.h"
#include "util/crc.h"
#include "util/panic.h"

namespace remora::rmem {

namespace {

/**
 * Envelope checksum covering the sequence number AND the inner bytes.
 * Small envelopes ride raw single cells with no AAL5 CRC behind them;
 * if the CRC covered only the payload, a flipped seq bit could deliver
 * a message at the wrong stream position (breaking FIFO and dedup).
 */
uint32_t
envelopeCrc(uint32_t seq, uint8_t lastFrag, std::span<const uint8_t> inner)
{
    util::Crc32 crc;
    uint8_t seqBytes[5] = {
        static_cast<uint8_t>(seq),
        static_cast<uint8_t>(seq >> 8),
        static_cast<uint8_t>(seq >> 16),
        static_cast<uint8_t>(seq >> 24),
        lastFrag,
    };
    crc.update(seqBytes);
    crc.update(inner);
    return crc.value();
}

} // namespace

Wire::Wire(mem::Node &node, const CostModel &costs)
    : node_(node), costs_(costs)
{
    node_.nic().setRxInterrupt([this] { onRxInterrupt(); });
}

sim::Future<void>
Wire::send(net::NodeId dst, const Message &msg, sim::CpuCategory category,
           uint64_t traceOp)
{
    if (traceOp == 0) {
        traceOp = obs::TraceRecorder::currentOp();
    }
    std::vector<uint8_t> bytes = encodeMessage(msg);
    msgsSent_.inc();
    bytesSent_.inc(bytes.size());

    MsgType type = messageType(msg);
    // Acks ride outside the sequenced stream (they ARE the stream's
    // bookkeeping); everything else gets wrapped when reliability is on.
    if (reliable_ && type != MsgType::kAck && type != MsgType::kSeqData) {
        return sendReliable(dst, std::move(bytes), category, traceOp);
    }
    return transmitBytes(dst, bytes, msgTypeName(type), category, traceOp);
}

sim::Future<void>
Wire::transmitBytes(net::NodeId dst, const std::vector<uint8_t> &bytes,
                    const char *what, sim::CpuCategory category,
                    uint64_t traceOp)
{
    std::vector<net::Cell> cells;
    if (bytes.size() <= net::Cell::kPayloadBytes) {
        // Single raw cell, as the FORE driver sent small requests.
        net::Cell c;
        c.vpi = dst;
        c.vci = node_.id();
        c.pti = kPtiRaw;
        c.setLastOfFrame(true);
        std::memcpy(c.payload.data(), bytes.data(), bytes.size());
        cells.push_back(c);
    } else {
        cells = net::aal5Segment(dst, node_.id(), bytes);
    }
    for (net::Cell &c : cells) {
        c.traceOp = traceOp;
    }

    // Raw single-cell messages come from registers (cheap PIO of only
    // the words used); AAL5 frames move memory through the FIFO a word
    // at a time (the expensive block path).
    bool raw = (cells.size() == 1 && (cells[0].pti & kPtiRaw) != 0);
    sim::Duration perCell = raw ? costs_.rawSendPioCost(bytes.size())
                                : costs_.blockCellPioCost();
    // Optional link encryption (§3.5): every outgoing word is ciphered.
    perCell += raw ? costs_.cryptoCost(bytes.size())
                   : costs_.cryptoCost(net::Cell::kPayloadBytes);
    // Heterogeneity (§3.6): byte-swap folded into the PIO loop when the
    // destination has the opposite byte order. Only message-payload
    // words are swapped — the AAL5 trailer and pad of the final cell
    // are order-neutral — so the charge is per payload word of the
    // frame, applied below cell by cell.
    bool swap = peerByteSwapped(dst);

    // Span covering header format + per-cell PIO until the last cell
    // enters the TX FIFO (the "accepted by the network" point).
    obs::SpanId txSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        txSpan = obs::TraceRecorder::instance().beginSpanFor(
            traceOp, node_.name(), "net", "tx_frame",
            std::string(what) + " dst=" + std::to_string(dst) + " bytes=" +
                std::to_string(bytes.size()) + " cells=" +
                std::to_string(cells.size()));
    }

    sim::Promise<void> accepted(node_.simulator());
    auto &cpu = node_.cpu();
    cpu.post(costs_.sendFormatCost, category);
    for (size_t i = 0; i < cells.size(); ++i) {
        // Each cell enters the TX FIFO as its PIO completes, so the wire
        // overlaps with the CPU filling subsequent cells.
        bool last = (i + 1 == cells.size());
        sim::Duration cellCost = perCell;
        if (swap) {
            // Message bytes this cell actually carries (the tail cell
            // may be mostly trailer/pad). Summed over the frame this is
            // exactly ceil(bytes/4) swapped words, charged once.
            size_t start = i * net::Cell::kPayloadBytes;
            size_t in = raw ? bytes.size()
                            : (start < bytes.size()
                                   ? std::min<size_t>(
                                         net::Cell::kPayloadBytes,
                                         bytes.size() - start)
                                   : 0);
            cellCost += static_cast<sim::Duration>((in + 3) / 4) *
                        costs_.byteSwapWordCost;
        }
        cpu.post(cellCost, category,
                 [this, cell = cells[i], last, accepted, txSpan]() mutable {
                     if (!node_.nic().txSpace()) {
                         // The pass-through TX FIFO cannot back up in this
                         // model; reaching here means the invariant broke.
                         REMORA_PANIC("TX FIFO unexpectedly full on " +
                                      node_.name());
                     }
                     node_.nic().pushTx(cell);
                     if (last) {
                         obs::TraceRecorder::instance().endSpan(txSpan);
                         accepted.set();
                     }
                 });
    }
    return accepted.future();
}

void
Wire::onRxInterrupt()
{
    if (draining_) {
        return;
    }
    draining_ = true;
    drainLoop().detach();
}

sim::Task<void>
Wire::drainLoop()
{
    // Explicit begin/end (not TraceScope): the coroutine suspends, and
    // the span should close when the drain finishes, not when the frame
    // unwinds.
    obs::SpanId drainSpan = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        drainSpan = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "net", "rx_drain",
            "fifo=" + std::to_string(node_.nic().rxDepth()));
    }
    auto &cpu = node_.cpu();
    co_await cpu.use(costs_.rxInterruptCost, sim::CpuCategory::kDataReceive);
    while (auto cell = node_.nic().popRx()) {
        if ((cell->pti & kPtiRaw) != 0) {
            // Register-path drain: the emulation reads the header words,
            // learns the message length, and moves only those words.
            size_t consumed = 0;
            auto decoded = decodeMessage(cell->payload, &consumed);
            sim::Duration drainCost = costs_.rawSendPioCost(consumed) +
                                      costs_.cryptoCost(consumed);
            if (peerByteSwapped(cell->vci)) {
                drainCost += static_cast<sim::Duration>((consumed + 3) / 4) *
                             costs_.byteSwapWordCost;
            }
            // Op-attributed span over this message's own drain PIO, so
            // the critical-path analyzer books it as software rather
            // than leaving a gap (we're inside a coroutine, so the op
            // must be passed explicitly — ambient scope won't survive).
            obs::SpanId msgSpan = obs::kNoSpan;
            if (obs::TraceRecorder::on() && cell->traceOp != 0) {
                msgSpan = obs::TraceRecorder::instance().beginSpanFor(
                    cell->traceOp, node_.name(), "net", "rx_msg_pio",
                    "src=" + std::to_string(cell->vci));
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            obs::TraceRecorder::instance().endSpan(msgSpan);
            if (!decoded.ok()) {
                decodeErrors_.inc();
                continue;
            }
            dispatch(cell->vci, decoded.take(), cell->traceOp);
        } else {
            // Memory-bound block path: whole cells, word at a time. The
            // byte-swap is NOT charged here — pad and trailer words are
            // order-neutral, so the swap bills once per message-payload
            // word after reassembly, below.
            sim::Duration drainCost =
                costs_.blockCellPioCost() +
                costs_.cryptoCost(net::Cell::kPayloadBytes);
            obs::SpanId cellSpan = obs::kNoSpan;
            if (obs::TraceRecorder::on() && cell->traceOp != 0) {
                cellSpan = obs::TraceRecorder::instance().beginSpanFor(
                    cell->traceOp, node_.name(), "net", "rx_cell_pio",
                    "src=" + std::to_string(cell->vci));
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            obs::TraceRecorder::instance().endSpan(cellSpan);
            if (auto frame = reassembler_.feed(*cell)) {
                size_t consumed = 0;
                auto decoded = decodeMessage(frame->payload, &consumed);
                if (!decoded.ok()) {
                    decodeErrors_.inc();
                    continue;
                }
                if (peerByteSwapped(frame->srcVci)) {
                    // One swap pass over the message's payload words —
                    // same total the sender charged on its way out.
                    obs::SpanId swapSpan = obs::kNoSpan;
                    if (obs::TraceRecorder::on() && frame->traceOp != 0) {
                        swapSpan =
                            obs::TraceRecorder::instance().beginSpanFor(
                                frame->traceOp, node_.name(), "net",
                                "rx_swap_pio",
                                "bytes=" + std::to_string(consumed));
                    }
                    co_await cpu.use(
                        static_cast<sim::Duration>((consumed + 3) / 4) *
                            costs_.byteSwapWordCost,
                        sim::CpuCategory::kDataReceive);
                    obs::TraceRecorder::instance().endSpan(swapSpan);
                }
                dispatch(frame->srcVci, decoded.take(), frame->traceOp);
            }
        }
    }
    draining_ = false;
    obs::TraceRecorder::instance().endSpan(drainSpan);
    // Cells that arrived during the final check raise a fresh interrupt.
}

void
Wire::registerStats(obs::MetricRegistry &reg, const std::string &prefix) const
{
    reg.add(prefix + ".msgs_sent", msgsSent_);
    reg.add(prefix + ".msgs_received", msgsReceived_);
    reg.add(prefix + ".bytes_sent", bytesSent_);
    reg.add(prefix + ".decode_errors", decodeErrors_);
    reg.add(prefix + ".retransmits", retransmits_);
    reg.add(prefix + ".dups_dropped", dupsDropped_);
    reg.add(prefix + ".send_failures", sendFailures_);
    reg.add(prefix + ".acks_sent", acksSent_);
    reg.add(prefix + ".corrupt_envelopes", corruptEnvelopes_);
    reg.add(prefix + ".fragments_sent", fragmentsSent_);
    reassembler_.registerStats(reg, prefix + ".aal5");
}

void
Wire::dispatch(net::NodeId src, Message &&msg, uint64_t traceOp)
{
    switch (messageType(msg)) {
      case MsgType::kAck:
        onAck(src, std::get<AckMsg>(msg).cumSeq);
        return;
      case MsgType::kSeqData:
        onSeqData(src, std::move(std::get<SeqMsg>(msg)), traceOp);
        return;
      default:
        msgsReceived_.inc();
        route(src, std::move(msg), traceOp);
    }
}

sim::Future<void>
Wire::sendReliable(net::NodeId dst, std::vector<uint8_t> inner,
                   sim::CpuCategory category, uint64_t traceOp)
{
    // Split oversize messages so every envelope — the unit of loss,
    // retransmission, and checksum — spans only a handful of cells. A
    // multi-block readv response is hundreds of cells; on a lossy link
    // the probability of the whole frame surviving any single attempt
    // is effectively zero, so retransmitting it monolithically would
    // never converge. Fragments share the per-peer sequence space and
    // reassemble in order on the far side.
    const size_t fragMax = std::max<size_t>(relParams_.maxFragmentBytes, 1);
    PeerTx &tx = peerTx_[dst];
    sim::Future<void> accepted;
    size_t off = 0;
    do {
        size_t take = std::min(fragMax, inner.size() - off);
        uint32_t seq = ++tx.lastSeq;
        SeqMsg env;
        env.seq = seq;
        env.lastFrag = (off + take == inner.size()) ? 1 : 0;
        env.inner.assign(inner.begin() + static_cast<ptrdiff_t>(off),
                         inner.begin() + static_cast<ptrdiff_t>(off + take));
        env.innerCrc = envelopeCrc(seq, env.lastFrag, env.inner);
        std::vector<uint8_t> bytes = encodeMessage(Message(std::move(env)));

        auto [it, inserted] = tx.unacked.try_emplace(seq);
        REMORA_ASSERT(inserted);
        PeerTx::Unacked &u = it->second;
        u.bytes = std::move(bytes);
        u.category = category;
        u.traceOp = traceOp;
        u.attempts = 1;
        u.nextTimeout = relParams_.retransmitTimeout;
        armRetransmit(dst, seq);
        if (off > 0) {
            fragmentsSent_.inc();
        }
        // The returned future tracks the final fragment; earlier ones
        // enter the TX FIFO ahead of it through the same CPU queue.
        accepted = transmitBytes(dst, u.bytes, "seq_data", category, traceOp);
        off += take;
    } while (off < inner.size());
    return accepted;
}

void
Wire::armRetransmit(net::NodeId dst, uint32_t seq)
{
    PeerTx::Unacked &u = peerTx_[dst].unacked[seq];
    u.timer = node_.simulator().schedule(
        u.nextTimeout, [this, dst, seq] { onRetransmitTimeout(dst, seq); });
}

void
Wire::onRetransmitTimeout(net::NodeId dst, uint32_t seq)
{
    auto txIt = peerTx_.find(dst);
    if (txIt == peerTx_.end()) {
        return;
    }
    auto it = txIt->second.unacked.find(seq);
    if (it == txIt->second.unacked.end()) {
        return; // acked in the meantime
    }
    PeerTx::Unacked &u = it->second;
    if (u.attempts >= relParams_.maxAttempts) {
        // At-most-once gives up here: the message may or may not have
        // been applied; the layers above own the user-visible outcome
        // (engine timeouts, RPC retry budgets, DFS fallback).
        sendFailures_.inc();
        node_.simulator().noteDigest(
            "wire.send_failure", (static_cast<uint64_t>(dst) << 32) | seq);
        REMORA_LOG(kWarn, "wire",
                   node_.name() << ": abandoning seq " << seq << " to node "
                                << dst << " after " << u.attempts
                                << " attempts");
        txIt->second.unacked.erase(it);
        return;
    }
    ++u.attempts;
    retransmits_.inc();
    node_.simulator().noteDigest("wire.retransmit",
                                 (static_cast<uint64_t>(dst) << 32) | seq);
    if (obs::TraceRecorder::on() && u.traceOp != 0) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "net", "retransmit",
            "dst=" + std::to_string(dst) + " seq=" + std::to_string(seq) +
                " attempt=" + std::to_string(u.attempts));
    }
    u.nextTimeout *= 2;
    transmitBytes(dst, u.bytes, "seq_data", u.category, u.traceOp);
    armRetransmit(dst, seq);
}

void
Wire::onSeqData(net::NodeId src, SeqMsg &&env, uint64_t traceOp)
{
    if (envelopeCrc(env.seq, env.lastFrag, env.inner) != env.innerCrc) {
        // Damaged in flight; treat as loss — no ack, so the sender's
        // retransmit recovers it.
        corruptEnvelopes_.inc();
        return;
    }
    PeerRx &rx = peerRx_[src];
    if (env.seq <= rx.delivered) {
        // Retransmitted after our ack was lost: the apply already
        // happened, so this must NOT reach a handler again. Re-ack.
        dupsDropped_.inc();
        node_.simulator().noteDigest(
            "wire.dup", (static_cast<uint64_t>(src) << 32) | env.seq);
        sendAck(src);
        return;
    }
    if (env.seq > rx.delivered + 1) {
        // A predecessor is missing (dropped or overtaken): hold this
        // one so delivery stays FIFO per peer — the data-first/tag-last
        // disciplines above depend on it. The cumulative ack tells the
        // sender what is still outstanding.
        rx.ahead.emplace(env.seq, PeerRx::Held{std::move(env.inner),
                                               traceOp, env.lastFrag != 0});
        sendAck(src);
        return;
    }
    deliverInner(src, env.inner, env.lastFrag != 0, traceOp);
    rx.delivered = env.seq;
    while (!rx.ahead.empty() &&
           rx.ahead.begin()->first == rx.delivered + 1) {
        deliverInner(src, rx.ahead.begin()->second.inner,
                     rx.ahead.begin()->second.lastFrag,
                     rx.ahead.begin()->second.traceOp);
        rx.delivered = rx.ahead.begin()->first;
        rx.ahead.erase(rx.ahead.begin());
    }
    sendAck(src);
}

void
Wire::onAck(net::NodeId src, uint32_t cumSeq)
{
    auto txIt = peerTx_.find(src);
    if (txIt == peerTx_.end()) {
        return;
    }
    auto &unacked = txIt->second.unacked;
    for (auto it = unacked.begin();
         it != unacked.end() && it->first <= cumSeq;) {
        node_.simulator().cancel(it->second.timer);
        it = unacked.erase(it);
    }
}

void
Wire::deliverInner(net::NodeId src, const std::vector<uint8_t> &inner,
                   bool lastFrag, uint64_t traceOp)
{
    PeerRx &rx = peerRx_[src];
    if (!lastFrag) {
        // More fragments of this message follow on the next sequence
        // numbers; in-order exactly-once delivery below us makes plain
        // concatenation a correct reassembly.
        rx.fragBuf.insert(rx.fragBuf.end(), inner.begin(), inner.end());
        return;
    }
    std::vector<uint8_t> whole;
    const std::vector<uint8_t> *bytes = &inner;
    if (!rx.fragBuf.empty()) {
        whole = std::move(rx.fragBuf);
        rx.fragBuf.clear();
        whole.insert(whole.end(), inner.begin(), inner.end());
        bytes = &whole;
    }
    auto decoded = decodeMessage(*bytes);
    if (!decoded.ok()) {
        decodeErrors_.inc();
        return;
    }
    msgsReceived_.inc();
    route(src, decoded.take(), traceOp);
}

void
Wire::sendAck(net::NodeId dst)
{
    acksSent_.inc();
    send(dst, Message(AckMsg{peerRx_[dst].delivered}),
         sim::CpuCategory::kControlTransfer);
}

void
Wire::route(net::NodeId src, Message &&msg, uint64_t traceOp)
{
    // Dispatch runs synchronously under the sender's op: the handler's
    // spans (serve_*, deposit_*) and any deferred work it schedules
    // adopt the op from this scope and join the cross-node DAG.
    obs::OpScope opScope(traceOp);
    bool isRpc = messageType(msg) == MsgType::kRpc;
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "net", "rx_msg",
            std::string(msgTypeName(messageType(msg))) + " src=" +
                std::to_string(src));
    }
    Handler &h = isRpc ? rpcHandler_ : rmemHandler_;
    if (!h) {
        REMORA_LOG(kWarn, "wire",
                   node_.name() << ": no handler for message type "
                                << static_cast<int>(messageType(msg)));
        return;
    }
    h(src, std::move(msg));
}

} // namespace remora::rmem
