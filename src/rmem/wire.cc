#include "rmem/wire.h"

#include <algorithm>
#include <cstring>

#include "sim/logger.h"
#include "util/panic.h"

namespace remora::rmem {

Wire::Wire(mem::Node &node, const CostModel &costs)
    : node_(node), costs_(costs)
{
    node_.nic().setRxInterrupt([this] { onRxInterrupt(); });
}

sim::Future<void>
Wire::send(net::NodeId dst, const Message &msg, sim::CpuCategory category)
{
    std::vector<uint8_t> bytes = encodeMessage(msg);
    msgsSent_.inc();
    bytesSent_.inc(bytes.size());

    std::vector<net::Cell> cells;
    if (bytes.size() <= net::Cell::kPayloadBytes) {
        // Single raw cell, as the FORE driver sent small requests.
        net::Cell c;
        c.vpi = dst;
        c.vci = node_.id();
        c.pti = kPtiRaw;
        c.setLastOfFrame(true);
        std::memcpy(c.payload.data(), bytes.data(), bytes.size());
        cells.push_back(c);
    } else {
        cells = net::aal5Segment(dst, node_.id(), bytes);
    }

    // Raw single-cell messages come from registers (cheap PIO of only
    // the words used); AAL5 frames move memory through the FIFO a word
    // at a time (the expensive block path).
    bool raw = (cells.size() == 1 && (cells[0].pti & kPtiRaw) != 0);
    sim::Duration perCell = raw ? costs_.rawSendPioCost(bytes.size())
                                : costs_.blockCellPioCost();
    // Optional link encryption (§3.5): every outgoing word is ciphered.
    perCell += raw ? costs_.cryptoCost(bytes.size())
                   : costs_.cryptoCost(net::Cell::kPayloadBytes);
    // Heterogeneity (§3.6): byte-swap folded into the PIO loop when the
    // destination has the opposite byte order.
    if (peerByteSwapped(dst)) {
        size_t words =
            (raw ? bytes.size() : net::Cell::kPayloadBytes + 3) / 4;
        perCell += static_cast<sim::Duration>(words) *
                   costs_.byteSwapWordCost;
    }

    sim::Promise<void> accepted(node_.simulator());
    auto &cpu = node_.cpu();
    cpu.post(costs_.sendFormatCost, category);
    for (size_t i = 0; i < cells.size(); ++i) {
        // Each cell enters the TX FIFO as its PIO completes, so the wire
        // overlaps with the CPU filling subsequent cells.
        bool last = (i + 1 == cells.size());
        cpu.post(perCell, category,
                 [this, cell = cells[i], last, accepted]() mutable {
                     if (!node_.nic().txSpace()) {
                         // The pass-through TX FIFO cannot back up in this
                         // model; reaching here means the invariant broke.
                         REMORA_PANIC("TX FIFO unexpectedly full on " +
                                      node_.name());
                     }
                     node_.nic().pushTx(cell);
                     if (last) {
                         accepted.set();
                     }
                 });
    }
    return accepted.future();
}

void
Wire::onRxInterrupt()
{
    if (draining_) {
        return;
    }
    draining_ = true;
    drainLoop().detach();
}

sim::Task<void>
Wire::drainLoop()
{
    auto &cpu = node_.cpu();
    co_await cpu.use(costs_.rxInterruptCost, sim::CpuCategory::kDataReceive);
    while (auto cell = node_.nic().popRx()) {
        if ((cell->pti & kPtiRaw) != 0) {
            // Register-path drain: the emulation reads the header words,
            // learns the message length, and moves only those words.
            size_t consumed = 0;
            auto decoded = decodeMessage(cell->payload, &consumed);
            sim::Duration drainCost = costs_.rawSendPioCost(consumed) +
                                      costs_.cryptoCost(consumed);
            if (peerByteSwapped(cell->vci)) {
                drainCost += static_cast<sim::Duration>((consumed + 3) / 4) *
                             costs_.byteSwapWordCost;
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            if (!decoded.ok()) {
                decodeErrors_.inc();
                continue;
            }
            msgsReceived_.inc();
            route(cell->vci, decoded.take());
        } else {
            // Memory-bound block path: whole cells, word at a time.
            sim::Duration drainCost =
                costs_.blockCellPioCost() +
                costs_.cryptoCost(net::Cell::kPayloadBytes);
            if (peerByteSwapped(cell->vci)) {
                drainCost +=
                    static_cast<sim::Duration>(net::Cell::kPayloadBytes /
                                               4) *
                    costs_.byteSwapWordCost;
            }
            co_await cpu.use(drainCost, sim::CpuCategory::kDataReceive);
            if (auto frame = reassembler_.feed(*cell)) {
                auto decoded = decodeMessage(frame->payload);
                if (!decoded.ok()) {
                    decodeErrors_.inc();
                    continue;
                }
                msgsReceived_.inc();
                route(frame->srcVci, decoded.take());
            }
        }
    }
    draining_ = false;
    // Cells that arrived during the final check raise a fresh interrupt.
}

void
Wire::route(net::NodeId src, Message &&msg)
{
    bool isRpc = messageType(msg) == MsgType::kRpc;
    Handler &h = isRpc ? rpcHandler_ : rmemHandler_;
    if (!h) {
        REMORA_LOG(kWarn, "wire",
                   node_.name() << ": no handler for message type "
                                << static_cast<int>(messageType(msg)));
        return;
    }
    h(src, std::move(msg));
}

} // namespace remora::rmem
