#include "rmem/protocol.h"

#include "util/bytes.h"
#include "util/crc.h"
#include "util/panic.h"

namespace remora::rmem {

namespace {

/** Flags packed into the high nibble of the first octet. */
constexpr uint8_t kFlagNotify = 0x10;
constexpr uint8_t kFlagRpcResponse = 0x20;
/** RPC request carries an 8-byte idempotency key after the xid. */
constexpr uint8_t kFlagRpcIdem = 0x40;

uint8_t
firstOctet(MsgType type, bool notify, bool rpcResponse = false)
{
    uint8_t v = static_cast<uint8_t>(type) & 0x0f;
    if (notify) {
        v |= kFlagNotify;
    }
    if (rpcResponse) {
        v |= kFlagRpcResponse;
    }
    return v;
}

void
putU24(util::ByteWriter &w, uint32_t v)
{
    REMORA_ASSERT(v < (1u << 24));
    w.putU8(static_cast<uint8_t>(v));
    w.putU8(static_cast<uint8_t>(v >> 8));
    w.putU8(static_cast<uint8_t>(v >> 16));
}

uint32_t
getU24(util::ByteReader &r)
{
    uint32_t v = r.getU8();
    v |= static_cast<uint32_t>(r.getU8()) << 8;
    v |= static_cast<uint32_t>(r.getU8()) << 16;
    return v;
}

} // namespace

MsgType
messageType(const Message &msg)
{
    struct Visitor
    {
        MsgType operator()(const WriteReq &m) const
        {
            return m.data.size() <= kSmallWriteMax &&
                           m.offset < (1u << 24)
                       ? MsgType::kWriteSmall
                       : MsgType::kWriteBlock;
        }
        MsgType operator()(const ReadReq &) const { return MsgType::kReadReq; }
        MsgType operator()(const ReadResp &) const { return MsgType::kReadResp; }
        MsgType operator()(const CasReq &) const { return MsgType::kCasReq; }
        MsgType operator()(const CasResp &) const { return MsgType::kCasResp; }
        MsgType operator()(const Nak &) const { return MsgType::kNak; }
        MsgType operator()(const RpcMsg &) const { return MsgType::kRpc; }
        MsgType operator()(const VectorReq &) const
        {
            return MsgType::kVectorOp;
        }
        MsgType operator()(const VectorResp &) const
        {
            return MsgType::kVectorResp;
        }
        MsgType operator()(const SeqMsg &) const { return MsgType::kSeqData; }
        MsgType operator()(const AckMsg &) const { return MsgType::kAck; }
    };
    return std::visit(Visitor{}, msg);
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::kWriteSmall:
        return "write_small";
      case MsgType::kWriteBlock:
        return "write_block";
      case MsgType::kReadReq:
        return "read_req";
      case MsgType::kReadResp:
        return "read_resp";
      case MsgType::kCasReq:
        return "cas_req";
      case MsgType::kCasResp:
        return "cas_resp";
      case MsgType::kNak:
        return "nak";
      case MsgType::kRpc:
        return "rpc";
      case MsgType::kVectorOp:
        return "vector_op";
      case MsgType::kVectorResp:
        return "vector_resp";
      case MsgType::kSeqData:
        return "seq_data";
      case MsgType::kAck:
        return "ack";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeMessage(const Message &msg)
{
    util::ByteWriter w(64);
    switch (messageType(msg)) {
      case MsgType::kWriteSmall: {
        const auto &m = std::get<WriteReq>(msg);
        w.putU8(firstOctet(MsgType::kWriteSmall, m.notify));
        w.putU8(m.descriptor);
        w.putU16(m.generation);
        putU24(w, m.offset);
        w.putU8(static_cast<uint8_t>(m.data.size()));
        w.putBytes(m.data);
        break;
      }
      case MsgType::kWriteBlock: {
        const auto &m = std::get<WriteReq>(msg);
        REMORA_ASSERT(m.data.size() <= kBlockDataMax);
        w.putU8(firstOctet(MsgType::kWriteBlock, m.notify));
        w.putU8(m.descriptor);
        w.putU16(m.generation);
        w.putU32(m.offset);
        w.putU16(static_cast<uint16_t>(m.data.size()));
        w.putBytes(m.data);
        break;
      }
      case MsgType::kReadReq: {
        const auto &m = std::get<ReadReq>(msg);
        w.putU8(firstOctet(MsgType::kReadReq, m.notify));
        w.putU8(m.srcDescriptor);
        w.putU16(m.generation);
        w.putU32(m.srcOffset);
        w.putU8(m.dstDescriptor);
        w.putU32(m.dstOffset);
        w.putU16(m.count);
        w.putU16(m.reqId);
        break;
      }
      case MsgType::kReadResp: {
        const auto &m = std::get<ReadResp>(msg);
        REMORA_ASSERT(m.data.size() <= kBlockDataMax);
        w.putU8(firstOctet(MsgType::kReadResp, false));
        w.putU16(m.reqId);
        w.putU8(static_cast<uint8_t>(m.status));
        w.putU16(static_cast<uint16_t>(m.data.size()));
        w.putBytes(m.data);
        break;
      }
      case MsgType::kCasReq: {
        const auto &m = std::get<CasReq>(msg);
        w.putU8(firstOctet(MsgType::kCasReq, m.notify));
        w.putU8(m.descriptor);
        w.putU16(m.generation);
        w.putU32(m.offset);
        w.putU32(m.oldValue);
        w.putU32(m.newValue);
        w.putU8(m.resultDescriptor);
        w.putU32(m.resultOffset);
        w.putU16(m.reqId);
        break;
      }
      case MsgType::kCasResp: {
        const auto &m = std::get<CasResp>(msg);
        w.putU8(firstOctet(MsgType::kCasResp, false));
        w.putU16(m.reqId);
        w.putU8(m.success ? 1 : 0);
        w.putU32(m.observed);
        break;
      }
      case MsgType::kNak: {
        const auto &m = std::get<Nak>(msg);
        w.putU8(firstOctet(MsgType::kNak, false));
        w.putU16(m.reqId);
        w.putU8(static_cast<uint8_t>(m.error));
        w.putU8(static_cast<uint8_t>(m.originalType));
        break;
      }
      case MsgType::kRpc: {
        const auto &m = std::get<RpcMsg>(msg);
        uint8_t first = firstOctet(MsgType::kRpc, false, m.isResponse);
        if (m.idemKey != 0) {
            first |= kFlagRpcIdem;
        }
        w.putU8(first);
        w.putU32(m.xid);
        if (m.idemKey != 0) {
            w.putU64(m.idemKey);
        }
        w.putU32(static_cast<uint32_t>(m.body.size()));
        w.putBytes(m.body);
        break;
      }
      case MsgType::kVectorOp: {
        const auto &m = std::get<VectorReq>(msg);
        REMORA_ASSERT(!m.ops.empty() && m.ops.size() <= kMaxVectorOps);
        REMORA_ASSERT(encodedVectorSize(m) <= kBlockDataMax);
        w.putU8(firstOctet(MsgType::kVectorOp, false));
        w.putU16(m.reqId);
        w.putU8(static_cast<uint8_t>(m.ops.size()));
        for (const VectorSubOp &op : m.ops) {
            w.putU8(static_cast<uint8_t>(
                static_cast<uint8_t>(op.kind) | (op.notify ? 0x80 : 0)));
            w.putU8(op.descriptor);
            w.putU16(op.generation);
            w.putU32(op.offset);
            switch (op.kind) {
              case VecOpKind::kWrite:
                w.putU16(static_cast<uint16_t>(op.data.size()));
                w.putBytes(op.data);
                break;
              case VecOpKind::kRead:
                w.putU16(op.count);
                break;
              case VecOpKind::kCas:
                w.putU32(op.oldValue);
                w.putU32(op.newValue);
                break;
            }
        }
        break;
      }
      case MsgType::kVectorResp: {
        const auto &m = std::get<VectorResp>(msg);
        REMORA_ASSERT(m.results.size() <= kMaxVectorOps);
        w.putU8(firstOctet(MsgType::kVectorResp, false));
        w.putU16(m.reqId);
        w.putU8(static_cast<uint8_t>(m.results.size()));
        for (const VectorSubResult &res : m.results) {
            w.putU8(static_cast<uint8_t>(res.status));
            w.putU8(static_cast<uint8_t>(
                static_cast<uint8_t>(res.kind) | (res.success ? 0x80 : 0)));
            switch (res.kind) {
              case VecOpKind::kWrite:
                break;
              case VecOpKind::kRead:
                w.putU16(static_cast<uint16_t>(res.data.size()));
                w.putBytes(res.data);
                break;
              case VecOpKind::kCas:
                w.putU32(res.observed);
                break;
            }
        }
        break;
      }
      case MsgType::kSeqData: {
        const auto &m = std::get<SeqMsg>(msg);
        w.putU8(firstOctet(MsgType::kSeqData, false));
        w.putU32(m.seq);
        w.putU32(m.innerCrc);
        w.putU8(m.lastFrag);
        w.putU32(static_cast<uint32_t>(m.inner.size()));
        w.putBytes(m.inner);
        break;
      }
      case MsgType::kAck: {
        // An ack often rides a raw single cell, which has no AAL5 CRC;
        // the trailing guard word makes a flipped cumSeq bit a decode
        // error instead of a silent retirement of undelivered envelopes.
        const auto &m = std::get<AckMsg>(msg);
        w.putU8(firstOctet(MsgType::kAck, false));
        w.putU32(m.cumSeq);
        uint8_t seqBytes[4] = {
            static_cast<uint8_t>(m.cumSeq),
            static_cast<uint8_t>(m.cumSeq >> 8),
            static_cast<uint8_t>(m.cumSeq >> 16),
            static_cast<uint8_t>(m.cumSeq >> 24),
        };
        w.putU32(util::crc32Ieee(seqBytes));
        break;
      }
    }
    return w.take();
}

namespace {

/** Decode one message from @p r (shared by the public wrapper). */
util::Result<Message>
decodeBody(util::ByteReader &r)
{
    uint8_t first = r.getU8();
    auto type = static_cast<MsgType>(first & 0x0f);
    bool notify = (first & kFlagNotify) != 0;

    auto malformed = [&]() -> util::Result<Message> {
        return util::Status(util::ErrorCode::kMalformed,
                            "truncated message type " +
                                std::to_string(first & 0x0f));
    };

    switch (type) {
      case MsgType::kWriteSmall: {
        WriteReq m;
        m.notify = notify;
        m.descriptor = r.getU8();
        m.generation = r.getU16();
        m.offset = getU24(r);
        uint8_t count = r.getU8();
        auto data = r.viewBytes(count);
        if (!r.ok()) {
            return malformed();
        }
        m.data.assign(data.begin(), data.end());
        return Message(std::move(m));
      }
      case MsgType::kWriteBlock: {
        WriteReq m;
        m.notify = notify;
        m.descriptor = r.getU8();
        m.generation = r.getU16();
        m.offset = r.getU32();
        uint16_t count = r.getU16();
        auto data = r.viewBytes(count);
        if (!r.ok()) {
            return malformed();
        }
        m.data.assign(data.begin(), data.end());
        return Message(std::move(m));
      }
      case MsgType::kReadReq: {
        ReadReq m;
        m.notify = notify;
        m.srcDescriptor = r.getU8();
        m.generation = r.getU16();
        m.srcOffset = r.getU32();
        m.dstDescriptor = r.getU8();
        m.dstOffset = r.getU32();
        m.count = r.getU16();
        m.reqId = r.getU16();
        if (!r.ok()) {
            return malformed();
        }
        return Message(m);
      }
      case MsgType::kReadResp: {
        ReadResp m;
        m.reqId = r.getU16();
        m.status = static_cast<util::ErrorCode>(r.getU8());
        uint16_t count = r.getU16();
        auto data = r.viewBytes(count);
        if (!r.ok()) {
            return malformed();
        }
        m.data.assign(data.begin(), data.end());
        return Message(std::move(m));
      }
      case MsgType::kCasReq: {
        CasReq m;
        m.notify = notify;
        m.descriptor = r.getU8();
        m.generation = r.getU16();
        m.offset = r.getU32();
        m.oldValue = r.getU32();
        m.newValue = r.getU32();
        m.resultDescriptor = r.getU8();
        m.resultOffset = r.getU32();
        m.reqId = r.getU16();
        if (!r.ok()) {
            return malformed();
        }
        return Message(m);
      }
      case MsgType::kCasResp: {
        CasResp m;
        m.reqId = r.getU16();
        m.success = r.getU8() != 0;
        m.observed = r.getU32();
        if (!r.ok()) {
            return malformed();
        }
        return Message(m);
      }
      case MsgType::kNak: {
        Nak m;
        m.reqId = r.getU16();
        m.error = static_cast<util::ErrorCode>(r.getU8());
        m.originalType = static_cast<MsgType>(r.getU8());
        if (!r.ok()) {
            return malformed();
        }
        return Message(m);
      }
      case MsgType::kRpc: {
        RpcMsg m;
        m.isResponse = (first & kFlagRpcResponse) != 0;
        m.xid = r.getU32();
        if ((first & kFlagRpcIdem) != 0) {
            m.idemKey = r.getU64();
        }
        uint32_t count = r.getU32();
        auto data = r.viewBytes(count);
        if (!r.ok()) {
            return malformed();
        }
        m.body.assign(data.begin(), data.end());
        return Message(std::move(m));
      }
      case MsgType::kVectorOp: {
        VectorReq m;
        m.reqId = r.getU16();
        uint8_t opCount = r.getU8();
        if (!r.ok() || opCount == 0 || opCount > kMaxVectorOps) {
            return malformed();
        }
        m.ops.reserve(opCount);
        for (uint8_t i = 0; i < opCount; ++i) {
            VectorSubOp op;
            uint8_t kindByte = r.getU8();
            if (r.ok() && (kindByte & 0x03) > 2) {
                return malformed();
            }
            op.kind = static_cast<VecOpKind>(kindByte & 0x03);
            op.notify = (kindByte & 0x80) != 0;
            op.descriptor = r.getU8();
            op.generation = r.getU16();
            op.offset = r.getU32();
            switch (op.kind) {
              case VecOpKind::kWrite: {
                uint16_t len = r.getU16();
                auto data = r.viewBytes(len);
                if (!r.ok()) {
                    return malformed();
                }
                op.data.assign(data.begin(), data.end());
                break;
              }
              case VecOpKind::kRead:
                op.count = r.getU16();
                break;
              case VecOpKind::kCas:
                op.oldValue = r.getU32();
                op.newValue = r.getU32();
                break;
            }
            if (!r.ok()) {
                return malformed();
            }
            m.ops.push_back(std::move(op));
        }
        return Message(std::move(m));
      }
      case MsgType::kVectorResp: {
        VectorResp m;
        m.reqId = r.getU16();
        uint8_t resultCount = r.getU8();
        if (!r.ok() || resultCount > kMaxVectorOps) {
            return malformed();
        }
        m.results.reserve(resultCount);
        for (uint8_t i = 0; i < resultCount; ++i) {
            VectorSubResult res;
            res.status = static_cast<util::ErrorCode>(r.getU8());
            uint8_t kindByte = r.getU8();
            if (r.ok() && (kindByte & 0x03) > 2) {
                return malformed();
            }
            res.kind = static_cast<VecOpKind>(kindByte & 0x03);
            res.success = (kindByte & 0x80) != 0;
            switch (res.kind) {
              case VecOpKind::kWrite:
                break;
              case VecOpKind::kRead: {
                uint16_t len = r.getU16();
                auto data = r.viewBytes(len);
                if (!r.ok()) {
                    return malformed();
                }
                res.data.assign(data.begin(), data.end());
                break;
              }
              case VecOpKind::kCas:
                res.observed = r.getU32();
                break;
            }
            if (!r.ok()) {
                return malformed();
            }
            m.results.push_back(std::move(res));
        }
        return Message(std::move(m));
      }
      case MsgType::kSeqData: {
        SeqMsg m;
        m.seq = r.getU32();
        m.innerCrc = r.getU32();
        m.lastFrag = r.getU8();
        uint32_t count = r.getU32();
        auto data = r.viewBytes(count);
        if (!r.ok()) {
            return malformed();
        }
        m.inner.assign(data.begin(), data.end());
        return Message(std::move(m));
      }
      case MsgType::kAck: {
        AckMsg m;
        m.cumSeq = r.getU32();
        uint32_t guard = r.getU32();
        if (!r.ok()) {
            return malformed();
        }
        uint8_t seqBytes[4] = {
            static_cast<uint8_t>(m.cumSeq),
            static_cast<uint8_t>(m.cumSeq >> 8),
            static_cast<uint8_t>(m.cumSeq >> 16),
            static_cast<uint8_t>(m.cumSeq >> 24),
        };
        if (guard != util::crc32Ieee(seqBytes)) {
            return util::Status(util::ErrorCode::kMalformed,
                                "ack guard CRC mismatch");
        }
        return Message(m);
      }
    }
    return util::Status(util::ErrorCode::kMalformed, "unknown message type");
}

} // namespace

util::Result<Message>
decodeMessage(std::span<const uint8_t> bytes, size_t *consumed)
{
    util::ByteReader r(bytes);
    util::Result<Message> result = decodeBody(r);
    if (consumed != nullptr) {
        *consumed = bytes.size() - r.remaining();
    }
    return result;
}

} // namespace remora::rmem
