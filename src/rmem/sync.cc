#include "rmem/sync.h"

#include <algorithm>
#include <string>

#include "rmem/race_detector.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace remora::rmem {

// ----------------------------------------------------------------------
// SpinLock
// ----------------------------------------------------------------------

SpinLock::SpinLock(RmemEngine &engine, const ImportedSegment &segment,
                   uint32_t offset, SegmentId resultSeg, uint32_t resultOff,
                   uint32_t ownerTag, const SpinLockParams &params)
    : engine_(engine), segment_(segment), offset_(offset),
      resultSeg_(resultSeg), resultOff_(resultOff), ownerTag_(ownerTag),
      params_(params)
{
    REMORA_ASSERT(ownerTag != 0);
    REMORA_ASSERT(offset % 4 == 0);
    if (RaceDetector::on()) {
        // Lock word: CAS acquire pairs with release()'s plain write of
        // zero, which also covers the word — the detector's sync-word
        // machinery makes both ends release/acquire edges.
        RaceDetector::instance().markSyncWord(segment_.node,
                                              segment_.descriptor, offset_);
    }
}

std::string
SpinLock::waitSite() const
{
    return "spinlock node=" + std::to_string(segment_.node) +
           " seg=" + std::to_string(segment_.descriptor) +
           " off=" + std::to_string(offset_);
}

sim::Task<util::Status>
SpinLock::acquire()
{
    auto &sim = engine_.node().simulator();
    auto &graph = sim.waitGraph();
    sim::WaitGraph::Resource word = sim::WaitGraph::packResource(
        segment_.node, segment_.descriptor, offset_);
    sim::Time deadline = params_.acquireTimeout > 0
                             ? sim.now() + params_.acquireTimeout
                             : sim::kTimeMax;
    sim::Duration backoff = params_.initialBackoff;
    for (;;) {
        CasOutcome out = co_await engine_.cas(segment_, offset_, 0,
                                              ownerTag_, resultSeg_,
                                              resultOff_);
        if (!out.status.ok()) {
            graph.waitDone(ownerTag_);
            co_return out.status;
        }
        if (out.success) {
            graph.waitDone(ownerTag_);
            graph.acquired(ownerTag_, word, waitSite());
            co_return util::Status();
        }
        ++contention_;
        // A failed CAS is a wait-for edge: the cycle check runs here,
        // catching cross-lock deadlocks even though the backoff timers
        // keep the event queue from ever draining.
        graph.waiting(ownerTag_, word, waitSite(), sim.now());
        if (sim.now() >= deadline) {
            graph.waitDone(ownerTag_);
            co_return util::Status(util::ErrorCode::kTimeout,
                                   "lock acquisition timed out");
        }
        co_await sim::delay(sim, backoff);
        backoff = std::min(backoff * 2, params_.maxBackoff);
    }
}

sim::Task<util::Status>
SpinLock::tryAcquire()
{
    CasOutcome out = co_await engine_.cas(segment_, offset_, 0, ownerTag_,
                                          resultSeg_, resultOff_);
    if (!out.status.ok()) {
        co_return out.status;
    }
    if (!out.success) {
        ++contention_;
        co_return util::Status(util::ErrorCode::kResource, "lock held");
    }
    auto &graph = engine_.node().simulator().waitGraph();
    graph.acquired(ownerTag_,
                   sim::WaitGraph::packResource(segment_.node,
                                                segment_.descriptor, offset_),
                   waitSite());
    co_return util::Status();
}

sim::Task<util::Status>
SpinLock::release()
{
    engine_.node().simulator().waitGraph().released(
        ownerTag_, sim::WaitGraph::packResource(segment_.node,
                                                segment_.descriptor,
                                                offset_));
    // A plain remote write of zero: single-word atomicity (§3.4) makes
    // this a safe unlock as long as the caller actually held the lock.
    util::ByteWriter w(4);
    w.putU32(0);
    util::Status s = co_await engine_.write(
        segment_, offset_,
        std::vector<uint8_t>(w.bytes().begin(), w.bytes().end()));
    co_return s;
}

// ----------------------------------------------------------------------
// Heartbeat
// ----------------------------------------------------------------------

HeartbeatPublisher::HeartbeatPublisher(RmemEngine &engine,
                                       mem::Process &owner,
                                       const HeartbeatParams &params)
    : engine_(engine), owner_(owner), params_(params)
{
    base_ = owner_.space().allocRegion(mem::kPageBytes);
    auto h = engine_.exportSegment(owner_, base_, 64, Rights::kRead,
                                   NotifyPolicy::kNever, "heartbeat");
    if (!h.ok()) {
        REMORA_FATAL("heartbeat publisher: export failed: " +
                     h.status().toString());
    }
    handle_ = h.value();
    if (RaceDetector::on()) {
        // The beat counter is a monotonic published word: local stores
        // release, monitors' remote reads acquire. Without this the
        // publisher's stores race with every probe by construction.
        RaceDetector::instance().markSyncWord(handle_.node,
                                              handle_.descriptor, 0);
    }
}

void
HeartbeatPublisher::start()
{
    REMORA_ASSERT(!running_);
    running_ = true;
    publishLoop().detach();
}

sim::Task<void>
HeartbeatPublisher::publishLoop()
{
    auto &sim = engine_.node().simulator();
    while (running_) {
        ++beats_;
        // A purely local store; remote monitors read it directly. The
        // single-word guarantee keeps readers consistent.
        util::Status s = owner_.space().writeWord(base_, beats_);
        REMORA_ASSERT(s.ok());
        co_await sim::delay(sim, params_.publishPeriod);
    }
}

HeartbeatMonitor::HeartbeatMonitor(RmemEngine &engine, mem::Process &owner,
                                   const ImportedSegment &peer,
                                   FailureCallback onFailure,
                                   const HeartbeatParams &params)
    : engine_(engine), params_(params), peer_(peer),
      onFailure_(std::move(onFailure))
{
    mem::Vaddr scratch = owner.space().allocRegion(mem::kPageBytes);
    auto h = engine_.exportSegment(owner, scratch, 64, Rights::kRead,
                                   NotifyPolicy::kNever, "hb.scratch");
    if (!h.ok()) {
        REMORA_FATAL("heartbeat monitor: scratch export failed: " +
                     h.status().toString());
    }
    scratchSeg_ = h.value().descriptor;
}

void
HeartbeatMonitor::start()
{
    REMORA_ASSERT(!running_);
    running_ = true;
    probeLoop().detach();
}

sim::Task<void>
HeartbeatMonitor::probeLoop()
{
    auto &sim = engine_.node().simulator();
    uint32_t lastSeen = 0;
    uint32_t misses = 0;
    while (running_ && !failed_) {
        co_await sim::delay(sim, params_.probePeriod);
        if (!running_) {
            break;
        }
        ++probes_;
        ReadOutcome out = co_await engine_.read(
            peer_, 0, scratchSeg_, 0, 4, false, params_.probeTimeout);
        bool progress = false;
        if (out.status.ok() && out.data.size() == 4) {
            util::ByteReader r(out.data);
            uint32_t beat = r.getU32();
            progress = beat > lastSeen;
            lastSeen = std::max(lastSeen, beat);
        }
        if (progress) {
            misses = 0;
        } else if (++misses >= params_.missesAllowed) {
            failed_ = true;
            if (onFailure_) {
                onFailure_(peer_.node);
            }
        }
    }
}

} // namespace remora::rmem
