/**
 * @file
 * Higher-level synchronization built on the communication model.
 *
 * Section 3.4 lists the model's synchronization options: hints with no
 * synchronization, the single-word atomicity guarantee, CAS ("this
 * primitive is sufficiently powerful to build higher level
 * synchronization primitives"), and RPC-like semantics via control
 * transfer. Section 3.7 sketches failure detection: "a service that
 * required fault tolerance could implement a periodic remote read
 * request of a known (or monotonically increasing) value. Failure to
 * read the value within a timeout period can be used to raise an
 * exception."
 *
 * This header provides both as reusable library pieces:
 *
 *  - SpinLock: a distributed mutex over a word of a remote segment,
 *    acquired with remote CAS (exponential backoff) and released with a
 *    plain remote write (safe by single-word atomicity);
 *  - Heartbeat: the §3.7 failure detector — a publisher bumps a counter
 *    word in its exported segment; monitors on other nodes periodically
 *    remote-read it and report failure when it stops advancing or stops
 *    answering.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rmem/engine.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::rmem {

/** Tuning for SpinLock acquisition. */
struct SpinLockParams
{
    /** First retry delay after a failed CAS. */
    sim::Duration initialBackoff = sim::usec(50);
    /** Backoff cap. */
    sim::Duration maxBackoff = sim::usec(800);
    /** Give up after this long (0 = forever). */
    sim::Duration acquireTimeout = 0;
};

/**
 * A distributed spinlock over one word of a remote segment.
 *
 * The lock word holds 0 when free and the holder's tag when taken.
 * Multiple SpinLock instances (on any node) may target the same word.
 */
class SpinLock
{
  public:
    /**
     * @param engine This node's remote-memory engine.
     * @param segment The segment holding the lock word (needs kCas and
     *        kWrite rights).
     * @param offset Word-aligned offset of the lock word.
     * @param resultSeg Local segment for CAS result deposits.
     * @param resultOff Word-aligned offset within @p resultSeg.
     * @param ownerTag Non-zero tag identifying this holder.
     * @param params Backoff tuning.
     */
    SpinLock(RmemEngine &engine, const ImportedSegment &segment,
             uint32_t offset, SegmentId resultSeg, uint32_t resultOff,
             uint32_t ownerTag, const SpinLockParams &params = {});

    /**
     * Acquire the lock: CAS(0 -> ownerTag) with exponential backoff.
     *
     * @return kOk on acquisition; kTimeout if acquireTimeout elapsed.
     */
    sim::Task<util::Status> acquire();

    /**
     * Try once without spinning.
     *
     * @return kOk if acquired, kResource if the lock was held.
     */
    sim::Task<util::Status> tryAcquire();

    /** Release the lock (must be held by this tag). */
    sim::Task<util::Status> release();

    /** CAS attempts that lost the race so far. */
    uint64_t contentionCount() const { return contention_; }

  private:
    /** Wait-graph report label for this lock word. */
    std::string waitSite() const;

    RmemEngine &engine_;
    ImportedSegment segment_;
    uint32_t offset_;
    SegmentId resultSeg_;
    uint32_t resultOff_;
    uint32_t ownerTag_;
    SpinLockParams params_;
    uint64_t contention_ = 0;
};

/** Tuning for the Heartbeat failure detector. */
struct HeartbeatParams
{
    /** Publisher bump period. */
    sim::Duration publishPeriod = sim::msec(10);
    /** Monitor probe period. */
    sim::Duration probePeriod = sim::msec(25);
    /** Per-probe read deadline. */
    sim::Duration probeTimeout = sim::msec(10);
    /**
     * Declare failure after this many consecutive probes that either
     * timed out or observed no counter progress.
     */
    uint32_t missesAllowed = 3;
};

/** Publishing half: bumps a monotonically increasing counter word. */
class HeartbeatPublisher
{
  public:
    /**
     * @param engine This node's engine.
     * @param owner Process whose memory backs the counter segment.
     */
    HeartbeatPublisher(RmemEngine &engine, mem::Process &owner,
                       const HeartbeatParams &params = {});

    /** Handle monitors import to read the counter. */
    ImportedSegment handle() const { return handle_; }

    /** Start bumping (runs forever). */
    void start();

    /** Stop bumping (simulates a crash or graceful shutdown). */
    void stop() { running_ = false; }

    /** Current counter value. */
    uint32_t beats() const { return beats_; }

  private:
    sim::Task<void> publishLoop();

    RmemEngine &engine_;
    mem::Process &owner_;
    HeartbeatParams params_;
    mem::Vaddr base_ = 0;
    ImportedSegment handle_;
    uint32_t beats_ = 0;
    bool running_ = false;
};

/** Monitoring half: probes a remote counter, reports failures. */
class HeartbeatMonitor
{
  public:
    /** Invoked once when the peer is declared failed. */
    using FailureCallback = std::function<void(net::NodeId)>;

    /**
     * @param engine This node's engine.
     * @param owner Process providing the probe scratch memory.
     * @param peer The publisher's counter segment.
     * @param onFailure Failure upcall.
     */
    HeartbeatMonitor(RmemEngine &engine, mem::Process &owner,
                     const ImportedSegment &peer, FailureCallback onFailure,
                     const HeartbeatParams &params = {});

    /** Start probing (runs until failure is declared or stop()). */
    void start();

    /** Stop probing without declaring failure. */
    void stop() { running_ = false; }

    /** True once the peer has been declared failed. */
    bool peerFailed() const { return failed_; }

    /** Probes issued so far. */
    uint64_t probes() const { return probes_; }

  private:
    sim::Task<void> probeLoop();

    RmemEngine &engine_;
    HeartbeatParams params_;
    ImportedSegment peer_;
    FailureCallback onFailure_;
    SegmentId scratchSeg_ = 0;
    bool running_ = false;
    bool failed_ = false;
    uint64_t probes_ = 0;
};

} // namespace remora::rmem
