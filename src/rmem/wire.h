/**
 * @file
 * Per-node message transport over the cell substrate.
 *
 * The Wire is the part of the kernel that touches the NIC: it encodes
 * Messages into raw cells (single-cell messages) or AAL5 frames, charges
 * the CPU for every word of programmed I/O, drains the RX FIFO on
 * interrupt, reassembles, decodes, and hands complete messages up. Both
 * the remote-memory engine and the RPC baseline sit on top of the same
 * Wire, so the two communication models being compared share an
 * identical data path.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "mem/node.h"
#include "net/aal5.h"
#include "obs/metrics.h"
#include "rmem/cost_model.h"
#include "rmem/protocol.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace remora::rmem {

/** Kernel-side NIC driver: message framing, PIO costs, RX dispatch. */
class Wire
{
  public:
    /** Receives decoded messages; src is the sending node. */
    using Handler = std::function<void(net::NodeId src, Message &&msg)>;

    /**
     * @param node The owning node (CPU charged, NIC driven).
     * @param costs Shared cost model.
     */
    Wire(mem::Node &node, const CostModel &costs);

    Wire(const Wire &) = delete;
    Wire &operator=(const Wire &) = delete;

    /** Install the handler for remote-memory messages (engine). */
    void setRmemHandler(Handler handler) { rmemHandler_ = std::move(handler); }

    /** Install the handler for RPC envelope messages (transport). */
    void setRpcHandler(Handler handler) { rpcHandler_ = std::move(handler); }

    /**
     * Mark a peer as having the opposite byte order (§3.6): traffic to
     * and from it pays the per-word swap cost during PIO. Requests from
     * such peers carry an implicit swap indication (the paper's "bit in
     * each incoming request").
     */
    void
    setPeerByteSwapped(net::NodeId peer, bool swapped)
    {
        if (swapped) {
            swappedPeers_.insert(peer);
        } else {
            swappedPeers_.erase(peer);
        }
    }

    /** True when @p peer was marked opposite-byte-order. */
    bool
    peerByteSwapped(net::NodeId peer) const
    {
        return swappedPeers_.count(peer) != 0;
    }

    /**
     * Encode and transmit @p msg to @p dst.
     *
     * CPU cost (header formatting plus per-cell PIO) is charged to
     * @p category; cells enter the wire as their PIO completes, so a
     * multi-cell frame pipelines with transmission.
     *
     * @return Future resolved when the last cell has been accepted by
     *         the NIC (the paper's "accepted by the network" point).
     *
     * @param traceOp Async op this transmission belongs to; cells are
     *        stamped with it so the receiver links its events into the
     *        same trace DAG. 0 adopts the ambient OpScope (if any).
     */
    sim::Future<void> send(net::NodeId dst, const Message &msg,
                           sim::CpuCategory category, uint64_t traceOp = 0);

    /** Messages sent, by count. */
    uint64_t messagesSent() const { return msgsSent_.value(); }

    /** Messages received and dispatched. */
    uint64_t messagesReceived() const { return msgsReceived_.value(); }

    /** Payload bytes sent (before cell padding). */
    uint64_t bytesSent() const { return bytesSent_.value(); }

    /** Malformed messages dropped on receive. */
    uint64_t decodeErrors() const { return decodeErrors_.value(); }

    /** The owning node. */
    mem::Node &node() { return node_; }

    /** The cost model in force. */
    const CostModel &costs() const { return costs_; }

    /** Register message counters under "<prefix>.msgs_sent" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** PTI bit marking a raw (non-AAL5) single-cell message. */
    static constexpr uint8_t kPtiRaw = 0x2;

    /** RX interrupt entry: start the drain task if idle. */
    void onRxInterrupt();

    /** Drain the RX FIFO, charging PIO per cell, dispatching messages. */
    sim::Task<void> drainLoop();

    /**
     * Hand one decoded message to the registered handler, with
     * @p traceOp ambient so the handler's spans join the sender's op.
     */
    void route(net::NodeId src, Message &&msg, uint64_t traceOp);

    mem::Node &node_;
    CostModel costs_;
    Handler rmemHandler_;
    Handler rpcHandler_;
    net::Aal5Reassembler reassembler_;
    std::unordered_set<net::NodeId> swappedPeers_;
    bool draining_ = false;
    sim::Counter msgsSent_;
    sim::Counter msgsReceived_;
    sim::Counter bytesSent_;
    sim::Counter decodeErrors_;
};

} // namespace remora::rmem
