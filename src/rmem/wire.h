/**
 * @file
 * Per-node message transport over the cell substrate.
 *
 * The Wire is the part of the kernel that touches the NIC: it encodes
 * Messages into raw cells (single-cell messages) or AAL5 frames, charges
 * the CPU for every word of programmed I/O, drains the RX FIFO on
 * interrupt, reassembles, decodes, and hands complete messages up. Both
 * the remote-memory engine and the RPC baseline sit on top of the same
 * Wire, so the two communication models being compared share an
 * identical data path.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "mem/node.h"
#include "net/aal5.h"
#include "obs/metrics.h"
#include "rmem/cost_model.h"
#include "rmem/protocol.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace remora::rmem {

/**
 * Parameters of the optional per-peer reliability layer (OFF by
 * default — the seed's lossless cluster needs none of it, and the
 * zero-fault hot path must stay untouched).
 */
struct ReliabilityParams
{
    /** First retransmit fires this long after transmission. */
    sim::Duration retransmitTimeout = sim::usec(500);
    /** Timeout doubles per attempt up to maxAttempts. */
    int maxAttempts = 12;
    /**
     * Largest inner-message slice carried per sequenced envelope;
     * bigger messages are split across consecutive envelopes and
     * reassembled in order on the far side. Bounding the
     * retransmission unit to ~11 cells is what makes large frames
     * survivable: at a 5% cell-drop rate a 480-byte fragment still
     * arrives intact more often than not, while a 24 KB frame
     * (~500 cells) retransmitted whole would essentially never land.
     */
    size_t maxFragmentBytes = 480;
};

/** Kernel-side NIC driver: message framing, PIO costs, RX dispatch. */
class Wire
{
  public:
    /** Receives decoded messages; src is the sending node. */
    using Handler = std::function<void(net::NodeId src, Message &&msg)>;

    /**
     * @param node The owning node (CPU charged, NIC driven).
     * @param costs Shared cost model.
     */
    Wire(mem::Node &node, const CostModel &costs);

    Wire(const Wire &) = delete;
    Wire &operator=(const Wire &) = delete;

    /** Install the handler for remote-memory messages (engine). */
    void setRmemHandler(Handler handler) { rmemHandler_ = std::move(handler); }

    /** Install the handler for RPC envelope messages (transport). */
    void setRpcHandler(Handler handler) { rpcHandler_ = std::move(handler); }

    /**
     * Mark a peer as having the opposite byte order (§3.6): traffic to
     * and from it pays the per-word swap cost during PIO. Requests from
     * such peers carry an implicit swap indication (the paper's "bit in
     * each incoming request").
     */
    void
    setPeerByteSwapped(net::NodeId peer, bool swapped)
    {
        if (swapped) {
            swappedPeers_.insert(peer);
        } else {
            swappedPeers_.erase(peer);
        }
    }

    /** True when @p peer was marked opposite-byte-order. */
    bool
    peerByteSwapped(net::NodeId peer) const
    {
        return swappedPeers_.count(peer) != 0;
    }

    /**
     * Encode and transmit @p msg to @p dst.
     *
     * CPU cost (header formatting plus per-cell PIO) is charged to
     * @p category; cells enter the wire as their PIO completes, so a
     * multi-cell frame pipelines with transmission.
     *
     * @return Future resolved when the last cell has been accepted by
     *         the NIC (the paper's "accepted by the network" point).
     *
     * @param traceOp Async op this transmission belongs to; cells are
     *        stamped with it so the receiver links its events into the
     *        same trace DAG. 0 adopts the ambient OpScope (if any).
     */
    sim::Future<void> send(net::NodeId dst, const Message &msg,
                           sim::CpuCategory category, uint64_t traceOp = 0);

    /**
     * Turn on at-most-once, in-order delivery toward every peer: each
     * outgoing message rides a sequenced, checksummed envelope, is
     * retransmitted with exponential backoff until the peer's
     * cumulative ACK covers it, and is deduplicated on the serve side
     * before it can reach a handler — a retransmitted WRITE or CAS
     * never re-executes against the engine. Departure from the paper's
     * §3.7 lossless-cluster assumption; see DESIGN.md §15.
     */
    void
    enableReliability(const ReliabilityParams &params = {})
    {
        reliable_ = true;
        relParams_ = params;
    }

    /** True when the reliability layer is on. */
    bool reliable() const { return reliable_; }

    /** Messages sent, by count. */
    uint64_t messagesSent() const { return msgsSent_.value(); }

    /** Messages received and dispatched. */
    uint64_t messagesReceived() const { return msgsReceived_.value(); }

    /** Payload bytes sent (before cell padding). */
    uint64_t bytesSent() const { return bytesSent_.value(); }

    /** Malformed messages dropped on receive. */
    uint64_t decodeErrors() const { return decodeErrors_.value(); }

    /** Envelope retransmissions performed. */
    uint64_t retransmits() const { return retransmits_.value(); }

    /** Duplicate envelopes discarded before reaching a handler. */
    uint64_t dupsDropped() const { return dupsDropped_.value(); }

    /** Envelopes abandoned after maxAttempts (receiver unreachable). */
    uint64_t sendFailures() const { return sendFailures_.value(); }

    /** Cumulative acknowledgements transmitted. */
    uint64_t acksSent() const { return acksSent_.value(); }

    /** Envelopes dropped because the inner checksum failed. */
    uint64_t corruptEnvelopes() const { return corruptEnvelopes_.value(); }

    /** Extra envelopes produced by splitting oversize messages. */
    uint64_t fragmentsSent() const { return fragmentsSent_.value(); }

    /** The node's AAL5 reassembler (error/resync counters). */
    const net::Aal5Reassembler &reassembler() const { return reassembler_; }

    /** The owning node. */
    mem::Node &node() { return node_; }

    /** The cost model in force. */
    const CostModel &costs() const { return costs_; }

    /** Register message counters under "<prefix>.msgs_sent" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** PTI bit marking a raw (non-AAL5) single-cell message. */
    static constexpr uint8_t kPtiRaw = 0x2;

    /** RX interrupt entry: start the drain task if idle. */
    void onRxInterrupt();

    /** Drain the RX FIFO, charging PIO per cell, dispatching messages. */
    sim::Task<void> drainLoop();

    /**
     * Hand one decoded message to the registered handler, with
     * @p traceOp ambient so the handler's spans join the sender's op.
     */
    void route(net::NodeId src, Message &&msg, uint64_t traceOp);

    /** Peel reliability envelopes/acks; route everything else. */
    void dispatch(net::NodeId src, Message &&msg, uint64_t traceOp);

    /** Per-peer transmit state of the reliability layer. */
    struct PeerTx
    {
        /** Highest sequence number assigned so far. */
        uint32_t lastSeq = 0;

        /** One envelope awaiting acknowledgement. */
        struct Unacked
        {
            std::vector<uint8_t> bytes;
            sim::CpuCategory category = sim::CpuCategory::kDataReply;
            uint64_t traceOp = 0;
            int attempts = 1;
            sim::Duration nextTimeout = 0;
            sim::EventId timer = 0;
        };
        std::map<uint32_t, Unacked> unacked;
    };

    /** Per-peer receive state of the reliability layer. */
    struct PeerRx
    {
        /** Highest sequence delivered in order. */
        uint32_t delivered = 0;

        /** Envelope held until the gap before it fills. */
        struct Held
        {
            std::vector<uint8_t> inner;
            uint64_t traceOp = 0;
            bool lastFrag = true;
        };
        std::map<uint32_t, Held> ahead;

        /** In-order fragments of a message still being reassembled. */
        std::vector<uint8_t> fragBuf;
    };

    /** Wrap @p inner in a SeqMsg, record it, arm its retransmit. */
    sim::Future<void> sendReliable(net::NodeId dst,
                                   std::vector<uint8_t> inner,
                                   sim::CpuCategory category,
                                   uint64_t traceOp);

    /**
     * Segment @p bytes into cells and push them through the TX path,
     * charging PIO. @p what labels the tx_frame trace span.
     *
     * @return Future resolved when the last cell enters the TX FIFO.
     */
    sim::Future<void> transmitBytes(net::NodeId dst,
                                    const std::vector<uint8_t> &bytes,
                                    const char *what,
                                    sim::CpuCategory category,
                                    uint64_t traceOp);

    /** Schedule the next retransmit probe for (dst, seq). */
    void armRetransmit(net::NodeId dst, uint32_t seq);

    /** Retransmit (dst, seq) or abandon it after maxAttempts. */
    void onRetransmitTimeout(net::NodeId dst, uint32_t seq);

    /** Receive one sequenced envelope: verify, dedup, order, ack. */
    void onSeqData(net::NodeId src, SeqMsg &&env, uint64_t traceOp);

    /** Receive a cumulative ack: retire covered envelopes. */
    void onAck(net::NodeId src, uint32_t cumSeq);

    /**
     * Accept one in-order envelope payload: buffer it if more
     * fragments follow; otherwise decode and route the reassembled
     * inner message.
     */
    void deliverInner(net::NodeId src, const std::vector<uint8_t> &inner,
                      bool lastFrag, uint64_t traceOp);

    /** Transmit a cumulative ack mirroring our receive state. */
    void sendAck(net::NodeId dst);

    mem::Node &node_;
    CostModel costs_;
    Handler rmemHandler_;
    Handler rpcHandler_;
    net::Aal5Reassembler reassembler_;
    std::unordered_set<net::NodeId> swappedPeers_;
    bool draining_ = false;
    bool reliable_ = false;
    ReliabilityParams relParams_;
    std::unordered_map<net::NodeId, PeerTx> peerTx_;
    std::unordered_map<net::NodeId, PeerRx> peerRx_;
    sim::Counter msgsSent_;
    sim::Counter msgsReceived_;
    sim::Counter bytesSent_;
    sim::Counter decodeErrors_;
    sim::Counter retransmits_;
    sim::Counter dupsDropped_;
    sim::Counter sendFailures_;
    sim::Counter acksSent_;
    sim::Counter corruptEnvelopes_;
    sim::Counter fragmentsSent_;
};

} // namespace remora::rmem
