#include "rmem/engine.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "net/aal5.h"
#include "obs/trace.h"
#include "rmem/race_detector.h"
#include "sim/logger.h"
#include "util/panic.h"

namespace remora::rmem {

/** Shared progress of one served vectored request. */
struct RmemEngine::VectorServeState
{
    net::NodeId src = 0;
    ReqId reqId = 0;
    bool wantResponse = false;
    uint64_t op = 0;
    obs::SpanId span = obs::kNoSpan;
    std::vector<VectorSubResult> results;
    /** Valid sub-ops whose stage-2 event has not completed yet. */
    size_t remaining = 0;
    /**
     * Notifications queued per destination segment, flushed as one
     * doorbell per channel when the last sub-op completes. Keyed by
     * slot id (deterministic order; re-resolved at flush so a segment
     * revoked mid-batch cannot dangle).
     */
    std::map<SegmentId, std::vector<Notification>> notify;
};

namespace {

/** Pages a [offset, offset+count) range touches (for translate cost). */
sim::Duration
translateCost(const CostModel &costs, uint64_t offset, uint64_t count)
{
    if (count == 0) {
        return costs.translatePageCost;
    }
    uint64_t first = offset / mem::kPageBytes;
    uint64_t last = (offset + count - 1) / mem::kPageBytes;
    return static_cast<sim::Duration>(last - first + 1) *
           costs.translatePageCost;
}

} // namespace

RmemEngine::RmemEngine(mem::Node &node, const CostModel &costs)
    : node_(node), costs_(costs), wire_(node, costs),
      table_(node.cpu(), costs_)
{
    wire_.setRmemHandler(
        [this](net::NodeId src, Message &&msg) { onMessage(src, std::move(msg)); });
}

// ----------------------------------------------------------------------
// Export-side kernel calls
// ----------------------------------------------------------------------

util::Result<ImportedSegment>
RmemEngine::exportSegment(mem::Process &owner, mem::Vaddr base, uint32_t size,
                          Rights rights, NotifyPolicy policy,
                          const std::string &name)
{
    if (size == 0) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "zero-size segment");
    }
    if (!owner.space().isMapped(base, size)) {
        return util::Status(util::ErrorCode::kOutOfBounds,
                            "segment range not mapped");
    }
    util::Status pinned = owner.space().pin(base, size);
    if (!pinned.ok()) {
        return pinned;
    }
    auto slot = table_.allocate(owner.pid(), base, size, rights, policy, name);
    if (!slot.ok()) {
        owner.space().unpin(base, size);
        return slot.status();
    }
    // Kernel-call CPU cost: trap, table setup, page pinning.
    node_.cpu().post(costs_.trapOverhead + costs_.validateCost +
                         translateCost(costs_, 0, size),
                     sim::CpuCategory::kOther);
    const SegmentDescriptor *d = table_.get(slot.value());
    REMORA_ASSERT(d != nullptr);
    d->channel->setTraceNode(node_.name());
    d->channel->setHangLabel(node_.name() + ":" + name + " notify fd");
    if (RaceDetector::on()) {
        // Shadow the segment, attribute the channel's consumers to
        // this node, and let the detector see the exporter's own
        // loads/stores through the space's access observer. The
        // observer stays cheap when the detector is later disarmed.
        RaceDetector::instance().registerSegment(
            node_.id(), slot.value(), owner.pid(), base, size, name);
        d->channel->setRaceContext(node_.id());
        if (!owner.space().hasAccessObserver()) {
            mem::Node *nodePtr = &node_;
            mem::Pid pid = owner.pid();
            owner.space().setAccessObserver(
                [nodePtr, pid](bool write, mem::Vaddr va, size_t len) {
                    if (!RaceDetector::on()) {
                        return;
                    }
                    RaceDetector::instance().onLocalAccess(
                        nodePtr->id(), pid, write, va, len,
                        nodePtr->simulator().now());
                });
        }
    }
    return ImportedSegment{node_.id(), slot.value(), d->generation, size,
                           rights};
}

util::Status
RmemEngine::revokeSegment(SegmentId id)
{
    SegmentDescriptor *d = table_.get(id);
    if (d == nullptr) {
        return util::Status(util::ErrorCode::kBadDescriptor,
                            "revoke of invalid segment");
    }
    if (mem::Process *owner = ownerOf(*d)) {
        owner->space().unpin(d->base, d->size);
    }
    if (RaceDetector::on()) {
        RaceDetector::instance().unregisterSegment(node_.id(), id);
    }
    node_.cpu().post(costs_.trapOverhead + costs_.validateCost,
                     sim::CpuCategory::kOther);
    return table_.release(id);
}

util::Status
RmemEngine::setWriteInhibit(SegmentId id, bool inhibit)
{
    SegmentDescriptor *d = table_.get(id);
    if (d == nullptr) {
        return util::Status(util::ErrorCode::kBadDescriptor, "no segment");
    }
    d->writeInhibited = inhibit;
    return {};
}

util::Status
RmemEngine::setNotifyPolicy(SegmentId id, NotifyPolicy policy)
{
    SegmentDescriptor *d = table_.get(id);
    if (d == nullptr) {
        return util::Status(util::ErrorCode::kBadDescriptor, "no segment");
    }
    d->policy = policy;
    return {};
}

NotificationChannel *
RmemEngine::channel(SegmentId id)
{
    SegmentDescriptor *d = table_.get(id);
    return d ? d->channel.get() : nullptr;
}

SegmentDescriptor *
RmemEngine::descriptor(SegmentId id)
{
    return table_.get(id);
}

util::Result<ImportedSegment>
RmemEngine::localHandle(SegmentId id) const
{
    const SegmentDescriptor *d = table_.get(id);
    if (d == nullptr) {
        return util::Status(util::ErrorCode::kBadDescriptor, "no segment");
    }
    return ImportedSegment{node_.id(), id, d->generation, d->size, d->rights};
}

// ----------------------------------------------------------------------
// Meta-instructions (initiator side)
// ----------------------------------------------------------------------

sim::Task<util::Status>
RmemEngine::write(ImportedSegment dst, uint32_t offset,
                  std::vector<uint8_t> data, bool notify)
{
    stats_.writesIssued.inc();
    node_.simulator().noteDigest("rmem.write", dst.node << 8 | dst.descriptor);
    if (!hasRights(dst.rights, Rights::kWrite)) {
        co_return util::Status(util::ErrorCode::kAccessDenied,
                               "import lacks write right");
    }
    if (static_cast<uint64_t>(offset) + data.size() > dst.size) {
        co_return util::Status(util::ErrorCode::kOutOfBounds,
                               "write outside imported segment");
    }

    sim::Time start = node_.simulator().now();
    uint64_t opId = 0;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, node_.name(), "rmem", "write",
                       "bytes=" + std::to_string(data.size()) + " dst=" +
                           std::to_string(dst.node));
    }

    // Sender-side emulation: trap + rights verification. Op passed
    // explicitly: the coroutine resumes outside any ambient scope.
    obs::SpanId issueSpan = obs::kNoSpan;
    if (opId != 0) {
        issueSpan = obs::TraceRecorder::instance().beginSpanFor(
            opId, node_.name(), "rmem", "issue");
    }
    co_await node_.cpu().use(costs_.trapOverhead + costs_.validateCost,
                             sim::CpuCategory::kOther);
    obs::TraceRecorder::instance().endSpan(issueSpan);

    size_t pos = 0;
    do {
        size_t chunk = std::min(data.size() - pos, kBlockDataMax);
        WriteReq req;
        req.descriptor = dst.descriptor;
        req.generation = dst.generation;
        req.offset = offset + static_cast<uint32_t>(pos);
        req.notify = notify && (pos + chunk == data.size());
        req.data.assign(data.begin() + static_cast<ptrdiff_t>(pos),
                        data.begin() + static_cast<ptrdiff_t>(pos + chunk));
        auto accepted = wire_.send(dst.node, Message(std::move(req)),
                                   sim::CpuCategory::kDataReply, opId);
        pos += chunk;
        if (pos >= data.size()) {
            // Local completion: data accepted by the network.
            co_await accepted;
            break;
        }
    } while (true);
    // Local completion never waits on the wire or the remote NIC, so
    // the whole latency is software.
    recordOp(metrics_.write, start, 0, 0);
    if (opId != 0) {
        obs::TraceRecorder::instance().asyncEnd(opId, node_.name(), "rmem",
                                                "write");
    }
    co_return util::Status();
}

sim::Task<ReadOutcome>
RmemEngine::read(ImportedSegment src, uint32_t srcOff, SegmentId dstSeg,
                 uint32_t dstOff, uint32_t count, bool notify,
                 sim::Duration timeout)
{
    stats_.readsIssued.inc();
    node_.simulator().noteDigest("rmem.read", src.node << 8 | src.descriptor);
    if (!hasRights(src.rights, Rights::kRead)) {
        co_return ReadOutcome{util::Status(util::ErrorCode::kAccessDenied,
                                           "import lacks read right"),
                              {}};
    }
    if (static_cast<uint64_t>(srcOff) + count > src.size) {
        co_return ReadOutcome{util::Status(util::ErrorCode::kOutOfBounds,
                                           "read outside imported segment"),
                              {}};
    }
    SegmentDescriptor *dst = table_.get(dstSeg);
    if (dst == nullptr) {
        co_return ReadOutcome{util::Status(util::ErrorCode::kBadDescriptor,
                                           "bad local destination segment"),
                              {}};
    }
    if (static_cast<uint64_t>(dstOff) + count > dst->size) {
        co_return ReadOutcome{
            util::Status(util::ErrorCode::kOutOfBounds,
                         "destination outside local segment"),
            {}};
    }

    sim::Time start = node_.simulator().now();
    uint64_t opId = 0;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, node_.name(), "rmem", "read",
                       "count=" + std::to_string(count) + " src=" +
                           std::to_string(src.node));
    }
    // Model-derived phase estimates, accumulated per chunk.
    sim::Duration wireTime = 0;
    sim::Duration controllerTime = 0;

    obs::SpanId issueSpan = obs::kNoSpan;
    if (opId != 0) {
        issueSpan = obs::TraceRecorder::instance().beginSpanFor(
            opId, node_.name(), "rmem", "issue");
    }
    co_await node_.cpu().use(costs_.trapOverhead + costs_.validateCost,
                             sim::CpuCategory::kOther);
    obs::TraceRecorder::instance().endSpan(issueSpan);

    ReadOutcome total{util::Status(), {}};
    total.data.reserve(count);
    mem::Pid dstPid = dst->ownerPid;
    mem::Vaddr dstBase = dst->base;

    uint32_t pos = 0;
    while (pos < count || (count == 0 && pos == 0)) {
        uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(count - pos, kBlockDataMax));
        ReqId id = allocReqId();
        bool lastChunk = (pos + chunk >= count);

        auto [it, inserted] = pendingReads_.try_emplace(
            id, PendingRead{dstPid, dstBase + dstOff + pos,
                            sim::Promise<ReadOutcome>(node_.simulator()),
                            0, notify && lastChunk, dstSeg});
        REMORA_ASSERT(inserted);
        auto fut = it->second.done.future();
        if (timeout > 0) {
            it->second.timeoutEvent =
                node_.simulator().schedule(timeout, [this, id] {
                    auto pit = pendingReads_.find(id);
                    if (pit == pendingReads_.end()) {
                        return;
                    }
                    PendingRead p = std::move(pit->second);
                    pendingReads_.erase(pit);
                    stats_.timeouts.inc();
                    p.done.set(ReadOutcome{
                        util::Status(util::ErrorCode::kTimeout,
                                     "remote read timed out"),
                        {}});
                });
        }

        ReadReq req;
        req.srcDescriptor = src.descriptor;
        req.generation = src.generation;
        req.srcOffset = srcOff + pos;
        req.dstDescriptor = dstSeg;
        req.dstOffset = dstOff + pos;
        req.count = static_cast<uint16_t>(chunk);
        req.reqId = id;
        req.notify = notify && lastChunk;
        wire_.send(src.node, Message(req), sim::CpuCategory::kDataReply,
                   opId);

        // One request cell out; the response is one raw cell when it
        // fits, otherwise an AAL5 frame. Each chunk also pays a server
        // RX interrupt and a local RX interrupt (the controller phase).
        size_t respBytes = chunk + 6;
        wireTime += modelWireTime(1, respBytes <= net::Cell::kPayloadBytes
                                         ? 1
                                         : net::aal5CellCount(respBytes));
        controllerTime += 2 * node_.nic().interruptLatency();

        ReadOutcome part = co_await fut;
        if (!part.status.ok()) {
            if (opId != 0) {
                obs::TraceRecorder::instance().asyncEnd(
                    opId, node_.name(), "rmem", "read",
                    part.status.message());
            }
            co_return ReadOutcome{part.status, std::move(total.data)};
        }
        total.data.insert(total.data.end(), part.data.begin(),
                          part.data.end());
        pos += chunk;
        if (count == 0) {
            break;
        }
    }
    recordOp(metrics_.read, start, wireTime, controllerTime);
    if (opId != 0) {
        obs::TraceRecorder::instance().asyncEnd(opId, node_.name(), "rmem",
                                                "read");
    }
    co_return total;
}

sim::Task<CasOutcome>
RmemEngine::cas(ImportedSegment dst, uint32_t offset, uint32_t oldValue,
                uint32_t newValue, SegmentId resultSeg, uint32_t resultOff,
                sim::Duration timeout)
{
    stats_.casIssued.inc();
    node_.simulator().noteDigest("rmem.cas", dst.node << 8 | dst.descriptor);
    if (!hasRights(dst.rights, Rights::kCas)) {
        co_return CasOutcome{util::Status(util::ErrorCode::kAccessDenied,
                                          "import lacks CAS right"),
                             false, 0};
    }
    if (offset % 4 != 0 ||
        static_cast<uint64_t>(offset) + 4 > dst.size) {
        co_return CasOutcome{util::Status(util::ErrorCode::kOutOfBounds,
                                          "CAS target invalid"),
                             false, 0};
    }
    SegmentDescriptor *result = table_.get(resultSeg);
    if (result == nullptr || resultOff % 4 != 0 ||
        static_cast<uint64_t>(resultOff) + 4 > result->size) {
        co_return CasOutcome{util::Status(util::ErrorCode::kInvalidArgument,
                                          "CAS result location invalid"),
                             false, 0};
    }

    sim::Time start = node_.simulator().now();
    uint64_t opId = 0;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, node_.name(), "rmem", "cas",
                       "dst=" + std::to_string(dst.node));
    }

    obs::SpanId issueSpan = obs::kNoSpan;
    if (opId != 0) {
        issueSpan = obs::TraceRecorder::instance().beginSpanFor(
            opId, node_.name(), "rmem", "issue");
    }
    co_await node_.cpu().use(costs_.trapOverhead + costs_.validateCost,
                             sim::CpuCategory::kOther);
    obs::TraceRecorder::instance().endSpan(issueSpan);

    ReqId id = allocReqId();
    auto [it, inserted] = pendingCas_.try_emplace(
        id, PendingCas{result->ownerPid, result->base + resultOff,
                       sim::Promise<CasOutcome>(node_.simulator()), 0});
    REMORA_ASSERT(inserted);
    auto fut = it->second.done.future();
    if (timeout > 0) {
        it->second.timeoutEvent =
            node_.simulator().schedule(timeout, [this, id] {
                auto pit = pendingCas_.find(id);
                if (pit == pendingCas_.end()) {
                    return;
                }
                PendingCas p = std::move(pit->second);
                pendingCas_.erase(pit);
                stats_.timeouts.inc();
                p.done.set(CasOutcome{util::Status(util::ErrorCode::kTimeout,
                                                   "remote CAS timed out"),
                                      false, 0});
            });
    }

    CasReq req;
    req.descriptor = dst.descriptor;
    req.generation = dst.generation;
    req.offset = offset;
    req.oldValue = oldValue;
    req.newValue = newValue;
    req.resultDescriptor = resultSeg;
    req.resultOffset = resultOff;
    req.reqId = id;
    wire_.send(dst.node, Message(req), sim::CpuCategory::kDataReply, opId);

    CasOutcome out = co_await fut;
    if (out.status.ok()) {
        // Single-cell exchange: one request, one response, two NIC
        // interrupts on the critical path.
        recordOp(metrics_.cas, start, modelWireTime(1, 1),
                 2 * node_.nic().interruptLatency());
    }
    if (opId != 0) {
        obs::TraceRecorder::instance().asyncEnd(opId, node_.name(), "rmem",
                                                "cas", out.status.message());
    }
    co_return out;
}

// ----------------------------------------------------------------------
// Vectored meta-instructions (initiator side)
// ----------------------------------------------------------------------

sim::Task<VectorOutcome>
RmemEngine::issueVector(VectorBatch batch, sim::Duration timeout)
{
    size_t n = batch.ops.size();
    if (n == 0) {
        co_return VectorOutcome{util::Status(), {}};
    }
    stats_.vectorsIssued.inc();
    stats_.vectorSubOps.inc(n);
    node_.simulator().noteDigest(
        "rmem.vector", (static_cast<uint64_t>(batch.target) << 8) | n);
    if (n > kMaxVectorOps || batch.local.size() != n) {
        co_return VectorOutcome{
            util::Status(util::ErrorCode::kInvalidArgument,
                         "malformed vector batch"),
            {}};
    }

    VectorReq req;
    req.ops = std::move(batch.ops);
    if (encodedVectorSize(req) > kBlockDataMax ||
        encodedVectorRespSize(req) > kBlockDataMax) {
        co_return VectorOutcome{
            util::Status(util::ErrorCode::kResource,
                         "vector batch exceeds frame budget"),
            {}};
    }

    // Resolve local deposit coordinates up front, like scalar read():
    // the destination process/address is fixed at issue time.
    bool wantResponse = false;
    std::vector<VectorDeposit> deposits(n);
    for (size_t i = 0; i < n; ++i) {
        const VectorSubOp &sub = req.ops[i];
        if (sub.kind == VecOpKind::kWrite) {
            continue;
        }
        wantResponse = true;
        const VectorLocalDeposit &loc = batch.local[i];
        SegmentDescriptor *dst = table_.get(loc.dstSeg);
        uint32_t bytes = sub.kind == VecOpKind::kRead ? sub.count : 4;
        if (dst == nullptr ||
            static_cast<uint64_t>(loc.dstOff) + bytes > dst->size ||
            (sub.kind == VecOpKind::kCas && loc.dstOff % 4 != 0)) {
            co_return VectorOutcome{
                util::Status(util::ErrorCode::kInvalidArgument,
                             "vector deposit location invalid"),
                {}};
        }
        deposits[i] =
            VectorDeposit{true,       sub.kind,   dst->ownerPid,
                          dst->base + loc.dstOff, loc.notify, loc.dstSeg};
    }

    sim::Time start = node_.simulator().now();
    uint64_t opId = 0;
    if (obs::TraceRecorder::on()) {
        auto &rec = obs::TraceRecorder::instance();
        opId = rec.newAsyncId();
        rec.asyncBegin(opId, node_.name(), "rmem", "vector",
                       "ops=" + std::to_string(n) + " dst=" +
                           std::to_string(batch.target));
    }

    // ONE trap + header + validation for the batch; every sub-op after
    // the first pays only its marginal issue cost. This is the entire
    // amortization the vectored path exists for.
    obs::SpanId issueSpan = obs::kNoSpan;
    if (opId != 0) {
        issueSpan = obs::TraceRecorder::instance().beginSpanFor(
            opId, node_.name(), "rmem", "issue");
    }
    co_await node_.cpu().use(costs_.trapOverhead + costs_.validateCost +
                                 static_cast<sim::Duration>(n) *
                                     costs_.vectorSubOpIssueCost,
                             sim::CpuCategory::kOther);
    obs::TraceRecorder::instance().endSpan(issueSpan);

    size_t reqBytes = encodedVectorSize(req);
    size_t respBytes = encodedVectorRespSize(req);

    if (!wantResponse) {
        // Pure-write batch: local completion when the frame is accepted
        // by the network; target-side failures NAK like scalar writes.
        req.reqId = 0;
        auto accepted = wire_.send(batch.target, Message(std::move(req)),
                                   sim::CpuCategory::kDataReply, opId);
        co_await accepted;
        recordOp(metrics_.vector, start, 0, 0);
        if (opId != 0) {
            obs::TraceRecorder::instance().asyncEnd(opId, node_.name(),
                                                    "rmem", "vector");
        }
        co_return VectorOutcome{util::Status(), {}};
    }

    ReqId id = allocReqId();
    req.reqId = id;
    auto [it, inserted] = pendingVectors_.try_emplace(
        id, PendingVector{std::move(deposits),
                          sim::Promise<VectorOutcome>(node_.simulator()),
                          0});
    REMORA_ASSERT(inserted);
    auto fut = it->second.done.future();
    if (timeout > 0) {
        it->second.timeoutEvent =
            node_.simulator().schedule(timeout, [this, id] {
                auto pit = pendingVectors_.find(id);
                if (pit == pendingVectors_.end()) {
                    return;
                }
                PendingVector p = std::move(pit->second);
                pendingVectors_.erase(pit);
                stats_.timeouts.inc();
                p.done.set(VectorOutcome{
                    util::Status(util::ErrorCode::kTimeout,
                                 "vectored op timed out"),
                    {}});
            });
    }

    wire_.send(batch.target, Message(std::move(req)),
               sim::CpuCategory::kDataReply, opId);
    // One request frame out, one response frame back, two NIC
    // interrupts on the critical path — for the whole batch.
    sim::Duration wireTime = modelWireTime(
        reqBytes <= net::Cell::kPayloadBytes ? 1
                                             : net::aal5CellCount(reqBytes),
        respBytes <= net::Cell::kPayloadBytes
            ? 1
            : net::aal5CellCount(respBytes));
    sim::Duration controllerTime = 2 * node_.nic().interruptLatency();

    VectorOutcome out = co_await fut;
    if (out.status.ok()) {
        recordOp(metrics_.vector, start, wireTime, controllerTime);
    }
    if (opId != 0) {
        obs::TraceRecorder::instance().asyncEnd(
            opId, node_.name(), "rmem", "vector", out.status.message());
    }
    co_return out;
}

sim::Task<util::Status>
RmemEngine::writev(std::vector<BatchBuilder::Write> ops)
{
    BatchBuilder b(*this);
    for (BatchBuilder::Write &op : ops) {
        util::Status s = b.addWrite(std::move(op));
        if (!s.ok()) {
            co_return s;
        }
    }
    VectorOutcome out = co_await b.issue();
    co_return out.status;
}

sim::Task<VectorOutcome>
RmemEngine::readv(std::vector<BatchBuilder::Read> ops, sim::Duration timeout)
{
    BatchBuilder b(*this);
    for (const BatchBuilder::Read &op : ops) {
        util::Status s = b.addRead(op);
        if (!s.ok()) {
            co_return VectorOutcome{s, {}};
        }
    }
    VectorOutcome out = co_await b.issue(timeout);
    co_return out;
}

sim::Task<VectorOutcome>
RmemEngine::casv(std::vector<BatchBuilder::Cas> ops, sim::Duration timeout)
{
    BatchBuilder b(*this);
    for (const BatchBuilder::Cas &op : ops) {
        util::Status s = b.addCas(op);
        if (!s.ok()) {
            co_return VectorOutcome{s, {}};
        }
    }
    VectorOutcome out = co_await b.issue(timeout);
    co_return out;
}

// ----------------------------------------------------------------------
// Serving side
// ----------------------------------------------------------------------

void
RmemEngine::onMessage(net::NodeId src, Message &&msg)
{
    struct Visitor
    {
        RmemEngine *eng;
        net::NodeId src;
        void operator()(WriteReq &m) { eng->serveWrite(src, std::move(m)); }
        void operator()(ReadReq &m) { eng->serveRead(src, std::move(m)); }
        void operator()(ReadResp &m) { eng->completeRead(src, std::move(m)); }
        void operator()(CasReq &m) { eng->serveCas(src, std::move(m)); }
        void operator()(CasResp &m) { eng->completeCas(src, std::move(m)); }
        void operator()(Nak &m) { eng->handleNak(src, m); }
        void operator()(VectorReq &m) { eng->serveVector(src, std::move(m)); }
        void operator()(VectorResp &m)
        {
            eng->completeVector(src, std::move(m));
        }
        void operator()(RpcMsg &) {
            REMORA_PANIC("RPC message routed to rmem engine");
        }
        void operator()(SeqMsg &) {
            REMORA_PANIC("reliability envelope leaked past the wire");
        }
        void operator()(AckMsg &) {
            REMORA_PANIC("reliability ack leaked past the wire");
        }
    };
    std::visit(Visitor{this, src}, msg);
}

void
RmemEngine::serveWrite(net::NodeId src, WriteReq &&req)
{
    stats_.requestsServed.inc();
    // Span from dispatch to the copy's completion (or the NAK).
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "serve_write",
            "bytes=" + std::to_string(req.data.size()) + " from=" +
                std::to_string(src));
    }
    // The dispatch runs under route()'s OpScope; deferred stages must
    // carry the op themselves and re-establish it, so the NAK/notify/
    // reply sends they make still join the initiator's DAG.
    uint64_t op = obs::TraceRecorder::currentOp();
    auto &cpu = node_.cpu();
    // The whole serve chain (validation, copy, notify) operates on this
    // byte range; later stages inherit the hint through their events.
    sim::Simulator::HintScope hintScope(
        node_.simulator(),
        sim::DepHint::segRange(
            (static_cast<uint64_t>(node_.id()) << 8) | req.descriptor,
            req.offset, req.offset + static_cast<uint32_t>(req.data.size())));
    // Stage 1: demux + validation.
    cpu.post(costs_.msgHandleCost + costs_.validateCost,
             sim::CpuCategory::kDataReceive,
             [this, src, span, op, req = std::move(req)]() mutable {
                 obs::OpScope opScope(op);
                 auto v = table_.validate(req.descriptor, req.generation,
                                          req.offset, req.data.size(),
                                          Rights::kWrite);
                 if (!v.ok()) {
                     sendNak(src, 0, v.status().code(),
                             req.data.size() <= kSmallWriteMax
                                 ? MsgType::kWriteSmall
                                 : MsgType::kWriteBlock);
                     obs::TraceRecorder::instance().endSpan(span);
                     return;
                 }
                 // Stage 2: translation + copy into the owner's space.
                 auto &cpu2 = node_.cpu();
                 sim::Duration cost =
                     translateCost(costs_, req.offset, req.data.size()) +
                     costs_.copyCost(req.data.size());
                 cpu2.post(cost, sim::CpuCategory::kDataReceive,
                           [this, src, span, op,
                            req = std::move(req)]() mutable {
                               obs::OpScope opScope(op);
                               // Re-validate: the segment may have been
                               // revoked while the copy was in flight.
                               auto v2 = table_.validate(
                                   req.descriptor, req.generation, req.offset,
                                   req.data.size(), Rights::kWrite);
                               if (!v2.ok()) {
                                   sendNak(src, 0, v2.status().code(),
                                           MsgType::kWriteBlock);
                                   obs::TraceRecorder::instance().endSpan(
                                       span);
                                   return;
                               }
                               SegmentDescriptor *d = v2.value();
                               mem::Process *owner = ownerOf(*d);
                               if (owner == nullptr) {
                                   sendNak(src, 0,
                                           util::ErrorCode::kBadDescriptor,
                                           MsgType::kWriteBlock);
                                   obs::TraceRecorder::instance().endSpan(
                                       span);
                                   return;
                               }
                               // The applied store belongs to the
                               // *initiating* node's happens-before
                               // timeline, as does the notify release.
                               RaceDetector::ScopedActor raceScope(
                                   src, "rmem serve_write from node " +
                                            std::to_string(src));
                               util::Status ws = owner->space().write(
                                   d->base + req.offset, req.data);
                               REMORA_ASSERT(ws.ok());
                               maybeNotify(
                                   *d, req.notify,
                                   Notification{src, NotifyKind::kWrite,
                                                req.offset,
                                                static_cast<uint32_t>(
                                                    req.data.size())});
                               obs::TraceRecorder::instance().endSpan(span);
                           });
             });
}

void
RmemEngine::serveRead(net::NodeId src, ReadReq &&req)
{
    stats_.requestsServed.inc();
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "serve_read",
            "count=" + std::to_string(req.count) + " from=" +
                std::to_string(src));
    }
    uint64_t op = obs::TraceRecorder::currentOp();
    auto &cpu = node_.cpu();
    sim::Simulator::HintScope hintScope(
        node_.simulator(),
        sim::DepHint::segRange(
            (static_cast<uint64_t>(node_.id()) << 8) | req.srcDescriptor,
            req.srcOffset, req.srcOffset + req.count));
    cpu.post(costs_.msgHandleCost + costs_.validateCost,
             sim::CpuCategory::kDataReceive,
             [this, src, span, op, req]() mutable {
                 obs::OpScope opScope(op);
                 auto v = table_.validate(req.srcDescriptor, req.generation,
                                          req.srcOffset, req.count,
                                          Rights::kRead);
                 if (!v.ok()) {
                     sendNak(src, req.reqId, v.status().code(),
                             MsgType::kReadReq);
                     obs::TraceRecorder::instance().endSpan(span);
                     return;
                 }
                 // Read-out: translation + copy, then the reply transfer.
                 sim::Duration cost =
                     translateCost(costs_, req.srcOffset, req.count) +
                     costs_.copyCost(req.count);
                 node_.cpu().post(
                     cost, sim::CpuCategory::kDataReply,
                     [this, src, span, op, req]() mutable {
                         obs::OpScope opScope(op);
                         auto v2 = table_.validate(req.srcDescriptor,
                                                   req.generation,
                                                   req.srcOffset, req.count,
                                                   Rights::kRead);
                         if (!v2.ok()) {
                             sendNak(src, req.reqId, v2.status().code(),
                                     MsgType::kReadReq);
                             obs::TraceRecorder::instance().endSpan(span);
                             return;
                         }
                         SegmentDescriptor *d = v2.value();
                         mem::Process *owner = ownerOf(*d);
                         if (owner == nullptr) {
                             sendNak(src, req.reqId,
                                     util::ErrorCode::kBadDescriptor,
                                     MsgType::kReadReq);
                             obs::TraceRecorder::instance().endSpan(span);
                             return;
                         }
                         ReadResp resp;
                         resp.reqId = req.reqId;
                         resp.status = util::ErrorCode::kOk;
                         resp.data.resize(req.count);
                         // The copy-out reads on behalf of the importer.
                         RaceDetector::ScopedActor raceScope(
                             src, "rmem serve_read from node " +
                                      std::to_string(src));
                         util::Status rs = owner->space().read(
                             d->base + req.srcOffset, resp.data);
                         REMORA_ASSERT(rs.ok());
                         wire_.send(src, Message(std::move(resp)),
                                    sim::CpuCategory::kDataReply);
                         // Exporter-side notification only under the
                         // always-notify policy; the request's notify bit
                         // asks for *reader*-side notification (§3.1.1).
                         if (d->policy == NotifyPolicy::kAlways) {
                             maybeNotify(*d, false,
                                         Notification{src, NotifyKind::kRead,
                                                      req.srcOffset,
                                                      req.count});
                         }
                         obs::TraceRecorder::instance().endSpan(span);
                     });
             });
}

void
RmemEngine::serveCas(net::NodeId src, CasReq &&req)
{
    stats_.requestsServed.inc();
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "serve_cas",
            "from=" + std::to_string(src));
    }
    uint64_t op = obs::TraceRecorder::currentOp();
    auto &cpu = node_.cpu();
    sim::Simulator::HintScope hintScope(
        node_.simulator(),
        sim::DepHint::syncWord(
            (static_cast<uint64_t>(node_.id()) << 8) | req.descriptor,
            req.offset));
    cpu.post(
        costs_.msgHandleCost + costs_.validateCost + costs_.casExecCost,
        sim::CpuCategory::kDataReceive, [this, src, span, op, req]() mutable {
            obs::OpScope opScope(op);
            auto v = table_.validate(req.descriptor, req.generation,
                                     req.offset, 4, Rights::kCas);
            if (!v.ok() || req.offset % 4 != 0) {
                sendNak(src, req.reqId,
                        v.ok() ? util::ErrorCode::kInvalidArgument
                               : v.status().code(),
                        MsgType::kCasReq);
                obs::TraceRecorder::instance().endSpan(span);
                return;
            }
            SegmentDescriptor *d = v.value();
            mem::Process *owner = ownerOf(*d);
            if (owner == nullptr) {
                sendNak(src, req.reqId, util::ErrorCode::kBadDescriptor,
                        MsgType::kCasReq);
                obs::TraceRecorder::instance().endSpan(span);
                return;
            }
            // A CAS target is by definition a synchronization word:
            // the read below acquires its clock and a successful swap
            // releases, so CAS-success pairs chain happens-before.
            if (RaceDetector::on()) {
                RaceDetector::instance().markSyncWord(
                    node_.id(), req.descriptor, req.offset);
            }
            RaceDetector::ScopedActor raceScope(
                src, "rmem serve_cas from node " + std::to_string(src));
            auto word = owner->space().readWord(d->base + req.offset);
            REMORA_ASSERT(word.ok());
            CasResp resp;
            resp.reqId = req.reqId;
            resp.observed = word.value();
            resp.success = (word.value() == req.oldValue);
            if (resp.success) {
                util::Status ws = owner->space().writeWord(
                    d->base + req.offset, req.newValue);
                REMORA_ASSERT(ws.ok());
            }
            wire_.send(src, Message(resp), sim::CpuCategory::kDataReply);
            maybeNotify(*d, req.notify,
                        Notification{src, NotifyKind::kCas, req.offset, 4});
            obs::TraceRecorder::instance().endSpan(span);
        });
}

void
RmemEngine::serveVector(net::NodeId src, VectorReq &&req)
{
    size_t n = req.ops.size();
    stats_.requestsServed.inc();
    stats_.vectorServed.inc();
    stats_.vectorSubOpsServed.inc(n);
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "serve_vector",
            "ops=" + std::to_string(n) + " from=" + std::to_string(src));
    }
    auto st = std::make_shared<VectorServeState>();
    st->src = src;
    st->reqId = req.reqId;
    st->wantResponse = (req.reqId != 0);
    st->op = obs::TraceRecorder::currentOp();
    st->span = span;
    st->results.resize(n);

    // Stage 1: ONE demux charge for the frame, one validateCost per
    // *distinct* (slot, generation, rights) key — the validation-cache
    // amortization — plus the per-sub-op marginal serve cost.
    sim::Duration stage1Cost =
        costs_.msgHandleCost +
        static_cast<sim::Duration>(distinctValidationKeys(req.ops)) *
            costs_.validateCost +
        static_cast<sim::Duration>(n) * costs_.vectorSubOpServeCost;
    node_.cpu().post(stage1Cost, sim::CpuCategory::kDataReceive,
                     [this, st, req = std::move(req)]() mutable {
                         obs::OpScope opScope(st->op);
                         executeVector(st, std::move(req));
                     });
}

void
RmemEngine::executeVector(const std::shared_ptr<VectorServeState> &st,
                          VectorReq &&req)
{
    size_t n = req.ops.size();
    ValidationCache cache(table_);
    std::vector<SegmentDescriptor *> descs(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
        const VectorSubOp &sub = req.ops[i];
        st->results[i].kind = sub.kind;
        uint64_t count = sub.kind == VecOpKind::kWrite ? sub.data.size()
                         : sub.kind == VecOpKind::kRead ? sub.count
                                                        : 4;
        auto v = cache.validate(sub.descriptor, sub.generation, sub.offset,
                                count, vecOpRights(sub.kind));
        if (!v.ok()) {
            st->results[i].status = v.status().code();
        } else if (sub.kind == VecOpKind::kCas && sub.offset % 4 != 0) {
            st->results[i].status = util::ErrorCode::kInvalidArgument;
        } else {
            descs[i] = v.value();
            ++st->remaining;
        }
    }
    stats_.vectorValidateHits.inc(cache.hits());
    if (st->remaining == 0) {
        // Nothing executable. Response-carrying batches report per-sub-op
        // status; a pure-write batch NAKs once like a scalar bad write.
        if (st->wantResponse) {
            finishVector(st);
        } else {
            sendNak(st->src, 0, st->results.empty()
                                    ? util::ErrorCode::kInvalidArgument
                                    : st->results.front().status,
                    MsgType::kVectorOp);
            obs::TraceRecorder::instance().endSpan(st->span);
        }
        return;
    }
    // Stage 2: one deferred event per valid sub-op, each carrying its
    // own byte-range DepHint so the explorer sees sub-op granularity.
    for (size_t i = 0; i < n; ++i) {
        if (descs[i] == nullptr) {
            continue;
        }
        VectorSubOp sub = std::move(req.ops[i]);
        uint64_t segKey =
            (static_cast<uint64_t>(node_.id()) << 8) | sub.descriptor;
        sim::Duration cost;
        sim::CpuCategory cat;
        std::optional<sim::Simulator::HintScope> hint;
        switch (sub.kind) {
          case VecOpKind::kWrite:
            cost = translateCost(costs_, sub.offset, sub.data.size()) +
                   costs_.copyCost(sub.data.size());
            cat = sim::CpuCategory::kDataReceive;
            hint.emplace(node_.simulator(),
                         sim::DepHint::segRange(
                             segKey, sub.offset,
                             sub.offset +
                                 static_cast<uint32_t>(sub.data.size())));
            break;
          case VecOpKind::kRead:
            cost = translateCost(costs_, sub.offset, sub.count) +
                   costs_.copyCost(sub.count);
            cat = sim::CpuCategory::kDataReply;
            hint.emplace(node_.simulator(),
                         sim::DepHint::segRange(segKey, sub.offset,
                                                sub.offset + sub.count));
            break;
          case VecOpKind::kCas:
            cost = translateCost(costs_, sub.offset, 4) + costs_.casExecCost;
            cat = sim::CpuCategory::kDataReceive;
            hint.emplace(node_.simulator(),
                         sim::DepHint::syncWord(segKey, sub.offset));
            break;
        }
        node_.cpu().post(cost, cat,
                         [this, st, i, sub = std::move(sub)]() mutable {
                             obs::OpScope opScope(st->op);
                             executeVectorSubOp(st, i, std::move(sub));
                         });
    }
}

void
RmemEngine::executeVectorSubOp(const std::shared_ptr<VectorServeState> &st,
                               size_t index, VectorSubOp &&sub)
{
    VectorSubResult &res = st->results[index];
    // Re-validate: the slot may have been revoked while the sub-op's
    // copy was in flight (mirrors the scalar two-stage serve).
    uint64_t count = sub.kind == VecOpKind::kWrite ? sub.data.size()
                     : sub.kind == VecOpKind::kRead ? sub.count
                                                    : 4;
    auto v = table_.validate(sub.descriptor, sub.generation, sub.offset,
                             count, vecOpRights(sub.kind));
    SegmentDescriptor *d = v.ok() ? v.value() : nullptr;
    mem::Process *owner = d != nullptr ? ownerOf(*d) : nullptr;
    if (owner == nullptr) {
        res.status = v.ok() ? util::ErrorCode::kBadDescriptor
                            : v.status().code();
        if (--st->remaining == 0) {
            finishVector(st);
        }
        return;
    }
    // Every sub-op store/load belongs to the initiating node's timeline
    // — the race detector sees per-sub-op byte-range accesses.
    RaceDetector::ScopedActor raceScope(
        st->src,
        "rmem serve_vector sub-op from node " + std::to_string(st->src));
    switch (sub.kind) {
      case VecOpKind::kWrite: {
        util::Status ws = owner->space().write(d->base + sub.offset,
                                               sub.data);
        REMORA_ASSERT(ws.ok());
        bool fire = d->policy == NotifyPolicy::kAlways ||
                    (d->policy == NotifyPolicy::kConditional && sub.notify);
        if (fire && d->channel) {
            st->notify[sub.descriptor].push_back(Notification{
                st->src, NotifyKind::kWrite, sub.offset,
                static_cast<uint32_t>(sub.data.size()), st->op});
        }
        break;
      }
      case VecOpKind::kRead: {
        res.data.resize(sub.count);
        util::Status rs = owner->space().read(d->base + sub.offset,
                                              res.data);
        REMORA_ASSERT(rs.ok());
        // Exporter-side notification only under always-notify; the
        // sub-op's notify bit asks for reader-side notification.
        if (d->policy == NotifyPolicy::kAlways && d->channel) {
            st->notify[sub.descriptor].push_back(
                Notification{st->src, NotifyKind::kRead, sub.offset,
                             sub.count, st->op});
        }
        break;
      }
      case VecOpKind::kCas: {
        if (RaceDetector::on()) {
            RaceDetector::instance().markSyncWord(node_.id(),
                                                  sub.descriptor,
                                                  sub.offset);
        }
        auto word = owner->space().readWord(d->base + sub.offset);
        REMORA_ASSERT(word.ok());
        res.observed = word.value();
        res.success = (word.value() == sub.oldValue);
        if (res.success) {
            util::Status ws = owner->space().writeWord(d->base + sub.offset,
                                                       sub.newValue);
            REMORA_ASSERT(ws.ok());
        }
        bool fire = d->policy == NotifyPolicy::kAlways ||
                    (d->policy == NotifyPolicy::kConditional && sub.notify);
        if (fire && d->channel) {
            st->notify[sub.descriptor].push_back(Notification{
                st->src, NotifyKind::kCas, sub.offset, 4, st->op});
        }
        break;
      }
    }
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "rmem", "vector_sub",
            "idx=" + std::to_string(index) + " kind=" +
                std::to_string(static_cast<int>(sub.kind)));
    }
    if (--st->remaining == 0) {
        finishVector(st);
    }
}

void
RmemEngine::finishVector(const std::shared_ptr<VectorServeState> &st)
{
    // Doorbell coalescing: all notify-marked sub-ops that landed in the
    // same segment's channel post as ONE batch — one dispatch charge,
    // one release edge — instead of one doorbell per sub-op. Channels
    // are re-resolved by slot here so a mid-batch revoke cannot leave a
    // dangling channel pointer.
    if (!st->notify.empty()) {
        RaceDetector::ScopedActor raceScope(
            st->src,
            "rmem vector notify from node " + std::to_string(st->src));
        for (auto &[segId, recs] : st->notify) {
            SegmentDescriptor *d = table_.get(segId);
            if (d == nullptr || !d->channel) {
                continue;
            }
            stats_.notificationsPosted.inc(recs.size());
            stats_.vectorDoorbells.inc();
            if (obs::TraceRecorder::on()) {
                obs::TraceRecorder::instance().instant(
                    node_.name(), "rmem", "notify_batch",
                    "records=" + std::to_string(recs.size()));
            }
            d->channel->postBatch(recs);
        }
        st->notify.clear();
    }
    if (st->wantResponse) {
        obs::OpScope opScope(st->op);
        VectorResp resp;
        resp.reqId = st->reqId;
        resp.results = std::move(st->results);
        wire_.send(st->src, Message(std::move(resp)),
                   sim::CpuCategory::kDataReply);
    }
    obs::TraceRecorder::instance().endSpan(st->span);
}

void
RmemEngine::completeRead(net::NodeId src, ReadResp &&resp)
{
    auto it = pendingReads_.find(resp.reqId);
    if (it == pendingReads_.end()) {
        return; // timed out or duplicate; drop silently
    }
    PendingRead p = std::move(it->second);
    pendingReads_.erase(it);
    if (p.timeoutEvent != 0) {
        node_.simulator().cancel(p.timeoutEvent);
    }
    // Deposit: demux + copy into the reader's address space.
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "deposit_read",
            "bytes=" + std::to_string(resp.data.size()));
    }
    uint64_t op = obs::TraceRecorder::currentOp();
    sim::Duration cost =
        costs_.msgHandleCost + costs_.copyCost(resp.data.size());
    node_.cpu().post(
        cost, sim::CpuCategory::kDataReceive,
        [this, src, span, op, p = std::move(p),
         data = std::move(resp.data)]() mutable {
            obs::OpScope opScope(op);
            mem::Process *proc = node_.findProcess(p.dstPid);
            if (proc != nullptr) {
                RaceDetector::ScopedActor raceScope(
                    node_.id(), "rmem deposit_read on node " +
                                    std::to_string(node_.id()));
                util::Status ws = proc->space().write(p.dstVa, data);
                REMORA_ASSERT(ws.ok());
            }
            if (p.notify) {
                if (NotificationChannel *ch = channel(p.dstSeg)) {
                    ch->post(Notification{src, NotifyKind::kRead, 0,
                                          static_cast<uint32_t>(data.size())});
                }
            }
            obs::TraceRecorder::instance().endSpan(span);
            p.done.set(ReadOutcome{util::Status(), std::move(data)});
        });
}

void
RmemEngine::completeCas(net::NodeId src, CasResp &&resp)
{
    (void)src;
    auto it = pendingCas_.find(resp.reqId);
    if (it == pendingCas_.end()) {
        return;
    }
    PendingCas p = std::move(it->second);
    pendingCas_.erase(it);
    if (p.timeoutEvent != 0) {
        node_.simulator().cancel(p.timeoutEvent);
    }
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "deposit_cas",
            resp.success ? "success" : "failure");
    }
    uint64_t op = obs::TraceRecorder::currentOp();
    node_.cpu().post(
        costs_.msgHandleCost + costs_.copyWordCost,
        sim::CpuCategory::kDataReceive,
        [this, span, op, p = std::move(p), resp]() mutable {
            obs::OpScope opScope(op);
            mem::Process *proc = node_.findProcess(p.resultPid);
            if (proc != nullptr) {
                util::Status ws = proc->space().writeWord(
                    p.resultVa, resp.success ? 1u : 0u);
                REMORA_ASSERT(ws.ok());
            }
            obs::TraceRecorder::instance().endSpan(span);
            p.done.set(
                CasOutcome{util::Status(), resp.success, resp.observed});
        });
}

void
RmemEngine::completeVector(net::NodeId src, VectorResp &&resp)
{
    auto it = pendingVectors_.find(resp.reqId);
    if (it == pendingVectors_.end()) {
        return; // timed out or duplicate; drop silently
    }
    PendingVector p = std::move(it->second);
    pendingVectors_.erase(it);
    if (p.timeoutEvent != 0) {
        node_.simulator().cancel(p.timeoutEvent);
    }
    if (resp.results.size() != p.deposits.size()) {
        p.done.set(VectorOutcome{
            util::Status(util::ErrorCode::kMalformed,
                         "vector response arity mismatch"),
            std::move(resp.results)});
        return;
    }
    obs::SpanId span = obs::kNoSpan;
    if (obs::TraceRecorder::on()) {
        span = obs::TraceRecorder::instance().beginSpan(
            node_.name(), "rmem", "deposit_vector",
            "results=" + std::to_string(resp.results.size()));
    }
    uint64_t op = obs::TraceRecorder::currentOp();
    // ONE deposit event for the whole batch: demux once, then copy each
    // successful READ payload / CAS result word into place.
    sim::Duration cost = costs_.msgHandleCost;
    for (size_t i = 0; i < resp.results.size(); ++i) {
        const VectorSubResult &r = resp.results[i];
        if (!p.deposits[i].active || r.status != util::ErrorCode::kOk) {
            continue;
        }
        cost += r.kind == VecOpKind::kRead ? costs_.copyCost(r.data.size())
                                           : costs_.copyWordCost;
    }
    node_.cpu().post(
        cost, sim::CpuCategory::kDataReceive,
        [this, src, span, op, p = std::move(p),
         results = std::move(resp.results)]() mutable {
            obs::OpScope opScope(op);
            RaceDetector::ScopedActor raceScope(
                node_.id(), "rmem deposit_vector on node " +
                                std::to_string(node_.id()));
            // Reader-side notifications coalesce per destination
            // segment, exactly like the serving side's doorbells.
            std::map<SegmentId, std::vector<Notification>> notify;
            for (size_t i = 0; i < results.size(); ++i) {
                const VectorDeposit &dep = p.deposits[i];
                const VectorSubResult &r = results[i];
                if (!dep.active || r.status != util::ErrorCode::kOk) {
                    continue;
                }
                mem::Process *proc = node_.findProcess(dep.pid);
                if (proc == nullptr) {
                    continue;
                }
                if (r.kind == VecOpKind::kRead) {
                    util::Status ws = proc->space().write(dep.va, r.data);
                    REMORA_ASSERT(ws.ok());
                    if (dep.notify) {
                        notify[dep.dstSeg].push_back(Notification{
                            src, NotifyKind::kRead, 0,
                            static_cast<uint32_t>(r.data.size()), op});
                    }
                } else if (r.kind == VecOpKind::kCas) {
                    util::Status ws = proc->space().writeWord(
                        dep.va, r.success ? 1u : 0u);
                    REMORA_ASSERT(ws.ok());
                }
            }
            for (auto &[segId, recs] : notify) {
                if (NotificationChannel *ch = channel(segId)) {
                    stats_.notificationsPosted.inc(recs.size());
                    stats_.vectorDoorbells.inc();
                    ch->postBatch(recs);
                }
            }
            obs::TraceRecorder::instance().endSpan(span);
            p.done.set(VectorOutcome{util::Status(), std::move(results)});
        });
}

void
RmemEngine::handleNak(net::NodeId src, const Nak &nak)
{
    stats_.naksReceived.inc();
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "rmem", "nak_rx",
            std::string(util::errorCodeName(nak.error)) + " from=" +
                std::to_string(src));
    }
    if (auto it = pendingReads_.find(nak.reqId); it != pendingReads_.end()) {
        PendingRead p = std::move(it->second);
        pendingReads_.erase(it);
        if (p.timeoutEvent != 0) {
            node_.simulator().cancel(p.timeoutEvent);
        }
        p.done.set(ReadOutcome{
            util::Status(nak.error, "remote rejected read"), {}});
        return;
    }
    if (auto it = pendingCas_.find(nak.reqId); it != pendingCas_.end()) {
        PendingCas p = std::move(it->second);
        pendingCas_.erase(it);
        if (p.timeoutEvent != 0) {
            node_.simulator().cancel(p.timeoutEvent);
        }
        p.done.set(CasOutcome{util::Status(nak.error, "remote rejected CAS"),
                              false, 0});
        return;
    }
    if (auto it = pendingVectors_.find(nak.reqId);
        it != pendingVectors_.end()) {
        PendingVector p = std::move(it->second);
        pendingVectors_.erase(it);
        if (p.timeoutEvent != 0) {
            node_.simulator().cancel(p.timeoutEvent);
        }
        p.done.set(VectorOutcome{
            util::Status(nak.error, "remote rejected vectored op"), {}});
        return;
    }
    // NAK for a write or an already-resolved request: counted above.
    REMORA_LOG(kDebug, "rmem",
               node_.name() << ": NAK " << util::errorCodeName(nak.error));
}

void
RmemEngine::sendNak(net::NodeId dst, ReqId reqId, util::ErrorCode error,
                    MsgType originalType)
{
    stats_.naksSent.inc();
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            node_.name(), "rmem", "nak_tx",
            std::string(util::errorCodeName(error)) + " dst=" +
                std::to_string(dst));
    }
    Nak nak;
    nak.reqId = reqId;
    nak.error = error;
    nak.originalType = originalType;
    wire_.send(dst, Message(nak), sim::CpuCategory::kDataReply);
}

void
RmemEngine::maybeNotify(SegmentDescriptor &d, bool requestNotify,
                        const Notification &n)
{
    bool fire = false;
    switch (d.policy) {
      case NotifyPolicy::kAlways:
        fire = true;
        break;
      case NotifyPolicy::kNever:
        fire = false;
        break;
      case NotifyPolicy::kConditional:
        fire = requestNotify;
        break;
    }
    if (fire && d.channel) {
        stats_.notificationsPosted.inc();
        if (obs::TraceRecorder::on()) {
            obs::TraceRecorder::instance().instant(
                node_.name(), "rmem", "notify",
                "offset=" + std::to_string(n.offset) + " len=" +
                    std::to_string(n.count));
        }
        d.channel->post(n);
    }
}

ReqId
RmemEngine::allocReqId()
{
    for (;;) {
        ReqId id = nextReqId_++;
        if (id == 0) {
            continue; // zero is reserved for id-less NAKs
        }
        if (pendingReads_.find(id) == pendingReads_.end() &&
            pendingCas_.find(id) == pendingCas_.end() &&
            pendingVectors_.find(id) == pendingVectors_.end()) {
            return id;
        }
    }
}

mem::Process *
RmemEngine::ownerOf(const SegmentDescriptor &d)
{
    return node_.findProcess(d.ownerPid);
}

sim::Duration
RmemEngine::modelWireTime(size_t cellsOut, size_t cellsBack) const
{
    net::Link *l = node_.nic().txLink();
    if (l == nullptr) {
        return 0;
    }
    // Symmetric-cluster assumption: the return path has the same rate
    // and propagation as the local TX link.
    sim::Duration t = static_cast<sim::Duration>(cellsOut + cellsBack) *
                      l->cellTime();
    if (cellsOut > 0) {
        t += l->propagation();
    }
    if (cellsBack > 0) {
        t += l->propagation();
    }
    return t;
}

void
RmemEngine::recordOp(OpPhaseStats &op, sim::Time start,
                     sim::Duration wireTime, sim::Duration controllerTime)
{
    sim::Duration total = node_.simulator().now() - start;
    double totalUs = sim::toUsec(total);
    op.latencyUs.sample(totalUs);
    op.totalUs.sample(totalUs);
    // Software is whatever the modeled wire and controller phases do
    // not account for; clamp against model over-estimates.
    sim::Duration software =
        std::max<sim::Duration>(0, total - wireTime - controllerTime);
    op.softwareUs.sample(sim::toUsec(software));
    op.wireUs.sample(sim::toUsec(wireTime));
    op.controllerUs.sample(sim::toUsec(controllerTime));
}

void
RmemEngine::registerStats(obs::MetricRegistry &reg,
                          const std::string &prefix) const
{
    reg.add(prefix + ".writes_issued", stats_.writesIssued);
    reg.add(prefix + ".reads_issued", stats_.readsIssued);
    reg.add(prefix + ".cas_issued", stats_.casIssued);
    reg.add(prefix + ".requests_served", stats_.requestsServed);
    reg.add(prefix + ".naks_sent", stats_.naksSent);
    reg.add(prefix + ".naks_received", stats_.naksReceived);
    reg.add(prefix + ".notifications_posted", stats_.notificationsPosted);
    reg.add(prefix + ".timeouts", stats_.timeouts);
    reg.add(prefix + ".vector.issued", stats_.vectorsIssued);
    reg.add(prefix + ".vector.sub_ops", stats_.vectorSubOps);
    reg.add(prefix + ".vector.served", stats_.vectorServed);
    reg.add(prefix + ".vector.sub_ops_served", stats_.vectorSubOpsServed);
    reg.add(prefix + ".vector.doorbells", stats_.vectorDoorbells);
    reg.add(prefix + ".vector.validate_hits", stats_.vectorValidateHits);
    auto addOp = [&reg, &prefix](const char *name, const OpPhaseStats &op) {
        std::string base = prefix + "." + name;
        reg.add(base + ".latency_us", op.latencyUs);
        reg.add(base + ".total_us", op.totalUs);
        reg.add(base + ".software_us", op.softwareUs);
        reg.add(base + ".wire_us", op.wireUs);
        reg.add(base + ".controller_us", op.controllerUs);
    };
    addOp("write", metrics_.write);
    addOp("read", metrics_.read);
    addOp("cas", metrics_.cas);
    addOp("vector", metrics_.vector);
    wire_.registerStats(reg, prefix + ".wire");
}

} // namespace remora::rmem
