#include "rmem/notification.h"

#include <utility>

#include "obs/trace.h"
#include "rmem/race_detector.h"
#include "util/panic.h"

namespace remora::rmem {

NotificationChannel::NotificationChannel(sim::CpuResource &cpu,
                                         const CostModel &costs)
    : cpu_(cpu), costs_(costs)
{
    wgId_ = waitGraph().channelOpen("");
    hangLabel_ = "channel#" + std::to_string(wgId_);
    waitGraph().channelLabel(wgId_, hangLabel_);
}

NotificationChannel::~NotificationChannel()
{
    // Counts survive in the wait graph: a destroyed channel with
    // undelivered notifications is still a lost wakeup.
    waitGraph().channelClose(wgId_);
}

void
NotificationChannel::setHangLabel(std::string label)
{
    hangLabel_ = std::move(label);
    waitGraph().channelLabel(wgId_, hangLabel_);
}

sim::Task<Notification>
NotificationChannel::next()
{
    if (queue_.empty()) {
        REMORA_ASSERT(!reader_); // single blocking reader
        struct Waiter
        {
            NotificationChannel *ch;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h) noexcept
            {
                ch->reader_ = h;
                ch->waitGraph().parked(ch,
                                       ch->hangLabel_ + " blocking read",
                                       ch->daemon_);
                ch->waitGraph().channelReader(ch->wgId_, true);
            }
            void await_resume() const noexcept {}
        };
        co_await Waiter{this};
        waitGraph().unparked(this);
        waitGraph().channelReader(wgId_, false);
    }
    REMORA_ASSERT(!queue_.empty());
    Notification n = queue_.front();
    queue_.pop_front();
    waitGraph().channelConsumed(wgId_);
    if (RaceDetector::on()) {
        // Consuming the record is the acquire side of the delivery edge.
        RaceDetector::instance().acquireToken(this, raceOwner_);
    }
    if (obs::TraceRecorder::on() && n.traceOp != 0 && !traceNode_.empty()) {
        // Adoption at consumption: links the reader to the op's DAG.
        obs::TraceRecorder::instance().instantFor(
            n.traceOp, traceNode_, "notify", "notify_consume", "kind=read");
    }
    co_return n;
}

bool
NotificationChannel::tryNext(Notification &out)
{
    if (queue_.empty()) {
        return false;
    }
    out = queue_.front();
    queue_.pop_front();
    waitGraph().channelConsumed(wgId_);
    if (RaceDetector::on()) {
        RaceDetector::instance().acquireToken(this, raceOwner_);
    }
    if (obs::TraceRecorder::on() && out.traceOp != 0 &&
        !traceNode_.empty()) {
        obs::TraceRecorder::instance().instantFor(
            out.traceOp, traceNode_, "notify", "notify_consume",
            "kind=poll");
    }
    return true;
}

void
NotificationChannel::setSignalHandler(
    std::function<void(const Notification &)> handler)
{
    signalHandler_ = std::move(handler);
}

void
NotificationChannel::post(const Notification &n)
{
    Notification rec = n;
    if (rec.traceOp == 0) {
        // The serving engine posts under the initiator op's OpScope.
        rec.traceOp = obs::TraceRecorder::currentOp();
    }
    ++delivered_;
    if (RaceDetector::on()) {
        // Posting releases the poster's clock into the channel: a
        // serve path posts on behalf of the initiating node (the
        // engine's ScopedActor is live here), so everything that node
        // did — including the store this notification announces —
        // happens-before the handler/reader that consumes it.
        auto &det = RaceDetector::instance();
        det.releaseToken(this, det.currentActor(raceOwner_));
    }
    // Everything downstream of this post — dispatch, handler, reader
    // wakeup — is a control-transfer op on *this* channel: hint it so
    // the explorer knows two posts on different channels commute.
    sim::Simulator::HintScope hintScope(simulator(),
                                        sim::DepHint::channel(wgId_));
    if (signalHandler_) {
        // Signal delivery: dispatch cost, then the handler upcall. The
        // op rides in the record and is re-established for the upcall
        // (adoption at notification delivery).
        cpu_.post(costs_.notifyDispatchCost,
                  sim::CpuCategory::kControlTransfer, [this, rec] {
                      if (RaceDetector::on()) {
                          RaceDetector::instance().acquireToken(this,
                                                                raceOwner_);
                      }
                      obs::OpScope opScope(rec.traceOp);
                      if (obs::TraceRecorder::on() && !traceNode_.empty()) {
                          obs::TraceRecorder::instance().instant(
                              traceNode_, "notify", "notify_deliver",
                              "kind=signal");
                      }
                      signalHandler_(rec);
                  });
        return;
    }
    queue_.push_back(rec);
    waitGraph().channelPosted(wgId_);
    wakeConsumers();
}

void
NotificationChannel::postBatch(std::span<const Notification> batch)
{
    if (batch.empty()) {
        return;
    }
    if (batch.size() == 1) {
        // Degenerate batch: identical to a scalar post (same cost, same
        // digest), so callers can batch unconditionally.
        post(batch.front());
        return;
    }
    uint64_t ambientOp = obs::TraceRecorder::currentOp();
    std::vector<Notification> recs(batch.begin(), batch.end());
    for (Notification &rec : recs) {
        if (rec.traceOp == 0) {
            rec.traceOp = ambientOp;
        }
    }
    delivered_ += recs.size();
    if (RaceDetector::on()) {
        // One release covers the whole batch: everything the posting
        // actor did before the doorbell — including every sub-op store
        // the records announce — happens-before each consumption.
        auto &det = RaceDetector::instance();
        det.releaseToken(this, det.currentActor(raceOwner_));
    }
    sim::Simulator::HintScope hintScope(simulator(),
                                        sim::DepHint::channel(wgId_));
    if (signalHandler_) {
        // ONE dispatch cost for the batch, then the upcall per record.
        cpu_.post(costs_.notifyDispatchCost,
                  sim::CpuCategory::kControlTransfer,
                  [this, recs = std::move(recs)] {
                      if (RaceDetector::on()) {
                          RaceDetector::instance().acquireToken(this,
                                                                raceOwner_);
                      }
                      for (const Notification &rec : recs) {
                          obs::OpScope opScope(rec.traceOp);
                          if (obs::TraceRecorder::on() &&
                              !traceNode_.empty()) {
                              obs::TraceRecorder::instance().instant(
                                  traceNode_, "notify", "notify_deliver",
                                  "kind=signal batch=" +
                                      std::to_string(recs.size()));
                          }
                          signalHandler_(rec);
                      }
                  });
        return;
    }
    for (const Notification &rec : recs) {
        queue_.push_back(rec);
        waitGraph().channelPosted(wgId_);
    }
    // One doorbell: wakeConsumers charges a single notifyDispatchCost
    // no matter how many records just became readable.
    wakeConsumers();
}

void
NotificationChannel::watchOnce(std::function<void()> watcher)
{
    if (readable()) {
        // Already readable: fire on the spot (select returns immediately).
        watcher();
        return;
    }
    watchers_.push_back(std::move(watcher));
}

void
NotificationChannel::wakeConsumers()
{
    // Mark-readable plus wakeup is the control-transfer cost; charge it
    // once per delivery that actually unblocks someone.
    bool someone = reader_ || !watchers_.empty();
    if (!someone) {
        return; // consumer will poll; no control transfer happens
    }
    cpu_.post(costs_.notifyDispatchCost, sim::CpuCategory::kControlTransfer,
              [this] {
                  if (reader_) {
                      auto h = std::exchange(reader_, {});
                      h.resume();
                  }
                  auto watchers = std::move(watchers_);
                  watchers_.clear();
                  for (auto &w : watchers) {
                      w();
                  }
              });
}

sim::Task<size_t>
ChannelSelector::selectAny(std::vector<NotificationChannel *> channels)
{
    REMORA_ASSERT(!channels.empty());
    for (size_t i = 0; i < channels.size(); ++i) {
        if (channels[i]->readable()) {
            co_return i;
        }
    }

    sim::Promise<size_t> winner(channels.front()->simulator());
    auto fired = std::make_shared<bool>(false);
    for (size_t i = 0; i < channels.size(); ++i) {
        channels[i]->watchOnce([fired, winner, i]() mutable {
            if (*fired) {
                return;
            }
            *fired = true;
            winner.set(i);
        });
    }
    size_t idx = co_await winner.future();
    co_return idx;
}

} // namespace remora::rmem
