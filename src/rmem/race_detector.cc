#include "rmem/race_detector.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/panic.h"

namespace remora::rmem {

// ---------------------------------------------------------------- clocks

uint64_t
VectorClock::get(ActorId a) const
{
    auto it = c_.find(a);
    return it != c_.end() ? it->second : 0;
}

void
VectorClock::set(ActorId a, uint64_t epoch)
{
    c_[a] = epoch;
}

void
VectorClock::join(const VectorClock &o)
{
    for (const auto &[a, e] : o.c_) {
        uint64_t &mine = c_[a];
        mine = std::max(mine, e);
    }
}

bool
VectorClock::leq(const VectorClock &o) const
{
    for (const auto &[a, e] : c_) {
        if (e > o.get(a)) {
            return false;
        }
    }
    return true;
}

std::string
VectorClock::str() const
{
    std::ostringstream out;
    out << "{";
    bool first = true;
    for (const auto &[a, e] : c_) {
        if (!first) {
            out << " ";
        }
        first = false;
        out << a << ":" << e;
    }
    out << "}";
    return out.str();
}

// ---------------------------------------------------------------- shadow

void
ShadowRangeMap::splitAt(uint32_t x)
{
    auto it = m_.upper_bound(x);
    if (it == m_.begin()) {
        return;
    }
    --it;
    if (it->first < x && x < it->second.hi) {
        Piece right{it->second.hi, it->second.st};
        it->second.hi = x;
        m_.emplace(x, std::move(right));
    }
}

void
ShadowRangeMap::forRange(
    uint32_t lo, uint32_t hi,
    const std::function<void(uint32_t, uint32_t, ShadowState &)> &fn)
{
    if (lo >= hi) {
        return;
    }
    splitAt(lo);
    splitAt(hi);
    uint32_t cur = lo;
    auto it = m_.lower_bound(lo);
    while (cur < hi) {
        if (it == m_.end() || it->first >= hi) {
            // Trailing gap: fresh state up to hi.
            auto [nit, ok] = m_.emplace(cur, Piece{hi, {}});
            REMORA_ASSERT(ok);
            fn(cur, hi, nit->second.st);
            return;
        }
        if (it->first > cur) {
            // Gap before the next existing range.
            auto [nit, ok] = m_.emplace(cur, Piece{it->first, {}});
            REMORA_ASSERT(ok);
            fn(cur, nit->second.hi, nit->second.st);
            cur = nit->second.hi;
            continue;
        }
        fn(cur, it->second.hi, it->second.st);
        cur = it->second.hi;
        ++it;
    }
}

void
ShadowRangeMap::erase(uint32_t lo, uint32_t hi)
{
    if (lo >= hi) {
        return;
    }
    splitAt(lo);
    splitAt(hi);
    auto first = m_.lower_bound(lo);
    auto last = m_.lower_bound(hi);
    m_.erase(first, last);
}

std::vector<std::pair<uint32_t, uint32_t>>
ShadowRangeMap::ranges() const
{
    std::vector<std::pair<uint32_t, uint32_t>> out;
    out.reserve(m_.size());
    for (const auto &[lo, piece] : m_) {
        out.emplace_back(lo, piece.hi);
    }
    return out;
}

// ---------------------------------------------------------------- report

std::string
RaceReport::format() const
{
    std::ostringstream out;
    out << "data race on node " << node << " segment " << int{segment};
    if (!segmentName.empty()) {
        out << " (\"" << segmentName << "\")";
    }
    out << " bytes [" << lo << ", " << hi << ")\n";
    auto side = [&out](const char *label, const AccessInfo &a) {
        out << "  " << label << ": " << (a.write ? "write" : "read")
            << " by actor " << a.actor << " epoch " << a.epoch << " at t="
            << a.when << "\n    site:  " << a.site << "\n    clock: "
            << a.clock << "\n";
    };
    side("prior  ", prior);
    side("current", current);
    return out.str();
}

// -------------------------------------------------------------- detector

RaceDetector &
RaceDetector::instance()
{
    static RaceDetector det;
    return det;
}

bool
RaceDetector::on()
{
    // REMORA_RACE=1 arms fatally for whole-suite gating; checked once.
    // An explicit arm()/disarm() beforehand wins: the race-detector
    // test suite arms non-fatal to *inspect* reports from known-racy
    // fixtures and must keep doing so under the env-armed ctest gate.
    static const bool envArm = [] {
        const char *e = std::getenv("REMORA_RACE");
        if (e != nullptr && e[0] != '\0' && e[0] != '0' &&
            !instance().configured_) {
            RaceDetectorOptions opts;
            opts.fatal = true;
            instance().arm(opts);
            return true;
        }
        return false;
    }();
    (void)envArm;
    return instance().armed_;
}

void
RaceDetector::arm(const RaceDetectorOptions &opts)
{
    REMORA_ASSERT(opts.granularity != 0 &&
                  (opts.granularity & (opts.granularity - 1)) == 0);
    clearState();
    opts_ = opts;
    armed_ = true;
    configured_ = true;
    races_.reset();
    accesses_.reset();
    acquires_.reset();
    releases_.reset();
    auto &reg = obs::MetricRegistry::global();
    reg.removePrefix("race.");
    registerStats(reg, "race");
}

void
RaceDetector::disarm()
{
    armed_ = false;
    configured_ = true;
    clearState();
}

void
RaceDetector::reset()
{
    clearState();
}

void
RaceDetector::clearState()
{
    segments_.clear();
    byVa_.clear();
    clocks_.clear();
    tokens_.clear();
    actorStack_.clear();
    reports_.clear();
    fenceClock_ = VectorClock();
}

void
RaceDetector::registerStats(obs::MetricRegistry &reg,
                            const std::string &prefix) const
{
    reg.add(prefix + ".races", races_);
    reg.add(prefix + ".accesses_checked", accesses_);
    reg.add(prefix + ".acquires", acquires_);
    reg.add(prefix + ".releases", releases_);
}

void
RaceDetector::registerSegment(net::NodeId node, SegmentId seg, mem::Pid pid,
                              mem::Vaddr base, uint32_t size,
                              const std::string &name)
{
    uint32_t key = segKey(node, seg);
    SegInfo &si = segments_[key];
    si = SegInfo{};
    si.node = node;
    si.seg = seg;
    si.pid = pid;
    si.base = base;
    si.size = size;
    si.name = name;
    byVa_[{node, pid}][base] = key;
}

void
RaceDetector::unregisterSegment(net::NodeId node, SegmentId seg)
{
    auto it = segments_.find(segKey(node, seg));
    if (it == segments_.end()) {
        return;
    }
    auto bit = byVa_.find({it->second.node, it->second.pid});
    if (bit != byVa_.end()) {
        bit->second.erase(it->second.base);
        if (bit->second.empty()) {
            byVa_.erase(bit);
        }
    }
    segments_.erase(it);
}

void
RaceDetector::markSyncWord(net::NodeId node, SegmentId seg, uint32_t offset)
{
    REMORA_ASSERT(offset % 4 == 0);
    auto it = segments_.find(segKey(node, seg));
    if (it == segments_.end()) {
        return; // segment not registered (e.g. armed mid-run)
    }
    SegInfo &si = it->second;
    if (si.syncWords.insert(offset).second) {
        // A word changing roles forgets its data history: plain
        // accesses before the designation are no longer checked
        // against accesses after it.
        si.shadow.erase(offset, offset + 4);
    }
}

VectorClock &
RaceDetector::actorClock(ActorId a)
{
    VectorClock &c = clocks_[a];
    if (c.get(a) == 0) {
        // A newly seen actor starts after the last fence, so fenced
        // setup is ordered before it even though it had no clock yet.
        c.join(fenceClock_);
        c.set(a, 1); // epoch 0 is "before everything"
    }
    return c;
}

RaceDetector::ScopedActor::ScopedActor(ActorId actor, std::string site)
    : active_(RaceDetector::on())
{
    if (active_) {
        instance().actorStack_.emplace_back(actor, std::move(site));
    }
}

RaceDetector::ScopedActor::~ScopedActor()
{
    if (active_) {
        instance().actorStack_.pop_back();
    }
}

ActorId
RaceDetector::currentActor(ActorId fallback) const
{
    return actorStack_.empty() ? fallback : actorStack_.back().first;
}

void
RaceDetector::onLocalAccess(net::NodeId node, mem::Pid pid, bool write,
                            mem::Vaddr va, size_t len, sim::Time now)
{
    auto bit = byVa_.find({node, pid});
    if (bit == byVa_.end()) {
        return;
    }
    ActorId actor = currentActor(node);
    std::string site;
    if (!actorStack_.empty()) {
        site = actorStack_.back().second;
    } else {
        site = "local access (node " + std::to_string(node) + ", pid " +
               std::to_string(pid) + ")";
    }
    // A space can export several segments; check each one the range
    // overlaps (segments per process are few, so a scan is fine).
    for (const auto &[base, key] : bit->second) {
        auto sit = segments_.find(key);
        if (sit == segments_.end()) {
            continue;
        }
        SegInfo &si = sit->second;
        mem::Vaddr end = va + len;
        if (end <= si.base || va >= si.base + si.size) {
            continue;
        }
        uint32_t lo = static_cast<uint32_t>(std::max(va, si.base) - si.base);
        uint32_t hi = static_cast<uint32_t>(
            std::min<mem::Vaddr>(end, si.base + si.size) - si.base);
        access(si, lo, hi, write, actor, now, site);
    }
}

void
RaceDetector::access(SegInfo &si, uint32_t lo, uint32_t hi, bool write,
                     ActorId actor, sim::Time now, const std::string &site)
{
    VectorClock &clock = actorClock(actor);

    // 1. Reads covering a sync word acquire its release clock *before*
    //    the data bytes are checked, so a spinning reader that just saw
    //    the publish is ordered after the publisher's earlier stores.
    if (!write) {
        for (auto wit = si.syncWords.lower_bound(lo & ~3u);
             wit != si.syncWords.end() && *wit < hi; ++wit) {
            if (*wit + 4 > lo) {
                auto cit = si.syncClocks.find(*wit);
                if (cit != si.syncClocks.end()) {
                    clock.join(cit->second);
                    acquires_.inc();
                }
            }
        }
    }

    // 2. Check and record the data bytes, widened to the configured
    //    granularity and with sync words carved out.
    uint64_t epoch = clock.get(actor);
    uint32_t grain = opts_.granularity;
    uint32_t glo = (lo / grain) * grain;
    uint32_t ghi = std::min(((hi + grain - 1) / grain) * grain, si.size);
    AccessInfo self{actor, epoch, now, write, site, clock.str()};
    uint32_t cur = glo;
    auto wit = si.syncWords.lower_bound(glo >= 3 ? glo - 3 : 0);
    while (cur < ghi) {
        uint32_t pieceEnd = ghi;
        // Skip over / stop at the next sync word.
        while (wit != si.syncWords.end() && *wit + 4 <= cur) {
            ++wit;
        }
        if (wit != si.syncWords.end() && *wit < ghi) {
            if (*wit <= cur) {
                cur = *wit + 4;
                ++wit;
                continue;
            }
            pieceEnd = *wit;
        }
        if (cur >= pieceEnd) {
            break;
        }
        accesses_.inc();
        si.shadow.forRange(
            cur, pieceEnd,
            [&](uint32_t rlo, uint32_t rhi, ShadowState &st) {
                const AccessInfo &w = st.lastWrite;
                if (w.actor != 0 && w.actor != actor &&
                    !clock.covers(w.actor, w.epoch)) {
                    report(si, rlo, rhi, w, self);
                }
                if (write) {
                    for (const auto &[ra, rd] : st.reads) {
                        if (ra != actor && !clock.covers(ra, rd.epoch)) {
                            report(si, rlo, rhi, rd, self);
                        }
                    }
                    st.lastWrite = self;
                    st.reads.clear();
                } else {
                    st.reads[actor] = self;
                }
            });
        cur = pieceEnd;
    }

    // 3. Writes covering a sync word release the writer's clock into
    //    it *after* the data bytes above were recorded at this epoch,
    //    so the release covers this very store (valid-bit-last publish
    //    with body and flag in one write still works).
    if (write) {
        for (auto sit = si.syncWords.lower_bound(lo & ~3u);
             sit != si.syncWords.end() && *sit < hi; ++sit) {
            if (*sit + 4 > lo) {
                si.syncClocks[*sit].join(clock);
                releases_.inc();
            }
        }
    }

    // 4. Every access gets its own epoch.
    clock.bump(actor);
}

void
RaceDetector::report(const SegInfo &si, uint32_t lo, uint32_t hi,
                     const AccessInfo &prior, const AccessInfo &current)
{
    // Adjacent shadow pieces hit by one access produce one report.
    if (!reports_.empty()) {
        RaceReport &last = reports_.back();
        if (last.node == si.node && last.segment == si.seg &&
            last.hi == lo && last.prior.actor == prior.actor &&
            last.prior.epoch == prior.epoch &&
            last.current.epoch == current.epoch &&
            last.current.actor == current.actor) {
            last.hi = hi;
            return;
        }
    }
    races_.inc();
    RaceReport r;
    r.node = si.node;
    r.segment = si.seg;
    r.segmentName = si.name;
    r.lo = lo;
    r.hi = hi;
    r.prior = prior;
    r.current = current;
    if (obs::TraceRecorder::on()) {
        obs::TraceRecorder::instance().instant(
            "node" + std::to_string(si.node), "race", "data-race",
            r.format());
    }
    if (opts_.fatal) {
        REMORA_FATAL(r.format());
    }
    if (reports_.size() < opts_.maxReports) {
        reports_.push_back(std::move(r));
    }
}

void
RaceDetector::releaseToken(const void *token, ActorId actor)
{
    VectorClock &clock = actorClock(actor);
    tokens_[token].join(clock);
    releases_.inc();
    clock.bump(actor);
}

void
RaceDetector::acquireToken(const void *token, ActorId actor)
{
    auto it = tokens_.find(token);
    if (it == tokens_.end()) {
        return;
    }
    actorClock(actor).join(it->second);
    acquires_.inc();
}

void
RaceDetector::fence()
{
    VectorClock all;
    for (auto &[a, c] : clocks_) {
        all.join(c);
    }
    for (auto &[t, c] : tokens_) {
        all.join(c);
    }
    for (auto &[k, si] : segments_) {
        for (auto &[w, c] : si.syncClocks) {
            all.join(c);
        }
    }
    fenceClock_.join(all); // seeds actors first seen after the fence
    for (auto &[a, c] : clocks_) {
        c.join(all);
        c.bump(a);
    }
    for (auto &[t, c] : tokens_) {
        c.join(all);
    }
    for (auto &[k, si] : segments_) {
        for (auto &[w, c] : si.syncClocks) {
            c.join(all);
        }
    }
}

} // namespace remora::rmem
