/**
 * @file
 * Happens-before data-race detection for exported segment memory.
 *
 * The paper's model deliberately strips synchronization from the data
 * path: importers fire non-blocking WRITE/READ/CAS at exported segments
 * and correctness rests on manual ordering (valid bits written last,
 * CAS-guarded slot claims, notification-driven handoff). This detector
 * checks those orderings the way TSan-style vector-clock checkers do:
 * every access to an exported segment — remote requests applied by the
 * engine *and* the exporter's own loads/stores, seen through the
 * mem::AddressSpace access observer — is checked against a shadow map
 * of the segment, and two accesses to overlapping bytes conflict when
 * at least one is a write and neither happens-before the other.
 *
 * Happens-before edges come from the model's real ordering primitives
 * only; nothing is implicit:
 *
 *  - Notification delivery: NotificationChannel::post() releases the
 *    posting actor's clock into the channel; handler dispatch and
 *    next()/tryNext() consumption acquire it (rmem/notification.cc).
 *  - CAS pairs and sync objects: designated *sync words* (lock words,
 *    sequence/valid words, heartbeat counters — marked by the sync
 *    objects, hybrid1 RPC, the name clerk and the dfs token area, and
 *    automatically for any CAS target). A write covering a sync word
 *    releases the writer's clock into the word; a read covering it
 *    acquires. Sync words are excluded from data checking, exactly
 *    like the relaxed/atomic split in a real detector. A successful
 *    CAS performs the read (acquire) and the write (release), so
 *    CAS-success pairs chain; a failed CAS only acquires.
 *  - RPC request/reply in rpc/hybrid1.cc rides on the two above: the
 *    request is ordered by its notification, the reply by the sync
 *    sequence word the client spins on.
 *
 * Actor granularity is the node: each node's kernel applies remote
 * requests and runs local code one event at a time, which matches the
 * paper's one-CPU-per-host model. The engine attributes exporter-side
 * applied accesses to the *initiating* node via ScopedActor.
 *
 * Arming: tests call arm()/disarm() programmatically (non-fatal,
 * inspect reports()); the REMORA_RACE=1 environment arms the detector
 * fatally for whole-suite gating — the first race aborts the process
 * with the formatted report, which ctest surfaces as a failure.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mem/node.h"
#include "net/cell.h"
#include "rmem/segment.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace remora::obs {
class MetricRegistry;
}

namespace remora::rmem {

/**
 * An actor is one logical thread of the happens-before order. Node ids
 * are used directly (the model executes one event at a time per node).
 */
using ActorId = uint32_t;

/** A classic vector clock: per-actor logical epochs. */
class VectorClock
{
  public:
    /** The actor's epoch; 0 when the actor has never been seen. */
    uint64_t get(ActorId a) const;

    /** Set the actor's epoch (used by bump; exposed for tests). */
    void set(ActorId a, uint64_t epoch);

    /** Advance the actor's own epoch by one. */
    void bump(ActorId a) { set(a, get(a) + 1); }

    /** Pointwise maximum with @p o (the join / acquire operation). */
    void join(const VectorClock &o);

    /** True when this clock has seen @p a's @p epoch (epoch <= get(a)). */
    bool covers(ActorId a, uint64_t epoch) const { return get(a) >= epoch; }

    /** Pointwise <=: true when this clock happens-before-or-equals @p o. */
    bool leq(const VectorClock &o) const;

    /** Neither orders the other: the clocks are concurrent. */
    bool concurrentWith(const VectorClock &o) const
    {
        return !leq(o) && !o.leq(*this);
    }

    /** Number of actors with non-zero epochs. */
    size_t size() const { return c_.size(); }

    /** Render as "{1:4 2:7}" for reports. */
    std::string str() const;

  private:
    std::map<ActorId, uint64_t> c_;
};

/** One recorded access, kept in shadow state and quoted in reports. */
struct AccessInfo
{
    ActorId actor = 0; ///< 0 means "no access recorded".
    uint64_t epoch = 0;
    sim::Time when = 0;
    bool write = false;
    /** Access site, e.g. "rmem serve_write from node 2". */
    std::string site;
    /** The accessing actor's clock at access time, rendered. */
    std::string clock;
};

/** Shadow state of one byte range: last write + last read per actor. */
struct ShadowState
{
    AccessInfo lastWrite;
    /** Reads since the last write, one slot per actor. */
    std::map<ActorId, AccessInfo> reads;
};

/**
 * An interval map from segment offsets to ShadowState, splitting ranges
 * at access boundaries so differently-accessed bytes keep independent
 * state. Public so tests/test_race_detector.cc can unit-test splitting.
 */
class ShadowRangeMap
{
  public:
    /**
     * Cover [lo, hi) exactly — splitting existing ranges at lo/hi and
     * materialising fresh state for gaps — and call @p fn on each
     * covered piece in offset order.
     */
    void forRange(uint32_t lo, uint32_t hi,
                  const std::function<void(uint32_t lo, uint32_t hi,
                                           ShadowState &st)> &fn);

    /** Drop all shadow state in [lo, hi) (sync-word designation). */
    void erase(uint32_t lo, uint32_t hi);

    /** Number of distinct ranges currently held. */
    size_t rangeCount() const { return m_.size(); }

    /** The (lo, hi) bounds of every range, in order (for tests). */
    std::vector<std::pair<uint32_t, uint32_t>> ranges() const;

  private:
    struct Piece
    {
        uint32_t hi;
        ShadowState st;
    };

    /** Split the range containing @p x (if any) so @p x is a boundary. */
    void splitAt(uint32_t x);

    std::map<uint32_t, Piece> m_; // key = range lo
};

/** A detected pair of conflicting, unordered accesses. */
struct RaceReport
{
    net::NodeId node = 0;   ///< Exporting node.
    SegmentId segment = 0;  ///< Descriptor slot on that node.
    std::string segmentName;
    uint32_t lo = 0;        ///< Conflicting byte range [lo, hi)...
    uint32_t hi = 0;        ///< ...as offsets into the segment.
    AccessInfo prior;       ///< The access already in shadow state.
    AccessInfo current;     ///< The access that collided with it.

    /** Multi-line human-readable rendering (also used by fatal mode). */
    std::string format() const;
};

/** Detector tuning; see arm(). */
struct RaceDetectorOptions
{
    /** Abort (REMORA_FATAL) on the first race — the ctest gate mode. */
    bool fatal = false;
    /**
     * Shadow granularity in bytes (power of two). Checked ranges are
     * widened to this grain, trading precision for shadow-map size;
     * 1 is exact byte-level checking.
     */
    uint32_t granularity = 1;
    /** Stop *recording* reports past this many (counting continues). */
    size_t maxReports = 64;
};

/**
 * The process-wide happens-before checker. Disarmed it costs one
 * static bool test per hook; armed it shadows registered segments.
 */
class RaceDetector
{
  public:
    /** The process-wide instance. */
    static RaceDetector &instance();

    /**
     * Fast armed check — every hook guards with this. Arms from the
     * environment (REMORA_RACE=1, fatal mode) on first use.
     */
    static bool on();

    /** Reset all state and arm with @p opts. */
    void arm(const RaceDetectorOptions &opts = {});

    /** Disarm and drop all state. */
    void disarm();

    /** Drop clocks/shadows/reports but stay armed (per-seed loops). */
    void reset();

    const RaceDetectorOptions &options() const { return opts_; }

    // ---- Topology (called by the rmem engine) ----------------------

    /** A segment was exported; begin shadowing [base, base+size). */
    void registerSegment(net::NodeId node, SegmentId seg, mem::Pid pid,
                         mem::Vaddr base, uint32_t size,
                         const std::string &name);

    /** The segment was revoked; drop its shadow state. */
    void unregisterSegment(net::NodeId node, SegmentId seg);

    /**
     * Designate the aligned 4-byte word at @p offset a *sync word*:
     * excluded from data checking, it instead carries release/acquire
     * clocks (see file comment). Existing shadow data state for the
     * word is discarded. CAS targets are marked automatically.
     */
    void markSyncWord(net::NodeId node, SegmentId seg, uint32_t offset);

    // ---- Access events ---------------------------------------------

    /**
     * A load/store hit an address space with registered segments.
     * Attributed to the current ScopedActor, or to @p node. Ranges
     * outside any registered segment are ignored.
     */
    void onLocalAccess(net::NodeId node, mem::Pid pid, bool write,
                       mem::Vaddr va, size_t len, sim::Time now);

    // ---- Happens-before edges --------------------------------------

    /** Release @p actor's clock into the channel keyed by @p token. */
    void releaseToken(const void *token, ActorId actor);

    /** Acquire the clock stored under @p token into @p actor. */
    void acquireToken(const void *token, ActorId actor);

    /**
     * Order everything so far before everything after: joins every
     * actor/sync/token clock into every actor. Test scaffolding for
     * "setup is complete; only check the traffic that follows".
     */
    void fence();

    /**
     * Attribute accesses inside the scope to @p actor with @p site as
     * the report label. The engine wraps exporter-side application of
     * remote requests so they attribute to the *initiating* node.
     * Cheap no-op when the detector is disarmed.
     */
    class ScopedActor
    {
      public:
        ScopedActor(ActorId actor, std::string site);
        ScopedActor(const ScopedActor &) = delete;
        ScopedActor &operator=(const ScopedActor &) = delete;
        ~ScopedActor();

      private:
        bool active_;
    };

    /** The ScopedActor override, or @p fallback when none is active. */
    ActorId currentActor(ActorId fallback) const;

    // ---- Results ---------------------------------------------------

    /** Recorded reports (capped at options().maxReports). */
    const std::vector<RaceReport> &reports() const { return reports_; }

    /** Total conflicting range-pairs found (not capped). */
    uint64_t raceCount() const { return races_.value(); }

    /** Data-range checks performed (overhead/coverage indicator). */
    uint64_t accessesChecked() const { return accesses_.value(); }

    /** Register the detector's counters under "<prefix>.". */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    RaceDetector() = default;

    struct SegInfo
    {
        net::NodeId node = 0;
        SegmentId seg = 0;
        mem::Pid pid = 0;
        mem::Vaddr base = 0;
        uint32_t size = 0;
        std::string name;
        ShadowRangeMap shadow;
        std::set<uint32_t> syncWords;
        std::map<uint32_t, VectorClock> syncClocks;
    };

    static uint32_t segKey(net::NodeId node, SegmentId seg)
    {
        return (static_cast<uint32_t>(node) << 8) | seg;
    }

    VectorClock &actorClock(ActorId a);
    void access(SegInfo &si, uint32_t lo, uint32_t hi, bool write,
                ActorId actor, sim::Time now, const std::string &site);
    void report(const SegInfo &si, uint32_t lo, uint32_t hi,
                const AccessInfo &prior, const AccessInfo &current);
    void clearState();

    bool armed_ = false;
    /** An explicit arm()/disarm() happened; blocks later env arming. */
    bool configured_ = false;
    RaceDetectorOptions opts_;
    std::map<uint32_t, SegInfo> segments_;
    /** (node, pid) -> base va -> segment key, for local-access lookup. */
    std::map<std::pair<uint32_t, uint32_t>, std::map<mem::Vaddr, uint32_t>>
        byVa_;
    std::map<ActorId, VectorClock> clocks_;
    /** Union taken at the last fence(); seeds actors seen after it. */
    VectorClock fenceClock_;
    std::map<const void *, VectorClock> tokens_;
    std::vector<std::pair<ActorId, std::string>> actorStack_;
    std::vector<RaceReport> reports_;
    sim::Counter races_;
    sim::Counter accesses_;
    sim::Counter acquires_;
    sim::Counter releases_;
};

} // namespace remora::rmem
