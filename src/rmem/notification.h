/**
 * @file
 * Control transfer: fd-style notification channels.
 *
 * The paper integrates control transfer with Ultrix file descriptors:
 * each exported segment has an associated descriptor that becomes
 * readable (with a small amount of control information) when an
 * incoming operation requests notification; processes use select/read/
 * signal to consume them (§3.1.2). NotificationChannel reproduces that
 * interface:
 *
 *  - next()    — blocking read of the next notification record;
 *  - readable() / tryNext() — non-blocking poll;
 *  - setSignalHandler() — SIGIO-style asynchronous upcall;
 *  - ChannelSelector — select() across several channels.
 *
 * Delivering a notification charges the notifyDispatchCost (scheduler
 * wakeup + context switches + select dispatch) to the node's CPU under
 * the control-transfer category; this is exactly the cost the paper's
 * structure works to avoid on the common path.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/cell.h"
#include "rmem/cost_model.h"
#include "rmem/segment.h"
#include "sim/cpu.h"
#include "sim/task.h"

namespace remora::rmem {

/** Request kinds that can trigger a notification. */
enum class NotifyKind : uint8_t
{
    kWrite = 0,
    kRead,
    kCas,
};

/** The "small amount of control information" a notification carries. */
struct Notification
{
    /** Node whose request triggered the notification. */
    net::NodeId srcNode = 0;
    /** Kind of request that carried the notify bit. */
    NotifyKind kind = NotifyKind::kWrite;
    /** Segment offset the request targeted. */
    uint32_t offset = 0;
    /** Bytes the request covered. */
    uint32_t count = 0;
    /**
     * Async op of the request that triggered the notification
     * (0 = untraced). Carried through the queue so the consumer's
     * events link into the initiator's trace DAG — the control
     * transfer is part of the op's critical path.
     */
    uint64_t traceOp = 0;
};

/** Per-segment notification descriptor (the paper's segment fd). */
class NotificationChannel
{
  public:
    /**
     * @param cpu The owning node's CPU (dispatch cost is charged here).
     * @param costs Shared cost model.
     */
    NotificationChannel(sim::CpuResource &cpu, const CostModel &costs);

    NotificationChannel(const NotificationChannel &) = delete;
    NotificationChannel &operator=(const NotificationChannel &) = delete;

    ~NotificationChannel();

    /** True when a notification is queued (select()-style readability). */
    bool readable() const { return !queue_.empty(); }

    /**
     * Blocking read: suspends the calling coroutine until a
     * notification arrives, then consumes and returns it. At most one
     * blocking reader at a time.
     */
    sim::Task<Notification> next();

    /**
     * Non-blocking read: consume the head notification if present.
     *
     * @param out Receives the record when one was queued.
     * @return True when a record was consumed.
     */
    bool tryNext(Notification &out);

    /**
     * Install a SIGIO-style handler invoked (after the dispatch cost)
     * for each arriving notification *instead of* queueing it. Pass an
     * empty function to remove.
     */
    void setSignalHandler(std::function<void(const Notification &)> handler);

    /**
     * Deliver a notification (called by the engine when an incoming
     * request warrants control transfer). Charges the dispatch cost.
     */
    void post(const Notification &n);

    /**
     * Deliver several notifications behind ONE doorbell: every record
     * is queued (or handed to the signal handler) individually, but the
     * scheduler wakeup / select dispatch — the notifyDispatchCost — is
     * charged once for the whole batch. This is the control-transfer
     * coalescing of a vectored meta-instruction: N notify bits on the
     * same channel cost one context-switch pair, not N.
     */
    void postBatch(std::span<const Notification> batch);

    /**
     * Register a readability watcher (used by ChannelSelector).
     * Invoked once, next time the channel becomes readable.
     */
    void watchOnce(std::function<void()> watcher);

    /** Total notifications delivered through this channel. */
    uint64_t delivered() const { return delivered_; }

    /**
     * Actor (node id) consuming this channel, for the race detector:
     * post() releases the poster's clock into the channel and every
     * consumption point (handler dispatch, next(), tryNext()) acquires
     * it on behalf of this actor — the notification-delivery
     * happens-before edge. Set by the engine at export time.
     */
    void setRaceContext(uint32_t actor) { raceOwner_ = actor; }

    /**
     * Node scope used for this channel's trace events (set by the
     * engine at export time; empty disables channel tracing).
     */
    void setTraceNode(std::string node) { traceNode_ = std::move(node); }

    /** The owning node's simulator (wakeups order through its queue). */
    sim::Simulator &simulator() { return cpu_.simulator(); }

    /**
     * Declare this channel's blocking reader an eternal daemon (a
     * serve-forever loop): its park is expected at quiescence and is
     * excluded from blocked-task reporting. Call before the loop's
     * first next().
     */
    void markDaemon() { daemon_ = true; }

    /**
     * Label used in wait-graph reports and dependency hints (set by the
     * engine to the exported segment's identity).
     */
    void setHangLabel(std::string label);

    /** Wait-graph channel id; doubles as the channel dependency key. */
    uint64_t waitGraphId() const { return wgId_; }

  private:
    /** Wake the blocked reader / watchers after the dispatch cost. */
    void wakeConsumers();

    /** The owning simulator's wait graph. */
    sim::WaitGraph &waitGraph() { return cpu_.simulator().waitGraph(); }

    sim::CpuResource &cpu_;
    const CostModel &costs_;
    std::deque<Notification> queue_;
    std::function<void(const Notification &)> signalHandler_;
    std::vector<std::function<void()>> watchers_;
    // Blocked reader rendezvous (at most one).
    std::coroutine_handle<> reader_;
    uint64_t delivered_ = 0;
    uint32_t raceOwner_ = 0;
    std::string traceNode_;
    uint64_t wgId_ = 0;
    bool daemon_ = false;
    std::string hangLabel_;
};

/**
 * select() over several notification channels: resolves with the index
 * of the first channel to become readable (or one that already is).
 */
class ChannelSelector
{
  public:
    /**
     * Wait for any of @p channels to become readable.
     *
     * The set is taken by value: the coroutine frame keeps its own copy
     * across suspension, so callers may pass temporaries. The pointed-to
     * channels must outlive the wait.
     *
     * @param channels The polled set (non-empty, same node).
     * @return Index into @p channels of a readable channel.
     */
    static sim::Task<size_t>
    selectAny(std::vector<NotificationChannel *> channels);
};

} // namespace remora::rmem
