/**
 * @file
 * Segment identity types shared across the remote-memory stack.
 *
 * A *segment* is a contiguous piece of a process's virtual memory that
 * the process has exported for remote access. The exporter's kernel
 * assigns it a small descriptor id (the paper's co-processor descriptor
 * register) and a generation number; importers on other nodes name it
 * by (node, descriptor, generation).
 */
#pragma once

#include <cstdint>
#include <string>

#include "net/cell.h"

namespace remora::rmem {

/** Kernel descriptor slot id; one octet on the wire (256 per node). */
using SegmentId = uint8_t;

/** Export generation; stale generations are rejected with a NAK. */
using Generation = uint16_t;

/** Access rights grantable on a segment (bitmask). */
enum class Rights : uint8_t
{
    kNone = 0,
    kRead = 1,
    kWrite = 2,
    kCas = 4,
    kAll = 7,
};

/** Bitwise-or of rights. */
constexpr Rights
operator|(Rights a, Rights b)
{
    return static_cast<Rights>(static_cast<uint8_t>(a) |
                               static_cast<uint8_t>(b));
}

/** True when @p held includes every right in @p needed. */
constexpr bool
hasRights(Rights held, Rights needed)
{
    return (static_cast<uint8_t>(held) & static_cast<uint8_t>(needed)) ==
           static_cast<uint8_t>(needed);
}

/**
 * Notification policy a host sets on each exported segment (§3.1.1):
 * always notify on arrival, never notify, or notify only when the
 * request's notify bit is set.
 */
enum class NotifyPolicy : uint8_t
{
    kConditional = 0,
    kAlways,
    kNever,
};

/**
 * An importer's handle to a remote segment: everything needed to
 * address it on the wire. Produced by the name service (or directly by
 * test fixtures).
 */
struct ImportedSegment
{
    /** Node that exported the segment. */
    net::NodeId node = 0;
    /** Descriptor slot on the exporting node. */
    SegmentId descriptor = 0;
    /** Generation at import time; stale after re-export/revoke. */
    Generation generation = 0;
    /** Segment size in bytes. */
    uint32_t size = 0;
    /** Rights the exporter granted. */
    Rights rights = Rights::kNone;
};

} // namespace remora::rmem
