/**
 * @file
 * The calibrated cost model: every simulated CPU cost in one place.
 *
 * The paper's prototype emulated the meta-instructions in the Ultrix
 * kernel of a DECstation 5000/200 (25 MHz MIPS R3000) driving a FORE
 * TCA-100 (programmed I/O, no DMA). The constants below are calibrated
 * so the Table 2 measurements come out of the simulation:
 *
 *   remote write (1 cell, 40 B) : 30 us
 *   remote read  (1 cell, 40 B) : 45 us
 *   remote CAS                  : 38 us
 *   block-write throughput (4K) : 35.4 Mb/s
 *   notification overhead       : 260 us
 *
 * Derivations (sender side of a small write, for example):
 *   trap + emulation entry/exit  ~ a few us on a 25 MHz R3000
 *   descriptor/rights/bounds     ~ table lookups + compares
 *   per-word PIO to the TX FIFO  ~ hundreds of ns per TURBOChannel store
 * The receive side adds interrupt dispatch, per-word PIO drain,
 * translation-table walk, and the memory copy into the target space.
 *
 * The calibration test (tests/test_calibration.cc) pins the emergent
 * Table 2 numbers; all other experiments share these constants, so the
 * comparative results are produced by structure, not by per-experiment
 * tuning.
 */
#pragma once

#include "sim/time.h"

namespace remora::rmem {

/** CPU costs of the kernel emulation layer (see file comment). */
struct CostModel
{
    /** Meta-instruction trap entry + exit (reserved-opcode fault path). */
    sim::Duration trapOverhead = sim::usec(3.0);

    /** Descriptor lookup + rights + generation + bounds checks. */
    sim::Duration validateCost = sim::usec(1.5);

    /** Translation-table walk, charged once per page touched. */
    sim::Duration translatePageCost = sim::usec(0.8);

    /**
     * One 32-bit word of programmed I/O to/from a NIC FIFO when the
     * data lives in registers (the small-transfer path: the paper's
     * message registers shared with the co-processor emulation).
     */
    sim::Duration pioWordCost = sim::usec(0.30);

    /**
     * One word of PIO on the *block* path: memory load + TURBOChannel
     * store (or the reverse) + loop overhead. This, not the 140 Mb/s
     * wire, is why the paper's block throughput tops out at 35.4 Mb/s.
     */
    sim::Duration pioWordBlockCost = sim::usec(0.66);

    /** Words of PIO per cell moved (53-octet cell, word-rounded). */
    static constexpr int kCellPioWords = 14;

    /** Words of header PIO on a raw single-cell message. */
    static constexpr int kRawHeaderWords = 2;

    /** RX interrupt entry, dispatch, and exit. */
    sim::Duration rxInterruptCost = sim::usec(4.5);

    /** Per-message demux/reassembly bookkeeping on receive. */
    sim::Duration msgHandleCost = sim::usec(1.0);

    /** Memory copy, per 32-bit word, into/out of a process space. */
    sim::Duration copyWordCost = sim::usec(0.12);

    /** Building a request header / loading message registers. */
    sim::Duration sendFormatCost = sim::usec(1.0);

    /** Executing the compare-and-swap memory operation itself. */
    sim::Duration casExecCost = sim::usec(0.8);

    /**
     * Initiator-side marginal cost of one sub-op in a vectored
     * meta-instruction: formatting its descriptor into the batch and
     * loading its message registers. The trap, header, and validation
     * are charged once per batch — that single-charging is the entire
     * point of the vectored path.
     */
    sim::Duration vectorSubOpIssueCost = sim::usec(0.4);

    /**
     * Serving-side marginal cost of one sub-op in a vectored request:
     * demuxing its descriptor from the batch and dispatching it.
     * Validation is charged once per distinct (slot, generation,
     * rights) key via the serving-side validation cache.
     */
    sim::Duration vectorSubOpServeCost = sim::usec(0.3);

    /**
     * Delivering a notification to a process: marking the segment's
     * descriptor readable, waking the blocked process (two context
     * switches), and running the select/signal dispatch. This is the
     * dominant control-transfer cost and the reason the paper separates
     * control from data (Table 2: 260 us measured overhead; the wire
     * and FIFO parts of a notified request account for the remainder).
     */
    sim::Duration notifyDispatchCost = sim::usec(264);

    /**
     * Per-word encryption/decryption cost applied to all wire traffic
     * when non-zero (§3.5). Zero models the trusted-cluster default;
     * ~50 ns/word models AN1-style link hardware ("it is feasible to do
     * encryption and decryption in hardware"); microseconds per word
     * models software DES on a 25 MHz R3000, which the paper predicts
     * "will not provide adequate performance".
     */
    sim::Duration cryptoWordCost = 0;

    /**
     * Per-word byte-swap cost on the PIO path when a peer of opposite
     * byte order is involved (§3.6): "since we use programmed I/O to
     * move data between the controller FIFO and memory, byte swapping
     * can be readily performed". A rotate folded into the existing PIO
     * loop costs a few cycles per word on an R3000; hardware swap (as
     * on the Ethernet LANCE) makes it free.
     */
    sim::Duration byteSwapWordCost = sim::usec(0.08);

    /** CPU cost of one raw (register-sourced) cell of PIO. */
    sim::Duration cellPioCost() const { return kCellPioWords * pioWordCost; }

    /** CPU cost of one block-path (memory-sourced) cell of PIO. */
    sim::Duration
    blockCellPioCost() const
    {
        return kCellPioWords * pioWordBlockCost;
    }

    /** Sender-side PIO cost of a raw message of @p bytes. */
    sim::Duration
    rawSendPioCost(size_t bytes) const
    {
        auto words =
            static_cast<sim::Duration>((bytes + 3) / 4 + kRawHeaderWords);
        return words * pioWordCost;
    }

    /** CPU cost of copying @p bytes to/from process memory. */
    sim::Duration
    copyCost(size_t bytes) const
    {
        return static_cast<sim::Duration>((bytes + 3) / 4) * copyWordCost;
    }

    /** CPU cost of encrypting/decrypting @p bytes (zero when disabled). */
    sim::Duration
    cryptoCost(size_t bytes) const
    {
        return static_cast<sim::Duration>((bytes + 3) / 4) * cryptoWordCost;
    }
};

} // namespace remora::rmem
