#include "rmem/vector_op.h"

#include <utility>

#include "rmem/descriptor.h"
#include "rmem/engine.h"
#include "rmem/protocol.h"

namespace remora::rmem {

namespace {

/** Wire bytes of one encoded sub-op (8-byte common header + tail). */
size_t
subOpWireBytes(const VectorSubOp &op)
{
    switch (op.kind) {
      case VecOpKind::kWrite:
        return 8 + 2 + op.data.size();
      case VecOpKind::kRead:
        return 8 + 2;
      case VecOpKind::kCas:
        return 8 + 8;
    }
    return 8;
}

/** Worst-case response bytes one sub-op contributes. */
size_t
subOpRespBytes(const VectorSubOp &op)
{
    switch (op.kind) {
      case VecOpKind::kWrite:
        return 2;
      case VecOpKind::kRead:
        return 2 + 2 + op.count;
      case VecOpKind::kCas:
        return 2 + 5;
    }
    return 2;
}

/** The (slot, generation, rights-needed) validation key of a sub-op. */
uint32_t
validationKey(const VectorSubOp &op)
{
    return static_cast<uint32_t>(op.descriptor) |
           (static_cast<uint32_t>(op.generation) << 8) |
           (static_cast<uint32_t>(vecOpRights(op.kind)) << 24);
}

} // namespace

Rights
vecOpRights(VecOpKind kind)
{
    switch (kind) {
      case VecOpKind::kWrite:
        return Rights::kWrite;
      case VecOpKind::kRead:
        return Rights::kRead;
      case VecOpKind::kCas:
        return Rights::kCas;
    }
    return Rights::kNone;
}

size_t
encodedVectorSize(const VectorReq &req)
{
    size_t bytes = 4; // first octet + reqId + opCount
    for (const VectorSubOp &op : req.ops) {
        bytes += subOpWireBytes(op);
    }
    return bytes;
}

size_t
encodedVectorRespSize(const VectorReq &req)
{
    size_t bytes = 4;
    for (const VectorSubOp &op : req.ops) {
        bytes += subOpRespBytes(op);
    }
    return bytes;
}

// ----------------------------------------------------------------------
// ValidationCache
// ----------------------------------------------------------------------

util::Result<SegmentDescriptor *>
ValidationCache::validate(SegmentId id, Generation generation,
                          uint64_t offset, uint64_t count, Rights needed)
{
    uint32_t key = static_cast<uint32_t>(id) |
                   (static_cast<uint32_t>(generation) << 8) |
                   (static_cast<uint32_t>(needed) << 24);
    auto it = seen_.find(key);
    if (it != seen_.end()) {
        ++hits_;
    } else {
        ++misses_;
    }
    // The walk always runs for semantics (bounds, write-inhibit, and
    // revocation are per-sub-op concerns); the hit/miss split drives
    // the engine's validateCost accounting only.
    auto v = table_.validate(id, generation, offset, count, needed);
    if (it == seen_.end()) {
        seen_.emplace(key, v.ok() ? v.value() : nullptr);
    }
    return v;
}

size_t
distinctValidationKeys(const std::vector<VectorSubOp> &ops)
{
    // Tiny batches: a quadratic scan beats hashing and allocates nothing.
    size_t distinct = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        uint32_t key = validationKey(ops[i]);
        bool seen = false;
        for (size_t j = 0; j < i && !seen; ++j) {
            seen = (validationKey(ops[j]) == key);
        }
        if (!seen) {
            ++distinct;
        }
    }
    return distinct;
}

// ----------------------------------------------------------------------
// BatchBuilder
// ----------------------------------------------------------------------

util::Status
BatchBuilder::admit(const ImportedSegment &seg, size_t opBytes,
                    size_t respBytes)
{
    if (batch_.ops.size() >= kMaxVectorOps) {
        return util::Status(util::ErrorCode::kResource, "vector batch full");
    }
    if (haveTarget_ && seg.node != batch_.target) {
        return util::Status(util::ErrorCode::kInvalidArgument,
                            "vector batch spans target nodes");
    }
    if (wireBytes() + opBytes > kBlockDataMax) {
        return util::Status(util::ErrorCode::kResource,
                            "vector batch exceeds frame budget");
    }
    if (respBytes_ + respBytes > kBlockDataMax) {
        return util::Status(util::ErrorCode::kResource,
                            "vector response exceeds frame budget");
    }
    return {};
}

util::Status
BatchBuilder::addWrite(Write op)
{
    if (!hasRights(op.dst.rights, Rights::kWrite)) {
        return util::Status(util::ErrorCode::kAccessDenied,
                            "import lacks write right");
    }
    if (static_cast<uint64_t>(op.offset) + op.data.size() > op.dst.size) {
        return util::Status(util::ErrorCode::kOutOfBounds,
                            "write outside imported segment");
    }
    VectorSubOp sub;
    sub.kind = VecOpKind::kWrite;
    sub.descriptor = op.dst.descriptor;
    sub.generation = op.dst.generation;
    sub.offset = op.offset;
    sub.notify = op.notify;
    sub.data = std::move(op.data);
    util::Status ok = admit(op.dst, subOpWireBytes(sub), subOpRespBytes(sub));
    if (!ok.ok()) {
        return ok;
    }
    batch_.target = op.dst.node;
    haveTarget_ = true;
    respBytes_ += subOpRespBytes(sub);
    batch_.ops.push_back(std::move(sub));
    batch_.local.push_back(VectorLocalDeposit{});
    return {};
}

util::Status
BatchBuilder::addRead(Read op)
{
    if (!hasRights(op.src.rights, Rights::kRead)) {
        return util::Status(util::ErrorCode::kAccessDenied,
                            "import lacks read right");
    }
    if (static_cast<uint64_t>(op.srcOff) + op.count > op.src.size) {
        return util::Status(util::ErrorCode::kOutOfBounds,
                            "read outside imported segment");
    }
    VectorSubOp sub;
    sub.kind = VecOpKind::kRead;
    sub.descriptor = op.src.descriptor;
    sub.generation = op.src.generation;
    sub.offset = op.srcOff;
    sub.notify = op.notify;
    sub.count = op.count;
    util::Status ok = admit(op.src, subOpWireBytes(sub), subOpRespBytes(sub));
    if (!ok.ok()) {
        return ok;
    }
    batch_.target = op.src.node;
    haveTarget_ = true;
    respBytes_ += subOpRespBytes(sub);
    batch_.ops.push_back(std::move(sub));
    batch_.local.push_back(
        VectorLocalDeposit{true, op.dstSeg, op.dstOff, op.notify});
    return {};
}

util::Status
BatchBuilder::addCas(Cas op)
{
    if (!hasRights(op.dst.rights, Rights::kCas)) {
        return util::Status(util::ErrorCode::kAccessDenied,
                            "import lacks CAS right");
    }
    if (op.offset % 4 != 0 ||
        static_cast<uint64_t>(op.offset) + 4 > op.dst.size) {
        return util::Status(util::ErrorCode::kOutOfBounds,
                            "CAS target invalid");
    }
    VectorSubOp sub;
    sub.kind = VecOpKind::kCas;
    sub.descriptor = op.dst.descriptor;
    sub.generation = op.dst.generation;
    sub.offset = op.offset;
    sub.oldValue = op.oldValue;
    sub.newValue = op.newValue;
    util::Status ok = admit(op.dst, subOpWireBytes(sub), subOpRespBytes(sub));
    if (!ok.ok()) {
        return ok;
    }
    batch_.target = op.dst.node;
    haveTarget_ = true;
    respBytes_ += subOpRespBytes(sub);
    batch_.ops.push_back(std::move(sub));
    batch_.local.push_back(
        VectorLocalDeposit{true, op.resultSeg, op.resultOff, false});
    return {};
}

bool
BatchBuilder::wantsResponse() const
{
    for (const VectorSubOp &op : batch_.ops) {
        if (op.kind != VecOpKind::kWrite) {
            return true;
        }
    }
    return false;
}

size_t
BatchBuilder::wireBytes() const
{
    size_t bytes = 4;
    for (const VectorSubOp &op : batch_.ops) {
        bytes += subOpWireBytes(op);
    }
    return bytes;
}

sim::Task<VectorOutcome>
BatchBuilder::issue(sim::Duration timeout)
{
    if (batch_.ops.empty()) {
        co_return VectorOutcome{util::Status(), {}};
    }
    VectorBatch batch = std::move(batch_);
    batch_ = VectorBatch{};
    haveTarget_ = false;
    respBytes_ = 0;
    VectorOutcome out =
        co_await engine_.issueVector(std::move(batch), timeout);
    co_return out;
}

} // namespace remora::rmem
