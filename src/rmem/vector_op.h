/**
 * @file
 * Vectored meta-instructions: N sub-ops in one wire message.
 *
 * A kVectorOp message carries up to kMaxVectorOps READ/WRITE/CAS
 * sub-ops addressed to segments of a single target node, all inside one
 * AAL5 frame. The initiator charges one trap + header + validation and
 * a small per-sub-op marginal cost; the serving kernel validates each
 * distinct (slot, generation, rights) key once (ValidationCache) and
 * coalesces the notify bits that target the same channel into a single
 * doorbell (NotificationChannel::postBatch). This amortizes exactly the
 * per-op software overhead the paper identifies as the binding
 * constraint — the wire was never the bottleneck.
 *
 * Wire format (first octet = kVectorOp, then):
 *
 *   u16 reqId      0 when no response is expected (pure-write batch)
 *   u8  opCount
 *   per sub-op:
 *     u8  kind (low 2 bits) | 0x80 notify
 *     u8  descriptor
 *     u16 generation
 *     u32 offset
 *     WRITE: u16 len, len data bytes
 *     READ : u16 count
 *     CAS  : u32 oldValue, u32 newValue
 *
 * The response (kVectorResp) carries per-sub-op status plus READ data /
 * CAS outcome; pure-write batches get no response (local completion,
 * like scalar WRITE), and an all-invalid pure-write batch NAKs once.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rmem/segment.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::rmem {

class DescriptorTable;
struct SegmentDescriptor;
class RmemEngine;

/** Sub-op discriminator inside a vectored message. */
enum class VecOpKind : uint8_t
{
    kWrite = 0,
    kRead = 1,
    kCas = 2,
};

/** Most sub-ops one kVectorOp message may carry. */
inline constexpr size_t kMaxVectorOps = 64;

/** One sub-op as it travels on the wire. */
struct VectorSubOp
{
    VecOpKind kind = VecOpKind::kWrite;
    /** Target-node segment slot. */
    SegmentId descriptor = 0;
    Generation generation = 0;
    uint32_t offset = 0;
    /**
     * WRITE/CAS: request target-side control transfer. READ: request
     * reader-side notification when the data is deposited locally.
     */
    bool notify = false;
    /** WRITE payload. */
    std::vector<uint8_t> data;
    /** READ byte count. */
    uint16_t count = 0;
    /** CAS comparand / replacement. */
    uint32_t oldValue = 0;
    uint32_t newValue = 0;
};

/** The kVectorOp wire message. */
struct VectorReq
{
    uint16_t reqId = 0;
    std::vector<VectorSubOp> ops;
};

/** Per-sub-op outcome inside a kVectorResp. */
struct VectorSubResult
{
    util::ErrorCode status = util::ErrorCode::kOk;
    VecOpKind kind = VecOpKind::kWrite;
    /** READ payload (status kOk only). */
    std::vector<uint8_t> data;
    /** CAS outcome. */
    bool success = false;
    uint32_t observed = 0;
};

/** The kVectorResp wire message. */
struct VectorResp
{
    uint16_t reqId = 0;
    std::vector<VectorSubResult> results;
};

/** Initiator-side deposit coordinates of one READ/CAS sub-op. */
struct VectorLocalDeposit
{
    /** True for READ/CAS sub-ops (something lands locally). */
    bool active = false;
    /** Local destination segment / offset. */
    SegmentId dstSeg = 0;
    uint32_t dstOff = 0;
    /** Post a reader-side notification when the deposit completes. */
    bool notify = false;
};

/** A fully-assembled batch, ready for RmemEngine::issueVector(). */
struct VectorBatch
{
    net::NodeId target = 0;
    std::vector<VectorSubOp> ops;
    /** Parallel to ops: where READ data / CAS results land locally. */
    std::vector<VectorLocalDeposit> local;
};

/** Result of a completed vectored meta-instruction. */
struct VectorOutcome
{
    /** Transport-level status (timeout / NAK); per-sub-op in results. */
    util::Status status;
    /** One entry per sub-op, in issue order (empty for pure writes). */
    std::vector<VectorSubResult> results;
};

/** Rights a sub-op of @p kind needs at the target. */
Rights vecOpRights(VecOpKind kind);

/** Encoded wire size of a VectorReq (for frame budgeting). */
size_t encodedVectorSize(const VectorReq &req);

/** Worst-case encoded wire size of the response to @p req. */
size_t encodedVectorRespSize(const VectorReq &req);

// ----------------------------------------------------------------------
// Serving-side validation cache
// ----------------------------------------------------------------------

/**
 * Per-batch validation cache: N sub-ops naming the same (slot,
 * generation, rights) triple validate once. The full descriptor-table
 * walk still runs for every sub-op (bounds and write-inhibit are
 * per-sub-op properties and revocation must never be missed); what the
 * cache elides is the modeled *cost* — the engine charges validateCost
 * per miss, not per sub-op, exactly as a hardware translation cache
 * would elide the table walk's cycles.
 */
class ValidationCache
{
  public:
    explicit ValidationCache(DescriptorTable &table) : table_(table) {}

    /** Validate one sub-op; counts a hit when the key was seen before. */
    util::Result<SegmentDescriptor *> validate(SegmentId id,
                                               Generation generation,
                                               uint64_t offset, uint64_t count,
                                               Rights needed);

    /** Sub-ops whose key had already validated successfully. */
    uint64_t hits() const { return hits_; }

    /** Distinct keys walked (each charged one validateCost). */
    uint64_t misses() const { return misses_; }

  private:
    DescriptorTable &table_;
    /** (slot | generation<<8 | rights<<24) -> validated descriptor. */
    std::unordered_map<uint32_t, SegmentDescriptor *> seen_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Count of distinct (slot, generation, rights-needed) keys in @p ops:
 * the number of validateCost charges the serving side pays.
 */
size_t distinctValidationKeys(const std::vector<VectorSubOp> &ops);

// ----------------------------------------------------------------------
// BatchBuilder
// ----------------------------------------------------------------------

/**
 * Opt-in builder upper layers use to gather sub-ops for one target
 * node. Import-side checks (rights, bounds, frame budget, single
 * target) run at add time so a bad op is rejected before anything hits
 * the wire; issue() hands the batch to RmemEngine::issueVector().
 */
class BatchBuilder
{
  public:
    /** Parameters of one batched WRITE. */
    struct Write
    {
        ImportedSegment dst;
        uint32_t offset = 0;
        std::vector<uint8_t> data;
        bool notify = false;
    };

    /** Parameters of one batched READ. */
    struct Read
    {
        ImportedSegment src;
        uint32_t srcOff = 0;
        /** Locally exported destination segment / offset. */
        SegmentId dstSeg = 0;
        uint32_t dstOff = 0;
        uint16_t count = 0;
        bool notify = false;
    };

    /** Parameters of one batched CAS. */
    struct Cas
    {
        ImportedSegment dst;
        uint32_t offset = 0;
        uint32_t oldValue = 0;
        uint32_t newValue = 0;
        /** Locally exported segment/offset for the result word. */
        SegmentId resultSeg = 0;
        uint32_t resultOff = 0;
    };

    explicit BatchBuilder(RmemEngine &engine) : engine_(engine) {}

    /** Append one WRITE sub-op (checked against the import handle). */
    util::Status addWrite(Write op);

    /** Append one READ sub-op. */
    util::Status addRead(Read op);

    /** Append one CAS sub-op. */
    util::Status addCas(Cas op);

    /** Sub-ops gathered so far. */
    size_t size() const { return batch_.ops.size(); }

    bool empty() const { return batch_.ops.empty(); }

    /** True when the batch holds a READ or CAS (a response will come). */
    bool wantsResponse() const;

    /** Current encoded request size in bytes. */
    size_t wireBytes() const;

    /**
     * Issue the gathered batch as one vectored meta-instruction and
     * reset the builder for reuse. An empty batch resolves immediately.
     *
     * @param timeout Zero = wait forever (response-carrying batches).
     */
    sim::Task<VectorOutcome> issue(sim::Duration timeout = 0);

  private:
    /** Check the batch stays single-target and within frame budget. */
    util::Status admit(const ImportedSegment &seg, size_t opBytes,
                       size_t respBytes);

    RmemEngine &engine_;
    VectorBatch batch_;
    bool haveTarget_ = false;
    size_t respBytes_ = 0;
};

} // namespace remora::rmem
