/**
 * @file
 * The remote-memory kernel emulation engine: the paper's core.
 *
 * One RmemEngine per node plays the role of the in-kernel co-processor
 * emulation: it implements the three non-privileged meta-instructions
 * (WRITE, READ, CAS) on the initiating side, and validates + executes
 * incoming requests on the serving side, entirely without involving the
 * remote *process* — only the remote kernel's data path runs, which is
 * what "pure data transfer" means in the paper.
 *
 * Initiator semantics follow §3.1.1:
 *  - write() resolves when the data has been accepted by the network
 *    (no delivery acknowledgement; reliability is the network's job);
 *  - read() is issued without blocking the node, and the returned task
 *    resolves when the data has been deposited in the local destination
 *    segment (or a NAK/timeout arrives);
 *  - cas() resolves when the success/failure word has been deposited.
 *
 * Target-side semantics:
 *  - every request is validated against the descriptor table (slot,
 *    generation, rights, bounds, write-inhibit) — protection is
 *    enforced, failures NAK;
 *  - data lands in (or is read from) the owning process's address
 *    space through its page table;
 *  - notification fires only when the segment's policy combined with
 *    the request's notify bit asks for control transfer.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/node.h"
#include "obs/metrics.h"
#include "rmem/cost_model.h"
#include "rmem/descriptor.h"
#include "rmem/protocol.h"
#include "rmem/segment.h"
#include "rmem/vector_op.h"
#include "rmem/wire.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "util/status.h"

namespace remora::rmem {

/** Result of a completed read meta-instruction. */
struct ReadOutcome
{
    util::Status status;
    /** The data, also deposited at the local destination. */
    std::vector<uint8_t> data;
};

/** Result of a completed CAS meta-instruction. */
struct CasOutcome
{
    util::Status status;
    /** True when the swap took effect. */
    bool success = false;
    /** Value observed at the remote location before the swap. */
    uint32_t observed = 0;
};

/** Engine statistics. */
struct EngineStats
{
    sim::Counter writesIssued;
    sim::Counter readsIssued;
    sim::Counter casIssued;
    sim::Counter requestsServed;
    sim::Counter naksSent;
    sim::Counter naksReceived;
    sim::Counter notificationsPosted;
    sim::Counter timeouts;
    /** Vectored meta-instructions issued (batches, not sub-ops). */
    sim::Counter vectorsIssued;
    /** Sub-ops carried by issued vectored meta-instructions. */
    sim::Counter vectorSubOps;
    /** Vectored requests served (batches). */
    sim::Counter vectorServed;
    /** Sub-ops executed on the serving side. */
    sim::Counter vectorSubOpsServed;
    /** Coalesced doorbells posted (one per channel per served batch). */
    sim::Counter vectorDoorbells;
    /** Serving-side validations elided by the per-batch cache. */
    sim::Counter vectorValidateHits;
};

/**
 * Latency decomposition of one meta-instruction class, reproducing
 * Table 2's phase breakdown. The wire and controller phases are derived
 * from the topology model (cell serialization + propagation, NIC
 * interrupt latencies on the critical path); software is the remainder
 * — kernel emulation, PIO, validation, and copies.
 */
struct OpPhaseStats
{
    /** End-to-end latency, 5 us buckets up to 400 us. */
    sim::Histogram latencyUs{0.0, 5.0, 80};
    sim::Accumulator totalUs;
    sim::Accumulator softwareUs;
    sim::Accumulator wireUs;
    sim::Accumulator controllerUs;
};

/** Per-meta-instruction phase stats (successful ops only). */
struct EngineMetrics
{
    /** WRITE latency is to local completion, so it is all software. */
    OpPhaseStats write;
    OpPhaseStats read;
    OpPhaseStats cas;
    /** Vectored meta-instructions (whole-batch latency). */
    OpPhaseStats vector;
};

/** Per-node remote-memory kernel layer. */
class RmemEngine
{
  public:
    /**
     * @param node The node this kernel runs on.
     * @param costs Cost model (shared across the cluster for fairness).
     */
    explicit RmemEngine(mem::Node &node, const CostModel &costs = {});

    RmemEngine(const RmemEngine &) = delete;
    RmemEngine &operator=(const RmemEngine &) = delete;

    // ------------------------------------------------------------------
    // Export-side kernel calls
    // ------------------------------------------------------------------

    /**
     * Export [base, base+size) of @p owner's space for remote access.
     *
     * Pins the pages (remote access bypasses the owner) and assigns a
     * descriptor slot and a fresh generation.
     *
     * @return Handle describing the export, or kResource / kOutOfBounds.
     */
    util::Result<ImportedSegment> exportSegment(mem::Process &owner,
                                                mem::Vaddr base,
                                                uint32_t size, Rights rights,
                                                NotifyPolicy policy,
                                                const std::string &name);

    /**
     * Revoke an exported segment: unpin, invalidate the slot, bump the
     * generation so outstanding imports go stale.
     */
    util::Status revokeSegment(SegmentId id);

    /** Toggle the write-inhibit flag used for synchronization (§3.1.1). */
    util::Status setWriteInhibit(SegmentId id, bool inhibit);

    /** Change the notification policy of a live segment. */
    util::Status setNotifyPolicy(SegmentId id, NotifyPolicy policy);

    /** The segment's notification channel; nullptr for invalid ids. */
    NotificationChannel *channel(SegmentId id);

    /** Kernel descriptor state; nullptr for invalid ids. */
    SegmentDescriptor *descriptor(SegmentId id);

    /**
     * An ImportedSegment handle for a locally exported segment (what
     * the name service hands to importers on other nodes).
     */
    util::Result<ImportedSegment> localHandle(SegmentId id) const;

    // ------------------------------------------------------------------
    // Meta-instructions (initiator side)
    // ------------------------------------------------------------------

    /**
     * WRITE: deposit @p data at @p offset within remote segment @p dst.
     *
     * Resolves with kOk once the data is accepted by the network (the
     * paper's local-completion guarantee); protection failures at the
     * destination arrive later as NAKs and are *not* reported here —
     * they surface via nakCount() and, if the importer cares, through
     * reads that observe missing data. Data larger than one frame is
     * fragmented transparently.
     *
     * @param dst Imported remote segment (needs kWrite).
     * @param offset Byte offset within the segment.
     * @param data Bytes to write.
     * @param notify Request control transfer at the destination.
     */
    sim::Task<util::Status> write(ImportedSegment dst, uint32_t offset,
                                  std::vector<uint8_t> data,
                                  bool notify = false);

    /**
     * READ: fetch @p count bytes at @p srcOff of remote @p src into the
     * local segment @p dstSeg at @p dstOff.
     *
     * @param src Imported remote segment (needs kRead).
     * @param srcOff Byte offset within the remote segment.
     * @param dstSeg Locally exported destination segment.
     * @param dstOff Offset within the local segment.
     * @param count Bytes to fetch (chunked transparently if large).
     * @param notify Request local notification when the data lands.
     * @param timeout Zero = wait forever; otherwise resolve kTimeout.
     */
    sim::Task<ReadOutcome> read(ImportedSegment src, uint32_t srcOff,
                                SegmentId dstSeg, uint32_t dstOff,
                                uint32_t count, bool notify = false,
                                sim::Duration timeout = 0);

    /**
     * CAS: atomically compare-and-swap the word at @p offset of remote
     * @p dst; the success word is deposited at (resultSeg, resultOff).
     *
     * @param dst Imported remote segment (needs kCas).
     * @param offset Word-aligned byte offset of the target word.
     * @param oldValue Comparand.
     * @param newValue Value stored on successful comparison.
     * @param resultSeg Locally exported segment for the result word.
     * @param resultOff Word-aligned offset for the result word.
     * @param timeout Zero = wait forever.
     */
    sim::Task<CasOutcome> cas(ImportedSegment dst, uint32_t offset,
                              uint32_t oldValue, uint32_t newValue,
                              SegmentId resultSeg, uint32_t resultOff,
                              sim::Duration timeout = 0);

    // ------------------------------------------------------------------
    // Vectored meta-instructions (initiator side)
    // ------------------------------------------------------------------

    /**
     * Issue a pre-assembled batch as ONE vectored meta-instruction:
     * one trap + header + validation charge plus a small marginal cost
     * per sub-op, one wire message, and (for READ/CAS batches) one
     * response frame. Upper layers normally assemble the batch through
     * BatchBuilder, which performs the import-side checks at add time.
     *
     * Pure-write batches complete locally like scalar write(); target-
     * side failures arrive as NAKs. Batches carrying a READ or CAS
     * resolve when the response has been deposited, with per-sub-op
     * statuses in VectorOutcome::results.
     *
     * @param batch Sub-ops for one target node plus local deposit
     *        coordinates (parallel arrays).
     * @param timeout Zero = wait forever (response-carrying batches).
     */
    sim::Task<VectorOutcome> issueVector(VectorBatch batch,
                                         sim::Duration timeout = 0);

    /** Vectored WRITE: all ops in one frame, local completion. */
    sim::Task<util::Status> writev(std::vector<BatchBuilder::Write> ops);

    /** Vectored READ: one request, one response, N deposits. */
    sim::Task<VectorOutcome> readv(std::vector<BatchBuilder::Read> ops,
                                   sim::Duration timeout = 0);

    /** Vectored CAS: one request, one response, N result words. */
    sim::Task<VectorOutcome> casv(std::vector<BatchBuilder::Cas> ops,
                                  sim::Duration timeout = 0);

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /** The wire (shared with the RPC baseline). */
    Wire &wire() { return wire_; }

    /** The owning node. */
    mem::Node &node() { return node_; }

    /** The cost model in force. */
    const CostModel &costs() const { return costs_; }

    /** Counters. */
    const EngineStats &stats() const { return stats_; }

    /** Per-op latency/phase decomposition. */
    const EngineMetrics &metrics() const { return metrics_; }

    /** NAKs received for writes (fire-and-forget failures). */
    uint64_t nakCount() const { return stats_.naksReceived.value(); }

    /**
     * Register this engine's counters, per-op phase stats, and the
     * underlying Wire's counters under @p prefix (e.g. "nodeA.rmem").
     */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    struct PendingRead
    {
        mem::Pid dstPid = 0;
        mem::Vaddr dstVa = 0;
        sim::Promise<ReadOutcome> done;
        sim::EventId timeoutEvent = 0;
        /** Reader-side notification requested for this chunk. */
        bool notify = false;
        /** Local destination segment (its channel gets the notification). */
        SegmentId dstSeg = 0;
    };
    struct PendingCas
    {
        mem::Pid resultPid = 0;
        mem::Vaddr resultVa = 0;
        sim::Promise<CasOutcome> done;
        sim::EventId timeoutEvent = 0;
    };
    /** Resolved local landing spot of one READ/CAS sub-op. */
    struct VectorDeposit
    {
        bool active = false;
        VecOpKind kind = VecOpKind::kWrite;
        mem::Pid pid = 0;
        mem::Vaddr va = 0;
        bool notify = false;
        SegmentId dstSeg = 0;
    };
    struct PendingVector
    {
        std::vector<VectorDeposit> deposits;
        sim::Promise<VectorOutcome> done;
        sim::EventId timeoutEvent = 0;
    };
    /** Shared progress of one served vectored request (engine.cc). */
    struct VectorServeState;

    /** Dispatch for incoming remote-memory messages. */
    void onMessage(net::NodeId src, Message &&msg);

    void serveWrite(net::NodeId src, WriteReq &&req);
    void serveRead(net::NodeId src, ReadReq &&req);
    void serveCas(net::NodeId src, CasReq &&req);
    void serveVector(net::NodeId src, VectorReq &&req);
    void completeRead(net::NodeId src, ReadResp &&resp);
    void completeCas(net::NodeId src, CasResp &&resp);
    void completeVector(net::NodeId src, VectorResp &&resp);
    void handleNak(net::NodeId src, const Nak &nak);

    /** Stage 1 of a served vector: per-batch validation + dispatch. */
    void executeVector(const std::shared_ptr<VectorServeState> &st,
                       VectorReq &&req);

    /** Stage 2: one sub-op's translation, copy, and notify queueing. */
    void executeVectorSubOp(const std::shared_ptr<VectorServeState> &st,
                            size_t index, VectorSubOp &&sub);

    /** Last sub-op done: coalesced doorbells + response + span close. */
    void finishVector(const std::shared_ptr<VectorServeState> &st);

    /** Send a NAK for a rejected request. */
    void sendNak(net::NodeId dst, ReqId reqId, util::ErrorCode error,
                 MsgType originalType);

    /** Post a notification if policy/notify-bit ask for one. */
    void maybeNotify(SegmentDescriptor &d, bool requestNotify,
                     const Notification &n);

    /** Allocate a request id not currently pending. */
    ReqId allocReqId();

    /** The owning process of a descriptor, or nullptr if it died. */
    mem::Process *ownerOf(const SegmentDescriptor &d);

    /**
     * Modeled wire time of an exchange: @p cellsOut request cells and
     * @p cellsBack response cells serialized at the local link's rate,
     * plus one propagation delay per direction used. Zero when no link
     * is attached.
     */
    sim::Duration modelWireTime(size_t cellsOut, size_t cellsBack) const;

    /** Record one completed op's latency and phase decomposition. */
    void recordOp(OpPhaseStats &op, sim::Time start, sim::Duration wireTime,
                  sim::Duration controllerTime);

    mem::Node &node_;
    CostModel costs_;
    Wire wire_;
    DescriptorTable table_;
    std::unordered_map<ReqId, PendingRead> pendingReads_;
    std::unordered_map<ReqId, PendingCas> pendingCas_;
    std::unordered_map<ReqId, PendingVector> pendingVectors_;
    ReqId nextReqId_ = 1;
    EngineStats stats_;
    EngineMetrics metrics_;
};

} // namespace remora::rmem
