#include "net/network.h"

#include "util/panic.h"

namespace remora::net {

Network::Network(sim::Simulator &simulator, const LinkParams &linkParams)
    : sim_(simulator), linkParams_(linkParams)
{}

void
Network::addHost(NodeId id, HostInterface &hif)
{
    REMORA_ASSERT(!wired_);
    REMORA_ASSERT(byId_.find(id) == byId_.end());
    hosts_.emplace_back(id, &hif);
    byId_[id] = &hif;
}

Link &
Network::makeLink(const std::string &name, size_t sinkCapacity)
{
    LinkParams p = linkParams_;
    p.credits = std::min(p.credits, sinkCapacity);
    links_.push_back(std::make_unique<Link>(sim_, p, name));
    return *links_.back();
}

void
Network::wireDirect()
{
    REMORA_ASSERT(!wired_);
    if (hosts_.size() != 2) {
        REMORA_FATAL("wireDirect requires exactly two hosts");
    }
    auto &[idA, hifA] = hosts_[0];
    auto &[idB, hifB] = hosts_[1];
    (void)idA;
    (void)idB;

    Link &aToB = makeLink(hifA->name() + "->" + hifB->name(),
                          hifB->rxCapacity());
    aToB.connect(*hifB);
    hifA->attachTxLink(aToB);

    Link &bToA = makeLink(hifB->name() + "->" + hifA->name(),
                          hifA->rxCapacity());
    bToA.connect(*hifA);
    hifB->attachTxLink(bToA);

    wired_ = true;
}

void
Network::wireSwitched(sim::Duration fabricLatency)
{
    REMORA_ASSERT(!wired_);
    if (hosts_.size() < 2) {
        REMORA_FATAL("wireSwitched requires at least two hosts");
    }
    switch_ = std::make_unique<Switch>(sim_, fabricLatency, "fabric");

    for (auto &[id, hif] : hosts_) {
        // Downlink: switch -> host.
        Link &down = makeLink("sw->" + hif->name(), hif->rxCapacity());
        down.connect(*hif);
        size_t port = switch_->addPort(down);

        // Uplink: host -> switch. Switch inputs forward immediately, so
        // grant them the default credit.
        Link &up = makeLink(hif->name() + "->sw", linkParams_.credits);
        up.connect(switch_->inputSink(port));
        hif->attachTxLink(up);

        switch_->route(id, port);
    }
    wired_ = true;
}

void
Network::installFaults(const FaultPlan &plan)
{
    REMORA_ASSERT(wired_);
    for (auto &link : links_) {
        link->setFaultInjector(nullptr);
    }
    injectors_.clear();
    for (auto &link : links_) {
        injectors_.push_back(
            std::make_unique<FaultInjector>(sim_, plan, link->name()));
        link->setFaultInjector(injectors_.back().get());
    }
}

uint64_t
Network::totalFaultDrops() const
{
    uint64_t total = 0;
    for (const auto &inj : injectors_) {
        total += inj->drops();
    }
    return total;
}

} // namespace remora::net
