/**
 * @file
 * Output-queued ATM cell switch.
 *
 * The paper's testbed was switchless (two hosts back to back) but the
 * design targets "a modest number of high-performance workstations" on a
 * switched LAN, and notes that "loading at switches is a potential
 * performance problem". The Switch lets multi-node experiments (name
 * service across N machines, DFS client scaling) run over a realistic
 * store-and-forward fabric:
 *
 *  - Cells route on their VPI (destination node id) through a routing
 *    table populated by the Network builder.
 *  - Forwarding costs a fixed fabric latency, then the cell joins the
 *    output link's queue (output queuing; the link provides per-output
 *    serialization and downstream credit).
 *  - Input ports return upstream credit as soon as a cell is forwarded
 *    into the fabric, so input never blocks (buffering concentrates at
 *    outputs, observable via Link::maxQueueDepth()).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/cell.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace remora::net {

/** N-port output-queued cell switch with VPI routing. */
class Switch
{
  public:
    /**
     * @param simulator Owning simulator.
     * @param fabricLatency Per-cell forwarding latency through the
     *        fabric (paper: "only small additional latency").
     * @param name Diagnostic name.
     */
    Switch(sim::Simulator &simulator, sim::Duration fabricLatency,
           std::string name);

    /**
     * Add a port whose output side transmits on @p outputLink.
     *
     * @return The port index, used in route().
     */
    size_t addPort(Link &outputLink);

    /** The cell sink for traffic arriving *into* port @p port. */
    CellSink &inputSink(size_t port);

    /** Route destination node id @p dst to output port @p port. */
    void route(NodeId dst, size_t port);

    /** Cells forwarded since construction. */
    uint64_t cellsForwarded() const { return forwarded_.value(); }

    /** Cells that arrived with no route (counted, then dropped loudly). */
    uint64_t routeMisses() const { return routeMisses_.value(); }

    /** Register fabric counters under "<prefix>.cells_forwarded" etc. */
    void registerStats(obs::MetricRegistry &reg,
                       const std::string &prefix) const;

  private:
    /** One attachment point. */
    struct PortState;

    /** Look up the route and enqueue on the output link. */
    void forward(const Cell &cell, PortState &from);

    struct InSink : CellSink
    {
        Switch *parent = nullptr;
        PortState *port = nullptr;
        void acceptCell(const Cell &cell) override;
    };

    struct PortState
    {
        Link *output = nullptr;
        InSink input;
    };

    sim::Simulator &sim_;
    sim::Duration fabricLatency_;
    std::string name_;
    std::vector<std::unique_ptr<PortState>> ports_;
    std::unordered_map<NodeId, size_t> routes_;
    sim::Counter forwarded_;
    sim::Counter routeMisses_;
};

} // namespace remora::net
